/**
 * @file
 * Reproduces the paper's peak-bandwidth results (Section 5.1):
 *
 *  H3: deliberate-update bandwidth on the prototype is limited by
 *      the receiving EISA bus's 33 MB/s burst mode; "all other parts
 *      of the datapath have at least twice this bandwidth".
 *  H4: the next-generation datapath (Xpress-direct) reaches about
 *      70 MB/s.
 *
 * The transfer-size sweep shows the bandwidth ramp: small transfers
 * pay fixed per-transfer costs (command issue, DMA startup, EISA
 * arbitration), large ones approach the bus limit.
 *
 * Counter: sim_MBps is payload megabytes per simulated second from
 * first packet injection to last byte in destination memory.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace shrimp;

namespace
{

void
BM_DeliberateBandwidth_EisaPrototype(benchmark::State &state)
{
    bench_util::BandwidthResult r;
    Addr bytes = static_cast<Addr>(state.range(0)) * 1024;
    for (auto _ : state)
        r = bench_util::measureDeliberateBandwidth(false, bytes);
    state.counters["sim_MBps"] = r.mbps;
    state.counters["payload_bytes"] = static_cast<double>(r.bytes);
    state.counters["packets"] = static_cast<double>(r.packets);
    state.SetLabel("paper H3: 33 MB/s (EISA burst limit)");
}
BENCHMARK(BM_DeliberateBandwidth_EisaPrototype)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1);

void
BM_DeliberateBandwidth_NextGen(benchmark::State &state)
{
    bench_util::BandwidthResult r;
    Addr bytes = static_cast<Addr>(state.range(0)) * 1024;
    for (auto _ : state)
        r = bench_util::measureDeliberateBandwidth(true, bytes);
    state.counters["sim_MBps"] = r.mbps;
    state.counters["payload_bytes"] = static_cast<double>(r.bytes);
    state.counters["packets"] = static_cast<double>(r.packets);
    state.SetLabel("paper H4: about 70 MB/s");
}
BENCHMARK(BM_DeliberateBandwidth_NextGen)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("bandwidth");
