/**
 * @file
 * Shared scenario builders for the benchmark harness. Each returns
 * simulated metrics (latency, bandwidth) from a fresh ShrimpSystem;
 * the benchmarks report them through google-benchmark counters.
 */

#ifndef SHRIMP_BENCH_BENCH_UTIL_HH
#define SHRIMP_BENCH_BENCH_UTIL_HH

#include <memory>

#include "core/system.hh"
#include "msg/deliberate.hh"

namespace shrimp
{
namespace bench_util
{

/** Finalize + load helper. */
inline void
load(Kernel &kernel, Process &proc, Program &&prog)
{
    prog.finalize();
    kernel.loadAndReady(proc,
                        std::make_shared<Program>(std::move(prog)));
}

/** Host read of a 32-bit word in a process's virtual memory. */
inline std::uint32_t
peek32(ShrimpSystem &sys, NodeId node, Process &proc, Addr vaddr)
{
    Translation t = proc.space().translate(vaddr, false);
    if (!t.ok())
        return 0xdead'dead;
    return static_cast<std::uint32_t>(
        sys.node(node).mem.readInt(t.paddr, 4));
}

/**
 * H1/H2: single-write automatic-update latency (store to remote
 * memory) between node 0 and a node @p hops away on a 4x4 mesh.
 *
 * @return latency in simulated microseconds.
 */
inline double
measureSingleWriteLatencyUs(bool next_gen, unsigned hops)
{
    SystemConfig cfg = SystemConfig::paper16();
    cfg.nextGenDatapath = next_gen;
    ShrimpSystem sys(cfg);

    // Row-major 4x4: walk east then south to get the hop count.
    unsigned x = hops < 4 ? hops : 3;
    unsigned y = hops < 4 ? 0 : hops - 3;
    NodeId dst_node = sys.backplane().nodeAt(x, y);

    Process *a = sys.kernel(0).createProcess("src");
    Process *b = sys.kernel(dst_node).createProcess("dst");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(dst_node), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Tick latency = 0;
    sys.node(dst_node).ni.onDelivered =
        [&](const NetPacket &pkt, Tick when) {
            latency = when - pkt.injectedAt;
        };

    Program pa("src");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);
    pa.halt();
    load(sys.kernel(0), *a, std::move(pa));
    Program pb("dst");
    pb.halt();
    load(sys.kernel(dst_node), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(ONE_MS);
    return static_cast<double>(latency) / ONE_US;
}

/** Result of a bulk-transfer bandwidth run. */
struct BandwidthResult
{
    double mbps = 0.0;          //!< payload MB/s, injection to drain
    double totalUs = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
};

/**
 * H3/H4: peak deliberate-update bandwidth, measured by streaming
 * @p total_bytes (page multiple) through the user-level multi-page
 * send macro and timing first-injection to last-delivery.
 */
inline BandwidthResult
measureDeliberateBandwidth(bool next_gen, Addr total_bytes)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.nextGenDatapath = next_gen;
    ShrimpSystem sys(cfg);

    std::size_t npages = total_bytes / PAGE_SIZE;
    Process *a = sys.kernel(0).createProcess("src");
    Process *b = sys.kernel(1).createProcess("dst");
    Addr src = a->allocate(npages);
    Addr dst = b->allocate(npages);
    sys.kernel(0).mapDirect(*a, src, npages, sys.kernel(1), *b, dst,
                            UpdateMode::DELIBERATE);
    Addr cmd = sys.kernel(0).mapCommandPages(*a, src, npages);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

    // Fill the source region (host side; the fill is not measured).
    for (Addr off = 0; off < total_bytes; off += 4) {
        Translation t = a->space().translate(src + off, true);
        sys.node(0).mem.writeInt(t.paddr, off / 4 + 1, 4);
    }

    Tick first_inject = MAX_TICK;
    Tick last_deliver = 0;
    std::uint64_t delivered_bytes = 0, delivered_pkts = 0;
    sys.node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        if (pkt.injectedAt < first_inject)
            first_inject = pkt.injectedAt;
        last_deliver = when;
        delivered_bytes += pkt.payload.size();
        ++delivered_pkts;
    };

    Program pa("src");
    pa.movi(R3, src);
    pa.movi(R1, total_bytes);
    msg::emitDeliberateSendSingle(pa, cmd_delta, "send", "multi");
    pa.label("resume");
    pa.label("wait");
    msg::emitDeliberateCheck(pa);
    pa.jnz("wait");
    pa.halt();
    msg::emitDeliberateSendMulti(pa, cmd_delta, "multi", "resume");
    load(sys.kernel(0), *a, std::move(pa));
    Program pb("dst");
    pb.halt();
    load(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited(10 * ONE_SEC, 2'000'000'000);
    sys.runFor(50 * ONE_MS);

    BandwidthResult r;
    r.bytes = delivered_bytes;
    r.packets = delivered_pkts;
    if (last_deliver > first_inject) {
        double secs =
            static_cast<double>(last_deliver - first_inject) / ONE_SEC;
        r.mbps = delivered_bytes / secs / 1e6;
        r.totalUs =
            static_cast<double>(last_deliver - first_inject) / ONE_US;
    }
    return r;
}

} // namespace bench_util
} // namespace shrimp

#endif // SHRIMP_BENCH_BENCH_UTIL_HH
