/**
 * @file
 * Shared scenario builders for the benchmark harness. Each returns
 * simulated metrics (latency, bandwidth) from a fresh ShrimpSystem;
 * the benchmarks report them through google-benchmark counters.
 */

#ifndef SHRIMP_BENCH_BENCH_UTIL_HH
#define SHRIMP_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <fstream>
#include <iomanip>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/system.hh"
#include "msg/deliberate.hh"
#include "sim/json.hh"

namespace shrimp
{
namespace bench_util
{

/** Finalize + load helper. */
inline void
load(Kernel &kernel, Process &proc, Program &&prog)
{
    prog.finalize();
    kernel.loadAndReady(proc,
                        std::make_shared<Program>(std::move(prog)));
}

/** Host read of a 32-bit word in a process's virtual memory. */
inline std::uint32_t
peek32(ShrimpSystem &sys, NodeId node, Process &proc, Addr vaddr)
{
    Translation t = proc.space().translate(vaddr, false);
    if (!t.ok())
        return 0xdead'dead;
    return static_cast<std::uint32_t>(
        sys.node(node).mem.readInt(t.paddr, 4));
}

/**
 * H1/H2: single-write automatic-update latency (store to remote
 * memory) between node 0 and a node @p hops away on a 4x4 mesh.
 *
 * If @p trace_path / @p stats_json_path are given, the run records a
 * packet-lifecycle trace / a machine-readable stats dump and writes
 * them there (used by tools/shrimp_explore --trace-out/--stats-json).
 *
 * @return latency in simulated microseconds.
 */
inline double
measureSingleWriteLatencyUs(bool next_gen, unsigned hops,
                            const char *trace_path = nullptr,
                            const char *stats_json_path = nullptr)
{
    SystemConfig cfg = SystemConfig::paper16();
    cfg.nextGenDatapath = next_gen;
    cfg.traceEnabled = trace_path != nullptr;
    ShrimpSystem sys(cfg);

    // Row-major 4x4: walk east then south to get the hop count.
    unsigned x = hops < 4 ? hops : 3;
    unsigned y = hops < 4 ? 0 : hops - 3;
    NodeId dst_node = sys.backplane().nodeAt(x, y);

    Process *a = sys.kernel(0).createProcess("src");
    Process *b = sys.kernel(dst_node).createProcess("dst");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(dst_node), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Tick latency = 0;
    sys.node(dst_node).ni.onDelivered =
        [&](const NetPacket &pkt, Tick when) {
            latency = when - pkt.injectedAt;
        };

    Program pa("src");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);
    pa.halt();
    load(sys.kernel(0), *a, std::move(pa));
    Program pb("dst");
    pb.halt();
    load(sys.kernel(dst_node), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(ONE_MS);
    if (trace_path)
        sys.tracer()->writeFile(trace_path);
    if (stats_json_path) {
        std::ofstream out(stats_json_path);
        sys.dumpStatsJson(out);
    }
    return static_cast<double>(latency) / ONE_US;
}

/** Result of a bulk-transfer bandwidth run. */
struct BandwidthResult
{
    double mbps = 0.0;          //!< payload MB/s, injection to drain
    double totalUs = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
};

/**
 * H3/H4: peak deliberate-update bandwidth, measured by streaming
 * @p total_bytes (page multiple) through the user-level multi-page
 * send macro and timing first-injection to last-delivery.
 */
inline BandwidthResult
measureDeliberateBandwidth(bool next_gen, Addr total_bytes,
                           const char *trace_path = nullptr,
                           const char *stats_json_path = nullptr)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.nextGenDatapath = next_gen;
    cfg.traceEnabled = trace_path != nullptr;
    ShrimpSystem sys(cfg);

    std::size_t npages = total_bytes / PAGE_SIZE;
    Process *a = sys.kernel(0).createProcess("src");
    Process *b = sys.kernel(1).createProcess("dst");
    Addr src = a->allocate(npages);
    Addr dst = b->allocate(npages);
    sys.kernel(0).mapDirect(*a, src, npages, sys.kernel(1), *b, dst,
                            UpdateMode::DELIBERATE);
    Addr cmd = sys.kernel(0).mapCommandPages(*a, src, npages);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

    // Fill the source region (host side; the fill is not measured).
    for (Addr off = 0; off < total_bytes; off += 4) {
        Translation t = a->space().translate(src + off, true);
        sys.node(0).mem.writeInt(t.paddr, off / 4 + 1, 4);
    }

    Tick first_inject = MAX_TICK;
    Tick last_deliver = 0;
    std::uint64_t delivered_bytes = 0, delivered_pkts = 0;
    sys.node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        if (pkt.injectedAt < first_inject)
            first_inject = pkt.injectedAt;
        last_deliver = when;
        delivered_bytes += pkt.payload.size();
        ++delivered_pkts;
    };

    Program pa("src");
    pa.movi(R3, src);
    pa.movi(R1, total_bytes);
    msg::emitDeliberateSendSingle(pa, cmd_delta, "send", "multi");
    pa.label("resume");
    pa.label("wait");
    msg::emitDeliberateCheck(pa);
    pa.jnz("wait");
    pa.halt();
    msg::emitDeliberateSendMulti(pa, cmd_delta, "multi", "resume");
    load(sys.kernel(0), *a, std::move(pa));
    Program pb("dst");
    pb.halt();
    load(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited(10 * ONE_SEC, 2'000'000'000);
    sys.runFor(50 * ONE_MS);

    if (trace_path)
        sys.tracer()->writeFile(trace_path);
    if (stats_json_path) {
        std::ofstream out(stats_json_path);
        sys.dumpStatsJson(out);
    }

    BandwidthResult r;
    r.bytes = delivered_bytes;
    r.packets = delivered_pkts;
    if (last_deliver > first_inject) {
        double secs =
            static_cast<double>(last_deliver - first_inject) / ONE_SEC;
        r.mbps = delivered_bytes / secs / 1e6;
        r.totalUs =
            static_cast<double>(last_deliver - first_inject) / ONE_US;
    }
    return r;
}

/**
 * A console reporter that additionally collects every successful run
 * and can write them as a machine-readable BENCH_<name>.json artifact
 * (schema_version 1; validated by tools/shrimp_validate and CI).
 */
class ArtifactReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (!run.error_occurred)
                _runs.push_back(run);
        }
        ConsoleReporter::ReportRuns(runs);
    }

    void
    writeArtifact(const std::string &bench_name) const
    {
        std::ofstream out("BENCH_" + bench_name + ".json");
        out << std::setprecision(17);
        auto num = [&out](double v) {
            out << (std::isfinite(v) ? v : 0.0);
        };
        out << "{\n  \"schema_version\": 1,\n  \"bench\": \""
            << json::escape(bench_name) << "\",\n  \"results\": [";
        bool first = true;
        for (const Run &run : _runs) {
            out << (first ? "\n" : ",\n") << "    {\"name\": \""
                << json::escape(run.benchmark_name())
                << "\", \"label\": \"" << json::escape(run.report_label)
                << "\", \"iterations\": " << run.iterations
                << ", \"real_time_s\": ";
            num(run.real_accumulated_time);
            out << ", \"counters\": {";
            bool cfirst = true;
            for (const auto &[cname, counter] : run.counters) {
                out << (cfirst ? "" : ", ") << "\""
                    << json::escape(cname) << "\": ";
                num(counter.value);
                cfirst = false;
            }
            out << "}}";
            first = false;
        }
        out << "\n  ]\n}\n";
    }

  private:
    std::vector<Run> _runs;
};

} // namespace bench_util
} // namespace shrimp

/**
 * Drop-in replacement for BENCHMARK_MAIN() that also writes the
 * BENCH_<shortname>.json results artifact next to the binary.
 */
#define SHRIMP_BENCH_MAIN(shortname)                                   \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        benchmark::Initialize(&argc, argv);                            \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))        \
            return 1;                                                  \
        shrimp::bench_util::ArtifactReporter reporter;                 \
        benchmark::RunSpecifiedBenchmarks(&reporter);                  \
        reporter.writeArtifact(shortname);                             \
        benchmark::Shutdown();                                         \
        return 0;                                                      \
    }                                                                  \
    int main(int, char **)

#endif // SHRIMP_BENCH_BENCH_UTIL_HH
