/**
 * @file
 * Ablation A1: single-write versus blocked-write automatic update
 * (Section 4.1). The two modes have identical semantics; single-write
 * is "optimized for low overhead" (each store leaves immediately),
 * blocked-write "for efficient network bandwidth usage" (consecutive
 * stores within the merge window coalesce into one packet, amortizing
 * the 18-byte header+CRC overhead).
 *
 * A stream of consecutive word stores is pushed through each mode;
 * counters report packets on the wire, wire efficiency (payload bytes
 * over total wire bytes), and the effective payload bandwidth. The
 * merge-window sweep shows blocked-write degrading back to
 * single-write behaviour as the window shrinks below the store
 * spacing.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace shrimp;

namespace
{

struct ModeResult
{
    double packets = 0;
    double wireEfficiency = 0;
    double payloadMBps = 0;
    double mergedWrites = 0;
};

ModeResult
runStoreStream(UpdateMode mode, unsigned stores, Tick merge_timeout)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.ni.mergeTimeout = merge_timeout;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    std::size_t pages = (stores * 4 + PAGE_SIZE - 1) / PAGE_SIZE;
    Addr src = a->allocate(pages);
    Addr dst = b->allocate(pages);
    sys.kernel(0).mapDirect(*a, src, pages, sys.kernel(1), *b, dst,
                            mode);

    Tick first_inject = MAX_TICK, last_deliver = 0;
    std::uint64_t payload = 0, wire = 0, packets = 0;
    sys.node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        if (pkt.injectedAt < first_inject)
            first_inject = pkt.injectedAt;
        last_deliver = when;
        payload += pkt.payload.size();
        wire += pkt.wireBytes();
        ++packets;
    };

    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, 0);
    pa.movi(R3, stores);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);
    pa.addi(R1, 4);
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    bench_util::load(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    bench_util::load(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited(10 * ONE_SEC, 2'000'000'000);
    sys.runFor(50 * ONE_MS);

    ModeResult r;
    r.packets = static_cast<double>(packets);
    r.wireEfficiency = wire ? static_cast<double>(payload) / wire : 0;
    if (last_deliver > first_inject) {
        r.payloadMBps = payload /
                        (static_cast<double>(last_deliver -
                                             first_inject) /
                         ONE_SEC) /
                        1e6;
    }
    r.mergedWrites = static_cast<double>(sys.node(0).ni.mergedWrites());
    return r;
}

void
BM_AutoUpdate_SingleWrite(benchmark::State &state)
{
    ModeResult r;
    auto stores = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runStoreStream(UpdateMode::AUTO_SINGLE, stores, ONE_US);
    state.counters["packets"] = r.packets;
    state.counters["wire_efficiency"] = r.wireEfficiency;
    state.counters["payload_MBps"] = r.payloadMBps;
    state.SetLabel("one packet per store; low latency, heavy header "
                   "overhead");
}
BENCHMARK(BM_AutoUpdate_SingleWrite)->Arg(256)->Arg(1024)->Iterations(1);

void
BM_AutoUpdate_BlockedWrite(benchmark::State &state)
{
    ModeResult r;
    auto stores = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runStoreStream(UpdateMode::AUTO_BLOCK, stores, ONE_US);
    state.counters["packets"] = r.packets;
    state.counters["wire_efficiency"] = r.wireEfficiency;
    state.counters["payload_MBps"] = r.payloadMBps;
    state.counters["merged_writes"] = r.mergedWrites;
    state.SetLabel("consecutive stores merge; efficient bandwidth use");
}
BENCHMARK(BM_AutoUpdate_BlockedWrite)->Arg(256)->Arg(1024)->Iterations(1);

void
BM_AutoUpdate_MergeWindowSweep(benchmark::State &state)
{
    ModeResult r;
    Tick window = static_cast<Tick>(state.range(0)) * ONE_NS;
    for (auto _ : state)
        r = runStoreStream(UpdateMode::AUTO_BLOCK, 512, window);
    state.counters["packets"] = r.packets;
    state.counters["wire_efficiency"] = r.wireEfficiency;
    state.SetLabel("blocked-write with a programmable merge window");
}
// Store spacing is ~60-100 ns; windows below that stop merging.
BENCHMARK(BM_AutoUpdate_MergeWindowSweep)
    ->Arg(25)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("autoupdate_modes");
