/**
 * @file
 * Reproduces the paper's Table 1: software overhead of message
 * passing primitives, in CPU instructions, split source+destination.
 *
 *   | primitive                  | paper      | this harness      |
 *   |----------------------------|------------|-------------------|
 *   | single buffering           |  9 (4+5)   | send/recv counters|
 *   | single buffering + copy    | 21 (4+17)  |                   |
 *   | double buffering (case 1)  |  2 (1+1)   |                   |
 *   | double buffering (case 2)  |  8 (3+5)   |                   |
 *   | double buffering (case 3)  | 10 (5+5)   |                   |
 *   | deliberate-update transfer | 15 (15+0)  |                   |
 *   | csend and crecv            | 151 (73+78)| leaner; see notes |
 *
 * Counters: send_instr / recv_instr are the per-message instruction
 * counts of the measured fast paths; data_instr is the per-byte cost
 * the paper excludes; data_ok confirms payload integrity.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include "core/table1.hh"

using namespace shrimp;

namespace
{

void
report(benchmark::State &state, const table1::PrimitiveCost &cost)
{
    state.counters["send_instr"] = cost.sendPerMsg;
    state.counters["recv_instr"] = cost.recvPerMsg;
    state.counters["total_instr"] = cost.sendPerMsg + cost.recvPerMsg;
    state.counters["data_instr"] = cost.dataPerMsg;
    state.counters["data_ok"] = cost.dataOk ? 1 : 0;
}

void
BM_SingleBuffering(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    for (auto _ : state)
        cost = table1::runSingleBuffering(false);
    report(state, cost);
    state.SetLabel("paper: 9 (4+5)");
}
BENCHMARK(BM_SingleBuffering)->Iterations(1);

void
BM_SingleBufferingWithCopy(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    for (auto _ : state)
        cost = table1::runSingleBuffering(true);
    report(state, cost);
    state.SetLabel("paper: 21 (4+17)");
}
BENCHMARK(BM_SingleBufferingWithCopy)->Iterations(1);

void
BM_DoubleBuffering(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    int case_no = static_cast<int>(state.range(0));
    for (auto _ : state)
        cost = table1::runDoubleBuffering(case_no);
    report(state, cost);
    state.SetLabel(case_no == 1   ? "paper: 2 (1+1)"
                   : case_no == 2 ? "paper: 8 (3+5)"
                                  : "paper: 10 (5+5)");
}
BENCHMARK(BM_DoubleBuffering)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1);

void
BM_DeliberateUpdateTransfer(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    for (auto _ : state)
        cost = table1::runDeliberateUpdate();
    report(state, cost);
    state.SetLabel("paper: 15 (13 init + 2 check)");
}
BENCHMARK(BM_DeliberateUpdateTransfer)->Iterations(1);

void
BM_UserLevelCsendCrecv(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    for (auto _ : state)
        cost = table1::runUserNx2();
    report(state, cost);
    state.SetLabel("paper: 151 (73+78); ours is a leaner "
                   "implementation of the same structure");
}
BENCHMARK(BM_UserLevelCsendCrecv)->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("table1_overheads");
