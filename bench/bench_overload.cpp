/**
 * @file
 * Overload survival: goodput vs offered load under incast and
 * all-to-all pressure on a 4x4 mesh with the full congestion stack on
 * (AIMD windows, router ECN marks echoed on ACKs, paced + jittered
 * retransmissions, a small receive FIFO, progress watchdogs).
 *
 * The Incast sweep drives 15 senders at one receiver from 25% to 200%
 * of the nominal saturation load. The interesting property is the
 * shape of the goodput curve: it must rise to capacity and then stay
 * flat, not collapse as retransmissions amplify the overload.
 * `shrimp_validate overload BENCH_overload.json` gates on the
 * highest-load point retaining >= 80% of the sweep's peak goodput.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/logging.hh"

using namespace shrimp;

namespace
{

struct OverloadResult
{
    double offeredMBps = 0;
    double goodputMBps = 0;
    double retransmits = 0;
    double pacedRetransmits = 0;
    double ecnMarks = 0;
    double ecnEchoes = 0;
    double sendDrops = 0;
    double watchdogStalls = 0;
    double allSafe = 1;
};

/** The congestion stack the overload runs exercise. */
SystemConfig
overloadConfig()
{
    SystemConfig cfg = SystemConfig::paper16();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.congestion.enabled = true;
    cfg.ni.reliability.congestion.paceBucketPackets = 8;
    cfg.ni.reliability.congestion.rtoJitterPermille = 250;
    cfg.router.ecnThresholdPackets = 3;
    // A small receive FIFO so overload actually reaches the
    // congestion thresholds instead of hiding in buffer depth.
    cfg.ni.inFifo = PacketFifo::Params{8 * 1024, 6 * 1024, 3 * 1024};
    cfg.ni.watchdogPeriod = 2 * ONE_MS;
    return cfg;
}

/** Roll the overload counters out of a finished system. */
void
collectCounters(ShrimpSystem &sys, OverloadResult &r)
{
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        ShrimpNi &ni = sys.node(id).ni;
        RetransmitBuffer &rb = ni.retransmitBuffer();
        r.retransmits += static_cast<double>(rb.timeoutRetransmits() +
                                             rb.nackRetransmits());
        r.pacedRetransmits +=
            static_cast<double>(rb.pacedRetransmits());
        r.ecnMarks += static_cast<double>(ni.ecnMarksSeen());
        r.ecnEchoes += static_cast<double>(ni.ecnEchoesSent());
        r.sendDrops += static_cast<double>(ni.sendOverflowDrops());
        r.watchdogStalls += static_cast<double>(ni.watchdogStalls());
    }
}

/**
 * Incast: every other node maps one page at node 0 and fires
 * host-driven 4-byte automatic updates at it. @p load_pct scales the
 * aggregate store rate relative to a nominal saturation point (100 =
 * one packet per microsecond arriving at the hot node).
 */
OverloadResult
runIncast(unsigned load_pct, unsigned stores_per_sender)
{
    SystemConfig cfg = overloadConfig();
    ShrimpSystem sys(cfg);
    EventQueue &eq = sys.eventQueue();
    const unsigned n = cfg.numNodes();
    const unsigned senders = n - 1;

    Process *hot = sys.kernel(0).createProcess("hot");
    Addr dstBase = hot->allocate(senders);
    std::vector<Process *> procs(n, nullptr);
    std::vector<Addr> srcPaddr(n, 0);
    for (NodeId s = 1; s < n; ++s) {
        procs[s] = sys.kernel(s).createProcess("sender");
        Addr src = procs[s]->allocate(1);
        std::uint64_t e = sys.kernel(s).mapDirect(
            *procs[s], src, 1, sys.kernel(0), *hot,
            dstBase + (s - 1) * PAGE_SIZE, UpdateMode::AUTO_SINGLE);
        SHRIMP_ASSERT(e == err::OK, "incast mapping failed: ", e);
        Translation t = procs[s]->space().translate(src, true);
        srcPaddr[s] = t.paddr;
    }

    Tick firstInject = MAX_TICK, lastDeliver = 0;
    std::uint64_t delivered = 0;
    sys.node(0).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        if (pkt.injectedAt < firstInject)
            firstInject = pkt.injectedAt;
        lastDeliver = when;
        delivered += pkt.payload.size();
    };

    // 100% of nominal saturation = one arriving packet per us in
    // aggregate, i.e. each of the 15 senders stores every 15 us.
    const Tick interval =
        15 * ONE_US * 100 / (load_pct ? load_pct : 1);
    constexpr unsigned pageWords = PAGE_SIZE / 4;
    for (NodeId s = 1; s < n; ++s) {
        for (unsigned k = 0; k < stores_per_sender; ++k) {
            Addr paddr = srcPaddr[s] + k % pageWords * 4;
            std::uint32_t value = k + 1;
            eq.scheduleFn(
                [&sys, s, paddr, value]() {
                    sys.node(s).bus.postWrite(paddr, &value, 4,
                                              BusMaster::CPU,
                                              sys.curTick());
                },
                Tick{k} * interval, EventPriority::DEFAULT,
                "incast store");
        }
    }

    sys.runFor(Tick{stores_per_sender} * interval + 100 * ONE_MS);

    OverloadResult r;
    r.offeredMBps = senders * 4.0 /
                    (static_cast<double>(interval) / ONE_SEC) / 1e6;
    if (lastDeliver > firstInject) {
        r.goodputMBps =
            delivered /
            (static_cast<double>(lastDeliver - firstInject) / ONE_SEC) /
            1e6;
    }
    collectCounters(sys, r);
    // Safety even under overload: every delivered word is one some
    // sender really stored at that offset (drops shed load, they
    // never corrupt).
    for (NodeId s = 1; s < n; ++s) {
        Translation dt = hot->space().translate(
            dstBase + (s - 1) * PAGE_SIZE, false);
        for (unsigned j = 0; j < pageWords; ++j) {
            auto v = static_cast<std::uint32_t>(
                sys.node(0).mem.readInt(dt.paddr + 4 * j, 4));
            if (v != 0 && (v > stores_per_sender ||
                           (v - 1) % pageWords != j))
                r.allSafe = 0;
        }
    }
    return r;
}

/**
 * All-to-all: every ordered pair is mapped and every node sprays its
 * peers round-robin, so congestion forms inside the mesh rather than
 * at one hot ejection port.
 */
OverloadResult
runAllToAll(unsigned load_pct, unsigned stores_per_sender)
{
    SystemConfig cfg = overloadConfig();
    ShrimpSystem sys(cfg);
    EventQueue &eq = sys.eventQueue();
    const unsigned n = cfg.numNodes();

    std::vector<Process *> procs(n);
    std::vector<Addr> srcBase(n), dstBase(n);
    for (NodeId id = 0; id < n; ++id) {
        procs[id] = sys.kernel(id).createProcess("a2a");
        srcBase[id] = procs[id]->allocate(n);
        dstBase[id] = procs[id]->allocate(n);
    }
    std::vector<Addr> srcPaddr(n * n, 0);
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            std::uint64_t e = sys.kernel(s).mapDirect(
                *procs[s], srcBase[s] + d * PAGE_SIZE, 1,
                sys.kernel(d), *procs[d],
                dstBase[d] + s * PAGE_SIZE, UpdateMode::AUTO_SINGLE);
            SHRIMP_ASSERT(e == err::OK, "a2a mapping failed: ", e);
            Translation t = procs[s]->space().translate(
                srcBase[s] + d * PAGE_SIZE, true);
            srcPaddr[s * n + d] = t.paddr;
        }
    }

    Tick firstInject = MAX_TICK, lastDeliver = 0;
    std::uint64_t delivered = 0;
    for (NodeId id = 0; id < n; ++id) {
        sys.node(id).ni.onDelivered =
            [&](const NetPacket &pkt, Tick when) {
                if (pkt.injectedAt < firstInject)
                    firstInject = pkt.injectedAt;
                lastDeliver = when;
                delivered += pkt.payload.size();
            };
    }

    // Same normalization as the incast run: at 100%, each node emits
    // one packet per 15 us, cycling through its 15 peers.
    const Tick interval =
        15 * ONE_US * 100 / (load_pct ? load_pct : 1);
    constexpr unsigned pageWords = PAGE_SIZE / 4;
    for (NodeId s = 0; s < n; ++s) {
        for (unsigned k = 0; k < stores_per_sender; ++k) {
            NodeId d = static_cast<NodeId>((s + 1 + k % (n - 1)) % n);
            Addr paddr =
                srcPaddr[s * n + d] + k / (n - 1) % pageWords * 4;
            std::uint32_t value = k / (n - 1) + 1;
            eq.scheduleFn(
                [&sys, s, paddr, value]() {
                    sys.node(s).bus.postWrite(paddr, &value, 4,
                                              BusMaster::CPU,
                                              sys.curTick());
                },
                Tick{k} * interval / (n - 1), EventPriority::DEFAULT,
                "a2a store");
        }
    }

    sys.runFor(Tick{stores_per_sender} * interval / (n - 1) +
               100 * ONE_MS);

    OverloadResult r;
    r.offeredMBps = n * (n - 1) * 4.0 /
                    (static_cast<double>(interval) / ONE_SEC) / 1e6;
    if (lastDeliver > firstInject) {
        r.goodputMBps =
            delivered /
            (static_cast<double>(lastDeliver - firstInject) / ONE_SEC) /
            1e6;
    }
    collectCounters(sys, r);
    return r;
}

void
BM_Incast_LoadSweep(benchmark::State &state)
{
    OverloadResult r;
    auto load_pct = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runIncast(load_pct, 512);
    state.counters["load_pct"] = load_pct;
    state.counters["offered_MBps"] = r.offeredMBps;
    state.counters["goodput_MBps"] = r.goodputMBps;
    state.counters["retransmits"] = r.retransmits;
    state.counters["paced_retransmits"] = r.pacedRetransmits;
    state.counters["ecn_marks"] = r.ecnMarks;
    state.counters["ecn_echoes"] = r.ecnEchoes;
    state.counters["send_drops"] = r.sendDrops;
    state.counters["watchdog_stalls"] = r.watchdogStalls;
    state.counters["all_safe"] = r.allSafe;
    state.SetLabel("15-to-1 incast; load_pct of nominal saturation; "
                   "goodput must not collapse as load rises");
}
BENCHMARK(BM_Incast_LoadSweep)
    ->Name("Incast")
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(150)
    ->Arg(200)
    ->Arg(300)
    ->Arg(400)       // ~2.5x measured saturation: the collapse gate
    ->Iterations(1);

void
BM_AllToAll_Load(benchmark::State &state)
{
    OverloadResult r;
    auto load_pct = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runAllToAll(load_pct, 480);
    state.counters["load_pct"] = load_pct;
    state.counters["offered_MBps"] = r.offeredMBps;
    state.counters["goodput_MBps"] = r.goodputMBps;
    state.counters["retransmits"] = r.retransmits;
    state.counters["paced_retransmits"] = r.pacedRetransmits;
    state.counters["ecn_marks"] = r.ecnMarks;
    state.counters["ecn_echoes"] = r.ecnEchoes;
    state.counters["send_drops"] = r.sendDrops;
    state.counters["watchdog_stalls"] = r.watchdogStalls;
    state.SetLabel("all-to-all spray; congestion forms inside the "
                   "mesh rather than at one ejection port");
}
BENCHMARK(BM_AllToAll_Load)
    ->Name("AllToAll")
    ->Arg(50)
    ->Arg(150)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("overload");
