/**
 * @file
 * Ablation A4: characterization of the routing backplane substrate
 * (the Paragon-style mesh of Section 3). Not a paper table, but the
 * properties the paper's numbers implicitly depend on:
 *
 *  - base per-hop latency under zero load (cut-through: header
 *    latency per hop, serialization paid once);
 *  - random uniform traffic: delivered bandwidth and mean latency as
 *    offered load rises toward saturation;
 *  - mesh size scaling.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include <memory>
#include <vector>

#include "net/backplane.hh"
#include "sim/random.hh"

using namespace shrimp;

namespace
{

struct TrafficResult
{
    double meanLatencyUs = 0;
    double deliveredMBps = 0;
    double delivered = 0;
};

/** Uniform random traffic at a given per-node injection interval. */
TrafficResult
runUniformTraffic(unsigned w, unsigned h, Tick inject_interval,
                  unsigned packets_per_node, unsigned payload)
{
    EventQueue eq;
    Router::Params params;
    MeshBackplane mesh(eq, "mesh", w, h, params);
    unsigned n = w * h;

    struct Sink : NetworkSink
    {
        EventQueue *eq;
        std::uint64_t count = 0;
        std::uint64_t bytes = 0;
        Tick latencySum = 0;
        Tick lastAt = 0;
        bool sinkReady() const override { return true; }
        void
        sinkDeliver(NetPacket &&p) override
        {
            ++count;
            bytes += p.payload.size();
            latencySum += eq->curTick() - p.injectedAt;
            lastAt = eq->curTick();
        }
    };
    std::vector<Sink> sinks(n);
    for (NodeId i = 0; i < n; ++i) {
        sinks[i].eq = &eq;
        mesh.router(i).setSink(&sinks[i]);
    }

    Rng rng(0xbeef + w * 31 + h);
    struct Source
    {
        unsigned left;
        Tick next;
    };
    std::vector<Source> sources(n);
    for (auto &s : sources)
        s = {packets_per_node, 0};

    EventFunctionWrapper pump(
        [&] {
            Tick now = eq.curTick();
            Tick next_wake = MAX_TICK;
            for (NodeId i = 0; i < n; ++i) {
                Source &s = sources[i];
                if (s.left == 0)
                    continue;
                if (s.next <= now && mesh.router(i).injectReady()) {
                    NodeId dst = static_cast<NodeId>(rng.below(n));
                    NetPacket pkt;
                    pkt.srcNode = i;
                    pkt.dstNode = dst;
                    pkt.dstX =
                        static_cast<std::uint16_t>(mesh.xOf(dst));
                    pkt.dstY =
                        static_cast<std::uint16_t>(mesh.yOf(dst));
                    pkt.dstPaddr = 0x1000;
                    pkt.payload.assign(payload, 0x5a);
                    pkt.sealCrc();
                    pkt.injectedAt = now;
                    mesh.router(i).inject(std::move(pkt));
                    --s.left;
                    s.next = now + inject_interval;
                }
                if (s.left) {
                    Tick cand = s.next > now ? s.next : now + ONE_US;
                    if (cand < next_wake)
                        next_wake = cand;
                }
            }
            if (next_wake != MAX_TICK)
                eq.schedule(&pump, next_wake);
        },
        "pump");
    eq.schedule(&pump, 0);
    eq.run(500'000'000);

    TrafficResult r;
    std::uint64_t count = 0, bytes = 0;
    Tick lat = 0, last = 0;
    for (const Sink &s : sinks) {
        count += s.count;
        bytes += s.bytes;
        lat += s.latencySum;
        last = s.lastAt > last ? s.lastAt : last;
    }
    r.delivered = static_cast<double>(count);
    if (count)
        r.meanLatencyUs =
            static_cast<double>(lat) / count / ONE_US;
    if (last)
        r.deliveredMBps =
            bytes / (static_cast<double>(last) / ONE_SEC) / 1e6;
    return r;
}

void
BM_Mesh_ZeroLoadLatencyByHops(benchmark::State &state)
{
    auto hops = static_cast<unsigned>(state.range(0));
    EventQueue eq;
    Router::Params params;
    MeshBackplane mesh(eq, "mesh", 8, 1, params);

    struct Sink : NetworkSink
    {
        EventQueue *eq;
        Tick at = 0;
        bool sinkReady() const override { return true; }
        void sinkDeliver(NetPacket &&) override { at = eq->curTick(); }
    };
    std::vector<Sink> sinks(8);
    for (NodeId i = 0; i < 8; ++i) {
        sinks[i].eq = &eq;
        mesh.router(i).setSink(&sinks[i]);
    }

    double us = 0;
    for (auto _ : state) {
        NetPacket pkt;
        pkt.srcNode = 0;
        pkt.dstNode = hops;
        pkt.dstX = static_cast<std::uint16_t>(hops);
        pkt.dstY = 0;
        pkt.dstPaddr = 0x1000;
        pkt.payload.assign(8, 1);
        pkt.sealCrc();
        Tick t0 = eq.curTick();
        pkt.injectedAt = t0;
        mesh.router(0).inject(std::move(pkt));
        eq.run();
        us = static_cast<double>(sinks[hops].at - t0) / ONE_US;
    }
    state.counters["sim_latency_us"] = us;
    state.SetLabel("cut-through: ~50 ns per hop + one serialization");
}
BENCHMARK(BM_Mesh_ZeroLoadLatencyByHops)
    ->DenseRange(1, 7, 1)
    ->Iterations(1);

void
BM_Mesh_UniformLoadSweep(benchmark::State &state)
{
    TrafficResult r;
    Tick interval = static_cast<Tick>(state.range(0)) * ONE_NS;
    for (auto _ : state)
        r = runUniformTraffic(4, 4, interval, 100, 128);
    state.counters["mean_latency_us"] = r.meanLatencyUs;
    state.counters["delivered_MBps"] = r.deliveredMBps;
    state.counters["delivered"] = r.delivered;
    state.SetLabel("offered load sweep toward saturation");
}
// 128B+18B at 80 MB/s is ~1.8 us per packet per link.
BENCHMARK(BM_Mesh_UniformLoadSweep)
    ->Arg(40000)
    ->Arg(10000)
    ->Arg(4000)
    ->Arg(2000)
    ->Arg(1000)
    ->Iterations(1);

void
BM_Mesh_SizeScaling(benchmark::State &state)
{
    TrafficResult r;
    auto side = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runUniformTraffic(side, side, 5 * ONE_US, 100, 128);
    state.counters["mean_latency_us"] = r.meanLatencyUs;
    state.counters["delivered_MBps"] = r.deliveredMBps;
    state.SetLabel("same offered load per node, growing machine");
}
BENCHMARK(BM_Mesh_SizeScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("mesh");
