/**
 * @file
 * Partition tolerance: time-to-detect and time-to-heal across a sweep
 * of partition durations (the EXPERIMENTS.md P1 sweep).
 *
 * Each point isolates one node of a 2x2 mesh behind a full cut-set
 * for the configured duration while DSM traffic runs, then heals and
 * measures reintegration:
 *
 *  - time_to_detect_us: cut start until the first majority node
 *    declares the isolated node DEAD (heartbeat silence crossing the
 *    dead timeout, quorum confirmed);
 *  - time_to_heal_us: heal until every node sees every other ALIVE
 *    again (epoch bumps exchanged, stale views fenced, channels
 *    reset);
 *  - stale_epoch_rejects / ni_stale_drops / fenced_writebacks: the
 *    machine-wide fence accounting over the whole run.
 *
 * `shrimp_validate partition BENCH_partition.json` gates on detection
 * and reintegration happening at all and on the fence accounting
 * balancing.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "os/dsm.hh"
#include "os/health.hh"
#include "sim/logging.hh"

using namespace shrimp;

namespace
{

struct PartitionResult
{
    double detectUs = 0;
    double healUs = 0;
    double staleEpochRejects = 0;
    double niStaleDrops = 0;
    double fencedWritebacks = 0;
    double rehomes = 0;
    double allOk = 1;

    void fail(const char *step)
    {
        fprintf(stderr, "bench_partition: step '%s' failed\n", step);
        allOk = 0;
    }
};

/** Does every node see every other as ALIVE? */
bool
allAlive(ShrimpSystem &sys)
{
    const unsigned n = sys.numNodes();
    for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = 0; b < n; ++b) {
            if (a != b && sys.kernel(a).health()->peerState(b) !=
                              PeerHealth::ALIVE) {
                return false;
            }
        }
    }
    return true;
}

PartitionResult
runPartition(Tick partition_ticks)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 2;
    cfg.ni.reliability.enabled = true;
    cfg.router.faultTolerant = true;
    cfg.health.enabled = true;
    cfg.health.heartbeatPeriod = 100 * ONE_US;
    cfg.health.suspectTimeout = 400 * ONE_US;
    cfg.health.deadTimeout = 1500 * ONE_US;
    cfg.dsm.enabled = true;
    cfg.dsm.numPages = 4;
    ShrimpSystem sys(cfg);
    const unsigned n = cfg.numNodes();
    const NodeId iso = static_cast<NodeId>(n - 1);
    std::vector<NodeId> majority;
    for (NodeId id = 0; id < n; ++id) {
        if (id != iso)
            majority.push_back(id);
    }

    PartitionResult r;

    // The soon-to-be-isolated node takes exclusive ownership of a
    // page homed on the majority side, so the partition strands a
    // remote owner the majority must re-home.
    std::uint32_t page = 0;
    while (sys.kernel(0).dsm()->homeNode(page) == iso)
        ++page;
    bool owned = false;
    sys.kernel(iso).dsm()->acquire(
        page, true, [&owned](std::uint64_t st) {
            owned = st == err::OK;
        });
    sys.runFor(2 * ONE_MS);
    if (!owned)
        r.fail("initial-acquire");

    // ---- cut, and poll for the majority's DEAD declaration ----
    const Tick cutAt = sys.curTick();
    sys.partition({iso}, majority);
    const Tick detectCap = cutAt + 10 * ONE_MS;
    while (sys.curTick() < detectCap &&
           sys.kernel(0).health()->peerState(iso) != PeerHealth::DEAD)
        sys.runFor(50 * ONE_US);
    if (sys.kernel(0).health()->peerState(iso) == PeerHealth::DEAD) {
        r.detectUs = static_cast<double>(sys.curTick() - cutAt) /
                     ONE_US;
    } else {
        r.fail("detect");
    }

    // Split-brain safety: while the stranded owner's fate is
    // ambiguous, the home fails the page fast instead of forking a
    // second writable copy into the majority.
    bool failedFast = false;
    sys.kernel(0).dsm()->acquire(page, true,
                                 [&failedFast](std::uint64_t st) {
                                     failedFast = st == err::HOSTDOWN;
                                 });
    if (sys.curTick() < cutAt + partition_ticks)
        sys.runFor(cutAt + partition_ticks - sys.curTick());
    if (!failedFast)
        r.fail("split-brain-refusal");

    // ---- heal, and poll for full reintegration ----
    const Tick healAt = sys.curTick();
    sys.heal();
    const Tick healCap = healAt + 30 * ONE_MS;
    while (sys.curTick() < healCap && !allAlive(sys))
        sys.runFor(50 * ONE_US);
    if (allAlive(sys)) {
        r.healUs = static_cast<double>(sys.curTick() - healAt) /
                   ONE_US;
    } else {
        r.fail("reintegrate");
    }

    // Reintegration re-homed the page: the majority can finally take
    // it over, and exactly one re-home happened.
    bool reclaimed = false;
    sys.kernel(0).dsm()->acquire(page, true,
                                 [&reclaimed](std::uint64_t st) {
                                     reclaimed = st == err::OK;
                                 });
    sys.runFor(5 * ONE_MS);
    if (!reclaimed)
        r.fail("reclaim-after-heal");

    // The fenced ex-owner refaults cleanly after reintegration.
    bool refaulted = false;
    sys.kernel(iso).dsm()->acquire(page, false,
                                   [&refaulted](std::uint64_t st) {
                                       refaulted = st == err::OK;
                                   });
    sys.runFor(5 * ONE_MS);
    if (!refaulted)
        r.fail("refault");

    for (NodeId id = 0; id < n; ++id) {
        r.staleEpochRejects += static_cast<double>(
            sys.kernel(id).health()->staleEpochRejects());
        r.niStaleDrops += static_cast<double>(
            sys.node(id).ni.staleEpochDrops());
        r.fencedWritebacks += static_cast<double>(
            sys.kernel(id).dsm()->fencedWritebacks());
        r.rehomes +=
            static_cast<double>(sys.kernel(id).dsm()->rehomes());
    }
    return r;
}

void
BM_Partition(benchmark::State &state)
{
    PartitionResult r;
    auto ms = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runPartition(ms * ONE_MS);
    state.counters["partition_ms"] = ms;
    state.counters["time_to_detect_us"] = r.detectUs;
    state.counters["time_to_heal_us"] = r.healUs;
    state.counters["stale_epoch_rejects"] = r.staleEpochRejects;
    state.counters["ni_stale_drops"] = r.niStaleDrops;
    state.counters["fenced_writebacks"] = r.fencedWritebacks;
    state.counters["dsm_rehomes"] = r.rehomes;
    state.counters["all_ok"] = r.allOk;
    state.SetLabel("isolate one node of a 2x2 mesh behind a full "
                   "cut-set, re-home its page, heal, reintegrate");
}
BENCHMARK(BM_Partition)
    ->Name("Partition")
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("partition");
