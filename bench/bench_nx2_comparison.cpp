/**
 * @file
 * Reproduces the paper's NX/2 comparison (Section 5.2 "NX/2
 * Primitives"): typed csend/crecv implemented at user level over the
 * virtual memory-mapped interface versus the traditional kernel-level
 * implementation (iPSC/2-style: system calls, kernel buffer copies,
 * DMA interrupts; 222/261-instruction kernel fast paths).
 *
 * The paper reports the SHRIMP user-level implementation at roughly
 * 1/4 of the kernel implementation's overhead; the `ratio` counter
 * reproduces that comparison on identical simulated hardware.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include "core/table1.hh"

using namespace shrimp;

namespace
{

void
BM_UserLevelNx2(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    auto words = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        cost = table1::runUserNx2(4, words);
    state.counters["send_instr"] = cost.sendPerMsg;
    state.counters["recv_instr"] = cost.recvPerMsg;
    state.counters["total_instr"] = cost.sendPerMsg + cost.recvPerMsg;
    state.counters["data_ok"] = cost.dataOk ? 1 : 0;
    state.SetLabel("user-level, overheads exclude per-byte copy");
}
BENCHMARK(BM_UserLevelNx2)->Arg(16)->Arg(64)->Iterations(1);

void
BM_KernelNx2Baseline(benchmark::State &state)
{
    table1::PrimitiveCost cost;
    auto words = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        cost = table1::runKernelNx2(4, words);
    state.counters["kernel_send_instr"] =
        static_cast<double>(cost.kernelSendPerMsg);
    state.counters["kernel_recv_instr"] =
        static_cast<double>(cost.kernelRecvPerMsg);
    state.counters["data_ok"] = cost.dataOk ? 1 : 0;
    state.SetLabel("kernel-level baseline: 222/261 fast paths + "
                   "syscall + copies + DMA interrupts");
}
BENCHMARK(BM_KernelNx2Baseline)->Arg(16)->Arg(64)->Iterations(1);

void
BM_OverheadRatio(benchmark::State &state)
{
    double ratio = 0, user_total = 0, kernel_total = 0;
    for (auto _ : state) {
        table1::PrimitiveCost user = table1::runUserNx2();
        table1::PrimitiveCost kernel = table1::runKernelNx2();
        user_total = user.sendPerMsg + user.recvPerMsg;
        kernel_total = static_cast<double>(kernel.kernelSendPerMsg +
                                           kernel.kernelRecvPerMsg);
        ratio = kernel_total / user_total;
    }
    state.counters["user_instr"] = user_total;
    state.counters["kernel_instr"] = kernel_total;
    state.counters["ratio"] = ratio;
    state.SetLabel("paper: SHRIMP ~1/4 of the kernel NX/2 overhead");
}
BENCHMARK(BM_OverheadRatio)->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("nx2_comparison");
