/**
 * @file
 * Ablation A3: the cost of the rare path -- map()/unmap() and the
 * NIPT consistency machinery of Section 4.4.
 *
 * The paper's core argument is asymmetry: communication (the common
 * case) costs a few user instructions, while mapping (the rare case)
 * pays kernel protection checks and a kernel-to-kernel round trip per
 * page. These benchmarks quantify the rare path:
 *
 *  - map() syscall latency versus page count (one in-band RPC per
 *    page over the kernel channel);
 *  - eviction shootdown latency versus the number of source nodes
 *    mapping into the page (INVALIDATE policy);
 *  - fault-driven remap latency (store to an invalidated mapping).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "os/map_manager.hh"

using namespace shrimp;

namespace
{

/** Simulated microseconds for a MAP syscall of @p npages. */
double
measureMapSyscallUs(unsigned npages)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(npages);
    Addr dst = b->allocate(npages);
    Addr args = a->allocate(1);
    Addr out = a->allocate(1);

    auto poke = [&](Addr va, std::uint32_t v) {
        Translation t = a->space().translate(va, true);
        sys.node(0).mem.writeInt(t.paddr, v, 4);
    };
    poke(args + 0, static_cast<std::uint32_t>(src));
    poke(args + 4, npages);
    poke(args + 8, 1);
    poke(args + 12, b->pid());
    poke(args + 16, static_cast<std::uint32_t>(dst));
    poke(args + 20,
         static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE));
    poke(args + 24, 0);

    // Timestamp the syscall with two GETPID sentinels... simpler: the
    // program stores nothing else, so the whole run minus a baseline
    // approximates the map; instead, bracket with arrival counts via
    // host events. Simplest robust measure: run time to process exit
    // minus the same program with the map replaced by GETPID.
    auto run_with = [&](bool with_map) {
        Program p("a");
        p.movi(R1, args);
        p.syscall(with_map ? sys::MAP : sys::GETPID);
        p.movi(R1, out);
        p.st(R1, 0, R0, 4);
        p.halt();
        return p;
    };

    Program pb("b");
    pb.halt();
    bench_util::load(sys.kernel(1), *b, std::move(pb));
    Program pa = run_with(true);
    bench_util::load(sys.kernel(0), *a, std::move(pa));
    sys.startAll();
    sys.runUntilAllExited();
    double with_map_us = static_cast<double>(sys.curTick()) / ONE_US;

    // Baseline run in a fresh system.
    ShrimpSystem sys2(cfg);
    Process *a2 = sys2.kernel(0).createProcess("a");
    Process *b2 = sys2.kernel(1).createProcess("b");
    a2->allocate(npages);
    b2->allocate(npages);
    Addr args2 = a2->allocate(1);
    Addr out2 = a2->allocate(1);
    Program p2("a");
    p2.movi(R1, args2);
    p2.syscall(sys::GETPID);
    p2.movi(R1, out2);
    p2.st(R1, 0, R0, 4);
    p2.halt();
    bench_util::load(sys2.kernel(0), *a2, std::move(p2));
    Program pb2("b");
    pb2.halt();
    bench_util::load(sys2.kernel(1), *b2, std::move(pb2));
    sys2.startAll();
    sys2.runUntilAllExited();
    double base_us = static_cast<double>(sys2.curTick()) / ONE_US;

    return with_map_us - base_us;
}

void
BM_MapSyscallLatency(benchmark::State &state)
{
    double us = 0;
    auto npages = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        us = measureMapSyscallUs(npages);
    state.counters["sim_us"] = us;
    state.counters["us_per_page"] = us / npages;
    state.SetLabel("protection checked once here; sends cost a few "
                   "instructions forever after");
}
BENCHMARK(BM_MapSyscallLatency)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1);

/** Shootdown latency versus number of mapping source nodes. */
double
measureShootdownUs(unsigned sources)
{
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 2;
    ShrimpSystem sys(cfg);
    NodeId victim = 7;
    sys.kernel(victim).setConsistencyPolicy(
        ConsistencyPolicy::INVALIDATE);

    Process *v = sys.kernel(victim).createProcess("victim");
    Addr dst = v->allocate(1);
    Program pv("victim");
    pv.halt();
    bench_util::load(sys.kernel(victim), *v, std::move(pv));

    for (unsigned i = 0; i < sources; ++i) {
        Process *p = sys.kernel(i).createProcess("src");
        Addr src = p->allocate(1);
        sys.kernel(i).mapDirect(*p, src, 1, sys.kernel(victim), *v,
                                dst, UpdateMode::AUTO_SINGLE);
        Program pp("src");
        pp.halt();
        bench_util::load(sys.kernel(i), *p, std::move(pp));
    }

    Tick start = 0, end = 0;
    sys.eventQueue().scheduleFn(
        [&] {
            start = sys.curTick();
            sys.kernel(victim).evictUserPage(
                *v, dst, [&](bool) { end = sys.curTick(); });
        },
        10 * ONE_US);

    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(20 * ONE_MS);
    return end > start ? static_cast<double>(end - start) / ONE_US
                       : -1.0;
}

void
BM_EvictionShootdown(benchmark::State &state)
{
    double us = 0;
    auto sources = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        us = measureShootdownUs(sources);
    state.counters["sim_us"] = us;
    state.SetLabel("INVALIDATE policy: remote NIPT entries shot down "
                   "before paging (Section 4.4)");
}
BENCHMARK(BM_EvictionShootdown)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(7)
    ->Iterations(1);

/** Fault -> REMAP -> retried store latency. */
double
measureRemapUs()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);
    sys.kernel(1).setConsistencyPolicy(ConsistencyPolicy::INVALIDATE);
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    // Evict immediately; the writer then faults and remaps.
    sys.eventQueue().scheduleFn(
        [&] { sys.kernel(1).evictUserPage(*b, dst, [](bool) {}); },
        ONE_US);

    Tick store_done = 0;
    sys.node(1).ni.onDelivered = [&](const NetPacket &, Tick when) {
        store_done = when;
    };

    Program pa("a");
    // Long delay so the shootdown completes first.
    pa.movi(R2, 0);
    pa.movi(R3, 3000);
    pa.label("d");
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("d");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);    // faults; kernel remaps; store retries
    pa.halt();
    bench_util::load(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    bench_util::load(sys.kernel(1), *b, std::move(pb));

    Tick fault_at = 0;
    (void)fault_at;
    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(20 * ONE_MS);

    // Remap happened iff the data eventually landed.
    double delay_us = 3000.0 * 3 / 60.0;    // the spin loop, approx
    return store_done
               ? static_cast<double>(store_done) / ONE_US - delay_us
               : -1.0;
}

void
BM_FaultDrivenRemap(benchmark::State &state)
{
    double us = 0;
    for (auto _ : state)
        us = measureRemapUs();
    state.counters["sim_us_after_fault"] = us;
    state.SetLabel("write fault -> kernel re-establishes the "
                   "invalidated mapping -> store retried");
}
BENCHMARK(BM_FaultDrivenRemap)->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("mapping");
