/**
 * @file
 * Reproduces the paper's hardware latency results (Section 5.1):
 *
 *  H1: single-write automatic-update latency on the EISA-based
 *      prototype, 16-node system: "slightly less than 2 us".
 *  H2: next-generation datapath (Xpress-direct receive): "< 1 us".
 *
 * Also sweeps mesh hop distance to show the per-hop contribution is
 * small relative to the I/O-bus cost -- the reason the paper can
 * quote one latency number for a 16-node machine.
 *
 * Counter: sim_latency_us is the simulated store-to-remote-memory
 * time of a single 4-byte automatic update.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace shrimp;

namespace
{

void
BM_SingleWriteLatency_EisaPrototype(benchmark::State &state)
{
    double us = 0;
    auto hops = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        us = bench_util::measureSingleWriteLatencyUs(false, hops);
    state.counters["sim_latency_us"] = us;
    state.SetLabel("paper H1: slightly less than 2 us");
}
BENCHMARK(BM_SingleWriteLatency_EisaPrototype)
    ->DenseRange(1, 6, 1)
    ->Iterations(1);

void
BM_SingleWriteLatency_NextGen(benchmark::State &state)
{
    double us = 0;
    auto hops = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        us = bench_util::measureSingleWriteLatencyUs(true, hops);
    state.counters["sim_latency_us"] = us;
    state.SetLabel("paper H2: less than 1 us");
}
BENCHMARK(BM_SingleWriteLatency_NextGen)
    ->DenseRange(1, 6, 1)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("latency");
