/**
 * @file
 * Ablation A2: the FIFO flow-control mechanism of Section 4.
 *
 * A fast automatic-update producer overruns the EISA-limited receive
 * path: the incoming FIFO crosses its stop threshold, the receiving
 * NIC stops accepting packets, backpressure fills router buffers
 * back to the sender, the outgoing FIFO crosses its threshold, and
 * the CPU is interrupted and stalls until it drains -- the complete
 * end-to-end chain the paper describes. Nothing is ever dropped.
 *
 * The sweep over outgoing-FIFO thresholds shows the stall/throughput
 * tradeoff; the incoming-threshold sweep shows backpressure kicking
 * in earlier or later in the chain.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace shrimp;

namespace
{

struct FlowResult
{
    double stalls = 0;
    double stallUs = 0;
    double deliveredMBps = 0;
    double allDelivered = 0;
    double peakInFifo = 0;
};

FlowResult
runOverload(Addr out_high, Addr in_high, unsigned stores)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.ni.outFifo.capacityBytes = 16 * 1024;
    cfg.ni.outFifo.highThresholdBytes = out_high;
    cfg.ni.outFifo.lowThresholdBytes = out_high / 4;
    cfg.ni.inFifo.capacityBytes = 16 * 1024;
    cfg.ni.inFifo.highThresholdBytes = in_high;
    cfg.ni.inFifo.lowThresholdBytes = in_high / 2;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Tick first = MAX_TICK, last = 0;
    std::uint64_t payload = 0;
    sys.node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        if (pkt.injectedAt < first)
            first = pkt.injectedAt;
        last = when;
        payload += pkt.payload.size();
    };

    // Store storm to one word: every store is a packet.
    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, 0);
    pa.movi(R3, stores);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    bench_util::load(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    bench_util::load(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited(30 * ONE_SEC, 2'000'000'000);
    sys.runFor(200 * ONE_MS);

    FlowResult r;
    r.stalls = static_cast<double>(sys.kernel(0).fifoStalls());
    r.stallUs =
        static_cast<double>(sys.kernel(0).fifoStallTicks()) / ONE_US;
    r.allDelivered =
        sys.node(1).ni.packetsDelivered() == stores ? 1 : 0;
    if (last > first) {
        r.deliveredMBps =
            payload /
            (static_cast<double>(last - first) / ONE_SEC) / 1e6;
    }
    return r;
}

void
BM_FlowControl_OutFifoThresholdSweep(benchmark::State &state)
{
    FlowResult r;
    Addr high = static_cast<Addr>(state.range(0));
    for (auto _ : state)
        r = runOverload(high, 12 * 1024, 2000);
    state.counters["cpu_stalls"] = r.stalls;
    state.counters["stall_us"] = r.stallUs;
    state.counters["delivered_MBps"] = r.deliveredMBps;
    state.counters["all_delivered"] = r.allDelivered;
    state.SetLabel("outgoing FIFO threshold: CPU interrupted and "
                   "waits until it drains");
}
BENCHMARK(BM_FlowControl_OutFifoThresholdSweep)
    ->Arg(1 * 1024)
    ->Arg(2 * 1024)
    ->Arg(4 * 1024)
    ->Arg(8 * 1024)
    ->Iterations(1);

void
BM_FlowControl_InFifoThresholdSweep(benchmark::State &state)
{
    FlowResult r;
    Addr high = static_cast<Addr>(state.range(0));
    for (auto _ : state)
        r = runOverload(4 * 1024, high, 2000);
    state.counters["cpu_stalls"] = r.stalls;
    state.counters["stall_us"] = r.stallUs;
    state.counters["delivered_MBps"] = r.deliveredMBps;
    state.counters["all_delivered"] = r.allDelivered;
    state.SetLabel("incoming FIFO stop threshold: NIC refuses "
                   "packets, mesh backpressure to the sender");
}
BENCHMARK(BM_FlowControl_InFifoThresholdSweep)
    ->Arg(1 * 1024)
    ->Arg(4 * 1024)
    ->Arg(12 * 1024)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("flowcontrol");
