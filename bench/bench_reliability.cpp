/**
 * @file
 * Reliability-layer cost: automatic-update throughput and delivered
 * latency with the ACK/NACK retransmission protocol enabled, swept
 * over link loss rates (0%, 0.1%, 1%, 5% drops). Shows what the
 * protocol costs on a clean fabric (sequence/ACK overhead only) and
 * how gracefully goodput degrades as the mesh gets lossy -- every run
 * still delivers every word exactly once, checked in-bench.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace shrimp;

namespace
{

struct ReliabilityResult
{
    double goodputMBps = 0;
    double totalUs = 0;
    double retransmits = 0;
    double acks = 0;
    double nacks = 0;
    double allExact = 0;
};

/**
 * Stream @p words distinct single-write updates through one mapped
 * page with the given per-link drop probability (per mille) and
 * verify the destination page converged to a bit-exact copy.
 */
ReliabilityResult
runLossSweep(unsigned drop_per_mille, unsigned words)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.ni.reliability.enabled = true;
    cfg.linkFaults.dropProb = drop_per_mille / 1000.0;
    cfg.linkFaults.seed = 0xbadf00d + drop_per_mille;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Tick first = MAX_TICK, last = 0;
    std::uint64_t payload = 0;
    sys.node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        if (pkt.injectedAt < first)
            first = pkt.injectedAt;
        last = when;
        payload += pkt.payload.size();
    };

    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, 0);
    pa.movi(R3, words);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);
    pa.addi(R1, 4);
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    bench_util::load(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    bench_util::load(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    sys.runUntilAllExited(30 * ONE_SEC, 2'000'000'000);
    sys.runFor(500 * ONE_MS);   // let the tail retransmit out

    ReliabilityResult r;
    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    auto &retx = tx.retransmitBuffer();
    r.retransmits = static_cast<double>(retx.timeoutRetransmits() +
                                        retx.nackRetransmits());
    r.acks = static_cast<double>(rx.acksSent());
    r.nacks = static_cast<double>(rx.nacksSent());

    bool exact = true;
    for (unsigned i = 0; i < words; ++i) {
        if (bench_util::peek32(sys, 1, *b, dst + 4 * i) != i)
            exact = false;
    }
    r.allExact = exact ? 1 : 0;

    if (last > first) {
        r.totalUs = static_cast<double>(last - first) / ONE_US;
        r.goodputMBps =
            payload /
            (static_cast<double>(last - first) / ONE_SEC) / 1e6;
    }
    return r;
}

void
BM_Reliability_LossRateSweep(benchmark::State &state)
{
    ReliabilityResult r;
    auto per_mille = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runLossSweep(per_mille, 1000);
    state.counters["goodput_MBps"] = r.goodputMBps;
    state.counters["stream_us"] = r.totalUs;
    state.counters["retransmits"] = r.retransmits;
    state.counters["acks"] = r.acks;
    state.counters["nacks"] = r.nacks;
    state.counters["all_exact"] = r.allExact;
    state.SetLabel("per-link drop rate in per mille; every word must "
                   "still arrive exactly once, in order");
}
BENCHMARK(BM_Reliability_LossRateSweep)
    ->Arg(0)        // clean fabric: protocol overhead only
    ->Arg(1)        // 0.1% loss
    ->Arg(10)       // 1% loss
    ->Arg(50)       // 5% loss
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("reliability");
