/**
 * @file
 * DSM over VMMC: fault latency and page-migration throughput under
 * the two canonical sharing patterns.
 *
 *  - Stencil: every node sweeps a strip of the shared window,
 *    write-faulting its own pages and read-faulting its neighbours'
 *    boundary pages each round -- mostly read-shared traffic with
 *    periodic invalidations at the strip edges.
 *  - Migratory: one hot counter page write-migrates around the ring,
 *    every hop a recall (owner writeback through the home) plus a
 *    fresh exclusive grant -- the protocol's worst case.
 *
 * Counters per run: pages_per_s (page movements completed per
 * simulated second), fault p50/p99 latency in simulated microseconds
 * (from the kernels' dsmFaultLatency histograms), and the raw
 * fault/fetch/invalidation totals. `shrimp_validate dsm
 * BENCH_dsm.json` gates on the latency distribution being sane and
 * on forward progress.
 */

#include <algorithm>
#include <functional>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "os/dsm.hh"
#include "sim/logging.hh"

using namespace shrimp;

namespace
{

struct DsmResult
{
    double pagesPerSec = 0;
    double faultP50Us = 0;
    double faultP99Us = 0;
    double faults = 0;
    double fetches = 0;
    double invalidations = 0;
    double allOk = 1;
};

/**
 * A log2-bucket percentile estimate over every node's fault-latency
 * histogram: the upper edge of the bucket where the cumulative count
 * crosses @p q, converted to microseconds.
 */
double
faultPercentileUs(ShrimpSystem &sys, double q)
{
    std::vector<std::uint64_t> merged;
    std::uint64_t total = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        const stats::Histogram &h =
            sys.kernel(id).dsm()->faultLatency();
        const auto &b = h.buckets();
        if (b.size() > merged.size())
            merged.resize(b.size(), 0);
        for (std::size_t i = 0; i < b.size(); ++i)
            merged[i] += b[i];
        total += h.count();
    }
    if (total == 0)
        return 0.0;
    const auto want = static_cast<std::uint64_t>(
        q * static_cast<double>(total) + 0.5);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < merged.size(); ++b) {
        cum += merged[b];
        if (cum >= want && merged[b] > 0) {
            std::uint64_t upper = std::uint64_t{1} << b;
            return static_cast<double>(upper) / ONE_US;
        }
    }
    return 0.0;
}

void
collect(ShrimpSystem &sys, DsmResult &r)
{
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        Dsm &d = *sys.kernel(id).dsm();
        r.faults += static_cast<double>(d.faults());
        r.fetches += static_cast<double>(d.fetches());
        r.invalidations += static_cast<double>(d.invalidations());
    }
    r.faultP50Us = faultPercentileUs(sys, 0.50);
    r.faultP99Us = faultPercentileUs(sys, 0.99);
}

/** One node's scripted acquire sequence, driven callback-to-callback
 *  (the next op issues the moment the previous fault resumes). */
struct OpDriver
{
    struct Op
    {
        std::uint32_t page;
        bool write;
    };

    ShrimpSystem *sys = nullptr;
    NodeId node = 0;
    /** Compute time modelled between accesses; without it a string of
     *  locally-satisfied acquires would retire in zero simulated time
     *  and the per-node sweeps would stop interleaving. */
    Tick thinkTime = 10 * ONE_US;
    std::vector<Op> ops;
    std::size_t next = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    Tick lastDone = 0;

    void
    kick()
    {
        if (next >= ops.size())
            return;
        Op op = ops[next++];
        sys->kernel(node).dsm()->acquire(
            op.page, op.write, [this](std::uint64_t st) {
                if (st == err::OK)
                    ++completed;
                else
                    ++errors;
                lastDone = sys->curTick();
                sys->eventQueue().scheduleFn(
                    [this]() { kick(); },
                    sys->curTick() + thinkTime,
                    EventPriority::DEFAULT, "dsm bench op");
            });
    }

    bool finished() const { return next >= ops.size(); }
};

/**
 * Stencil sweep: node i owns pages [i*strip, (i+1)*strip); each round
 * it write-acquires its strip and read-acquires the first page of
 * each neighbouring strip (the halo exchange shape).
 */
DsmResult
runStencil(unsigned rounds)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 2;
    cfg.dsm.enabled = true;
    const unsigned n = cfg.numNodes();
    const unsigned strip = 4;
    cfg.dsm.numPages = n * strip;
    ShrimpSystem sys(cfg);

    std::vector<OpDriver> drivers(n);
    for (NodeId id = 0; id < n; ++id) {
        drivers[id].sys = &sys;
        drivers[id].node = id;
        for (unsigned round = 0; round < rounds; ++round) {
            for (unsigned k = 0; k < strip; ++k)
                drivers[id].ops.push_back({id * strip + k, true});
            const NodeId left = (id + n - 1) % n;
            const NodeId right = (id + 1) % n;
            drivers[id].ops.push_back({left * strip + strip - 1,
                                       false});
            drivers[id].ops.push_back({right * strip, false});
        }
    }
    for (auto &d : drivers)
        d.kick();
    sys.runFor(ONE_SEC);

    DsmResult r;
    std::uint64_t moved = 0;
    Tick span = 0;
    for (auto &d : drivers) {
        moved += d.completed;
        span = std::max(span, d.lastDone);
        if (!d.finished() || d.errors != 0)
            r.allOk = 0;
    }
    if (span > 0) {
        r.pagesPerSec = static_cast<double>(moved) /
                        (static_cast<double>(span) / ONE_SEC);
    }
    collect(sys, r);
    return r;
}

/**
 * Migratory counter: the single hot page write-migrates node to node
 * around the ring; every hop increments the shared counter word in
 * place, so the final value proves exactly-once migration.
 */
DsmResult
runMigratory(unsigned hops)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 2;
    cfg.dsm.enabled = true;
    cfg.dsm.numPages = 4;
    const unsigned n = cfg.numNodes();
    ShrimpSystem sys(cfg);
    const std::uint32_t page = 1;

    std::uint64_t completed = 0, errors = 0;
    Tick lastDone = 0;
    std::function<void(unsigned)> hop = [&](unsigned i) {
        if (i >= hops)
            return;
        NodeId node = static_cast<NodeId>(i % n);
        sys.kernel(node).dsm()->acquire(
            page, true, [&, i, node](std::uint64_t st) {
                if (st != err::OK) {
                    ++errors;
                    return;
                }
                ++completed;
                lastDone = sys.curTick();
                Dsm &d = *sys.kernel(node).dsm();
                Addr paddr = pageBase(d.localFrame(page));
                auto v = static_cast<std::uint32_t>(
                    sys.node(node).mem.readInt(paddr, 4));
                sys.node(node).mem.writeInt(paddr, v + 1, 4);
                hop(i + 1);
            });
    };
    hop(0);
    sys.runFor(ONE_SEC);

    DsmResult r;
    if (completed != hops || errors != 0)
        r.allOk = 0;
    // The counter carries the increment chain through every
    // migration: losing a writeback would show up here.
    NodeId last = static_cast<NodeId>((hops - 1) % n);
    Dsm &d = *sys.kernel(last).dsm();
    if (d.localState(page) != DsmPageState::WRITE_EXCLUSIVE ||
        sys.node(last).mem.readInt(pageBase(d.localFrame(page)), 4) !=
            hops) {
        r.allOk = 0;
    }
    if (lastDone > 0) {
        r.pagesPerSec = static_cast<double>(completed) /
                        (static_cast<double>(lastDone) / ONE_SEC);
    }
    collect(sys, r);
    return r;
}

void
BM_Stencil(benchmark::State &state)
{
    DsmResult r;
    auto rounds = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runStencil(rounds);
    state.counters["rounds"] = rounds;
    state.counters["pages_per_s"] = r.pagesPerSec;
    state.counters["fault_p50_us"] = r.faultP50Us;
    state.counters["fault_p99_us"] = r.faultP99Us;
    state.counters["faults"] = r.faults;
    state.counters["fetches"] = r.fetches;
    state.counters["invalidations"] = r.invalidations;
    state.counters["all_ok"] = r.allOk;
    state.SetLabel("4-node halo-exchange sweep over a 16-page window; "
                   "read sharing with boundary invalidations");
}
BENCHMARK(BM_Stencil)->Name("Stencil")->Arg(4)->Arg(16)->Iterations(1);

void
BM_Migratory(benchmark::State &state)
{
    DsmResult r;
    auto hops = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        r = runMigratory(hops);
    state.counters["hops"] = hops;
    state.counters["pages_per_s"] = r.pagesPerSec;
    state.counters["fault_p50_us"] = r.faultP50Us;
    state.counters["fault_p99_us"] = r.faultP99Us;
    state.counters["faults"] = r.faults;
    state.counters["fetches"] = r.fetches;
    state.counters["invalidations"] = r.invalidations;
    state.counters["all_ok"] = r.allOk;
    state.SetLabel("one hot counter page write-migrating around the "
                   "ring; every hop recalls the previous owner");
}
BENCHMARK(BM_Migratory)
    ->Name("Migratory")
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("dsm");
