/**
 * @file
 * Ablation A5: scheduling policy versus communication performance.
 *
 * The paper argues (Sections 1-2) that SHRIMP supports *general*
 * multiprogramming -- unlike the CM-5, whose user-level communication
 * is only protected under strict gang scheduling -- and that having
 * hardware which works under any policy "allows us to support the
 * best scheduling algorithm, whatever it turns out to be".
 *
 * This bench runs a latency-sensitive ping-pong job next to a
 * CPU-bound background job under three policies and reports the
 * ping-pong job's completion time. Correctness (all rounds complete,
 * no cross-job interference) holds everywhere; only performance
 * differs:
 *
 *  - alone: no background job (reference);
 *  - round-robin: each node timeshares independently, so a message
 *    can sit until the peer process is scheduled again (up to a
 *    quantum of added latency per round);
 *  - gang: the communicating pair runs simultaneously during its
 *    epochs, restoring low round latency at the cost of idling
 *    during the other gang's epochs.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include "core/gang.hh"

using namespace shrimp;

namespace
{

enum class Policy
{
    ALONE,
    ROUND_ROBIN,
    GANG,
};

double
runPingPongUnder(Policy policy, int rounds, Tick quantum)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.kernel.quantum = quantum;
    ShrimpSystem sys(cfg);

    Process *ping = sys.kernel(0).createProcess("ping");
    Process *pong = sys.kernel(1).createProcess("pong");
    ping->gangId = 1;
    pong->gangId = 1;
    Addr flag0 = ping->allocate(1);
    Addr flag1 = pong->allocate(1);
    sys.kernel(0).mapDirect(*ping, flag0, 1, sys.kernel(1), *pong,
                            flag1, UpdateMode::AUTO_SINGLE);
    sys.kernel(1).mapDirect(*pong, flag1, 1, sys.kernel(0), *ping,
                            flag0, UpdateMode::AUTO_SINGLE);

    auto load = [&](Kernel &k, Process &p, Program &&prog) {
        prog.finalize();
        k.loadAndReady(p, std::make_shared<Program>(std::move(prog)));
    };

    Program pa("ping");
    pa.movi(R6, flag0);
    pa.movi(R5, 0);
    pa.label("round");
    pa.addi(R5, 1);
    pa.st(R6, 0, R5, 4);
    pa.label("echo");
    pa.ld(R1, R6, 4, 4);
    pa.cmp(R1, R5);
    pa.jl("echo");
    pa.cmpi(R5, rounds);
    pa.jl("round");
    pa.halt();
    load(sys.kernel(0), *ping, std::move(pa));

    Program pb("pong");
    pb.movi(R6, flag1);
    pb.movi(R5, 0);
    pb.label("round");
    pb.addi(R5, 1);
    pb.label("wait");
    pb.ld(R1, R6, 0, 4);
    pb.cmp(R1, R5);
    pb.jl("wait");
    pb.st(R6, 4, R5, 4);
    pb.cmpi(R5, rounds);
    pb.jl("round");
    pb.halt();
    load(sys.kernel(1), *pong, std::move(pb));

    // Background job: one spinner per node (gang 2), long-running.
    std::vector<Process *> spinners;
    if (policy != Policy::ALONE) {
        for (NodeId n = 0; n < 2; ++n) {
            Process *s = sys.kernel(n).createProcess("spin");
            s->gangId = 2;
            Program sp("spin");
            sp.movi(R1, 0);
            sp.movi(R2, 3'000'000);
            sp.label("work");
            sp.addi(R1, 1);
            sp.cmp(R1, R2);
            sp.jl("work");
            sp.halt();
            load(sys.kernel(n), *s, std::move(sp));
            spinners.push_back(s);
        }
    }

    std::unique_ptr<GangCoordinator> coordinator;
    if (policy == Policy::GANG) {
        coordinator = std::make_unique<GangCoordinator>(
            sys, std::vector<std::uint32_t>{1, 2}, quantum);
    }

    sys.startAll();

    // Run until the ping-pong job (not the background job) finishes.
    while (!(ping->state == ProcState::EXITED &&
             pong->state == ProcState::EXITED)) {
        if (sys.eventQueue().empty() || sys.curTick() > 30 * ONE_SEC)
            return -1.0;
        sys.eventQueue().runOne();
    }
    return static_cast<double>(sys.curTick()) / ONE_US;
}

void
BM_PingPong_Alone(benchmark::State &state)
{
    double us = 0;
    for (auto _ : state)
        us = runPingPongUnder(Policy::ALONE, 50, 50 * ONE_US);
    state.counters["sim_us_total"] = us;
    state.counters["sim_us_per_round"] = us / 50;
    state.SetLabel("reference: no competing job");
}
BENCHMARK(BM_PingPong_Alone)->Iterations(1);

void
BM_PingPong_RoundRobinCompetition(benchmark::State &state)
{
    double us = 0;
    Tick quantum = static_cast<Tick>(state.range(0)) * ONE_US;
    for (auto _ : state)
        us = runPingPongUnder(Policy::ROUND_ROBIN, 50, quantum);
    state.counters["sim_us_total"] = us;
    state.counters["sim_us_per_round"] = us / 50;
    state.SetLabel("uncoordinated timesharing: rounds wait for the "
                   "peer's quantum");
}
BENCHMARK(BM_PingPong_RoundRobinCompetition)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1);

void
BM_PingPong_GangScheduled(benchmark::State &state)
{
    double us = 0;
    Tick quantum = static_cast<Tick>(state.range(0)) * ONE_US;
    for (auto _ : state)
        us = runPingPongUnder(Policy::GANG, 50, quantum);
    state.counters["sim_us_total"] = us;
    state.counters["sim_us_per_round"] = us / 50;
    state.SetLabel("coordinated epochs: peers run simultaneously");
}
BENCHMARK(BM_PingPong_GangScheduled)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("scheduling");
