/**
 * @file
 * Ablation A6: DMA-claim backoff (paper Section 4.3).
 *
 * "When the DMA engine is busy, the network interface reacts to a
 * read cycle by returning the number of words remaining ... This
 * feature can be used to implement backoff strategies to optimize the
 * use of the memory bus for the DMA transfer."
 *
 * Two processes on one node contend for the single DMA engine, each
 * pushing full-page transfers through a small outgoing FIFO (so the
 * engine stays busy for the whole EISA-limited drain). The naive
 * claim loop hammers locked CMPXCHG cycles; the backoff loop reads
 * the remaining-words status and spins unlocked. Counters report
 * locked bus operations (each an exclusive bus tenure stealing
 * bandwidth from the DMA itself) and completion time.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace shrimp;

namespace
{

struct ContentionResult
{
    double lockedOps = 0;
    double totalUs = 0;
    double transfers = 0;
};

ContentionResult
runContention(bool with_backoff, int pages_each)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.kernel.quantum = 20 * ONE_US;
    cfg.ni.outFifo.capacityBytes = 2048;
    cfg.ni.outFifo.highThresholdBytes = 2048;
    cfg.ni.outFifo.lowThresholdBytes = 512;
    ShrimpSystem sys(cfg);

    Process *recv = sys.kernel(1).createProcess("recv");
    Addr dst = recv->allocate(2);

    for (int i = 0; i < 2; ++i) {
        Process *p =
            sys.kernel(0).createProcess("s" + std::to_string(i));
        Addr src = p->allocate(1);
        sys.kernel(0).mapDirect(*p, src, 1, sys.kernel(1), *recv,
                                dst + i * PAGE_SIZE,
                                UpdateMode::DELIBERATE);
        Addr cmd = sys.kernel(0).mapCommandPages(*p, src, 1);
        std::int64_t delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

        Program prog(p->name());
        prog.movi(R6, 0);
        prog.label("page");
        prog.addi(R6, 1);
        prog.movi(R3, src);
        prog.movi(R1, PAGE_SIZE);
        if (with_backoff) {
            msg::emitDeliberateSendBackoff(prog, delta, "bo");
        } else {
            msg::emitDeliberateSendSingle(prog, delta, "sg", "multi");
        }
        prog.label("wait");
        msg::emitDeliberateCheck(prog);
        prog.jnz("wait");
        prog.cmpi(R6, pages_each);
        prog.jl("page");
        prog.halt();
        if (!with_backoff) {
            prog.label("multi");
            prog.halt();
        }
        prog.finalize();
        sys.kernel(0).loadAndReady(
            *p, std::make_shared<Program>(std::move(prog)));
    }
    Program pr("recv");
    pr.halt();
    bench_util::load(sys.kernel(1), *recv, std::move(pr));

    sys.startAll();
    sys.runUntilAllExited(30 * ONE_SEC, 2'000'000'000);
    sys.runFor(50 * ONE_MS);

    ContentionResult r;
    r.lockedOps = static_cast<double>(sys.node(0).cpu.lockedOps());
    r.totalUs = static_cast<double>(sys.curTick()) / ONE_US;
    r.transfers =
        static_cast<double>(sys.node(0).ni.dma().transfersStarted());
    return r;
}

void
BM_DmaClaim_NaiveSpin(benchmark::State &state)
{
    ContentionResult r;
    auto pages = static_cast<int>(state.range(0));
    for (auto _ : state)
        r = runContention(false, pages);
    state.counters["locked_bus_ops"] = r.lockedOps;
    state.counters["sim_us_total"] = r.totalUs;
    state.counters["transfers"] = r.transfers;
    state.SetLabel("locked CMPXCHG hammering while the engine drains");
}
BENCHMARK(BM_DmaClaim_NaiveSpin)->Arg(2)->Arg(4)->Iterations(1);

void
BM_DmaClaim_ProportionalBackoff(benchmark::State &state)
{
    ContentionResult r;
    auto pages = static_cast<int>(state.range(0));
    for (auto _ : state)
        r = runContention(true, pages);
    state.counters["locked_bus_ops"] = r.lockedOps;
    state.counters["sim_us_total"] = r.totalUs;
    state.counters["transfers"] = r.transfers;
    state.SetLabel("retry delay proportional to words remaining");
}
BENCHMARK(BM_DmaClaim_ProportionalBackoff)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1);

} // namespace

SHRIMP_BENCH_MAIN("dma_backoff");
