#!/bin/sh
# CI gate: build the whole tree with ASan+UBSan, run the test suite,
# smoke-test the tracing pipeline, and validate every machine-readable
# artifact against its schema.
# Usage: tools/check.sh [build-dir] (default build-asan).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSHRIMP_SANITIZE=address,undefined
cmake --build "$build" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of printing.
cd "$build"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --output-on-failure -j "$(nproc)"

# Trace-enabled smoke run (under the sanitizers): record a full
# 2-node workload trace + stats dump and validate both schemas.
./tools/shrimp_explore stats \
    --trace-out check_trace.json --stats-json check_stats.json \
    > /dev/null
./tools/shrimp_validate trace check_trace.json
./tools/shrimp_validate stats check_stats.json

# Chaos soak under the sanitizers: fixed seeds, full invariant check,
# traced, and a determinism probe (same seed twice -> same report).
./tools/shrimp_explore chaos --seed 1 \
    --json check_chaos1.json --trace-out check_chaos_trace.json \
    > /dev/null
./tools/shrimp_explore chaos --seed 1 --json check_chaos1b.json \
    > /dev/null
./tools/shrimp_explore chaos --seed 2 --json check_chaos2.json \
    > /dev/null
./tools/shrimp_validate chaos check_chaos1.json check_chaos2.json
./tools/shrimp_validate trace check_chaos_trace.json
cmp check_chaos1.json check_chaos1b.json || {
    echo "check.sh: chaos soak is not deterministic" >&2
    exit 1
}

# Every benchmark binary must emit a schema-valid BENCH_<name>.json.
# One fast case per binary keeps the gate quick; artifact writing is
# independent of which cases run.
cd "$build/bench"
rm -f BENCH_*.json
./bench_latency --benchmark_filter='EisaPrototype/1' > /dev/null
./bench_bandwidth --benchmark_filter='EisaPrototype/16' > /dev/null
./bench_mesh --benchmark_filter='ZeroLoadLatencyByHops/1' > /dev/null
"$build/tools/shrimp_validate" bench BENCH_*.json

echo "check.sh: sanitizer build + tests + artifact validation passed"
