#!/bin/sh
# Sanitizer gate: build the whole tree with ASan+UBSan and run the
# test suite. Usage: tools/check.sh [build-dir] (default build-asan).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSHRIMP_SANITIZE=address,undefined
cmake --build "$build" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of printing.
cd "$build"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --output-on-failure -j "$(nproc)"

echo "check.sh: sanitizer build + tests passed"
