#!/bin/sh
# CI gate, in three stages:
#
#   --lint   shrimp_lint (project invariants) + fixture self-test +
#            clang-tidy (generic hygiene, .clang-tidy) over the
#            exported compile_commands.json
#   --asan   ASan+UBSan build: full test suite, trace/stats/chaos
#            artifact validation, bench artifact smoke
#   --tsan   ThreadSan build (groundwork for the PDES scale-out):
#            retransmit + chaos soak, with the same-seed determinism
#            probe byte-compared across two runs
#   --overload  sanitized overload soak: the full incast/all-to-all
#            sweep through the congestion-collapse gate, plus chaos
#            soaks with the overload burst phases cranked up
#   --dsm    sanitized DSM gate: the Dsm + vm unit suites, the
#            stencil/migratory bench through the latency/progress
#            schema check, and a same-seed chaos-with-DSM determinism
#            byte-compare
#   --partition  sanitized partition-tolerance gate: the partition/
#            fault-model unit suite, bench_partition through the
#            heal-time schema check, and chaos soaks with network
#            partition phases enabled (three seeds, every invariant,
#            same-seed byte-compare)
#
# With no stage flags, all six run (lint, asan, tsan, overload, dsm,
# partition).
# A trailing positional argument overrides the ASan build dir
# (back-compat).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc)

run_lint=0
run_asan=0
run_tsan=0
run_overload=0
run_dsm=0
run_partition=0
asan_build="$repo/build-asan"
for arg in "$@"; do
    case "$arg" in
      --lint) run_lint=1 ;;
      --asan) run_asan=1 ;;
      --tsan) run_tsan=1 ;;
      --overload) run_overload=1 ;;
      --dsm) run_dsm=1 ;;
      --partition) run_partition=1 ;;
      -h|--help)
        echo "usage: tools/check.sh [--lint] [--asan] [--tsan] [--overload] [--dsm] [--partition] [asan-build-dir]"
        exit 0
        ;;
      *) asan_build="$arg" ;;
    esac
done
if [ "$run_lint$run_asan$run_tsan$run_overload$run_dsm$run_partition" = \
    "000000" ]; then
    run_lint=1
    run_asan=1
    run_tsan=1
    run_overload=1
    run_dsm=1
    run_partition=1
fi

# ---------------------------------------------------------------- lint
if [ "$run_lint" = 1 ]; then
    lint_build="$repo/build-lint"
    cmake -B "$lint_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$lint_build" -j "$jobs" --target shrimp_lint

    # Any finding fails the stage; the self-test proves each rule
    # still fires on its bad fixture.
    "$lint_build/tools/shrimp_lint" \
        "$repo/src" "$repo/tests" "$repo/bench" "$repo/tools"
    "$lint_build/tools/shrimp_lint" --selftest "$repo/tests/lint_fixtures"

    # clang-tidy needs the compilation database, which the configure
    # above exports. The toolchain image may not ship clang-tidy;
    # missing tool = skipped (the shrimp_lint gate above still ran),
    # any finding = hard failure (WarningsAsErrors: '*').
    if command -v clang-tidy > /dev/null 2>&1; then
        find "$repo/src" "$repo/tools" -name '*.cc' \
                ! -path '*lint_fixtures*' -print0 |
            xargs -0 clang-tidy --quiet -p "$lint_build"
    else
        echo "check.sh: clang-tidy not installed; skipping (shrimp_lint ran)" >&2
    fi
    echo "check.sh: lint stage passed"
fi

# ---------------------------------------------------------------- asan
if [ "$run_asan" = 1 ]; then
    cmake -B "$asan_build" -S "$repo" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSHRIMP_SANITIZE=address,undefined
    cmake --build "$asan_build" -j "$jobs"

    # halt_on_error makes UBSan findings fail the run instead of printing.
    cd "$asan_build"
    ASAN_OPTIONS=detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --output-on-failure -j "$jobs"

    # Trace-enabled smoke run (under the sanitizers): record a full
    # 2-node workload trace + stats dump and validate both schemas.
    ./tools/shrimp_explore stats \
        --trace-out check_trace.json --stats-json check_stats.json \
        > /dev/null
    ./tools/shrimp_validate trace check_trace.json
    ./tools/shrimp_validate stats check_stats.json

    # Chaos soak under the sanitizers: fixed seeds, full invariant check,
    # traced, and a determinism probe (same seed twice -> same report).
    ./tools/shrimp_explore chaos --seed 1 \
        --json check_chaos1.json --trace-out check_chaos_trace.json \
        > /dev/null
    ./tools/shrimp_explore chaos --seed 1 --json check_chaos1b.json \
        > /dev/null
    ./tools/shrimp_explore chaos --seed 2 --json check_chaos2.json \
        > /dev/null
    ./tools/shrimp_validate chaos check_chaos1.json check_chaos2.json
    ./tools/shrimp_validate trace check_chaos_trace.json
    cmp check_chaos1.json check_chaos1b.json || {
        echo "check.sh: chaos soak is not deterministic" >&2
        exit 1
    }

    # Every benchmark binary must emit a schema-valid BENCH_<name>.json.
    # One fast case per binary keeps the gate quick; artifact writing is
    # independent of which cases run.
    cd "$asan_build/bench"
    rm -f BENCH_*.json
    ./bench_latency --benchmark_filter='EisaPrototype/1' > /dev/null
    ./bench_bandwidth --benchmark_filter='EisaPrototype/16' > /dev/null
    ./bench_mesh --benchmark_filter='ZeroLoadLatencyByHops/1' > /dev/null
    "$asan_build/tools/shrimp_validate" bench BENCH_*.json
    echo "check.sh: asan stage passed"
fi

# ---------------------------------------------------------------- tsan
if [ "$run_tsan" = 1 ]; then
    tsan_build="$repo/build-tsan"
    cmake -B "$tsan_build" -S "$repo" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSHRIMP_SANITIZE=thread
    cmake --build "$tsan_build" -j "$jobs"

    cd "$tsan_build"
    export TSAN_OPTIONS=halt_on_error=1

    # The reliability layer and the chaos soak are the workloads the
    # PDES scale-out will thread first; gate them under TSan now so
    # data races surface the day threading lands, not a release later.
    ctest --output-on-failure -j "$jobs" \
        -R '^Retransmit\.|^ChaosSoak\.|^cli_chaos_seed'

    # Same-seed determinism must hold under TSan instrumentation too:
    # byte-identical reports, and the embedded stats fingerprint with
    # them (schema-checked above via the cli_chaos_seed tests).
    ./tools/shrimp_explore chaos --seed 7 --json tsan_chaos7a.json \
        > /dev/null
    ./tools/shrimp_explore chaos --seed 7 --json tsan_chaos7b.json \
        > /dev/null
    ./tools/shrimp_validate chaos tsan_chaos7a.json
    cmp tsan_chaos7a.json tsan_chaos7b.json || {
        echo "check.sh: chaos soak not deterministic under TSan" >&2
        exit 1
    }
    echo "check.sh: tsan stage passed"
fi

# ------------------------------------------------------------ overload
if [ "$run_overload" = 1 ]; then
    # Reuses the ASan build (sanitized overload is the point); build
    # it if the --asan stage didn't run this invocation.
    cmake -B "$asan_build" -S "$repo" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSHRIMP_SANITIZE=address,undefined
    cmake --build "$asan_build" -j "$jobs" \
        --target bench_overload shrimp_explore shrimp_validate

    # Full load sweep through the congestion-collapse gate: goodput at
    # the highest incast point must hold >= 80% of the sweep's peak.
    cd "$asan_build/bench"
    rm -f BENCH_overload.json
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ./bench_overload > /dev/null
    "$asan_build/tools/shrimp_validate" overload BENCH_overload.json

    # Chaos soak with the overload phases cranked up: more incast
    # bursts, heavier bursts, same determinism bar (same seed twice
    # must byte-match).
    cd "$asan_build"
    ./tools/shrimp_explore chaos --seed 11 --bursts 4 --burst-writes 48 \
        --json check_overload11a.json > /dev/null
    ./tools/shrimp_explore chaos --seed 11 --bursts 4 --burst-writes 48 \
        --json check_overload11b.json > /dev/null
    ./tools/shrimp_validate chaos check_overload11a.json
    cmp check_overload11a.json check_overload11b.json || {
        echo "check.sh: overload chaos soak is not deterministic" >&2
        exit 1
    }
    echo "check.sh: overload stage passed"
fi

# ----------------------------------------------------------------- dsm
if [ "$run_dsm" = 1 ]; then
    # Reuses the ASan build: the DSM protocol's callback plumbing is
    # exactly where lifetime bugs would hide.
    cmake -B "$asan_build" -S "$repo" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSHRIMP_SANITIZE=address,undefined
    cmake --build "$asan_build" -j "$jobs" \
        --target dsm_test vm_test bench_dsm shrimp_explore \
        shrimp_validate

    # The coherence/failure unit suites and the hardened VM layer, all
    # sanitized.
    cd "$asan_build"
    ASAN_OPTIONS=detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --output-on-failure -j "$jobs" \
        -R '^Dsm\.|^PageTable\.|^FrameAllocator\.|^AddressSpace\.'

    # Stencil + migratory drivers through the latency/progress gate.
    cd "$asan_build/bench"
    rm -f BENCH_dsm.json
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ./bench_dsm > /dev/null
    "$asan_build/tools/shrimp_validate" dsm BENCH_dsm.json

    # Chaos with the DSM phase cranked up: directory invariants hold
    # under crashes and flaps, and the run stays a pure function of
    # the seed (same seed twice -> byte-identical reports).
    cd "$asan_build"
    ./tools/shrimp_explore chaos --seed 21 --json check_dsm21a.json \
        > /dev/null
    ./tools/shrimp_explore chaos --seed 21 --json check_dsm21b.json \
        > /dev/null
    ./tools/shrimp_validate chaos check_dsm21a.json
    cmp check_dsm21a.json check_dsm21b.json || {
        echo "check.sh: chaos-with-DSM soak is not deterministic" >&2
        exit 1
    }
    echo "check.sh: dsm stage passed"
fi

# ----------------------------------------------------------- partition
if [ "$run_partition" = 1 ]; then
    # Reuses the ASan build: epoch fencing and split-brain recovery are
    # pointer-heavy callback code, exactly where lifetime bugs hide.
    cmake -B "$asan_build" -S "$repo" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSHRIMP_SANITIZE=address,undefined
    cmake --build "$asan_build" -j "$jobs" \
        --target partition_test bench_partition shrimp_explore \
        shrimp_validate

    # Membership, fencing, and route-around unit suites, sanitized.
    cd "$asan_build"
    ASAN_OPTIONS=detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --output-on-failure -j "$jobs" \
        -R '^Partition\.|^FaultModelTest\.|^RouterPartition\.'

    # Partition/heal sweep through the heal-time schema gate.
    cd "$asan_build/bench"
    rm -f BENCH_partition.json
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ./bench_partition > /dev/null
    "$asan_build/tools/shrimp_validate" partition BENCH_partition.json

    # Chaos with network-partition phases on: three seeds must hold
    # every global invariant (no split-brain writebacks, exactly-once
    # re-homing, full reintegration), and the run stays a pure
    # function of the seed (same seed twice -> byte-identical).
    cd "$asan_build"
    for seed in 1 2 3; do
        ./tools/shrimp_explore chaos --seed "$seed" --partitions 2 \
            --json "check_part${seed}.json" > /dev/null
        ./tools/shrimp_validate chaos "check_part${seed}.json"
    done
    ./tools/shrimp_explore chaos --seed 1 --partitions 2 \
        --json check_part1b.json > /dev/null
    cmp check_part1.json check_part1b.json || {
        echo "check.sh: partition chaos soak is not deterministic" >&2
        exit 1
    }
    echo "check.sh: partition stage passed"
fi

echo "check.sh: all requested stages passed"
