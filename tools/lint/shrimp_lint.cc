/**
 * @file
 * shrimp_lint: project-invariant static analysis for the SHRIMP
 * simulator tree. Complements clang-tidy (generic C++ hygiene, see
 * .clang-tidy) with rules that encode *this* project's invariants --
 * the ones the chaos harness's same-seed determinism gate and the
 * upcoming packet-arena / PDES work depend on:
 *
 *   shrimp-determinism-random   all randomness via sim/random.hh (Rng)
 *   shrimp-determinism-clock    no wall-clock reads in simulation code
 *   shrimp-ownership-raw-new    no owning raw new/delete or malloc/free
 *   shrimp-ownership-packet-shared
 *                               shared_ptr<NetPacket> fenced to nic/+net/
 *   shrimp-ownership-weak-backedge
 *                               shared_ptr back-edges should be weak_ptr
 *   shrimp-tick-narrowing       no narrowing of Tick (64-bit ps) to 32 bits
 *   shrimp-stats-desc           every stat carries a non-empty description
 *   shrimp-stats-reset          every Stat subclass overrides reset()
 *   shrimp-logging-raw-io       no raw printf/cout in src/; use
 *                               sim/logging.hh
 *   shrimp-epoch-compare        no raw ==/!= on incarnation numbers
 *                               outside os/health.*; use
 *                               Incarnation::sameLife/newerLife/observed
 *   shrimp-suppression-reason   every NOLINT(shrimp-*) states a reason
 *
 * Suppression: append `// NOLINT(shrimp-<rule>): <reason>` to the
 * offending line, or put `// NOLINTNEXTLINE(shrimp-<rule>): <reason>`
 * on the line above. The reason is mandatory; a reasonless shrimp
 * suppression is itself a finding and does not suppress anything.
 * clang-tidy ignores the shrimp-* names, so the two tools share the
 * comment syntax without shadowing each other.
 *
 * A small built-in allowlist covers the places that *implement* the
 * sanctioned backends (sim/random.hh is the RNG, sim/logging.cc is the
 * logging sink, sim/trace.cc stamps traces with capture wall-time --
 * metadata, never simulation state).
 *
 * Usage:
 *   shrimp_lint PATH...            lint files / directory trees
 *   shrimp_lint --selftest DIR     run the fixture self-test (each
 *                                  bad_<rule>*.cc must trip exactly its
 *                                  rule; good_*.cc must be clean)
 *   shrimp_lint --rules a,b PATH.. restrict to the named rules
 *   shrimp_lint --list-rules       print the rule table
 *
 * Exit status 0 iff no findings (or, under --selftest, every fixture
 * behaved as its name promises).
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

// ---------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------

/** Which top-level tree a file belongs to; some rules are zone-gated. */
enum class Zone
{
    SRC,
    TESTS,
    BENCH,
    TOOLS,
    EXAMPLES,
    OTHER,
};

struct SourceFile
{
    std::string path;               //!< as reported in findings
    Zone zone = Zone::OTHER;
    bool packetFence = false;       //!< under src/nic/ or src/net/
    std::vector<std::string> raw;   //!< original lines (for NOLINT)
    std::vector<std::string> code;  //!< comments/string bodies blanked
    std::string joined;             //!< code lines joined with '\n'
    std::vector<std::size_t> lineAt; //!< joined offset -> 1-based line
};

struct Finding
{
    std::string path;
    std::size_t line;               //!< 1-based
    std::string rule;
    std::string msg;
};

/**
 * Blank comments and string/char-literal bodies, preserving line
 * structure and the quote characters themselves (so an empty literal
 * stays recognizable as `""`). Handles escapes and R"delim(...)delim".
 */
std::string
stripCode(const std::string &text)
{
    std::string out = text;
    enum
    {
        NORMAL,
        LINE_COMMENT,
        BLOCK_COMMENT,
        STRING,
        CHAR,
        RAW_STRING,
    } state = NORMAL;
    std::string rawEnd;             // )delim" terminator for raw strings

    for (std::size_t i = 0; i < out.size(); ++i) {
        char c = out[i];
        char next = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (state) {
          case NORMAL:
            if (c == '/' && next == '/') {
                state = LINE_COMMENT;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                state = BLOCK_COMMENT;
                out[i] = ' ';
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || (!std::isalnum(
                                       static_cast<unsigned char>(
                                           out[i - 1])) &&
                                   out[i - 1] != '_'))) {
                std::size_t open = out.find('(', i + 2);
                if (open != std::string::npos) {
                    rawEnd = ")" + out.substr(i + 2, open - i - 2) + "\"";
                    state = RAW_STRING;
                    i = open;       // keep R"delim( readable
                }
            } else if (c == '"') {
                state = STRING;
            } else if (c == '\'') {
                state = CHAR;
            }
            break;
          case LINE_COMMENT:
            if (c == '\n')
                state = NORMAL;
            else
                out[i] = ' ';
            break;
          case BLOCK_COMMENT:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                state = NORMAL;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case STRING:
          case CHAR:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if ((state == STRING && c == '"') ||
                       (state == CHAR && c == '\'')) {
                state = NORMAL;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case RAW_STRING:
            if (out.compare(i, rawEnd.size(), rawEnd) == 0) {
                i += rawEnd.size() - 1;
                state = NORMAL;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Positions of @p needle in @p hay with an identifier boundary on the
 *  left (when the needle starts with an identifier char). */
std::vector<std::size_t>
findWord(const std::string &hay, const std::string &needle)
{
    std::vector<std::size_t> hits;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + 1)) {
        if (identChar(needle.front()) && pos > 0 && identChar(hay[pos - 1]))
            continue;
        hits.push_back(pos);
    }
    return hits;
}

/** Does the text contain an identifier mentioning ticks? */
bool
hasTickToken(const std::string &text)
{
    for (std::size_t i = 0; i < text.size();) {
        if (!identChar(text[i]) ||
            (i > 0 && identChar(text[i - 1]))) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < text.size() && identChar(text[j]))
            ++j;
        std::string word = text.substr(i, j - i);
        if (word.find("tick") != std::string::npos ||
            word.find("Tick") != std::string::npos)
            return true;
        i = j;
    }
    return false;
}

/**
 * The operand expression ending just before @p opPos: a backward scan
 * over identifier chars, member access (`.`/`->`/`::`), and one
 * balanced call-argument list, so `d.granteeIncarnation`,
 * `h.peerIncarnation(peer)` and `ns::inc` all come back whole.
 */
std::string
operandLeftOf(const std::string &code, std::size_t opPos)
{
    std::size_t j = opPos;
    while (j > 0 && (code[j - 1] == ' ' || code[j - 1] == '\t'))
        --j;
    std::size_t end = j;
    int depth = 0;
    while (j > 0) {
        char c = code[j - 1];
        if (c == ')') {
            ++depth;
            --j;
        } else if (c == '(') {
            if (depth == 0)
                break;
            --depth;
            --j;
        } else if (depth > 0) {
            --j;
        } else if (identChar(c) || c == '.' || c == ':') {
            --j;
        } else if (c == '>' && j >= 2 && code[j - 2] == '-') {
            j -= 2;
        } else {
            break;
        }
    }
    return code.substr(j, end - j);
}

/** The operand expression starting at @p from (mirror of the above). */
std::string
operandRightOf(const std::string &code, std::size_t from)
{
    std::size_t j = from;
    while (j < code.size() && (code[j] == ' ' || code[j] == '\t'))
        ++j;
    if (j < code.size() && code[j] == '!')
        ++j;                        // tolerate `!observed(x)` spellings
    std::size_t start = j;
    int depth = 0;
    while (j < code.size()) {
        char c = code[j];
        if (c == '(') {
            ++depth;
            ++j;
        } else if (c == ')') {
            if (depth == 0)
                break;
            --depth;
            ++j;
        } else if (depth > 0) {
            ++j;
        } else if (identChar(c) || c == '.' || c == ':') {
            ++j;
        } else if (c == '-' && j + 1 < code.size() &&
                   code[j + 1] == '>') {
            j += 2;
        } else {
            break;
        }
    }
    return code.substr(start, j - start);
}

/** Does the operand name an incarnation (life) number? */
bool
namesIncarnation(const std::string &operand)
{
    std::string low = operand;
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return low.find("incarnation") != std::string::npos;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\n");
    return s.substr(b, e - b + 1);
}

/** Find the matching close for the bracket at @p open (code view). */
std::size_t
matchBracket(const std::string &s, std::size_t open, char oc, char cc)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == oc)
            ++depth;
        else if (s[i] == cc && --depth == 0)
            return i;
    }
    return std::string::npos;
}

// ---------------------------------------------------------------------
// Rule framework
// ---------------------------------------------------------------------

class Linter
{
  public:
    explicit Linter(std::set<std::string> enabled)
        : _enabled(std::move(enabled))
    {}

    std::vector<Finding> lint(const SourceFile &f);

    struct RuleInfo
    {
        const char *name;
        const char *what;
    };
    static const std::vector<RuleInfo> &rules();

  private:
    bool on(const char *rule) const
    {
        return _enabled.empty() || _enabled.count(rule);
    }

    void add(const SourceFile &f, std::size_t line, const char *rule,
             const std::string &msg);

    void checkTokens(const SourceFile &f);
    void checkPacketShared(const SourceFile &f);
    void checkWeakBackedge(const SourceFile &f);
    void checkTickNarrowing(const SourceFile &f);
    void checkStatsDesc(const SourceFile &f);
    void checkStatsReset(const SourceFile &f);
    void checkEpochCompare(const SourceFile &f);
    void checkSuppressions(const SourceFile &f);

    static bool allowlisted(const SourceFile &f, const char *rule);
    static bool suppressed(const SourceFile &f, std::size_t line,
                           const std::string &rule);

    std::set<std::string> _enabled;
    std::vector<Finding> _out;
    std::set<std::pair<std::size_t, std::string>> _seen;
};

const std::vector<Linter::RuleInfo> &
Linter::rules()
{
    static const std::vector<RuleInfo> table = {
        {"shrimp-determinism-random",
         "all randomness must flow through the seeded shrimp::Rng "
         "(sim/random.hh); std::rand/random_device/mt19937 break "
         "same-seed reproducibility"},
        {"shrimp-determinism-clock",
         "no wall-clock reads (time/chrono clocks/gettimeofday) in "
         "simulation code; simulated time is curTick()"},
        {"shrimp-ownership-raw-new",
         "no owning raw new/delete or malloc/free; use "
         "std::unique_ptr/std::make_unique or a pool"},
        {"shrimp-ownership-packet-shared",
         "shared_ptr<NetPacket> creation is fenced to src/nic/ and "
         "src/net/ pending the packet-arena refactor"},
        {"shrimp-ownership-weak-backedge",
         "shared_ptr member named like a back-edge (parent/owner/...) "
         "creates a reference cycle; use weak_ptr or a raw observer"},
        {"shrimp-tick-narrowing",
         "Tick is 64-bit picoseconds; narrowing to a 32-bit integer "
         "overflows after ~4.3 ms of simulated time"},
        {"shrimp-stats-desc",
         "every stat must be registered with a non-empty description "
         "(stats dumps are the bench/chaos regression currency)"},
        {"shrimp-stats-reset",
         "every stats::Stat subclass must override reset() so "
         "Group::resetAll() covers it"},
        {"shrimp-logging-raw-io",
         "no raw printf/std::cout/std::cerr in src/; route output "
         "through sim/logging.hh macros"},
        {"shrimp-epoch-compare",
         "raw ==/!= on an incarnation (life) number outside "
         "os/health.*; 0 means never-observed and must not fence -- "
         "wrap in Incarnation::sameLife/newerLife/observed"},
        {"shrimp-suppression-reason",
         "NOLINT(shrimp-*) must state a reason: "
         "`// NOLINT(shrimp-<rule>): <why>`"},
    };
    return table;
}

bool
Linter::allowlisted(const SourceFile &f, const char *rule)
{
    struct Entry
    {
        const char *suffix;
        const char *rule;
        // Rationale lives in DESIGN.md section 11.
    };
    static const Entry table[] = {
        {"sim/random.hh", "shrimp-determinism-random"},
        {"sim/logging.cc", "shrimp-logging-raw-io"},
        {"sim/trace.cc", "shrimp-determinism-clock"},
        // health.* defines Incarnation and the fence itself; its raw
        // compares are the sanctioned implementation.
        {"os/health.hh", "shrimp-epoch-compare"},
        {"os/health.cc", "shrimp-epoch-compare"},
    };
    for (const Entry &e : table) {
        std::string suffix = e.suffix;
        if (f.path.size() >= suffix.size() &&
            f.path.compare(f.path.size() - suffix.size(), suffix.size(),
                           suffix) == 0 &&
            rule == std::string(e.rule))
            return true;
    }
    return false;
}

/**
 * True iff @p line (1-based) carries a valid suppression for @p rule:
 * `NOLINT(<list>): reason` on the line itself or `NOLINTNEXTLINE`
 * on the line above, with @p rule in the list and a non-empty reason.
 */
bool
Linter::suppressed(const SourceFile &f, std::size_t line,
                   const std::string &rule)
{
    auto match = [&](const std::string &text, const char *marker) {
        std::size_t at = text.find(marker);
        if (at == std::string::npos)
            return false;
        std::size_t open = at + std::string(marker).size();
        if (open >= text.size() || text[open] != '(')
            return false;
        std::size_t close = text.find(')', open);
        if (close == std::string::npos)
            return false;
        std::string list = text.substr(open + 1, close - open - 1);
        bool named = false;
        std::istringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ','))
            if (trim(item) == rule)
                named = true;
        if (!named)
            return false;
        // The reason after "):" is mandatory.
        if (close + 1 >= text.size() || text[close + 1] != ':')
            return false;
        return !trim(text.substr(close + 2)).empty();
    };
    if (line >= 1 && line <= f.raw.size() &&
        match(f.raw[line - 1], "NOLINT"))
        return true;
    return line >= 2 && match(f.raw[line - 2], "NOLINTNEXTLINE");
}

void
Linter::add(const SourceFile &f, std::size_t line, const char *rule,
            const std::string &msg)
{
    if (!on(rule) || allowlisted(f, rule) || suppressed(f, line, rule))
        return;
    if (!_seen.insert({line, rule}).second)
        return;
    _out.push_back(Finding{f.path, line, rule, msg});
}

// ---------------------------------------------------------------------
// Token rules: determinism, raw new/delete, logging
// ---------------------------------------------------------------------

void
Linter::checkTokens(const SourceFile &f)
{
    static const char *randomTokens[] = {
        "std::rand", "srand",     "rand_r",        "drand48",
        "lrand48",   "mrand48",   "random_device", "mt19937",
        "minstd_rand", "default_random_engine", "ranlux24", "ranlux48",
        "knuth_b",   "random_shuffle",
    };
    static const char *clockTokens[] = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "utc_clock",     "file_clock",   "gettimeofday",
        "clock_gettime", "timespec_get", "localtime",
        "gmtime",        "mktime",
    };

    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &code = f.code[i];
        std::size_t line = i + 1;

        for (const char *tok : randomTokens)
            if (!findWord(code, tok).empty())
                add(f, line, "shrimp-determinism-random",
                    std::string(tok) +
                        ": use the seeded shrimp::Rng (sim/random.hh)");
        if (!findWord(code, "rand(").empty())
            add(f, line, "shrimp-determinism-random",
                "rand(): use the seeded shrimp::Rng (sim/random.hh)");
        if (code.find('#') != std::string::npos &&
            code.find("<random>") != std::string::npos)
            add(f, line, "shrimp-determinism-random",
                "#include <random>: use the seeded shrimp::Rng "
                "(sim/random.hh)");

        for (const char *tok : clockTokens)
            if (!findWord(code, tok).empty())
                add(f, line, "shrimp-determinism-clock",
                    std::string(tok) + ": wall-clock reads break "
                                       "same-seed determinism");
        if (!findWord(code, "time(").empty() ||
            !findWord(code, "clock(").empty())
            add(f, line, "shrimp-determinism-clock",
                "wall-clock read breaks same-seed determinism; "
                "simulated time is curTick()");

        // Owning raw allocation.
        for (std::size_t pos : findWord(code, "new")) {
            std::size_t after = pos + 3;
            while (after < code.size() && code[after] == ' ')
                ++after;
            if (after >= code.size())
                continue;
            // `new Foo` / `new (nothrow) Foo`; a bare right-adjacent
            // identifier (`newExpr`) is just a longer word.
            bool newExpr = (after > pos + 3 && identChar(code[after])) ||
                           code[after] == '(';
            if (newExpr)
                add(f, line, "shrimp-ownership-raw-new",
                    "owning raw `new`; use std::make_unique or a pool");
        }
        for (std::size_t pos : findWord(code, "delete")) {
            // `= delete;` declares a deleted function, not a free.
            std::size_t before = pos;
            while (before > 0 && code[before - 1] == ' ')
                --before;
            if (before > 0 && code[before - 1] == '=')
                continue;
            add(f, line, "shrimp-ownership-raw-new",
                "raw `delete`; ownership belongs in "
                "unique_ptr/pool destructors");
        }
        // Bare `free(` is deliberately absent: it is a legitimate
        // method name (FrameAllocator::free); the allocation sites
        // are what matter.
        for (const char *tok : {"malloc(", "calloc(", "realloc(",
                                "strdup(", "std::free"}) {
            for (std::size_t pos : findWord(code, tok)) {
                if (pos >= 1 && code[pos - 1] == '.')
                    continue;       // member call, not the C allocator
                if (pos >= 2 && code[pos - 2] == '-' &&
                    code[pos - 1] == '>')
                    continue;
                std::string what(tok);
                if (what.back() == '(')
                    what.pop_back();
                add(f, line, "shrimp-ownership-raw-new",
                    what + "(): C allocation; use RAII containers");
            }
        }

        // Raw console I/O is only banned inside the simulator library.
        if (f.zone == Zone::SRC) {
            bool raw = code.find("std::cout") != std::string::npos ||
                       code.find("std::cerr") != std::string::npos ||
                       !findWord(code, "printf(").empty() ||
                       !findWord(code, "puts(").empty() ||
                       !findWord(code, "putchar(").empty();
            if (!raw && !findWord(code, "fprintf(").empty())
                raw = code.find("stdout") != std::string::npos ||
                      code.find("stderr") != std::string::npos;
            if (raw)
                add(f, line, "shrimp-logging-raw-io",
                    "raw console I/O in src/; use "
                    "SHRIMP_WARN/SHRIMP_INFORM/SHRIMP_DTRACE "
                    "(sim/logging.hh)");
        }
    }
}

// ---------------------------------------------------------------------
// Packet fence and back-edge heuristics
// ---------------------------------------------------------------------

void
Linter::checkPacketShared(const SourceFile &f)
{
    if (f.packetFence)
        return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &code = f.code[i];
        // Qualified spellings (shrimp::NetPacket) count too, so the
        // check is "an owning smart-pointer template naming the type",
        // not an exact-substring match. weak_ptr is deliberately fine.
        bool owning = code.find("shared_ptr<") != std::string::npos ||
                      code.find("make_shared<") != std::string::npos;
        if (owning && !findWord(code, "NetPacket").empty())
            add(f, i + 1, "shrimp-ownership-packet-shared",
                "NetPacket ref-counting outside nic/+net/; the packet "
                "arena refactor owns this type's lifetime");
    }
}

void
Linter::checkWeakBackedge(const SourceFile &f)
{
    static const char *backNames[] = {"parent", "owner",  "back",
                                      "outer",  "enclosing"};
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &code = f.code[i];
        std::size_t at = code.find("shared_ptr<");
        if (at == std::string::npos)
            continue;
        std::size_t close = matchBracket(code, at + 10, '<', '>');
        if (close == std::string::npos)
            continue;
        std::size_t p = close + 1;
        while (p < code.size() &&
               (code[p] == ' ' || code[p] == '&'))
            ++p;
        std::size_t q = p;
        while (q < code.size() && identChar(code[q]))
            ++q;
        std::string name = code.substr(p, q - p);
        // Normalize: strip leading underscores and an m_ prefix, then
        // lowercase, so `_parentNode`, `m_Owner`, `backEdge` all match.
        while (!name.empty() && name.front() == '_')
            name.erase(name.begin());
        if (name.rfind("m_", 0) == 0)
            name.erase(0, 2);
        std::transform(name.begin(), name.end(), name.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        for (const char *bad : backNames)
            if (name.rfind(bad, 0) == 0)
                add(f, i + 1, "shrimp-ownership-weak-backedge",
                    "shared_ptr member '" + code.substr(p, q - p) +
                        "' looks like a back-edge; use weak_ptr (the "
                        "PR-3 sanitizer gate caught exactly this leak)");
    }
}

// ---------------------------------------------------------------------
// Tick narrowing
// ---------------------------------------------------------------------

bool
isNarrowType(std::string t)
{
    t = trim(t);
    if (t.rfind("std::", 0) == 0)
        t = t.substr(5);
    static const std::set<std::string> narrow = {
        "int",      "unsigned", "unsigned int", "short",
        "unsigned short", "long", "int8_t",   "int16_t",
        "int32_t",  "uint8_t",  "uint16_t",     "uint32_t",
    };
    return narrow.count(t) != 0;
}

void
Linter::checkTickNarrowing(const SourceFile &f)
{
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &code = f.code[i];
        std::size_t line = i + 1;

        // static_cast<narrow>(...tick...)
        for (std::size_t pos : findWord(code, "static_cast<")) {
            std::size_t open = pos + 11;    // '<'
            std::size_t close = matchBracket(code, open, '<', '>');
            if (close == std::string::npos)
                continue;
            if (!isNarrowType(code.substr(open + 1, close - open - 1)))
                continue;
            std::size_t paren = code.find('(', close);
            if (paren == std::string::npos)
                continue;
            std::size_t end = matchBracket(code, paren, '(', ')');
            std::string arg =
                end == std::string::npos
                    ? code.substr(paren + 1)
                    : code.substr(paren + 1, end - paren - 1);
            if (hasTickToken(arg))
                add(f, line, "shrimp-tick-narrowing",
                    "static_cast narrows a Tick to 32 bits or less");
        }

        // (int)someTick / (uint32_t)curTick()
        for (const char *cast :
             {"(int)", "(unsigned)", "(short)", "(long)", "(int32_t)",
              "(uint32_t)", "(int16_t)", "(uint16_t)", "(int8_t)",
              "(uint8_t)"}) {
            std::size_t at = code.find(cast);
            if (at != std::string::npos &&
                hasTickToken(code.substr(at + std::string(cast).size(),
                                         48)))
                add(f, line, "shrimp-tick-narrowing",
                    "C-style cast narrows a Tick to 32 bits or less");
        }

        // int deadline = ...tick...;
        std::size_t b = code.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        for (const char *ty :
             {"int ", "unsigned ", "short ", "int32_t ", "uint32_t ",
              "int16_t ", "uint16_t ", "std::int32_t ",
              "std::uint32_t "}) {
            std::string prefix = ty;
            if (code.compare(b, prefix.size(), prefix) != 0)
                continue;
            if (prefix == "unsigned " &&
                (code.compare(b + 9, 5, "long ") == 0 ||
                 code.compare(b + 9, 4, "int ") == 0))
                continue;   // `unsigned long` is wide; int handled above
            std::size_t eq = code.find('=', b);
            std::size_t semi = code.find(';', b);
            if (eq == std::string::npos || semi == std::string::npos ||
                eq > semi)
                continue;
            if (hasTickToken(code.substr(eq + 1, semi - eq - 1)))
                add(f, line, "shrimp-tick-narrowing",
                    "initializing a 32-bit-or-less integer from a "
                    "Tick expression");
        }
    }
}

// ---------------------------------------------------------------------
// Stat hygiene
// ---------------------------------------------------------------------

void
Linter::checkStatsDesc(const SourceFile &f)
{
    static const char *statTypes[] = {"Counter", "Scalar", "Peak",
                                      "Distribution", "Histogram"};
    const std::string &s = f.joined;
    for (const char *ty : statTypes) {
        std::string token = std::string("stats::") + ty;
        for (std::size_t pos : findWord(s, token)) {
            std::size_t p = pos + token.size();
            if (p < s.size() && identChar(s[p]))
                continue;           // longer identifier
            while (p < s.size() && std::isspace(
                                       static_cast<unsigned char>(s[p])))
                ++p;
            // Member declaration: identifier then braced initializer.
            std::size_t q = p;
            while (q < s.size() && identChar(s[q]))
                ++q;
            if (q == p)
                continue;           // reference/param/return type use
            std::size_t r = q;
            while (r < s.size() && std::isspace(
                                       static_cast<unsigned char>(s[r])))
                ++r;
            if (r >= s.size() || s[r] != '{')
                continue;
            std::size_t close = matchBracket(s, r, '{', '}');
            if (close == std::string::npos)
                continue;
            std::string init = s.substr(r + 1, close - r - 1);

            // Split top-level args.
            std::vector<std::string> args;
            int depth = 0;
            std::string cur;
            for (char c : init) {
                if (c == '(' || c == '{' || c == '<')
                    ++depth;
                else if (c == ')' || c == '}' || c == '>')
                    --depth;
                if (c == ',' && depth == 0) {
                    args.push_back(trim(cur));
                    cur.clear();
                } else {
                    cur += c;
                }
            }
            if (!trim(cur).empty())
                args.push_back(trim(cur));

            std::size_t line = f.lineAt[pos];
            if (args.size() < 2) {
                add(f, line, "shrimp-stats-desc",
                    std::string(ty) +
                        " constructed without a description");
                continue;
            }
            // String bodies are blanked, so an originally-empty
            // description is exactly `""`.
            if (args[1] == "\"\"")
                add(f, line, "shrimp-stats-desc",
                    std::string(ty) + " has an empty description");
        }
    }
}

void
Linter::checkStatsReset(const SourceFile &f)
{
    const std::string &s = f.joined;
    for (const char *base : {"public Stat", "public stats::Stat"}) {
        for (std::size_t pos : findWord(s, base)) {
            std::size_t after = pos + std::string(base).size();
            if (after < s.size() && identChar(s[after]))
                continue;           // e.g. `public Statistics`
            std::size_t open = s.find('{', after);
            if (open == std::string::npos)
                continue;
            std::size_t close = matchBracket(s, open, '{', '}');
            std::string body =
                close == std::string::npos
                    ? s.substr(open)
                    : s.substr(open, close - open);
            if (findWord(body, "reset(").empty())
                add(f, f.lineAt[pos], "shrimp-stats-reset",
                    "Stat subclass does not override reset(); "
                    "Group::resetAll() would silently skip it");
        }
    }
}

// ---------------------------------------------------------------------
// Epoch-compare fence
// ---------------------------------------------------------------------

/**
 * Partition tolerance (DESIGN.md section 14) rests on incarnation
 * numbers where 0 means "never observed" and must never fence. A raw
 * ==/!= on such a field re-implements the fence without the sentinel
 * and is exactly the bug the grantee-incarnation writeback fence once
 * had; every comparison goes through the Incarnation predicates in
 * os/health.hh instead (health.* itself is allowlisted -- it is the
 * implementation).
 */
void
Linter::checkEpochCompare(const SourceFile &f)
{
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &code = f.code[i];
        for (std::size_t pos = 0; pos + 1 < code.size(); ++pos) {
            bool eq = code[pos] == '=' && code[pos + 1] == '=';
            bool ne = code[pos] == '!' && code[pos + 1] == '=';
            if (!eq && !ne)
                continue;
            // Not <=, >=, the tail of !=, or a chained ===.
            if (eq && pos > 0 &&
                (code[pos - 1] == '=' || code[pos - 1] == '!' ||
                 code[pos - 1] == '<' || code[pos - 1] == '>'))
                continue;
            if (code[pos + 1] == '=' && pos + 2 < code.size() &&
                code[pos + 2] == '=')
                continue;
            std::string lhs = operandLeftOf(code, pos);
            std::string rhs = operandRightOf(code, pos + 2);
            if (namesIncarnation(lhs) || namesIncarnation(rhs))
                add(f, i + 1, "shrimp-epoch-compare",
                    "raw " + std::string(eq ? "==" : "!=") +
                        " on an incarnation number; wrap in "
                        "Incarnation::sameLife/newerLife/observed "
                        "(os/health.hh)");
            ++pos;
        }
    }
}

// ---------------------------------------------------------------------
// Suppression audit
// ---------------------------------------------------------------------

void
Linter::checkSuppressions(const SourceFile &f)
{
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
        const std::string &text = f.raw[i];
        std::size_t at = text.find("NOLINT");
        if (at == std::string::npos)
            continue;
        std::size_t open = text.find('(', at);
        std::size_t close =
            open == std::string::npos ? std::string::npos
                                      : text.find(')', open);
        if (close == std::string::npos)
            continue;
        // Only audit suppressions naming a real shrimp rule; prose
        // like `NOLINT(shrimp-<rule>)` in docs is not a suppression.
        bool namesRule = false;
        {
            std::istringstream ss(
                text.substr(open + 1, close - open - 1));
            std::string item;
            while (std::getline(ss, item, ','))
                for (const auto &info : rules())
                    if (trim(item) == info.name)
                        namesRule = true;
        }
        if (!namesRule)
            continue;               // pure clang-tidy suppression
        bool reasoned = close + 1 < text.size() &&
                        text[close + 1] == ':' &&
                        !trim(text.substr(close + 2)).empty();
        if (!reasoned)
            add(f, i + 1, "shrimp-suppression-reason",
                "shrimp NOLINT without a reason; write "
                "`NOLINT(shrimp-<rule>): <why>`");
    }
}

std::vector<Finding>
Linter::lint(const SourceFile &f)
{
    _out.clear();
    _seen.clear();
    checkTokens(f);
    checkPacketShared(f);
    checkWeakBackedge(f);
    checkTickNarrowing(f);
    checkStatsDesc(f);
    checkStatsReset(f);
    checkEpochCompare(f);
    checkSuppressions(f);
    std::sort(_out.begin(), _out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.rule) <
                         std::tie(b.path, b.line, b.rule);
              });
    return _out;
}

// ---------------------------------------------------------------------
// File loading and tree walking
// ---------------------------------------------------------------------

Zone
zoneOf(const fs::path &p)
{
    Zone zone = Zone::OTHER;
    for (const auto &part : p) {
        if (part == "src")
            zone = Zone::SRC;
        else if (part == "tests")
            zone = Zone::TESTS;
        else if (part == "bench")
            zone = Zone::BENCH;
        else if (part == "tools")
            zone = Zone::TOOLS;
        else if (part == "examples")
            zone = Zone::EXAMPLES;
    }
    return zone;
}

bool
loadFile(const fs::path &p, SourceFile &out)
{
    std::ifstream in(p);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    out.path = p.generic_string();
    out.zone = zoneOf(p);
    out.packetFence =
        out.path.find("src/nic/") != std::string::npos ||
        out.path.find("src/net/") != std::string::npos;
    out.raw = splitLines(text);
    std::string code = stripCode(text);
    out.code = splitLines(code);
    out.joined = code;
    out.lineAt.assign(code.size() + 1, 1);
    std::size_t line = 1;
    for (std::size_t i = 0; i < code.size(); ++i) {
        out.lineAt[i] = line;
        if (code[i] == '\n')
            ++line;
    }
    out.lineAt[code.size()] = line;
    return true;
}

bool
lintableExtension(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".h" || ext == ".hpp";
}

std::vector<fs::path>
collect(const std::vector<std::string> &roots)
{
    std::vector<fs::path> files;
    for (const std::string &root : roots) {
        fs::path p(root);
        if (fs::is_regular_file(p)) {
            files.push_back(p);
            continue;
        }
        if (!fs::is_directory(p)) {
            std::fprintf(stderr, "shrimp_lint: no such path: %s\n",
                         root.c_str());
            continue;
        }
        for (const auto &ent : fs::recursive_directory_iterator(p)) {
            if (!ent.is_regular_file() ||
                !lintableExtension(ent.path()))
                continue;
            std::string sp = ent.path().generic_string();
            // Fixtures are deliberately bad; build trees are generated.
            if (sp.find("lint_fixtures") != std::string::npos ||
                sp.find("/build") != std::string::npos ||
                sp.find("CMakeFiles") != std::string::npos)
                continue;
            files.push_back(ent.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

// ---------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------

int
runLint(const std::vector<std::string> &roots,
        const std::set<std::string> &enabled)
{
    Linter linter(enabled);
    std::size_t nFindings = 0;
    std::size_t nFiles = 0;
    for (const fs::path &p : collect(roots)) {
        SourceFile f;
        if (!loadFile(p, f)) {
            std::fprintf(stderr, "shrimp_lint: cannot read %s\n",
                         p.string().c_str());
            return 2;
        }
        ++nFiles;
        for (const Finding &fd : linter.lint(f)) {
            std::fprintf(stderr, "%s:%zu: [%s] %s\n", fd.path.c_str(),
                         fd.line, fd.rule.c_str(), fd.msg.c_str());
            ++nFindings;
        }
    }
    if (nFindings) {
        std::fprintf(stderr, "shrimp_lint: %zu finding%s in %zu files\n",
                     nFindings, nFindings == 1 ? "" : "s", nFiles);
        return 1;
    }
    std::printf("shrimp_lint: %zu files clean\n", nFiles);
    return 0;
}

/**
 * Fixture self-test. bad_<rule>*.cc must produce at least one finding,
 * all of them for exactly <rule> (underscores spell the dashes);
 * good_*.cc must be clean. Fixtures are linted as if they lived in
 * src/ so zone-gated rules apply.
 */
int
runSelftest(const std::string &dir)
{
    std::vector<fs::path> files;
    if (!fs::is_directory(dir)) {
        std::fprintf(stderr, "shrimp_lint: no fixture dir %s\n",
                     dir.c_str());
        return 2;
    }
    for (const auto &ent : fs::directory_iterator(dir))
        if (ent.is_regular_file() && lintableExtension(ent.path()))
            files.push_back(ent.path());
    std::sort(files.begin(), files.end());

    Linter linter({});
    int failures = 0;
    std::size_t checked = 0;
    for (const fs::path &p : files) {
        std::string stem = p.stem().string();
        SourceFile f;
        if (!loadFile(p, f)) {
            std::fprintf(stderr, "selftest: cannot read %s\n",
                         p.string().c_str());
            return 2;
        }
        f.zone = Zone::SRC;         // fixtures model simulator code
        f.packetFence = false;
        auto findings = linter.lint(f);
        ++checked;

        if (stem.rfind("good", 0) == 0) {
            if (!findings.empty()) {
                std::fprintf(stderr,
                             "selftest FAIL %s: expected clean, got:\n",
                             stem.c_str());
                for (const auto &fd : findings)
                    std::fprintf(stderr, "  line %zu: [%s] %s\n",
                                 fd.line, fd.rule.c_str(),
                                 fd.msg.c_str());
                ++failures;
            }
            continue;
        }
        if (stem.rfind("bad_", 0) != 0) {
            std::fprintf(stderr,
                         "selftest FAIL %s: fixture names must start "
                         "with good or bad_\n",
                         stem.c_str());
            ++failures;
            continue;
        }
        // bad_tick_narrowing2 -> shrimp-tick-narrowing
        std::string rule = stem.substr(4);
        while (!rule.empty() &&
               std::isdigit(static_cast<unsigned char>(rule.back())))
            rule.pop_back();
        std::replace(rule.begin(), rule.end(), '_', '-');
        rule = "shrimp-" + rule;

        bool known = false;
        for (const auto &info : Linter::rules())
            if (rule == info.name)
                known = true;
        if (!known) {
            std::fprintf(stderr,
                         "selftest FAIL %s: names unknown rule %s\n",
                         stem.c_str(), rule.c_str());
            ++failures;
            continue;
        }
        if (findings.empty()) {
            std::fprintf(stderr,
                         "selftest FAIL %s: %s did not fire\n",
                         stem.c_str(), rule.c_str());
            ++failures;
            continue;
        }
        for (const auto &fd : findings) {
            if (fd.rule != rule) {
                std::fprintf(stderr,
                             "selftest FAIL %s: stray finding [%s] at "
                             "line %zu (wanted only %s)\n",
                             stem.c_str(), fd.rule.c_str(), fd.line,
                             rule.c_str());
                ++failures;
            }
        }
    }
    if (!checked) {
        std::fprintf(stderr, "selftest: no fixtures found in %s\n",
                     dir.c_str());
        return 2;
    }
    if (failures) {
        std::fprintf(stderr, "selftest: %d failure%s\n", failures,
                     failures == 1 ? "" : "s");
        return 1;
    }
    std::printf("selftest: %zu fixtures ok\n", checked);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::set<std::string> enabled;
    std::string selftestDir;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &info : Linter::rules())
                std::printf("%-34s %s\n", info.name, info.what);
            return 0;
        }
        if (arg == "--selftest") {
            if (++i >= argc) {
                std::fprintf(stderr, "--selftest needs a directory\n");
                return 2;
            }
            selftestDir = argv[i];
        } else if (arg == "--rules") {
            if (++i >= argc) {
                std::fprintf(stderr, "--rules needs a list\n");
                return 2;
            }
            std::istringstream ss(argv[i]);
            std::string item;
            while (std::getline(ss, item, ','))
                if (!trim(item).empty())
                    enabled.insert(trim(item));
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: shrimp_lint [--list-rules] "
                         "[--rules a,b] [--selftest DIR] PATH...\n");
            return 2;
        } else {
            roots.push_back(arg);
        }
    }

    if (!selftestDir.empty())
        return runSelftest(selftestDir);
    if (roots.empty()) {
        std::fprintf(stderr,
                     "usage: shrimp_lint [--list-rules] [--rules a,b] "
                     "[--selftest DIR] PATH...\n");
        return 2;
    }
    return runLint(roots, enabled);
}
