/**
 * @file
 * shrimp_validate: schema checks for the simulator's machine-readable
 * artifacts, used by tools/check.sh and the cli_trace_validate test.
 *
 * Usage:
 *   shrimp_validate trace FILE...     Chrome trace-event JSON
 *   shrimp_validate bench FILE...     BENCH_<name>.json results
 *   shrimp_validate stats FILE...     flat stats JSON object
 *   shrimp_validate chaos FILE...     chaos-soak report JSON
 *   shrimp_validate overload FILE...  BENCH_overload.json + collapse gate
 *   shrimp_validate dsm FILE...       BENCH_dsm.json + latency/progress gates
 *   shrimp_validate partition FILE... BENCH_partition.json + recovery gates
 *
 * Exit status 0 iff every file parses and conforms.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "sim/json.hh"

using shrimp::json::Value;

namespace
{

int g_errors = 0;

void
fail(const std::string &file, const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
    ++g_errors;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Chrome trace-event JSON: the shape Perfetto actually needs. */
void
validateTrace(const std::string &file, const Value &root)
{
    if (!root.isObject())
        return fail(file, "trace root is not an object");
    const Value *events = root.find("traceEvents");
    if (!events || !events->isArray())
        return fail(file, "missing traceEvents array");

    std::set<std::string> open_flows;
    for (std::size_t i = 0; i < events->arr.size(); ++i) {
        const Value &ev = events->arr[i];
        std::string where = "traceEvents[" + std::to_string(i) + "]";
        if (!ev.isObject())
            return fail(file, where + " is not an object");
        const Value *ph = ev.find("ph");
        const Value *name = ev.find("name");
        if (!ph || !ph->isString() || ph->str.size() != 1)
            return fail(file, where + " has no one-char ph");
        if (!name || !name->isString())
            return fail(file, where + " has no name");
        char p = ph->str[0];
        if (std::strchr("BEXibne", p) && !ev.find("ts"))
            return fail(file, where + " has no ts");
        if (p == 'X' && !ev.find("dur"))
            return fail(file, where + " X event has no dur");
        if (p == 'b' || p == 'n' || p == 'e') {
            const Value *id = ev.find("id");
            const Value *cat = ev.find("cat");
            if (!id || !id->isString())
                return fail(file, where + " flow event has no id");
            if (!cat || !cat->isString())
                return fail(file, where + " flow event has no cat");
            std::string key = cat->str + "/" + id->str;
            if (p == 'b')
                open_flows.insert(key);
            else if (!open_flows.count(key))
                return fail(file, where + " flow " + key +
                                      " was never opened");
            if (p == 'e')
                open_flows.erase(key);
        }
    }
}

/** BENCH_<name>.json artifact written by bench_util::ArtifactReporter. */
void
validateBench(const std::string &file, const Value &root)
{
    if (!root.isObject())
        return fail(file, "bench root is not an object");
    const Value *ver = root.find("schema_version");
    if (!ver || !ver->isNumber() || ver->number != 1)
        return fail(file, "schema_version != 1");
    const Value *bench = root.find("bench");
    if (!bench || !bench->isString() || bench->str.empty())
        return fail(file, "missing bench name");
    const Value *results = root.find("results");
    if (!results || !results->isArray())
        return fail(file, "missing results array");
    for (std::size_t i = 0; i < results->arr.size(); ++i) {
        const Value &r = results->arr[i];
        std::string where = "results[" + std::to_string(i) + "]";
        if (!r.isObject())
            return fail(file, where + " is not an object");
        const Value *name = r.find("name");
        const Value *iters = r.find("iterations");
        const Value *time = r.find("real_time_s");
        const Value *counters = r.find("counters");
        if (!name || !name->isString() || name->str.empty())
            return fail(file, where + " has no name");
        if (!iters || !iters->isNumber() || iters->number < 1)
            return fail(file, where + " has no iterations");
        if (!time || !time->isNumber())
            return fail(file, where + " has no real_time_s");
        if (!counters || !counters->isObject())
            return fail(file, where + " has no counters object");
        for (const auto &[key, value] : counters->obj) {
            if (!value.isNumber())
                return fail(file, where + " counter " + key +
                                      " is not a number");
        }
    }
}

/** Flat stats object: every member a number or a stats sub-object. */
void
validateStats(const std::string &file, const Value &root)
{
    if (!root.isObject())
        return fail(file, "stats root is not an object");
    if (root.obj.empty())
        return fail(file, "stats object is empty");
    for (const auto &[key, value] : root.obj) {
        if (value.isNumber())
            continue;
        if (!value.isObject())
            return fail(file, key + " is neither number nor object");
        const Value *count = value.find("count");
        if (!count || !count->isNumber())
            return fail(file, key + " has no numeric count");
    }
}

/** Chaos-soak report written by `shrimp_explore chaos --json`. */
void
validateChaos(const std::string &file, const Value &root)
{
    if (!root.isObject())
        return fail(file, "chaos root is not an object");
    const Value *ver = root.find("schema_version");
    if (!ver || !ver->isNumber() || ver->number != 1)
        return fail(file, "schema_version != 1");
    const Value *kind = root.find("kind");
    if (!kind || !kind->isString() || kind->str != "chaos")
        return fail(file, "kind != \"chaos\"");
    const Value *seed = root.find("seed");
    if (!seed || !seed->isNumber())
        return fail(file, "missing numeric seed");
    const Value *ok = root.find("ok");
    if (!ok || !ok->isBool())
        return fail(file, "missing boolean ok");
    const Value *fp = root.find("stats_fingerprint");
    if (!fp || !fp->isString() || fp->str.size() != 16)
        return fail(file, "stats_fingerprint is not 16 hex chars");
    const Value *violations = root.find("violations");
    if (!violations || !violations->isArray())
        return fail(file, "missing violations array");
    for (std::size_t i = 0; i < violations->arr.size(); ++i) {
        if (!violations->arr[i].isString())
            return fail(file, "violations[" + std::to_string(i) +
                                  "] is not a string");
    }
    // A report may only claim success with zero violations.
    if (ok->boolean && !violations->arr.empty())
        return fail(file, "ok is true but violations are present");
    const Value *counters = root.find("counters");
    if (!counters || !counters->isObject())
        return fail(file, "missing counters object");
    for (const char *key :
         {"writesIssued", "crashesInjected", "linkFlapsInjected",
          "heartbeatsSent", "peersDeclaredDead", "peersRecovered",
          "misroutes", "routeAroundDrops", "retransmits",
          "overloadBurstsInjected", "sendsRejected", "ecnMarksSeen",
          "ecnEchoesSent", "pacedRetransmits", "watchdogStalls",
          "pairsVerifiedExact", "dsmOpsIssued", "dsmOpsHostdown",
          "dsmRehomes", "partitionsInjected", "healsInjected",
          "partitionsDeclared", "staleEpochRejects",
          "niStaleEpochDrops", "fencedWritebacks", "endTick"}) {
        const Value *c = counters->find(key);
        if (!c || !c->isNumber())
            return fail(file,
                        std::string("counters.") + key + " missing");
    }
}

/**
 * BENCH_overload.json: the bench schema plus the congestion-collapse
 * regression gate. Over the Incast sweep the most-overloaded point
 * (highest load_pct, nominally 2x saturation) must still sustain at
 * least 80% of the peak goodput seen anywhere in the sweep -- a
 * collapsing send path (goodput falling as offered load rises) fails
 * here instead of in a human's eyeball.
 */
void
validateOverload(const std::string &file, const Value &root)
{
    int before = g_errors;
    validateBench(file, root);
    if (g_errors != before)
        return;
    const Value *results = root.find("results");
    double peak = 0.0;
    double top_load = -1.0, top_goodput = 0.0;
    std::string top_name;
    for (const Value &r : results->arr) {
        const Value *name = r.find("name");
        if (name->str.compare(0, 6, "Incast") != 0)
            continue;
        const Value *goodput = r.find("counters")->find("goodput_MBps");
        const Value *load = r.find("counters")->find("load_pct");
        if (!goodput || !goodput->isNumber())
            return fail(file, name->str + " has no goodput_MBps");
        if (!load || !load->isNumber())
            return fail(file, name->str + " has no load_pct");
        if (goodput->number > peak)
            peak = goodput->number;
        if (load->number > top_load) {
            top_load = load->number;
            top_goodput = goodput->number;
            top_name = name->str;
        }
    }
    if (top_load < 0.0)
        return fail(file, "no Incast results to gate on");
    if (peak <= 0.0)
        return fail(file, "Incast sweep moved no data");
    if (top_goodput < 0.8 * peak) {
        return fail(file, top_name + " collapsed: " +
                              std::to_string(top_goodput) +
                              " MB/s vs peak " + std::to_string(peak) +
                              " MB/s");
    }
}

/**
 * BENCH_dsm.json: the bench schema plus DSM-specific gates. Both the
 * fault-driven stencil and the migratory-counter drivers must be
 * present, each reporting a sane fault-latency distribution (p99 no
 * lower than p50) and forward progress (pages_per_s > 0).
 */
void
validateDsm(const std::string &file, const Value &root)
{
    int before = g_errors;
    validateBench(file, root);
    if (g_errors != before)
        return;
    const Value *results = root.find("results");
    bool have_stencil = false, have_migratory = false;
    for (const Value &r : results->arr) {
        const Value *name = r.find("name");
        bool stencil = name->str.compare(0, 7, "Stencil") == 0;
        bool migratory = name->str.compare(0, 9, "Migratory") == 0;
        if (!stencil && !migratory)
            continue;
        have_stencil |= stencil;
        have_migratory |= migratory;
        const Value *counters = r.find("counters");
        const Value *p50 = counters->find("fault_p50_us");
        const Value *p99 = counters->find("fault_p99_us");
        const Value *rate = counters->find("pages_per_s");
        if (!p50 || !p50->isNumber())
            return fail(file, name->str + " has no fault_p50_us");
        if (!p99 || !p99->isNumber())
            return fail(file, name->str + " has no fault_p99_us");
        if (!rate || !rate->isNumber())
            return fail(file, name->str + " has no pages_per_s");
        if (p99->number < p50->number) {
            return fail(file, name->str + " fault p99 " +
                                  std::to_string(p99->number) +
                                  " below p50 " +
                                  std::to_string(p50->number));
        }
        if (rate->number <= 0.0)
            return fail(file, name->str + " made no page progress");
    }
    if (!have_stencil)
        return fail(file, "no Stencil results");
    if (!have_migratory)
        return fail(file, "no Migratory results");
}

/**
 * BENCH_partition.json: the bench schema plus partition-recovery
 * gates. Every Partition* sweep point must report that the majority
 * actually detected the isolated node (time_to_detect_us > 0), that
 * the machine reintegrated after the heal (time_to_heal_us > 0), and
 * the fence accounting must balance: the machine-wide
 * stale_epoch_rejects total can never be smaller than the layered
 * drops it is supposed to account for (fenced_writebacks +
 * ni_stale_drops).
 */
void
validatePartition(const std::string &file, const Value &root)
{
    int before = g_errors;
    validateBench(file, root);
    if (g_errors != before)
        return;
    const Value *results = root.find("results");
    bool any = false;
    for (const Value &r : results->arr) {
        const Value *name = r.find("name");
        if (name->str.compare(0, 9, "Partition") != 0)
            continue;
        any = true;
        const Value *counters = r.find("counters");
        const Value *detect = counters->find("time_to_detect_us");
        const Value *heal = counters->find("time_to_heal_us");
        const Value *rejects = counters->find("stale_epoch_rejects");
        const Value *fenced = counters->find("fenced_writebacks");
        const Value *ni_drops = counters->find("ni_stale_drops");
        if (!detect || !detect->isNumber())
            return fail(file, name->str + " has no time_to_detect_us");
        if (!heal || !heal->isNumber())
            return fail(file, name->str + " has no time_to_heal_us");
        if (!rejects || !rejects->isNumber())
            return fail(file,
                        name->str + " has no stale_epoch_rejects");
        if (!fenced || !fenced->isNumber())
            return fail(file, name->str + " has no fenced_writebacks");
        if (!ni_drops || !ni_drops->isNumber())
            return fail(file, name->str + " has no ni_stale_drops");
        if (detect->number <= 0.0) {
            return fail(file, name->str +
                                  " never detected the partition");
        }
        if (heal->number <= 0.0)
            return fail(file, name->str + " never reintegrated");
        if (rejects->number < fenced->number + ni_drops->number) {
            return fail(file,
                        name->str + " fence accounting broken: " +
                            std::to_string(rejects->number) +
                            " rejects < " +
                            std::to_string(fenced->number) + " + " +
                            std::to_string(ni_drops->number) +
                            " layered drops");
        }
    }
    if (!any)
        return fail(file, "no Partition results");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(
            stderr,
            "usage: %s {trace|bench|stats|chaos|overload|dsm|"
            "partition} FILE...\n",
            argv[0]);
        return 2;
    }
    std::string mode = argv[1];
    if (mode != "trace" && mode != "bench" && mode != "stats" &&
        mode != "chaos" && mode != "overload" && mode != "dsm" &&
        mode != "partition") {
        std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
        return 2;
    }

    for (int i = 2; i < argc; ++i) {
        std::string path = argv[i];
        std::string text;
        if (!readFile(path, text)) {
            fail(path, "cannot read");
            continue;
        }
        Value root;
        try {
            root = shrimp::json::parse(text);
        } catch (const std::exception &e) {
            fail(path, std::string("JSON parse error: ") + e.what());
            continue;
        }
        if (mode == "trace")
            validateTrace(path, root);
        else if (mode == "bench")
            validateBench(path, root);
        else if (mode == "chaos")
            validateChaos(path, root);
        else if (mode == "overload")
            validateOverload(path, root);
        else if (mode == "dsm")
            validateDsm(path, root);
        else if (mode == "partition")
            validatePartition(path, root);
        else
            validateStats(path, root);
        if (g_errors == 0)
            std::printf("%s: ok\n", path.c_str());
    }
    return g_errors ? 1 : 0;
}
