/**
 * @file
 * shrimp_explore: a command-line front end to the simulator for quick
 * what-if exploration without writing code.
 *
 * Usage:
 *   shrimp_explore latency   [--nextgen] [--hops N] [--trace-out F]
 *                            [--stats-json F]
 *   shrimp_explore bandwidth [--nextgen] [--kb N] [--trace-out F]
 *                            [--stats-json F]
 *   shrimp_explore table1
 *   shrimp_explore stats     [--nextgen] [--reliable] [--drop PERMILLE]
 *                            [--trace-out F] [--stats-json F]
 *   shrimp_explore chaos     [--seed N] [--width W] [--height H]
 *                            [--duration-ms N] [--crashes N]
 *                            [--flaps N] [--partitions N] [--json F]
 *                            [--trace-out F]
 *
 * `latency` and `bandwidth` reproduce the paper's Section 5.1 numbers
 * for arbitrary parameters; `table1` prints the software-overhead
 * table; `stats` runs a small workload and dumps every component's
 * statistics (bus transactions, cache hits, NIPT traffic, ...).
 *
 * `chaos` runs one seeded chaos-soak schedule (node crash/restart
 * cycles, link flaps and, with --partitions, network partition/heal
 * cycles against mixed traffic) and checks the global invariants;
 * exit status 0 iff they all hold. `--chaos` is accepted
 * as an alias. --json FILE writes the machine-readable report.
 *
 * --trace-out FILE records a packet-lifecycle event trace and writes
 * it as Chrome trace-event JSON (open with ui.perfetto.dev);
 * --stats-json FILE writes the statistics as one flat JSON object.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "../bench/bench_util.hh"
#include "core/chaos.hh"
#include "core/table1.hh"

using namespace shrimp;

namespace
{

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

long
argValue(int argc, char **argv, const char *flag, long fallback)
{
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtol(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

const char *
argString(int argc, char **argv, const char *flag)
{
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

int
cmdLatency(int argc, char **argv)
{
    bool next_gen = hasFlag(argc, argv, "--nextgen");
    long hops = argValue(argc, argv, "--hops", 3);
    double us = bench_util::measureSingleWriteLatencyUs(
        next_gen, static_cast<unsigned>(hops),
        argString(argc, argv, "--trace-out"),
        argString(argc, argv, "--stats-json"));
    std::printf("single-write automatic-update latency\n");
    std::printf("  datapath : %s\n",
                next_gen ? "next-gen (Xpress-direct)"
                         : "EISA prototype");
    std::printf("  hops     : %ld\n", hops);
    std::printf("  latency  : %.3f us (paper: %s)\n", us,
                next_gen ? "< 1 us" : "slightly < 2 us");
    return 0;
}

int
cmdBandwidth(int argc, char **argv)
{
    bool next_gen = hasFlag(argc, argv, "--nextgen");
    long kb = argValue(argc, argv, "--kb", 64);
    auto r = bench_util::measureDeliberateBandwidth(
        next_gen, static_cast<Addr>(kb) * 1024,
        argString(argc, argv, "--trace-out"),
        argString(argc, argv, "--stats-json"));
    std::printf("deliberate-update streaming bandwidth\n");
    std::printf("  datapath  : %s\n",
                next_gen ? "next-gen (Xpress-direct)"
                         : "EISA prototype");
    std::printf("  transfer  : %ld KB in %zu packets\n", kb,
                static_cast<std::size_t>(r.packets));
    std::printf("  bandwidth : %.1f MB/s (paper: %s)\n", r.mbps,
                next_gen ? "~70 MB/s" : "33 MB/s");
    return 0;
}

int
cmdTable1()
{
    struct Row
    {
        const char *name;
        const char *paper;
        table1::PrimitiveCost cost;
    };
    Row rows[] = {
        {"single buffering", "9 (4+5)",
         table1::runSingleBuffering(false)},
        {"single buffering + copy", "21 (4+17)",
         table1::runSingleBuffering(true)},
        {"double buffering (case 1)", "2 (1+1)",
         table1::runDoubleBuffering(1)},
        {"double buffering (case 2)", "8 (3+5)",
         table1::runDoubleBuffering(2)},
        {"double buffering (case 3)", "10 (5+5)",
         table1::runDoubleBuffering(3)},
        {"deliberate-update transfer", "15 (15+0)",
         table1::runDeliberateUpdate()},
        {"csend and crecv (user)", "151 (73+78)",
         table1::runUserNx2()},
    };

    std::printf("%-28s %-12s %-14s %s\n", "primitive", "paper",
                "measured", "verified");
    for (const Row &row : rows) {
        char measured[32];
        std::snprintf(measured, sizeof(measured), "%.0f (%.0f+%.0f)",
                      row.cost.sendPerMsg + row.cost.recvPerMsg,
                      row.cost.sendPerMsg, row.cost.recvPerMsg);
        std::printf("%-28s %-12s %-14s %s\n", row.name, row.paper,
                    measured, row.cost.dataOk ? "yes" : "NO");
    }
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.nextGenDatapath = hasFlag(argc, argv, "--nextgen");
    // What-if: a lossy fabric healed by the NI reliability layer.
    cfg.ni.reliability.enabled = hasFlag(argc, argv, "--reliable");
    cfg.linkFaults.dropProb =
        argValue(argc, argv, "--drop", 0) / 1000.0;
    const char *trace_out = argString(argc, argv, "--trace-out");
    const char *stats_json = argString(argc, argv, "--stats-json");
    cfg.traceEnabled = trace_out != nullptr;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 32; ++i)
        pa.sti(R1, 4 * i, i, 4);
    pa.halt();
    pa.finalize();
    sys.kernel(0).loadAndReady(*a,
                               std::make_shared<Program>(std::move(pa)));
    Program pb("b");
    pb.halt();
    pb.finalize();
    sys.kernel(1).loadAndReady(*b,
                               std::make_shared<Program>(std::move(pb)));

    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(cfg.ni.reliability.enabled ? 50 * ONE_MS : ONE_MS);
    sys.dumpStats(std::cout);
    if (trace_out)
        sys.tracer()->writeFile(trace_out);
    if (stats_json) {
        std::ofstream out(stats_json);
        sys.dumpStatsJson(out);
    }
    return 0;
}

int
cmdChaos(int argc, char **argv)
{
    ChaosParams p;
    p.seed =
        static_cast<std::uint64_t>(argValue(argc, argv, "--seed", 1));
    p.meshWidth =
        static_cast<unsigned>(argValue(argc, argv, "--width", 2));
    p.meshHeight =
        static_cast<unsigned>(argValue(argc, argv, "--height", 2));
    p.duration = static_cast<Tick>(
                     argValue(argc, argv, "--duration-ms", 30)) *
                 ONE_MS;
    p.crashes =
        static_cast<unsigned>(argValue(argc, argv, "--crashes", 1));
    p.linkFlaps =
        static_cast<unsigned>(argValue(argc, argv, "--flaps", 3));
    p.overloadBursts =
        static_cast<unsigned>(argValue(argc, argv, "--bursts", 2));
    p.burstWritesPerSender = static_cast<unsigned>(
        argValue(argc, argv, "--burst-writes", 24));
    p.partitions = static_cast<unsigned>(
        argValue(argc, argv, "--partitions", 0));
    if (const char *trace = argString(argc, argv, "--trace-out"))
        p.tracePath = trace;

    ChaosReport r = runChaos(p);

    std::printf("chaos soak (seed %llu, %ux%u mesh, %llu ms)\n",
                static_cast<unsigned long long>(p.seed), p.meshWidth,
                p.meshHeight,
                static_cast<unsigned long long>(p.duration / ONE_MS));
    std::printf("  writes issued      : %llu\n",
                static_cast<unsigned long long>(r.writesIssued));
    std::printf("  crashes injected   : %llu\n",
                static_cast<unsigned long long>(r.crashesInjected));
    std::printf("  link flaps injected: %llu\n",
                static_cast<unsigned long long>(r.linkFlapsInjected));
    std::printf("  heartbeats sent    : %llu\n",
                static_cast<unsigned long long>(r.heartbeatsSent));
    std::printf("  peers died/recov.  : %llu / %llu\n",
                static_cast<unsigned long long>(r.peersDeclaredDead),
                static_cast<unsigned long long>(r.peersRecovered));
    std::printf("  misroutes          : %llu\n",
                static_cast<unsigned long long>(r.misroutes));
    std::printf("  retransmits        : %llu\n",
                static_cast<unsigned long long>(r.retransmits));
    std::printf("  overload bursts    : %llu\n",
                static_cast<unsigned long long>(
                    r.overloadBurstsInjected));
    std::printf("  ecn marks/echoes   : %llu / %llu\n",
                static_cast<unsigned long long>(r.ecnMarksSeen),
                static_cast<unsigned long long>(r.ecnEchoesSent));
    std::printf("  paced retransmits  : %llu\n",
                static_cast<unsigned long long>(r.pacedRetransmits));
    std::printf("  sends rejected     : %llu\n",
                static_cast<unsigned long long>(r.sendsRejected));
    std::printf("  watchdog stalls    : %llu\n",
                static_cast<unsigned long long>(r.watchdogStalls));
    std::printf("  pairs exact        : %llu\n",
                static_cast<unsigned long long>(r.pairsVerifiedExact));
    std::printf("  dsm ops/hostdown   : %llu / %llu\n",
                static_cast<unsigned long long>(r.dsmOpsIssued),
                static_cast<unsigned long long>(r.dsmOpsHostdown));
    std::printf("  dsm re-homes       : %llu\n",
                static_cast<unsigned long long>(r.dsmRehomes));
    std::printf("  partitions/heals   : %llu / %llu\n",
                static_cast<unsigned long long>(r.partitionsInjected),
                static_cast<unsigned long long>(r.healsInjected));
    std::printf("  quorum stalls      : %llu\n",
                static_cast<unsigned long long>(r.partitionsDeclared));
    std::printf("  stale epoch rejects: %llu (ni %llu, dsm wb %llu)\n",
                static_cast<unsigned long long>(r.staleEpochRejects),
                static_cast<unsigned long long>(r.niStaleEpochDrops),
                static_cast<unsigned long long>(r.fencedWritebacks));
    std::printf("  stats fingerprint  : %016llx\n",
                static_cast<unsigned long long>(r.statsFingerprint));
    std::printf("  invariants         : %s\n",
                r.ok ? "all hold" : "VIOLATED");
    for (const std::string &v : r.violations)
        std::printf("    ! %s\n", v.c_str());

    if (const char *path = argString(argc, argv, "--json")) {
        std::ofstream out(path);
        out << "{\n  \"schema_version\": 1,\n  \"kind\": \"chaos\",\n";
        out << "  \"seed\": " << p.seed << ",\n";
        out << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n";
        out << "  \"stats_fingerprint\": \"";
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(
                          r.statsFingerprint));
        out << fp << "\",\n";
        out << "  \"violations\": [";
        for (std::size_t i = 0; i < r.violations.size(); ++i) {
            out << (i ? ", " : "") << '"';
            for (char c : r.violations[i]) {
                if (c == '"' || c == '\\')
                    out << '\\';
                out << c;
            }
            out << '"';
        }
        out << "],\n  \"counters\": {\n";
        auto field = [&out](const char *key, std::uint64_t v,
                            bool last = false) {
            out << "    \"" << key << "\": " << v
                << (last ? "\n" : ",\n");
        };
        field("writesIssued", r.writesIssued);
        field("crashesInjected", r.crashesInjected);
        field("linkFlapsInjected", r.linkFlapsInjected);
        field("heartbeatsSent", r.heartbeatsSent);
        field("peersDeclaredDead", r.peersDeclaredDead);
        field("peersRecovered", r.peersRecovered);
        field("misroutes", r.misroutes);
        field("routeAroundDrops", r.routeAroundDrops);
        field("retransmits", r.retransmits);
        field("overloadBurstsInjected", r.overloadBurstsInjected);
        field("sendsRejected", r.sendsRejected);
        field("ecnMarksSeen", r.ecnMarksSeen);
        field("ecnEchoesSent", r.ecnEchoesSent);
        field("pacedRetransmits", r.pacedRetransmits);
        field("watchdogStalls", r.watchdogStalls);
        field("pairsVerifiedExact", r.pairsVerifiedExact);
        field("dsmOpsIssued", r.dsmOpsIssued);
        field("dsmOpsHostdown", r.dsmOpsHostdown);
        field("dsmRehomes", r.dsmRehomes);
        field("partitionsInjected", r.partitionsInjected);
        field("healsInjected", r.healsInjected);
        field("partitionsDeclared", r.partitionsDeclared);
        field("staleEpochRejects", r.staleEpochRejects);
        field("niStaleEpochDrops", r.niStaleEpochDrops);
        field("fencedWritebacks", r.fencedWritebacks);
        field("endTick", r.endTick, true);
        out << "  }\n}\n";
    }
    return r.ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s {latency|bandwidth|table1|stats|chaos} "
                     "[options]\n",
                     argv[0]);
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "latency")
        return cmdLatency(argc, argv);
    if (cmd == "bandwidth")
        return cmdBandwidth(argc, argv);
    if (cmd == "table1")
        return cmdTable1();
    if (cmd == "stats")
        return cmdStats(argc, argv);
    if (cmd == "chaos" || cmd == "--chaos")
        return cmdChaos(argc, argv);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}
