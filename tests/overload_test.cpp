/**
 * @file
 * Overload-survival tests: the end-to-end congestion-control layer
 * (router/FIFO ECN marks echoed on ACKs into AIMD window cuts),
 * kernel admission control (fail-fast WOULDBLOCK instead of queueing
 * toward unhealthy or persistently-congested peers), graceful
 * send-path degradation when the outgoing FIFO overflows, and the
 * per-NI progress watchdog. The sender-side protocol mechanics (AIMD
 * arithmetic, pacer, jitter) are unit-tested in retransmit_test.cpp;
 * these tests drive whole systems.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;

/** Schedule @p count host-driven 4-byte stores through @p sys's bus. */
void
scheduleStores(ShrimpSystem &sys, NodeId node, Addr paddr,
               unsigned count, Tick start, Tick spacing)
{
    EventQueue &eq = sys.eventQueue();
    for (unsigned i = 0; i < count; ++i) {
        eq.scheduleFn(
            [&sys, node, paddr, i]() {
                std::uint32_t value = 0xC0DE0000u + i;
                sys.node(node).bus.postWrite(paddr + 4 * i, &value, 4,
                                             BusMaster::CPU,
                                             sys.curTick());
            },
            start + Tick{i} * spacing, EventPriority::DEFAULT,
            "overload store");
    }
}

TEST(Overload, EcnMarksEchoedAndSenderWindowsShrink)
{
    // Three senders incast one receiver over a 1x4 line, so every
    // DATA packet funnels through one ejection port. Router queues
    // rise past the ECN threshold, marks are latched by the receiver
    // and echoed on ACKs, and the senders' AIMD windows must shrink
    // -- yet every word still arrives exactly once.
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 1;
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.congestion.enabled = true;
    cfg.router.ecnThresholdPackets = 2;
    ShrimpSystem sys(cfg);

    constexpr unsigned kStores = 64;
    Process *hot = sys.kernel(0).createProcess("hot");
    Addr dst_base = hot->allocate(3);
    for (NodeId s = 1; s <= 3; ++s) {
        Process *p = sys.kernel(s).createProcess("src");
        Addr src = p->allocate(1);
        ASSERT_EQ(sys.kernel(s).mapDirect(*p, src, 1, sys.kernel(0),
                                          *hot,
                                          dst_base + (s - 1) * PAGE_SIZE,
                                          UpdateMode::AUTO_SINGLE),
                  err::OK);
        Translation t = p->space().translate(src, true);
        ASSERT_TRUE(t.ok());
        scheduleStores(sys, s, t.paddr, kStores, ONE_US, 200);
    }

    sys.runFor(50 * ONE_MS);

    // The congestion signal made the full round trip...
    EXPECT_GT(sys.node(0).ni.ecnMarksSeen(), 0u);
    EXPECT_GT(sys.node(0).ni.ecnEchoesSent(), 0u);
    std::uint64_t backoffs = 0;
    for (NodeId s = 1; s <= 3; ++s)
        backoffs += sys.node(s).ni.retransmitBuffer().ecnBackoffs();
    EXPECT_GT(backoffs, 0u);

    // ...and shaped, not corrupted, the flow: exact delivery.
    for (NodeId s = 1; s <= 3; ++s) {
        EXPECT_EQ(sys.node(s).ni.retransmitBuffer().windowFill(0), 0u);
        Translation dt = hot->space().translate(
            dst_base + (s - 1) * PAGE_SIZE, false);
        ASSERT_TRUE(dt.ok());
        for (unsigned i = 0; i < kStores; ++i) {
            EXPECT_EQ(sys.node(0).mem.readInt(dt.paddr + 4 * i, 4),
                      0xC0DE0000u + i)
                << "sender " << s << " word " << i;
        }
    }
}

TEST(Overload, AdmissionRejectsSendsTowardSuspectPeer)
{
    // A partition silences the peer's heartbeats. Once it turns
    // SUSPECT, admission control must refuse new work up front with
    // WOULDBLOCK -- and admit again after the partition heals.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.health.enabled = true;
    cfg.router.faultTolerant = true;    // dead links drop, not wedge
    cfg.admission.enabled = true;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(2);
    Addr dst = b->allocate(2);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);

    sys.eventQueue().scheduleFn(
        [&sys]() {
            sys.backplane().router(0).setLinkDead(Router::EAST, true);
            sys.backplane().router(1).setLinkDead(Router::WEST, true);
        },
        ONE_MS, EventPriority::DEFAULT, "partition");

    // suspectTimeout (400us) past the partition, well before
    // deadTimeout (1200us): the peer is SUSPECT, not yet DEAD.
    sys.runFor(ONE_MS + 700 * ONE_US);
    ASSERT_EQ(sys.kernel(0).health()->peerState(1),
              PeerHealth::SUSPECT);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src + PAGE_SIZE, 1,
                                      sys.kernel(1), *b,
                                      dst + PAGE_SIZE,
                                      UpdateMode::AUTO_SINGLE),
              err::WOULDBLOCK);
    EXPECT_GE(sys.kernel(0).sendsRejected(), 1u);

    // Heal; heartbeats resume; admission must reopen.
    sys.backplane().router(0).setLinkDead(Router::EAST, false);
    sys.backplane().router(1).setLinkDead(Router::WEST, false);
    sys.runFor(5 * ONE_MS);
    ASSERT_EQ(sys.kernel(0).health()->peerState(1), PeerHealth::ALIVE);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src + PAGE_SIZE, 1,
                                      sys.kernel(1), *b,
                                      dst + PAGE_SIZE,
                                      UpdateMode::AUTO_SINGLE),
              err::OK);
}

TEST(Overload, AdmissionFailsFastWhenWindowStaysFull)
{
    // A black-hole path keeps the reliability window full. After
    // windowFullAfter of no progress, new sends must fail fast with
    // WOULDBLOCK instead of piling onto a queue that cannot drain.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.maxRetries = 50;     // outlive the test window
    cfg.linkFaults = faults;
    cfg.admission.enabled = true;
    cfg.admission.rejectSuspectPeers = false;   // isolate this path
    cfg.admission.windowFullAfter = 500 * ONE_US;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(2);
    Addr dst = b->allocate(2);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);
    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());

    // More stores than windowPackets: the window jams at its limit.
    scheduleStores(sys, 0, t.paddr, 40, ONE_US, 100);
    sys.runFor(2 * ONE_MS);

    ASSERT_GT(sys.node(0).ni.retransmitBuffer().windowFullSince(1), 0u);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src + PAGE_SIZE, 1,
                                      sys.kernel(1), *b,
                                      dst + PAGE_SIZE,
                                      UpdateMode::AUTO_SINGLE),
              err::WOULDBLOCK);
    EXPECT_GE(sys.kernel(0).sendsRejected(), 1u);
}

TEST(Overload, SendOverflowShedsLoadWithoutCorruption)
{
    // Host-driven stores outrun a tiny outgoing FIFO. The NI must
    // shed the excess gracefully -- counted drops before a sequence
    // number is consumed, so the reliable stream stays gapless -- and
    // every word that does arrive is one the sender really stored.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.outFifo = PacketFifo::Params{512, 384, 128};
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);
    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());

    constexpr unsigned kStores = 200;
    scheduleStores(sys, 0, t.paddr, kStores, ONE_US, 10);
    sys.runFor(50 * ONE_MS);

    ShrimpNi &tx = sys.node(0).ni;
    EXPECT_GT(tx.sendOverflowDrops(), 0u);
    // The stream still quiesces: everything sequenced was delivered.
    EXPECT_EQ(tx.retransmitBuffer().windowFill(1), 0u);
    EXPECT_EQ(tx.retransmitBuffer().channelsFailed(), 0u);

    // Safety: delivered words are exact copies, dropped words leave
    // their destination slot untouched (zero).
    Translation dt = b->space().translate(dst, false);
    ASSERT_TRUE(dt.ok());
    unsigned delivered = 0;
    for (unsigned i = 0; i < kStores; ++i) {
        auto v = static_cast<std::uint32_t>(
            sys.node(1).mem.readInt(dt.paddr + 4 * i, 4));
        if (v == 0)
            continue;   // shed
        EXPECT_EQ(v, 0xC0DE0000u + i) << "word " << i;
        ++delivered;
    }
    EXPECT_EQ(delivered + tx.sendOverflowDrops(), kStores);
}

TEST(Overload, WatchdogFlagsStallThenClearsAfterRecovery)
{
    // A total black hole parks the whole backlog: the window jams,
    // backed-off retransmissions stretch far apart, and between them
    // nothing moves. The watchdog must flag the stall (once per
    // episode) while work is queued, then clear it when the path
    // heals and the backlog drains.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.rtoBase = 50 * ONE_US;
    cfg.ni.reliability.rtoMax = 2 * ONE_MS;
    cfg.ni.reliability.maxRetries = 30;
    cfg.ni.watchdogPeriod = 200 * ONE_US;
    cfg.linkFaults = faults;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);
    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());

    // More stores than windowPackets: the excess parks in the
    // outgoing FIFO, which is the queued work the watchdog monitors.
    constexpr unsigned kStores = 60;
    scheduleStores(sys, 0, t.paddr, kStores, ONE_US, 100);

    sys.runFor(8 * ONE_MS);
    EXPECT_GE(sys.node(0).ni.watchdogStalls(), 1u);

    // Heal the links; the next backed-off retransmission gets through
    // and the pipeline restarts.
    sys.backplane().router(0).setFaultModel(Router::EAST,
                                            FaultModel::Params{});
    sys.backplane().router(1).setFaultModel(Router::WEST,
                                            FaultModel::Params{});
    sys.runFor(12 * ONE_MS);

    EXPECT_FALSE(sys.node(0).ni.progressStalled());
    EXPECT_EQ(sys.node(0).ni.retransmitBuffer().windowFill(1), 0u);
    EXPECT_EQ(sys.node(0).ni.retransmitBuffer().channelsFailed(), 0u);
    Translation dt = b->space().translate(dst, false);
    ASSERT_TRUE(dt.ok());
    for (unsigned i = 0; i < kStores; ++i)
        EXPECT_EQ(sys.node(1).mem.readInt(dt.paddr + 4 * i, 4),
                  0xC0DE0000u + i);
}

} // namespace
} // namespace shrimp
