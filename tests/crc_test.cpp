/**
 * @file
 * Unit tests for CRC-16 and the packet format.
 */

#include <gtest/gtest.h>

#include "net/crc.hh"
#include "net/packet.hh"

namespace shrimp
{
namespace
{

TEST(Crc16, KnownVector)
{
    // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
    EXPECT_EQ(crc16("123456789", 9), 0x29B1);
}

TEST(Crc16, EmptyIsInit)
{
    Crc16 c;
    EXPECT_EQ(c.value(), 0xFFFF);
}

TEST(Crc16, IncrementalMatchesOneShot)
{
    Crc16 c;
    c.update("1234", 4);
    c.update("56789", 5);
    EXPECT_EQ(c.value(), crc16("123456789", 9));
}

TEST(Crc16, DetectsSingleBitError)
{
    std::uint8_t data[16] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::uint16_t good = crc16(data, sizeof(data));
    data[3] ^= 0x10;
    EXPECT_NE(crc16(data, sizeof(data)), good);
}

TEST(NetPacket, SealAndVerify)
{
    NetPacket pkt;
    pkt.srcNode = 1;
    pkt.dstNode = 2;
    pkt.dstX = 0;
    pkt.dstY = 1;
    pkt.dstPaddr = 0x1234;
    pkt.payload = {0xde, 0xad, 0xbe, 0xef};
    pkt.sealCrc();
    EXPECT_TRUE(pkt.crcOk());

    pkt.payload[2] ^= 1;
    EXPECT_FALSE(pkt.crcOk());
    pkt.payload[2] ^= 1;
    EXPECT_TRUE(pkt.crcOk());

    // Header fields are covered too.
    pkt.dstPaddr ^= 0x8000;
    EXPECT_FALSE(pkt.crcOk());
}

TEST(NetPacket, WireSizeIncludesOverhead)
{
    NetPacket pkt;
    pkt.payload.resize(100);
    EXPECT_EQ(pkt.wireBytes(),
              100 + NetPacket::headerBytes + NetPacket::crcBytes);
}

} // namespace
} // namespace shrimp
