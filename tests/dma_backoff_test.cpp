/**
 * @file
 * Tests for the DMA-claim backoff strategy (paper Section 4.3): a
 * busy command-page read returns the words remaining, so a claimant
 * can back off proportionally instead of hammering the memory bus
 * with locked CMPXCHG cycles.
 */

#include <gtest/gtest.h>

#include "msg/deliberate.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;
using test::poke32;

/**
 * Two processes on node 0, each sending one full page via deliberate
 * update, contending for the single DMA engine. Returns the total
 * locked bus operations executed.
 */
std::uint64_t
runContention(bool with_backoff, ShrimpSystem &sys)
{
    Process *recv = sys.kernel(1).createProcess("recv");
    Addr dst = recv->allocate(2);

    for (int i = 0; i < 2; ++i) {
        Process *p =
            sys.kernel(0).createProcess("s" + std::to_string(i));
        Addr src = p->allocate(1);
        sys.kernel(0).mapDirect(*p, src, 1, sys.kernel(1), *recv,
                                dst + i * PAGE_SIZE,
                                UpdateMode::DELIBERATE);
        Addr cmd = sys.kernel(0).mapCommandPages(*p, src, 1);
        std::int64_t delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

        for (Addr off = 0; off < PAGE_SIZE; off += 4)
            poke32(sys, 0, *p, src + off,
                   static_cast<std::uint32_t>(0x7100 + i));

        Program prog(p->name());
        prog.movi(R3, src);
        prog.movi(R1, PAGE_SIZE);
        if (with_backoff) {
            msg::emitDeliberateSendBackoff(prog, delta, "bo");
        } else {
            msg::emitDeliberateSendSingle(prog, delta, "s", "multi");
        }
        prog.label("wait");
        msg::emitDeliberateCheck(prog);
        prog.jnz("wait");
        prog.halt();
        if (!with_backoff) {
            prog.label("multi");
            prog.halt();
        }
        loadProgram(sys.kernel(0), *p, std::move(prog));
    }
    Program pr("recv");
    pr.halt();
    loadProgram(sys.kernel(1), *recv, std::move(pr));

    sys.startAll();
    EXPECT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);

    // Both pages arrived intact.
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(peek32(sys, 1, *recv, dst + i * PAGE_SIZE),
                  0x7100u + i);
    }
    EXPECT_EQ(sys.node(0).ni.dma().transfersStarted(), 2u);
    return sys.node(0).cpu.lockedOps();
}

TEST(DmaBackoff, BothStrategiesCompleteTransfers)
{
    // A short quantum interleaves the two claimants while the first
    // transfer is still draining. A small outgoing FIFO keeps the DMA
    // engine busy for the whole EISA-limited drain (~124 us/page)
    // instead of letting it dump the page into buffering, so the
    // second claimant really contends.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.kernel.quantum = 20 * ONE_US;
    cfg.ni.outFifo.capacityBytes = 2048;
    cfg.ni.outFifo.highThresholdBytes = 2048;   // never interrupts
    cfg.ni.outFifo.lowThresholdBytes = 512;

    ShrimpSystem naive(cfg);
    std::uint64_t naive_locked = runContention(false, naive);

    ShrimpSystem backoff(cfg);
    std::uint64_t backoff_locked = runContention(true, backoff);

    // Same work done; the backoff claimant issues far fewer locked
    // bus cycles while the engine is busy.
    EXPECT_GE(naive_locked, 2u);
    EXPECT_GE(backoff_locked, 2u);
    EXPECT_LT(backoff_locked * 3, naive_locked)
        << "naive=" << naive_locked << " backoff=" << backoff_locked;
}

TEST(DmaBackoff, UncontendedCostsStayLow)
{
    // With a free engine the backoff macro claims on the first try,
    // exactly like the plain macro.
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::DELIBERATE);
    Addr cmd = sys.kernel(0).mapCommandPages(*a, src, 1);
    std::int64_t delta = static_cast<std::int64_t>(cmd) -
                         static_cast<std::int64_t>(src);
    poke32(sys, 0, *a, src, 0x99);

    Program pa("a");
    pa.movi(R3, src);
    pa.movi(R1, 64);
    msg::emitDeliberateSendBackoff(pa, delta, "bo");
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);
    EXPECT_EQ(peek32(sys, 1, *b, dst), 0x99u);
    EXPECT_EQ(sys.node(0).cpu.lockedOps(), 1u);
}

} // namespace
} // namespace shrimp
