/**
 * @file
 * Liveness detection and node-failure recovery: heartbeat-driven
 * crash detection, mapping teardown toward a dead peer (without
 * collateral damage to live traffic), deliberate-DMA abort, and full
 * restart + remap recovery.
 */

#include <gtest/gtest.h>

#include "nic/deliberate_dma.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

SystemConfig
healthyConfig(unsigned width = 3, unsigned height = 1)
{
    SystemConfig cfg;
    cfg.meshWidth = width;
    cfg.meshHeight = height;
    cfg.ni.reliability.enabled = true;
    cfg.health.enabled = true;
    cfg.health.heartbeatPeriod = 50 * ONE_US;
    cfg.health.suspectTimeout = 200 * ONE_US;
    cfg.health.deadTimeout = 600 * ONE_US;
    return cfg;
}

TEST(Health, SteadyStateAllAlive)
{
    ShrimpSystem sys(healthyConfig());
    sys.runFor(5 * ONE_MS);
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        HealthMonitor *h = sys.kernel(id).health();
        ASSERT_NE(h, nullptr);
        EXPECT_GT(h->heartbeatsSent(), 0u);
        EXPECT_GT(h->heartbeatsReceived(), 0u);
        EXPECT_EQ(h->peersDeclaredDead(), 0u);
        for (NodeId peer = 0; peer < sys.numNodes(); ++peer) {
            if (peer != id) {
                EXPECT_EQ(h->peerState(peer), PeerHealth::ALIVE);
            }
        }
    }
}

TEST(Health, CrashDetectedWithinDeadTimeout)
{
    SystemConfig cfg = healthyConfig();
    ShrimpSystem sys(cfg);
    sys.runFor(ONE_MS);     // settle into steady heartbeating

    sys.crashNode(1);
    EXPECT_TRUE(sys.nodeCrashed(1));

    // Detection must land within the dead timeout plus two heartbeat
    // evaluation periods of slack.
    sys.runFor(cfg.health.deadTimeout + 2 * cfg.health.heartbeatPeriod);
    for (NodeId id : {NodeId{0}, NodeId{2}}) {
        HealthMonitor *h = sys.kernel(id).health();
        EXPECT_EQ(h->peerState(1), PeerHealth::DEAD)
            << "node " << id << " missed the crash";
        EXPECT_GE(h->peersDeclaredDead(), 1u);
        EXPECT_TRUE(sys.kernel(id).peerFailed(1));
    }
    // The victim's own detector is paused, not reporting nonsense.
    EXPECT_FALSE(sys.kernel(1).health()->running());
}

TEST(Health, DeadPeerErrorsMappingsWithoutStallingOthers)
{
    ShrimpSystem sys(healthyConfig());

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Process *c = sys.kernel(2).createProcess("c");
    Addr srcToB = a->allocate(1), srcToC = a->allocate(1);
    Addr dstB = b->allocate(1), dstC = c->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, srcToB, 1, sys.kernel(1), *b,
                                      dstB, UpdateMode::AUTO_SINGLE),
              err::OK);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, srcToC, 1, sys.kernel(2), *c,
                                      dstC, UpdateMode::AUTO_SINGLE),
              err::OK);
    sys.runFor(ONE_MS);

    sys.crashNode(1);
    sys.runFor(2 * ONE_MS);
    ASSERT_TRUE(sys.kernel(0).peerFailed(1));

    // The mapping toward the dead peer reports statusMapError on its
    // command page...
    auto &ni = sys.node(0).ni;
    Translation tb = a->space().translate(srcToB, false);
    ASSERT_TRUE(tb.ok());
    EXPECT_EQ(ni.busRead(ni.cmdAddrFor(tb.paddr), 8),
              ShrimpNi::statusMapError);

    // ...while traffic to the live peer flows undisturbed.
    Translation tc = a->space().translate(srcToC, false);
    ASSERT_TRUE(tc.ok());
    std::uint32_t value = 0xA11CE;
    sys.node(0).bus.postWrite(tc.paddr, &value, 4, BusMaster::CPU,
                              sys.curTick());
    sys.runFor(ONE_MS);
    EXPECT_EQ(ni.busRead(ni.cmdAddrFor(tc.paddr), 8), 0u);
    Translation td = c->space().translate(dstC, false);
    ASSERT_TRUE(td.ok());
    EXPECT_EQ(sys.node(2).mem.readInt(td.paddr, 4), 0xA11CEu);

    // New maps toward the dead peer are refused up front.
    Addr more = a->allocate(1);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, more, 1, sys.kernel(1), *b,
                                      dstB, UpdateMode::AUTO_SINGLE),
              err::HOSTDOWN);
}

TEST(Health, DeliberateDmaAbortsOnPeerDeath)
{
    SystemConfig cfg = healthyConfig(2, 1);
    // Make the retransmit layer give up quickly so the in-flight DMA
    // hits the dead peer's teardown path, not a 5 ms retry tail.
    cfg.ni.reliability.rtoBase = 20 * ONE_US;
    cfg.ni.reliability.rtoMax = 100 * ONE_US;
    cfg.ni.reliability.maxRetries = 3;
    // A tiny window and outgoing FIFO wedge the engine mid-transfer
    // once the receiver stops acking, so death finds it still busy.
    cfg.ni.reliability.windowPackets = 4;
    cfg.ni.outFifo = PacketFifo::Params{2048, 1536, 512};
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1), dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::DELIBERATE),
              err::OK);
    sys.runFor(ONE_MS);

    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());
    for (unsigned i = 0; i < 64; ++i)
        sys.node(0).mem.writeInt(t.paddr + 4 * i, 0x5EED + i, 4);

    // Start a whole-page deliberate transfer, then kill the receiver
    // while the engine is still pushing chunks.
    auto &ni = sys.node(0).ni;
    std::uint32_t nwords = PAGE_SIZE / 4;
    sys.node(0).bus.postWrite(ni.cmdAddrFor(t.paddr), &nwords, 4,
                              BusMaster::CPU, sys.curTick());
    sys.runFor(2 * ONE_US);
    sys.crashNode(1);
    sys.runFor(5 * ONE_MS);

    ASSERT_TRUE(sys.kernel(0).peerFailed(1));
    std::uint64_t status = ni.busRead(ni.cmdAddrFor(t.paddr), 8);
    EXPECT_TRUE(status == dma_status::ABORTED ||
                status == ShrimpNi::statusMapError)
        << "status " << status;
    EXPECT_GE(sys.node(0).ni.dma().transfersAborted(), 1u);
    // The engine is free again for future transfers.
    EXPECT_FALSE(sys.node(0).ni.dma().busy());
}

TEST(Health, RestartAndRemapRestoresDelivery)
{
    SystemConfig cfg = healthyConfig();
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1), dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);
    sys.runFor(ONE_MS);

    sys.crashNode(1);
    sys.runFor(2 * ONE_MS);
    ASSERT_TRUE(sys.kernel(0).peerFailed(1));

    sys.restartNode(1);
    // Recovery needs the restarted node's next heartbeat to land.
    sys.runFor(2 * ONE_MS);
    EXPECT_FALSE(sys.kernel(0).peerFailed(1));
    EXPECT_EQ(sys.kernel(0).health()->peerState(1), PeerHealth::ALIVE);
    EXPECT_GE(sys.kernel(0).health()->peersRecovered(), 1u);

    // The old mapping was torn down; an explicit remap brings the
    // pair back end to end.
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);
    sys.runFor(ONE_MS);

    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());
    std::uint32_t value = 0xBEA7;
    sys.node(0).bus.postWrite(t.paddr, &value, 4, BusMaster::CPU,
                              sys.curTick());
    sys.runFor(ONE_MS);
    Translation td = b->space().translate(dst, false);
    ASSERT_TRUE(td.ok());
    EXPECT_EQ(sys.node(1).mem.readInt(td.paddr, 4), 0xBEA7u);
}

} // namespace
} // namespace shrimp
