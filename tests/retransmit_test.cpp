/**
 * @file
 * Reliability-layer tests: the end-to-end ACK/NACK retransmission
 * protocol over a faulty backplane (drop, corrupt, duplicate,
 * reorder), plus graceful degradation when a destination becomes
 * unreachable. The CRC tests in reliability_test.cpp show corruption
 * is *detected*; these show that with ni.reliability enabled every
 * mapped word is also *delivered* -- exactly once, in order -- and
 * that a dead channel errors its mappings instead of asserting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

constexpr int kWords = 256;

/** Two nodes, reliability on, the given link fault mix. */
SystemConfig
faultyConfig(const FaultModel::Params &faults)
{
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.linkFaults = faults;
    return cfg;
}

/** One store per word: dst[i] = 0x1000 + i for i in [0, kWords). */
Program
streamProgram(Addr src)
{
    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, 0x1000);
    pa.movi(R3, 0x1000 + kWords);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);
    pa.addi(R1, 4);
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    return pa;
}

/** Run the stream and assert every word arrived exact and in place. */
void
runStream(ShrimpSystem &sys, Process &a, Process &b, Addr src, Addr dst,
          Tick settle)
{
    Program pa = streamProgram(src);
    loadProgram(sys.kernel(0), a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(settle);

    for (int i = 0; i < kWords; ++i) {
        ASSERT_EQ(peek32(sys, 1, b, dst + 4 * i),
                  static_cast<std::uint32_t>(0x1000 + i))
            << "word " << i << " wrong or missing";
    }
}

TEST(Retransmit, DropAndCorruptEveryWordDeliveredExactlyOnce)
{
    // The ISSUE acceptance scenario: 5% drop + 1% corrupt on every
    // link, yet the mapped page converges to a bit-exact copy.
    FaultModel::Params faults;
    faults.dropProb = 0.05;
    faults.corruptProb = 0.01;
    faults.seed = 424242;
    ShrimpSystem sys(faultyConfig(faults));

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 100 * ONE_MS);

    // The fabric really was faulty and the protocol really repaired it.
    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    auto &retx = tx.retransmitBuffer();
    EXPECT_GT(retx.timeoutRetransmits() + retx.nackRetransmits(), 0u);
    EXPECT_GT(rx.acksSent(), 0u);
    EXPECT_EQ(retx.channelsFailed(), 0u);
    EXPECT_EQ(tx.mappingsErrored(), 0u);
    EXPECT_EQ(retx.windowFill(1), 0u);  // everything acknowledged
}

TEST(Retransmit, DuplicatesSuppressed)
{
    FaultModel::Params faults;
    faults.duplicateProb = 0.2;
    faults.seed = 7;
    ShrimpSystem sys(faultyConfig(faults));

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 50 * ONE_MS);

    auto &rx = sys.node(1).ni;
    EXPECT_GT(rx.duplicatesSuppressed(), 0u);
    // Exactly-once: the FIFO only ever saw kWords distinct packets.
    EXPECT_EQ(rx.packetsDelivered(), static_cast<unsigned>(kWords));
}

TEST(Retransmit, ReorderedPacketsRestoredInOrder)
{
    FaultModel::Params faults;
    faults.reorderProb = 0.3;
    faults.seed = 99;
    ShrimpSystem sys(faultyConfig(faults));

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 50 * ONE_MS);

    auto &rx = sys.node(1).ni;
    EXPECT_GT(rx.reorderFixes(), 0u);
    EXPECT_EQ(rx.packetsDelivered(), static_cast<unsigned>(kWords));
}

TEST(Retransmit, NackTriggersFastRetransmitBeforeTimeout)
{
    // Clean links; corrupt exactly one packet at the source NI. The
    // receiver's CRC check NACKs it and the copy must arrive via fast
    // retransmit, never waiting out the (long) timeout.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.rtoBase = 10 * ONE_MS;   // timeout = test fails
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    sys.node(0).ni.corruptNextPacket();

    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 8; ++i)
        pa.sti(R1, 4 * i, 0xB00 + i, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);     // well under rtoBase

    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    EXPECT_GE(rx.nacksSent(), 1u);
    EXPECT_GE(tx.nacksReceived(), 1u);
    EXPECT_GE(tx.retransmitBuffer().nackRetransmits(), 1u);
    EXPECT_EQ(tx.retransmitBuffer().timeoutRetransmits(), 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(peek32(sys, 1, *b, dst + 4 * i),
                  static_cast<std::uint32_t>(0xB00 + i));
}

TEST(Retransmit, TimeoutBackoffGrows)
{
    // A black-hole link: every retransmission times out, so the rto
    // must grow exponentially instead of hammering the fabric.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = faultyConfig(faults);
    cfg.ni.reliability.rtoBase = 10 * ONE_US;
    cfg.ni.reliability.rtoMax = ONE_MS;
    cfg.ni.reliability.maxRetries = 50;     // stay below the cap
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAB, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    auto &retx = sys.node(0).ni.retransmitBuffer();
    EXPECT_GE(retx.timeoutRetransmits(), 3u);
    EXPECT_GT(retx.currentRto(1), cfg.ni.reliability.rtoBase);
    EXPECT_LE(retx.currentRto(1), cfg.ni.reliability.rtoMax);
    EXPECT_EQ(retx.channelsFailed(), 0u);
}

TEST(Retransmit, RetryCapDegradesGracefully)
{
    // Retry budget exhausted toward a black hole: the channel fails,
    // the mappings error, the kernel hears about it, and the command
    // page reports the failure to user level -- no assertion anywhere.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = faultyConfig(faults);
    cfg.ni.reliability.rtoBase = 10 * ONE_US;
    cfg.ni.reliability.rtoMax = 100 * ONE_US;
    cfg.ni.reliability.maxRetries = 3;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xCD, 4);
    pa.sti(R1, 4, 0xEF, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(10 * ONE_MS);

    auto &tx = sys.node(0).ni;
    auto &retx = tx.retransmitBuffer();
    EXPECT_EQ(retx.channelsFailed(), 1u);
    EXPECT_TRUE(retx.isFailed(1));
    EXPECT_GE(tx.mappingsErrored(), 1u);

    // The kernel callback fired and recorded the failed peer.
    EXPECT_GE(sys.kernel(0).mappingErrors(), 1u);
    EXPECT_TRUE(sys.kernel(0).peerFailed(1));
    EXPECT_FALSE(sys.kernel(0).peerFailed(0));

    // User level sees the error through the mapping's command page.
    Translation t = a->space().translate(src, false);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(tx.busRead(tx.cmdAddrFor(t.paddr), 8),
              ShrimpNi::statusMapError);

    // The errored mapping stops producing packets: a late store is
    // discarded quietly instead of feeding the dead window.
    std::uint64_t sent_before = tx.packetsSent();
    test::poke32(sys, 0, *a, src, 0x11);    // host write, no snoop
    sys.runFor(ONE_MS);
    EXPECT_EQ(tx.packetsSent(), sent_before);
}

TEST(Retransmit, CleanLinksNoRetransmissions)
{
    // Reliability enabled over a clean fabric must be pure overhead
    // bookkeeping: ACKs flow, nothing retransmits, nothing duplicates.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 10 * ONE_MS);

    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    auto &retx = tx.retransmitBuffer();
    EXPECT_EQ(rx.packetsDelivered(), static_cast<unsigned>(kWords));
    EXPECT_EQ(retx.timeoutRetransmits(), 0u);
    EXPECT_EQ(retx.nackRetransmits(), 0u);
    EXPECT_EQ(rx.duplicatesSuppressed(), 0u);
    EXPECT_EQ(rx.nacksSent(), 0u);
    EXPECT_GT(rx.acksSent(), 0u);
    EXPECT_EQ(tx.acksReceived(), rx.acksSent());
}

TEST(Retransmit, BackoffExponentHonorsCap)
{
    // With a tiny exponent cap the rto must plateau at
    // rtoBase << cap even though rtoMax would allow far more, and the
    // Peak stats must record exactly that plateau.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = faultyConfig(faults);
    cfg.ni.reliability.rtoBase = 10 * ONE_US;
    cfg.ni.reliability.rtoMax = 100 * ONE_MS;
    cfg.ni.reliability.backoffExpCap = 3;
    cfg.ni.reliability.maxRetries = 20;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAB, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    auto &retx = sys.node(0).ni.retransmitBuffer();
    EXPECT_GE(retx.timeoutRetransmits(), 8u);
    EXPECT_EQ(retx.peakBackoffExp(), 3.0);
    EXPECT_EQ(retx.peakRto(),
              static_cast<double>(cfg.ni.reliability.rtoBase << 3));
}

TEST(Retransmit, AckNackRideOutLinkOutageTraced)
{
    // A link dies in the middle of an exchange and comes back later.
    // Packets (including ACKs) sent into the outage are lost; the
    // protocol must redeliver everything afterwards, and the event
    // trace must show the outage and the recovery.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.rtoBase = 20 * ONE_US;
    cfg.router.faultTolerant = true;    // dead links drop, not wedge
    cfg.traceEnabled = true;
    ShrimpSystem sys(cfg);
    EventQueue &eq = sys.eventQueue();

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);
    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());

    // 24 host-driven stores: before, during, and after the outage.
    constexpr unsigned kStores = 24;
    for (unsigned i = 0; i < kStores; ++i) {
        Tick at = i < 8    ? 10 * ONE_US + i * ONE_US
                  : i < 16 ? 100 * ONE_US + (i - 8) * 20 * ONE_US
                           : 500 * ONE_US + (i - 16) * ONE_US;
        eq.scheduleFn(
            [&sys, t, i]() {
                std::uint32_t value = 0x600D0000u + i;
                sys.node(0).bus.postWrite(t.paddr + 4 * i, &value, 4,
                                          BusMaster::CPU,
                                          sys.curTick());
            },
            at, EventPriority::DEFAULT, "store");
    }
    // Both directions die at 50us and recover at 400us: data packets
    // and the ACK/NACK flow are interrupted mid-exchange.
    eq.scheduleFn([&sys]() {
        sys.backplane().router(0).setLinkDead(Router::EAST, true);
        sys.backplane().router(1).setLinkDead(Router::WEST, true);
    }, 50 * ONE_US, EventPriority::DEFAULT, "link down");
    eq.scheduleFn([&sys]() {
        sys.backplane().router(0).setLinkDead(Router::EAST, false);
        sys.backplane().router(1).setLinkDead(Router::WEST, false);
    }, 400 * ONE_US, EventPriority::DEFAULT, "link up");

    sys.runFor(10 * ONE_MS);

    // Exactly-once in-order delivery of every store despite the hole.
    Translation td = b->space().translate(dst, false);
    ASSERT_TRUE(td.ok());
    for (unsigned i = 0; i < kStores; ++i) {
        EXPECT_EQ(sys.node(1).mem.readInt(td.paddr + 4 * i, 4),
                  0x600D0000u + i)
            << "word " << i;
    }
    auto &retx = sys.node(0).ni.retransmitBuffer();
    EXPECT_GT(retx.timeoutRetransmits() + retx.nackRetransmits(), 0u);
    EXPECT_EQ(retx.channelsFailed(), 0u);

    // The trace recorded the outage and the protocol's response.
    ASSERT_NE(sys.tracer(), nullptr);
    std::ostringstream json;
    sys.tracer()->exportJson(json);
    const std::string trace = json.str();
    EXPECT_NE(trace.find("linkDead"), std::string::npos);
    EXPECT_NE(trace.find("linkAlive"), std::string::npos);
    EXPECT_NE(trace.find("retxTimeout"), std::string::npos);
    EXPECT_NE(trace.find("ackSend"), std::string::npos);
}

// ---- standalone RetransmitBuffer unit tests ------------------------
// The congestion-control machinery (AIMD window, retransmit pacer,
// seeded rto jitter, receiver-regression detection) is simplest to pin
// down against a bare RetransmitBuffer with scripted ACK/NACK inputs.

/** Reliability with the AIMD congestion window switched on. */
ReliabilityParams
ccParams()
{
    ReliabilityParams p;
    p.enabled = true;
    p.rtoBase = 10 * ONE_US;
    p.rtoMax = ONE_MS;
    p.congestion.enabled = true;
    p.congestion.initialWindowPackets = 4;
    return p;
}

/** Minimal reliable DATA packet toward @p dst, sequence assigned. */
NetPacket
relPkt(RetransmitBuffer &rb, NodeId dst)
{
    NetPacket p;
    p.srcNode = 0;
    p.dstNode = dst;
    p.reliable = true;
    p.kind = NetPacket::Kind::DATA;
    p.rseq = rb.assignSeq(dst);
    return p;
}

TEST(RetransmitUnit, AimdGrowsOnCleanAcksHalvesOnEcnEcho)
{
    EventQueue eq;
    RetransmitBuffer rb(eq, "rb", ccParams(), 4, {}, nullptr);

    // Run above tick 0 so the cut rate limiter's timestamps are live.
    // Each step acknowledges everything it records, so no
    // retransmission timer stays armed between the scheduled steps.
    eq.scheduleFn(
        [&] {
            // Boot window: initialWindowPackets, then the limit binds.
            EXPECT_EQ(rb.congestionWindow(1), 4u);
            for (int i = 0; i < 4; ++i) {
                ASSERT_TRUE(rb.hasRoom(1));
                rb.record(relPkt(rb, 1));
            }
            EXPECT_FALSE(rb.hasRoom(1));

            // One clean congestion window of ACKs = +1 packet.
            rb.onAck(1, 4);
            EXPECT_EQ(rb.congestionWindow(1), 5u);

            // Another clean window: additive, one more packet.
            for (int i = 0; i < 5; ++i)
                rb.record(relPkt(rb, 1));
            rb.onAck(1, 9);
            EXPECT_EQ(rb.congestionWindow(1), 6u);
        },
        ONE_US, EventPriority::DEFAULT, "aimd additive increase");

    // An ECN echo halves instead of growing (an echo needs no ACK
    // progress to count: the receiver saw congestion, that is enough).
    eq.scheduleFn(
        [&] {
            rb.onAck(1, 9, true);
            EXPECT_EQ(rb.congestionWindow(1), 3u);
            EXPECT_EQ(rb.ecnBackoffs(), 1u);
        },
        2 * ONE_US, EventPriority::DEFAULT, "ecn halves");

    // A burst of echoes within one rtoBase is a single congestion
    // event: the second halving must be suppressed...
    eq.scheduleFn(
        [&] {
            rb.onAck(1, 9, true);
            EXPECT_EQ(rb.congestionWindow(1), 3u);
            EXPECT_EQ(rb.ecnBackoffs(), 1u);
        },
        3 * ONE_US, EventPriority::DEFAULT, "cut rate-limited");

    // ...but after an rtoBase it cuts again, down to the floor of
    // one packet, which still admits (exactly) one packet.
    eq.scheduleFn(
        [&] {
            rb.onAck(1, 9, true);
            EXPECT_EQ(rb.congestionWindow(1), 1u);
            ASSERT_TRUE(rb.hasRoom(1));
            rb.record(relPkt(rb, 1));
            EXPECT_FALSE(rb.hasRoom(1));
            rb.onAck(1, 10);    // drain; stop the timer
        },
        2 * ONE_US + ccParams().rtoBase + 1, EventPriority::DEFAULT,
        "cut to floor");
    eq.run();
}

TEST(RetransmitUnit, WindowSpaceCallbackReentrancyFlattened)
{
    // A windowSpace callback that synchronously feeds more ACKs back
    // into the buffer must not recurse: the nested notification is
    // deferred and replayed by the outer invocation.
    EventQueue eq;
    ReliabilityParams p;
    p.enabled = true;
    RetransmitBuffer *rbp = nullptr;
    int depth = 0, max_depth = 0, calls = 0;
    RetransmitBuffer::Hooks hooks;
    hooks.windowSpace = [&] {
        ++depth;
        ++calls;
        max_depth = std::max(max_depth, depth);
        if (calls == 1)
            rbp->onAck(1, 2);   // re-entrant progress from the hook
        --depth;
    };
    RetransmitBuffer rb(eq, "rb", p, 4, hooks, nullptr);
    rbp = &rb;

    rb.record(relPkt(rb, 1));
    rb.record(relPkt(rb, 1));
    rb.onAck(1, 1);

    EXPECT_EQ(max_depth, 1);    // never nested
    EXPECT_EQ(calls, 2);        // the deferred wakeup was replayed
    EXPECT_EQ(rb.windowFill(1), 0u);
}

TEST(RetransmitUnit, PacerDefersTimeoutRetransmitsWithoutRetryCharge)
{
    // Four destinations time out in the same pass with only two pace
    // tokens in the bucket: two retransmit, two are deferred to the
    // next token with no retry charged and no backoff growth.
    EventQueue eq;
    ReliabilityParams p;
    p.enabled = true;
    p.rtoBase = 10 * ONE_US;
    p.congestion.paceBucketPackets = 2;
    p.congestion.paceRefillInterval = 100 * ONE_US;
    unsigned retx = 0;
    RetransmitBuffer::Hooks hooks;
    hooks.retransmit = [&](NetPacket &&) { ++retx; };
    RetransmitBuffer rb(eq, "rb", p, 5, hooks, nullptr);

    for (NodeId d = 1; d <= 4; ++d)
        rb.record(relPkt(rb, d));

    eq.scheduleFn(
        [&] {
            EXPECT_EQ(retx, 2u);    // bucket size, not backlog size
            EXPECT_EQ(rb.pacedRetransmits(), 2u);
            EXPECT_EQ(rb.peakPacedRetransmits(), 2.0);
            // The sent pair was charged a retry, the deferred pair
            // was not, and the deferred deadline is the next token.
            EXPECT_EQ(rb.headRetries(1), 1u);
            EXPECT_EQ(rb.headRetries(2), 1u);
            EXPECT_EQ(rb.headRetries(3), 0u);
            EXPECT_EQ(rb.headRetries(4), 0u);
            EXPECT_EQ(rb.armedDeadline(3),
                      p.congestion.paceRefillInterval);
            for (NodeId d = 1; d <= 4; ++d)
                rb.onAck(d, 1);     // drain; stop the timers
        },
        p.rtoBase + 1, EventPriority::DEFAULT, "probe after pass");
    eq.run();
}

/** Ticks at which a lone black-holed packet is retransmitted. */
std::vector<Tick>
jitteredSchedule(std::uint64_t seed)
{
    EventQueue eq;
    ReliabilityParams p;
    p.enabled = true;
    p.rtoBase = 10 * ONE_US;
    p.rtoMax = ONE_MS;
    p.maxRetries = 5;
    p.backoffExpCap = 0;    // constant rto: gaps isolate the jitter
    p.congestion.rtoJitterPermille = 500;
    p.congestion.jitterSeed = seed;
    std::vector<Tick> at;
    RetransmitBuffer::Hooks hooks;
    hooks.retransmit = [&](NetPacket &&) { at.push_back(eq.curTick()); };
    RetransmitBuffer rb(eq, "rb", p, 2, hooks, nullptr);
    rb.record(relPkt(rb, 1));
    eq.run();   // retries exhaust, the channel fails, the queue drains
    return at;
}

TEST(RetransmitUnit, RtoJitterSeededDeterministicAndBounded)
{
    std::vector<Tick> a = jitteredSchedule(42);
    std::vector<Tick> b = jitteredSchedule(42);
    std::vector<Tick> c = jitteredSchedule(43);

    ASSERT_EQ(a.size(), 5u);    // maxRetries
    EXPECT_EQ(a, b);            // same seed, same schedule
    EXPECT_NE(a, c);            // different seed desynchronizes

    // Every gap is rto plus at most 500 permille of jitter; the first
    // deadline (armed by record, not by a retransmission) is unjittered.
    constexpr Tick rto = 10 * ONE_US;
    EXPECT_EQ(a[0], rto);
    for (std::size_t i = 1; i < a.size(); ++i) {
        Tick gap = a[i] - a[i - 1];
        EXPECT_GE(gap, rto);
        EXPECT_LE(gap, rto + rto / 2);
    }
}

TEST(RetransmitUnit, RepeatedStaleNackFailsChannelFast)
{
    // A NACK for a retired sequence can cross a cumulative ACK once;
    // a repeat for the same sequence proves the receiver's state
    // regressed (late recovery reset) and the stream can never
    // resynchronize. The channel must fail immediately instead of
    // black-holing the whole retry budget.
    EventQueue eq;
    ReliabilityParams p;
    p.enabled = true;
    p.rtoBase = 10 * ONE_US;
    NodeId failed_dst = INVALID_NODE;
    RetransmitBuffer::Hooks hooks;
    hooks.failed = [&](NodeId d) { failed_dst = d; };
    RetransmitBuffer rb(eq, "rb", p, 4, hooks, nullptr);

    for (int i = 0; i < 6; ++i)
        rb.record(relPkt(rb, 1));
    rb.onAck(1, 4);     // window base now 4, packets 4..5 pending

    rb.onNack(1, 2);    // stale: could be a crossed ACK -- observe only
    EXPECT_FALSE(rb.isFailed(1));
    rb.onNack(1, 2);    // same-tick duplicate of one NACK: still no fail
    EXPECT_FALSE(rb.isFailed(1));
    EXPECT_EQ(rb.staleNackFails(), 0u);

    eq.scheduleFn(
        [&] {
            rb.onNack(1, 2);    // repeat after real time: regression
            EXPECT_TRUE(rb.isFailed(1));
            EXPECT_EQ(rb.staleNackFails(), 1u);
            EXPECT_EQ(rb.channelsFailed(), 1u);
            EXPECT_EQ(failed_dst, 1u);
            EXPECT_EQ(rb.windowFill(1), 0u);    // window discarded
        },
        p.rtoBase / 2, EventPriority::DEFAULT, "repeat stale nack");

    // A NACK at (not below) the window base is a normal fast
    // retransmit, never a regression, however often it repeats.
    eq.scheduleFn(
        [&] {
            for (int i = 0; i < 4; ++i)
                rb.record(relPkt(rb, 2));
            rb.onAck(2, 2);
            rb.onNack(2, 2);
            rb.onNack(2, 2);
            EXPECT_FALSE(rb.isFailed(2));
            EXPECT_EQ(rb.staleNackFails(), 1u);     // unchanged
            rb.onAck(2, 4);     // drain; stop the timer
        },
        p.rtoBase / 2 + 1, EventPriority::DEFAULT, "in-window nacks");
    eq.run();
}

} // namespace
} // namespace shrimp
