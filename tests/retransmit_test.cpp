/**
 * @file
 * Reliability-layer tests: the end-to-end ACK/NACK retransmission
 * protocol over a faulty backplane (drop, corrupt, duplicate,
 * reorder), plus graceful degradation when a destination becomes
 * unreachable. The CRC tests in reliability_test.cpp show corruption
 * is *detected*; these show that with ni.reliability enabled every
 * mapped word is also *delivered* -- exactly once, in order -- and
 * that a dead channel errors its mappings instead of asserting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

constexpr int kWords = 256;

/** Two nodes, reliability on, the given link fault mix. */
SystemConfig
faultyConfig(const FaultModel::Params &faults)
{
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.linkFaults = faults;
    return cfg;
}

/** One store per word: dst[i] = 0x1000 + i for i in [0, kWords). */
Program
streamProgram(Addr src)
{
    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, 0x1000);
    pa.movi(R3, 0x1000 + kWords);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);
    pa.addi(R1, 4);
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    return pa;
}

/** Run the stream and assert every word arrived exact and in place. */
void
runStream(ShrimpSystem &sys, Process &a, Process &b, Addr src, Addr dst,
          Tick settle)
{
    Program pa = streamProgram(src);
    loadProgram(sys.kernel(0), a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(settle);

    for (int i = 0; i < kWords; ++i) {
        ASSERT_EQ(peek32(sys, 1, b, dst + 4 * i),
                  static_cast<std::uint32_t>(0x1000 + i))
            << "word " << i << " wrong or missing";
    }
}

TEST(Retransmit, DropAndCorruptEveryWordDeliveredExactlyOnce)
{
    // The ISSUE acceptance scenario: 5% drop + 1% corrupt on every
    // link, yet the mapped page converges to a bit-exact copy.
    FaultModel::Params faults;
    faults.dropProb = 0.05;
    faults.corruptProb = 0.01;
    faults.seed = 424242;
    ShrimpSystem sys(faultyConfig(faults));

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 100 * ONE_MS);

    // The fabric really was faulty and the protocol really repaired it.
    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    auto &retx = tx.retransmitBuffer();
    EXPECT_GT(retx.timeoutRetransmits() + retx.nackRetransmits(), 0u);
    EXPECT_GT(rx.acksSent(), 0u);
    EXPECT_EQ(retx.channelsFailed(), 0u);
    EXPECT_EQ(tx.mappingsErrored(), 0u);
    EXPECT_EQ(retx.windowFill(1), 0u);  // everything acknowledged
}

TEST(Retransmit, DuplicatesSuppressed)
{
    FaultModel::Params faults;
    faults.duplicateProb = 0.2;
    faults.seed = 7;
    ShrimpSystem sys(faultyConfig(faults));

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 50 * ONE_MS);

    auto &rx = sys.node(1).ni;
    EXPECT_GT(rx.duplicatesSuppressed(), 0u);
    // Exactly-once: the FIFO only ever saw kWords distinct packets.
    EXPECT_EQ(rx.packetsDelivered(), static_cast<unsigned>(kWords));
}

TEST(Retransmit, ReorderedPacketsRestoredInOrder)
{
    FaultModel::Params faults;
    faults.reorderProb = 0.3;
    faults.seed = 99;
    ShrimpSystem sys(faultyConfig(faults));

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 50 * ONE_MS);

    auto &rx = sys.node(1).ni;
    EXPECT_GT(rx.reorderFixes(), 0u);
    EXPECT_EQ(rx.packetsDelivered(), static_cast<unsigned>(kWords));
}

TEST(Retransmit, NackTriggersFastRetransmitBeforeTimeout)
{
    // Clean links; corrupt exactly one packet at the source NI. The
    // receiver's CRC check NACKs it and the copy must arrive via fast
    // retransmit, never waiting out the (long) timeout.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.rtoBase = 10 * ONE_MS;   // timeout = test fails
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    sys.node(0).ni.corruptNextPacket();

    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 8; ++i)
        pa.sti(R1, 4 * i, 0xB00 + i, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);     // well under rtoBase

    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    EXPECT_GE(rx.nacksSent(), 1u);
    EXPECT_GE(tx.nacksReceived(), 1u);
    EXPECT_GE(tx.retransmitBuffer().nackRetransmits(), 1u);
    EXPECT_EQ(tx.retransmitBuffer().timeoutRetransmits(), 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(peek32(sys, 1, *b, dst + 4 * i),
                  static_cast<std::uint32_t>(0xB00 + i));
}

TEST(Retransmit, TimeoutBackoffGrows)
{
    // A black-hole link: every retransmission times out, so the rto
    // must grow exponentially instead of hammering the fabric.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = faultyConfig(faults);
    cfg.ni.reliability.rtoBase = 10 * ONE_US;
    cfg.ni.reliability.rtoMax = ONE_MS;
    cfg.ni.reliability.maxRetries = 50;     // stay below the cap
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAB, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    auto &retx = sys.node(0).ni.retransmitBuffer();
    EXPECT_GE(retx.timeoutRetransmits(), 3u);
    EXPECT_GT(retx.currentRto(1), cfg.ni.reliability.rtoBase);
    EXPECT_LE(retx.currentRto(1), cfg.ni.reliability.rtoMax);
    EXPECT_EQ(retx.channelsFailed(), 0u);
}

TEST(Retransmit, RetryCapDegradesGracefully)
{
    // Retry budget exhausted toward a black hole: the channel fails,
    // the mappings error, the kernel hears about it, and the command
    // page reports the failure to user level -- no assertion anywhere.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = faultyConfig(faults);
    cfg.ni.reliability.rtoBase = 10 * ONE_US;
    cfg.ni.reliability.rtoMax = 100 * ONE_US;
    cfg.ni.reliability.maxRetries = 3;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xCD, 4);
    pa.sti(R1, 4, 0xEF, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(10 * ONE_MS);

    auto &tx = sys.node(0).ni;
    auto &retx = tx.retransmitBuffer();
    EXPECT_EQ(retx.channelsFailed(), 1u);
    EXPECT_TRUE(retx.isFailed(1));
    EXPECT_GE(tx.mappingsErrored(), 1u);

    // The kernel callback fired and recorded the failed peer.
    EXPECT_GE(sys.kernel(0).mappingErrors(), 1u);
    EXPECT_TRUE(sys.kernel(0).peerFailed(1));
    EXPECT_FALSE(sys.kernel(0).peerFailed(0));

    // User level sees the error through the mapping's command page.
    Translation t = a->space().translate(src, false);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(tx.busRead(tx.cmdAddrFor(t.paddr), 8),
              ShrimpNi::statusMapError);

    // The errored mapping stops producing packets: a late store is
    // discarded quietly instead of feeding the dead window.
    std::uint64_t sent_before = tx.packetsSent();
    test::poke32(sys, 0, *a, src, 0x11);    // host write, no snoop
    sys.runFor(ONE_MS);
    EXPECT_EQ(tx.packetsSent(), sent_before);
}

TEST(Retransmit, CleanLinksNoRetransmissions)
{
    // Reliability enabled over a clean fabric must be pure overhead
    // bookkeeping: ACKs flow, nothing retransmits, nothing duplicates.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    runStream(sys, *a, *b, src, dst, 10 * ONE_MS);

    auto &tx = sys.node(0).ni;
    auto &rx = sys.node(1).ni;
    auto &retx = tx.retransmitBuffer();
    EXPECT_EQ(rx.packetsDelivered(), static_cast<unsigned>(kWords));
    EXPECT_EQ(retx.timeoutRetransmits(), 0u);
    EXPECT_EQ(retx.nackRetransmits(), 0u);
    EXPECT_EQ(rx.duplicatesSuppressed(), 0u);
    EXPECT_EQ(rx.nacksSent(), 0u);
    EXPECT_GT(rx.acksSent(), 0u);
    EXPECT_EQ(tx.acksReceived(), rx.acksSent());
}

TEST(Retransmit, BackoffExponentHonorsCap)
{
    // With a tiny exponent cap the rto must plateau at
    // rtoBase << cap even though rtoMax would allow far more, and the
    // Peak stats must record exactly that plateau.
    FaultModel::Params faults;
    faults.dropProb = 1.0;
    SystemConfig cfg = faultyConfig(faults);
    cfg.ni.reliability.rtoBase = 10 * ONE_US;
    cfg.ni.reliability.rtoMax = 100 * ONE_MS;
    cfg.ni.reliability.backoffExpCap = 3;
    cfg.ni.reliability.maxRetries = 20;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAB, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    auto &retx = sys.node(0).ni.retransmitBuffer();
    EXPECT_GE(retx.timeoutRetransmits(), 8u);
    EXPECT_EQ(retx.peakBackoffExp(), 3.0);
    EXPECT_EQ(retx.peakRto(),
              static_cast<double>(cfg.ni.reliability.rtoBase << 3));
}

TEST(Retransmit, AckNackRideOutLinkOutageTraced)
{
    // A link dies in the middle of an exchange and comes back later.
    // Packets (including ACKs) sent into the outage are lost; the
    // protocol must redeliver everything afterwards, and the event
    // trace must show the outage and the recovery.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.reliability.enabled = true;
    cfg.ni.reliability.rtoBase = 20 * ONE_US;
    cfg.router.faultTolerant = true;    // dead links drop, not wedge
    cfg.traceEnabled = true;
    ShrimpSystem sys(cfg);
    EventQueue &eq = sys.eventQueue();

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);
    Translation t = a->space().translate(src, true);
    ASSERT_TRUE(t.ok());

    // 24 host-driven stores: before, during, and after the outage.
    constexpr unsigned kStores = 24;
    for (unsigned i = 0; i < kStores; ++i) {
        Tick at = i < 8    ? 10 * ONE_US + i * ONE_US
                  : i < 16 ? 100 * ONE_US + (i - 8) * 20 * ONE_US
                           : 500 * ONE_US + (i - 16) * ONE_US;
        eq.scheduleFn(
            [&sys, t, i]() {
                std::uint32_t value = 0x600D0000u + i;
                sys.node(0).bus.postWrite(t.paddr + 4 * i, &value, 4,
                                          BusMaster::CPU,
                                          sys.curTick());
            },
            at, EventPriority::DEFAULT, "store");
    }
    // Both directions die at 50us and recover at 400us: data packets
    // and the ACK/NACK flow are interrupted mid-exchange.
    eq.scheduleFn([&sys]() {
        sys.backplane().router(0).setLinkDead(Router::EAST, true);
        sys.backplane().router(1).setLinkDead(Router::WEST, true);
    }, 50 * ONE_US, EventPriority::DEFAULT, "link down");
    eq.scheduleFn([&sys]() {
        sys.backplane().router(0).setLinkDead(Router::EAST, false);
        sys.backplane().router(1).setLinkDead(Router::WEST, false);
    }, 400 * ONE_US, EventPriority::DEFAULT, "link up");

    sys.runFor(10 * ONE_MS);

    // Exactly-once in-order delivery of every store despite the hole.
    Translation td = b->space().translate(dst, false);
    ASSERT_TRUE(td.ok());
    for (unsigned i = 0; i < kStores; ++i) {
        EXPECT_EQ(sys.node(1).mem.readInt(td.paddr + 4 * i, 4),
                  0x600D0000u + i)
            << "word " << i;
    }
    auto &retx = sys.node(0).ni.retransmitBuffer();
    EXPECT_GT(retx.timeoutRetransmits() + retx.nackRetransmits(), 0u);
    EXPECT_EQ(retx.channelsFailed(), 0u);

    // The trace recorded the outage and the protocol's response.
    ASSERT_NE(sys.tracer(), nullptr);
    std::ostringstream json;
    sys.tracer()->exportJson(json);
    const std::string trace = json.str();
    EXPECT_NE(trace.find("linkDead"), std::string::npos);
    EXPECT_NE(trace.find("linkAlive"), std::string::npos);
    EXPECT_NE(trace.find("retxTimeout"), std::string::npos);
    EXPECT_NE(trace.find("ackSend"), std::string::npos);
}

} // namespace
} // namespace shrimp
