/**
 * @file
 * Direct unit tests for the message-library emitters: static shape of
 * the emitted code (instruction counts of the fast paths, Table 1's
 * raw material) and the receive-path coalescing that lets the EISA
 * drain approach its burst bandwidth.
 */

#include <gtest/gtest.h>

#include "msg/deliberate.hh"
#include "msg/double_buffer.hh"
#include "msg/single_buffer.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

/** Count non-MARK instructions emitted between two program sizes. */
std::size_t
emittedBetween(const Program &p, std::size_t from)
{
    return p.size() - from;
}

TEST(Emitters, StaticShapeMatchesTable1)
{
    Program p("shape");

    std::size_t s0 = p.size();
    msg::emitSbWaitEmpty(p, "a");
    EXPECT_EQ(emittedBetween(p, s0), 3u);

    s0 = p.size();
    msg::emitSbPublish(p, 32);
    EXPECT_EQ(emittedBetween(p, s0), 1u);

    s0 = p.size();
    msg::emitSbWaitData(p, "b");
    EXPECT_EQ(emittedBetween(p, s0), 4u);

    s0 = p.size();
    msg::emitSbRelease(p);
    EXPECT_EQ(emittedBetween(p, s0), 1u);

    s0 = p.size();
    msg::emitDbSwap(p);
    EXPECT_EQ(emittedBetween(p, s0), 1u);

    s0 = p.size();
    msg::emitDb2Send(p);
    EXPECT_EQ(emittedBetween(p, s0), 3u);

    s0 = p.size();
    msg::emitDb2Recv(p, "c");
    EXPECT_EQ(emittedBetween(p, s0), 5u);

    s0 = p.size();
    msg::emitDb3Send(p, "d");
    EXPECT_EQ(emittedBetween(p, s0), 5u);

    s0 = p.size();
    msg::emitDb3Recv(p, "e");
    EXPECT_EQ(emittedBetween(p, s0), 5u);

    // The deliberate-send fast path: 13 instructions up to and
    // including the claim retry branch.
    s0 = p.size();
    msg::emitDeliberateSendSingle(p, 0x1000, "f", "f_multi");
    EXPECT_EQ(emittedBetween(p, s0), 13u);

    s0 = p.size();
    msg::emitDeliberateCheck(p);
    EXPECT_EQ(emittedBetween(p, s0), 2u);
}

TEST(Emitters, CopyWordsAttributesPerWordCostsToData)
{
    // 4 fixed instructions + a 7-instruction body per word.
    Program p("copy");
    std::size_t s0 = p.size();
    msg::emitCopyWords(p, R1, R2, R3, region::NONE, "cp");
    // Static size: 4 fixed + 7 loop body + 2 MARKs (free).
    EXPECT_EQ(emittedBetween(p, s0), 13u);
}

TEST(NicDrain, ContiguousPacketsCoalesceIntoOneEisaBurst)
{
    // A deliberate-update page arrives as 8 contiguous 512-byte
    // chunks; the receive engine must drain them in far fewer EISA
    // bursts than packets (amortizing the per-burst setup), which is
    // what lets H3 approach the 33 MB/s burst limit.
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::DELIBERATE);

    Translation t = a->space().translate(src, false);
    ASSERT_TRUE(sys.node(0).ni.dma().start(t.paddr, 1024));

    Program pa("a");
    pa.halt();
    Program pb("b");
    pb.halt();
    pa.finalize();
    pb.finalize();
    sys.kernel(0).loadAndReady(*a,
                               std::make_shared<Program>(std::move(pa)));
    sys.kernel(1).loadAndReady(*b,
                               std::make_shared<Program>(std::move(pb)));
    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(10 * ONE_MS);

    EXPECT_EQ(sys.node(1).ni.packetsDelivered(), 8u);
    EXPECT_GE(sys.node(1).ni.payloadBytesDelivered(), 4096u);
    // Far fewer EISA bursts than packets: contiguous chunks coalesce.
    EXPECT_LE(sys.node(1).eisa.burstsCarried(), 4u);
    EXPECT_GE(sys.node(1).eisa.bytesCarried(), 4096u);
}

} // namespace
} // namespace shrimp
