/**
 * @file
 * Shared helpers for integration tests: building small systems,
 * loading programs, peeking at process memory from the host.
 */

#ifndef SHRIMP_TESTS_TEST_UTIL_HH
#define SHRIMP_TESTS_TEST_UTIL_HH

#include <memory>
#include <utility>

#include "core/system.hh"
#include "cpu/program.hh"
#include "os/process.hh"

namespace shrimp
{
namespace test
{

/** Finalize @p prog and hand it to @p proc, ready to run. */
inline void
loadProgram(Kernel &kernel, Process &proc, Program &&prog)
{
    prog.finalize();
    kernel.loadAndReady(proc,
                        std::make_shared<Program>(std::move(prog)));
}

/** Host read of a 32-bit word in a process's virtual memory. */
inline std::uint32_t
peek32(ShrimpSystem &sys, NodeId node, Process &proc, Addr vaddr)
{
    Translation t = proc.space().translate(vaddr, false);
    if (!t.ok())
        return 0xdead'dead;
    return static_cast<std::uint32_t>(
        sys.node(node).mem.readInt(t.paddr, 4));
}

/** Host write of a 32-bit word into a process's virtual memory. */
inline void
poke32(ShrimpSystem &sys, NodeId node, Process &proc, Addr vaddr,
       std::uint32_t value)
{
    Translation t = proc.space().translate(vaddr, true);
    sys.node(node).mem.writeInt(t.paddr, value, 4);
}

/** A small two-node system (1x2 mesh) with kernel services booted. */
inline SystemConfig
twoNodeConfig()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    return cfg;
}

} // namespace test
} // namespace shrimp

#endif // SHRIMP_TESTS_TEST_UTIL_HH
