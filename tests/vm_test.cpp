/**
 * @file
 * Unit tests for the VM layer: page tables, frame allocator pinning,
 * address spaces.
 */

#include <gtest/gtest.h>

#include "vm/address_space.hh"
#include "vm/frame_allocator.hh"
#include "vm/page_table.hh"

namespace shrimp
{
namespace
{

TEST(PageTable, TranslateAndFaults)
{
    PageTable pt;
    pt.map(5, Pte{100, true, true, CachePolicy::WRITE_BACK});

    Translation t = pt.translate(0x5123, false);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.paddr, pageBase(100) + 0x123);
    EXPECT_EQ(t.policy, CachePolicy::WRITE_BACK);

    EXPECT_EQ(pt.translate(0x6000, false).fault, FaultKind::NOT_PRESENT);

    pt.setWritable(5, false);
    EXPECT_EQ(pt.translate(0x5000, true).fault, FaultKind::PROTECTION);
    EXPECT_TRUE(pt.translate(0x5000, false).ok());  // reads still fine

    pt.setWritable(5, true);
    EXPECT_TRUE(pt.translate(0x5000, true).ok());

    pt.setPolicy(5, CachePolicy::WRITE_THROUGH);
    EXPECT_EQ(pt.translate(0x5000, false).policy,
              CachePolicy::WRITE_THROUGH);

    pt.unmap(5);
    EXPECT_EQ(pt.translate(0x5000, false).fault, FaultKind::NOT_PRESENT);
}

TEST(PageTable, SetOnMissingPageReturnsFalse)
{
    PageTable pt;
    EXPECT_FALSE(pt.setWritable(9, true));
    EXPECT_FALSE(pt.setPolicy(9, CachePolicy::UNCACHEABLE));
}

TEST(FrameAllocator, AllocFreeCycle)
{
    FrameAllocator fa(1, 8);    // frames 1..7 allocatable
    EXPECT_EQ(fa.freeFrames(), 7u);

    std::vector<PageNum> got;
    while (auto f = fa.alloc())
        got.push_back(*f);
    EXPECT_EQ(got.size(), 7u);
    EXPECT_FALSE(fa.alloc().has_value());

    for (PageNum f : got)
        fa.free(f);
    EXPECT_EQ(fa.freeFrames(), 7u);
}

TEST(FrameAllocator, PinBlocksFree)
{
    FrameAllocator fa(1, 8);
    PageNum f = *fa.alloc();
    fa.pin(f);
    fa.pin(f);
    EXPECT_TRUE(fa.isPinned(f));
    EXPECT_THROW(fa.free(f), std::logic_error);
    fa.unpin(f);
    EXPECT_TRUE(fa.isPinned(f));
    fa.unpin(f);
    EXPECT_FALSE(fa.isPinned(f));
    fa.free(f);
}

TEST(FrameAllocator, DoubleFreePanics)
{
    FrameAllocator fa(1, 8);
    PageNum f = *fa.alloc();
    fa.free(f);
    EXPECT_THROW(fa.free(f), std::logic_error);
}

TEST(FrameAllocator, ReservedAndOutOfRangeFramesPanic)
{
    FrameAllocator fa(2, 8);    // frames 0..1 reserved, 2..7 usable

    // Kernel-reserved frames can never reach free/pin.
    EXPECT_THROW(fa.free(0), std::logic_error);
    EXPECT_THROW(fa.free(1), std::logic_error);
    EXPECT_THROW(fa.pin(0), std::logic_error);

    // Out-of-range frame numbers are rejected everywhere, including
    // the const queries (no silent out-of-bounds indexing).
    EXPECT_THROW(fa.free(8), std::logic_error);
    EXPECT_THROW(fa.pin(100), std::logic_error);
    EXPECT_THROW(fa.unpin(100), std::logic_error);
    EXPECT_THROW((void)fa.isPinned(8), std::logic_error);
    EXPECT_THROW((void)fa.isAllocated(8), std::logic_error);

    // Misuse attempts leave the allocator fully usable.
    PageNum f = *fa.alloc();
    fa.pin(f);
    EXPECT_TRUE(fa.isPinned(f));
    fa.unpin(f);
    fa.free(f);
    EXPECT_EQ(fa.freeFrames(), 6u);
}

TEST(FrameAllocator, UnpinOfUnallocatedFramePanics)
{
    FrameAllocator fa(1, 8);
    PageNum f = *fa.alloc();
    EXPECT_THROW(fa.unpin(f), std::logic_error);    // never pinned
}

TEST(PageTable, MapToInvalidFramePanics)
{
    PageTable pt;
    EXPECT_THROW(pt.map(5, Pte{INVALID_PAGE, true, true,
                               CachePolicy::WRITE_BACK}),
                 std::logic_error);
    EXPECT_EQ(pt.find(5), nullptr);     // nothing half-installed

    // Replacing a live mapping stays legal (pageIn and DSM both remap
    // a page in place).
    pt.map(5, Pte{100, true, true, CachePolicy::WRITE_BACK});
    pt.map(5, Pte{101, false, true, CachePolicy::WRITE_THROUGH});
    EXPECT_EQ(pt.find(5)->frame, 101u);
}

TEST(AddressSpace, AllocateMapsDistinctFrames)
{
    FrameAllocator fa(1, 64);
    AddressSpace space(fa);

    Addr a = space.allocate(3);
    Addr b = space.allocate(2, CachePolicy::WRITE_THROUGH, false);
    EXPECT_EQ(a, AddressSpace::userBase);
    EXPECT_EQ(b, a + 3 * PAGE_SIZE);

    auto ta = space.translate(a, true);
    ASSERT_TRUE(ta.ok());
    auto tb = space.translate(b, false);
    ASSERT_TRUE(tb.ok());
    EXPECT_EQ(tb.policy, CachePolicy::WRITE_THROUGH);
    EXPECT_EQ(space.translate(b, true).fault, FaultKind::PROTECTION);
    EXPECT_NE(pageOf(ta.paddr), pageOf(tb.paddr));
    EXPECT_TRUE(space.ownsFrame(pageOf(ta.paddr)));
}

TEST(AddressSpace, MapPhysicalDoesNotOwn)
{
    FrameAllocator fa(1, 64);
    AddressSpace space(fa);
    std::size_t before = fa.freeFrames();

    Addr v = space.mapPhysical(1000, 2, CachePolicy::UNCACHEABLE, true);
    EXPECT_EQ(fa.freeFrames(), before);     // no DRAM consumed
    auto t = space.translate(v + PAGE_SIZE + 8, true);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.paddr, pageBase(1001) + 8);
    EXPECT_EQ(t.policy, CachePolicy::UNCACHEABLE);
}

TEST(AddressSpace, ScatterMapping)
{
    FrameAllocator fa(1, 64);
    AddressSpace space(fa);
    Addr v = space.mapPhysicalScatter({40, 7, 23},
                                      CachePolicy::UNCACHEABLE, true);
    EXPECT_EQ(pageOf(space.translate(v, false).paddr), 40u);
    EXPECT_EQ(pageOf(space.translate(v + PAGE_SIZE, false).paddr), 7u);
    EXPECT_EQ(pageOf(space.translate(v + 2 * PAGE_SIZE, false).paddr),
              23u);
}

TEST(AddressSpace, DestructorReturnsFrames)
{
    FrameAllocator fa(1, 64);
    std::size_t before = fa.freeFrames();
    {
        AddressSpace space(fa);
        space.allocate(5);
        EXPECT_EQ(fa.freeFrames(), before - 5);
    }
    EXPECT_EQ(fa.freeFrames(), before);
}

} // namespace
} // namespace shrimp
