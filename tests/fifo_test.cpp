/**
 * @file
 * Unit tests for the NIC packet FIFOs and their flow-control
 * thresholds (Section 4).
 */

#include <gtest/gtest.h>

#include "nic/packet_fifo.hh"

namespace shrimp
{
namespace
{

NetPacket
pktOfBytes(Addr payload)
{
    NetPacket pkt;
    pkt.payload.assign(payload, 0xAA);
    pkt.sealCrc();
    return pkt;
}

TEST(PacketFifo, FifoOrder)
{
    PacketFifo fifo("f", PacketFifo::Params{});
    for (int i = 0; i < 5; ++i) {
        NetPacket pkt = pktOfBytes(8);
        pkt.seq = i;
        fifo.push(std::move(pkt), 100 * i);
    }
    EXPECT_EQ(fifo.packets(), 5u);
    EXPECT_EQ(fifo.front().ready, 0u);
    EXPECT_EQ(fifo.at(3).pkt.seq, 3u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(fifo.pop().seq, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(fifo.empty());
}

TEST(PacketFifo, ByteAccounting)
{
    PacketFifo fifo("f", PacketFifo::Params{});
    fifo.push(pktOfBytes(100), 0);
    EXPECT_EQ(fifo.fillBytes(),
              100 + NetPacket::headerBytes + NetPacket::crcBytes);
    fifo.pop();
    EXPECT_EQ(fifo.fillBytes(), 0u);
}

TEST(PacketFifo, ThresholdCallbacksWithHysteresis)
{
    PacketFifo::Params params;
    params.capacityBytes = 1000;
    params.highThresholdBytes = 500;
    params.lowThresholdBytes = 200;
    PacketFifo fifo("f", params);

    int above = 0, drained = 0;
    fifo.onAboveThreshold = [&] { ++above; };
    fifo.onDrained = [&] { ++drained; };

    // 100-byte packets: 82-byte payload + 18 overhead.
    for (int i = 0; i < 5; ++i)
        fifo.push(pktOfBytes(82), 0);       // fill = 500, not above
    EXPECT_EQ(above, 0);
    fifo.push(pktOfBytes(82), 0);           // 600 > 500
    EXPECT_EQ(above, 1);
    fifo.push(pktOfBytes(82), 0);           // stays above: no refire
    EXPECT_EQ(above, 1);

    // Drain: crossing to <= 200 fires once.
    while (fifo.fillBytes() > 200)
        fifo.pop();
    EXPECT_EQ(drained, 1);
    while (!fifo.empty())
        fifo.pop();
    EXPECT_EQ(drained, 1);
}

TEST(PacketFifo, WouldFitAndOverflowPanics)
{
    PacketFifo::Params params;
    params.capacityBytes = 200;
    params.highThresholdBytes = 200;
    params.lowThresholdBytes = 0;
    PacketFifo fifo("f", params);

    EXPECT_TRUE(fifo.wouldFit(200));
    fifo.push(pktOfBytes(100), 0);          // 118 bytes
    EXPECT_FALSE(fifo.wouldFit(100));
    EXPECT_THROW(fifo.push(pktOfBytes(100), 0), std::logic_error);
}

TEST(PacketFifo, InconsistentThresholdsPanic)
{
    PacketFifo::Params params;
    params.lowThresholdBytes = 900;
    params.highThresholdBytes = 500;
    EXPECT_THROW(PacketFifo("f", params), std::logic_error);
}

TEST(PacketFifo, TracksPeakFill)
{
    PacketFifo fifo("f", PacketFifo::Params{});
    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);
    fifo.pop();
    fifo.pop();
    EXPECT_EQ(fifo.pushCount(), 2u);
    EXPECT_EQ(fifo.maxFillBytes(), 2u * 118u);
    EXPECT_TRUE(fifo.empty());
}

TEST(PacketFifo, PeakFillResets)
{
    // Regression: the peak used to live in shadow state the stats
    // reset never touched, so post-reset peaks below the old
    // high-water mark were reported as the stale pre-reset value.
    PacketFifo fifo("f", PacketFifo::Params{});
    fifo.push(pktOfBytes(1000), 0);     // peak 1018
    fifo.pop();
    EXPECT_EQ(fifo.maxFillBytes(), 1018u);

    fifo.statGroup().resetAll();
    EXPECT_EQ(fifo.maxFillBytes(), 0u);

    fifo.push(pktOfBytes(100), 0);      // 118 -- well below 1018
    EXPECT_EQ(fifo.maxFillBytes(), 118u);
    EXPECT_EQ(fifo.pushCount(), 1u);    // counters restarted too
}

TEST(PacketFifo, ThresholdExactLanding)
{
    // Pin the documented edge semantics: a fill of exactly the high
    // threshold is still "below"; a pop landing exactly on the low
    // threshold does fire onDrained.
    PacketFifo::Params params;
    params.capacityBytes = 1000;
    params.highThresholdBytes = 354;    // 3 x 118
    params.lowThresholdBytes = 118;     // 1 x 118
    PacketFifo fifo("f", params);

    int above = 0, drained = 0;
    fifo.onAboveThreshold = [&] { ++above; };
    fifo.onDrained = [&] { ++drained; };

    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);      // fill == high: NOT above
    EXPECT_EQ(above, 0);
    EXPECT_TRUE(fifo.belowHighThreshold());

    fifo.push(pktOfBytes(100), 0);      // 472 > 354: fires once
    EXPECT_EQ(above, 1);
    EXPECT_FALSE(fifo.belowHighThreshold());

    fifo.pop();                         // 354: still above low, no fire
    EXPECT_EQ(drained, 0);
    fifo.pop();                         // 236 > 118: no fire
    EXPECT_EQ(drained, 0);
    fifo.pop();                         // exactly 118: fires
    EXPECT_EQ(drained, 1);
    fifo.pop();                         // 0: already below, no refire
    EXPECT_EQ(drained, 1);

    // Climbing back up re-arms the edge trigger.
    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);
    EXPECT_EQ(above, 2);
}

} // namespace
} // namespace shrimp
