/**
 * @file
 * Unit tests for the NIC packet FIFOs and their flow-control
 * thresholds (Section 4).
 */

#include <gtest/gtest.h>

#include "nic/packet_fifo.hh"

namespace shrimp
{
namespace
{

NetPacket
pktOfBytes(Addr payload)
{
    NetPacket pkt;
    pkt.payload.assign(payload, 0xAA);
    pkt.sealCrc();
    return pkt;
}

TEST(PacketFifo, FifoOrder)
{
    PacketFifo fifo("f", PacketFifo::Params{});
    for (int i = 0; i < 5; ++i) {
        NetPacket pkt = pktOfBytes(8);
        pkt.seq = i;
        fifo.push(std::move(pkt), 100 * i);
    }
    EXPECT_EQ(fifo.packets(), 5u);
    EXPECT_EQ(fifo.front().ready, 0u);
    EXPECT_EQ(fifo.at(3).pkt.seq, 3u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(fifo.pop().seq, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(fifo.empty());
}

TEST(PacketFifo, ByteAccounting)
{
    PacketFifo fifo("f", PacketFifo::Params{});
    fifo.push(pktOfBytes(100), 0);
    EXPECT_EQ(fifo.fillBytes(),
              100 + NetPacket::headerBytes + NetPacket::crcBytes);
    fifo.pop();
    EXPECT_EQ(fifo.fillBytes(), 0u);
}

TEST(PacketFifo, ThresholdCallbacksWithHysteresis)
{
    PacketFifo::Params params;
    params.capacityBytes = 1000;
    params.highThresholdBytes = 500;
    params.lowThresholdBytes = 200;
    PacketFifo fifo("f", params);

    int above = 0, drained = 0;
    fifo.onAboveThreshold = [&] { ++above; };
    fifo.onDrained = [&] { ++drained; };

    // 100-byte packets: 82-byte payload + 18 overhead.
    for (int i = 0; i < 5; ++i)
        fifo.push(pktOfBytes(82), 0);       // fill = 500, not above
    EXPECT_EQ(above, 0);
    fifo.push(pktOfBytes(82), 0);           // 600 > 500
    EXPECT_EQ(above, 1);
    fifo.push(pktOfBytes(82), 0);           // stays above: no refire
    EXPECT_EQ(above, 1);

    // Drain: crossing to <= 200 fires once.
    while (fifo.fillBytes() > 200)
        fifo.pop();
    EXPECT_EQ(drained, 1);
    while (!fifo.empty())
        fifo.pop();
    EXPECT_EQ(drained, 1);
}

TEST(PacketFifo, WouldFitAndOverflowPanics)
{
    PacketFifo::Params params;
    params.capacityBytes = 200;
    params.highThresholdBytes = 200;
    params.lowThresholdBytes = 0;
    PacketFifo fifo("f", params);

    EXPECT_TRUE(fifo.wouldFit(200));
    fifo.push(pktOfBytes(100), 0);          // 118 bytes
    EXPECT_FALSE(fifo.wouldFit(100));
    EXPECT_THROW(fifo.push(pktOfBytes(100), 0), std::logic_error);
}

TEST(PacketFifo, InconsistentThresholdsPanic)
{
    PacketFifo::Params params;
    params.lowThresholdBytes = 900;
    params.highThresholdBytes = 500;
    EXPECT_THROW(PacketFifo("f", params), std::logic_error);
}

TEST(PacketFifo, TracksPeakFill)
{
    PacketFifo fifo("f", PacketFifo::Params{});
    fifo.push(pktOfBytes(100), 0);
    fifo.push(pktOfBytes(100), 0);
    fifo.pop();
    fifo.pop();
    EXPECT_EQ(fifo.pushCount(), 2u);
    EXPECT_TRUE(fifo.empty());
}

} // namespace
} // namespace shrimp
