/**
 * @file
 * Distributed shared memory over VMMC: directory coherence
 * (read-share then write-invalidate), home-side serialization of
 * concurrent faults, data migration through the home relay, and the
 * failure story (owner crash -> HOSTDOWN, restart -> re-home and
 * clean re-fault).
 */

#include <gtest/gtest.h>

#include "os/dsm.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

SystemConfig
dsmConfig(unsigned nodes = 3, bool with_health = false)
{
    SystemConfig cfg;
    cfg.meshWidth = nodes;
    cfg.meshHeight = 1;
    cfg.dsm.enabled = true;
    cfg.dsm.numPages = 8;
    if (with_health) {
        cfg.ni.reliability.enabled = true;
        cfg.health.enabled = true;
        cfg.health.heartbeatPeriod = 50 * ONE_US;
        cfg.health.suspectTimeout = 200 * ONE_US;
        cfg.health.deadTimeout = 600 * ONE_US;
    }
    return cfg;
}

/** Issue an acquire and record its completion status. */
void
acquire(ShrimpSystem &sys, NodeId node, std::uint32_t page, bool write,
        std::uint64_t &status_out)
{
    status_out = ~std::uint64_t{0};
    sys.kernel(node).dsm()->acquire(
        page, write,
        [&status_out](std::uint64_t st) { status_out = st; });
}

TEST(Dsm, ReadShareThenWriteInvalidates)
{
    ShrimpSystem sys(dsmConfig());
    const std::uint32_t page = 0;       // homed at node 0
    Dsm &home = *sys.kernel(0).dsm();
    ASSERT_TRUE(home.isHome(page));

    // All three nodes take read copies.
    std::uint64_t st0, st1, st2;
    acquire(sys, 0, page, false, st0);
    acquire(sys, 1, page, false, st1);
    acquire(sys, 2, page, false, st2);
    sys.runFor(5 * ONE_MS);
    EXPECT_EQ(st0, err::OK);
    EXPECT_EQ(st1, err::OK);
    EXPECT_EQ(st2, err::OK);
    for (NodeId n = 0; n < 3; ++n) {
        EXPECT_EQ(sys.kernel(n).dsm()->localState(page),
                  DsmPageState::READ_SHARED)
            << "node " << n;
    }
    EXPECT_EQ(home.sharersOf(page).size(), 3u);
    EXPECT_EQ(home.ownerOf(page), INVALID_NODE);

    // Node 1 writes: every other sharer must be shot down.
    acquire(sys, 1, page, true, st1);
    sys.runFor(5 * ONE_MS);
    EXPECT_EQ(st1, err::OK);
    EXPECT_EQ(sys.kernel(1).dsm()->localState(page),
              DsmPageState::WRITE_EXCLUSIVE);
    EXPECT_EQ(sys.kernel(0).dsm()->localState(page),
              DsmPageState::INVALID);
    EXPECT_EQ(sys.kernel(2).dsm()->localState(page),
              DsmPageState::INVALID);
    EXPECT_EQ(home.ownerOf(page), 1u);
    EXPECT_TRUE(home.sharersOf(page).empty());
    EXPECT_GE(sys.kernel(0).dsm()->invalidations() +
                  sys.kernel(2).dsm()->invalidations(),
              2u);
}

TEST(Dsm, DataMigratesThroughHomeRelay)
{
    ShrimpSystem sys(dsmConfig());
    const std::uint32_t page = 1;       // homed at node 1
    std::uint64_t st;

    // Node 2 writes a recognizable pattern into its exclusive copy.
    acquire(sys, 2, page, true, st);
    sys.runFor(5 * ONE_MS);
    ASSERT_EQ(st, err::OK);
    PageNum f2 = sys.kernel(2).dsm()->localFrame(page);
    ASSERT_NE(f2, INVALID_PAGE);
    for (unsigned i = 0; i < 16; ++i)
        sys.node(2).mem.writeInt(pageBase(f2) + 4 * i, 0xD50'0000 + i,
                                 4);

    // Node 0 reads: recall from node 2 (write back through the home),
    // then a fresh grant carrying the written data.
    acquire(sys, 0, page, false, st);
    sys.runFor(5 * ONE_MS);
    ASSERT_EQ(st, err::OK);
    EXPECT_EQ(sys.kernel(2).dsm()->localState(page),
              DsmPageState::READ_SHARED);
    EXPECT_GE(sys.kernel(1).dsm()->fetches(), 1u);
    PageNum f0 = sys.kernel(0).dsm()->localFrame(page);
    ASSERT_NE(f0, INVALID_PAGE);
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(sys.node(0).mem.readInt(pageBase(f0) + 4 * i, 4),
                  0xD50'0000 + i)
            << "word " << i;
    }
}

TEST(Dsm, ConcurrentWriteFaultsSerialize)
{
    ShrimpSystem sys(dsmConfig());
    const std::uint32_t page = 2;       // homed at node 2
    std::uint64_t st0, st1, st2;

    // Three write faults land at the home in the same tick window; the
    // directory must serve them one at a time.
    acquire(sys, 0, page, true, st0);
    acquire(sys, 1, page, true, st1);
    acquire(sys, 2, page, true, st2);
    sys.runFor(10 * ONE_MS);
    EXPECT_EQ(st0, err::OK);
    EXPECT_EQ(st1, err::OK);
    EXPECT_EQ(st2, err::OK);

    // Exactly one node ends exclusive, and the directory agrees.
    NodeId owner = sys.kernel(2).dsm()->ownerOf(page);
    ASSERT_NE(owner, INVALID_NODE);
    unsigned exclusive = 0;
    for (NodeId n = 0; n < 3; ++n) {
        DsmPageState s = sys.kernel(n).dsm()->localState(page);
        if (s == DsmPageState::WRITE_EXCLUSIVE) {
            ++exclusive;
            EXPECT_EQ(n, owner);
        } else {
            EXPECT_EQ(s, DsmPageState::INVALID) << "node " << n;
        }
    }
    EXPECT_EQ(exclusive, 1u);
}

TEST(Dsm, OwnerCrashFailsFaultsWithHostdown)
{
    SystemConfig cfg = dsmConfig(3, true);
    ShrimpSystem sys(cfg);
    const std::uint32_t page = 1;       // homed at node 1
    std::uint64_t st;

    acquire(sys, 2, page, true, st);
    sys.runFor(2 * ONE_MS);
    ASSERT_EQ(st, err::OK);
    ASSERT_EQ(sys.kernel(1).dsm()->ownerOf(page), 2u);

    // Kill the exclusive owner, then fault from node 0 while the
    // failure is still undetected: the home's recall can never be
    // answered, so the fault must fail with HOSTDOWN -- not hang.
    sys.crashNode(2);
    std::uint64_t st0;
    acquire(sys, 0, page, false, st0);
    sys.runFor(cfg.health.deadTimeout + 10 * cfg.health.heartbeatPeriod);

    EXPECT_EQ(st0, err::HOSTDOWN);
    EXPECT_TRUE(sys.kernel(1).dsm()->errored(page));
    EXPECT_GE(sys.kernel(0).dsm()->hostdownFaults(), 1u);

    // The page stays errored for later faults too.
    acquire(sys, 0, page, true, st0);
    sys.runFor(2 * ONE_MS);
    EXPECT_EQ(st0, err::HOSTDOWN);

    // Other pages are untouched by the crash.
    acquire(sys, 0, 0, true, st0);
    sys.runFor(2 * ONE_MS);
    EXPECT_EQ(st0, err::OK);
}

TEST(Dsm, RestartRehomesAndRefaultsCleanly)
{
    SystemConfig cfg = dsmConfig(3, true);
    ShrimpSystem sys(cfg);
    const std::uint32_t page = 1;       // homed at node 1
    std::uint64_t st;

    acquire(sys, 2, page, true, st);
    sys.runFor(2 * ONE_MS);
    ASSERT_EQ(st, err::OK);

    sys.crashNode(2);
    sys.runFor(cfg.health.deadTimeout + 10 * cfg.health.heartbeatPeriod);
    ASSERT_TRUE(sys.kernel(1).dsm()->errored(page));

    // Recovery: the home re-homes the page off the lost owner...
    sys.restartNode(2);
    sys.runFor(2 * ONE_MS);
    ASSERT_FALSE(sys.kernel(1).peerFailed(2));
    EXPECT_FALSE(sys.kernel(1).dsm()->errored(page));
    EXPECT_GE(sys.kernel(1).dsm()->rehomes(), 1u);

    // ...new faults succeed again, including from the restarted node
    // (whose local DSM state was wiped by the reset).
    acquire(sys, 0, page, false, st);
    sys.runFor(5 * ONE_MS);
    EXPECT_EQ(st, err::OK);
    EXPECT_EQ(sys.kernel(2).dsm()->localState(page),
              DsmPageState::INVALID);
    acquire(sys, 2, page, true, st);
    sys.runFor(5 * ONE_MS);
    EXPECT_EQ(st, err::OK);
    EXPECT_EQ(sys.kernel(1).dsm()->ownerOf(page), 2u);
}

TEST(Dsm, CrashedHomeFailsFastAndRecovers)
{
    SystemConfig cfg = dsmConfig(3, true);
    ShrimpSystem sys(cfg);
    const std::uint32_t page = 1;       // homed at node 1
    std::uint64_t st;

    acquire(sys, 0, page, false, st);
    sys.runFor(2 * ONE_MS);
    ASSERT_EQ(st, err::OK);

    // The home dies: cached copies are dropped once the death is
    // detected, and new faults toward it fail fast with HOSTDOWN.
    sys.crashNode(1);
    sys.runFor(cfg.health.deadTimeout + 10 * cfg.health.heartbeatPeriod);
    ASSERT_TRUE(sys.kernel(0).peerFailed(1));
    EXPECT_EQ(sys.kernel(0).dsm()->localState(page),
              DsmPageState::INVALID);
    acquire(sys, 0, page, true, st);
    sys.runFor(2 * ONE_MS);
    EXPECT_EQ(st, err::HOSTDOWN);

    // After restart the home's directory is empty and serves again.
    sys.restartNode(1);
    sys.runFor(2 * ONE_MS);
    acquire(sys, 0, page, true, st);
    sys.runFor(5 * ONE_MS);
    EXPECT_EQ(st, err::OK);
    EXPECT_EQ(sys.kernel(1).dsm()->ownerOf(page), 0u);
}

TEST(Dsm, FaultDrivenProgramTouchesWindow)
{
    // End to end through the CPU fault path: a program strides over
    // two DSM pages it never mapped, writing then reading back.
    SystemConfig cfg = dsmConfig(2);
    ShrimpSystem sys(cfg);

    Process *p = sys.kernel(0).createProcess("dsm-walker");
    sys.kernel(0).dsm()->attach(*p);
    const Addr base = cfg.dsm.baseVaddr;

    Program prog("dsm-walker");
    prog.movi(R1, base);
    prog.sti(R1, 0, 0xABC);             // page 0 (write fault)
    prog.sti(R1, PAGE_SIZE, 0xDEF);     // page 1 (write fault)
    prog.ld(R2, R1, 0);                 // hits, already mapped
    prog.st(R1, 8, R2);
    prog.halt();
    test::loadProgram(sys.kernel(0), *p, std::move(prog));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited(200 * ONE_MS));
    EXPECT_EQ(p->state, ProcState::EXITED);

    Dsm &d = *sys.kernel(0).dsm();
    EXPECT_GE(d.faults(), 2u);
    EXPECT_EQ(d.localState(0), DsmPageState::WRITE_EXCLUSIVE);
    EXPECT_EQ(d.localState(1), DsmPageState::WRITE_EXCLUSIVE);
    EXPECT_EQ(test::peek32(sys, 0, *p, base), 0xABCu);
    EXPECT_EQ(test::peek32(sys, 0, *p, base + 8), 0xABCu);
    EXPECT_EQ(test::peek32(sys, 0, *p, base + PAGE_SIZE), 0xDEFu);
    EXPECT_GT(d.faultLatency().count(), 0u);
}

} // namespace
} // namespace shrimp
