/**
 * @file
 * Stress tests for the Section 4.4 consistency machinery: pages are
 * evicted (with remote NIPT shootdowns) and paged back in while
 * automatic-update traffic is in flight, repeatedly. The invariants:
 * no delivered data is ever lost (eviction saves page contents and
 * the in-order ack protocol guarantees in-flight packets land before
 * the frame is freed), and every store the writer issues is
 * eventually reflected at the destination (faults on invalidated
 * mappings trigger remap and retry).
 */

#include <gtest/gtest.h>

#include <map>

#include "os/map_manager.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

TEST(ConsistencyStress, PagingStormUnderLiveTraffic)
{
    constexpr unsigned kPages = 4;
    constexpr unsigned kStores = 64;

    SystemConfig cfg = test::twoNodeConfig();
    ShrimpSystem sys(cfg);
    sys.kernel(1).setConsistencyPolicy(ConsistencyPolicy::INVALIDATE);

    Process *a = sys.kernel(0).createProcess("writer");
    Process *b = sys.kernel(1).createProcess("reader");
    Addr src = a->allocate(kPages);
    Addr dst = b->allocate(kPages);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, kPages, sys.kernel(1),
                                      *b, dst,
                                      UpdateMode::AUTO_SINGLE),
              err::OK);

    // Deterministic store schedule touching all pages; remember the
    // last value written to each offset.
    std::map<Addr, std::uint32_t> expected;
    Program pa("writer");
    for (std::uint32_t v = 1; v <= kStores; ++v) {
        Addr off = (v * 260) % (kPages * PAGE_SIZE);
        off &= ~Addr{3};
        expected[off] = v;
        // ~20 us of compute between stores.
        pa.movi(R2, 0);
        pa.label("d" + std::to_string(v));
        pa.addi(R2, 1);
        pa.cmpi(R2, 400);
        pa.jl("d" + std::to_string(v));
        pa.movi(R1, src + off);
        pa.sti(R1, 0, v, 4);
    }
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("reader");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    // Paging storm: evict destination pages round-robin every 120 us
    // while the writer runs (~1.4 ms), plus one eviction of a source
    // page (outgoing-only paging).
    unsigned evictions_requested = 0;
    for (int i = 0; i < 10; ++i) {
        Addr victim = dst + (i % kPages) * PAGE_SIZE;
        sys.eventQueue().scheduleFn(
            [&sys, b, victim] {
                sys.kernel(1).evictUserPage(*b, victim, [](bool) {});
            },
            100 * ONE_US + i * 120 * ONE_US);
        ++evictions_requested;
    }
    sys.eventQueue().scheduleFn(
        [&sys, a, src] {
            sys.kernel(0).evictUserPage(*a, src + PAGE_SIZE,
                                        [](bool) {});
        },
        450 * ONE_US);

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited(30 * ONE_SEC));
    sys.runFor(20 * ONE_MS);

    // The machinery really fired: shootdowns reached the writer and
    // at least one store faulted into a remap.
    EXPECT_GT(sys.kernel(0).mapManager().invalidationsReceived(), 0u);
    EXPECT_GT(sys.kernel(0).mapManager().remapsCompleted(), 0u);

    // Every offset holds the last value written to it. Pages may
    // currently be in swap on the destination; page them in first.
    for (unsigned p = 0; p < kPages; ++p) {
        PageNum vpage = pageOf(dst) + p;
        if (sys.kernel(1).inSwap(b->pid(), vpage)) {
            ASSERT_EQ(sys.kernel(1).pageIn(*b, vpage), err::OK);
        }
    }
    for (const auto &[off, value] : expected) {
        EXPECT_EQ(peek32(sys, 1, *b, dst + off), value)
            << "offset " << off;
    }
}

TEST(ConsistencyStress, RepeatedEvictRemapCycles)
{
    // One page, many forced evict -> fault -> remap -> store cycles.
    SystemConfig cfg = test::twoNodeConfig();
    ShrimpSystem sys(cfg);
    sys.kernel(1).setConsistencyPolicy(ConsistencyPolicy::INVALIDATE);

    Process *a = sys.kernel(0).createProcess("writer");
    Process *b = sys.kernel(1).createProcess("reader");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);

    constexpr int kCycles = 6;
    Program pa("writer");
    for (int i = 1; i <= kCycles; ++i) {
        pa.movi(R2, 0);
        pa.label("d" + std::to_string(i));
        pa.addi(R2, 1);
        pa.cmpi(R2, 2000);      // ~100 us between stores
        pa.jl("d" + std::to_string(i));
        pa.movi(R1, src);
        pa.sti(R1, 4 * i, i, 4);
    }
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("reader");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    // Evict between every pair of stores.
    for (int i = 0; i < kCycles; ++i) {
        sys.eventQueue().scheduleFn(
            [&sys, b, dst] {
                sys.kernel(1).evictUserPage(*b, dst, [](bool) {});
            },
            50 * ONE_US + i * 100 * ONE_US);
    }

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited(30 * ONE_SEC));
    sys.runFor(20 * ONE_MS);

    EXPECT_GE(sys.kernel(0).mapManager().remapsCompleted(), 3u);

    if (sys.kernel(1).inSwap(b->pid(), pageOf(dst))) {
        ASSERT_EQ(sys.kernel(1).pageIn(*b, pageOf(dst)), err::OK);
    }
    for (int i = 1; i <= kCycles; ++i)
        EXPECT_EQ(peek32(sys, 1, *b, dst + 4 * i),
                  static_cast<std::uint32_t>(i))
            << "cycle " << i;
}

} // namespace
} // namespace shrimp
