/**
 * @file
 * Partition tolerance (DESIGN.md section 14): quorum-gated death on
 * the minority side, epoch-bumped reintegration after a heal, the
 * stale-writeback fence with exactly-once re-homing, owner restart
 * racing the recall RTO, the FaultModel's asymmetric forced-outage
 * window, and route-around budget exhaustion across a full cut-set.
 */

#include <gtest/gtest.h>

#include "net/fault_model.hh"
#include "net/router.hh"
#include "os/dsm.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

SystemConfig
partitionConfig(unsigned width, unsigned height, bool dsm)
{
    SystemConfig cfg;
    cfg.meshWidth = width;
    cfg.meshHeight = height;
    cfg.ni.reliability.enabled = true;
    cfg.router.faultTolerant = true;
    cfg.health.enabled = true;
    cfg.health.heartbeatPeriod = 50 * ONE_US;
    cfg.health.suspectTimeout = 200 * ONE_US;
    cfg.health.deadTimeout = 600 * ONE_US;
    if (dsm) {
        cfg.dsm.enabled = true;
        cfg.dsm.numPages = 4;
    }
    return cfg;
}

std::uint64_t
totalStaleEpochRejects(ShrimpSystem &sys)
{
    std::uint64_t total = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        total += sys.kernel(id).health()->staleEpochRejects();
    return total;
}

TEST(Partition, MinorityStallsWithoutQuorum)
{
    ShrimpSystem sys(partitionConfig(2, 2, false));
    sys.runFor(ONE_MS);

    // Strand node 3 alone: 1 of 4 can never reach a strict majority.
    ASSERT_GT(sys.partition({3}, {0, 1, 2}), 0u);
    EXPECT_TRUE(sys.partitioned());
    sys.runFor(2 * ONE_MS);

    // The majority side has quorum and declares the minority DEAD.
    for (NodeId id : {NodeId{0}, NodeId{1}, NodeId{2}}) {
        EXPECT_EQ(sys.kernel(id).health()->peerState(3),
                  PeerHealth::DEAD)
            << "majority node " << id;
    }
    // The minority must NOT declare the majority dead: its suspects
    // stall at SUSPECT for lack of a quorum.
    HealthMonitor *h3 = sys.kernel(3).health();
    EXPECT_FALSE(h3->quorumReachable());
    EXPECT_GE(h3->partitionsDeclared(), 1u);
    EXPECT_EQ(h3->peersDeclaredDead(), 0u);
    for (NodeId peer : {NodeId{0}, NodeId{1}, NodeId{2}})
        EXPECT_EQ(h3->peerState(peer), PeerHealth::SUSPECT);
}

TEST(Partition, HealReintegratesAndBumpsEpochs)
{
    ShrimpSystem sys(partitionConfig(2, 2, false));
    sys.runFor(ONE_MS);
    sys.partition({3}, {0, 1, 2});
    sys.runFor(2 * ONE_MS);
    ASSERT_EQ(sys.kernel(0).health()->peerState(3), PeerHealth::DEAD);

    sys.heal();
    EXPECT_FALSE(sys.partitioned());
    sys.runFor(3 * ONE_MS);

    // Everyone sees everyone ALIVE again...
    for (NodeId a = 0; a < sys.numNodes(); ++a) {
        for (NodeId b = 0; b < sys.numNodes(); ++b) {
            if (a != b) {
                EXPECT_EQ(sys.kernel(a).health()->peerState(b),
                          PeerHealth::ALIVE)
                    << a << " -> " << b;
            }
        }
    }
    // ...and reintegration went through new lives on both sides: the
    // majority bumped when the minority spoke again, the minority
    // bumped when its quorum stall cleared, and the bump exchange
    // fenced at least one straggler machine-wide.
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        EXPECT_GT(sys.kernel(id).health()->selfIncarnation(), 1u)
            << "node " << id << " never started a new life";
    }
    EXPECT_GT(totalStaleEpochRejects(sys), 0u);
}

TEST(Partition, StaleWritebackFencedAndRehomedOnce)
{
    // 3x1 row: home 0, requester 1, owner 2. Cutting only node 2's
    // outbound direction makes the failure asymmetric -- the recall
    // still reaches the owner, but its writeback dies on the wire.
    SystemConfig cfg = partitionConfig(3, 1, true);
    // The stranded owner must keep retrying its writeback across the
    // whole outage instead of failing its channels.
    cfg.ni.reliability.maxRetries = 60;
    ShrimpSystem sys(cfg);

    std::uint32_t page = 0;
    while (sys.kernel(0).dsm()->homeNode(page) != 0)
        ++page;

    bool owned = false;
    sys.kernel(2).dsm()->acquire(page, true, [&owned](std::uint64_t st) {
        owned = st == err::OK;
    });
    sys.runFor(ONE_MS);
    ASSERT_TRUE(owned);
    ASSERT_EQ(sys.kernel(0).dsm()->ownerOf(page), 2u);

    Router::Port out = sys.backplane().portToward(2, 1);
    sys.backplane().router(2).forceLinkDown(out);

    // The requester's write-acquire recalls the page from the owner;
    // the owner's WB can only die outbound. Once heartbeat silence
    // declares the owner DEAD, the home fails the acquire fast rather
    // than forking a second writable copy (split-brain refusal).
    std::uint64_t acquireStatus = err::OK;
    bool acquireDone = false;
    sys.kernel(1).dsm()->acquire(
        page, true, [&](std::uint64_t st) {
            acquireDone = true;
            acquireStatus = st;
        });
    sys.runFor(2 * ONE_MS);
    EXPECT_EQ(sys.kernel(0).health()->peerState(2), PeerHealth::DEAD);
    EXPECT_TRUE(acquireDone);
    EXPECT_EQ(acquireStatus, err::HOSTDOWN);
    EXPECT_TRUE(sys.kernel(0).dsm()->errored(page));
    // The owner's side of the cut is asymmetric: it still hears the
    // majority's heartbeats and keeps believing they are alive.
    EXPECT_EQ(sys.kernel(2).health()->peersDeclaredDead(), 0u);

    // Restore the direction before the owner's retry budget dies. Its
    // queued writeback retransmits into the healed link, but the
    // majority has moved on: the recovery bumps incarnations, the
    // grant from the owner's old life is void, and the page re-homes
    // exactly once.
    sys.backplane().router(2).forceLinkUp(out);
    sys.runFor(3 * ONE_MS);

    EXPECT_EQ(sys.kernel(0).health()->peerState(2), PeerHealth::ALIVE);
    EXPECT_FALSE(sys.kernel(0).dsm()->errored(page));
    EXPECT_EQ(sys.kernel(0).dsm()->rehomes(), 1u);
    EXPECT_GT(totalStaleEpochRejects(sys), 0u);

    // The page is usable again, and the stale grant never resurrects:
    // the requester takes clean exclusive ownership.
    bool reacquired = false;
    sys.kernel(1).dsm()->acquire(
        page, true, [&reacquired](std::uint64_t st) {
            reacquired = st == err::OK;
        });
    sys.runFor(2 * ONE_MS);
    EXPECT_TRUE(reacquired);
    EXPECT_EQ(sys.kernel(0).dsm()->ownerOf(page), 1u);
}

TEST(Partition, OwnerRestartBeforeRtoFencesStaleLife)
{
    // Crash the owner mid-recall and restart it BEFORE heartbeat
    // silence can declare it dead: nobody ever sees DEAD, yet the
    // restart bumps its incarnation, so the grant held by its previous
    // life is revoked through the epoch fence alone and the page
    // re-homes exactly once.
    ShrimpSystem sys(partitionConfig(3, 1, true));

    std::uint32_t page = 0;
    while (sys.kernel(0).dsm()->homeNode(page) != 0)
        ++page;

    bool owned = false;
    sys.kernel(2).dsm()->acquire(page, true, [&owned](std::uint64_t st) {
        owned = st == err::OK;
    });
    sys.runFor(ONE_MS);
    ASSERT_TRUE(owned);

    // Recall goes out toward the owner...
    bool acquireDone = false;
    std::uint64_t acquireStatus = err::OK;
    sys.kernel(1).dsm()->acquire(
        page, true, [&](std::uint64_t st) {
            acquireDone = true;
            acquireStatus = st;
        });
    sys.runFor(10 * ONE_US);
    // ...and the owner power-fails mid-recall, restarting within the
    // suspect timeout so silence proves nothing to anyone.
    sys.crashNode(2);
    sys.runFor(100 * ONE_US);
    sys.restartNode(2);
    sys.runFor(3 * ONE_MS);

    EXPECT_EQ(sys.kernel(0).health()->peersDeclaredDead(), 0u);
    EXPECT_GT(sys.kernel(2).health()->selfIncarnation(), 1u);
    EXPECT_EQ(sys.kernel(0).dsm()->rehomes(), 1u);
    EXPECT_FALSE(sys.kernel(0).dsm()->errored(page));

    // However the recall raced the crash, the machine converges: the
    // requester either already completed or a retry takes ownership.
    if (!acquireDone || acquireStatus != err::OK) {
        bool retried = false;
        sys.kernel(1).dsm()->acquire(
            page, true, [&retried](std::uint64_t st) {
                retried = st == err::OK;
            });
        sys.runFor(2 * ONE_MS);
        EXPECT_TRUE(retried);
    }
    EXPECT_EQ(sys.kernel(0).dsm()->ownerOf(page), 1u);
}

TEST(FaultModelTest, ValidatedClampsAndSwapsWindow)
{
    FaultModel::Params p;
    p.dropProb = 1.7;
    p.corruptProb = -0.3;
    p.linkDownProb = 0.5;
    p.linkDownTicks = 0;
    p.downFrom = 200 * ONE_US;      // inverted on purpose
    p.downUntil = 100 * ONE_US;
    FaultModel::Params v = FaultModel::validated(p);
    EXPECT_DOUBLE_EQ(v.dropProb, 1.0);
    EXPECT_DOUBLE_EQ(v.corruptProb, 0.0);
    EXPECT_GT(v.linkDownTicks, 0u);
    EXPECT_EQ(v.downFrom, 100 * ONE_US);
    EXPECT_EQ(v.downUntil, 200 * ONE_US);
}

TEST(FaultModelTest, AsymmetricForcedWindowAndRuntimeForce)
{
    // A forced window on one FaultModel takes down exactly that
    // direction of the link, deterministically, with no sampled
    // faults configured at all.
    FaultModel::Params down;
    down.downFrom = 100 * ONE_US;
    down.downUntil = 200 * ONE_US;
    FaultModel a(down, 1);
    FaultModel b(FaultModel::Params{}, 2);   // the reverse direction

    EXPECT_EQ(a.decide(50 * ONE_US), FaultModel::Action::PASS);
    EXPECT_EQ(a.decide(150 * ONE_US), FaultModel::Action::LINK_DOWN);
    EXPECT_TRUE(a.linkDown(150 * ONE_US));
    EXPECT_EQ(b.decide(150 * ONE_US), FaultModel::Action::PASS);
    EXPECT_EQ(a.decide(250 * ONE_US), FaultModel::Action::PASS);

    // Runtime force: down until forced up, reverse side untouched.
    a.forceDown(300 * ONE_US);
    EXPECT_EQ(a.decide(5 * ONE_MS), FaultModel::Action::LINK_DOWN);
    EXPECT_TRUE(a.downLongerThan(ONE_MS, 500 * ONE_US));
    a.forceUp(5 * ONE_MS);
    EXPECT_EQ(a.decide(5 * ONE_MS + 1), FaultModel::Action::PASS);
    EXPECT_EQ(b.decide(5 * ONE_MS), FaultModel::Action::PASS);
}

TEST(RouterPartition, FullCutSetExhaustsMisrouteBudgetIntoDrops)
{
    // A fault-tolerant mesh with a wall of advertised-dead links has
    // no path into the east column: every packet burns its misroute
    // budget wandering and must land in routeAroundDrops -- never a
    // silent re-queue that wedges the mesh.
    SystemConfig cfg;
    cfg.meshWidth = 3;
    cfg.meshHeight = 3;
    cfg.router.faultTolerant = true;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(2).createProcess("b");
    Addr src = a->allocate(1), dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(2), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);
    sys.runFor(ONE_MS);

    ASSERT_GT(sys.partition({0, 1, 3, 4, 6, 7}, {2, 5, 8}), 0u);

    auto dropsNow = [&sys] {
        std::uint64_t total = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id)
            total += sys.backplane().router(id).routeAroundDrops();
        return total;
    };
    const std::uint64_t before = dropsNow();

    Translation t = a->space().translate(src, false);
    ASSERT_TRUE(t.ok());
    const unsigned kPackets = 8;
    for (unsigned i = 0; i < kPackets; ++i) {
        std::uint32_t value = 0xD00D + i;
        sys.node(0).bus.postWrite(t.paddr + 4 * i, &value, 4,
                                  BusMaster::CPU, sys.curTick());
        sys.runFor(50 * ONE_US);
    }
    sys.runFor(2 * ONE_MS);

    // Exact landing: every packet sent surfaced as a route-around
    // drop, and nothing is parked in any router queue.
    EXPECT_EQ(dropsNow() - before, kPackets);
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        EXPECT_EQ(sys.backplane().router(id).queuedPackets(), 0u)
            << "router " << id << " still holds packets";
    }
    // Nothing leaked across the cut.
    Translation td = b->space().translate(dst, false);
    ASSERT_TRUE(td.ok());
    EXPECT_EQ(sys.node(2).mem.readInt(td.paddr, 4), 0u);
}

} // namespace
} // namespace shrimp
