/**
 * @file
 * Property-based tests (parameterized sweeps) on system invariants:
 *
 *  - the backplane delivers random traffic exactly once, uncorrupted,
 *    in order per source/destination pair, for a range of mesh shapes;
 *  - automatic-update mappings are byte-exact for random store
 *    patterns (blocked-write merging included);
 *  - unaligned (split-page) mappings deliver random ranges correctly;
 *  - deliberate updates are byte-exact for random sizes and offsets.
 */

#include <gtest/gtest.h>

#include <map>

#include "msg/deliberate.hh"
#include "sim/random.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

// ---------------------------------------------------------------------
// Mesh shapes deliver random traffic in order
// ---------------------------------------------------------------------

struct MeshShape
{
    unsigned w, h;
};

class MeshShapeSweep : public ::testing::TestWithParam<MeshShape>
{
};

TEST_P(MeshShapeSweep, RandomTrafficInOrderExactlyOnce)
{
    const auto [w, h] = GetParam();
    EventQueue eq;
    Router::Params params;
    MeshBackplane mesh(eq, "mesh", w, h, params);
    unsigned n = w * h;

    struct Sink : NetworkSink
    {
        std::vector<NetPacket> got;
        bool sinkReady() const override { return true; }
        void sinkDeliver(NetPacket &&p) override
        {
            got.push_back(std::move(p));
        }
    };
    std::vector<Sink> sinks(n);
    for (NodeId i = 0; i < n; ++i)
        mesh.router(i).setSink(&sinks[i]);

    Rng rng(97 + w * 13 + h);
    constexpr int kPackets = 200;
    std::vector<std::vector<NetPacket>> backlog(n);
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> next_seq;
    for (int i = 0; i < kPackets; ++i) {
        NodeId src = static_cast<NodeId>(rng.below(n));
        NodeId dst = static_cast<NodeId>(rng.below(n));
        NetPacket pkt;
        pkt.srcNode = src;
        pkt.dstNode = dst;
        pkt.dstX = static_cast<std::uint16_t>(mesh.xOf(dst));
        pkt.dstY = static_cast<std::uint16_t>(mesh.yOf(dst));
        pkt.dstPaddr = 0x1000;
        pkt.payload.assign(4 + rng.below(60) * 4, 0);
        for (auto &b : pkt.payload)
            b = static_cast<std::uint8_t>(rng.next());
        pkt.seq = next_seq[{src, dst}]++;
        pkt.sealCrc();
        backlog[src].push_back(std::move(pkt));
    }

    EventFunctionWrapper pump(
        [&] {
            bool more = false;
            for (NodeId i = 0; i < n; ++i) {
                while (!backlog[i].empty() &&
                       mesh.router(i).injectReady()) {
                    mesh.router(i).inject(
                        std::move(backlog[i].front()));
                    backlog[i].erase(backlog[i].begin());
                }
                more = more || !backlog[i].empty();
            }
            if (more)
                eq.schedule(&pump, eq.curTick() + ONE_US);
        },
        "pump");
    eq.schedule(&pump, 0);
    eq.run(100'000'000);

    std::size_t total = 0;
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> seen;
    for (NodeId i = 0; i < n; ++i) {
        total += sinks[i].got.size();
        for (const NetPacket &pkt : sinks[i].got) {
            EXPECT_TRUE(pkt.crcOk());
            auto key = std::make_pair(pkt.srcNode, i);
            EXPECT_EQ(pkt.seq, seen[key]++);
        }
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kPackets));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshShapeSweep,
    ::testing::Values(MeshShape{1, 2}, MeshShape{2, 2}, MeshShape{4, 2},
                      MeshShape{3, 3}, MeshShape{8, 1},
                      MeshShape{4, 4}),
    [](const ::testing::TestParamInfo<MeshShape> &shape_info) {
        return std::to_string(shape_info.param.w) + "x" +
               std::to_string(shape_info.param.h);
    });

// ---------------------------------------------------------------------
// Random store patterns through automatic update are byte-exact
// ---------------------------------------------------------------------

class AutoUpdateSeedSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AutoUpdateSeedSweep, RandomStoresByteExact)
{
    Rng rng(GetParam());
    bool blocked = rng.chance(0.5);

    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(2);
    Addr dst = b->allocate(2);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 2, sys.kernel(1), *b,
                                      dst,
                                      blocked ? UpdateMode::AUTO_BLOCK
                                              : UpdateMode::AUTO_SINGLE),
              err::OK);

    // Random mixture of contiguous runs and jumps, various sizes.
    struct Store
    {
        Addr off;
        std::uint32_t value;
        unsigned size;
    };
    std::vector<Store> stores;
    Addr cursor = 0;
    for (int i = 0; i < 120; ++i) {
        if (rng.chance(0.3) || cursor + 8 > 2 * PAGE_SIZE)
            cursor = rng.below(2 * PAGE_SIZE / 4 - 2) * 4;
        unsigned size = rng.chance(0.8) ? 4 : (rng.chance(0.5) ? 2 : 1);
        stores.push_back({cursor,
                          static_cast<std::uint32_t>(rng.next()),
                          size});
        cursor += size;
    }

    Program pa("a");
    pa.movi(R1, src);
    for (const Store &s : stores) {
        pa.sti(R1, static_cast<std::int64_t>(s.off),
               s.value & ((s.size == 4)   ? 0xFFFFFFFF
                          : (s.size == 2) ? 0xFFFF
                                          : 0xFF),
               s.size);
    }
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);     // drain merges + flights

    // Replay the stores into a reference image and compare.
    std::vector<std::uint8_t> ref(2 * PAGE_SIZE, 0);
    for (const Store &s : stores) {
        std::uint32_t v = s.value;
        for (unsigned byte = 0; byte < s.size; ++byte)
            ref[s.off + byte] =
                static_cast<std::uint8_t>(v >> (8 * byte));
    }
    for (Addr off = 0; off < 2 * PAGE_SIZE; off += 4) {
        std::uint32_t expect;
        std::memcpy(&expect, ref.data() + off, 4);
        ASSERT_EQ(peek32(sys, 1, *b, dst + off), expect)
            << "offset " << off << " blocked=" << blocked;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutoUpdateSeedSweep,
                         ::testing::Range(1u, 9u));

// ---------------------------------------------------------------------
// Random unaligned (split-page) ranges deliver correctly
// ---------------------------------------------------------------------

class SplitRangeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SplitRangeSweep, UnalignedRangesByteExact)
{
    Rng rng(GetParam() * 1000 + 5);

    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src_region = a->allocate(3);
    Addr dst_region = b->allocate(3);

    // Random word-aligned, non-page-aligned subrange and shift.
    Addr start = rng.below(PAGE_SIZE / 4) * 4;
    Addr len = 4 + rng.below((2 * PAGE_SIZE - 8) / 4) * 4;
    Addr dst_shift = rng.below(PAGE_SIZE / 4) * 4;
    Addr src = src_region + start;
    Addr dst = dst_region + dst_shift;
    ASSERT_EQ(sys.kernel(0).mapDirectRange(*a, src, len, sys.kernel(1),
                                           *b, dst,
                                           UpdateMode::AUTO_SINGLE),
              err::OK)
        << "start=" << start << " len=" << len << " shift=" << dst_shift;

    // Store a pattern across the whole range (sampled to keep the
    // simulation small: first, last and a handful of random words).
    std::vector<Addr> offsets{0, len - 4};
    for (int i = 0; i < 12; ++i)
        offsets.push_back(rng.below(len / 4) * 4);

    Program pa("a");
    pa.movi(R1, src);
    for (Addr off : offsets)
        pa.sti(R1, static_cast<std::int64_t>(off),
               static_cast<std::int64_t>(0x77000000 + off), 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    for (Addr off : offsets) {
        ASSERT_EQ(peek32(sys, 1, *b, dst + off),
                  static_cast<std::uint32_t>(0x77000000 + off))
            << "offset " << off << " start=" << start << " len=" << len
            << " shift=" << dst_shift;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitRangeSweep,
                         ::testing::Range(1u, 11u));

// ---------------------------------------------------------------------
// Deliberate updates of random sizes and offsets
// ---------------------------------------------------------------------

class DeliberateSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DeliberateSweep, RandomSizesByteExact)
{
    Rng rng(GetParam() * 31 + 7);

    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::DELIBERATE),
              err::OK);
    Addr cmd = sys.kernel(0).mapCommandPages(*a, src, 1);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

    // Random word-aligned offset + length within the page, below the
    // control region.
    Addr max_words = (ShrimpNi::ctrlRegionOffset / 4) - 1;
    Addr off = rng.below(max_words / 2) * 4;
    Addr words = 1 + rng.below((max_words - off / 4) / 2);

    for (Addr w = 0; w < words; ++w)
        test::poke32(sys, 0, *a, src + off + 4 * w,
                     static_cast<std::uint32_t>(0x4e000000 + w));

    Program pa("a");
    pa.movi(R3, src + off);
    pa.movi(R1, words * 4);
    msg::emitDeliberateSendSingle(pa, cmd_delta, "send", "multi");
    pa.label("wait");
    msg::emitDeliberateCheck(pa);
    pa.jnz("wait");
    pa.halt();
    pa.label("multi");
    pa.halt();      // unreachable for in-page transfers
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    for (Addr w = 0; w < words; ++w) {
        ASSERT_EQ(peek32(sys, 1, *b, dst + off + 4 * w),
                  0x4e000000u + w)
            << "word " << w << " off=" << off << " words=" << words;
    }
    // Nothing outside the transfer arrived.
    if (off >= 4) {
        EXPECT_EQ(peek32(sys, 1, *b, dst + off - 4), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliberateSweep,
                         ::testing::Range(1u, 11u));

} // namespace
} // namespace shrimp
