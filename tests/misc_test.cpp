/**
 * @file
 * Smaller-surface tests: name functions, logging/trace flags, stats
 * dumping at the system level, kernel accounting helpers, and
 * write-buffer drain semantics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "mem/cache.hh"
#include "nic/nipt.hh"
#include "os/process.hh"
#include "sim/logging.hh"

namespace shrimp
{
namespace
{

TEST(Names, AllOpcodesHaveMnemonics)
{
    for (int op = 0; op <= static_cast<int>(Opcode::MARK); ++op) {
        const char *name = opcodeName(static_cast<Opcode>(op));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "???") << "opcode " << op;
    }
}

TEST(Names, PolicyAndStateNames)
{
    EXPECT_STREQ(cachePolicyName(CachePolicy::WRITE_BACK),
                 "write-back");
    EXPECT_STREQ(cachePolicyName(CachePolicy::WRITE_THROUGH),
                 "write-through");
    EXPECT_STREQ(cachePolicyName(CachePolicy::UNCACHEABLE),
                 "uncacheable");

    EXPECT_STREQ(updateModeName(UpdateMode::NONE), "none");
    EXPECT_STREQ(updateModeName(UpdateMode::AUTO_SINGLE),
                 "auto-single");
    EXPECT_STREQ(updateModeName(UpdateMode::AUTO_BLOCK), "auto-block");
    EXPECT_STREQ(updateModeName(UpdateMode::DELIBERATE), "deliberate");

    EXPECT_STREQ(procStateName(ProcState::READY), "ready");
    EXPECT_STREQ(procStateName(ProcState::RUNNING), "running");
    EXPECT_STREQ(procStateName(ProcState::BLOCKED), "blocked");
    EXPECT_STREQ(procStateName(ProcState::EXITED), "exited");
}

TEST(Logging, DebugFlagsToggle)
{
    EXPECT_FALSE(debugFlagEnabled("TestFlag"));
    setDebugFlag("TestFlag");
    EXPECT_TRUE(debugFlagEnabled("TestFlag"));
    clearDebugFlag("TestFlag");
    EXPECT_FALSE(debugFlagEnabled("TestFlag"));
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(SHRIMP_WARN("warn test ", 42));
    EXPECT_NO_THROW(SHRIMP_INFORM("inform test ", 1.5));
}

TEST(SystemStats, DumpContainsEveryComponent)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);

    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    for (const char *key :
         {"node0.xpress.transactions", "node0.cache.hits",
          "node0.cpu.instructions", "node0.ni.pktsSent",
          "node0.kernel.contextSwitches", "node1.ni.pktsDelivered"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(SystemConfig, Paper16IsFourByFour)
{
    SystemConfig cfg = SystemConfig::paper16();
    EXPECT_EQ(cfg.meshWidth, 4u);
    EXPECT_EQ(cfg.meshHeight, 4u);
    EXPECT_EQ(cfg.numNodes(), 16u);
}

TEST(WriteBuffer, DrainedAtTracksOutstandingWrites)
{
    EventQueue eq;
    MainMemory mem(eq, "mem", 64 * 1024);
    XpressBus bus(eq, "bus");
    bus.addTarget(0, mem.size(), &mem);
    WriteBuffer wb(4);

    EXPECT_EQ(wb.drainedAt(0), 0u);
    std::uint32_t v = 1;
    wb.post(bus, 0x100, &v, 4, 0);
    wb.post(bus, 0x104, &v, 4, 0);
    Tick drained = wb.drainedAt(0);
    EXPECT_GT(drained, 0u);
    // After that tick everything has reached the bus.
    EXPECT_EQ(wb.drainedAt(drained), drained);
}

TEST(KernelAccounting, ChargeAttributesToContext)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);
    Kernel &k = sys.kernel(0);
    Process *p = k.createProcess("p");

    Tick d = k.charge(&p->ctx, 120);
    EXPECT_EQ(d, 120 * sys.node(0).cpu.clockPeriod());
    EXPECT_EQ(p->ctx.kernelInstrs, 120u);

    // Null context: global accounting only.
    std::uint64_t before = sys.node(0).cpu.statGroup().name().size();
    (void)before;
    EXPECT_NO_THROW(k.charge(nullptr, 10));
}

TEST(Backplane, HopDistanceSymmetricAndTriangle)
{
    EventQueue eq;
    MeshBackplane mesh(eq, "mesh", 4, 4, Router::Params{});
    for (NodeId a = 0; a < 16; ++a) {
        EXPECT_EQ(mesh.hopDistance(a, a), 0u);
        for (NodeId b = 0; b < 16; ++b) {
            EXPECT_EQ(mesh.hopDistance(a, b), mesh.hopDistance(b, a));
            for (NodeId c = 0; c < 16; ++c) {
                EXPECT_LE(mesh.hopDistance(a, c),
                          mesh.hopDistance(a, b) +
                              mesh.hopDistance(b, c));
            }
        }
    }
}

TEST(EventQueueExtra, OneShotFiresExactlyOnce)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    eq.run();
    eq.runUntil(1000);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueExtra, TeardownWithPendingOneShots)
{
    // One-shots never fired are reclaimed by the queue's destructor.
    auto eq = std::make_unique<EventQueue>();
    for (int i = 0; i < 16; ++i)
        eq->scheduleFn([] {}, 1000 + i);
    EXPECT_EQ(eq->size(), 16u);
    eq.reset();     // must not leak or crash
}

} // namespace
} // namespace shrimp
