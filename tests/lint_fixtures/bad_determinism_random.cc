// Unseeded library randomness: irreproducible runs; chaos-soak
// fingerprints would differ between identical seeds.
#include <cstdlib>

int
jitterBytes()
{
    return std::rand() % 64;
}

int
pickLane()
{
    return rand() % 4;
}

struct EntropyTap
{
    // Hardware entropy is the canonical determinism leak; the type
    // alone is banned, not just its operator().
    std::random_device tap;
};
