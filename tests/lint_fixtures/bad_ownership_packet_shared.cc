// NetPacket ref-counting outside src/nic/ and src/net/: the packet
// arena refactor (ROADMAP item 1) owns this type's lifetime, and
// stray shared_ptr handles elsewhere would pin pooled packets.
#include <memory>

struct NetPacket
{
    int bytes;
};

std::shared_ptr<NetPacket>
stash()
{
    return std::make_shared<NetPacket>();
}
