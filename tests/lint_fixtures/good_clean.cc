// Representative clean simulator code: seeded Rng for randomness,
// RAII ownership, wide tick arithmetic, described stats, weak_ptr
// back-edges, logging via the project macros.
#include <memory>

using Tick = unsigned long long;

namespace stats
{
struct Counter
{
    Counter(const char *name, const char *desc);
};
} // namespace stats

struct Rng
{
    explicit Rng(unsigned long long seed);
    unsigned long long below(unsigned long long bound);
};

struct MeshColumn;

struct MeshCell
{
    // Back-edge held weakly: the column owns its cells, not vice versa.
    std::weak_ptr<MeshColumn> parentColumn;
};

struct RouterStats
{
    stats::Counter _drops{"drops", "packets dropped at this router"};
    stats::Counter _spins{"spins",
                          "allocation passes that made no progress"};
};

struct Link
{
    Tick nextFree = 0;

    Tick
    reserve(Tick now, Tick serialization)
    {
        Tick start = now > nextFree ? now : nextFree;
        nextFree = start + serialization;
        return start;
    }
};

std::unique_ptr<Link>
makeLink()
{
    return std::make_unique<Link>();
}

unsigned long long
pickVictim(Rng &rng, unsigned long long n)
{
    return rng.below(n);
}
