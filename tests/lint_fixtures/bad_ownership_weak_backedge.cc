// A shared_ptr member named like a back-edge: child keeping the
// parent alive forms a reference cycle, the exact leak class the
// PR-3 sanitizer gate caught. Back-edges should be weak_ptr (or a
// raw observer when lifetime is externally guaranteed).
#include <memory>

struct MeshColumn;

struct MeshCell
{
    std::shared_ptr<MeshColumn> _parentColumn;
};

struct FifoSlot
{
    std::shared_ptr<MeshCell> ownerCell;
};
