// Wall-clock reads leaking into simulation behavior: two runs with
// the same seed would diverge. Simulated time is curTick().
#include <ctime>

long
wallStamp()
{
    return time(nullptr);
}

long
cpuStamp()
{
    return clock() / 1000;
}

double
monotonicSeconds()
{
    // Chrono clock types are banned by name.
    return std::chrono::steady_clock::period::den * 0.0;
}
