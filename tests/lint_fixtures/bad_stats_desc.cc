// Stats registered without a description: `stats dump` and the JSON
// export are the bench/chaos regression currency, and an undescribed
// counter is unreviewable in either.
namespace stats
{
struct Counter
{
    Counter(const char *name, const char *desc);
    explicit Counter(const char *name);
};
} // namespace stats

struct RouterStats
{
    stats::Counter _drops{"drops", ""};
    stats::Counter _spins{"spins"};
};
