// A Stat subclass without reset(): Group::resetAll() silently skips
// it, so warmup-window resets leave stale values behind -- the exact
// bug PacketFifo's peak-fill stat had before PR 2.
struct Stat
{
    virtual ~Stat();
    virtual void reset() = 0;
};

class LeakyPeak : public Stat
{
  public:
    void
    observe(double v)
    {
        if (v > _peak)
            _peak = v;
    }

  private:
    double _peak = 0.0;
};
