// A shrimp NOLINT with no stated reason: the suppression is inert
// (the underlying rule still fires where violated) and is itself a
// finding. Reviewers need the why, not just the waiver.
int
stride()
{
    return 7;   // NOLINT(shrimp-tick-narrowing)
}
