// Owning raw allocation: leaks on every early return and hides
// lifetime from the reader; the codebase standard is unique_ptr or
// an arena/pool.
struct Buffer
{
    int fill;
};

Buffer *
grab()
{
    return new Buffer;
}

void
drop(Buffer *b)
{
    delete b;
}

char *
scratch(unsigned long n)
{
    return static_cast<char *>(malloc(n));
}
