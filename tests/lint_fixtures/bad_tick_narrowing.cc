// Tick is 64-bit picoseconds: one millisecond of simulated time is
// 1e9 ticks, so a 32-bit value overflows after ~4.3 ms and deadlines
// silently land in the past.
using Tick = unsigned long long;

Tick curTick();
Tick lastTick = 0;

unsigned
deadlineLow()
{
    return static_cast<unsigned>(curTick());
}

int
wrapHalf()
{
    return (int)(curTick() / 2);
}

void
record()
{
    unsigned when = lastTick + 5;
    (void)when;
}
