// Every violation below carries a reasoned NOLINT, which is the
// sanctioned escape hatch: the rule stays on, the reader learns why
// this site is exempt, and the self-test proves reasoned suppressions
// really silence the finding.
using Tick = unsigned long long;

Tick curTick();

struct Slab
{
    int fill;
};

Slab *
grabSlab()
{
    // NOLINTNEXTLINE(shrimp-ownership-raw-new): arena slab, reclaimed wholesale in ~Arena
    return new Slab;
}

unsigned
fingerprintWord()
{
    return static_cast<unsigned>(curTick() & 0xffffffffu); // NOLINT(shrimp-tick-narrowing): low 32 bits only, folded into the stats fingerprint
}
