// Raw console I/O inside src/: bypasses the logging package's flag
// gating, interleaves with stats/trace output, and cannot be silenced
// by tests. Use SHRIMP_WARN / SHRIMP_INFORM / SHRIMP_DTRACE.
#include <cstdio>
#include <iostream>

void
reportDrops(int n)
{
    printf("drops: %d\n", n);
}

void
reportPeers(int n)
{
    std::cout << "peers: " << n << "\n";
}
