// Raw equality on incarnation (life) numbers re-implements the
// membership fence without the 0 = "never observed" sentinel: a page
// granted before the peer was ever heard from would be fenced, and a
// relic from life 3 would land after a bump to 4 if only one side
// checks. Comparisons belong behind Incarnation::sameLife /
// newerLife / observed (os/health.hh).
using NodeId = unsigned;

struct DirEntry
{
    unsigned granteeIncarnation = 0;
};

unsigned peerIncarnation(NodeId peer);

bool
writebackFencedRaw(const DirEntry &d, unsigned inc)
{
    return d.granteeIncarnation != inc;
}

bool
sameLifeRaw(NodeId peer, unsigned stampedIncarnation)
{
    return peerIncarnation(peer) == stampedIncarnation;
}

bool
everObservedRaw(unsigned incarnation)
{
    return incarnation == 0;
}
