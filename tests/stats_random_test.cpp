/**
 * @file
 * Unit tests for the stats package and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/json.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace shrimp
{
namespace
{

TEST(Stats, CounterAccumulates)
{
    stats::Counter c("pkts", "packets");
    ++c;
    c += 9;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d("lat", "latency");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.118, 0.001);
}

TEST(Stats, DistributionStddevNoCancellation)
{
    // Regression: the old sum-of-squares formula computed
    // sum(x^2)/n - mean^2, which cancels catastrophically when
    // mean >> stddev -- for samples near 1e12 with unit spread the
    // squares agree to ~24 digits and a double keeps ~16, so the
    // subtraction returned garbage (often 0, sometimes NaN from a
    // negative variance). Welford's update has no such subtraction.
    stats::Distribution d("lat", "latency");
    for (double off : {0.0, 1.0, 2.0})
        d.sample(1e12 + off);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 1e12 + 1.0);
    // Population stddev of {0,1,2} is sqrt(2/3).
    EXPECT_NEAR(d.stddev(), std::sqrt(2.0 / 3.0), 1e-9);
    EXPECT_FALSE(std::isnan(d.stddev()));
}

TEST(Stats, DistributionResetRestartsMoments)
{
    stats::Distribution d("lat", "latency");
    d.sample(100.0);
    d.sample(300.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 5.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 5.0);
}

TEST(Stats, PeakTracksAndResets)
{
    stats::Peak p("peak", "high-water mark");
    p.observe(10.0);
    p.observe(4.0);
    EXPECT_DOUBLE_EQ(p.value(), 10.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.value(), 0.0);
    p.observe(3.0);
    EXPECT_DOUBLE_EQ(p.value(), 3.0);
}

TEST(Stats, HistogramLog2Buckets)
{
    EXPECT_EQ(stats::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(stats::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(stats::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(stats::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(stats::Histogram::bucketOf(4), 3u);
    EXPECT_EQ(stats::Histogram::bucketLow(0), 0u);
    EXPECT_EQ(stats::Histogram::bucketLow(1), 1u);
    EXPECT_EQ(stats::Histogram::bucketLow(3), 4u);

    stats::Histogram h("depth", "queue depth");
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
    ASSERT_GT(h.buckets().size(), 10u);
    EXPECT_EQ(h.buckets()[0], 1u);      // the 0
    EXPECT_EQ(h.buckets()[1], 1u);      // the 1
    EXPECT_EQ(h.buckets()[2], 2u);      // 2 and 3
    EXPECT_EQ(h.buckets()[10], 1u);     // 1000 in [512, 1024)
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(Stats, GroupDumpJsonParses)
{
    stats::Group root("node0");
    stats::Group child("nic", &root);
    stats::Counter c("pkts", "packets sent");
    stats::Distribution d("lat", "latency");
    stats::Histogram h("depth", "queue depth");
    child.addStat(&c);
    child.addStat(&d);
    child.addStat(&h);
    c += 3;
    d.sample(10.0);
    d.sample(20.0);
    h.sample(5);

    std::ostringstream os;
    root.dumpJson(os);
    json::Value v = json::parse(os.str());
    ASSERT_TRUE(v.isObject());

    const json::Value *pkts = v.find("node0.nic.pkts");
    ASSERT_TRUE(pkts && pkts->isNumber());
    EXPECT_DOUBLE_EQ(pkts->number, 3.0);

    const json::Value *lat = v.find("node0.nic.lat");
    ASSERT_TRUE(lat && lat->isObject());
    EXPECT_DOUBLE_EQ(lat->find("mean")->number, 15.0);
    EXPECT_DOUBLE_EQ(lat->find("count")->number, 2.0);

    const json::Value *depth = v.find("node0.nic.depth");
    ASSERT_TRUE(depth && depth->isObject());
    const json::Value *buckets = depth->find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    ASSERT_EQ(buckets->arr.size(), 1u);
    EXPECT_DOUBLE_EQ(buckets->arr[0].find("ge")->number, 4.0);
    EXPECT_DOUBLE_EQ(buckets->arr[0].find("count")->number, 1.0);
}

TEST(Json, ParseRoundtrip)
{
    json::Value v = json::parse(
        "{\"a\": 1.5, \"b\": [true, null, \"x\\n\"], \"c\": {}}");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
    const json::Value *b = v.find("b");
    ASSERT_TRUE(b && b->isArray());
    ASSERT_EQ(b->arr.size(), 3u);
    EXPECT_TRUE(b->arr[0].boolean);
    EXPECT_EQ(b->arr[2].str, "x\n");
    EXPECT_TRUE(v.find("c")->isObject());
    EXPECT_THROW(json::parse("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(json::parse("[1, 2"), std::runtime_error);
}

TEST(Stats, EmptyDistributionIsSafe)
{
    stats::Distribution d("lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, GroupDumpContainsPaths)
{
    stats::Group root("node0");
    stats::Group child("nic", &root);
    stats::Counter c("pkts", "packets sent");
    child.addStat(&c);
    c += 3;

    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.nic.pkts"), std::string::npos);
    EXPECT_NE(out.find("3"), std::string::npos);

    root.resetAll();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true, any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        all_equal = all_equal && va == b.next();
        any_diff_seed = any_diff_seed || va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.inRange(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

} // namespace
} // namespace shrimp
