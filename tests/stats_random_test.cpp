/**
 * @file
 * Unit tests for the stats package and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.hh"
#include "sim/stats.hh"

namespace shrimp
{
namespace
{

TEST(Stats, CounterAccumulates)
{
    stats::Counter c("pkts", "packets");
    ++c;
    c += 9;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d("lat", "latency");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.118, 0.001);
}

TEST(Stats, EmptyDistributionIsSafe)
{
    stats::Distribution d("lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, GroupDumpContainsPaths)
{
    stats::Group root("node0");
    stats::Group child("nic", &root);
    stats::Counter c("pkts", "packets sent");
    child.addStat(&c);
    c += 3;

    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.nic.pkts"), std::string::npos);
    EXPECT_NE(out.find("3"), std::string::npos);

    root.resetAll();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true, any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        all_equal = all_equal && va == b.next();
        any_diff_seed = any_diff_seed || va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.inRange(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

} // namespace
} // namespace shrimp
