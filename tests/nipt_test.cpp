/**
 * @file
 * Unit tests for the Network Interface Page Table, including the
 * page-split mechanism of Section 3.2.
 */

#include <gtest/gtest.h>

#include "nic/nipt.hh"

namespace shrimp
{
namespace
{

TEST(Nipt, UnmappedByDefault)
{
    Nipt nipt(16);
    EXPECT_EQ(nipt.numPages(), 16u);
    OutLookup l = nipt.lookupOut(0x3123);
    EXPECT_FALSE(l.mapped);
    EXPECT_FALSE(nipt.mappedIn(3));
}

TEST(Nipt, WholePageOutMapping)
{
    Nipt nipt(16);
    NiptEntry &e = nipt.entry(3);
    e.outLow = OutMapping{UpdateMode::AUTO_SINGLE, 7, 42, 0};

    OutLookup l = nipt.lookupOut(pageBase(3) + 0x123);
    ASSERT_TRUE(l.mapped);
    EXPECT_EQ(l.mode, UpdateMode::AUTO_SINGLE);
    EXPECT_EQ(l.dstNode, 7u);
    EXPECT_EQ(l.dstAddr, pageBase(42) + 0x123);
    EXPECT_EQ(l.bytesToMappingEnd, PAGE_SIZE - 0x123);
}

TEST(Nipt, SplitPageTwoMappings)
{
    Nipt nipt(16);
    NiptEntry &e = nipt.entry(5);
    e.splitOffset = 0x800;
    e.outLow = OutMapping{UpdateMode::AUTO_SINGLE, 1, 10, 0};
    e.outHigh = OutMapping{UpdateMode::DELIBERATE, 2, 20, 0};

    OutLookup lo = nipt.lookupOut(pageBase(5) + 0x7FC);
    ASSERT_TRUE(lo.mapped);
    EXPECT_EQ(lo.dstNode, 1u);
    EXPECT_EQ(lo.mode, UpdateMode::AUTO_SINGLE);
    EXPECT_EQ(lo.bytesToMappingEnd, 4u);    // clipped at the split

    OutLookup hi = nipt.lookupOut(pageBase(5) + 0x800);
    ASSERT_TRUE(hi.mapped);
    EXPECT_EQ(hi.dstNode, 2u);
    EXPECT_EQ(hi.mode, UpdateMode::DELIBERATE);
    EXPECT_EQ(hi.dstAddr, pageBase(20) + 0x800);
    EXPECT_EQ(hi.bytesToMappingEnd, PAGE_SIZE - 0x800);
}

TEST(Nipt, SplitWithOnlyHighHalf)
{
    Nipt nipt(16);
    NiptEntry &e = nipt.entry(6);
    e.splitOffset = 0x100;
    e.outHigh = OutMapping{UpdateMode::AUTO_BLOCK, 3, 30, 0};

    EXPECT_FALSE(nipt.lookupOut(pageBase(6) + 0x80).mapped);
    EXPECT_TRUE(nipt.lookupOut(pageBase(6) + 0x100).mapped);
}

TEST(Nipt, OffsetDeltaShiftsDestination)
{
    // A non-page-aligned mapping: source offset 0x100 lands at
    // destination offset 0x300.
    Nipt nipt(16);
    NiptEntry &e = nipt.entry(7);
    e.splitOffset = 0x100;
    e.outHigh = OutMapping{UpdateMode::AUTO_SINGLE, 1, 11, 0x200};

    OutLookup l = nipt.lookupOut(pageBase(7) + 0x100);
    ASSERT_TRUE(l.mapped);
    EXPECT_EQ(l.dstAddr, pageBase(11) + 0x300);
}

TEST(Nipt, NegativeDeltaShiftsBackward)
{
    Nipt nipt(16);
    NiptEntry &e = nipt.entry(8);
    e.outLow = OutMapping{UpdateMode::AUTO_SINGLE, 1, 12, -0x80};
    OutLookup l = nipt.lookupOut(pageBase(8) + 0x100);
    EXPECT_EQ(l.dstAddr, pageBase(12) + 0x80);
}

TEST(Nipt, MappedInAndSources)
{
    Nipt nipt(16);
    NiptEntry &e = nipt.entry(9);
    e.mappedIn = true;
    e.inSources = {2, 5};
    EXPECT_TRUE(nipt.mappedIn(9));
    EXPECT_TRUE(e.interruptOnArrival == false);
    EXPECT_FALSE(nipt.mappedIn(10));
    // Out-of-range page numbers are simply unmapped. The volatile
    // keeps GCC from constant-folding 100 into the inlined lookup,
    // which trips a false-positive -Warray-bounds on the guarded
    // (never-executed) subscript.
    volatile PageNum big = 100;
    EXPECT_FALSE(nipt.mappedIn(big));
    EXPECT_FALSE(nipt.lookupOut(pageBase(big)).mapped);
}

TEST(Nipt, OutOfRangeEntryPanics)
{
    Nipt nipt(4);
    EXPECT_THROW(nipt.entry(4), std::logic_error);
}

} // namespace
} // namespace shrimp
