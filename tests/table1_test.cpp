/**
 * @file
 * Reproduction of the paper's Table 1: software overhead of the
 * message-passing primitives, in instructions, measured by executing
 * the src/msg implementations on the simulated machine.
 *
 *   single buffering             9  (4 + 5)
 *   single buffering + copy     21  (4 + 17)
 *   double buffering (case 1)    2  (1 + 1)
 *   double buffering (case 2)    8  (3 + 5)
 *   double buffering (case 3)   10  (5 + 5)
 *   deliberate-update transfer  15  (15 + 0)
 *   csend and crecv            151  (73 + 78)   [ours is leaner; we
 *                                   assert the shape, see below]
 */

#include <gtest/gtest.h>

#include "core/table1.hh"

namespace shrimp
{
namespace
{

using table1::PrimitiveCost;

TEST(Table1, SingleBuffering)
{
    PrimitiveCost c = table1::runSingleBuffering(false);
    EXPECT_TRUE(c.dataOk);
    EXPECT_DOUBLE_EQ(c.sendPerMsg, 4.0);
    EXPECT_DOUBLE_EQ(c.recvPerMsg, 5.0);
}

TEST(Table1, SingleBufferingWithCopy)
{
    PrimitiveCost c = table1::runSingleBuffering(true);
    EXPECT_TRUE(c.dataOk);
    EXPECT_DOUBLE_EQ(c.sendPerMsg, 4.0);
    EXPECT_DOUBLE_EQ(c.recvPerMsg, 17.0);
    // The copy's per-word cost is tracked but excluded, as in the
    // paper ("not including per-byte copying costs").
    EXPECT_GT(c.dataPerMsg, 0.0);
}

TEST(Table1, DoubleBufferingCase1)
{
    PrimitiveCost c = table1::runDoubleBuffering(1);
    EXPECT_TRUE(c.dataOk);
    EXPECT_DOUBLE_EQ(c.sendPerMsg, 1.0);
    EXPECT_DOUBLE_EQ(c.recvPerMsg, 1.0);
}

TEST(Table1, DoubleBufferingCase2)
{
    PrimitiveCost c = table1::runDoubleBuffering(2);
    EXPECT_TRUE(c.dataOk);
    EXPECT_DOUBLE_EQ(c.sendPerMsg, 3.0);
    EXPECT_DOUBLE_EQ(c.recvPerMsg, 5.0);
}

TEST(Table1, DoubleBufferingCase3)
{
    PrimitiveCost c = table1::runDoubleBuffering(3);
    EXPECT_TRUE(c.dataOk);
    EXPECT_DOUBLE_EQ(c.sendPerMsg, 5.0);
    EXPECT_DOUBLE_EQ(c.recvPerMsg, 5.0);
}

TEST(Table1, DeliberateUpdateTransfer)
{
    PrimitiveCost c = table1::runDeliberateUpdate();
    EXPECT_TRUE(c.dataOk);
    EXPECT_DOUBLE_EQ(c.sendPerMsg, 15.0);   // 13 init + 2 check
    EXPECT_DOUBLE_EQ(c.recvPerMsg, 0.0);
}

TEST(Table1, UserLevelNx2ShapeHolds)
{
    // Our user-level csend/crecv implementation is leaner than the
    // paper's (73 + 78); assert the structural claims instead: both
    // fast paths are tens of instructions -- an order of magnitude
    // above the simple primitives -- with stable per-message cost.
    PrimitiveCost c = table1::runUserNx2();
    EXPECT_TRUE(c.dataOk);
    EXPECT_GE(c.sendPerMsg, 20.0);
    EXPECT_LE(c.sendPerMsg, 80.0);
    EXPECT_GE(c.recvPerMsg, 20.0);
    EXPECT_LE(c.recvPerMsg, 90.0);
}

TEST(Table1, KernelNx2BaselineIsMuchMoreExpensive)
{
    // C1: the traditional kernel-level NX/2 needs its 222/261
    // instruction fast paths plus syscalls, copies and interrupts;
    // the user-level implementation must beat it by roughly the
    // paper's factor of ~4.
    PrimitiveCost kernel = table1::runKernelNx2();
    EXPECT_TRUE(kernel.dataOk);
    EXPECT_GE(kernel.kernelSendPerMsg, 222u);
    EXPECT_GE(kernel.kernelRecvPerMsg, 261u);

    PrimitiveCost user = table1::runUserNx2();
    double kernel_total = static_cast<double>(
        kernel.kernelSendPerMsg + kernel.kernelRecvPerMsg);
    double user_total = user.sendPerMsg + user.recvPerMsg;
    EXPECT_GE(kernel_total / user_total, 3.0)
        << "kernel=" << kernel_total << " user=" << user_total;
}

TEST(Table1, PerByteCostsScaleWithPayloadNotOverhead)
{
    // Property: growing the payload grows only the DATA region; the
    // measured overheads are payload-independent.
    PrimitiveCost small = table1::runSingleBuffering(true, 4, 4);
    PrimitiveCost large = table1::runSingleBuffering(true, 4, 64);
    EXPECT_TRUE(small.dataOk);
    EXPECT_TRUE(large.dataOk);
    EXPECT_DOUBLE_EQ(small.sendPerMsg, large.sendPerMsg);
    EXPECT_DOUBLE_EQ(small.recvPerMsg, large.recvPerMsg);
    EXPECT_GT(large.dataPerMsg, small.dataPerMsg * 4);
}

} // namespace
} // namespace shrimp
