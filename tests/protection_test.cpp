/**
 * @file
 * Protection tests for the paper's central claim: user-level
 * communication without sacrificing protection under general
 * multiprogramming (Sections 1-3, Figure 3).
 *
 *  - Two processes coexist with independent mappings; a context
 *    switch between them requires no network-interface action,
 *    because the NIPT is keyed by *physical* pages and the processes'
 *    physical pages are disjoint.
 *  - A process cannot trigger another process's mappings: writes to
 *    its own (unmapped) memory produce no packets, and it has no
 *    translation for the other process's pages at all.
 *  - Command pages only control the pages the kernel granted.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

TEST(Protection, TwoProcessesCoexistAndSwitchWithoutNiAction)
{
    // Figure 3: the gray and black mappings belong to different
    // processes on the same pair of nodes; context switches between
    // them require no NIPT changes.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.kernel.quantum = 30 * ONE_US;   // frequent switches
    ShrimpSystem sys(cfg);

    struct Side
    {
        Process *snd;
        Process *rcv;
        Addr src, dst;
    };
    Side gray, black;
    for (Side *side : {&gray, &black}) {
        side->snd = sys.kernel(0).createProcess("snd");
        side->rcv = sys.kernel(1).createProcess("rcv");
        side->src = side->snd->allocate(1);
        side->dst = side->rcv->allocate(1);
        ASSERT_EQ(sys.kernel(0).mapDirect(*side->snd, side->src, 1,
                                          sys.kernel(1), *side->rcv,
                                          side->dst,
                                          UpdateMode::AUTO_SINGLE),
                  err::OK);
    }

    // Snapshot the NIPT; it must be bit-identical after the run.
    auto nipt_fingerprint = [&](NodeId n) {
        std::uint64_t h = 1469598103934665603ull;
        const Nipt &nipt = sys.node(n).ni.nipt();
        for (PageNum p = 0; p < nipt.numPages(); ++p) {
            const NiptEntry &e = nipt.entry(p);
            auto mix = [&h](std::uint64_t v) {
                h = (h ^ v) * 1099511628211ull;
            };
            mix(static_cast<std::uint64_t>(e.outLow.mode));
            mix(e.outLow.dstPage);
            mix(static_cast<std::uint64_t>(e.outHigh.mode));
            mix(e.outHigh.dstPage);
            mix(e.splitOffset);
            mix(e.mappedIn);
        }
        return h;
    };
    std::uint64_t fp0 = nipt_fingerprint(0);
    std::uint64_t fp1 = nipt_fingerprint(1);

    // Both senders interleave 20 writes each under preemption, with
    // enough compute between writes that several quanta expire.
    int tag = 0;
    for (Side *side : {&gray, &black}) {
        Program p("snd");
        p.movi(R1, side->src);
        p.movi(R2, 0);
        p.movi(R3, 20);
        p.label("loop");
        p.st(R1, 0, R2, 4);
        p.addi(R1, 4);
        p.addi(R2, 1);
        p.movi(R4, 0);          // ~1200-instruction compute phase
        p.label("work");
        p.addi(R4, 1);
        p.cmpi(R4, 400);
        p.jl("work");
        p.cmp(R2, R3);
        p.jl("loop");
        p.halt();
        loadProgram(sys.kernel(0), *side->snd, std::move(p));
        Program pr("rcv");
        pr.halt();
        loadProgram(sys.kernel(1), *side->rcv, std::move(pr));
        ++tag;
    }

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    // Each side's data landed in ITS receiver only.
    for (Side *side : {&gray, &black}) {
        for (int i = 0; i < 20; ++i) {
            EXPECT_EQ(peek32(sys, 1, *side->rcv, side->dst + 4 * i),
                      static_cast<std::uint32_t>(i));
        }
    }
    // Context switches happened, the NIPT never changed.
    EXPECT_GT(sys.kernel(0).contextSwitches(), 2u);
    EXPECT_EQ(nipt_fingerprint(0), fp0);
    EXPECT_EQ(nipt_fingerprint(1), fp1);
}

TEST(Protection, UnmappedProcessMemoryProducesNoPackets)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Process *mapped = sys.kernel(0).createProcess("mapped");
    Process *other = sys.kernel(0).createProcess("other");
    Process *rcv = sys.kernel(1).createProcess("rcv");
    Addr src = mapped->allocate(1);
    Addr dst = rcv->allocate(1);
    sys.kernel(0).mapDirect(*mapped, src, 1, sys.kernel(1), *rcv, dst,
                            UpdateMode::AUTO_SINGLE);

    // `other` writes furiously to its own memory: zero packets.
    Addr mine = other->allocate(2);
    Program po("other");
    po.movi(R1, mine);
    for (int i = 0; i < 64; ++i)
        po.sti(R1, 4 * i, 0xBAD, 4);
    po.halt();
    loadProgram(sys.kernel(0), *other, std::move(po));

    Program pm("mapped");
    pm.halt();      // the mapped process doesn't even run its send
    loadProgram(sys.kernel(0), *mapped, std::move(pm));
    Program pr("rcv");
    pr.halt();
    loadProgram(sys.kernel(1), *rcv, std::move(pr));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);

    EXPECT_EQ(sys.node(0).ni.packetsSent(), 0u);
    EXPECT_EQ(peek32(sys, 1, *rcv, dst), 0u);
}

TEST(Protection, ProcessCannotReachForeignVirtualMemory)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Process *victim = sys.kernel(0).createProcess("victim");
    Process *attacker = sys.kernel(0).createProcess("attacker");
    // Push the secret past any region the attacker's own space maps
    // (its stack occupies the first few user pages).
    victim->allocate(8);
    Addr secret = victim->allocate(1);
    test::poke32(sys, 0, *victim, secret, 0x5EC2E7);

    // The attacker has no translation for ANY address it did not
    // allocate; same virtual address, different (or no) frame.
    Program pa("attacker");
    pa.movi(R1, secret);    // same numeric vaddr as the victim's page
    pa.ld(R2, R1, 0, 4);    // faults: not mapped in attacker's space
    pa.halt();
    loadProgram(sys.kernel(0), *attacker, std::move(pa));
    Program pv("victim");
    pv.halt();
    loadProgram(sys.kernel(0), *victim, std::move(pv));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    // The attacker was killed by the fault, the victim unharmed.
    EXPECT_EQ(attacker->ctx.faults, 1u);
    EXPECT_EQ(peek32(sys, 0, *victim, secret), 0x5EC2E7u);
}

TEST(Protection, MapRequiresWritableUserPagesOnBothSides)
{
    // The protection check of the map() call: read-only source or
    // destination pages are refused (err::PERM), so a process cannot
    // export or import memory it cannot write.
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr ro_src = a->allocate(1, CachePolicy::WRITE_BACK, false);
    Addr rw_src = a->allocate(1);
    Addr ro_dst = b->allocate(1, CachePolicy::WRITE_BACK, false);
    Addr rw_dst = b->allocate(1);

    EXPECT_EQ(sys.kernel(0).mapDirect(*a, ro_src, 1, sys.kernel(1),
                                      *b, rw_dst,
                                      UpdateMode::AUTO_SINGLE),
              err::PERM);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, rw_src, 1, sys.kernel(1),
                                      *b, ro_dst,
                                      UpdateMode::AUTO_SINGLE),
              err::PERM);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, rw_src, 1, sys.kernel(1),
                                      *b, rw_dst,
                                      UpdateMode::AUTO_SINGLE),
              err::OK);
}

} // namespace
} // namespace shrimp
