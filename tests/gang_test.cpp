/**
 * @file
 * Tests for scheduling policies. The SHRIMP design claim (Sections
 * 1-2): protection lives in the mappings, so communication is safe
 * under arbitrary multiprogramming -- gang scheduling is an optional
 * performance policy, not a requirement. These tests run the same
 * communicating jobs under round-robin and gang scheduling and check
 * both complete correctly, including delivery to processes that are
 * descheduled when their data arrives.
 */

#include <gtest/gtest.h>

#include "core/gang.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

TEST(GangScheduling, OnlyCurrentGangRuns)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Kernel &k = sys.kernel(0);
    k.setSchedPolicy(SchedPolicy::GANG);
    k.setCurrentGang(1);

    Process *g1 = k.createProcess("g1");
    Process *g2 = k.createProcess("g2");
    g1->gangId = 1;
    g2->gangId = 2;
    for (Process *p : {g1, g2}) {
        Program prog(p->name());
        prog.movi(R1, 0);
        prog.halt();
        loadProgram(k, *p, std::move(prog));
    }

    sys.startAll();
    sys.runFor(10 * ONE_MS);
    EXPECT_EQ(g1->state, ProcState::EXITED);
    EXPECT_EQ(g2->state, ProcState::READY);     // never dispatched

    k.setCurrentGang(2);
    sys.runFor(10 * ONE_MS);
    EXPECT_EQ(g2->state, ProcState::EXITED);
}

TEST(GangScheduling, PreemptsRunningProcessOfOtherGang)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Kernel &k = sys.kernel(0);
    k.setSchedPolicy(SchedPolicy::GANG);
    k.setCurrentGang(1);

    // Gang 1: infinite spinner. Gang 2: quick exit.
    Process *spin = k.createProcess("spin");
    spin->gangId = 1;
    Program ps("spin");
    ps.label("forever");
    ps.jmp("forever");
    loadProgram(k, *spin, std::move(ps));

    Process *quick = k.createProcess("quick");
    quick->gangId = 2;
    Program pq("quick");
    pq.halt();
    loadProgram(k, *quick, std::move(pq));

    sys.startAll();
    sys.runFor(ONE_MS);
    EXPECT_EQ(spin->state, ProcState::RUNNING);
    EXPECT_EQ(quick->state, ProcState::READY);

    k.setCurrentGang(2);
    sys.runFor(ONE_MS);
    EXPECT_EQ(quick->state, ProcState::EXITED);
    EXPECT_EQ(spin->state, ProcState::READY);   // preempted, parked
}

TEST(GangScheduling, CommunicatingJobsCompleteUnderRotation)
{
    // Two ping-pong jobs (gangs 1 and 2) share a two-node machine
    // under a rotating gang schedule. Data for a descheduled gang
    // still lands in its memory (DMA needs no CPU), so both jobs
    // finish and verify.
    SystemConfig cfg = test::twoNodeConfig();
    ShrimpSystem sys(cfg);

    struct Job
    {
        Process *ping;
        Process *pong;
        Addr flag0, flag1;
    };
    std::vector<Job> jobs;
    constexpr int kRounds = 10;

    for (std::uint32_t gang = 1; gang <= 2; ++gang) {
        Job job;
        job.ping = sys.kernel(0).createProcess("ping" +
                                               std::to_string(gang));
        job.pong = sys.kernel(1).createProcess("pong" +
                                               std::to_string(gang));
        job.ping->gangId = gang;
        job.pong->gangId = gang;
        job.flag0 = job.ping->allocate(1);
        job.flag1 = job.pong->allocate(1);
        sys.kernel(0).mapDirect(*job.ping, job.flag0, 1, sys.kernel(1),
                                *job.pong, job.flag1,
                                UpdateMode::AUTO_SINGLE);
        sys.kernel(1).mapDirect(*job.pong, job.flag1, 1, sys.kernel(0),
                                *job.ping, job.flag0,
                                UpdateMode::AUTO_SINGLE);

        Program pa("ping");
        pa.movi(R6, job.flag0);
        pa.movi(R5, 0);
        pa.label("round");
        pa.addi(R5, 1);
        pa.st(R6, 0, R5, 4);
        pa.label("echo");
        pa.ld(R1, R6, 4, 4);
        pa.cmp(R1, R5);
        pa.jl("echo");
        pa.cmpi(R5, kRounds);
        pa.jl("round");
        pa.halt();
        loadProgram(sys.kernel(0), *job.ping, std::move(pa));

        Program pb("pong");
        pb.movi(R6, job.flag1);
        pb.movi(R5, 0);
        pb.label("round");
        pb.addi(R5, 1);
        pb.label("wait");
        pb.ld(R1, R6, 0, 4);
        pb.cmp(R1, R5);
        pb.jl("wait");
        pb.st(R6, 4, R5, 4);
        pb.cmpi(R5, kRounds);
        pb.jl("round");
        pb.halt();
        loadProgram(sys.kernel(1), *job.pong, std::move(pb));
        jobs.push_back(job);
    }

    // A short epoch forces several gang switches mid-conversation:
    // data keeps arriving for descheduled gangs (DMA needs no CPU).
    GangCoordinator coordinator(sys, {1, 2}, 20 * ONE_US);
    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());

    EXPECT_GE(coordinator.rotations(), 2u);
    for (const Job &job : jobs) {
        EXPECT_EQ(peek32(sys, 0, *job.ping, job.flag0 + 4),
                  static_cast<std::uint32_t>(kRounds));
        EXPECT_EQ(peek32(sys, 1, *job.pong, job.flag1),
                  static_cast<std::uint32_t>(kRounds));
    }
}

TEST(GangScheduling, RoundRobinIgnoresGangIds)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Kernel &k = sys.kernel(0);  // default ROUND_ROBIN

    Process *g1 = k.createProcess("g1");
    Process *g2 = k.createProcess("g2");
    g1->gangId = 1;
    g2->gangId = 2;
    for (Process *p : {g1, g2}) {
        Program prog(p->name());
        prog.halt();
        loadProgram(k, *p, std::move(prog));
    }
    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    EXPECT_EQ(g1->state, ProcState::EXITED);
    EXPECT_EQ(g2->state, ProcState::EXITED);
}

} // namespace
} // namespace shrimp
