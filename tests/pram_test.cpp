/**
 * @file
 * The paper's experimental environment (Section 5.2): two PCs with
 * PRAM network interfaces -- 32 KB of dual-ported SRAM mirrored
 * between the boards like a complementary single-write automatic-
 * update mapping. The paper's key claim about it: it is a restricted
 * version of SHRIMP, so code written for it runs unchanged on SHRIMP
 * and the instruction counts measured on it are accurate for SHRIMP.
 *
 * These tests attach PRAM boards to two simulated nodes, run the SAME
 * single-buffering primitive emitters used by the Table 1 harness
 * against PRAM SRAM, and verify both data delivery and the identical
 * 4+5 instruction counts.
 */

#include <gtest/gtest.h>

#include "msg/single_buffer.hh"
#include "nic/pram_ni.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;

struct PramFixture : ::testing::Test
{
    std::unique_ptr<ShrimpSystem> sys;
    std::unique_ptr<PramNi> pram0;
    std::unique_ptr<PramNi> pram1;
    Process *procA = nullptr;
    Process *procB = nullptr;
    Addr winA = 0, winB = 0;    //!< SRAM windows in each process VA

    void
    SetUp() override
    {
        sys = std::make_unique<ShrimpSystem>(test::twoNodeConfig());
        PramNi::Params params;
        pram0 = std::make_unique<PramNi>(sys->eventQueue(),
                                         "node0.pram", params,
                                         sys->node(0).bus);
        pram1 = std::make_unique<PramNi>(sys->eventQueue(),
                                         "node1.pram", params,
                                         sys->node(1).bus);
        pram0->connectPeer(pram1.get());
        pram1->connectPeer(pram0.get());

        procA = sys->kernel(0).createProcess("A");
        procB = sys->kernel(1).createProcess("B");
        winA = procA->space().mapPhysical(pram0->sramBasePage(),
                                          pram0->sramPages(),
                                          CachePolicy::UNCACHEABLE,
                                          true);
        winB = procB->space().mapPhysical(pram1->sramBasePage(),
                                          pram1->sramPages(),
                                          CachePolicy::UNCACHEABLE,
                                          true);
    }

    std::uint32_t
    sramWord(PramNi &pram, Addr off)
    {
        return static_cast<std::uint32_t>(
            pram.busRead(pram.sramBase() + off, 4));
    }
};

TEST_F(PramFixture, WritesMirrorBothWays)
{
    Program pa("a");
    pa.movi(R1, winA);
    pa.sti(R1, 0x100, 0xAA11, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.movi(R1, winB);
    pb.sti(R1, 0x200, 0xBB22, 4);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    // Both copies converged on both writes.
    for (PramNi *pram : {pram0.get(), pram1.get()}) {
        EXPECT_EQ(sramWord(*pram, 0x100), 0xAA11u);
        EXPECT_EQ(sramWord(*pram, 0x200), 0xBB22u);
    }
}

TEST_F(PramFixture, SingleBufferingRunsUnchangedWithSameCounts)
{
    // The exact emitters the SHRIMP Table 1 harness uses, pointed at
    // PRAM SRAM instead of mapped DRAM. Layout inside the shared
    // window: buffer at 0, nbytes flag at 0x400.
    constexpr unsigned kWords = 8;
    constexpr Addr flag_off = 0x400;

    Program pa("a");
    pa.movi(R6, winA + flag_off);
    pa.movi(R4, winA);
    pa.mark(region::SEND);
    msg::emitSbWaitEmpty(pa, "we");
    pa.mark(region::DATA);
    for (unsigned j = 0; j < kWords; ++j)
        pa.sti(R4, 4 * j, 0x9000 + j, 4);
    pa.mark(region::SEND);
    msg::emitSbPublish(pa, kWords * 4);
    pa.mark(region::NONE);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.movi(R6, winB + flag_off);
    // Phase delay so the data has arrived before the receiver looks
    // (the measured fast path, as in the Table 1 harness).
    pb.movi(R2, 0);
    pb.label("phase");
    pb.addi(R2, 1);
    pb.cmpi(R2, 2000);
    pb.jl("phase");
    pb.mark(region::RECV);
    msg::emitSbWaitData(pb, "wd");
    msg::emitSbRelease(pb);
    pb.mark(region::NONE);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    // Identical software overhead to SHRIMP: 4 + 5 (Table 1), because
    // the counts are ISA-level properties of the same code.
    EXPECT_EQ(procA->ctx.regionCount(region::SEND), 4u);
    EXPECT_EQ(procB->ctx.regionCount(region::RECV), 5u);

    // And the data really moved through the PRAM SRAM.
    for (unsigned j = 0; j < kWords; ++j)
        EXPECT_EQ(sramWord(*pram1, 4 * j), 0x9000u + j);
    // Receiver's release propagated back: the sender-side flag copy
    // is zero again.
    EXPECT_EQ(sramWord(*pram0, flag_off), 0u);
}

TEST_F(PramFixture, OnlyThirtyTwoKilobytesAreMapped)
{
    // One byte past the window has no translation: the restricted
    // environment really is restricted.
    Translation t =
        procA->space().translate(winA + PramNi::sramBytes, false);
    EXPECT_EQ(t.fault, FaultKind::NOT_PRESENT);
    // The last in-window byte is fine.
    EXPECT_TRUE(procA->space()
                    .translate(winA + PramNi::sramBytes - 1, false)
                    .ok());
}

} // namespace
} // namespace shrimp
