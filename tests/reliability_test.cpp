/**
 * @file
 * Reliability tests: the per-packet CRC (Section 3.1) under injected
 * link faults. The SHRIMP backplane is assumed reliable; the CRC's
 * job is to *detect* rare network errors so corrupted data is never
 * silently written to user memory. These tests flip random payload
 * bits on the wire and verify every corruption is caught and dropped
 * and every delivered word is exact.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

/**
 * Bit-flip corruption on every output link of one router, applied
 * after setup traffic (mappings) has gone through cleanly. This is
 * what the removed setErrorInjection() shim used to do; production
 * configuration goes through SystemConfig::linkFaults instead.
 */
void
corruptAllLinks(Router &router, double prob, std::uint64_t seed)
{
    FaultModel::Params params;
    params.corruptProb = prob;
    params.seed = seed;
    for (unsigned p = Router::LOCAL + 1; p < Router::NUM_PORTS; ++p)
        router.setFaultModel(static_cast<Router::Port>(p), params);
}

TEST(Reliability, EveryInjectedErrorCaughtNothingCorruptDelivered)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);

    // 30% of forwarded packets get one flipped payload bit.
    corruptAllLinks(sys.backplane().router(0), 0.3, 12345);

    constexpr int kStores = 200;
    Program pa("a");
    pa.movi(R2, 1);             // values 1..kStores (never 0)
    pa.movi(R3, kStores + 1);
    pa.movi(R1, src);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);        // same word every time: every store
                                // is a packet, last intact one wins
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));

    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(20 * ONE_MS);

    auto &rx = sys.node(1).ni;
    std::uint64_t injected =
        sys.backplane().router(0).errorsInjected();
    ASSERT_GT(injected, 10u);   // the fault injector really ran

    // Exactly the corrupted packets were dropped; the rest arrived.
    EXPECT_EQ(rx.dropsCrc(), injected);
    EXPECT_EQ(rx.packetsDelivered() + rx.dropsCrc(),
              static_cast<std::uint64_t>(kStores));

    // The destination word holds some in-sequence value, i.e. the
    // last *intact* packet -- never a corrupted payload.
    std::uint32_t final_word = peek32(sys, 1, *b, dst);
    EXPECT_GE(final_word, 1u);
    EXPECT_LE(final_word, static_cast<std::uint32_t>(kStores));
}

TEST(Reliability, CleanLinksDeliverEverything)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b, dst,
                            UpdateMode::AUTO_SINGLE);
    // Probability zero: the injector must be a strict no-op.
    corruptAllLinks(sys.backplane().router(0), 0.0, 1);

    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 32; ++i)
        pa.sti(R1, 4 * i, 0xF00 + i, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);

    EXPECT_EQ(sys.backplane().router(0).errorsInjected(), 0u);
    EXPECT_EQ(sys.node(1).ni.dropsCrc(), 0u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(peek32(sys, 1, *b, dst + 4 * i),
                  static_cast<std::uint32_t>(0xF00 + i));
}

TEST(Reliability, FaultParamsValidatedAndClamped)
{
    // Out-of-range probabilities are clamped to [0,1] rather than
    // feeding nonsense into the per-packet sampling.
    FaultModel::Params p;
    p.dropProb = 1.7;
    p.corruptProb = -0.3;
    p.duplicateProb = 2.0;
    p.reorderProb = -1.0;
    p.linkDownProb = 0.25;
    p.linkDownTicks = 0;        // outage window would be a no-op
    FaultModel::Params v = FaultModel::validated(p);
    EXPECT_EQ(v.dropProb, 1.0);
    EXPECT_EQ(v.corruptProb, 0.0);
    EXPECT_EQ(v.duplicateProb, 1.0);
    EXPECT_EQ(v.reorderProb, 0.0);
    EXPECT_EQ(v.linkDownProb, 0.25);
    EXPECT_GT(v.linkDownTicks, 0u);

    // The constructor itself validates, so a model built from bad
    // params already carries the repaired set.
    FaultModel fm(p, 1);
    EXPECT_EQ(fm.params().dropProb, 1.0);
    EXPECT_GT(fm.params().linkDownTicks, 0u);

    // In-range params pass through untouched.
    FaultModel::Params ok;
    ok.dropProb = 0.5;
    FaultModel::Params vok = FaultModel::validated(ok);
    EXPECT_EQ(vok.dropProb, 0.5);
    EXPECT_EQ(vok.linkDownTicks, ok.linkDownTicks);
}

} // namespace
} // namespace shrimp
