/**
 * @file
 * Unit tests for the memory subsystem: MainMemory, XpressBus
 * (decode, occupancy, snooping), EisaBus, Cache (per-page policies,
 * write buffer, snoop-invalidate).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/cache.hh"
#include "mem/eisa_bus.hh"
#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"

namespace shrimp
{
namespace
{

struct SnoopRecorder : BusSnooper
{
    struct Rec
    {
        Addr paddr;
        std::vector<std::uint8_t> data;
        BusMaster master;
        Tick when;
    };
    std::vector<Rec> recs;
    EventQueue *eq = nullptr;

    void
    snoopWrite(Addr paddr, const void *buf, Addr len,
               BusMaster master) override
    {
        Rec r;
        r.paddr = paddr;
        r.data.resize(len);
        std::memcpy(r.data.data(), buf, len);
        r.master = master;
        r.when = eq->curTick();
        recs.push_back(std::move(r));
    }
};

struct MemFixture : ::testing::Test
{
    EventQueue eq;
    MainMemory mem{eq, "mem", 1 * 1024 * 1024};
    XpressBus bus{eq, "bus"};

    void
    SetUp() override
    {
        bus.addTarget(0, mem.size(), &mem);
    }
};

TEST_F(MemFixture, FunctionalReadWrite)
{
    std::uint32_t v = 0xdeadbeef;
    mem.write(0x1000, &v, 4);
    EXPECT_EQ(mem.readInt(0x1000, 4), 0xdeadbeefu);
    EXPECT_EQ(mem.readInt(0x1002, 2), 0xdeadu);
    EXPECT_EQ(mem.numPages(), 256u);
}

TEST_F(MemFixture, OutOfRangeAccessPanics)
{
    std::uint8_t b = 0;
    EXPECT_THROW(mem.write(mem.size(), &b, 1), std::logic_error);
    EXPECT_THROW(mem.readInt(mem.size() - 1, 4), std::logic_error);
}

TEST_F(MemFixture, BusDecodesToTarget)
{
    EXPECT_EQ(bus.targetFor(0), &mem);
    EXPECT_EQ(bus.targetFor(mem.size() - 1), &mem);
    EXPECT_EQ(bus.targetFor(mem.size()), nullptr);
}

TEST_F(MemFixture, BusOccupancySerializes)
{
    // Two back-to-back 8-byte writes: 2 cycles each at 30 ns/cycle.
    auto g1 = bus.acquire(0, 8);
    auto g2 = bus.acquire(0, 8);
    EXPECT_EQ(g1.start, 0u);
    EXPECT_EQ(g1.end, 2 * 30000u);
    EXPECT_EQ(g2.start, g1.end);
    // Idle gap honoured (start aligns up to the next bus clock edge).
    auto g3 = bus.acquire(g2.end + ONE_US, 8);
    EXPECT_GE(g3.start, g2.end + ONE_US);
    EXPECT_LT(g3.start, g2.end + ONE_US + bus.clockPeriod());
}

TEST_F(MemFixture, PostWriteIsFunctionalNowSnoopedAtGrant)
{
    SnoopRecorder snoop;
    snoop.eq = &eq;
    bus.addSnooper(&snoop);

    std::uint32_t v = 0x12345678;
    // Make the bus busy first so the snoop is visibly delayed.
    bus.acquire(0, 64);
    auto g = bus.postWrite(0x2000, &v, 4, BusMaster::CPU, 0);
    EXPECT_GT(g.start, 0u);

    // Functional effect is immediate.
    EXPECT_EQ(mem.readInt(0x2000, 4), 0x12345678u);
    // Snoop fires at the grant time with the data.
    EXPECT_TRUE(snoop.recs.empty());
    eq.run();
    ASSERT_EQ(snoop.recs.size(), 1u);
    EXPECT_EQ(snoop.recs[0].when, g.start);
    EXPECT_EQ(snoop.recs[0].paddr, 0x2000u);
    EXPECT_EQ(snoop.recs[0].master, BusMaster::CPU);
    std::uint32_t snooped;
    std::memcpy(&snooped, snoop.recs[0].data.data(), 4);
    EXPECT_EQ(snooped, 0x12345678u);
}

TEST_F(MemFixture, OverlappingTargetsPanic)
{
    MainMemory other(eq, "other", 64 * 1024);
    EXPECT_THROW(bus.addTarget(0x1000, 0x1000, &other),
                 std::logic_error);
}

TEST(EisaBus, BurstTimingMatchesBandwidth)
{
    EventQueue eq;
    EisaBus eisa(eq, "eisa", EisaBus::Params{});
    // 33 MB/s, 900 ns setup.
    auto g = eisa.acquire(0, 33);
    EXPECT_EQ(g.start, 0u);
    EXPECT_EQ(g.end, 900 * ONE_NS + ONE_US);    // 33 B @ 33 MB/s = 1 us
    auto g2 = eisa.acquire(0, 33);
    EXPECT_EQ(g2.start, g.end);
    EXPECT_EQ(eisa.bytesCarried(), 66u);
}

TEST(EisaBus, LongBurstApproachesPeakBandwidth)
{
    EventQueue eq;
    EisaBus eisa(eq, "eisa", EisaBus::Params{});
    Addr bytes = 1 * 1024 * 1024;
    auto g = eisa.acquire(0, bytes);
    double secs = static_cast<double>(g.end - g.start) / ONE_SEC;
    double mbps = bytes / secs / 1e6;
    EXPECT_GT(mbps, 32.5);
    EXPECT_LE(mbps, 33.01);
}

struct CacheFixture : ::testing::Test
{
    EventQueue eq;
    MainMemory mem{eq, "mem", 1 * 1024 * 1024};
    XpressBus bus{eq, "bus"};
    Cache cache{eq, "cache", 60'000'000, bus, mem, Cache::Params{}};

    void
    SetUp() override
    {
        bus.addTarget(0, mem.size(), &mem);
    }
};

TEST_F(CacheFixture, LoadMissThenHit)
{
    Tick t1 = cache.load(0x3000, 4, CachePolicy::WRITE_BACK, 0);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_TRUE(cache.isCached(0x3000));
    // Miss latency includes a bus line fill plus DRAM access.
    EXPECT_GT(t1, 60 * ONE_NS);

    Tick t2 = cache.load(0x3000, 4, CachePolicy::WRITE_BACK,
                         10 * ONE_US);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(t2, 10 * ONE_US + cache.clockPeriod());
}

TEST_F(CacheFixture, WriteBackStoreStaysOffBus)
{
    std::uint32_t v = 7;
    cache.store(0x4000, &v, 4, CachePolicy::WRITE_BACK, 0);
    EXPECT_TRUE(cache.isDirty(0x4000));
    EXPECT_EQ(mem.readInt(0x4000, 4), 7u);  // functional data current
    std::uint64_t line_fill_bytes = bus.bytesCarried();

    // Another store to the same line: no additional bus traffic.
    v = 9;
    cache.store(0x4004, &v, 4, CachePolicy::WRITE_BACK, ONE_US);
    EXPECT_EQ(bus.bytesCarried(), line_fill_bytes);
}

TEST_F(CacheFixture, WriteThroughStoreGoesToBus)
{
    SnoopRecorder snoop;
    snoop.eq = &eq;
    bus.addSnooper(&snoop);

    std::uint32_t v = 0xabcd;
    cache.store(0x5000, &v, 4, CachePolicy::WRITE_THROUGH, 0);
    eq.run();
    ASSERT_EQ(snoop.recs.size(), 1u);
    EXPECT_EQ(snoop.recs[0].paddr, 0x5000u);
    EXPECT_FALSE(cache.isDirty(0x5000));
}

TEST_F(CacheFixture, WriteBufferAbsorbsThenStalls)
{
    // Post more stores than write-buffer entries at the same tick;
    // the first four proceed immediately, the fifth stalls.
    std::uint32_t v = 1;
    Tick t = 0;
    std::vector<Tick> proceed;
    for (int i = 0; i < 6; ++i) {
        proceed.push_back(cache.store(0x6000 + 4 * i, &v, 4,
                                      CachePolicy::WRITE_THROUGH, t));
    }
    // First 4 complete at t + hit latency (posted).
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(proceed[i], cache.clockPeriod());
    // Later ones are pushed out by bus drain time.
    EXPECT_GT(proceed[5], proceed[0]);
}

TEST_F(CacheFixture, SnoopInvalidatesOnDmaWrite)
{
    cache.load(0x7000, 4, CachePolicy::WRITE_BACK, 0);
    cache.load(0x7020, 4, CachePolicy::WRITE_BACK, ONE_US);
    EXPECT_TRUE(cache.isCached(0x7000));
    EXPECT_TRUE(cache.isCached(0x7020));

    std::uint8_t buf[64] = {};
    bus.writeNow(0x7000, buf, 64, BusMaster::EISA_DMA);
    EXPECT_FALSE(cache.isCached(0x7000));
    EXPECT_FALSE(cache.isCached(0x7020));
    EXPECT_EQ(cache.snoopInvalidations(), 2u);  // 64 B = 2 lines
}

TEST_F(CacheFixture, CpuTrafficDoesNotSelfInvalidate)
{
    cache.load(0x8000, 4, CachePolicy::WRITE_BACK, 0);
    std::uint32_t v = 5;
    bus.postWrite(0x8000, &v, 4, BusMaster::CPU, 0);
    eq.run();
    EXPECT_TRUE(cache.isCached(0x8000));
}

TEST_F(CacheFixture, UncacheableLoadBypassesCache)
{
    Tick t = cache.load(0x9000, 4, CachePolicy::UNCACHEABLE, 0);
    EXPECT_FALSE(cache.isCached(0x9000));
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
    EXPECT_GE(t, 60 * ONE_NS);  // paid DRAM latency
}

TEST_F(CacheFixture, LockedAccessDrainsWriteBuffer)
{
    std::uint32_t v = 1;
    for (int i = 0; i < 4; ++i)
        cache.store(0xa000 + 4 * i, &v, 4, CachePolicy::WRITE_THROUGH,
                    0);
    auto grant = cache.lockedAccess(0xb000, 4, 0);
    // The locked op starts only after all posted writes hit the bus.
    EXPECT_GE(grant.start, cache.drainedAt(0));
}

TEST_F(CacheFixture, DirtyVictimWritesBack)
{
    Cache::Params params;
    // Same index, different tags: addresses one cache-size apart.
    std::uint32_t v = 3;
    cache.store(0x1000, &v, 4, CachePolicy::WRITE_BACK, 0);
    EXPECT_TRUE(cache.isDirty(0x1000));
    std::uint64_t before = bus.bytesCarried();
    cache.load(0x1000 + params.sizeBytes, 4, CachePolicy::WRITE_BACK,
               ONE_US);
    // Writeback + fill both appeared on the bus.
    EXPECT_GE(bus.bytesCarried(), before + 2 * params.lineBytes);
    EXPECT_FALSE(cache.isDirty(0x1000));
}

} // namespace
} // namespace shrimp
