/**
 * @file
 * Integration tests for the kernel: scheduling and multiprogramming,
 * syscalls, and the full map()/unmap() protocol over the in-band
 * kernel channel.
 */

#include <gtest/gtest.h>

#include "os/map_manager.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;
using test::poke32;

struct KernelFixture : ::testing::Test
{
    std::unique_ptr<ShrimpSystem> sys;

    void
    build(SystemConfig cfg = test::twoNodeConfig())
    {
        sys = std::make_unique<ShrimpSystem>(cfg);
    }

    /** Write a MapArgs block into @p proc's memory at @p vaddr. */
    void
    pokeMapArgs(NodeId node, Process &proc, Addr vaddr,
                const MapArgs &args)
    {
        poke32(*sys, node, proc, vaddr + 0, args.localVaddr);
        poke32(*sys, node, proc, vaddr + 4, args.npages);
        poke32(*sys, node, proc, vaddr + 8, args.dstNode);
        poke32(*sys, node, proc, vaddr + 12, args.dstPid);
        poke32(*sys, node, proc, vaddr + 16, args.dstVaddr);
        poke32(*sys, node, proc, vaddr + 20, args.mode);
        poke32(*sys, node, proc, vaddr + 24, args.flags);
    }
};

TEST_F(KernelFixture, ProcessLifecycle)
{
    build();
    Process *p = sys->kernel(0).createProcess("p");
    Addr out = p->allocate(1);

    Program prog("p");
    prog.movi(R1, out);
    prog.syscall(sys::GETPID);
    prog.st(R1, 0, R0, 4);
    prog.syscall(sys::NODE_ID);
    prog.st(R1, 4, R0, 4);
    prog.syscall(sys::EXIT);
    loadProgram(sys->kernel(0), *p, std::move(prog));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    EXPECT_EQ(p->state, ProcState::EXITED);
    EXPECT_EQ(peek32(*sys, 0, *p, out), p->pid());
    EXPECT_EQ(peek32(*sys, 0, *p, out + 4), 0u);
}

TEST_F(KernelFixture, YieldAlternatesProcesses)
{
    build();
    Kernel &k = sys->kernel(0);
    Process *a = k.createProcess("a");
    Process *b = k.createProcess("b");
    // Shared observation: each process appends its tag via host check
    // of a shared counter word in its own memory after yielding N
    // times; we simply check both finish and switches happened.
    for (Process *p : {a, b}) {
        Program prog(p->name());
        for (int i = 0; i < 5; ++i)
            prog.syscall(sys::YIELD);
        prog.halt();
        loadProgram(k, *p, std::move(prog));
    }
    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    EXPECT_GE(k.contextSwitches(), 10u);
}

TEST_F(KernelFixture, QuantumPreemptsCpuBoundProcess)
{
    SystemConfig cfg = test::twoNodeConfig();
    cfg.kernel.quantum = 100 * ONE_US;
    build(cfg);
    Kernel &k = sys->kernel(0);

    // Two CPU-bound loops; without preemption the first would hog the
    // CPU to completion.
    std::vector<Process *> procs;
    for (const char *name : {"a", "b"}) {
        Process *p = k.createProcess(name);
        Program prog(name);
        prog.movi(R1, 0);
        prog.movi(R2, 50'000);
        prog.label("loop");
        prog.addi(R1, 1);
        prog.cmp(R1, R2);
        prog.jl("loop");
        prog.halt();
        loadProgram(k, *p, std::move(prog));
        procs.push_back(p);
    }
    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    // ~150k instructions per process at 60 MHz = ~2.5 ms each; a
    // 100 us quantum forces many switches.
    EXPECT_GT(k.contextSwitches(), 10u);
}

TEST_F(KernelFixture, MapSyscallEstablishesWorkingMapping)
{
    build();
    Process *a = sys->kernel(0).createProcess("a");
    Process *b = sys->kernel(1).createProcess("b");
    Addr src = a->allocate(2);
    Addr dst = b->allocate(2);
    Addr args_block = a->allocate(1);
    Addr result = a->allocate(1);

    MapArgs args;
    args.localVaddr = static_cast<std::uint32_t>(src);
    args.npages = 2;
    args.dstNode = 1;
    args.dstPid = b->pid();
    args.dstVaddr = static_cast<std::uint32_t>(dst);
    args.mode = static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE);
    pokeMapArgs(0, *a, args_block, args);

    Program pa("a");
    pa.movi(R1, args_block);
    pa.syscall(sys::MAP);
    pa.movi(R1, result);
    pa.st(R1, 0, R0, 4);        // record the syscall status
    // Use the fresh mapping immediately: second page too.
    pa.movi(R1, src);
    pa.sti(R1, 0x10, 0x11110001, 4);
    pa.sti(R1, PAGE_SIZE + 0x20, 0x11110002, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *a, std::move(pa));

    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *b, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    EXPECT_EQ(peek32(*sys, 0, *a, result), err::OK);
    EXPECT_EQ(peek32(*sys, 1, *b, dst + 0x10), 0x11110001u);
    EXPECT_EQ(peek32(*sys, 1, *b, dst + PAGE_SIZE + 0x20),
              0x11110002u);

    // The protocol really went over the wire.
    EXPECT_GE(sys->kernel(0).mapManager().rpcsSent(), 2u);
    // Mapped-out pages became write-through.
    EXPECT_EQ(a->space().translate(src, false).policy,
              CachePolicy::WRITE_THROUGH);
    // Destination frames are pinned under the default PIN policy.
    Translation t = b->space().translate(dst, false);
    EXPECT_TRUE(sys->kernel(1).frames().isPinned(pageOf(t.paddr)));
}

TEST_F(KernelFixture, MapSyscallRejectsBadArguments)
{
    build();
    Process *a = sys->kernel(0).createProcess("a");
    Process *b = sys->kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);

    // The helper processes just exit; `b` exists as a map target.
    Program trivial_a("a");
    trivial_a.halt();
    loadProgram(sys->kernel(0), *a, std::move(trivial_a));
    Program trivial_b("b");
    trivial_b.halt();
    loadProgram(sys->kernel(1), *b, std::move(trivial_b));

    struct Case
    {
        MapArgs args;
        std::uint32_t expect;
        bool patchLocal = true;     //!< point localVaddr at the
                                    //!< runner's own valid page
    };
    std::vector<Case> cases;

    MapArgs good;
    good.localVaddr = static_cast<std::uint32_t>(src);
    good.npages = 1;
    good.dstNode = 1;
    good.dstPid = b->pid();
    good.dstVaddr = static_cast<std::uint32_t>(dst);
    good.mode = static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE);

    Case zero_pages{good, err::INVAL};
    zero_pages.args.npages = 0;
    cases.push_back(zero_pages);

    Case self_node{good, err::INVAL};
    self_node.args.dstNode = 0;
    cases.push_back(self_node);

    Case bad_pid{good, err::NOPROC};
    bad_pid.args.dstPid = 999;
    cases.push_back(bad_pid);

    Case bad_local{good, err::PERM};
    bad_local.args.localVaddr = 0x7000'0000;
    bad_local.patchLocal = false;
    cases.push_back(bad_local);

    Case bad_remote{good, err::INVAL};  // no translation at the dest
    bad_remote.args.dstVaddr = 0x7000'0000;
    cases.push_back(bad_remote);

    Case bad_mode{good, err::INVAL};
    bad_mode.args.mode = 77;
    cases.push_back(bad_mode);

    for (std::size_t i = 0; i < cases.size(); ++i) {
        // Fresh single-shot runner per case, with the args block in
        // its own space.
        Process *p = sys->kernel(0).createProcess("runner");
        Addr rb = p->allocate(1);
        Addr rr = p->allocate(1);
        MapArgs case_args = cases[i].args;
        if (cases[i].patchLocal) {
            case_args.localVaddr =
                static_cast<std::uint32_t>(p->allocate(1));
        }
        pokeMapArgs(0, *p, rb, case_args);
        Program prog("runner");
        prog.movi(R1, rb);
        prog.syscall(sys::MAP);
        prog.movi(R1, rr);
        prog.st(R1, 0, R0, 4);
        prog.halt();
        loadProgram(sys->kernel(0), *p, std::move(prog));
        sys->startAll();
        ASSERT_TRUE(sys->runUntilAllExited()) << "case " << i;
        EXPECT_EQ(peek32(*sys, 0, *p, rr), cases[i].expect)
            << "case " << i;
    }
}

TEST_F(KernelFixture, UnmapStopsPropagationAndUnpins)
{
    build();
    Process *a = sys->kernel(0).createProcess("a");
    Process *b = sys->kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    Addr args_block = a->allocate(1);

    MapArgs args;
    args.localVaddr = static_cast<std::uint32_t>(src);
    args.npages = 1;
    args.dstNode = 1;
    args.dstPid = b->pid();
    args.dstVaddr = static_cast<std::uint32_t>(dst);
    args.mode = static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE);
    pokeMapArgs(0, *a, args_block, args);

    Program pa("a");
    pa.movi(R1, args_block);
    pa.syscall(sys::MAP);
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAA, 4);     // propagates
    pa.movi(R1, args_block);
    pa.syscall(sys::UNMAP);
    pa.movi(R1, src);
    pa.sti(R1, 4, 0xBB, 4);     // must NOT propagate
    pa.halt();
    loadProgram(sys->kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *b, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    EXPECT_EQ(peek32(*sys, 1, *b, dst + 0), 0xAAu);
    EXPECT_EQ(peek32(*sys, 1, *b, dst + 4), 0u);
    Translation t = b->space().translate(dst, false);
    EXPECT_FALSE(sys->kernel(1).frames().isPinned(pageOf(t.paddr)));
    EXPECT_FALSE(sys->node(1).ni.nipt().mappedIn(pageOf(t.paddr)));
}

TEST_F(KernelFixture, WaitArrivalBlocksUntilData)
{
    build();
    Process *a = sys->kernel(0).createProcess("a");
    Process *b = sys->kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    Addr out = b->allocate(1);
    sys->kernel(0).mapDirect(*a, src, 1, sys->kernel(1), *b, dst,
                             UpdateMode::AUTO_SINGLE,
                             /*arrival_interrupt=*/true);

    // Receiver waits for the arrival interrupt instead of spinning.
    Program pb("b");
    pb.movi(R1, dst);
    pb.movi(R2, 0);             // last seen count
    pb.syscall(sys::WAIT_ARRIVAL);
    pb.movi(R1, out);
    pb.st(R1, 0, R0, 4);        // arrival count returned
    pb.movi(R1, dst);
    pb.ld(R2, R1, 0, 4);        // the data is already in memory
    pb.movi(R1, out);
    pb.st(R1, 4, R2, 4);
    pb.halt();
    loadProgram(sys->kernel(1), *b, std::move(pb));

    // Sender delays a while so the receiver really blocks first.
    Program pa("a");
    pa.movi(R2, 0);
    pa.movi(R3, 2000);
    pa.label("delay");
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("delay");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0x77, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *a, std::move(pa));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    EXPECT_EQ(peek32(*sys, 1, *b, out), 1u);
    EXPECT_EQ(peek32(*sys, 1, *b, out + 4), 0x77u);
}

TEST_F(KernelFixture, CmpxchgClaimIsSafeAcrossContextSwitches)
{
    // Two processes on one node race to claim the single DMA engine
    // with CMPXCHG while being preempted; exactly the scenario the
    // paper's atomic-claim protocol exists for (Section 4.3).
    SystemConfig cfg = test::twoNodeConfig();
    cfg.kernel.quantum = 50 * ONE_US;
    build(cfg);
    Process *recv = sys->kernel(1).createProcess("r");
    Addr dst = recv->allocate(2);

    std::vector<Process *> senders;
    std::vector<Addr> outs;
    for (int i = 0; i < 2; ++i) {
        Process *p = sys->kernel(0).createProcess("s" +
                                                  std::to_string(i));
        Addr src = p->allocate(1);
        Addr out = p->allocate(1);
        sys->kernel(0).mapDirect(*p, src, 1, sys->kernel(1), *recv,
                                 dst + i * PAGE_SIZE,
                                 UpdateMode::DELIBERATE);
        Addr cmd = sys->kernel(0).mapCommandPages(*p, src, 1);

        // Fill the page, claim the engine (spinning on CMPXCHG),
        // count claim attempts, wait for completion.
        for (Addr off = 0; off < PAGE_SIZE; off += 4)
            poke32(*sys, 0, *p, src + off,
                   static_cast<std::uint32_t>(0x5000 + i));

        Program prog(p->name());
        prog.movi(R3, cmd);         // command address
        prog.movi(R2, 1024);        // full page, in words
        prog.movi(R5, 0);           // claim attempts
        prog.label("claim");
        prog.addi(R5, 1);
        prog.movi(R0, 0);
        prog.cmpxchg(R3, 0, R2, 4);
        prog.jnz("claim");
        prog.label("wait");
        prog.ld(R1, R3, 0, 4);
        prog.cmpi(R1, 0);
        prog.jnz("wait");
        prog.movi(R1, out);
        prog.st(R1, 0, R5, 4);
        prog.halt();
        loadProgram(sys->kernel(0), *p, std::move(prog));
        senders.push_back(p);
        outs.push_back(out);
    }
    Program pr("r");
    pr.halt();
    loadProgram(sys->kernel(1), *recv, std::move(pr));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    // Both transfers completed despite contention.
    EXPECT_EQ(sys->node(0).ni.dma().transfersStarted(), 2u);
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(peek32(*sys, 1, *recv, dst + i * PAGE_SIZE),
                  0x5000u + i);
        EXPECT_GE(peek32(*sys, 0, *senders[i], outs[i]), 1u);
    }
}

} // namespace
} // namespace shrimp
