/**
 * @file
 * Edge cases in the kernel's mapping machinery: double-mapping
 * refusal (one outgoing mapping per page half, the hardware limit of
 * Section 3.2), RPC queueing on the kernel channel when several map
 * operations are in flight to the same peer, and unmap of mappings
 * that do not exist.
 */

#include <gtest/gtest.h>

#include "os/map_manager.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;
using test::poke32;

TEST(OsEdge, DoubleMapOfSamePageRefused)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst1 = b->allocate(1);
    Addr dst2 = b->allocate(1);

    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst1, UpdateMode::AUTO_SINGLE),
              err::OK);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst2, UpdateMode::AUTO_SINGLE),
              err::AGAIN);
}

TEST(OsEdge, TwoHalvesOfOnePageMayMapSeparately)
{
    // The split mechanism allows exactly two mappings per page.
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(2);

    EXPECT_EQ(sys.kernel(0).mapDirectRange(*a, src, PAGE_SIZE / 2,
                                           sys.kernel(1), *b, dst,
                                           UpdateMode::AUTO_SINGLE),
              err::OK);
    EXPECT_EQ(sys.kernel(0).mapDirectRange(
                  *a, src + PAGE_SIZE / 2, PAGE_SIZE / 2,
                  sys.kernel(1), *b, dst + PAGE_SIZE + PAGE_SIZE / 2,
                  UpdateMode::AUTO_SINGLE),
              err::OK);
    // A third mapping of either half is refused.
    EXPECT_EQ(sys.kernel(0).mapDirectRange(*a, src, PAGE_SIZE / 2,
                                           sys.kernel(1), *b,
                                           dst + PAGE_SIZE,
                                           UpdateMode::AUTO_SINGLE),
              err::AGAIN);
}

TEST(OsEdge, ConcurrentMapSyscallsQueueOnTheChannel)
{
    // Two processes on node 0 issue MAP syscalls to node 1 at the
    // same time; the per-peer RPC engine must serialize them and both
    // must succeed.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.kernel.quantum = 10 * ONE_US;
    ShrimpSystem sys(cfg);
    Process *b = sys.kernel(1).createProcess("b");
    Addr dsts[2] = {b->allocate(2), b->allocate(2)};
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    Process *procs[2];
    Addr outs[2];
    for (int i = 0; i < 2; ++i) {
        Process *p =
            sys.kernel(0).createProcess("m" + std::to_string(i));
        procs[i] = p;
        Addr src = p->allocate(2);
        Addr args = p->allocate(1);
        outs[i] = p->allocate(1);
        poke32(sys, 0, *p, args + 0, static_cast<std::uint32_t>(src));
        poke32(sys, 0, *p, args + 4, 2);
        poke32(sys, 0, *p, args + 8, 1);
        poke32(sys, 0, *p, args + 12, b->pid());
        poke32(sys, 0, *p, args + 16,
               static_cast<std::uint32_t>(dsts[i]));
        poke32(sys, 0, *p, args + 20,
               static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE));
        poke32(sys, 0, *p, args + 24, 0);

        Program prog(p->name());
        prog.movi(R1, args);
        prog.syscall(sys::MAP);
        prog.movi(R1, outs[i]);
        prog.st(R1, 0, R0, 4);
        // Prove the mapping works right away.
        prog.movi(R1, src);
        prog.sti(R1, 0, 0xE0 + i, 4);
        prog.halt();
        loadProgram(sys.kernel(0), *p, std::move(prog));
    }

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(5 * ONE_MS);

    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(peek32(sys, 0, *procs[i], outs[i]), err::OK);
        EXPECT_EQ(peek32(sys, 1, *b, dsts[i]),
                  static_cast<std::uint32_t>(0xE0 + i));
    }
    // Both operations (2 pages each) went over one serialized channel.
    EXPECT_GE(sys.kernel(0).mapManager().rpcsSent(), 4u);
}

TEST(OsEdge, UnmapOfNonexistentMappingFails)
{
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    Addr args = a->allocate(1);
    Addr out = a->allocate(1);

    poke32(sys, 0, *a, args + 0, static_cast<std::uint32_t>(src));
    poke32(sys, 0, *a, args + 4, 1);
    poke32(sys, 0, *a, args + 8, 1);
    poke32(sys, 0, *a, args + 12, b->pid());
    poke32(sys, 0, *a, args + 16, static_cast<std::uint32_t>(dst));
    poke32(sys, 0, *a, args + 20,
           static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE));
    poke32(sys, 0, *a, args + 24, 0);

    Program pa("a");
    pa.movi(R1, args);
    pa.syscall(sys::UNMAP);     // nothing was ever mapped
    pa.movi(R1, out);
    pa.st(R1, 0, R0, 4);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    EXPECT_EQ(peek32(sys, 0, *a, out), err::INVAL);
}

TEST(OsEdge, RemapAfterUnmapSucceeds)
{
    // Unmap releases the page's outgoing half, so a fresh map of the
    // same page to a new destination must succeed.
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst1 = b->allocate(1);
    Addr dst2 = b->allocate(1);
    Addr args = a->allocate(1);

    auto fill_args = [&](Addr dst) {
        poke32(sys, 0, *a, args + 0, static_cast<std::uint32_t>(src));
        poke32(sys, 0, *a, args + 4, 1);
        poke32(sys, 0, *a, args + 8, 1);
        poke32(sys, 0, *a, args + 12, b->pid());
        poke32(sys, 0, *a, args + 16, static_cast<std::uint32_t>(dst));
        poke32(sys, 0, *a, args + 20,
               static_cast<std::uint32_t>(UpdateMode::AUTO_SINGLE));
        poke32(sys, 0, *a, args + 24, 0);
    };

    fill_args(dst1);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst1, UpdateMode::AUTO_SINGLE),
              err::OK);

    // Unmap via syscall, then remap to dst2 via syscall.
    Program pa("a");
    pa.movi(R1, args);
    pa.syscall(sys::UNMAP);
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));
    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited());
    sys.runFor(ONE_MS);

    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst2, UpdateMode::AUTO_SINGLE),
              err::OK);
}

TEST(OsEdge, ReapedProcessMappingsAreTornDown)
{
    // A maps into B. B is reaped: the shootdown invalidates A's NIPT
    // entry, A's next store faults, the remap is refused (NOPROC for
    // a reaped process) and A is killed -- a dead process's memory
    // can never be written again.
    ShrimpSystem sys(test::twoNodeConfig());
    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    ASSERT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0x11, 4);     // before the reap: arrives
    pa.movi(R2, 0);
    pa.movi(R3, 20'000);
    pa.label("d");
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("d");
    pa.sti(R1, 4, 0x22, 4);     // after the reap: faults, A killed
    pa.sti(R1, 8, 0x33, 4);     // never executes
    pa.halt();
    loadProgram(sys.kernel(0), *a, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys.kernel(1), *b, std::move(pb));

    sys.eventQueue().scheduleFn(
        [&sys, b] { sys.kernel(1).reapProcess(*b); }, 100 * ONE_US);

    sys.startAll();
    ASSERT_TRUE(sys.runUntilAllExited(5 * ONE_SEC));
    sys.runFor(10 * ONE_MS);

    EXPECT_EQ(peek32(sys, 1, *b, dst + 0), 0x11u);
    EXPECT_EQ(peek32(sys, 1, *b, dst + 4), 0u);
    EXPECT_EQ(peek32(sys, 1, *b, dst + 8), 0u);
    EXPECT_EQ(a->ctx.faults, 1u);
    EXPECT_EQ(a->state, ProcState::EXITED);

    Translation t = b->space().translate(dst, false);
    EXPECT_FALSE(sys.node(1).ni.nipt().mappedIn(pageOf(t.paddr)));
    EXPECT_FALSE(sys.kernel(1).frames().isPinned(pageOf(t.paddr)));
}

} // namespace
} // namespace shrimp
