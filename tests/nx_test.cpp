/**
 * @file
 * Tests for both NX/2 implementations: the kernel-level baseline
 * (syscalls + kernel buffers + interrupts, modeling the iPSC/2
 * architecture the paper compares against) and the user-level
 * implementation over mapped rings (Section 5.2).
 */

#include <gtest/gtest.h>

#include "core/nx2_setup.hh"
#include "os/nx_service.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;
using test::poke32;

struct NxFixture : ::testing::Test
{
    std::unique_ptr<ShrimpSystem> sys;
    Process *procA = nullptr;
    Process *procB = nullptr;

    void
    build()
    {
        sys = std::make_unique<ShrimpSystem>(test::twoNodeConfig());
        procA = sys->kernel(0).createProcess("A");
        procB = sys->kernel(1).createProcess("B");
    }

    /** Write an NxArgs block at @p vaddr in @p proc's memory. */
    void
    pokeNxArgs(NodeId node, Process &proc, Addr vaddr,
               std::uint32_t type, Addr buf, std::uint32_t nbytes,
               std::uint32_t peer_node, std::uint32_t pid)
    {
        poke32(*sys, node, proc, vaddr + 0, type);
        poke32(*sys, node, proc, vaddr + 4,
               static_cast<std::uint32_t>(buf));
        poke32(*sys, node, proc, vaddr + 8, nbytes);
        poke32(*sys, node, proc, vaddr + 12, peer_node);
        poke32(*sys, node, proc, vaddr + 16, pid);
    }
};

TEST_F(NxFixture, KernelCsendCrecvRoundtrip)
{
    build();
    constexpr std::uint32_t kBytes = 256;
    Addr sbuf = procA->allocate(1);
    Addr sargs = procA->allocate(1);
    Addr rbuf = procB->allocate(1);
    Addr rargs = procB->allocate(1);
    Addr rout = procB->allocate(1);

    for (std::uint32_t i = 0; i < kBytes / 4; ++i)
        poke32(*sys, 0, *procA, sbuf + 4 * i, 0xAB000000 + i);

    pokeNxArgs(0, *procA, sargs, 7, sbuf, kBytes, 1, procB->pid());
    pokeNxArgs(1, *procB, rargs, 7, rbuf, kBytes, 0, 0);

    Program pa("a");
    pa.movi(R1, sargs);
    pa.syscall(sys::NX_CSEND);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.movi(R1, rargs);
    pb.syscall(sys::NX_CRECV);
    pb.movi(R1, rout);
    pb.st(R1, 0, R0, 4);        // crecv returns nbytes
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    sys->runFor(ONE_MS);

    EXPECT_EQ(peek32(*sys, 1, *procB, rout), kBytes);
    for (std::uint32_t i = 0; i < kBytes / 4; ++i)
        ASSERT_EQ(peek32(*sys, 1, *procB, rbuf + 4 * i),
                  0xAB000000 + i);
    EXPECT_EQ(sys->kernel(0).nxService().messagesSent(), 1u);
    EXPECT_EQ(sys->kernel(1).nxService().messagesDelivered(), 1u);
}

TEST_F(NxFixture, KernelCrecvBlocksUntilMessage)
{
    build();
    Addr sbuf = procA->allocate(1);
    Addr sargs = procA->allocate(1);
    Addr rbuf = procB->allocate(1);
    Addr rargs = procB->allocate(1);

    poke32(*sys, 0, *procA, sbuf, 0x42);
    pokeNxArgs(0, *procA, sargs, 3, sbuf, 4, 1, procB->pid());
    pokeNxArgs(1, *procB, rargs, 3, rbuf, 4, 0, 0);

    // Receiver first (blocks), sender delayed.
    Program pb("b");
    pb.movi(R1, rargs);
    pb.syscall(sys::NX_CRECV);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    Program pa("a");
    pa.movi(R2, 0);
    pa.movi(R3, 5000);
    pa.label("delay");
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("delay");
    pa.movi(R1, sargs);
    pa.syscall(sys::NX_CSEND);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    EXPECT_EQ(peek32(*sys, 1, *procB, rbuf), 0x42u);
}

TEST_F(NxFixture, KernelBackToBackSendsRespectSlotCredit)
{
    build();
    constexpr int kMsgs = 4;
    Addr sbuf = procA->allocate(1);
    Addr sargs = procA->allocate(1);
    Addr rbuf = procB->allocate(1);
    Addr rargs = procB->allocate(1);
    Addr rout = procB->allocate(1);

    pokeNxArgs(0, *procA, sargs, 9, sbuf, 4, 1, procB->pid());
    pokeNxArgs(1, *procB, rargs, 9, rbuf, 4, 0, 0);

    // Sender fires kMsgs messages back to back, bumping the payload
    // each time; the one-slot protocol must serialize them.
    Program pa("a");
    pa.movi(R4, 0);
    pa.movi(R5, kMsgs);
    pa.movi(R6, sbuf);
    pa.label("loop");
    pa.addi(R4, 1);
    pa.st(R6, 0, R4, 4);
    pa.movi(R1, sargs);
    pa.syscall(sys::NX_CSEND);
    pa.cmp(R4, R5);
    pa.jl("loop");
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    // Receiver consumes them in order.
    Program pb("b");
    pb.movi(R4, 0);
    pb.movi(R5, kMsgs);
    pb.movi(R6, rout);
    pb.label("loop");
    pb.movi(R1, rargs);
    pb.syscall(sys::NX_CRECV);
    pb.movi(R2, rbuf);
    pb.ld(R3, R2, 0, 4);
    pb.st(R6, 0, R3, 4);
    pb.addi(R6, 4);
    pb.addi(R4, 1);
    pb.cmp(R4, R5);
    pb.jl("loop");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    for (int i = 0; i < kMsgs; ++i)
        EXPECT_EQ(peek32(*sys, 1, *procB, rout + 4 * i),
                  static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(sys->kernel(0).nxService().messagesSent(),
              static_cast<std::uint64_t>(kMsgs));
}

TEST_F(NxFixture, KernelLargeMessageSpansPages)
{
    build();
    constexpr std::uint32_t kBytes = NxService::maxMessageBytes;
    Addr sbuf = procA->allocate(NxService::slotPages);
    Addr sargs = procA->allocate(1);
    Addr rbuf = procB->allocate(NxService::slotPages);
    Addr rargs = procB->allocate(1);

    for (std::uint32_t off = 0; off < kBytes; off += 4)
        poke32(*sys, 0, *procA, sbuf + off, off * 3 + 1);

    pokeNxArgs(0, *procA, sargs, 11, sbuf, kBytes, 1, procB->pid());
    pokeNxArgs(1, *procB, rargs, 11, rbuf, kBytes, 0, 0);

    Program pa("a");
    pa.movi(R1, sargs);
    pa.syscall(sys::NX_CSEND);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.movi(R1, rargs);
    pb.syscall(sys::NX_CRECV);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    for (std::uint32_t off = 0; off < kBytes; off += 4)
        ASSERT_EQ(peek32(*sys, 1, *procB, rbuf + off), off * 3 + 1)
            << "offset " << off;
}

TEST_F(NxFixture, KernelCsendRejectsBadArguments)
{
    build();
    Addr sbuf = procA->allocate(1);
    Addr sargs = procA->allocate(1);
    Addr sout = procA->allocate(1);

    // Oversized message.
    pokeNxArgs(0, *procA, sargs, 1, sbuf,
               NxService::maxMessageBytes + 4, 1, procB->pid());

    Program pa("a");
    pa.movi(R1, sargs);
    pa.syscall(sys::NX_CSEND);
    pa.movi(R1, sout);
    pa.st(R1, 0, R0, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    EXPECT_EQ(peek32(*sys, 0, *procA, sout), err::INVAL);
}

TEST_F(NxFixture, UserLevelRingRoundtrip)
{
    build();
    Nx2Connection conn =
        setupNx2Connection(*sys, 0, *procA, 1, *procB);

    constexpr std::uint32_t kBytes = 128;
    Addr sbuf = procA->allocate(1);
    Addr rbuf = procB->allocate(1);
    for (std::uint32_t i = 0; i < kBytes / 4; ++i)
        poke32(*sys, 0, *procA, sbuf + 4 * i, 0xCD000000 + i);

    Program pa("a");
    pa.jmp("main");
    msg::emitNx2Csend(pa, conn.sender, "nx_csend");
    pa.label("main");
    pa.movi(R1, 21);            // type
    pa.movi(R2, sbuf);
    pa.movi(R3, kBytes);
    pa.call("nx_csend");
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Addr rout = procB->allocate(1);
    Program pb("b");
    pb.jmp("main");
    msg::emitNx2Crecv(pb, conn.receiver, "nx_crecv", "type_err");
    pb.label("type_err");
    pb.halt();
    pb.label("main");
    pb.movi(R1, 21);
    pb.movi(R2, rbuf);
    pb.call("nx_crecv");
    pb.movi(R1, rout);
    pb.st(R1, 0, R0, 4);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    sys->runFor(ONE_MS);

    EXPECT_EQ(peek32(*sys, 1, *procB, rout), kBytes);
    for (std::uint32_t i = 0; i < kBytes / 4; ++i)
        ASSERT_EQ(peek32(*sys, 1, *procB, rbuf + 4 * i),
                  0xCD000000 + i);
}

TEST_F(NxFixture, UserLevelRingManyMessagesInOrder)
{
    build();
    Nx2Connection conn =
        setupNx2Connection(*sys, 0, *procA, 1, *procB);

    constexpr int kMsgs = 16;   // forces ring wrap + credit waits
    Addr sbuf = procA->allocate(1);
    Addr rbuf = procB->allocate(1);
    Addr rout = procB->allocate(1);

    Program pa("a");
    pa.jmp("main");
    msg::emitNx2Csend(pa, conn.sender, "nx_csend");
    pa.label("main");
    pa.movi(R6, 0);             // message index
    pa.label("loop");
    pa.movi(R2, sbuf);
    pa.st(R2, 0, R6, 4);        // payload = index
    pa.movi(R1, 5);             // type
    pa.movi(R3, 4);
    pa.call("nx_csend");
    pa.addi(R6, 1);
    pa.cmpi(R6, kMsgs);
    pa.jl("loop");
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.jmp("main");
    msg::emitNx2Crecv(pb, conn.receiver, "nx_crecv", "type_err");
    pb.label("type_err");
    pb.halt();
    pb.label("main");
    pb.movi(R6, 0);
    pb.label("loop");
    pb.movi(R1, 5);
    pb.movi(R2, rbuf);
    pb.call("nx_crecv");
    pb.movi(R2, rbuf);
    pb.ld(R3, R2, 0, 4);
    pb.movi(R2, rout);
    pb.add(R2, R6);
    pb.add(R2, R6);
    pb.add(R2, R6);
    pb.add(R2, R6);             // rout + 4*i
    pb.st(R2, 0, R3, 4);
    pb.addi(R6, 1);
    pb.cmpi(R6, kMsgs);
    pb.jl("loop");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited(ONE_SEC));
    for (int i = 0; i < kMsgs; ++i)
        ASSERT_EQ(peek32(*sys, 1, *procB, rout + 4 * i),
                  static_cast<std::uint32_t>(i))
            << "message " << i;
}

} // namespace
} // namespace shrimp
