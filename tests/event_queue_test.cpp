/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * cancellation, time-bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace shrimp
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleFn([&] { order.push_back(3); }, 300);
    eq.scheduleFn([&] { order.push_back(1); }, 100);
    eq.scheduleFn([&] { order.push_back(2); }, 200);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleFn([&order, i] { order.push_back(i); }, 50);
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleFn([&] { order.push_back(2); }, 50, EventPriority::CPU);
    eq.scheduleFn([&] { order.push_back(1); }, 50, EventPriority::CLOCK);
    eq.scheduleFn([&] { order.push_back(3); }, 50, EventPriority::STAT);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "test");
    eq.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper ev([&] { fired_at = eq.curTick(); }, "test");
    eq.schedule(&ev, 100);
    eq.reschedule(&ev, 500);
    eq.run();
    EXPECT_EQ(fired_at, 500u);
    EXPECT_EQ(eq.numProcessed(), 1u);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper ev(
        [&] {
            if (++count < 5)
                eq.schedule(&ev, eq.curTick() + 10);
        },
        "self");
    eq.schedule(&ev, 10);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleFn([&] { ++count; }, 100);
    eq.scheduleFn([&] { ++count; }, 200);
    eq.scheduleFn([&] { ++count; }, 300);
    eq.runUntil(200);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.curTick(), 200u);
    eq.runUntil(1000);
    EXPECT_EQ(count, 3);
    // Clock advances to the requested time even with no events there.
    EXPECT_EQ(eq.curTick(), 1000u);
}

TEST(EventQueue, RunRespectsEventCap)
{
    EventQueue eq;
    EventFunctionWrapper ev(
        [&] { eq.schedule(&ev, eq.curTick() + 1); }, "forever");
    eq.schedule(&ev, 1);
    std::uint64_t n = eq.run(1000);
    EXPECT_EQ(n, 1000u);
    EXPECT_FALSE(eq.empty());
    eq.deschedule(&ev);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleFn([] {}, 100);
    eq.run();
    EventFunctionWrapper ev([] {}, "late");
    EXPECT_THROW(eq.schedule(&ev, 50), std::logic_error);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "dup");
    eq.schedule(&ev, 100);
    EXPECT_THROW(eq.schedule(&ev, 200), std::logic_error);
    eq.deschedule(&ev);
}

TEST(ClockedObject, EdgeAlignment)
{
    EventQueue eq;
    // 100 MHz -> 10 ns period.
    ClockedObject obj(eq, "clk", 100'000'000);
    EXPECT_EQ(obj.clockPeriod(), 10 * ONE_NS);
    EXPECT_EQ(obj.clockEdge(), 0u);         // aligned at t=0
    eq.scheduleFn([] {}, 3 * ONE_NS);
    eq.run();
    EXPECT_EQ(obj.clockEdge(), 10 * ONE_NS);
    EXPECT_EQ(obj.clockEdge(2), 30 * ONE_NS);
    EXPECT_EQ(obj.cyclesToTicks(7), 70 * ONE_NS);
}

TEST(Types, FreqToPeriodRounds)
{
    EXPECT_EQ(freqToPeriod(1'000'000'000), 1000u);  // 1 GHz = 1 ns
    EXPECT_EQ(freqToPeriod(60'000'000), 16667u);    // 60 MHz
    EXPECT_EQ(freqToPeriod(33'333'333), 30000u);    // Xpress bus
}

TEST(Types, PageHelpers)
{
    EXPECT_EQ(PAGE_SIZE, 4096u);
    EXPECT_EQ(pageOf(0x5123), 5u);
    EXPECT_EQ(pageBase(5), 0x5000u);
    EXPECT_EQ(pageOffset(0x5123), 0x123u);
}

} // namespace
} // namespace shrimp
