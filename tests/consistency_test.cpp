/**
 * @file
 * Tests for NIPT consistency (paper Section 4.4): the PIN policy, the
 * INVALIDATE shootdown protocol, fault-driven remapping, and paging
 * of pages with outgoing mappings.
 */

#include <gtest/gtest.h>

#include "os/map_manager.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;
using test::poke32;

struct ConsistencyFixture : ::testing::Test
{
    std::unique_ptr<ShrimpSystem> sys;
    Process *procA = nullptr;
    Process *procB = nullptr;

    void
    build(ConsistencyPolicy policy_b)
    {
        sys = std::make_unique<ShrimpSystem>(test::twoNodeConfig());
        sys->kernel(1).setConsistencyPolicy(policy_b);
        procA = sys->kernel(0).createProcess("A");
        procB = sys->kernel(1).createProcess("B");
    }
};

TEST_F(ConsistencyFixture, PinPolicyRefusesEvictingMappedInPage)
{
    build(ConsistencyPolicy::PIN);
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    bool called = false, ok = true;
    sys->kernel(1).evictUserPage(*procB, dst, [&](bool success) {
        called = true;
        ok = success;
    });
    EXPECT_TRUE(called);
    EXPECT_FALSE(ok);   // pinned: the simple policy forbids paging
}

TEST_F(ConsistencyFixture, UnmappedPageEvictsAndPagesBackIn)
{
    build(ConsistencyPolicy::PIN);
    Addr buf = procB->allocate(1);
    poke32(*sys, 1, *procB, buf + 0x40, 0xbeef);

    bool ok = false;
    sys->kernel(1).evictUserPage(*procB, buf,
                                 [&](bool success) { ok = success; });
    EXPECT_TRUE(ok);
    EXPECT_TRUE(sys->kernel(1).inSwap(procB->pid(),
                                      pageOf(buf)));
    EXPECT_FALSE(procB->space().translate(buf, false).ok());

    // Access from a program page-faults it back in.
    Program pb("b");
    pb.movi(R1, buf);
    pb.ld(R2, R1, 0x40, 4);
    pb.st(R1, 0x44, R2, 4);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));
    Program pa("a");
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    EXPECT_EQ(peek32(*sys, 1, *procB, buf + 0x44), 0xbeefu);
    EXPECT_FALSE(sys->kernel(1).inSwap(procB->pid(), pageOf(buf)));
}

TEST_F(ConsistencyFixture, OutgoingOnlyPageSurvivesPaging)
{
    // Pages with only outgoing mappings can be replaced freely as
    // long as the mapping information is kept (Section 4.4); after
    // page-in the NIPT entry is reinstalled at the new frame.
    build(ConsistencyPolicy::PIN);
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    bool ok = false;
    sys->kernel(0).evictUserPage(*procA, src,
                                 [&](bool success) { ok = success; });
    ASSERT_TRUE(ok);

    // Store to the paged-out source: fault, page-in, NIPT
    // reinstalled, data propagates.
    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0x20, 0x51515151, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    EXPECT_EQ(sys->kernel(0).statGroup().name(), "node0.kernel");
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0x20), 0x51515151u);
}

TEST_F(ConsistencyFixture, InvalidateShootdownAndFaultDrivenRemap)
{
    build(ConsistencyPolicy::INVALIDATE);
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    ASSERT_EQ(sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1),
                                       *procB, dst,
                                       UpdateMode::AUTO_SINGLE),
              err::OK);

    // Sender: first store, long delay, second store.
    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0x1111, 4);
    pa.movi(R2, 0);
    pa.movi(R3, 20'000);
    pa.label("delay");
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("delay");
    pa.movi(R1, src);
    pa.sti(R1, 4, 0x2222, 4);   // faults: mapping was invalidated
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    // Mid-delay, node 1 pages the destination out. Under the
    // INVALIDATE policy this shoots down node 0's NIPT entry first.
    bool evicted = false;
    sys->eventQueue().scheduleFn(
        [&] {
            sys->kernel(1).evictUserPage(
                *procB, dst, [&](bool success) { evicted = success; });
        },
        100 * ONE_US);

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(5 * ONE_MS);

    EXPECT_TRUE(evicted);
    EXPECT_EQ(sys->kernel(0).mapManager().invalidationsReceived(), 1u);
    EXPECT_EQ(sys->kernel(0).mapManager().remapsCompleted(), 1u);
    EXPECT_EQ(procA->ctx.faults, 1u);

    // The destination page came back (REMAP forced a page-in) with
    // both the pre-eviction and post-remap data.
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0), 0x1111u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 4), 0x2222u);
}

TEST_F(ConsistencyFixture, ShootdownReachesMultipleSources)
{
    // Two different nodes map into the same destination page; the
    // eviction must invalidate both sources before proceeding.
    SystemConfig cfg;
    cfg.meshWidth = 3;
    cfg.meshHeight = 1;
    sys = std::make_unique<ShrimpSystem>(cfg);
    sys->kernel(2).setConsistencyPolicy(ConsistencyPolicy::INVALIDATE);

    Process *a = sys->kernel(0).createProcess("a");
    Process *b = sys->kernel(1).createProcess("b");
    Process *c = sys->kernel(2).createProcess("c");
    Addr src_a = a->allocate(1);
    Addr src_b = b->allocate(1);
    Addr dst = c->allocate(1);

    sys->kernel(0).mapDirect(*a, src_a, 1, sys->kernel(2), *c, dst,
                             UpdateMode::AUTO_SINGLE);
    sys->kernel(1).mapDirect(*b, src_b, 1, sys->kernel(2), *c, dst,
                             UpdateMode::AUTO_SINGLE);

    for (Process *p : {a, b}) {
        Program prog(p->name());
        prog.halt();
        loadProgram(p == a ? sys->kernel(0) : sys->kernel(1), *p,
                    std::move(prog));
    }
    Program pc("c");
    pc.halt();
    loadProgram(sys->kernel(2), *c, std::move(pc));

    bool evicted = false;
    sys->eventQueue().scheduleFn(
        [&] {
            sys->kernel(2).evictUserPage(
                *c, dst, [&](bool success) { evicted = success; });
        },
        10 * ONE_US);

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(5 * ONE_MS);

    EXPECT_TRUE(evicted);
    EXPECT_EQ(sys->kernel(0).mapManager().invalidationsReceived(), 1u);
    EXPECT_EQ(sys->kernel(1).mapManager().invalidationsReceived(), 1u);
    // Both source pages are now read-only.
    EXPECT_EQ(a->space().translate(src_a, true).fault,
              FaultKind::PROTECTION);
    EXPECT_EQ(b->space().translate(src_b, true).fault,
              FaultKind::PROTECTION);
}

TEST_F(ConsistencyFixture, SwapPreservesWholePageContents)
{
    build(ConsistencyPolicy::PIN);
    Addr buf = procB->allocate(1);
    for (Addr off = 0; off < PAGE_SIZE; off += 4)
        poke32(*sys, 1, *procB, buf + off,
               static_cast<std::uint32_t>(off ^ 0x5a5a));

    bool ok = false;
    sys->kernel(1).evictUserPage(*procB, buf,
                                 [&](bool success) { ok = success; });
    ASSERT_TRUE(ok);
    ASSERT_EQ(sys->kernel(1).pageIn(*procB, pageOf(buf)), err::OK);

    for (Addr off = 0; off < PAGE_SIZE; off += 4) {
        ASSERT_EQ(peek32(*sys, 1, *procB, buf + off),
                  static_cast<std::uint32_t>(off ^ 0x5a5a))
            << "offset " << off;
    }
}

} // namespace
} // namespace shrimp
