/**
 * @file
 * Unit tests for the mesh backplane: dimension-order routing,
 * latency structure, in-order delivery, credit backpressure, and
 * deadlock-free operation under load.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/backplane.hh"
#include "sim/random.hh"

namespace shrimp
{
namespace
{

/** Collects delivered packets; can throttle to test backpressure. */
struct CollectorSink : NetworkSink
{
    std::vector<NetPacket> got;
    std::vector<Tick> when;
    bool ready = true;
    EventQueue *eq = nullptr;

    bool sinkReady() const override { return ready; }

    void
    sinkDeliver(NetPacket &&pkt) override
    {
        got.push_back(std::move(pkt));
        when.push_back(eq->curTick());
    }
};

struct MeshFixture : ::testing::Test
{
    EventQueue eq;
    Router::Params params;
    std::unique_ptr<MeshBackplane> mesh;
    std::vector<CollectorSink> sinks;

    void
    build(unsigned w, unsigned h)
    {
        mesh = std::make_unique<MeshBackplane>(eq, "mesh", w, h, params);
        sinks.resize(w * h);
        for (NodeId n = 0; n < w * h; ++n) {
            sinks[n].eq = &eq;
            mesh->router(n).setSink(&sinks[n]);
        }
    }

    NetPacket
    makePkt(NodeId src, NodeId dst, std::uint64_t seq,
            std::size_t payload = 8)
    {
        NetPacket pkt;
        pkt.srcNode = src;
        pkt.dstNode = dst;
        pkt.dstX = static_cast<std::uint16_t>(mesh->xOf(dst));
        pkt.dstY = static_cast<std::uint16_t>(mesh->yOf(dst));
        pkt.dstPaddr = 0x1000 + 64 * seq;
        pkt.payload.assign(payload, static_cast<std::uint8_t>(seq));
        pkt.seq = seq;
        pkt.sealCrc();
        pkt.injectedAt = eq.curTick();
        return pkt;
    }
};

TEST_F(MeshFixture, CoordinateHelpers)
{
    build(4, 4);
    EXPECT_EQ(mesh->numNodes(), 16u);
    EXPECT_EQ(mesh->xOf(5), 1u);
    EXPECT_EQ(mesh->yOf(5), 1u);
    EXPECT_EQ(mesh->nodeAt(3, 2), 11u);
    EXPECT_EQ(mesh->hopDistance(0, 15), 6u);
    EXPECT_EQ(mesh->hopDistance(5, 5), 0u);
}

TEST_F(MeshFixture, DeliversAcrossTheMesh)
{
    build(4, 4);
    mesh->router(0).inject(makePkt(0, 15, 1));
    eq.run();
    ASSERT_EQ(sinks[15].got.size(), 1u);
    EXPECT_TRUE(sinks[15].got[0].crcOk());
    EXPECT_EQ(sinks[15].got[0].srcNode, 0u);
    for (NodeId n = 0; n < 15; ++n)
        EXPECT_TRUE(sinks[n].got.empty());
}

TEST_F(MeshFixture, SelfDeliveryWorks)
{
    build(2, 2);
    mesh->router(3).inject(makePkt(3, 3, 1));
    eq.run();
    ASSERT_EQ(sinks[3].got.size(), 1u);
}

TEST_F(MeshFixture, LatencyGrowsWithHops)
{
    build(4, 1);
    mesh->router(0).inject(makePkt(0, 1, 1));
    eq.run();
    Tick one_hop = sinks[1].when[0];

    mesh->router(0).inject(makePkt(0, 3, 2));
    Tick start = eq.curTick();
    eq.run();
    Tick three_hops = sinks[3].when[0] - start;

    EXPECT_GT(three_hops, one_hop);
    // Cut-through: each extra hop adds ~(routing + link latency), not
    // a full serialization.
    Tick per_hop = params.routingLatency + params.linkLatency;
    EXPECT_NEAR(static_cast<double>(three_hops - one_hop),
                static_cast<double>(2 * per_hop),
                static_cast<double>(per_hop));
}

TEST_F(MeshFixture, InOrderPerSourceDestinationPair)
{
    build(4, 4);
    // Stream packets 0..49 from node 0 to node 10, injecting as
    // credit allows.
    std::uint64_t next = 0;
    EventFunctionWrapper injector(
        [&] {
            while (next < 50 && mesh->router(0).injectReady())
                mesh->router(0).inject(makePkt(0, 10, next++));
            if (next < 50)
                eq.schedule(&injector, eq.curTick() + ONE_US);
        },
        "injector");
    eq.schedule(&injector, 0);
    eq.run();

    ASSERT_EQ(sinks[10].got.size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(sinks[10].got[i].seq, i);
}

TEST_F(MeshFixture, BackpressureHoldsPacketsWhenSinkBusy)
{
    build(2, 1);
    sinks[1].ready = false;
    mesh->router(0).inject(makePkt(0, 1, 1));
    eq.run();
    EXPECT_TRUE(sinks[1].got.empty());

    // Un-stall the sink; the router retries on the kick.
    sinks[1].ready = true;
    mesh->router(1).sinkReadyAgain();
    eq.run();
    ASSERT_EQ(sinks[1].got.size(), 1u);
}

TEST_F(MeshFixture, BackpressurePropagatesToInjector)
{
    build(3, 1);
    sinks[2].ready = false;
    // Fill the path: eventually node 0's router refuses injection.
    int injected = 0;
    for (int i = 0; i < 64; ++i) {
        if (!mesh->router(0).injectReady())
            break;
        mesh->router(0).inject(makePkt(0, 2, i));
        ++injected;
        eq.run();
    }
    EXPECT_LT(injected, 64);
    EXPECT_FALSE(mesh->router(0).injectReady());
    EXPECT_TRUE(sinks[2].got.empty());

    // Release: everything drains, in order.
    sinks[2].ready = true;
    mesh->router(2).sinkReadyAgain();
    eq.run();
    EXPECT_EQ(sinks[2].got.size(), static_cast<std::size_t>(injected));
    for (int i = 0; i < injected; ++i)
        EXPECT_EQ(sinks[2].got[i].seq, static_cast<std::uint64_t>(i));
}

TEST_F(MeshFixture, RandomTrafficAllDeliveredNoDeadlock)
{
    build(4, 4);
    Rng rng(1234);
    constexpr int kPackets = 400;
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> sent_per_pair;

    struct Source
    {
        std::vector<NetPacket> backlog;
    };
    std::vector<Source> sources(16);
    for (int i = 0; i < kPackets; ++i) {
        NodeId src = static_cast<NodeId>(rng.below(16));
        NodeId dst = static_cast<NodeId>(rng.below(16));
        auto &n = sent_per_pair[{src, dst}];
        NetPacket pkt = makePkt(src, dst, n++,
                                8 + rng.below(64) * 4);
        pkt.srcNode = src;
        sources[src].backlog.push_back(std::move(pkt));
    }

    EventFunctionWrapper pump(
        [&] {
            bool more = false;
            for (NodeId n = 0; n < 16; ++n) {
                auto &b = sources[n].backlog;
                while (!b.empty() && mesh->router(n).injectReady()) {
                    NetPacket pkt = std::move(b.front());
                    b.erase(b.begin());
                    pkt.injectedAt = eq.curTick();
                    mesh->router(n).inject(std::move(pkt));
                }
                more = more || !b.empty();
            }
            if (more)
                eq.schedule(&pump, eq.curTick() + ONE_US);
        },
        "pump");
    eq.schedule(&pump, 0);
    eq.run(50'000'000);

    // Everything delivered, uncorrupted, in per-pair order.
    std::size_t total = 0;
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> seen;
    for (NodeId n = 0; n < 16; ++n) {
        total += sinks[n].got.size();
        for (const NetPacket &pkt : sinks[n].got) {
            EXPECT_TRUE(pkt.crcOk());
            EXPECT_EQ(pkt.dstNode, n);
            auto key = std::make_pair(pkt.srcNode, n);
            EXPECT_EQ(pkt.seq, seen[key]++) << "out of order "
                << pkt.srcNode << "->" << n;
        }
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kPackets));
}

TEST_F(MeshFixture, CreditWaitersWakeInFifoOrderWithoutDuplicates)
{
    // Credit waiters park in FIFO registration order and re-parking
    // an already-queued key is a no-op: contenders alternate instead
    // of the most recent re-poller starving the rest.
    build(2, 1);
    Router &r1 = mesh->router(1);

    std::vector<int> order;
    r1.addCreditWaiter(Router::WEST, 101,
                       [&] { order.push_back(101); });
    r1.addCreditWaiter(Router::WEST, 102,
                       [&] { order.push_back(102); });
    // Blocked senders re-poll; the duplicate registration must keep
    // key 101's original queue position and original callback.
    r1.addCreditWaiter(Router::WEST, 101,
                       [&] { order.push_back(-101); });
    r1.addCreditWaiter(Router::WEST, 103,
                       [&] { order.push_back(103); });

    // One packet through router 1's WEST input releases its credit;
    // since none of these waiters consume it, the same credit passes
    // down the whole line, strictly in registration order.
    mesh->router(0).inject(makePkt(0, 1, 1));
    eq.run();

    EXPECT_EQ(order, (std::vector<int>{101, 102, 103}));
    ASSERT_EQ(sinks[1].got.size(), 1u);
}

} // namespace
} // namespace shrimp
