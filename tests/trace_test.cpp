/**
 * @file
 * Tests for the observability layer: the Chrome trace-event export,
 * packet lifecycle completeness, span nesting, and the guarantee that
 * enabling tracing perturbs nothing the simulation computes.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "sim/json.hh"

namespace shrimp
{
namespace
{

struct RunResult
{
    std::string stats;          //!< full text dumpStats
    std::string statsJson;      //!< dumpStatsJson
    std::string traceJson;      //!< empty unless traced
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
};

/**
 * The deterministic two-node workload: node 0 maps one page into
 * node 1 (automatic update, single-write mode) and stores 32 words
 * through it.
 */
RunResult
runWorkload(bool traced)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.traceEnabled = traced;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("a");
    Process *b = sys.kernel(1).createProcess("b");
    Addr src = a->allocate(1);
    Addr dst = b->allocate(1);
    EXPECT_EQ(sys.kernel(0).mapDirect(*a, src, 1, sys.kernel(1), *b,
                                      dst, UpdateMode::AUTO_SINGLE),
              err::OK);

    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 32; ++i)
        pa.sti(R1, 4 * i, i, 4);
    pa.halt();
    pa.finalize();
    sys.kernel(0).loadAndReady(
        *a, std::make_shared<Program>(std::move(pa)));
    Program pb("b");
    pb.halt();
    pb.finalize();
    sys.kernel(1).loadAndReady(
        *b, std::make_shared<Program>(std::move(pb)));

    sys.startAll();
    sys.runUntilAllExited();
    sys.runFor(ONE_MS);

    RunResult r;
    std::ostringstream stats;
    sys.dumpStats(stats);
    r.stats = stats.str();
    std::ostringstream stats_json;
    sys.dumpStatsJson(stats_json);
    r.statsJson = stats_json.str();
    r.sent = sys.node(0).ni.packetsSent();
    r.delivered = sys.node(1).ni.packetsDelivered();
    if (traced) {
        EXPECT_NE(sys.tracer(), nullptr);
        std::ostringstream tj;
        sys.tracer()->exportJson(tj);
        r.traceJson = tj.str();
    } else {
        EXPECT_EQ(sys.tracer(), nullptr);
    }
    return r;
}

TEST(Trace, ExportIsValidTraceEventJson)
{
    RunResult r = runWorkload(true);
    ASSERT_GT(r.sent, 0u);

    json::Value root = json::parse(r.traceJson);
    ASSERT_TRUE(root.isObject());
    const json::Value *events = root.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    ASSERT_FALSE(events->arr.empty());

    bool saw_metadata = false;
    for (const json::Value &ev : events->arr) {
        ASSERT_TRUE(ev.isObject());
        const json::Value *ph = ev.find("ph");
        ASSERT_TRUE(ph && ph->isString());
        if (ph->str == "M") {
            saw_metadata = true;
            continue;
        }
        EXPECT_TRUE(ev.find("ts") != nullptr);
        EXPECT_TRUE(ev.find("name") != nullptr);
        if (ph->str == "X") {
            EXPECT_TRUE(ev.find("dur") != nullptr);
        }
        if (ph->str == "b" || ph->str == "n" || ph->str == "e") {
            EXPECT_TRUE(ev.find("id") != nullptr);
            EXPECT_TRUE(ev.find("cat") != nullptr);
        }
    }
    EXPECT_TRUE(saw_metadata);
}

TEST(Trace, SyncSpansNestPerTrack)
{
    RunResult r = runWorkload(true);
    json::Value root = json::parse(r.traceJson);
    const json::Value *events = root.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    // B/E spans follow stack discipline on each component's track.
    std::map<double, std::vector<std::string>> stacks;
    std::size_t spans = 0;
    for (const json::Value &ev : events->arr) {
        const std::string &ph = ev.find("ph")->str;
        if (ph != "B" && ph != "E")
            continue;
        double tid = ev.find("tid")->number;
        if (ph == "B") {
            stacks[tid].push_back(ev.find("name")->str);
            ++spans;
        } else {
            ASSERT_FALSE(stacks[tid].empty())
                << "E without matching B on tid " << tid;
            EXPECT_EQ(stacks[tid].back(), ev.find("name")->str);
            stacks[tid].pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
    // The boot + the explicit mapDirect produce kernel map spans.
    EXPECT_GT(spans, 0u);
}

TEST(Trace, EveryPacketHasCompleteLifecycle)
{
    RunResult r = runWorkload(true);
    json::Value root = json::parse(r.traceJson);
    const json::Value *events = root.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    struct Flow
    {
        std::set<std::string> steps;
        bool ended = false;
    };
    std::map<std::string, Flow> flows;
    for (const json::Value &ev : events->arr) {
        const std::string &ph = ev.find("ph")->str;
        if (ph != "b" && ph != "n" && ph != "e")
            continue;
        if (ev.find("cat")->str != "packet")
            continue;
        Flow &flow = flows[ev.find("id")->str];
        if (ph == "n")
            flow.steps.insert(ev.find("name")->str);
        else if (ph == "e")
            flow.ended = true;
    }

    // One flow per injected packet, each with the full snoop ->
    // packetize -> inject -> route -> eject -> FIFO -> commit chain.
    EXPECT_EQ(flows.size(), r.sent);
    EXPECT_EQ(r.delivered, r.sent);
    for (const auto &[id, flow] : flows) {
        EXPECT_TRUE(flow.ended) << "flow " << id << " never ended";
        for (const char *step : {"packetized", "inject", "hop",
                                 "eject", "inFifoEnqueue", "commit"}) {
            EXPECT_TRUE(flow.steps.count(step))
                << "flow " << id << " missing step " << step;
        }
    }
}

TEST(Trace, DisabledTracingChangesNothing)
{
    RunResult off1 = runWorkload(false);
    RunResult off2 = runWorkload(false);
    RunResult on = runWorkload(true);

    // The simulation is deterministic...
    ASSERT_EQ(off1.stats, off2.stats);
    // ...and tracing must not perturb it: every statistic -- tick
    // counts, latencies, queue depths -- is byte-identical.
    EXPECT_EQ(off1.stats, on.stats);
    EXPECT_EQ(off1.statsJson, on.statsJson);
    EXPECT_EQ(off1.sent, on.sent);
    EXPECT_EQ(off1.delivered, on.delivered);
}

TEST(Trace, StatsJsonParsesAndHasHistograms)
{
    RunResult r = runWorkload(false);
    json::Value root = json::parse(r.statsJson);
    ASSERT_TRUE(root.isObject());

    const json::Value *hist =
        root.find("node1.ni.deliveryLatencyHist");
    ASSERT_TRUE(hist && hist->isObject());
    EXPECT_DOUBLE_EQ(hist->find("count")->number,
                     static_cast<double>(r.delivered));
    const json::Value *buckets = hist->find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    EXPECT_FALSE(buckets->arr.empty());

    const json::Value *sent = root.find("node0.ni.pktsSent");
    ASSERT_TRUE(sent && sent->isNumber());
    EXPECT_DOUBLE_EQ(sent->number, static_cast<double>(r.sent));

    // FIFO and router groups ride along in the JSON dump.
    EXPECT_TRUE(root.find("node0.ni.outFifo.maxFillBytes"));
    EXPECT_TRUE(root.find("node1.ni.inFifo.depthPackets"));
}

} // namespace
} // namespace shrimp
