/**
 * @file
 * Chaos-soak harness tests: seeded fault schedules must leave the
 * machine consistent, quiescent, and perfectly repeatable, and a
 * fault-tolerant mesh must deliver around a permanently dead link.
 */

#include <gtest/gtest.h>

#include "core/chaos.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

std::string
joinViolations(const ChaosReport &r)
{
    std::string out;
    for (const auto &v : r.violations)
        out += v + "\n";
    return out;
}

//! Ten distinct seeds, every global invariant holds on each.
TEST(ChaosSoak, TenSeedsHoldInvariants)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ChaosParams p;
        p.seed = seed;
        ChaosReport r = runChaos(p);
        EXPECT_TRUE(r.ok) << "seed " << seed << ":\n"
                          << joinViolations(r);
        EXPECT_GT(r.writesIssued, 0u) << "seed " << seed;
        EXPECT_GT(r.heartbeatsSent, 0u) << "seed " << seed;
        EXPECT_EQ(r.crashesInjected, p.crashes) << "seed " << seed;
        // Every crash must have been detected by at least one peer.
        EXPECT_GT(r.peersDeclaredDead, 0u) << "seed " << seed;
        // The DSM phase actually ran its schedule.
        EXPECT_GT(r.dsmOpsIssued, 0u) << "seed " << seed;
    }
}

//! A wider mesh exercises the route-around paths harder.
TEST(ChaosSoak, ThreeByThreeMesh)
{
    ChaosParams p;
    p.seed = 42;
    p.meshWidth = 3;
    p.meshHeight = 3;
    p.linkFlaps = 5;
    p.writesPerPair = 24;
    ChaosReport r = runChaos(p);
    EXPECT_TRUE(r.ok) << joinViolations(r);
    EXPECT_GT(r.writesIssued, 0u);
}

//! Same seed, same machine: the run is a pure function of the params.
TEST(ChaosSoak, SameSeedIsDeterministic)
{
    ChaosParams p;
    p.seed = 7;
    ChaosReport a = runChaos(p);
    ChaosReport b = runChaos(p);
    EXPECT_TRUE(a.ok) << joinViolations(a);
    EXPECT_TRUE(b.ok) << joinViolations(b);
    EXPECT_EQ(a.statsFingerprint, b.statsFingerprint);
    EXPECT_EQ(a.writesIssued, b.writesIssued);
    EXPECT_EQ(a.peersDeclaredDead, b.peersDeclaredDead);
    EXPECT_EQ(a.peersRecovered, b.peersRecovered);
    EXPECT_EQ(a.misroutes, b.misroutes);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.dsmOpsIssued, b.dsmOpsIssued);
    EXPECT_EQ(a.dsmOpsHostdown, b.dsmOpsHostdown);
    EXPECT_EQ(a.dsmRehomes, b.dsmRehomes);
}

//! Different seeds should produce observably different runs.
TEST(ChaosSoak, DifferentSeedsDiffer)
{
    ChaosParams pa, pb;
    pa.seed = 3;
    pb.seed = 4;
    ChaosReport a = runChaos(pa);
    ChaosReport b = runChaos(pb);
    EXPECT_NE(a.statsFingerprint, b.statsFingerprint);
}

/**
 * One permanently dead link must not partition a fault-tolerant mesh:
 * every ordered pair of live nodes still delivers.
 */
TEST(ChaosSoak, DeadLinkDoesNotPartition)
{
    SystemConfig cfg;
    cfg.meshWidth = 3;
    cfg.meshHeight = 3;
    cfg.ni.reliability.enabled = true;
    cfg.router.faultTolerant = true;
    ShrimpSystem sys(cfg);
    const unsigned n = sys.numNodes();

    // Kill the link between node 4 (center) and node 5, both ways.
    sys.backplane().router(4).setLinkDead(Router::EAST, true);
    sys.backplane().router(5).setLinkDead(Router::WEST, true);

    std::vector<Process *> procs(n);
    std::vector<Addr> srcBase(n), dstBase(n);
    for (NodeId id = 0; id < n; ++id) {
        procs[id] = sys.kernel(id).createProcess("pairs");
        srcBase[id] = procs[id]->allocate(n);
        dstBase[id] = procs[id]->allocate(n);
    }
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            ASSERT_EQ(sys.kernel(s).mapDirect(
                          *procs[s], srcBase[s] + d * PAGE_SIZE, 1,
                          sys.kernel(d), *procs[d],
                          dstBase[d] + s * PAGE_SIZE,
                          UpdateMode::AUTO_SINGLE),
                      err::OK);
        }
    }

    // One distinct word from every source to every destination.
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            Translation t = procs[s]->space().translate(
                srcBase[s] + d * PAGE_SIZE, true);
            ASSERT_TRUE(t.ok());
            std::uint32_t value = 0xC0DE0000u + s * 16 + d;
            sys.node(s).bus.postWrite(t.paddr, &value, 4,
                                      BusMaster::CPU, sys.curTick());
        }
    }
    sys.runFor(10 * ONE_MS);

    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            Translation t = procs[d]->space().translate(
                dstBase[d] + s * PAGE_SIZE, false);
            ASSERT_TRUE(t.ok());
            auto v = static_cast<std::uint32_t>(
                sys.node(d).mem.readInt(t.paddr, 4));
            EXPECT_EQ(v, 0xC0DE0000u + s * 16 + d)
                << "pair " << s << "->" << d
                << " not delivered around the dead link";
        }
    }

    // The detour really happened: no dead-link drops, some misroutes.
    std::uint64_t drops = 0;
    for (NodeId id = 0; id < n; ++id)
        drops += sys.backplane().router(id).routeAroundDrops();
    EXPECT_EQ(drops, 0u);
}

} // namespace
} // namespace shrimp
