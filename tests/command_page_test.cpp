/**
 * @file
 * Tests for Virtual Memory Mapped Commands (paper Section 4.2): the
 * kernel maps command pages into a process's address space, and the
 * process then controls the network interface for its own pages
 * entirely from user level -- the paper's two examples are switching
 * a page between single-write and blocked-write automatic update and
 * requesting an interrupt on data arrival.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;

struct CommandPageFixture : ::testing::Test
{
    std::unique_ptr<ShrimpSystem> sys;
    Process *procA = nullptr;
    Process *procB = nullptr;
    Addr src = 0, dst = 0, cmd = 0;

    void
    build(UpdateMode mode, bool arrival_interrupt = false)
    {
        sys = std::make_unique<ShrimpSystem>(test::twoNodeConfig());
        procA = sys->kernel(0).createProcess("A");
        procB = sys->kernel(1).createProcess("B");
        src = procA->allocate(1);
        dst = procB->allocate(1);
        ASSERT_EQ(sys->kernel(0).mapDirect(*procA, src, 1,
                                           sys->kernel(1), *procB, dst,
                                           mode, arrival_interrupt),
                  err::OK);
        cmd = sys->kernel(0).mapCommandPages(*procA, src, 1);
    }
};

TEST_F(CommandPageFixture, UserSwitchesSingleToBlockedWrite)
{
    build(UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, cmd);
    // Phase 1: single-write -- every store is a packet.
    for (int i = 0; i < 4; ++i)
        pa.sti(R1, 4 * i, 0x10 + i, 4);
    // Switch this page to blocked-write from user level: one store
    // to the command page's mode-control word.
    pa.sti(R2, ShrimpNi::ctrlModeOffset,
           static_cast<std::int64_t>(ShrimpNi::ModeCommand::AUTO_BLOCK),
           4);
    // Phase 2: blocked-write -- consecutive stores merge.
    for (int i = 4; i < 8; ++i)
        pa.sti(R1, 4 * i, 0x10 + i, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(5 * ONE_MS);

    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(peek32(*sys, 1, *procB, dst + 4 * i),
                  static_cast<std::uint32_t>(0x10 + i));
    // 4 single-write packets + 1 merged packet.
    EXPECT_EQ(sys->node(0).ni.packetsSent(), 5u);
    EXPECT_GE(sys->node(0).ni.mergedWrites(), 3u);
}

TEST_F(CommandPageFixture, UserSwitchesBlockedToSingleWrite)
{
    build(UpdateMode::AUTO_BLOCK);

    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, cmd);
    pa.sti(R2, ShrimpNi::ctrlModeOffset,
           static_cast<std::int64_t>(
               ShrimpNi::ModeCommand::AUTO_SINGLE),
           4);
    for (int i = 0; i < 4; ++i)
        pa.sti(R1, 4 * i, 7 + i, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);
    EXPECT_EQ(sys->node(0).ni.packetsSent(), 4u);   // no merging
    EXPECT_EQ(sys->node(0).ni.mergedWrites(), 0u);
}

TEST_F(CommandPageFixture, UserRequestsArrivalInterrupt)
{
    // The receiver-side process asks for an interrupt the next time
    // data arrives for one of its pages, through ITS command window.
    build(UpdateMode::AUTO_SINGLE);
    Addr cmd_b = sys->kernel(1).mapCommandPages(*procB, dst, 1);

    Translation t = procB->space().translate(dst, false);
    PageNum dst_frame = pageOf(t.paddr);
    EXPECT_FALSE(
        sys->node(1).ni.nipt().entry(dst_frame).interruptOnArrival);

    Program pb("b");
    pb.movi(R2, cmd_b);
    pb.sti(R2, ShrimpNi::ctrlIntrOffset, 1, 4);     // request interrupt
    // Spin until the word arrives (the interrupt fires meanwhile).
    pb.movi(R1, dst);
    pb.label("wait");
    pb.ld(R3, R1, 0, 4);
    pb.cmpi(R3, 0xAB);
    pb.jnz("wait");
    // Turn it back off.
    pb.sti(R2, ShrimpNi::ctrlIntrOffset, 0, 4);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    Program pa("a");
    // Small delay so B's interrupt request lands first.
    pa.movi(R2, 0);
    pa.movi(R3, 1000);
    pa.label("d");
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("d");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAB, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);

    EXPECT_EQ(sys->kernel(1).arrivalCount(dst_frame), 1u);
    EXPECT_FALSE(
        sys->node(1).ni.nipt().entry(dst_frame).interruptOnArrival);
}

TEST_F(CommandPageFixture, StatusReadFromUserLevel)
{
    // A plain load from a command page returns the DMA status word.
    build(UpdateMode::DELIBERATE);
    Addr out = procA->allocate(1);

    Program pa("a");
    pa.movi(R2, cmd);
    pa.ld(R3, R2, 0, 4);        // engine idle: status == 0
    pa.movi(R1, out);
    pa.st(R1, 0, R3, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    EXPECT_EQ(peek32(*sys, 0, *procA, out), 0u);
}

TEST_F(CommandPageFixture, MalformedStartsAreIgnored)
{
    build(UpdateMode::DELIBERATE);

    Program pa("a");
    pa.movi(R2, cmd);
    pa.sti(R2, 0, 0, 4);            // zero word count
    pa.sti(R2, 0x800, 4096, 4);     // would cross the page end
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    sys->runFor(ONE_MS);
    EXPECT_EQ(sys->node(0).ni.ignoredStarts(), 2u);
    EXPECT_EQ(sys->node(0).ni.dma().transfersStarted(), 0u);
    EXPECT_EQ(sys->node(1).ni.packetsDelivered(), 0u);
}

TEST_F(CommandPageFixture, KernelCanRevokeCommandAccess)
{
    // Section 4.2: "If the kernel later decides to reallocate p to
    // another process, it can revoke X's right to access the command
    // pages." Revocation = unmapping the command window; further
    // access faults and the process is killed.
    build(UpdateMode::DELIBERATE);

    procA->space().pageTable().unmap(pageOf(cmd));

    Program pa("a");
    pa.movi(R2, cmd);
    pa.sti(R2, 0, 8, 4);        // faults: no translation
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    sys->startAll();
    ASSERT_TRUE(sys->runUntilAllExited());
    EXPECT_EQ(procA->ctx.faults, 1u);
    EXPECT_EQ(sys->node(0).ni.dma().transfersStarted(), 0u);
}

} // namespace
} // namespace shrimp
