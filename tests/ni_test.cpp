/**
 * @file
 * Integration tests for the SHRIMP network interface on a two-node
 * system: automatic update (single-write and blocked-write),
 * deliberate update through VM-mapped command pages, CRC and NIPT
 * protection drops, split-page mappings, arrival interrupts, and the
 * outgoing-FIFO flow control.
 */

#include <gtest/gtest.h>

#include "msg/deliberate.hh"
#include "test_util.hh"

namespace shrimp
{
namespace
{

using test::loadProgram;
using test::peek32;
using test::poke32;

struct NiFixture : ::testing::Test
{
    std::unique_ptr<ShrimpSystem> sys;
    Process *procA = nullptr;
    Process *procB = nullptr;

    void
    build(SystemConfig cfg = test::twoNodeConfig())
    {
        sys = std::make_unique<ShrimpSystem>(cfg);
        procA = sys->kernel(0).createProcess("A");
        procB = sys->kernel(1).createProcess("B");
    }

    void
    runAll(Tick extra_drain = 200 * ONE_US)
    {
        sys->startAll();
        ASSERT_TRUE(sys->runUntilAllExited());
        sys->runFor(extra_drain);
    }
};

TEST_F(NiFixture, AutoSingleWritePropagates)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    ASSERT_EQ(sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1),
                                       *procB, dst,
                                       UpdateMode::AUTO_SINGLE),
              err::OK);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0x10, 0xfeedf00d, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll();
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0x10), 0xfeedf00du);
    EXPECT_EQ(sys->node(0).ni.packetsSent(), 1u);
    EXPECT_EQ(sys->node(1).ni.packetsDelivered(), 1u);
}

TEST_F(NiFixture, SingleWriteLatencyUnderTwoMicroseconds)
{
    // H1: on the EISA-based prototype the store-to-memory latency is
    // slightly less than 2 us.
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    Tick delivered_at = 0;
    sys->node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        delivered_at = when - pkt.injectedAt;
    };

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll();
    ASSERT_GT(delivered_at, 0u);
    EXPECT_LT(delivered_at, 2 * ONE_US);
    EXPECT_GT(delivered_at, ONE_US / 2);
}

TEST_F(NiFixture, NextGenDatapathUnderOneMicrosecond)
{
    // H2: bypassing the EISA bus brings latency under 1 us.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.nextGenDatapath = true;
    build(cfg);
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    Tick latency = 0;
    sys->node(1).ni.onDelivered = [&](const NetPacket &pkt, Tick when) {
        latency = when - pkt.injectedAt;
    };

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll();
    ASSERT_GT(latency, 0u);
    EXPECT_LT(latency, ONE_US);
}

TEST_F(NiFixture, BlockedWriteMergesConsecutiveStores)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_BLOCK);

    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 16; ++i)
        pa.sti(R1, 4 * i, 0x100 + i, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(ONE_MS);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(peek32(*sys, 1, *procB, dst + 4 * i),
                  static_cast<std::uint32_t>(0x100 + i));
    }
    // 16 stores merged into far fewer packets.
    EXPECT_LT(sys->node(0).ni.packetsSent(), 4u);
    EXPECT_GT(sys->node(0).ni.mergedWrites(), 10u);
}

TEST_F(NiFixture, BlockedWriteNonConsecutiveSplitsPackets)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_BLOCK);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);
    pa.sti(R1, 0x100, 2, 4);    // gap: breaks the merge
    pa.sti(R1, 0x104, 3, 4);    // consecutive with the previous
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(ONE_MS);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0), 1u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0x100), 2u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0x104), 3u);
    EXPECT_EQ(sys->node(0).ni.packetsSent(), 2u);
}

TEST_F(NiFixture, DeliberateUpdateViaCommandPage)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::DELIBERATE);
    Addr cmd = sys->kernel(0).mapCommandPages(*procA, src, 1);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

    // Fill 64 words locally, then a deliberate send of 64 words.
    Program pa("a");
    pa.movi(R1, src);
    for (int i = 0; i < 64; ++i)
        pa.sti(R1, 4 * i, 0xc0de0000 + i, 4);
    pa.movi(R3, src);
    pa.movi(R1, 256);
    msg::emitDeliberateSendSingle(pa, cmd_delta, "send", "multi");
    // Wait for completion so the test can also check the status read.
    pa.label("wait");
    msg::emitDeliberateCheck(pa);
    pa.jnz("wait");
    pa.halt();
    pa.label("multi");      // not used in the single-page case
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(ONE_MS);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(peek32(*sys, 1, *procB, dst + 4 * i),
                  0xc0de0000u + i);
    }
    // Before the send command, local stores produced no packets: the
    // transfer went out as DMA chunks only.
    EXPECT_EQ(sys->node(0).ni.dma().transfersStarted(), 1u);
    EXPECT_EQ(sys->node(0).ni.dma().bytesTransferred(), 256u);
}

TEST_F(NiFixture, DeliberateMultiPageSend)
{
    build();
    Addr src = procA->allocate(3);
    Addr dst = procB->allocate(3);
    sys->kernel(0).mapDirect(*procA, src, 3, sys->kernel(1), *procB,
                             dst, UpdateMode::DELIBERATE);
    Addr cmd = sys->kernel(0).mapCommandPages(*procA, src, 3);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(src);

    // Fill three pages with a pattern via host poke (faster test).
    for (Addr off = 0; off < 3 * PAGE_SIZE; off += 4)
        poke32(*sys, 0, *procA, src + off,
               static_cast<std::uint32_t>(off / 4 + 1));

    Program pa("a");
    pa.movi(R3, src);
    pa.movi(R1, 3 * PAGE_SIZE);
    msg::emitDeliberateSendSingle(pa, cmd_delta, "send", "multi");
    pa.label("resume");
    pa.label("wait");
    msg::emitDeliberateCheck(pa);
    pa.jnz("wait");
    pa.halt();
    msg::emitDeliberateSendMulti(pa, cmd_delta, "multi", "resume");
    loadProgram(sys->kernel(0), *procA, std::move(pa));

    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(5 * ONE_MS);
    for (Addr off = 0; off < 3 * PAGE_SIZE; off += 4) {
        ASSERT_EQ(peek32(*sys, 1, *procB, dst + off), off / 4 + 1)
            << "at offset " << off;
    }
    EXPECT_EQ(sys->node(0).ni.dma().transfersStarted(), 3u);
}

TEST_F(NiFixture, CorruptedPacketIsDropped)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    sys->node(0).ni.corruptNextPacket();

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0x1111, 4);   // corrupted en route
    pa.sti(R1, 4, 0x2222, 4);   // arrives fine
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll();
    EXPECT_EQ(sys->node(1).ni.dropsCrc(), 1u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0), 0u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 4), 0x2222u);
}

TEST_F(NiFixture, PacketForUnmappedPageIsDropped)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    // Sabotage the receiver's NIPT: the protection check at the head
    // of the incoming FIFO must drop the packet (Section 4).
    Translation t = procB->space().translate(dst, false);
    sys->node(1).ni.nipt().entry(pageOf(t.paddr)).mappedIn = false;

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0x3333, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll();
    EXPECT_EQ(sys->node(1).ni.dropsUnmapped(), 1u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst), 0u);
}

TEST_F(NiFixture, SplitPageUnalignedMapping)
{
    // Map a 4 KB range starting mid-page: each source page carries a
    // split mapping and data lands at the shifted destination.
    build();
    Addr src_region = procA->allocate(2);
    Addr dst_region = procB->allocate(2);
    Addr src = src_region + 0x800;          // mid-page start
    Addr dst = dst_region + 0x200;          // different alignment
    ASSERT_EQ(sys->kernel(0).mapDirectRange(
                  *procA, src, PAGE_SIZE, sys->kernel(1), *procB, dst,
                  UpdateMode::AUTO_SINGLE),
              err::OK);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 0xAAAA0001, 4);           // first byte of the range
    pa.sti(R1, 0x7FC, 0xAAAA0002, 4);       // straddles src page bdry
    pa.sti(R1, 0xFFC, 0xAAAA0003, 4);       // last word of the range
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll();
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0), 0xAAAA0001u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0x7FC), 0xAAAA0002u);
    EXPECT_EQ(peek32(*sys, 1, *procB, dst + 0xFFC), 0xAAAA0003u);
}

TEST_F(NiFixture, BidirectionalMappingDoesNotEcho)
{
    // The single-buffering flag is mapped for bidirectional automatic
    // update; incoming DMA writes must not be forwarded back.
    build();
    Addr flagA = procA->allocate(1);
    Addr flagB = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, flagA, 1, sys->kernel(1), *procB,
                             flagB, UpdateMode::AUTO_SINGLE);
    sys->kernel(1).mapDirect(*procB, flagB, 1, sys->kernel(0), *procA,
                             flagA, UpdateMode::AUTO_SINGLE);

    Program pa("a");
    pa.movi(R1, flagA);
    pa.sti(R1, 0, 7, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.movi(R1, flagB);
    pb.sti(R1, 4, 9, 4);
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(ONE_MS);
    EXPECT_EQ(peek32(*sys, 1, *procB, flagB), 7u);
    EXPECT_EQ(peek32(*sys, 0, *procA, flagA + 4), 9u);
    // Exactly one packet each way; echoes would make this explode.
    EXPECT_EQ(sys->node(0).ni.packetsSent(), 1u);
    EXPECT_EQ(sys->node(1).ni.packetsSent(), 1u);
}

TEST_F(NiFixture, OutgoingFifoThresholdStallsCpu)
{
    // Tiny outgoing FIFO: a store storm must trip the threshold
    // interrupt and stall the CPU until the FIFO drains (Section 4),
    // with no packets lost.
    SystemConfig cfg = test::twoNodeConfig();
    cfg.ni.outFifo.capacityBytes = 2048;
    cfg.ni.outFifo.highThresholdBytes = 1024;
    cfg.ni.outFifo.lowThresholdBytes = 256;
    build(cfg);

    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE);

    constexpr int kStores = 256;
    Program pa("a");
    pa.movi(R1, src);
    pa.movi(R2, 0);
    pa.movi(R3, kStores);
    pa.label("loop");
    pa.st(R1, 0, R2, 4);    // same word over and over
    pa.addi(R2, 1);
    pa.cmp(R2, R3);
    pa.jl("loop");
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(20 * ONE_MS);
    EXPECT_GT(sys->kernel(0).fifoStalls(), 0u);
    EXPECT_GT(sys->kernel(0).fifoStallTicks(), 0u);
    EXPECT_EQ(sys->node(0).ni.packetsSent(),
              static_cast<std::uint64_t>(kStores));
    EXPECT_EQ(sys->node(1).ni.packetsDelivered(),
              static_cast<std::uint64_t>(kStores));
    EXPECT_EQ(peek32(*sys, 1, *procB, dst), kStores - 1u);
}

TEST_F(NiFixture, ArrivalInterruptCountsArrivals)
{
    build();
    Addr src = procA->allocate(1);
    Addr dst = procB->allocate(1);
    sys->kernel(0).mapDirect(*procA, src, 1, sys->kernel(1), *procB,
                             dst, UpdateMode::AUTO_SINGLE,
                             /*arrival_interrupt=*/true);

    Program pa("a");
    pa.movi(R1, src);
    pa.sti(R1, 0, 1, 4);
    pa.sti(R1, 4, 2, 4);
    pa.sti(R1, 8, 3, 4);
    pa.halt();
    loadProgram(sys->kernel(0), *procA, std::move(pa));
    Program pb("b");
    pb.halt();
    loadProgram(sys->kernel(1), *procB, std::move(pb));

    runAll(ONE_MS);
    Translation t = procB->space().translate(dst, false);
    EXPECT_EQ(sys->kernel(1).arrivalCount(pageOf(t.paddr)), 3u);
}

TEST_F(NiFixture, DmaStatusReadsReportProgress)
{
    // Claiming a busy engine must fail and the status read must
    // report words remaining with the address-match flag.
    build();
    Addr src = procA->allocate(2);
    Addr dst = procB->allocate(2);
    sys->kernel(0).mapDirect(*procA, src, 2, sys->kernel(1), *procB,
                             dst, UpdateMode::DELIBERATE);

    auto &ni = sys->node(0).ni;
    Translation t = procA->space().translate(src, false);
    Addr src_paddr = t.paddr;

    ASSERT_TRUE(ni.dma().start(src_paddr, 1024));   // one full page
    EXPECT_TRUE(ni.dma().busy());
    // Second start must be refused.
    EXPECT_FALSE(ni.dma().start(src_paddr + PAGE_SIZE, 4));

    std::uint64_t status = ni.dma().statusRead(src_paddr);
    EXPECT_NE(status, dma_status::FREE);
    EXPECT_TRUE(status & dma_status::ADDR_MATCH);
    EXPECT_EQ(status >> dma_status::REMAINING_SHIFT, 1024u);

    std::uint64_t other = ni.dma().statusRead(src_paddr + 64);
    EXPECT_FALSE(other & dma_status::ADDR_MATCH);

    sys->runFor(ONE_MS);
    EXPECT_FALSE(ni.dma().busy());
    EXPECT_EQ(ni.dma().statusRead(src_paddr), dma_status::FREE);
}

} // namespace
} // namespace shrimp
