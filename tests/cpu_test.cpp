/**
 * @file
 * Unit tests for the mini-ISA assembler and the Cpu model: ALU ops,
 * branches, memory access through the cache, CALL/RET, CMPXCHG
 * atomics, instruction counting regions, faults, syscalls and
 * interrupts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/cpu.hh"
#include "cpu/program.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"
#include "vm/address_space.hh"

namespace shrimp
{
namespace
{

struct RecordingHandler : TrapHandler
{
    int halts = 0;
    int syscalls = 0;
    int faults = 0;
    std::uint64_t lastSyscall = 0;
    FaultKind lastFault = FaultKind::NONE;
    Addr lastFaultAddr = 0;
    bool fixFaults = false;
    std::function<void(ExecContext &)> fixer;

    std::optional<Tick>
    syscall(ExecContext &ctx, std::uint64_t num, Tick now) override
    {
        ++syscalls;
        lastSyscall = num;
        ctx.regs[R0] = num * 2;     // visible return value
        return now;
    }

    std::optional<Tick>
    fault(ExecContext &ctx, FaultKind kind, Addr vaddr, bool,
          Tick now) override
    {
        ++faults;
        lastFault = kind;
        lastFaultAddr = vaddr;
        if (fixFaults) {
            if (fixer)
                fixer(ctx);
            return now + ONE_US;    // retry the instruction
        }
        ctx.halted = true;
        return std::nullopt;
    }

    void halted(ExecContext &, Tick) override { ++halts; }
};

struct CpuFixture : ::testing::Test
{
    EventQueue eq;
    MainMemory mem{eq, "mem", 1 * 1024 * 1024};
    XpressBus bus{eq, "bus"};
    Cache cache{eq, "cache", 60'000'000, bus, mem, Cache::Params{}};
    Cpu cpu{eq, "cpu", Cpu::Params{}, cache, bus, mem};
    FrameAllocator frames{1, 256};
    AddressSpace space{frames};
    RecordingHandler handler;
    ExecContext ctx;

    void
    SetUp() override
    {
        bus.addTarget(0, mem.size(), &mem);
        cpu.setTrapHandler(&handler);
        ctx.name = "test";
        ctx.pid = 1;
        ctx.space = &space;
    }

    /** Finalize, install and run @p prog to completion. */
    void
    run(Program &prog)
    {
        prog.finalize();
        ctx.program = std::make_shared<Program>(std::move(prog));
        ctx.pc = 0;
        ctx.halted = false;
        cpu.setContext(&ctx);
        cpu.resumeAt(eq.curTick());
        eq.run(2'000'000);
    }
};

TEST_F(CpuFixture, AluAndFlags)
{
    Program p("alu");
    p.movi(R1, 10);
    p.movi(R2, 3);
    p.add(R1, R2);          // 13
    p.subi(R1, 1);          // 12
    p.shli(R1, 2);          // 48
    p.shri(R1, 1);          // 24
    p.andi(R1, 0x1C);       // 24
    p.movi(R3, 5);
    p.mul(R3, R2);          // 15
    p.cmpi(R1, 24);
    p.halt();
    run(p);

    EXPECT_EQ(ctx.regs[R1], 24u);
    EXPECT_EQ(ctx.regs[R3], 15u);
    EXPECT_TRUE(ctx.zf);
    EXPECT_EQ(handler.halts, 1);
}

TEST_F(CpuFixture, BranchesAndLoop)
{
    Program p("loop");
    p.movi(R1, 0);
    p.movi(R2, 10);
    p.label("top");
    p.addi(R1, 1);
    p.cmp(R1, R2);
    p.jl("top");
    p.halt();
    run(p);
    EXPECT_EQ(ctx.regs[R1], 10u);
}

TEST_F(CpuFixture, LoadsAndStores)
{
    Addr buf = space.allocate(1);
    Program p("mem");
    p.movi(R1, buf);
    p.sti(R1, 0, 0x11223344, 4);
    p.ld(R2, R1, 0, 4);
    p.st(R1, 8, R2, 4);
    p.ld(R3, R1, 8, 2);     // partial, little-endian
    p.halt();
    run(p);
    EXPECT_EQ(ctx.regs[R2], 0x11223344u);
    EXPECT_EQ(ctx.regs[R3], 0x3344u);

    Translation t = space.translate(buf, false);
    EXPECT_EQ(mem.readInt(t.paddr + 8, 4), 0x11223344u);
}

TEST_F(CpuFixture, CallRetAndStack)
{
    Addr stack = space.allocate(1);
    Program p("call");
    p.movi(SP, stack + PAGE_SIZE);
    p.movi(R1, 1);
    p.call("fn");
    p.addi(R1, 100);        // runs after return
    p.halt();
    p.label("fn");
    p.push(R1);
    p.movi(R1, 50);
    p.pop(R2);              // old R1
    p.ret();
    run(p);
    EXPECT_EQ(ctx.regs[R1], 150u);
    EXPECT_EQ(ctx.regs[R2], 1u);
    EXPECT_EQ(ctx.regs[SP], stack + PAGE_SIZE);
}

TEST_F(CpuFixture, CmpxchgSemantics)
{
    Addr buf = space.allocate(1);
    Program p("cas");
    p.movi(R1, buf);
    p.sti(R1, 0, 7, 4);

    // Failing CAS: accumulator 0 != 7 -> R0 loaded with 7, ZF clear.
    p.movi(R0, 0);
    p.movi(R2, 99);
    p.cmpxchg(R1, 0, R2, 4);
    p.jz("skip");
    p.mov(R3, R0);          // observe loaded value

    // Succeeding CAS: accumulator 7 == 7 -> mem <- 99, ZF set.
    p.movi(R0, 7);
    p.cmpxchg(R1, 0, R2, 4);
    p.label("skip");
    p.ld(R4, R1, 0, 4);
    p.halt();
    run(p);

    EXPECT_EQ(ctx.regs[R3], 7u);
    EXPECT_EQ(ctx.regs[R4], 99u);
    EXPECT_TRUE(ctx.zf);
}

TEST_F(CpuFixture, RegionCountingMatchesMarks)
{
    Addr buf = space.allocate(1);
    Program p("count");
    p.movi(R1, buf);        // region NONE
    p.mark(region::SEND);
    p.movi(R2, 1);          // SEND 1
    p.sti(R1, 0, 5, 4);     // SEND 2
    p.mark(region::DATA);
    p.ld(R3, R1, 0, 4);     // DATA 1
    p.mark(region::NONE);
    p.halt();
    run(p);

    EXPECT_EQ(ctx.regionCount(region::SEND), 2u);
    EXPECT_EQ(ctx.regionCount(region::DATA), 1u);
    // MARK itself is free: total = movi + 2 + 1 + halt.
    EXPECT_EQ(ctx.totalInstrs, 5u);
}

TEST_F(CpuFixture, SyscallTrapsAndReturns)
{
    Program p("sys");
    p.movi(R1, 123);
    p.syscall(42);
    p.mov(R2, R0);          // return value visible after trap
    p.halt();
    run(p);
    EXPECT_EQ(handler.syscalls, 1);
    EXPECT_EQ(handler.lastSyscall, 42u);
    EXPECT_EQ(ctx.regs[R2], 84u);
}

TEST_F(CpuFixture, UnmappedAccessFaults)
{
    Program p("fault");
    p.movi(R1, 0x7000'0000);
    p.ld(R2, R1, 0, 4);
    p.halt();
    run(p);
    EXPECT_EQ(handler.faults, 1);
    EXPECT_EQ(handler.lastFault, FaultKind::NOT_PRESENT);
    EXPECT_EQ(handler.lastFaultAddr, 0x7000'0000u);
}

TEST_F(CpuFixture, ProtectionFaultRetriesAfterFix)
{
    Addr buf = space.allocate(1, CachePolicy::WRITE_BACK, false);
    handler.fixFaults = true;
    handler.fixer = [&](ExecContext &) {
        space.pageTable().setWritable(pageOf(buf), true);
    };

    Program p("wfault");
    p.movi(R1, buf);
    p.sti(R1, 0, 77, 4);
    p.ld(R2, R1, 0, 4);
    p.halt();
    run(p);

    EXPECT_EQ(handler.faults, 1);
    EXPECT_EQ(handler.lastFault, FaultKind::PROTECTION);
    EXPECT_EQ(ctx.regs[R2], 77u);   // retried store succeeded
}

TEST_F(CpuFixture, InterruptRunsBetweenInstructions)
{
    Program p("intr");
    p.movi(R1, 0);
    for (int i = 0; i < 100; ++i)
        p.addi(R1, 1);
    p.halt();

    bool taken = false;
    eq.scheduleFn(
        [&] {
            cpu.postInterrupt([&](Tick now) {
                taken = true;
                return now + 10 * ONE_US;
            });
        },
        200 * ONE_NS);

    run(p);
    EXPECT_TRUE(taken);
    EXPECT_EQ(ctx.regs[R1], 100u);  // program still completed
    EXPECT_EQ(cpu.interruptsTaken(), 1u);
}

TEST_F(CpuFixture, InterruptDeliveredWhenIdle)
{
    bool taken = false;
    cpu.setContext(nullptr);
    cpu.postInterrupt([&](Tick now) {
        taken = true;
        return now;
    });
    eq.run();
    EXPECT_TRUE(taken);
}

TEST_F(CpuFixture, TimingChargesInstructions)
{
    Program p("time");
    p.movi(R1, 0);
    p.addi(R1, 1);
    p.addi(R1, 1);
    p.halt();
    run(p);
    // 4 instructions at 60 MHz: at least 3 full cycles elapsed.
    EXPECT_GE(eq.curTick(), 3 * cpu.clockPeriod());
    EXPECT_EQ(cpu.instructionsExecuted(), 4u);
}

TEST(Program, LabelsResolveAndValidate)
{
    Program p("prog");
    p.jmp("end");
    p.movi(R1, 1);
    p.label("end");
    p.halt();
    p.finalize();
    EXPECT_EQ(p.at(0).imm, 2);      // "end" resolves past movi
    EXPECT_EQ(p.labelAddress("end"), 2u);
    EXPECT_EQ(p.size(), 3u);
}

TEST(Program, UndefinedLabelPanics)
{
    Program p("bad");
    p.jmp("nowhere");
    EXPECT_THROW(p.finalize(), std::logic_error);
}

TEST(Program, DuplicateLabelPanics)
{
    Program p("dup");
    p.label("a");
    p.nop();
    EXPECT_THROW(p.label("a"), std::logic_error);
}

TEST(Program, ExecutingUnfinalizedPanics)
{
    Program p("raw");
    p.nop();
    EXPECT_THROW(p.at(0), std::logic_error);
}

} // namespace
} // namespace shrimp
