#include "core/system.hh"

#include "os/dsm.hh"
#include "os/nx_service.hh"
#include "sim/logging.hh"

namespace shrimp
{

ShrimpSystem::ShrimpSystem(const SystemConfig &cfg) : _cfg(cfg)
{
    if (cfg.traceEnabled) {
        _tracer = std::make_unique<trace::Tracer>();
        _eq.setTracer(_tracer.get());
    }

    _backplane = std::make_unique<MeshBackplane>(
        _eq, "mesh", cfg.meshWidth, cfg.meshHeight, cfg.router);
    if (cfg.linkFaults.any())
        _backplane->setLinkFaults(cfg.linkFaults);

    for (NodeId id = 0; id < cfg.numNodes(); ++id)
        _nodes.push_back(std::make_unique<Node>(_eq, id, cfg,
                                                *_backplane));

    for (auto &node : _nodes)
        node->kernel.setAdmission(cfg.admission);

    if (cfg.bootKernelServices) {
        // Phase 1: every kernel allocates its channel and NX frames
        // (plus DSM home/bounce frames when the service is on).
        for (auto &node : _nodes) {
            node->kernel.allocateChannels();
            if (cfg.dsm.enabled)
                node->kernel.enableDsm(cfg.dsm);
        }

        // Phase 2: cross-wire outgoing mappings now that every
        // receiver frame is known (the real machine does this during
        // coordinated boot).
        for (NodeId a = 0; a < cfg.numNodes(); ++a) {
            for (NodeId b = 0; b < cfg.numNodes(); ++b) {
                if (a == b)
                    continue;
                Kernel &ka = _nodes[a]->kernel;
                Kernel &kb = _nodes[b]->kernel;
                ka.wireChannelOut(b, kb.channelInFrame(a));

                std::vector<PageNum> data_frames;
                for (std::size_t i = 0; i < NxService::slotPages; ++i)
                    data_frames.push_back(
                        kb.nxService().dataInFrame(a, i));
                ka.nxService().wireTo(b, data_frames,
                                      kb.nxService().ctlInFrame(a));

                if (cfg.dsm.enabled) {
                    ka.dsm()->wireTo(b,
                                     kb.dsm()->bounceInFrame(a));
                }
            }
        }
    }

    if (cfg.health.enabled) {
        for (auto &node : _nodes)
            node->kernel.enableHealth(cfg.health);
    }
}

void
ShrimpSystem::crashNode(NodeId id)
{
    Node &n = node(id);
    if (n.kernel.crashed())
        return;
    n.kernel.crash();
    n.ni.setCrashed(true);
}

void
ShrimpSystem::restartNode(NodeId id)
{
    Node &n = node(id);
    if (!n.kernel.crashed())
        return;
    n.ni.setCrashed(false);
    n.kernel.restart();
}

unsigned
ShrimpSystem::partition(const std::vector<NodeId> &a,
                        const std::vector<NodeId> &b)
{
    for (NodeId x : a) {
        for (NodeId y : b) {
            SHRIMP_ASSERT(x != y, "node ", x,
                          " on both sides of the partition");
        }
    }
    auto cut = [this](NodeId from, NodeId to) {
        Router::Port port = _backplane->portToward(from, to);
        _backplane->router(from).setLinkDead(port, true);
        _backplane->router(from).forceLinkDown(port);
        _cutLinks.emplace_back(from, port);
    };
    unsigned links = 0;
    for (NodeId x : a) {
        for (NodeId y : b) {
            if (_backplane->hopDistance(x, y) != 1)
                continue;
            cut(x, y);
            cut(y, x);
            links += 2;
        }
    }
    return links;
}

void
ShrimpSystem::heal()
{
    for (auto [node, port] : _cutLinks) {
        _backplane->router(node).setLinkDead(port, false);
        _backplane->router(node).forceLinkUp(port);
    }
    _cutLinks.clear();
}

void
ShrimpSystem::startAll()
{
    for (auto &node : _nodes)
        node->kernel.start();
}

bool
ShrimpSystem::runUntilAllExited(Tick max_time, std::uint64_t max_events)
{
    Tick deadline = _eq.curTick() + max_time;
    std::uint64_t processed = 0;
    while (processed < max_events) {
        auto all_done = [this] {
            for (auto &node : _nodes) {
                if (!node->kernel.allProcessesExited())
                    return false;
            }
            return true;
        };
        if (all_done())
            return true;
        if (_eq.empty() || _eq.curTick() > deadline)
            return all_done();
        _eq.runOne();
        ++processed;
    }
    SHRIMP_WARN("runUntilAllExited hit the event cap");
    return false;
}

void
ShrimpSystem::runFor(Tick duration)
{
    _eq.runUntil(_eq.curTick() + duration);
}

void
ShrimpSystem::dumpStats(std::ostream &os)
{
    for (auto &node : _nodes) {
        node->bus.statGroup().dump(os);
        node->eisa.statGroup().dump(os);
        node->cache.statGroup().dump(os);
        node->cpu.statGroup().dump(os);
        node->ni.statGroup().dump(os);
        node->ni.outgoingFifo().statGroup().dump(os);
        node->ni.incomingFifo().statGroup().dump(os);
        node->ni.dma().statGroup().dump(os);
        node->kernel.statGroup().dump(os);
    }
    for (NodeId id = 0; id < numNodes(); ++id)
        _backplane->router(id).statGroup().dump(os);
}

void
ShrimpSystem::dumpStatsJson(std::ostream &os)
{
    os << "{";
    bool first = true;
    for (auto &node : _nodes) {
        node->bus.statGroup().dumpJsonInto(os, first);
        node->eisa.statGroup().dumpJsonInto(os, first);
        node->cache.statGroup().dumpJsonInto(os, first);
        node->cpu.statGroup().dumpJsonInto(os, first);
        node->ni.statGroup().dumpJsonInto(os, first);
        node->ni.outgoingFifo().statGroup().dumpJsonInto(os, first);
        node->ni.incomingFifo().statGroup().dumpJsonInto(os, first);
        node->ni.dma().statGroup().dumpJsonInto(os, first);
        node->kernel.statGroup().dumpJsonInto(os, first);
    }
    for (NodeId id = 0; id < numNodes(); ++id)
        _backplane->router(id).statGroup().dumpJsonInto(os, first);
    os << "\n}\n";
}

} // namespace shrimp
