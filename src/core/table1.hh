/**
 * @file
 * The Table 1 harness: builds, runs and measures each message-passing
 * primitive of the paper's Section 5.2 on a two-node system, counting
 * the instructions executed in the SEND/RECV measurement regions
 * exactly as the paper counts software overhead (per-byte data
 * movement is attributed to a separate DATA region and excluded).
 *
 * Shared between the unit tests (tests/table1_test.cpp), which assert
 * the paper's exact counts, and the bench harness
 * (bench/bench_table1_overheads.cpp), which prints the reproduced
 * table.
 */

#ifndef SHRIMP_CORE_TABLE1_HH
#define SHRIMP_CORE_TABLE1_HH

#include <cstdint>

#include "core/system.hh"

namespace shrimp
{
namespace table1
{

/** Measured cost of one primitive, per message, in instructions. */
struct PrimitiveCost
{
    double sendPerMsg = 0.0;    //!< SEND-region instructions
    double recvPerMsg = 0.0;    //!< RECV-region instructions
    double dataPerMsg = 0.0;    //!< excluded per-byte instructions
    std::uint64_t kernelSendPerMsg = 0;  //!< kernel instrs (baseline)
    std::uint64_t kernelRecvPerMsg = 0;
    bool dataOk = false;        //!< payload verified at the receiver
    std::uint64_t messages = 0;
    Tick simTicks = 0;
};

/** T1.1 / T1.2: single buffering, optionally with receive-side copy. */
PrimitiveCost runSingleBuffering(bool with_copy,
                                 std::uint64_t messages = 4,
                                 unsigned payload_words = 8);

/** T1.3-T1.5: double buffering, @p case_no in {1, 2, 3}. */
PrimitiveCost runDoubleBuffering(int case_no,
                                 std::uint64_t messages = 6,
                                 unsigned payload_words = 8);

/** T1.6: deliberate-update transfer (init 13 + completion check 2). */
PrimitiveCost runDeliberateUpdate(unsigned payload_words = 64);

/** T1.7: user-level NX/2 csend/crecv over mapped rings. */
PrimitiveCost runUserNx2(std::uint64_t messages = 4,
                         unsigned payload_words = 16);

/** C1: the kernel-level NX/2 baseline (costs land in kernel*). */
PrimitiveCost runKernelNx2(std::uint64_t messages = 4,
                           unsigned payload_words = 16);

} // namespace table1
} // namespace shrimp

#endif // SHRIMP_CORE_TABLE1_HH
