/**
 * @file
 * Chaos-soak harness: seeded randomized fault schedules (node
 * crash/restart cycles, bidirectional link outages, incast overload
 * bursts) applied to a mesh carrying mixed automatic-update traffic,
 * with a global invariant checker run at the end:
 *
 *  - no corrupt or misdelivered data: every destination word is
 *    either untouched or a value its source actually stored there;
 *  - exactly-once in-order end state: pairs untouched by any fault
 *    end with the destination page equal to the source page;
 *  - eventual quiescence: once every link is revived and every node
 *    restarted, all FIFOs, retransmit windows and router queues drain
 *    and no NI progress-watchdog stall survives the settle phase;
 *  - determinism: the same seed produces the identical run (callers
 *    compare statsFingerprint across repeats).
 *
 * The schedule is pre-drawn from one seeded Rng before simulation
 * starts, so the event stream -- and therefore every statistic -- is a
 * pure function of ChaosParams.
 */

#ifndef SHRIMP_CORE_CHAOS_HH
#define SHRIMP_CORE_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace shrimp
{

/** One chaos-soak run's knobs; everything defaults to a small soak. */
struct ChaosParams
{
    std::uint64_t seed = 1;
    unsigned meshWidth = 2;
    unsigned meshHeight = 2;
    /** Fault + traffic phase length. */
    Tick duration = 30 * ONE_MS;
    /** Recovery/drain phase after all faults are healed. */
    Tick settle = 25 * ONE_MS;
    /** Node crash/restart cycles injected across the run. */
    unsigned crashes = 1;
    /** Transient bidirectional link outages injected. */
    unsigned linkFlaps = 3;
    /** Longest link outage (short enough that retransmission or the
     *  route-around path rides it out without failing the channel). */
    Tick maxFlapTicks = 4 * ONE_MS;
    /** Stores issued per ordered node pair, spread over duration. */
    unsigned writesPerPair = 48;
    /**
     * Incast overload bursts: every other node fires a volley of
     * stores at one rng-chosen hot node, driving its receive FIFO and
     * the surrounding routers into congestion. The first burst is
     * aligned with the first crash window and aimed at the victim, so
     * the retry-storm suppression runs while the target is down.
     */
    unsigned overloadBursts = 2;
    /** Stores each other node fires at the hot node per burst. */
    unsigned burstWritesPerSender = 24;
    /** Word slots cycled through within each pair's mapped page. */
    static constexpr unsigned slots = 16;
    /**
     * DSM phase: every node issues dsmOpsPerNode randomized
     * acquires (read or write) against a dsmPages-page shared window
     * while the fault schedule runs, so directory coherence soaks
     * against crashes, flaps and overload. 0 pages disables the phase.
     */
    unsigned dsmPages = 4;
    unsigned dsmOpsPerNode = 6;
    /**
     * Network partition/heal cycles: each cycle isolates one
     * rng-chosen node behind a full two-way cut-set for longer than
     * the dead timeout, so the majority declares it DEAD while the
     * minority side stalls at SUSPECT for lack of quorum; the heal
     * then soaks epoch-fenced reintegration (incarnation bumps,
     * stale-stream fencing, DSM re-homing). Cycles are laid out in
     * disjoint slices of the run so they never overlap. 0 disables
     * the phase.
     */
    unsigned partitions = 0;
    /** Record an event trace and write it here ("" = no trace). */
    std::string tracePath;
};

/** What a soak run observed; ok == violations.empty(). */
struct ChaosReport
{
    bool ok = true;
    std::vector<std::string> violations;

    std::uint64_t writesIssued = 0;
    std::uint64_t crashesInjected = 0;
    std::uint64_t linkFlapsInjected = 0;
    std::uint64_t heartbeatsSent = 0;
    std::uint64_t peersDeclaredDead = 0;
    std::uint64_t peersRecovered = 0;
    std::uint64_t misroutes = 0;
    std::uint64_t routeAroundDrops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t overloadBurstsInjected = 0;
    std::uint64_t sendsRejected = 0;
    std::uint64_t ecnMarksSeen = 0;
    std::uint64_t ecnEchoesSent = 0;
    std::uint64_t pacedRetransmits = 0;
    std::uint64_t watchdogStalls = 0;
    std::uint64_t pairsVerifiedExact = 0;
    std::uint64_t dsmOpsIssued = 0;
    std::uint64_t dsmOpsHostdown = 0;
    std::uint64_t dsmRehomes = 0;
    std::uint64_t partitionsInjected = 0;
    std::uint64_t healsInjected = 0;
    /** Quorum stalls: a minority side refusing to declare DEAD. */
    std::uint64_t partitionsDeclared = 0;
    /** Machine-wide total of fenced drops (health admit rejects +
     *  NI channel-epoch drops + DSM fenced writebacks). */
    std::uint64_t staleEpochRejects = 0;
    std::uint64_t niStaleEpochDrops = 0;
    std::uint64_t fencedWritebacks = 0;
    Tick endTick = 0;
    /** FNV-1a over the final JSON stats dump: the determinism probe. */
    std::uint64_t statsFingerprint = 0;
};

/** Run one seeded soak; never throws on invariant failure (report). */
ChaosReport runChaos(const ChaosParams &params);

} // namespace shrimp

#endif // SHRIMP_CORE_CHAOS_HH
