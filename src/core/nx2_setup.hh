/**
 * @file
 * Host-side setup for user-level NX/2 connections (src/msg/nx2_user):
 * allocates the ring and credit pages in both processes and
 * establishes the two mappings (ring: sender -> receiver, blocked-
 * write; credit: receiver -> sender, single-write).
 */

#ifndef SHRIMP_CORE_NX2_SETUP_HH
#define SHRIMP_CORE_NX2_SETUP_HH

#include "core/system.hh"
#include "msg/nx2_user.hh"
#include "sim/logging.hh"

namespace shrimp
{

/** Both ends of one user-level NX/2 connection. */
struct Nx2Connection
{
    msg::Nx2SenderView sender;
    msg::Nx2ReceiverView receiver;
};

/**
 * Wire a unidirectional user-level NX/2 connection from @p src_proc
 * on @p src_node to @p dst_proc on @p dst_node. Mappings are
 * established directly (boot-time style); production code would issue
 * the MAP syscalls instead.
 */
inline Nx2Connection
setupNx2Connection(ShrimpSystem &sys, NodeId src_node, Process &src_proc,
                   NodeId dst_node, Process &dst_proc)
{
    Nx2Connection conn;

    // Ring page: written by the sender, mapped blocked-write so the
    // header/payload stores merge into few packets.
    conn.sender.ringVaddr = src_proc.allocate(1);
    conn.receiver.ringVaddr = dst_proc.allocate(1);
    std::uint64_t e = sys.kernel(src_node).mapDirect(
        src_proc, conn.sender.ringVaddr, 1, sys.kernel(dst_node),
        dst_proc, conn.receiver.ringVaddr, UpdateMode::AUTO_BLOCK);
    SHRIMP_ASSERT(e == err::OK, "NX2 ring mapping failed: ", e);

    // Credit word: written by the receiver back to the sender.
    conn.receiver.creditVaddr = dst_proc.allocate(1);
    conn.sender.creditVaddr = src_proc.allocate(1);
    e = sys.kernel(dst_node).mapDirect(
        dst_proc, conn.receiver.creditVaddr, 1, sys.kernel(src_node),
        src_proc, conn.sender.creditVaddr, UpdateMode::AUTO_SINGLE);
    SHRIMP_ASSERT(e == err::OK, "NX2 credit mapping failed: ", e);

    // Private state words.
    conn.sender.stateVaddr = src_proc.allocate(1);
    conn.receiver.stateVaddr = dst_proc.allocate(1);
    return conn;
}

} // namespace shrimp

#endif // SHRIMP_CORE_NX2_SETUP_HH
