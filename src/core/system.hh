/**
 * @file
 * ShrimpSystem: the top-level machine and the library's main entry
 * point. Builds N nodes on a 2-D mesh backplane, boots the kernels
 * (kernel channels + NX baseline wiring), and drives simulation.
 *
 * Typical use:
 * @code
 *   SystemConfig cfg;               // 2x2 mesh, paper defaults
 *   ShrimpSystem sys(cfg);
 *   Process *a = sys.kernel(0).createProcess("sender");
 *   ...
 *   sys.runUntilAllExited();
 * @endcode
 */

#ifndef SHRIMP_CORE_SYSTEM_HH
#define SHRIMP_CORE_SYSTEM_HH

#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/node.hh"
#include "sim/trace.hh"

namespace shrimp
{

/** A complete simulated SHRIMP multicomputer. */
class ShrimpSystem
{
  public:
    explicit ShrimpSystem(const SystemConfig &cfg = SystemConfig{});

    const SystemConfig &config() const { return _cfg; }
    EventQueue &eventQueue() { return _eq; }
    Tick curTick() const { return _eq.curTick(); }

    unsigned numNodes() const { return _cfg.numNodes(); }
    Node &node(NodeId id) { return *_nodes.at(id); }
    Kernel &kernel(NodeId id) { return _nodes.at(id)->kernel; }
    MeshBackplane &backplane() { return *_backplane; }

    /** Start scheduling on every node. */
    void startAll();

    /**
     * Power-fail node @p id: its NI drops everything in flight and
     * consumes (discards) arriving packets so the mesh never wedges,
     * its CPU and failure detector stop. With config().health.enabled
     * the peers declare it DEAD within the heartbeat dead timeout and
     * tear down mappings toward it.
     */
    void crashNode(NodeId id);

    /** Power the node back up: fresh NI/protocol state, scheduling
     *  and heartbeats resume; peers recover it on its next keepalive. */
    void restartNode(NodeId id);

    bool nodeCrashed(NodeId id) { return kernel(id).crashed(); }

    /**
     * Partition the machine: cut both directions of every mesh link
     * whose endpoints fall on opposite sides of the {@p a, @p b}
     * split. Each directed link is both advertised dead to the
     * fault-tolerant router (setLinkDead, so route-around exhausts
     * into routeAroundDrops) and forced down at the wire
     * (forceLinkDown, so traffic dies in plain dimension-order mode
     * too). The sets must be disjoint; for a total partition they
     * should cover all nodes. Cuts accumulate across calls until
     * heal(). @return the number of directed links cut by this call.
     */
    unsigned partition(const std::vector<NodeId> &a,
                       const std::vector<NodeId> &b);

    /** Undo every cut made by partition() and kick parked traffic. */
    void heal();

    /** Are any partition() cuts currently in force? */
    bool partitioned() const { return !_cutLinks.empty(); }

    /**
     * Run until every process on every node has exited, a hard event
     * cap is hit, or time exceeds @p max_time.
     *
     * @return true if all processes exited.
     */
    bool runUntilAllExited(Tick max_time = 10 * ONE_SEC,
                           std::uint64_t max_events = 500'000'000);

    /** Run all events scheduled up to @p when. */
    void runFor(Tick duration);

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os);

    /** Dump every statistic as one flat JSON object keyed by path. */
    void dumpStatsJson(std::ostream &os);

    /** The event tracer, or nullptr unless config().traceEnabled. */
    trace::Tracer *tracer() { return _tracer.get(); }

  private:
    SystemConfig _cfg;
    EventQueue _eq;
    std::unique_ptr<trace::Tracer> _tracer;
    std::unique_ptr<MeshBackplane> _backplane;
    std::vector<std::unique_ptr<Node>> _nodes;
    /** Directed links cut by partition(), undone by heal(). */
    std::vector<std::pair<NodeId, Router::Port>> _cutLinks;
};

} // namespace shrimp

#endif // SHRIMP_CORE_SYSTEM_HH
