/**
 * @file
 * Node: one SHRIMP node -- an Xpress PC (CPU, cache, memory bus,
 * DRAM, EISA expansion bus) plus the SHRIMP network interface and the
 * node kernel, assembled exactly as in Figure 2 of the paper.
 */

#ifndef SHRIMP_CORE_NODE_HH
#define SHRIMP_CORE_NODE_HH

#include <memory>
#include <string>

#include "core/config.hh"
#include "cpu/cpu.hh"
#include "mem/cache.hh"
#include "mem/eisa_bus.hh"
#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"
#include "net/backplane.hh"
#include "nic/shrimp_ni.hh"
#include "os/kernel.hh"

namespace shrimp
{

/** One complete SHRIMP node. */
class Node
{
    // Identity first: the members below use _name in their
    // constructors, and members initialize in declaration order.
    NodeId _id;
    std::string _name;

  public:
    Node(EventQueue &eq, NodeId id, const SystemConfig &cfg,
         MeshBackplane &backplane)
        : _id(id),
          _name("node" + std::to_string(id)),
          mem(eq, _name + ".mem", cfg.memBytesPerNode,
              cfg.memAccessLatency),
          bus(eq, _name + ".xpress", cfg.xpressBusFreqHz,
              cfg.xpressBusWidthBytes),
          eisa(eq, _name + ".eisa", cfg.eisa),
          cache(eq, _name + ".cache", cfg.cpu.freqHz, bus, mem,
                cfg.cache),
          cpu(eq, _name + ".cpu", cfg.cpu, cache, bus, mem),
          ni(eq, _name + ".ni", id, niParams(cfg), bus, eisa, mem,
             backplane),
          kernel(eq, _name + ".kernel", id, backplane.numNodes(), cpu,
                 mem, bus, ni, cfg.kernel)
    {
        bus.addTarget(0, mem.size(), &mem);
    }

    NodeId id() const { return _id; }
    const std::string &name() const { return _name; }

    MainMemory mem;
    XpressBus bus;
    EisaBus eisa;
    Cache cache;
    Cpu cpu;
    ShrimpNi ni;
    Kernel kernel;

  private:
    static ShrimpNi::Params
    niParams(const SystemConfig &cfg)
    {
        ShrimpNi::Params p = cfg.ni;
        if (cfg.nextGenDatapath)
            p.eisaIncoming = false;
        return p;
    }
};

} // namespace shrimp

#endif // SHRIMP_CORE_NODE_HH
