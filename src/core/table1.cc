#include "core/table1.hh"

#include "core/nx2_setup.hh"
#include "msg/deliberate.hh"
#include "msg/double_buffer.hh"
#include "msg/nx2_user.hh"
#include "msg/single_buffer.hh"
#include "sim/logging.hh"

namespace shrimp
{
namespace table1
{

namespace
{

/** Two processes on a 1x2 mesh. */
struct Pair
{
    ShrimpSystem sys;
    Process *sender;
    Process *receiver;

    Pair()
        : sys([] {
              SystemConfig cfg;
              cfg.meshWidth = 2;
              cfg.meshHeight = 1;
              return cfg;
          }())
    {
        sender = sys.kernel(0).createProcess("sender");
        receiver = sys.kernel(1).createProcess("receiver");
    }

    std::uint32_t
    peek(Process &proc, NodeId node, Addr vaddr)
    {
        Translation t = proc.space().translate(vaddr, false);
        SHRIMP_ASSERT(t.ok(), "peek of unmapped address");
        return static_cast<std::uint32_t>(
            sys.node(node).mem.readInt(t.paddr, 4));
    }

    void
    load(Kernel &kernel, Process &proc, Program &&prog)
    {
        prog.finalize();
        kernel.loadAndReady(
            proc, std::make_shared<Program>(std::move(prog)));
    }
};

/**
 * Busy-wait in the NONE region for roughly 3 * @p iters instructions.
 * Clobbers R2. Steady-state pacing: each side's delay is long enough
 * that the peer's previous action (and its network flight time) has
 * completed before the measured wait executes, so measured spins run
 * exactly once -- the paper's no-contention fast path.
 */
void
emitDelay(Program &p, std::uint32_t iters, const std::string &label)
{
    p.mark(region::NONE);
    p.movi(R2, 0);
    p.label(label);
    p.addi(R2, 1);
    p.cmpi(R2, iters);
    p.jl(label);
}

/** Checksum @p words words at [R1..] into R3 (DATA region). */
void
emitChecksum(Program &p, Addr base, unsigned words,
             std::uint8_t restore_region)
{
    p.mark(region::DATA);
    p.movi(R1, base);
    for (unsigned j = 0; j < words; ++j) {
        p.ld(R0, R1, 4 * j, 4);
        p.add(R3, R0);
    }
    p.mark(restore_region);
}

PrimitiveCost
finishMeasurement(Pair &pair, std::uint64_t messages,
                  std::uint64_t expected_checksum, Addr checksum_out)
{
    pair.sys.startAll();
    bool done = pair.sys.runUntilAllExited(30 * ONE_SEC);
    SHRIMP_ASSERT(done, "table1 scenario did not terminate");
    pair.sys.runFor(5 * ONE_MS);

    PrimitiveCost cost;
    cost.messages = messages;
    cost.simTicks = pair.sys.curTick();
    const ExecContext &sc = pair.sender->ctx;
    const ExecContext &rc = pair.receiver->ctx;
    cost.sendPerMsg = static_cast<double>(
                          sc.regionCount(region::SEND)) / messages;
    cost.recvPerMsg = static_cast<double>(
                          rc.regionCount(region::RECV)) / messages;
    cost.dataPerMsg =
        static_cast<double>(sc.regionCount(region::DATA) +
                            rc.regionCount(region::DATA)) /
        messages;
    cost.kernelSendPerMsg = sc.kernelInstrs / messages;
    cost.kernelRecvPerMsg = rc.kernelInstrs / messages;

    std::uint32_t got = pair.peek(*pair.receiver, 1, checksum_out);
    cost.dataOk =
        got == static_cast<std::uint32_t>(expected_checksum);
    return cost;
}

// Pacing: both sides run with the same iteration period, the receiver
// phase-shifted once at startup so that every receiver check happens
// after the corresponding data arrived (worst-case merged packet via
// EISA is ~10 us) and every sender check happens after the previous
// release arrived. Measured waits then always succeed on their first
// check -- the no-contention fast path Table 1 reports.
constexpr std::uint32_t senderDelay = 2000;     // ~100 us at 60 MHz
constexpr std::uint32_t receiverDelay = senderDelay;
constexpr std::uint32_t receiverPhase = 800;    // ~40 us startup shift

} // namespace

// ---------------------------------------------------------------------
// T1.1 / T1.2: single buffering
// ---------------------------------------------------------------------

PrimitiveCost
runSingleBuffering(bool with_copy, std::uint64_t messages,
                   unsigned payload_words)
{
    Pair pair;
    Process &s = *pair.sender;
    Process &r = *pair.receiver;

    Addr sbuf = s.allocate(1);
    Addr sflag = s.allocate(1);
    Addr rbuf = r.allocate(1);
    Addr rflag = r.allocate(1);
    Addr priv = r.allocate(1);      // copy destination
    Addr out = r.allocate(1);       // checksum output

    // Buffer: sender -> receiver, blocked-write (merges the payload).
    // Flag: bidirectional single-write automatic update (Figure 5).
    auto &k0 = pair.sys.kernel(0);
    auto &k1 = pair.sys.kernel(1);
    SHRIMP_ASSERT(k0.mapDirect(s, sbuf, 1, k1, r, rbuf,
                               UpdateMode::AUTO_BLOCK) == err::OK &&
                  k0.mapDirect(s, sflag, 1, k1, r, rflag,
                               UpdateMode::AUTO_SINGLE) == err::OK &&
                  k1.mapDirect(r, rflag, 1, k0, s, sflag,
                               UpdateMode::AUTO_SINGLE) == err::OK,
                  "single-buffer mappings failed");

    std::uint32_t nbytes = payload_words * 4;

    // Sender: wait-empty (3), payload stores (DATA), publish (1).
    Program ps("sb_sender");
    ps.movi(R6, sflag);
    ps.movi(R4, sbuf);
    ps.movi(R5, 0);
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        ps.addi(R5, 1);
        emitDelay(ps, senderDelay, "d" + tag);
        ps.mark(region::SEND);
        msg::emitSbWaitEmpty(ps, "we" + tag);
        ps.mark(region::DATA);
        for (unsigned j = 0; j < payload_words; ++j)
            ps.st(R4, 4 * j, R5, 4);
        ps.mark(region::SEND);
        msg::emitSbPublish(ps, nbytes);
        ps.mark(region::NONE);
    }
    ps.halt();
    pair.load(k0, s, std::move(ps));

    // Receiver: wait-data (4), optional copy-out (12), release (1).
    Program pr("sb_receiver");
    pr.movi(R6, rflag);
    pr.movi(R3, 0);     // checksum accumulator
    emitDelay(pr, receiverPhase, "phase");
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        emitDelay(pr, receiverDelay, "d" + tag);
        pr.mark(region::RECV);
        msg::emitSbWaitData(pr, "wd" + tag);
        if (with_copy)
            msg::emitSbCopyOut(pr, rbuf, priv, region::RECV,
                               "cp" + tag);
        emitChecksum(pr, with_copy ? priv : rbuf, payload_words,
                     region::RECV);
        msg::emitSbRelease(pr);
        pr.mark(region::NONE);
    }
    pr.movi(R1, out);
    pr.st(R1, 0, R3, 4);
    pr.halt();
    pair.load(k1, r, std::move(pr));

    std::uint64_t expected = 0;
    for (std::uint64_t i = 1; i <= messages; ++i)
        expected += i * payload_words;
    return finishMeasurement(pair, messages, expected, out);
}

// ---------------------------------------------------------------------
// T1.3 - T1.5: double buffering
// ---------------------------------------------------------------------

PrimitiveCost
runDoubleBuffering(int case_no, std::uint64_t messages,
                   unsigned payload_words)
{
    SHRIMP_ASSERT(case_no >= 1 && case_no <= 3,
                  "bad double-buffering case ", case_no);
    Pair pair;
    Process &s = *pair.sender;
    Process &r = *pair.receiver;

    // Two data buffers each side plus the synchronization words. The
    // flag page is mapped bidirectionally; each word has exactly one
    // writer: [0] = sender's barrier round, [4] = data-arrival flag
    // (sender writes), [8] = consumption ack (receiver writes),
    // [12] = receiver's barrier round.
    Addr sbuf = s.allocate(2);
    Addr rbuf = r.allocate(2);
    Addr sflags = s.allocate(1);
    Addr rflags = r.allocate(1);
    Addr sack = sflags + 8;         // ack as seen by the sender
    Addr out = r.allocate(1);

    auto &k0 = pair.sys.kernel(0);
    auto &k1 = pair.sys.kernel(1);
    SHRIMP_ASSERT(k0.mapDirect(s, sbuf, 2, k1, r, rbuf,
                               UpdateMode::AUTO_BLOCK) == err::OK &&
                  k0.mapDirect(s, sflags, 1, k1, r, rflags,
                               UpdateMode::AUTO_SINGLE) == err::OK &&
                  k1.mapDirect(r, rflags, 1, k0, s, sflags,
                               UpdateMode::AUTO_SINGLE) == err::OK,
                  "double-buffer mappings failed");

    bool barrier = case_no != 3;

    // Sender. R3 = buffer pointer, R4 = XOR delta, R5 = iteration,
    // R6 = data-flag address, R2 = ack address (case 3).
    Program ps("db_sender");
    ps.movi(R3, sbuf);
    ps.movi(R4, sbuf ^ (sbuf + PAGE_SIZE));
    ps.movi(R5, case_no == 2 ? 0 : 1);
    if (case_no == 3)
        ps.movi(R0, ~std::uint64_t{0});     // becomes 0 first bump
    if (barrier)
        ps.movi(R2, 0);                     // barrier round
    ps.movi(R6, sflags + 4);
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        ps.mark(region::NONE);
        if (case_no == 3) {
            ps.addi(R5, 1);
            ps.addi(R0, 1);     // iteration - 2
            // R2 is clobbered by the delay; reload the ack address.
            emitDelay(ps, senderDelay, "d" + tag);
            ps.movi(R2, sack);
        }
        // Produce this iteration's data into the current buffer.
        ps.mark(region::DATA);
        for (unsigned j = 0; j < payload_words; ++j)
            ps.st(R3, 4 * j, R5, 4);
        ps.mark(region::SEND);
        switch (case_no) {
          case 1:
            msg::emitDbSwap(ps);
            break;
          case 2:
            msg::emitDb2Send(ps);
            break;
          case 3:
            msg::emitDb3Send(ps, "ack" + tag);
            break;
        }
        ps.mark(region::NONE);
        if (barrier) {
            // R2 persists as the barrier round (cases 1/2 have no
            // other use for it); the sender spins on the receiver's
            // round word arriving at sflags+12.
            msg::emitBarrier(ps, sflags, sflags + 12, R2, "b" + tag);
        }
        if (case_no == 1)
            ps.addi(R5, 1);     // iteration value for the data
    }
    ps.halt();
    pair.load(k0, s, std::move(ps));

    // Receiver. R3 = buffer pointer... but R3 doubles as the checksum
    // accumulator elsewhere; here keep checksum in memory at `out`.
    Program pr("db_receiver");
    pr.movi(R3, rbuf);
    pr.movi(R4, rbuf ^ (rbuf + PAGE_SIZE));
    pr.movi(R5, case_no == 2 ? 0 : 1);
    if (barrier)
        pr.movi(R2, 0);                     // barrier round
    pr.movi(R6, rflags + 4);
    if (case_no == 3)
        emitDelay(pr, receiverPhase, "phase");
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        pr.mark(region::NONE);
        if (case_no == 3) {
            pr.addi(R5, 1);
            emitDelay(pr, receiverDelay, "d" + tag);
            pr.movi(R2, rflags + 8);    // ack-out address
        }
        if (barrier)
            msg::emitBarrier(pr, rflags + 12, rflags, R2, "b" + tag);
        pr.mark(region::RECV);
        switch (case_no) {
          case 1:
            msg::emitDbSwap(pr);
            break;
          case 2:
            msg::emitDb2Recv(pr, "df" + tag);
            break;
          case 3:
            msg::emitDb3Recv(pr, "df" + tag);
            break;
        }
        // Consume: add the words of the just-arrived buffer into the
        // running checksum kept at `out`. Case 1 consumes the buffer
        // the swap exposed (sent this iteration; the barrier ordered
        // it); cases 2/3 likewise read the previous buffer pointer,
        // which the swap just moved away from -- i.e. the buffer that
        // carries this iteration's message.
        pr.mark(region::DATA);
        pr.xor_(R3, R4);        // back to the buffer just filled
        pr.movi(R1, out);
        pr.ld(R0, R1, 0, 4);
        pr.push(R4);
        pr.mov(R4, R0);
        for (unsigned j = 0; j < payload_words; ++j) {
            pr.ld(R0, R3, 4 * j, 4);
            pr.add(R4, R0);
        }
        pr.st(R1, 0, R4, 4);
        pr.pop(R4);
        pr.xor_(R3, R4);        // restore the swapped pointer
        pr.mark(region::NONE);
        if (case_no == 1)
            pr.addi(R5, 1);
    }
    pr.halt();
    pair.load(k1, r, std::move(pr));

    std::uint64_t first = case_no == 2 ? 0 : (case_no == 3 ? 2 : 1);
    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < messages; ++i)
        expected += (first + i) * payload_words;
    return finishMeasurement(pair, messages, expected, out);
}

// ---------------------------------------------------------------------
// T1.6: deliberate update
// ---------------------------------------------------------------------

PrimitiveCost
runDeliberateUpdate(unsigned payload_words)
{
    Pair pair;
    Process &s = *pair.sender;
    Process &r = *pair.receiver;

    Addr sbuf = s.allocate(1);
    Addr rbuf = r.allocate(1);
    Addr out = r.allocate(1);

    auto &k0 = pair.sys.kernel(0);
    auto &k1 = pair.sys.kernel(1);
    SHRIMP_ASSERT(k0.mapDirect(s, sbuf, 1, k1, r, rbuf,
                               UpdateMode::DELIBERATE) == err::OK,
                  "deliberate mapping failed");
    Addr cmd = k0.mapCommandPages(s, sbuf, 1);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(sbuf);

    // Sender: fill the buffer (DATA), then the 13-instruction send
    // macro, then -- once the engine is idle again -- one marked
    // 2-instruction completion check. SEND total: 15 (Table 1).
    Program ps("du_sender");
    ps.movi(R4, sbuf);
    ps.mark(region::DATA);
    for (unsigned j = 0; j < payload_words; ++j)
        ps.sti(R4, 4 * j, 0x600d0000 + j, 4);
    ps.mark(region::NONE);
    ps.movi(R3, sbuf);
    ps.movi(R1, payload_words * 4);
    ps.mark(region::SEND);
    msg::emitDeliberateSendSingle(ps, cmd_delta, "du", "du_multi");
    ps.mark(region::NONE);
    ps.label("du_spin");                // unmarked completion wait
    msg::emitDeliberateCheck(ps);
    ps.jnz("du_spin");
    ps.mark(region::SEND);
    msg::emitDeliberateCheck(ps);       // the counted 2-instr check
    ps.mark(region::NONE);
    ps.halt();
    ps.label("du_multi");               // unused single-page case
    ps.halt();
    pair.load(k0, s, std::move(ps));

    // Receiver: spin for the last word, checksum, report.
    Program pr("du_receiver");
    pr.movi(R6, rbuf);
    pr.label("wait");
    pr.ld(R1, R6, 4 * (payload_words - 1), 4);
    pr.cmpi(R1, 0);
    pr.jz("wait");
    pr.movi(R3, 0);
    emitChecksum(pr, rbuf, payload_words, region::NONE);
    pr.movi(R1, out);
    pr.st(R1, 0, R3, 4);
    pr.halt();
    pair.load(k1, r, std::move(pr));

    std::uint64_t expected = 0;
    for (unsigned j = 0; j < payload_words; ++j)
        expected += 0x600d0000 + j;
    return finishMeasurement(pair, 1, expected, out);
}

// ---------------------------------------------------------------------
// T1.7: user-level NX/2
// ---------------------------------------------------------------------

PrimitiveCost
runUserNx2(std::uint64_t messages, unsigned payload_words)
{
    Pair pair;
    Process &s = *pair.sender;
    Process &r = *pair.receiver;

    Nx2Connection conn = setupNx2Connection(pair.sys, 0, s, 1, r);
    Addr sbuf = s.allocate(1);
    Addr rbuf = r.allocate(1);
    Addr out = r.allocate(1);
    constexpr std::uint32_t kType = 17;

    // Sender: prepare the payload (DATA), call csend. The routine
    // attributes its fast path to SEND and the copy to DATA itself.
    Program ps("nx_sender");
    ps.jmp("main");
    msg::emitNx2Csend(ps, conn.sender, "nx_csend");
    ps.label("main");
    ps.movi(R6, 0);     // iteration
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        ps.addi(R6, 1);
        emitDelay(ps, senderDelay, "d" + tag);
        ps.mark(region::DATA);
        ps.movi(R2, sbuf);
        for (unsigned j = 0; j < payload_words; ++j)
            ps.st(R2, 4 * j, R6, 4);
        ps.mark(region::NONE);
        ps.push(R6);
        ps.movi(R1, kType);
        ps.movi(R2, sbuf);
        ps.movi(R3, payload_words * 4);
        ps.call("nx_csend");
        ps.pop(R6);
    }
    ps.halt();
    pair.load(pair.sys.kernel(0), s, std::move(ps));

    Program pr("nx_receiver");
    pr.jmp("main");
    msg::emitNx2Crecv(pr, conn.receiver, "nx_crecv", "nx_err");
    pr.label("nx_err");
    pr.halt();
    pr.label("main");
    pr.movi(R6, 0);
    emitDelay(pr, receiverPhase, "phase");
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        emitDelay(pr, receiverDelay, "d" + tag);
        pr.push(R6);
        pr.movi(R1, kType);
        pr.movi(R2, rbuf);
        pr.call("nx_crecv");
        pr.pop(R6);
        // Accumulate the checksum in memory (DATA).
        pr.mark(region::DATA);
        pr.movi(R1, out);
        pr.ld(R3, R1, 0, 4);
        pr.movi(R2, rbuf);
        for (unsigned j = 0; j < payload_words; ++j) {
            pr.ld(R0, R2, 4 * j, 4);
            pr.add(R3, R0);
        }
        pr.st(R1, 0, R3, 4);
        pr.mark(region::NONE);
    }
    pr.halt();
    pair.load(pair.sys.kernel(1), r, std::move(pr));

    std::uint64_t expected = 0;
    for (std::uint64_t i = 1; i <= messages; ++i)
        expected += i * payload_words;
    return finishMeasurement(pair, messages, expected, out);
}

// ---------------------------------------------------------------------
// C1: kernel-level NX/2 baseline
// ---------------------------------------------------------------------

PrimitiveCost
runKernelNx2(std::uint64_t messages, unsigned payload_words)
{
    Pair pair;
    Process &s = *pair.sender;
    Process &r = *pair.receiver;

    Addr sbuf = s.allocate(1);
    Addr sargs = s.allocate(1);
    Addr rbuf = r.allocate(1);
    Addr rargs = r.allocate(1);
    Addr out = r.allocate(1);
    constexpr std::uint32_t kType = 29;

    auto poke = [&](Process &proc, NodeId node, Addr vaddr,
                    std::uint32_t value) {
        Translation t = proc.space().translate(vaddr, true);
        pair.sys.node(node).mem.writeInt(t.paddr, value, 4);
    };
    poke(s, 0, sargs + 0, kType);
    poke(s, 0, sargs + 4, static_cast<std::uint32_t>(sbuf));
    poke(s, 0, sargs + 8, payload_words * 4);
    poke(s, 0, sargs + 12, 1);
    poke(s, 0, sargs + 16, r.pid());
    poke(r, 1, rargs + 0, kType);
    poke(r, 1, rargs + 4, static_cast<std::uint32_t>(rbuf));
    poke(r, 1, rargs + 8, payload_words * 4);
    poke(r, 1, rargs + 12, 0);
    poke(r, 1, rargs + 16, 0);

    Program ps("nxk_sender");
    ps.movi(R6, 0);
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        ps.addi(R6, 1);
        emitDelay(ps, senderDelay, "d" + tag);
        ps.mark(region::DATA);
        ps.movi(R2, sbuf);
        for (unsigned j = 0; j < payload_words; ++j)
            ps.st(R2, 4 * j, R6, 4);
        ps.mark(region::SEND);
        ps.movi(R1, sargs);
        ps.syscall(sys::NX_CSEND);
        ps.mark(region::NONE);
    }
    ps.halt();
    pair.load(pair.sys.kernel(0), s, std::move(ps));

    Program pr("nxk_receiver");
    emitDelay(pr, receiverPhase, "phase");
    for (std::uint64_t i = 0; i < messages; ++i) {
        std::string tag = "i" + std::to_string(i);
        emitDelay(pr, receiverDelay, "d" + tag);
        pr.mark(region::RECV);
        pr.movi(R1, rargs);
        pr.syscall(sys::NX_CRECV);
        pr.mark(region::DATA);
        pr.movi(R1, out);
        pr.ld(R3, R1, 0, 4);
        pr.movi(R2, rbuf);
        for (unsigned j = 0; j < payload_words; ++j) {
            pr.ld(R0, R2, 4 * j, 4);
            pr.add(R3, R0);
        }
        pr.st(R1, 0, R3, 4);
        pr.mark(region::NONE);
    }
    pr.halt();
    pair.load(pair.sys.kernel(1), r, std::move(pr));

    std::uint64_t expected = 0;
    for (std::uint64_t i = 1; i <= messages; ++i)
        expected += i * payload_words;
    return finishMeasurement(pair, messages, expected, out);
}

} // namespace table1
} // namespace shrimp
