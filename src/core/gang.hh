/**
 * @file
 * GangCoordinator: machine-wide gang scheduling. At every gang epoch
 * it switches all node kernels to the next gang simultaneously,
 * emulating the coordinated scheduling the CM-5 requires for
 * protection. On SHRIMP it is purely a performance policy -- the
 * hardware protects communication under any schedule -- which is
 * exactly what bench_scheduling measures.
 */

#ifndef SHRIMP_CORE_GANG_HH
#define SHRIMP_CORE_GANG_HH

#include <vector>

#include "core/system.hh"

namespace shrimp
{

/** Rotates every kernel through a fixed list of gangs in lockstep. */
class GangCoordinator : public SimObject
{
  public:
    GangCoordinator(ShrimpSystem &sys, std::vector<std::uint32_t> gangs,
                    Tick epoch)
        : SimObject(sys.eventQueue(), "gangCoordinator"),
          _sys(sys),
          _gangs(std::move(gangs)),
          _epoch(epoch),
          _tick([this] { rotate(); }, "gang epoch")
    {
        SHRIMP_ASSERT(!_gangs.empty(), "no gangs to schedule");
        for (NodeId n = 0; n < _sys.numNodes(); ++n) {
            _sys.kernel(n).setSchedPolicy(SchedPolicy::GANG);
            _sys.kernel(n).setCurrentGang(_gangs[0]);
        }
        schedule(_tick, curTick() + _epoch);
    }

    std::uint32_t currentGang() const { return _gangs[_index]; }
    std::uint64_t rotations() const { return _rotations; }

  private:
    void
    rotate()
    {
        _index = (_index + 1) % _gangs.size();
        ++_rotations;
        for (NodeId n = 0; n < _sys.numNodes(); ++n)
            _sys.kernel(n).setCurrentGang(_gangs[_index]);
        schedule(_tick, curTick() + _epoch);
    }

    ShrimpSystem &_sys;
    std::vector<std::uint32_t> _gangs;
    Tick _epoch;
    std::size_t _index = 0;
    std::uint64_t _rotations = 0;
    EventFunctionWrapper _tick;
};

} // namespace shrimp

#endif // SHRIMP_CORE_GANG_HH
