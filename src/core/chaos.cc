#include "core/chaos.hh"

#include <sstream>

#include "core/system.hh"
#include "os/dsm.hh"
#include "os/map_manager.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace shrimp
{

namespace
{

/** FNV-1a, the determinism probe over the final stats dump. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
fail(ChaosReport &report, std::string msg)
{
    report.ok = false;
    report.violations.push_back(std::move(msg));
}

Router::Port
oppositeOf(Router::Port p)
{
    switch (p) {
      case Router::EAST: return Router::WEST;
      case Router::WEST: return Router::EAST;
      case Router::NORTH: return Router::SOUTH;
      case Router::SOUTH: return Router::NORTH;
      default: return Router::LOCAL;
    }
}

} // namespace

ChaosReport
runChaos(const ChaosParams &p)
{
    ChaosReport report;
    const unsigned n = p.meshWidth * p.meshHeight;
    SHRIMP_ASSERT(n >= 2, "chaos soak needs at least two nodes");
    const unsigned slots = ChaosParams::slots;

    SystemConfig cfg;
    cfg.meshWidth = p.meshWidth;
    cfg.meshHeight = p.meshHeight;
    cfg.traceEnabled = !p.tracePath.empty();
    // The soak's whole point: reliable channels over a fault-tolerant
    // mesh with liveness detection wired into every kernel.
    cfg.ni.reliability.enabled = true;
    cfg.router.faultTolerant = true;
    cfg.health.enabled = true;
    cfg.health.heartbeatPeriod = 100 * ONE_US;
    cfg.health.suspectTimeout = 400 * ONE_US;
    // Dead timeout above the longest link flap: a transient partition
    // must not false-kill a live peer, only a real crash dies.
    cfg.health.deadTimeout = p.maxFlapTicks + ONE_MS;
    // The overload-protection stack soaks alongside the fault stack:
    // AIMD windows fed by router ECN marks, paced + jittered
    // retransmissions, per-NI progress watchdogs, and kernel
    // admission control. The receive FIFO shrinks so an incast burst
    // actually crosses the congestion thresholds.
    cfg.ni.reliability.congestion.enabled = true;
    cfg.ni.reliability.congestion.paceBucketPackets = 8;
    cfg.ni.reliability.congestion.rtoJitterPermille = 250;
    cfg.ni.reliability.congestion.jitterSeed = p.seed ^ 0x5EEDBACCULL;
    cfg.ni.inFifo = PacketFifo::Params{8 * 1024, 6 * 1024, 3 * 1024};
    cfg.router.ecnThresholdPackets = 3;
    cfg.ni.watchdogPeriod = 2 * ONE_MS;
    cfg.admission.enabled = true;
    cfg.admission.windowFullAfter = 2 * ONE_MS;
    // The DSM directory protocol soaks on top of the same fault
    // schedule: page faults, recalls and shootdowns ride the kernel
    // RPC channel while nodes crash and links flap around them.
    if (p.dsmPages > 0) {
        cfg.dsm.enabled = true;
        cfg.dsm.numPages = p.dsmPages;
    }

    ShrimpSystem sys(cfg);
    EventQueue &eq = sys.eventQueue();
    Rng rng(p.seed);

    // ---- one process per node, one mapped page per ordered pair ----
    std::vector<Process *> procs(n);
    std::vector<Addr> srcBase(n), dstBase(n);
    for (NodeId id = 0; id < n; ++id) {
        procs[id] = sys.kernel(id).createProcess("chaos");
        srcBase[id] = procs[id]->allocate(n);
        dstBase[id] = procs[id]->allocate(n);
    }
    auto pairIdx = [n](NodeId s, NodeId d) { return s * n + d; };
    // Every third pair ships by deliberate DMA, the rest by
    // automatic update, so both datapaths soak together.
    auto deliberate = [](NodeId s, NodeId d) {
        return (s + d) % 3 == 0;
    };
    std::vector<Addr> srcPaddr(n * n, 0);
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            UpdateMode mode = deliberate(s, d)
                                  ? UpdateMode::DELIBERATE
                                  : UpdateMode::AUTO_SINGLE;
            std::uint64_t e = sys.kernel(s).mapDirect(
                *procs[s], srcBase[s] + d * PAGE_SIZE, 1,
                sys.kernel(d), *procs[d], dstBase[d] + s * PAGE_SIZE,
                mode);
            SHRIMP_ASSERT(e == err::OK, "chaos boot mapping failed: ",
                          e);
            Translation t = procs[s]->space().translate(
                srcBase[s] + d * PAGE_SIZE, true);
            SHRIMP_ASSERT(t.ok(), "chaos source page not resident");
            srcPaddr[pairIdx(s, d)] = t.paddr;
        }
    }

    // ---- pre-draw the whole schedule from one seeded stream ----

    // Traffic: writesPerPair stores per ordered pair, cycling through
    // `slots` word offsets with a per-pair increasing value.
    struct WriteEv
    {
        Tick at;
        NodeId s, d;
        std::uint32_t value;
    };
    std::vector<WriteEv> writes;
    writes.reserve(static_cast<std::size_t>(n) * n * p.writesPerPair);
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            for (unsigned k = 0; k < p.writesPerPair; ++k) {
                writes.push_back(WriteEv{rng.below(p.duration), s, d,
                                         k + 1});
            }
        }
    }

    // Crash/restart cycles. A cycle outlives the dead timeout so the
    // peers' detectors must actually fire before the node returns.
    std::vector<bool> crashedEver(n, false);
    struct CrashEv
    {
        Tick down, up;
        NodeId node;
    };
    std::vector<CrashEv> crashes;
    for (unsigned i = 0; i < p.crashes; ++i) {
        Tick len = cfg.health.deadTimeout + 3 * ONE_MS +
                   rng.below(3 * ONE_MS);
        if (len + 3 * ONE_MS >= p.duration)
            len = p.duration / 2;
        Tick at = rng.below(p.duration - len - 2 * ONE_MS);
        NodeId victim = static_cast<NodeId>(rng.below(n));
        crashes.push_back(CrashEv{at, at + len, victim});
        crashedEver[victim] = true;
    }

    // Bidirectional transient link outages.
    struct FlapEv
    {
        Tick down, up;
        NodeId a, b;
        Router::Port aPort;
    };
    std::vector<FlapEv> flaps;
    for (unsigned i = 0; i < p.linkFlaps; ++i) {
        NodeId a = static_cast<NodeId>(rng.below(n));
        unsigned x = sys.backplane().xOf(a);
        unsigned y = sys.backplane().yOf(a);
        Router::Port ports[4];
        unsigned nports = 0;
        if (x + 1 < p.meshWidth)
            ports[nports++] = Router::EAST;
        if (x > 0)
            ports[nports++] = Router::WEST;
        if (y + 1 < p.meshHeight)
            ports[nports++] = Router::SOUTH;
        if (y > 0)
            ports[nports++] = Router::NORTH;
        Router::Port port = ports[rng.below(nports)];
        NodeId b = a;
        switch (port) {
          case Router::EAST: b = a + 1; break;
          case Router::WEST: b = a - 1; break;
          case Router::SOUTH: b = a + p.meshWidth; break;
          case Router::NORTH: b = a - p.meshWidth; break;
          default: break;
        }
        Tick len = ONE_MS + rng.below(p.maxFlapTicks > ONE_MS
                                          ? p.maxFlapTicks - ONE_MS
                                          : 1);
        Tick at = rng.below(p.duration > len ? p.duration - len : 1);
        flaps.push_back(FlapEv{at, at + len, a, b, port});
    }

    // Incast overload bursts: every other node volleys stores at one
    // hot node. Burst stores reuse the pair pages with values drawn
    // from the legal range, so the safety and exactness invariants
    // keep holding; the first burst rides the first crash window so
    // retry-storm suppression runs against a dead target.
    const Tick burstSpan = 2 * ONE_MS;
    struct BurstEv
    {
        Tick at;
        NodeId hot;
    };
    std::vector<BurstEv> bursts;
    for (unsigned i = 0; i < p.overloadBursts; ++i) {
        Tick at = rng.below(
            p.duration > burstSpan ? p.duration - burstSpan : 1);
        NodeId hot = static_cast<NodeId>(rng.below(n));
        if (i == 0 && !crashes.empty()) {
            at = crashes[0].down;
            hot = crashes[0].node;
        }
        bursts.push_back(BurstEv{at, hot});
        for (NodeId s = 0; s < n; ++s) {
            if (s == hot)
                continue;
            for (unsigned k = 0; k < p.burstWritesPerSender; ++k) {
                auto v = static_cast<std::uint32_t>(
                    rng.inRange(1, p.writesPerPair));
                writes.push_back(
                    WriteEv{at + rng.below(burstSpan), s, hot, v});
            }
        }
    }

    // DSM ops: randomized read/write acquires from every node, drawn
    // last so the earlier schedules are seed-stable against the knob.
    struct DsmEv
    {
        Tick at;
        NodeId node;
        std::uint32_t page;
        bool write;
    };
    std::vector<DsmEv> dsmOps;
    if (p.dsmPages > 0) {
        for (NodeId id = 0; id < n; ++id) {
            for (unsigned k = 0; k < p.dsmOpsPerNode; ++k) {
                dsmOps.push_back(DsmEv{
                    rng.below(p.duration), id,
                    static_cast<std::uint32_t>(rng.below(p.dsmPages)),
                    rng.below(2) == 1});
            }
        }
    }

    // Partition/heal cycles, drawn after everything else so the
    // earlier schedules are seed-stable against the knob. One node is
    // isolated per cycle; each cycle lives in its own slice of the
    // run so cuts never overlap, and the outage outlives the dead
    // timeout so the majority's detectors really fire before the heal.
    struct PartEv
    {
        Tick down, up;
        NodeId isolated;
    };
    std::vector<PartEv> parts;
    if (p.partitions > 0) {
        Tick slice = p.duration / p.partitions;
        for (unsigned i = 0; i < p.partitions; ++i) {
            Tick len = cfg.health.deadTimeout + 2 * ONE_MS +
                       rng.below(ONE_MS);
            if (len + ONE_MS >= slice)
                len = slice > 2 * ONE_MS ? slice - ONE_MS : slice / 2;
            Tick slack = slice > len + ONE_MS ? slice - len - ONE_MS
                                              : 1;
            Tick at = i * slice + rng.below(slack);
            parts.push_back(
                PartEv{at, at + len,
                       static_cast<NodeId>(rng.below(n))});
        }
    }

    // ---- install the schedule on the event queue ----

    for (const WriteEv &w : writes) {
        NodeId s = w.s, d = w.d;
        Addr paddr = srcPaddr[pairIdx(s, d)] + (w.value - 1) % slots * 4;
        std::uint32_t value = w.value;
        bool dma = deliberate(s, d);
        eq.scheduleFn(
            [&sys, s, d, paddr, value, dma, &report]() {
                if (sys.kernel(s).crashed())
                    return;     // a dead CPU stores nothing
                ++report.writesIssued;
                if (dma) {
                    // Deliberate update: store locally, then claim the
                    // DMA engine for the whole slot region (a busy
                    // engine ignores the start, as the hardware does).
                    sys.node(s).mem.writeInt(paddr, value, 4);
                    Addr base = pageBase(pageOf(paddr));
                    std::uint32_t nwords = ChaosParams::slots;
                    sys.node(s).bus.postWrite(
                        sys.node(s).ni.cmdAddrFor(base), &nwords, 4,
                        BusMaster::CPU, sys.curTick());
                } else {
                    sys.node(s).bus.postWrite(paddr, &value, 4,
                                              BusMaster::CPU,
                                              sys.curTick());
                }
            },
            w.at, EventPriority::DEFAULT, "chaos write");
    }
    for (const CrashEv &c : crashes) {
        NodeId victim = c.node;
        eq.scheduleFn([&sys, victim,
                       &report]() {
            if (!sys.nodeCrashed(victim))
                ++report.crashesInjected;
            sys.crashNode(victim);
        }, c.down, EventPriority::DEFAULT, "chaos crash");
        eq.scheduleFn([&sys, victim]() { sys.restartNode(victim); },
                      c.up, EventPriority::DEFAULT, "chaos restart");
    }
    for (const BurstEv &b : bursts) {
        eq.scheduleFn([&report]() { ++report.overloadBurstsInjected; },
                      b.at, EventPriority::DEFAULT, "chaos burst");
    }
    for (const DsmEv &o : dsmOps) {
        NodeId node = o.node;
        std::uint32_t page = o.page;
        bool write = o.write;
        eq.scheduleFn(
            [&sys, node, page, write, &report]() {
                if (sys.kernel(node).crashed())
                    return;     // a dead CPU faults on nothing
                ++report.dsmOpsIssued;
                sys.kernel(node).dsm()->acquire(
                    page, write, [&report](std::uint64_t st) {
                        if (st == err::HOSTDOWN)
                            ++report.dsmOpsHostdown;
                    });
            },
            o.at, EventPriority::DEFAULT, "chaos dsm op");
    }
    for (const FlapEv &f : flaps) {
        NodeId a = f.a, b = f.b;
        Router::Port ap = f.aPort, bp = oppositeOf(f.aPort);
        eq.scheduleFn([&sys, a, b, ap, bp, &report]() {
            ++report.linkFlapsInjected;
            sys.backplane().router(a).setLinkDead(ap, true);
            sys.backplane().router(b).setLinkDead(bp, true);
        }, f.down, EventPriority::DEFAULT, "chaos link down");
        eq.scheduleFn([&sys, a, b, ap, bp]() {
            sys.backplane().router(a).setLinkDead(ap, false);
            sys.backplane().router(b).setLinkDead(bp, false);
        }, f.up, EventPriority::DEFAULT, "chaos link up");
    }
    for (const PartEv &pe : parts) {
        NodeId iso = pe.isolated;
        eq.scheduleFn(
            [&sys, iso, n, &report]() {
                std::vector<NodeId> minority{iso};
                std::vector<NodeId> majority;
                for (NodeId id = 0; id < n; ++id) {
                    if (id != iso)
                        majority.push_back(id);
                }
                ++report.partitionsInjected;
                sys.partition(minority, majority);
            },
            pe.down, EventPriority::DEFAULT, "chaos partition");
        eq.scheduleFn(
            [&sys, &report]() {
                ++report.healsInjected;
                sys.heal();
            },
            pe.up, EventPriority::DEFAULT, "chaos heal");
    }

    // ---- run: fault phase, forced healing, settle, quiesce ----

    sys.runFor(p.duration);

    sys.heal();     // a partition cycle may still be in force
    for (NodeId id = 0; id < n; ++id) {
        for (Router::Port port : {Router::EAST, Router::WEST, Router::NORTH,
                          Router::SOUTH}) {
            sys.backplane().router(id).setLinkDead(port, false);
        }
        sys.restartNode(id);
    }
    sys.runFor(p.settle);

    // Stop the heartbeat clocks so "quiescent" is checkable: after a
    // short drain nothing may remain in flight anywhere.
    for (NodeId id = 0; id < n; ++id)
        sys.kernel(id).health()->pause();
    sys.runFor(3 * ONE_MS);
    report.endTick = sys.curTick();

    for (NodeId id = 0; id < n; ++id) {
        Router &router = sys.backplane().router(id);
        if (router.queuedPackets() != 0) {
            fail(report, "router " + std::to_string(id) + " wedged: " +
                             std::to_string(router.queuedPackets()) +
                             " packets queued after settle");
        }
        ShrimpNi &ni = sys.node(id).ni;
        if (!ni.outgoingFifo().empty() || !ni.incomingFifo().empty()) {
            fail(report, "node " + std::to_string(id) +
                             " NI FIFOs not drained after settle");
        }
        if (ni.progressStalled()) {
            fail(report, "node " + std::to_string(id) +
                             " watchdog stall survived the settle "
                             "phase");
        }
        for (NodeId peer = 0; peer < n; ++peer) {
            if (peer == id)
                continue;
            std::size_t fill =
                ni.retransmitBuffer().windowFill(peer);
            if (fill != 0) {
                RetransmitBuffer &rb = ni.retransmitBuffer();
                fail(report,
                     "node " + std::to_string(id) + " still holds " +
                         std::to_string(fill) +
                         " unacked packets toward " +
                         std::to_string(peer) + " (failed " +
                         std::to_string(rb.isFailed(peer)) +
                         ", deadline " +
                         std::to_string(rb.armedDeadline(peer)) +
                         ", retries " +
                         std::to_string(rb.headRetries(peer)) +
                         ", cwnd " +
                         std::to_string(rb.congestionWindow(peer)) +
                         ", out " +
                         std::to_string(ni.outgoingFifo().packets()) +
                         ", in " +
                         std::to_string(ni.incomingFifo().packets()) +
                         ", injectReady " +
                         std::to_string(sys.backplane()
                                            .router(id)
                                            .injectReady()) +
                         ", ctrl " +
                         std::to_string(ni.controlQueueDepth()) +
                         ", headSeq " +
                         std::to_string(rb.headSeq(peer)) +
                         ", peerExpects " +
                         std::to_string(sys.node(peer)
                                            .ni.rxExpectedFrom(id)) +
                         ")");
            }
        }
    }

    // ---- data invariants ----
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            // A pair is checkable end-to-end only if no fault touched
            // it: neither endpoint crashed, the channel never failed,
            // and recovery never purged its mapping record.
            bool mappingAlive = false;
            for (const auto &rec :
                 sys.kernel(s).mapManager().outRecords()) {
                if (rec.pid == procs[s]->pid() &&
                    rec.vpage == pageOf(srcBase[s] + d * PAGE_SIZE) &&
                    rec.dstNode == d) {
                    mappingAlive = true;
                }
            }
            // An overload burst may legitimately shed load at the
            // sender (outgoing FIFO overflow drop), so a source that
            // ever dropped cannot promise convergence -- only safety.
            // A partition cycle degrades every pair, not just the
            // isolated node's: each recovery bumps incarnations
            // machine-wide, and every bump resets channels at every
            // peer, legitimately fencing writes queued across it.
            bool exact = p.partitions == 0 &&
                         !crashedEver[s] && !crashedEver[d] &&
                         !sys.kernel(s).peerFailed(d) && mappingAlive &&
                         !deliberate(s, d) &&
                         sys.node(s).ni.sendOverflowDrops() == 0;

            Translation dt = procs[d]->space().translate(
                dstBase[d] + s * PAGE_SIZE, false);
            if (!dt.ok()) {
                fail(report, "destination page of pair " +
                                 std::to_string(s) + "->" +
                                 std::to_string(d) + " not resident");
                continue;
            }
            for (unsigned j = 0; j < slots; ++j) {
                auto v = static_cast<std::uint32_t>(
                    sys.node(d).mem.readInt(dt.paddr + 4 * j, 4));
                // Safety: a destination word is either untouched or a
                // value the source really stored at this offset.
                if (v != 0 && (v > p.writesPerPair ||
                               (v - 1) % slots != j)) {
                    fail(report,
                         "pair " + std::to_string(s) + "->" +
                             std::to_string(d) + " slot " +
                             std::to_string(j) +
                             " holds foreign value " +
                             std::to_string(v));
                }
                if (!exact)
                    continue;
                // Liveness: an untouched pair's page converged to the
                // source's final contents, exactly once and in order.
                auto want = static_cast<std::uint32_t>(
                    sys.node(s).mem.readInt(
                        srcPaddr[pairIdx(s, d)] + 4 * j, 4));
                if (v != want) {
                    fail(report,
                         "pair " + std::to_string(s) + "->" +
                             std::to_string(d) + " slot " +
                             std::to_string(j) + " ended at " +
                             std::to_string(v) + ", source wrote " +
                             std::to_string(want));
                }
            }
            if (exact)
                ++report.pairsVerifiedExact;
        }
    }

    // ---- DSM directory invariants ----
    for (std::uint32_t pg = 0; p.dsmPages > 0 && pg < p.dsmPages;
         ++pg) {
        Dsm &home = *sys.kernel(sys.kernel(0).dsm()->homeNode(pg))
                         .dsm();
        const NodeId homeId = home.homeNode(pg);

        // At most one node machine-wide holds the page exclusively,
        // and any holder is exactly the directory's recorded owner.
        unsigned exclusive = 0;
        for (NodeId id = 0; id < n; ++id) {
            if (sys.kernel(id).dsm()->localState(pg) !=
                DsmPageState::WRITE_EXCLUSIVE) {
                continue;
            }
            ++exclusive;
            if (!home.errored(pg) && home.ownerOf(pg) != id) {
                fail(report,
                     "dsm page " + std::to_string(pg) + ": node " +
                         std::to_string(id) +
                         " is WRITE_EXCLUSIVE but the directory "
                         "records owner " +
                         std::to_string(home.ownerOf(pg)));
            }
        }
        if (exclusive > 1) {
            fail(report, "dsm page " + std::to_string(pg) + " has " +
                             std::to_string(exclusive) +
                             " exclusive owners");
        }

        // A recorded owner is a live peer (or the page is errored,
        // awaiting the lost owner's recovery).
        NodeId owner = home.ownerOf(pg);
        if (owner != INVALID_NODE && !home.errored(pg) &&
            owner != homeId && sys.kernel(homeId).peerFailed(owner)) {
            fail(report, "dsm page " + std::to_string(pg) +
                             " owned by dead node " +
                             std::to_string(owner) +
                             " without being errored");
        }
    }

    // ---- roll up counters and the determinism fingerprint ----
    for (NodeId id = 0; id < n; ++id) {
        HealthMonitor *h = sys.kernel(id).health();
        report.heartbeatsSent += h->heartbeatsSent();
        report.peersDeclaredDead += h->peersDeclaredDead();
        report.peersRecovered += h->peersRecovered();
        report.partitionsDeclared += h->partitionsDeclared();
        report.staleEpochRejects += h->staleEpochRejects();
        Router &router = sys.backplane().router(id);
        report.misroutes += router.misroutes();
        report.routeAroundDrops += router.routeAroundDrops();
        RetransmitBuffer &rb =
            sys.node(id).ni.retransmitBuffer();
        report.retransmits +=
            rb.timeoutRetransmits() + rb.nackRetransmits();
        report.pacedRetransmits += rb.pacedRetransmits();
        ShrimpNi &ni = sys.node(id).ni;
        report.sendsRejected += sys.kernel(id).sendsRejected();
        report.ecnMarksSeen += ni.ecnMarksSeen();
        report.ecnEchoesSent += ni.ecnEchoesSent();
        report.watchdogStalls += ni.watchdogStalls();
        report.niStaleEpochDrops += ni.staleEpochDrops();
        if (p.dsmPages > 0) {
            report.dsmRehomes += sys.kernel(id).dsm()->rehomes();
            report.fencedWritebacks +=
                sys.kernel(id).dsm()->fencedWritebacks();
        }
    }

    // Fence accounting: every layered drop (NI channel-epoch drop,
    // DSM fenced writeback) must have been reported to the health
    // monitor's machine-wide staleEpochRejects counter, so that one
    // number fully accounts for all fenced traffic.
    if (report.niStaleEpochDrops + report.fencedWritebacks >
        report.staleEpochRejects) {
        fail(report,
             "fenced drops unaccounted: ni " +
                 std::to_string(report.niStaleEpochDrops) + " + dsm " +
                 std::to_string(report.fencedWritebacks) +
                 " > staleEpochRejects " +
                 std::to_string(report.staleEpochRejects));
    }

    std::ostringstream stats;
    sys.dumpStatsJson(stats);
    report.statsFingerprint = fnv1a(stats.str());

    if (!p.tracePath.empty() && sys.tracer())
        sys.tracer()->writeFile(p.tracePath);

    return report;
}

} // namespace shrimp
