/**
 * @file
 * SystemConfig: every tunable of a simulated SHRIMP machine in one
 * place, with defaults matching the paper's published hardware: 60 MHz
 * Pentium-class nodes, a 33.3 MHz 64-bit Xpress memory bus, a 33 MB/s
 * burst EISA expansion bus on the prototype receive path, and a
 * Paragon-style 2-D mesh backplane.
 */

#ifndef SHRIMP_CORE_CONFIG_HH
#define SHRIMP_CORE_CONFIG_HH

#include "cpu/cpu.hh"
#include "mem/cache.hh"
#include "mem/eisa_bus.hh"
#include "net/fault_model.hh"
#include "net/router.hh"
#include "nic/shrimp_ni.hh"
#include "os/dsm.hh"
#include "os/health.hh"
#include "os/kernel.hh"
#include "sim/types.hh"

namespace shrimp
{

/** Full machine configuration. */
struct SystemConfig
{
    unsigned meshWidth = 2;
    unsigned meshHeight = 2;
    Addr memBytesPerNode = 4 * 1024 * 1024;
    Tick memAccessLatency = 60 * ONE_NS;

    std::uint64_t xpressBusFreqHz = 33'333'333;
    unsigned xpressBusWidthBytes = 8;

    Cpu::Params cpu{};
    Cache::Params cache{};
    EisaBus::Params eisa{};
    Router::Params router{};
    ShrimpNi::Params ni{};
    Kernel::Costs kernel{};

    /**
     * Kernel send admission control: bounded per-destination send
     * queues plus SUSPECT-peer fail-fast, surfacing overload to the
     * caller as err::WOULDBLOCK instead of unbounded queue growth.
     * Off by default (paper-exact blocking semantics).
     */
    AdmissionParams admission{};

    /**
     * Fault injection applied to every inter-router link at boot
     * (drop/corrupt/duplicate/reorder/outages; deterministic per
     * seed). Defaults to a clean mesh. Pair with ni.reliability to
     * keep mapped pages coherent over the resulting lossy fabric.
     */
    FaultModel::Params linkFaults{};

    /**
     * Heartbeat-based failure detection (health.enabled): every
     * kernel keepalives every peer and declares silent ones
     * SUSPECT/DEAD, driving mapping teardown and recovery. Off by
     * default; ShrimpSystem::crashNode needs it for peers to notice.
     */
    HealthParams health{};

    /**
     * Distributed shared memory over VMMC (dsm.enabled): a window of
     * dsm.numPages pages, home-interleaved across the nodes, demand-
     * paged over the kernel RPC channel with deliberate-DMA page
     * transfers. Requires bootKernelServices. Off by default.
     */
    DsmConfig dsm{};

    /**
     * Use the next-generation datapath: incoming packets bypass the
     * EISA bus and drive the Xpress bus directly (Section 5.1 predicts
     * < 1 us latency and ~70 MB/s with this path).
     */
    bool nextGenDatapath = false;

    /** Wire the kernel channels + NX service at boot. */
    bool bootKernelServices = true;

    /**
     * Record a structured event trace (packet lifecycles, DMA bursts,
     * kernel map/shootdown spans) exportable as Chrome trace-event
     * JSON via ShrimpSystem::tracer(). Off by default: with tracing
     * disabled no trace code runs beyond one pointer test, so timing
     * and statistics are bit-identical to an untraced build.
     */
    bool traceEnabled = false;

    unsigned numNodes() const { return meshWidth * meshHeight; }

    /** A 16-node (4x4) configuration like the paper's estimate. */
    static SystemConfig
    paper16()
    {
        SystemConfig cfg;
        cfg.meshWidth = 4;
        cfg.meshHeight = 4;
        return cfg;
    }
};

} // namespace shrimp

#endif // SHRIMP_CORE_CONFIG_HH
