#include "msg/double_buffer.hh"

namespace shrimp
{
namespace msg
{

void
emitDbSwap(Program &p)
{
    p.xor_(R3, R4);                         // 1: toggle buffer
}

void
emitDb2Send(Program &p)
{
    p.addi(R5, 1);                          // 1: next sequence
    p.st(R6, 0, R5, 4);                     // 2: publish data-arrival
    p.xor_(R3, R4);                         // 3: swap
}

void
emitDb2Recv(Program &p, const std::string &label_prefix)
{
    p.addi(R5, 1);                          // 1: expected sequence
    p.label(label_prefix + "_spin");
    p.ld(R1, R6, 0, 4);                     // 2: load flag
    p.cmp(R1, R5);                          // 3: arrived?
    p.jl(label_prefix + "_spin");           // 4: spin
    p.xor_(R3, R4);                         // 5: swap
}

void
emitDb3Send(Program &p, const std::string &label_prefix)
{
    // R0 holds R5 - 2, maintained by the application loop alongside
    // the iteration counter itself: the previous contents of the
    // buffer being reused were sent two iterations ago.
    p.label(label_prefix + "_ack");
    p.ld(R1, R2, 0, 4);                     // 1: load ack
    p.cmp(R1, R0);                          // 2: previous consumed?
    p.jl(label_prefix + "_ack");            // 3: spin
    p.st(R6, 0, R5, 4);                     // 4: publish this iteration
    p.xor_(R3, R4);                         // 5: swap
}

void
emitDb3Recv(Program &p, const std::string &label_prefix)
{
    p.label(label_prefix + "_data");
    p.ld(R1, R6, 0, 4);                     // 1: load data flag
    p.cmp(R1, R5);                          // 2: this iteration's data?
    p.jl(label_prefix + "_data");           // 3: spin
    p.st(R2, 0, R5, 4);                     // 4: ack consumption
    p.xor_(R3, R4);                         // 5: swap
}

} // namespace msg
} // namespace shrimp
