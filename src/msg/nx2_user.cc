#include "msg/nx2_user.hh"

namespace shrimp
{
namespace msg
{

void
emitNx2Csend(Program &p, const Nx2SenderView &view,
             const std::string &fn_label)
{
    p.label(fn_label);
    p.mark(region::SEND);
    p.push(R4);
    p.push(R5);
    p.push(R6);
    p.movi(R6, view.stateVaddr);
    p.ld(R4, R6, 0, 4);                     // messages sent so far

    // Flow control: wait until sent - credited < ring slots.
    p.label(fn_label + "_credit");
    p.movi(R5, view.creditVaddr);
    p.ld(R0, R5, 0, 4);
    p.addi(R0, nx2RingSlots);
    p.cmp(R4, R0);
    p.jge(fn_label + "_credit");

    // Slot address for message R4.
    p.mov(R0, R4);
    p.andi(R0, nx2RingSlots - 1);
    p.shli(R0, 10);
    p.movi(R5, view.ringVaddr);
    p.add(R5, R0);

    // Header: type and length. The ring page is mapped blocked-write,
    // so these stores and the payload merge into few packets.
    p.st(R5, 4, R1, 4);
    p.st(R5, 8, R3, 4);

    p.mov(R1, R4);                          // R1 <- seq (type done)
    p.mov(R4, R5);                          // R4 <- slot base
    p.addi(R5, nx2PayloadOffset);           // copy destination
    emitCopyWords(p, R2, R5, R3, region::SEND, fn_label + "_cp");

    // Doorbell last: a visible seq+1 implies a complete message.
    p.addi(R1, 1);
    p.st(R4, 0, R1, 4);
    p.st(R6, 0, R1, 4);                     // sent count

    p.pop(R6);
    p.pop(R5);
    p.pop(R4);
    p.mark(region::NONE);
    p.ret();
}

void
emitNx2Crecv(Program &p, const Nx2ReceiverView &view,
             const std::string &fn_label,
             const std::string &error_label)
{
    p.label(fn_label);
    p.mark(region::RECV);
    p.push(R4);
    p.push(R5);
    p.push(R6);
    p.movi(R6, view.stateVaddr);
    p.ld(R4, R6, 0, 4);                     // messages consumed

    // Slot of the next message.
    p.mov(R0, R4);
    p.andi(R0, nx2RingSlots - 1);
    p.shli(R0, 10);
    p.movi(R5, view.ringVaddr);
    p.add(R5, R0);
    p.addi(R4, 1);                          // expected doorbell

    p.label(fn_label + "_spin");
    p.ld(R0, R5, 0, 4);
    p.cmp(R0, R4);
    p.jl(fn_label + "_spin");

    // FIFO-per-type dispatch with a single sender per type reduces to
    // a type check.
    p.ld(R0, R5, 4, 4);
    p.cmp(R0, R1);
    p.jnz(error_label);

    p.ld(R3, R5, 8, 4);                     // nbytes
    p.mov(R1, R3);                          // keep for the return value
    p.addi(R5, nx2PayloadOffset);           // payload source
    emitCopyWords(p, R5, R2, R3, region::RECV, fn_label + "_cp");

    p.st(R6, 0, R4, 4);                     // consumed count
    p.movi(R5, view.creditVaddr);
    p.st(R5, 0, R4, 4);                     // return credit
    p.mov(R0, R1);                          // return nbytes

    p.pop(R6);
    p.pop(R5);
    p.pop(R4);
    p.mark(region::NONE);
    p.ret();
}

} // namespace msg
} // namespace shrimp
