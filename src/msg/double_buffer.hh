/**
 * @file
 * Double-buffered transfer (paper Section 5.2, Figure 6): the loop is
 * unrolled once and two buffers alternate, so consumption of one
 * message overlaps transmission of the next. The per-iteration
 * overhead depends on the loop's synchronization structure; the paper
 * distinguishes three cases (Table 1):
 *
 *  case 1: iteration i+1 uses data of iteration i; the surrounding
 *          barrier provides all synchronization. Overhead: 1 + 1
 *          (swap the buffer pointer on each side).
 *  case 2: the receiver uses data sent in the same iteration, so it
 *          spins on a data-arrival flag; the barrier still covers the
 *          sender. Overhead: 3 + 5.
 *  case 3: no barrier; messages synchronize everything -- receiver
 *          spins for arrival, sender waits for the consumption ack
 *          before reuse. Overhead: 5 + 5.
 *
 * Conventions: R3 = current buffer pointer, R4 = XOR delta between
 * the two buffer addresses, R5 = iteration number (maintained by the
 * application loop, not counted), R6 = flag address, R1 = scratch.
 */

#ifndef SHRIMP_MSG_DOUBLE_BUFFER_HH
#define SHRIMP_MSG_DOUBLE_BUFFER_HH

#include "msg/common.hh"

namespace shrimp
{
namespace msg
{

/** Case 1, both sides: swap the buffer pointer (1 instruction). */
void emitDbSwap(Program &p);

/**
 * Case 2, sender (3): bump the sequence, publish it through the
 * mapped flag, swap. R6 = outgoing flag address, R5 = sequence.
 */
void emitDb2Send(Program &p);

/**
 * Case 2, receiver (5): expect the next sequence, spin for it on the
 * mapped-in flag, swap. R6 = incoming flag address, R5 = sequence.
 */
void emitDb2Recv(Program &p, const std::string &label_prefix);

/**
 * Case 3, sender (5): wait for the ack of the previous use of this
 * buffer, publish the new iteration's flag, swap. R6 = outgoing data
 * flag address, R2 = incoming ack address, R5 = iteration and
 * R0 = iteration - 2 (both maintained by the application loop;
 * iterations start at 2 so R0 starts at 0).
 */
void emitDb3Send(Program &p, const std::string &label_prefix);

/**
 * Case 3, receiver (5): spin for this iteration's data flag, ack the
 * consumption, swap. R6 = incoming data flag address, R2 = outgoing
 * ack address, R5 = iteration.
 */
void emitDb3Recv(Program &p, const std::string &label_prefix);

} // namespace msg
} // namespace shrimp

#endif // SHRIMP_MSG_DOUBLE_BUFFER_HH
