#include "msg/common.hh"

namespace shrimp
{
namespace msg
{

void
emitCopyWords(Program &p, Reg src_reg, Reg dst_reg, Reg count_bytes_reg,
              std::uint8_t overhead_region,
              const std::string &label_prefix)
{
    // Fixed overhead: round the byte count up to words and test for
    // empty. (Attributed to the caller's current region.)
    p.addi(count_bytes_reg, 3);
    p.shri(count_bytes_reg, 2);
    p.cmpi(count_bytes_reg, 0);
    p.jz(label_prefix + "_done");

    // Per-word costs are data movement, not overhead.
    p.mark(region::DATA);
    p.label(label_prefix + "_loop");
    p.ld(R0, src_reg, 0, 4);
    p.st(dst_reg, 0, R0, 4);
    p.addi(src_reg, 4);
    p.addi(dst_reg, 4);
    p.subi(count_bytes_reg, 1);
    p.cmpi(count_bytes_reg, 0);
    p.jnz(label_prefix + "_loop");
    p.mark(overhead_region);

    p.label(label_prefix + "_done");
}

void
emitBarrier(Program &p, Addr my_flag, Addr peer_flag, Reg round_reg,
            const std::string &label_prefix)
{
    p.mark(region::NONE);
    p.addi(round_reg, 1);
    p.movi(R0, my_flag);
    p.st(R0, 0, round_reg, 4);
    p.movi(R0, peer_flag);
    p.label(label_prefix + "_spin");
    p.ld(R1, R0, 0, 4);
    p.cmp(R1, round_reg);
    p.jl(label_prefix + "_spin");
}

} // namespace msg
} // namespace shrimp
