/**
 * @file
 * The deliberate-update send macro (paper Section 4.3 / 5.2).
 *
 * Data written to a deliberate-update page moves only when the
 * process issues an explicit send through the VM-mapped command page:
 * it clears the accumulator, loads the word count, and performs a
 * locked CMPXCHG to the command address corresponding to the
 * transfer's base until the read cycle returns zero (engine free) and
 * the write cycle starts the transfer.
 *
 * The emitted macro handles the paper's page-boundary rule (one page
 * maximum per command; larger sends issue a series of single-page
 * transfers, preparing the next while the current one drains) and
 * reproduces Table 1's costs: 13 instructions to initiate a
 * single-page transfer and 2 to check completion.
 */

#ifndef SHRIMP_MSG_DELIBERATE_HH
#define SHRIMP_MSG_DELIBERATE_HH

#include "msg/common.hh"

namespace shrimp
{
namespace msg
{

/**
 * Emit the single-transfer deliberate send fast path (13
 * instructions when the data fits in one page). Inputs: R3 = buffer
 * virtual address, R1 = byte count. @p cmd_delta is the constant
 * distance from the data window to its command window in the
 * process's virtual address space (kernel-provided at map time).
 * Falls through when the transfer has been accepted; larger-than-
 * one-page requests branch to @p multi_label (see
 * emitDeliberateSendMulti). Clobbers R0-R5.
 */
void emitDeliberateSendSingle(Program &p, std::int64_t cmd_delta,
                              const std::string &label_prefix,
                              const std::string &multi_label);

/**
 * Emit the completion check (2 instructions: a command-page load and
 * a test). R4 must still hold the command address of the transfer
 * (left there by the send macro). ZF is set when the engine is free.
 */
void emitDeliberateCheck(Program &p);

/**
 * Emit the multi-page loop body at @p multi_label: issues single-page
 * transfers back to back, preparing each command while the previous
 * DMA drains, and returns to @p resume_label when every page has been
 * accepted. Clobbers R0-R5.
 */
void emitDeliberateSendMulti(Program &p, std::int64_t cmd_delta,
                             const std::string &multi_label,
                             const std::string &resume_label);

/**
 * Emit a deliberate send whose claim loop backs off while the engine
 * is busy, using the feature Section 4.3 describes: a busy read
 * returns the number of words remaining, so the retry delay is made
 * proportional to it instead of hammering the memory bus with locked
 * cycles. Inputs: R3 = base address (single page), R1 = byte count.
 * Clobbers R0-R5. Counts more instructions than the plain macro when
 * contended but issues far fewer locked bus transactions.
 */
void emitDeliberateSendBackoff(Program &p, std::int64_t cmd_delta,
                               const std::string &label_prefix);

} // namespace msg
} // namespace shrimp

#endif // SHRIMP_MSG_DELIBERATE_HH
