/**
 * @file
 * User-level NX/2-style csend/crecv (paper Section 5.2, "NX/2
 * Primitives").
 *
 * The paper implements the standard Intel NX/2 send/receive
 * semantics -- typed messages, FIFO dispatch per type, buffering --
 * entirely at user level on top of the virtual memory-mapped
 * interface: buffer management moves out of the kernel, so the
 * user/kernel crossing and both kernel copies disappear. Message
 * types are 16-bit and each type has a single sender (the paper's
 * restriction).
 *
 * Implementation: a unidirectional connection is a 4-slot ring of
 * 1 KB slots in a page mapped sender -> receiver with blocked-write
 * automatic update, plus a credit word mapped receiver -> sender.
 * A slot is [seq, type, nbytes, payload]; the sequence word is
 * written last, so (with in-order delivery) a visible sequence
 * implies a complete message. The receiver returns flow-control
 * credit by writing the consumed count through its reverse mapping.
 *
 * The emitted csend/crecv are real subroutines (CALL/RET, saved
 * registers), and their fast paths are what the Table 1 harness
 * measures against the kernel-level NX/2 baseline (222/261
 * instructions plus syscalls and interrupts).
 */

#ifndef SHRIMP_MSG_NX2_USER_HH
#define SHRIMP_MSG_NX2_USER_HH

#include "msg/common.hh"

namespace shrimp
{
namespace msg
{

/** Ring geometry. */
constexpr std::uint64_t nx2RingSlots = 4;
constexpr Addr nx2SlotBytes = 1024;
constexpr Addr nx2PayloadOffset = 12;
constexpr Addr nx2MaxPayload = nx2SlotBytes - nx2PayloadOffset;

/** Sender-side addresses of one connection (all in its own VA). */
struct Nx2SenderView
{
    Addr ringVaddr = 0;     //!< mapped-out ring page
    Addr creditVaddr = 0;   //!< mapped-in credit word
    Addr stateVaddr = 0;    //!< private word: messages sent
};

/** Receiver-side addresses of one connection. */
struct Nx2ReceiverView
{
    Addr ringVaddr = 0;     //!< mapped-in ring page
    Addr creditVaddr = 0;   //!< mapped-out credit word
    Addr stateVaddr = 0;    //!< private word: messages consumed
};

/**
 * Emit the csend subroutine at label @p fn_label.
 * Call with R1 = type, R2 = buffer vaddr, R3 = nbytes (word multiple,
 * <= nx2MaxPayload). Clobbers R0-R5. The fast path is attributed to
 * region::SEND, the payload copy to region::DATA.
 */
void emitNx2Csend(Program &p, const Nx2SenderView &view,
                  const std::string &fn_label);

/**
 * Emit the crecv subroutine at label @p fn_label.
 * Call with R1 = expected type, R2 = destination buffer vaddr.
 * Returns R0 = nbytes. A type mismatch (violating the single-sender-
 * per-type restriction) jumps to @p error_label. Clobbers R1-R5.
 * Fast path attributed to region::RECV, the copy to region::DATA.
 */
void emitNx2Crecv(Program &p, const Nx2ReceiverView &view,
                  const std::string &fn_label,
                  const std::string &error_label);

} // namespace msg
} // namespace shrimp

#endif // SHRIMP_MSG_NX2_USER_HH
