#include "msg/single_buffer.hh"

namespace shrimp
{
namespace msg
{

void
emitSbWaitEmpty(Program &p, const std::string &label_prefix)
{
    p.label(label_prefix + "_empty");
    p.ld(R1, R6, 0, 4);                     // 1: load nbytes
    p.cmpi(R1, 0);                          // 2: empty?
    p.jnz(label_prefix + "_empty");         // 3: spin while full
}

void
emitSbPublish(Program &p, std::uint32_t nbytes)
{
    p.sti(R6, 0, nbytes, 4);                // 4: nbytes <- size
}

void
emitSbWaitData(Program &p, const std::string &label_prefix)
{
    p.label(label_prefix + "_data");
    p.ld(R1, R6, 0, 4);                     // 1: load nbytes
    p.cmpi(R1, 0);                          // 2: arrived?
    p.jz(label_prefix + "_data");           // 3: spin while empty
    p.mov(R2, R1);                          // 4: keep the size
}

void
emitSbRelease(Program &p)
{
    p.sti(R6, 0, 0, 4);                     // 5: nbytes <- 0
}

void
emitSbCopyOut(Program &p, Addr buf_vaddr, Addr dst_vaddr,
              std::uint8_t overhead_region,
              const std::string &label_prefix)
{
    // 12 fixed instructions: set up source, destination and count for
    // the copy (including saving/restoring the registers a library
    // routine may not clobber), then the shared word-copy loop whose
    // 4 fixed instructions are part of this total.
    p.push(R3);                             // 1
    p.push(R4);                             // 2
    p.movi(R3, buf_vaddr);                  // 3
    p.movi(R4, dst_vaddr);                  // 4
    p.mov(R5, R2);                          // 5: count for the loop
    p.mov(R0, R5);                          // 6: (size kept for caller)
    // 7-10: emitCopyWords fixed overhead (round up, test-empty)
    emitCopyWords(p, R3, R4, R5, overhead_region, label_prefix + "_cp");
    p.pop(R4);                              // 11
    p.pop(R3);                              // 12
}

} // namespace msg
} // namespace shrimp
