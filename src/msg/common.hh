/**
 * @file
 * Shared conventions for the user-level message passing library.
 *
 * The library mirrors the paper's Section 5.2: each primitive is a
 * small macro (here: an emitter appending mini-ISA code to a Program)
 * built on the virtual memory-mapped interface. Instruction counts of
 * the emitted fast paths reproduce Table 1.
 *
 * Register conventions used by the emitters (callers preload the
 * "setup" registers outside measured regions, exactly as the paper
 * excludes one-time setup from per-message overhead):
 *
 *   R0  accumulator (CMPXCHG); scratch
 *   R1  scratch / loaded flag values / message size
 *   R2  scratch / word counts
 *   R3  current buffer pointer (double buffering)
 *   R4  buffer-pointer XOR delta (double buffering)
 *   R5  iteration/sequence number
 *   R6  preloaded flag/ack address
 *   R7  stack pointer
 */

#ifndef SHRIMP_MSG_COMMON_HH
#define SHRIMP_MSG_COMMON_HH

#include <cstdint>
#include <string>

#include "cpu/exec_context.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace shrimp
{
namespace msg
{

/**
 * Emit a word-copy loop: copies @p count_bytes_reg bytes (rounded up
 * to words) from the address in @p src_reg to the address in
 * @p dst_reg. The fixed setup instructions are attributed to the
 * caller's current region; the per-word loop body is attributed to
 * region::DATA ("per-byte copying costs", which Table 1 excludes).
 * Clobbers R0, and the three argument registers.
 *
 * @param overhead_region region to restore after the DATA loop
 */
void emitCopyWords(Program &p, Reg src_reg, Reg dst_reg,
                   Reg count_bytes_reg, std::uint8_t overhead_region,
                   const std::string &label_prefix);

/**
 * Emit a simple two-process barrier over a pair of bidirectional
 * automatic-update flag words (each side increments its own flag and
 * spins on the peer's). Used by the double-buffering cases whose
 * loops are barrier-synchronized; the paper does not count barrier
 * cost as message-passing overhead, so the emitted code is attributed
 * to region::NONE.
 *
 * Clobbers R0 and R1. @p my_flag / @p peer_flag are virtual
 * addresses; @p round_reg holds the barrier round (incremented here).
 */
void emitBarrier(Program &p, Addr my_flag, Addr peer_flag,
                 Reg round_reg, const std::string &label_prefix);

} // namespace msg
} // namespace shrimp

#endif // SHRIMP_MSG_COMMON_HH
