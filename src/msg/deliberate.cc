#include "msg/deliberate.hh"

namespace shrimp
{
namespace msg
{

void
emitDeliberateSendSingle(Program &p, std::int64_t cmd_delta,
                         const std::string &label_prefix,
                         const std::string &multi_label)
{
    // 13 instructions on the single-page fast path (Table 1), for a
    // word-multiple byte count in R1 and the base address in R3.
    p.mov(R4, R3);                          // 1: base
    p.andi(R4, PAGE_OFFSET_MASK);           // 2: offset in page
    p.movi(R5, PAGE_SIZE);                  // 3
    p.sub(R5, R4);                          // 4: room to page end
    p.cmp(R5, R1);                          // 5: fits in this page?
    p.jl(multi_label);                      // 6: no -> page series
    p.mov(R2, R1);                          // 7: byte count
    p.shri(R2, 2);                          // 8: word count
    p.mov(R4, R3);                          // 9: command address =
    p.addi(R4, cmd_delta);                  // 10:   base + window delta
    p.label(label_prefix + "_claim");
    p.movi(R0, 0);                          // 11: clear accumulator
    p.cmpxchg(R4, 0, R2, 4);                // 12: locked claim + start
    p.jnz(label_prefix + "_claim");         // 13: retry while busy
}

void
emitDeliberateCheck(Program &p)
{
    // 2 instructions (Table 1): a command-page read returns 0 when
    // the engine is free, else words-remaining + address-match status.
    p.ld(R1, R4, 0, 4);                     // 1: status
    p.cmpi(R1, 0);                          // 2: done?
}

void
emitDeliberateSendBackoff(Program &p, std::int64_t cmd_delta,
                          const std::string &label_prefix)
{
    // Word count and command address, as in the plain macro.
    p.mov(R2, R1);
    p.shri(R2, 2);
    p.mov(R4, R3);
    p.addi(R4, cmd_delta);

    p.label(label_prefix + "_claim");
    p.movi(R0, 0);
    p.cmpxchg(R4, 0, R2, 4);
    p.jz(label_prefix + "_done");

    // Busy: R0 now holds (words_remaining << 1) | addr_match. Back
    // off for a time proportional to the remaining words -- roughly
    // the time the engine needs -- instead of spinning locked cycles
    // on the bus.
    p.shri(R0, 3);      // (status >> 1) / 4 = words remaining / 4
    p.label(label_prefix + "_backoff");
    p.cmpi(R0, 0);
    p.jz(label_prefix + "_claim");
    p.subi(R0, 1);
    p.jmp(label_prefix + "_backoff");

    p.label(label_prefix + "_done");
}

void
emitDeliberateSendMulti(Program &p, std::int64_t cmd_delta,
                        const std::string &multi_label,
                        const std::string &resume_label)
{
    // Series of single-page transfers: R3 = cursor, R1 = bytes left,
    // R5 = room in the current page (already computed by the fast
    // path on entry). The claim spin naturally overlaps preparing the
    // next command with the current transfer's outgoing DMA.
    p.label(multi_label);
    p.cmp(R1, R5);
    p.jge(multi_label + "_chunk");
    p.mov(R5, R1);                          // last, partial chunk
    p.label(multi_label + "_chunk");
    p.mov(R2, R5);
    p.shri(R2, 2);
    p.mov(R4, R3);
    p.addi(R4, cmd_delta);
    p.label(multi_label + "_claim");
    p.movi(R0, 0);
    p.cmpxchg(R4, 0, R2, 4);
    p.jnz(multi_label + "_claim");
    p.add(R3, R5);                          // advance cursor
    p.sub(R1, R5);                          // bytes left
    p.cmpi(R1, 0);
    p.jz(resume_label);
    p.movi(R5, PAGE_SIZE);                  // full pages from now on
    p.jmp(multi_label);
}

} // namespace msg
} // namespace shrimp
