/**
 * @file
 * Single-buffered send/receive (paper Section 5.2, Figure 5).
 *
 * One memory buffer, mapped from sender to receiver with automatic
 * update, plus a single `nbytes` flag word mapped for bidirectional
 * automatic update, synchronizes the two processes:
 *
 *   sender:   wait nbytes == 0; fill buffer; nbytes = size
 *   receiver: wait nbytes != 0; consume;     nbytes = 0
 *
 * Emitted fast-path costs (Table 1): 4 instructions on the sender
 * (3-instruction empty-check executed once plus the flag store) and 5
 * on the receiver (3-instruction arrival check, saving the size, and
 * the flag clear). The optional receive-side copy adds 12 fixed
 * instructions plus per-word costs attributed to region::DATA.
 */

#ifndef SHRIMP_MSG_SINGLE_BUFFER_HH
#define SHRIMP_MSG_SINGLE_BUFFER_HH

#include "msg/common.hh"

namespace shrimp
{
namespace msg
{

/**
 * Sender fast path: wait-until-empty then publish. The caller emits
 * the data stores into the mapped buffer between the two calls (those
 * stores ARE the message; the paper counts only synchronization as
 * overhead). R6 must hold the flag's virtual address. Clobbers R1.
 */
void emitSbWaitEmpty(Program &p, const std::string &label_prefix);

/** Publish the message: nbytes <- size (one store). */
void emitSbPublish(Program &p, std::uint32_t nbytes);

/**
 * Receiver fast path: wait for data, keep the size in R2, release the
 * buffer. R6 must hold the flag's virtual address. Clobbers R1, R2.
 */
void emitSbWaitData(Program &p, const std::string &label_prefix);
void emitSbRelease(Program &p);

/**
 * Receive-side copy of the arrived message out of the receive buffer
 * (12 fixed instructions + per-word DATA costs). @p buf_vaddr is the
 * receive buffer, @p dst_vaddr the private destination; the byte
 * count is taken from R2 (set by emitSbWaitData). Clobbers R0-R5.
 */
void emitSbCopyOut(Program &p, Addr buf_vaddr, Addr dst_vaddr,
                   std::uint8_t overhead_region,
                   const std::string &label_prefix);

} // namespace msg
} // namespace shrimp

#endif // SHRIMP_MSG_SINGLE_BUFFER_HH
