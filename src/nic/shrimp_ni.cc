#include "nic/shrimp_ni.hh"

#include <cstring>

#include "sim/logging.hh"

namespace shrimp
{

const char *
updateModeName(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::NONE: return "none";
      case UpdateMode::AUTO_SINGLE: return "auto-single";
      case UpdateMode::AUTO_BLOCK: return "auto-block";
      case UpdateMode::DELIBERATE: return "deliberate";
    }
    return "unknown";
}

ShrimpNi::ShrimpNi(EventQueue &eq, std::string name, NodeId node,
                   const Params &params, XpressBus &bus, EisaBus &eisa,
                   MainMemory &mem, MeshBackplane &backplane)
    : SimObject(eq, std::move(name)),
      _node(node),
      _params(params),
      _bus(bus),
      _eisa(eisa),
      _mem(mem),
      _backplane(backplane),
      _router(backplane.router(node)),
      _nipt(mem.numPages()),
      _outFifo(this->name() + ".outFifo", params.outFifo),
      _inFifo(this->name() + ".inFifo", params.inFifo),
      _dma(eq, this->name() + ".dma", params.dma, bus, mem,
           DeliberateDma::Hooks{
               [this](Addr paddr) { return _nipt.lookupOut(paddr); },
               [this](Addr wire) { return _outFifo.wouldFit(wire); },
               [this](NodeId dst, Addr dst_addr,
                      std::vector<std::uint8_t> &&payload) {
                   // Flush any pending merge first so all traffic to a
                   // given destination stays in program order.
                   flushMergeBuffer();
                   emitPacket(dst, dst_addr, std::move(payload),
                              curTick() + _params.packetizeLatency);
               },
               [this] { _dmaWaitingForFifo = true; }}),
      _injectEvent([this] { tryInject(); }, "ni inject"),
      _drainEvent([this] { drainIncoming(); }, "ni drain"),
      _mergeTimerEvent([this] { flushMergeBuffer(); }, "merge timeout"),
      _stats(this->name())
{
    SHRIMP_ASSERT(params.cmdBase >= mem.size(),
                  "command space overlaps DRAM");
    SHRIMP_ASSERT(params.maxPayloadBytes >= 8 &&
                  params.maxPayloadBytes <= PAGE_SIZE,
                  "bad max payload size");

    _stats.addStat(&_pktsSent);
    _stats.addStat(&_pktsDelivered);
    _stats.addStat(&_bytesSent);
    _stats.addStat(&_bytesDelivered);
    _stats.addStat(&_dropsCrc);
    _stats.addStat(&_dropsUnmapped);
    _stats.addStat(&_mergedWrites);
    _stats.addStat(&_mergeFlushTimeout);
    _stats.addStat(&_ignoredStarts);
    _stats.addStat(&_arrivalInterrupts);
    _stats.addStat(&_deliveryLatency);

    // Wire ourselves into the node and the mesh.
    bus.addSnooper(this);
    bus.addTarget(params.cmdBase, mem.size(), this);
    _router.setSink(this);
    _router.setInjectWaiter([this] {
        if (!_injectEvent.scheduled())
            reschedule(_injectEvent, curTick());
    });

    // FIFO threshold plumbing.
    _outFifo.onAboveThreshold = [this] {
        _outAboveThreshold = true;
        if (onOutFifoAboveThreshold)
            onOutFifoAboveThreshold();
    };
    _outFifo.onDrained = [this] {
        if (_outAboveThreshold) {
            _outAboveThreshold = false;
            if (onOutFifoDrained)
                onOutFifoDrained();
        }
        if (_dmaWaitingForFifo) {
            _dmaWaitingForFifo = false;
            _dma.kick();
        }
    };
    _inFifo.onAboveThreshold = [this] { _accepting = false; };
    _inFifo.onDrained = [this] {
        if (!_accepting) {
            _accepting = true;
            _router.sinkReadyAgain();
        }
    };
}

// ---------------------------------------------------------------------
// Outgoing path: snooped automatic updates
// ---------------------------------------------------------------------

void
ShrimpNi::snoopWrite(Addr paddr, const void *buf, Addr len,
                     BusMaster master)
{
    // Only processor stores trigger automatic updates. Incoming DMA
    // also appears on the memory bus, but forwarding it would echo
    // bidirectional mappings back and forth forever; the hardware's
    // outgoing datapath captures CPU cycles only.
    if (master != BusMaster::CPU || !isDram(paddr))
        return;

    OutLookup lookup = _nipt.lookupOut(paddr);
    if (!lookup.mapped)
        return;

    switch (lookup.mode) {
      case UpdateMode::AUTO_SINGLE:
        handleAutoSingle(lookup, buf, len);
        break;
      case UpdateMode::AUTO_BLOCK:
        handleAutoBlock(lookup, paddr, buf, len);
        break;
      case UpdateMode::DELIBERATE:
      case UpdateMode::NONE:
        break;      // data moves only via an explicit send
    }
}

void
ShrimpNi::handleAutoSingle(const OutLookup &lookup, const void *buf,
                           Addr len)
{
    // Keep wire order equal to store order even when single-write and
    // blocked-write pages interleave toward the same destination.
    flushMergeBuffer();

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
    std::memcpy(payload.data(), buf, payload.size());
    emitPacket(lookup.dstNode, lookup.dstAddr, std::move(payload),
               curTick() + _params.packetizeLatency);
}

void
ShrimpNi::handleAutoBlock(const OutLookup &lookup, Addr paddr,
                          const void *buf, Addr len)
{
    Tick now = curTick();

    bool mergeable =
        _merge.valid && _merge.dstNode == lookup.dstNode &&
        paddr == _merge.srcNext &&
        pageOf(paddr) == pageOf(_merge.srcNext - 1) &&
        _merge.data.size() + len <= _params.maxPayloadBytes &&
        now - _merge.lastWrite <= _params.mergeTimeout;

    if (!mergeable)
        flushMergeBuffer();

    if (!_merge.valid) {
        _merge.valid = true;
        _merge.dstNode = lookup.dstNode;
        _merge.dstStart = lookup.dstAddr;
        _merge.srcNext = paddr;
        _merge.data.clear();
        _merge.lastWrite = now;
    } else {
        ++_mergedWrites;
    }

    const auto *bytes = static_cast<const std::uint8_t *>(buf);
    _merge.data.insert(_merge.data.end(), bytes, bytes + len);
    _merge.srcNext += len;
    _merge.lastWrite = now;

    if (_merge.data.size() >= _params.maxPayloadBytes) {
        flushMergeBuffer();
    } else {
        // (Re)arm the merge window timer.
        reschedule(_mergeTimerEvent, now + _params.mergeTimeout);
    }
}

void
ShrimpNi::flushMergeBuffer()
{
    if (_mergeTimerEvent.scheduled())
        deschedule(_mergeTimerEvent);
    if (!_merge.valid)
        return;

    _merge.valid = false;
    emitPacket(_merge.dstNode, _merge.dstStart, std::move(_merge.data),
               curTick() + _params.packetizeLatency);
    _merge.data = {};
}

void
ShrimpNi::emitPacket(NodeId dst, Addr dst_addr,
                     std::vector<std::uint8_t> &&payload, Tick ready)
{
    NetPacket pkt;
    pkt.srcNode = _node;
    pkt.dstNode = dst;
    pkt.dstX = static_cast<std::uint16_t>(_backplane.xOf(dst));
    pkt.dstY = static_cast<std::uint16_t>(_backplane.yOf(dst));
    pkt.dstPaddr = dst_addr;
    pkt.payload = std::move(payload);
    pkt.sealCrc();
    pkt.injectedAt = curTick();
    pkt.seq = _nextSeq++;

    if (_corruptNext) {
        _corruptNext = false;
        if (!pkt.payload.empty())
            pkt.payload[0] ^= 0x01;     // CRC now mismatches
        else
            pkt.crc ^= 0x0001;
    }

    SHRIMP_DTRACE("Nic", curTick(), name(),
                  "packet -> node ", dst, " paddr ", dst_addr,
                  " bytes ", pkt.payload.size(), " seq ", pkt.seq);
    _bytesSent += pkt.payload.size();
    _outFifo.push(std::move(pkt), ready);

    if (!_injectEvent.scheduled())
        reschedule(_injectEvent, curTick());
}

void
ShrimpNi::tryInject()
{
    Tick now = curTick();

    if (_outFifo.empty())
        return;

    const PacketFifo::Item &head = _outFifo.front();
    Tick ready = head.ready > _nextInjectOk ? head.ready : _nextInjectOk;
    if (ready > now) {
        reschedule(_injectEvent, ready);
        return;
    }

    if (!_router.injectReady())
        return;     // inject waiter will kick us

    NetPacket pkt = _outFifo.pop();
    Tick ser = _router.serializationTime(pkt);
    _nextInjectOk = now + _params.injectOverhead + ser;
    ++_pktsSent;
    _router.inject(std::move(pkt));

    if (!_outFifo.empty())
        reschedule(_injectEvent, _nextInjectOk);
}

// ---------------------------------------------------------------------
// Command space (BusTarget)
// ---------------------------------------------------------------------

std::uint64_t
ShrimpNi::busRead(Addr paddr, unsigned size)
{
    (void)size;
    Addr rel = paddr - _params.cmdBase;
    Addr off = pageOffset(rel);
    if (off >= ctrlRegionOffset)
        return 0;
    // Status of the DMA engine, relative to the corresponding source
    // physical address.
    return _dma.statusRead(rel);
}

void
ShrimpNi::busWrite(Addr paddr, const void *buf, Addr len)
{
    Addr rel = paddr - _params.cmdBase;
    Addr off = pageOffset(rel);
    PageNum page = pageOf(rel);

    std::uint64_t value = 0;
    std::memcpy(&value, buf, len < 8 ? len : 8);

    if (off == ctrlModeOffset) {
        NiptEntry &e = _nipt.entry(page);
        UpdateMode mode;
        switch (static_cast<ModeCommand>(value)) {
          case ModeCommand::AUTO_SINGLE:
            mode = UpdateMode::AUTO_SINGLE;
            break;
          case ModeCommand::AUTO_BLOCK:
            mode = UpdateMode::AUTO_BLOCK;
            break;
          case ModeCommand::DELIBERATE:
            mode = UpdateMode::DELIBERATE;
            break;
          default:
            return;     // unknown command; hardware ignores
        }
        // Mode-switch commands apply to existing mappings only; the
        // mapping itself (destination, protection) is kernel business.
        if (e.outLow.valid())
            e.outLow.mode = mode;
        if (e.outHigh.valid())
            e.outHigh.mode = mode;
        return;
    }

    if (off == ctrlIntrOffset) {
        _nipt.entry(page).interruptOnArrival = value != 0;
        return;
    }

    // Deliberate-update start: value is the word count, the offset is
    // the transfer's base offset within the source page.
    auto nwords = static_cast<std::uint32_t>(value);
    if (nwords == 0 ||
        off + Addr{nwords} * DeliberateDma::wordBytes > PAGE_SIZE) {
        ++_ignoredStarts;
        return;
    }
    if (!_dma.start(rel, nwords))
        ++_ignoredStarts;
}

// ---------------------------------------------------------------------
// Incoming path
// ---------------------------------------------------------------------

void
ShrimpNi::sinkDeliver(NetPacket &&pkt)
{
    // Verify the absolute mesh coordinates and the CRC (Section 3.1).
    if (pkt.dstX != _backplane.xOf(_node) ||
        pkt.dstY != _backplane.yOf(_node) || !pkt.crcOk()) {
        SHRIMP_DTRACE("Nic", curTick(), name(),
                      "DROP bad crc/coords from node ", pkt.srcNode,
                      " seq ", pkt.seq);
        ++_dropsCrc;
        if (onDropped)
            onDropped(pkt);
        return;
    }

    _inFifo.push(std::move(pkt), curTick());
    if (!_draining && !_drainEvent.scheduled())
        reschedule(_drainEvent, curTick());
}

void
ShrimpNi::drainIncoming()
{
    if (_draining || _inFifo.empty())
        return;

    Tick now = curTick();

    // NIPT check at the head of the FIFO (Section 4): drop packets for
    // pages that are not mapped in.
    {
        const PacketFifo::Item &head = _inFifo.front();
        if (!_nipt.mappedIn(pageOf(head.pkt.dstPaddr))) {
            NetPacket dropped = _inFifo.pop();
            ++_dropsUnmapped;
            if (onDropped)
                onDropped(dropped);
            if (!_inFifo.empty())
                reschedule(_drainEvent, now);
            return;
        }
    }

    // Coalesce a run of contiguous, mapped-in packets into one DMA
    // burst so back-to-back page transfers approach the EISA burst
    // bandwidth (33 MB/s) instead of paying setup per packet.
    std::size_t count = 0;
    Addr bytes = 0;
    Addr next_addr = _inFifo.front().pkt.dstPaddr;
    while (count < _inFifo.packets()) {
        const PacketFifo::Item &item = _inFifo.at(count);
        if (item.ready > now)
            break;
        if (item.pkt.dstPaddr != next_addr)
            break;
        if (!_nipt.mappedIn(pageOf(item.pkt.dstPaddr)))
            break;
        if (bytes + item.pkt.payload.size() > _params.maxDrainBurstBytes
            && count > 0) {
            break;
        }
        bytes += item.pkt.payload.size();
        next_addr += item.pkt.payload.size();
        ++count;
    }
    if (count == 0) {
        reschedule(_drainEvent, _inFifo.front().ready);
        return;
    }

    Tick done;
    if (_params.eisaIncoming) {
        EisaBus::Grant g = _eisa.acquire(now, bytes);
        // The EISA bridge's writes also occupy the memory bus.
        _bus.acquire(g.start, bytes);
        done = g.end;
    } else {
        XpressBus::Grant g = _bus.acquire(now, bytes);
        done = g.end + _mem.accessLatency();
    }

    _draining = true;
    eventQueue().scheduleFn(
        [this, count]() {
            _draining = false;
            for (std::size_t i = 0; i < count; ++i)
                commitArrival(_inFifo.pop());
            if (!_inFifo.empty() && !_drainEvent.scheduled())
                reschedule(_drainEvent, curTick());
        },
        done, EventPriority::DEFAULT, "incoming drain complete");
}

void
ShrimpNi::commitArrival(NetPacket &&pkt)
{
    // Functional write into main memory; snooping caches invalidate.
    _bus.functionalWrite(pkt.dstPaddr, pkt.payload.data(),
                         pkt.payload.size(), BusMaster::EISA_DMA);
    SHRIMP_DTRACE("Nic", curTick(), name(),
                  "delivered from node ", pkt.srcNode, " paddr ",
                  pkt.dstPaddr, " bytes ", pkt.payload.size());
    ++_pktsDelivered;
    _bytesDelivered += pkt.payload.size();
    _deliveryLatency.sample(
        static_cast<double>(curTick() - pkt.injectedAt));

    PageNum page = pageOf(pkt.dstPaddr);
    if (_nipt.entry(page).interruptOnArrival && onArrival) {
        ++_arrivalInterrupts;
        onArrival(page, pkt.dstPaddr);
    }
    if (onDelivered)
        onDelivered(pkt, curTick());
}

} // namespace shrimp
