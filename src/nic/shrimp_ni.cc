#include "nic/shrimp_ni.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

const char *
updateModeName(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::NONE: return "none";
      case UpdateMode::AUTO_SINGLE: return "auto-single";
      case UpdateMode::AUTO_BLOCK: return "auto-block";
      case UpdateMode::DELIBERATE: return "deliberate";
    }
    return "unknown";
}

ShrimpNi::ShrimpNi(EventQueue &eq, std::string name, NodeId node,
                   const Params &params, XpressBus &bus, EisaBus &eisa,
                   MainMemory &mem, MeshBackplane &backplane)
    : SimObject(eq, std::move(name)),
      _node(node),
      _params(params),
      _bus(bus),
      _eisa(eisa),
      _mem(mem),
      _backplane(backplane),
      _router(backplane.router(node)),
      _nipt(mem.numPages()),
      _outFifo(this->name() + ".outFifo", params.outFifo),
      _inFifo(this->name() + ".inFifo", params.inFifo),
      _dma(eq, this->name() + ".dma", params.dma, bus, mem,
           DeliberateDma::Hooks{
               [this](Addr paddr) { return _nipt.lookupOut(paddr); },
               [this](Addr wire) { return _outFifo.wouldFit(wire); },
               [this](NodeId dst, Addr dst_addr,
                      std::vector<std::uint8_t> &&payload) {
                   // Flush any pending merge first so all traffic to a
                   // given destination stays in program order.
                   flushMergeBuffer();
                   emitPacket(dst, dst_addr, std::move(payload),
                              curTick() + _params.packetizeLatency);
               },
               [this] { _dmaWaitingForFifo = true; }}),
      _injectEvent([this] { tryInject(); }, "ni inject"),
      _drainEvent([this] { drainIncoming(); }, "ni drain"),
      _mergeTimerEvent([this] { flushMergeBuffer(); }, "merge timeout"),
      _ackEvent([this] { flushPendingAcks(); }, "delayed ack"),
      _watchdogEvent([this] { watchdogTick(); }, "progress watchdog"),
      _stats(this->name())
{
    SHRIMP_ASSERT(params.cmdBase >= mem.size(),
                  "command space overlaps DRAM");
    SHRIMP_ASSERT(params.maxPayloadBytes >= 8 &&
                  params.maxPayloadBytes <= PAGE_SIZE,
                  "bad max payload size");

    _stats.addStat(&_pktsSent);
    _stats.addStat(&_pktsDelivered);
    _stats.addStat(&_bytesSent);
    _stats.addStat(&_bytesDelivered);
    _stats.addStat(&_dropsCrc);
    _stats.addStat(&_dropsUnmapped);
    _stats.addStat(&_mergedWrites);
    _stats.addStat(&_mergeFlushTimeout);
    _stats.addStat(&_ignoredStarts);
    _stats.addStat(&_arrivalInterrupts);
    _stats.addStat(&_relAcksSent);
    _stats.addStat(&_relAcksRcvd);
    _stats.addStat(&_relNacksSent);
    _stats.addStat(&_relNacksRcvd);
    _stats.addStat(&_relDupsSuppressed);
    _stats.addStat(&_relReorderFixes);
    _stats.addStat(&_relOooDrops);
    _stats.addStat(&_relMappingsErrored);
    _stats.addStat(&_relDroppedFailed);
    _stats.addStat(&_crashDrops);
    _stats.addStat(&_heartbeatsForwarded);
    _stats.addStat(&_sendOverflowDrops);
    _stats.addStat(&_ecnMarksSeen);
    _stats.addStat(&_ecnEchoesSent);
    _stats.addStat(&_watchdogStalls);
    _stats.addStat(&_staleEpochDrops);
    _stats.addStat(&_deliveryLatency);
    _stats.addStat(&_deliveryLatencyHist);

    if (_params.reliability.enabled) {
        _rx.resize(backplane.numNodes());
        // Salt the backoff-jitter seed per node so every NI draws a
        // distinct (but still seed-reproducible) jitter sequence;
        // SplitMix64 seeding decorrelates the nearby values.
        ReliabilityParams rel = _params.reliability;
        rel.congestion.jitterSeed += node;
        _retx = std::make_unique<RetransmitBuffer>(
            eq, this->name() + ".retx", rel,
            backplane.numNodes(),
            RetransmitBuffer::Hooks{
                [this](NetPacket &&pkt) { queueControl(std::move(pkt)); },
                [this](NodeId dst) { handleChannelFailure(dst); },
                [this] {
                    if (!_injectEvent.scheduled())
                        reschedule(_injectEvent, curTick());
                }},
            &_stats);
    }

    // Wire ourselves into the node and the mesh.
    bus.addSnooper(this);
    bus.addTarget(params.cmdBase, mem.size(), this);
    _router.setSink(this);
    _router.setInjectWaiter([this] {
        if (!_injectEvent.scheduled())
            reschedule(_injectEvent, curTick());
    });

    // FIFO threshold plumbing.
    _outFifo.onAboveThreshold = [this] {
        _outAboveThreshold = true;
        if (onOutFifoAboveThreshold)
            onOutFifoAboveThreshold();
    };
    _outFifo.onDrained = [this] {
        if (_outAboveThreshold) {
            _outAboveThreshold = false;
            if (onOutFifoDrained)
                onOutFifoDrained();
        }
        if (_dmaWaitingForFifo) {
            _dmaWaitingForFifo = false;
            _dma.kick();
        }
    };
    _inFifo.onAboveThreshold = [this] { _accepting = false; };
    _inFifo.onDrained = [this] {
        if (!_accepting) {
            _accepting = true;
            _router.sinkReadyAgain();
        }
    };

    if (_params.watchdogPeriod > 0)
        schedule(_watchdogEvent, _params.watchdogPeriod);
}

// ---------------------------------------------------------------------
// Outgoing path: snooped automatic updates
// ---------------------------------------------------------------------

void
ShrimpNi::snoopWrite(Addr paddr, const void *buf, Addr len,
                     BusMaster master)
{
    // Only processor stores trigger automatic updates. Incoming DMA
    // also appears on the memory bus, but forwarding it would echo
    // bidirectional mappings back and forth forever; the hardware's
    // outgoing datapath captures CPU cycles only.
    if (_crashed || master != BusMaster::CPU || !isDram(paddr))
        return;

    OutLookup lookup = _nipt.lookupOut(paddr);
    if (!lookup.mapped)
        return;

    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "ni", "storeSnooped",
                   {trace::arg("paddr", paddr), trace::arg("len", len)});
    }

    switch (lookup.mode) {
      case UpdateMode::AUTO_SINGLE:
        handleAutoSingle(lookup, buf, len);
        break;
      case UpdateMode::AUTO_BLOCK:
        handleAutoBlock(lookup, paddr, buf, len);
        break;
      case UpdateMode::DELIBERATE:
      case UpdateMode::NONE:
        break;      // data moves only via an explicit send
    }
}

void
ShrimpNi::handleAutoSingle(const OutLookup &lookup, const void *buf,
                           Addr len)
{
    // Keep wire order equal to store order even when single-write and
    // blocked-write pages interleave toward the same destination.
    flushMergeBuffer();

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
    std::memcpy(payload.data(), buf, payload.size());
    emitPacket(lookup.dstNode, lookup.dstAddr, std::move(payload),
               curTick() + _params.packetizeLatency);
}

void
ShrimpNi::handleAutoBlock(const OutLookup &lookup, Addr paddr,
                          const void *buf, Addr len)
{
    Tick now = curTick();

    bool mergeable =
        _merge.valid && _merge.dstNode == lookup.dstNode &&
        paddr == _merge.srcNext &&
        pageOf(paddr) == pageOf(_merge.srcNext - 1) &&
        _merge.data.size() + len <= _params.maxPayloadBytes &&
        now - _merge.lastWrite <= _params.mergeTimeout;

    if (!mergeable)
        flushMergeBuffer();

    if (!_merge.valid) {
        _merge.valid = true;
        _merge.dstNode = lookup.dstNode;
        _merge.dstStart = lookup.dstAddr;
        _merge.srcNext = paddr;
        _merge.data.clear();
        _merge.lastWrite = now;
    } else {
        ++_mergedWrites;
    }

    const auto *bytes = static_cast<const std::uint8_t *>(buf);
    _merge.data.insert(_merge.data.end(), bytes, bytes + len);
    _merge.srcNext += len;
    _merge.lastWrite = now;

    if (_merge.data.size() >= _params.maxPayloadBytes) {
        flushMergeBuffer();
    } else {
        // (Re)arm the merge window timer.
        reschedule(_mergeTimerEvent, now + _params.mergeTimeout);
    }
}

void
ShrimpNi::flushMergeBuffer()
{
    if (_mergeTimerEvent.scheduled())
        deschedule(_mergeTimerEvent);
    if (!_merge.valid)
        return;

    _merge.valid = false;
    emitPacket(_merge.dstNode, _merge.dstStart, std::move(_merge.data),
               curTick() + _params.packetizeLatency);
    _merge.data = {};
}

void
ShrimpNi::emitPacket(NodeId dst, Addr dst_addr,
                     std::vector<std::uint8_t> &&payload, Tick ready)
{
    NetPacket pkt;
    pkt.srcNode = _node;
    pkt.dstNode = dst;
    pkt.dstX = static_cast<std::uint16_t>(_backplane.xOf(dst));
    pkt.dstY = static_cast<std::uint16_t>(_backplane.yOf(dst));
    pkt.dstPaddr = dst_addr;
    pkt.payload = std::move(payload);
    if (_params.reliability.enabled) {
        if (_retx->isFailed(dst)) {
            // Graceful degradation: the channel is dead and the
            // mappings are errored; late traffic is discarded.
            ++_relDroppedFailed;
            return;
        }
        pkt.reliable = true;
        pkt.kind = NetPacket::Kind::DATA;
    }
    // Overload: a store burst can outrun the injection engine and
    // fill the outgoing FIFO. Drop here -- before a sequence number
    // is burned, so the reliability stream stays gap-free -- instead
    // of tripping the FIFO's overrun assertion. The threshold
    // interrupt has already stalled well-behaved senders; what
    // arrives past capacity is load the node must shed.
    if (!_outFifo.wouldFit(pkt.wireBytes())) {
        ++_sendOverflowDrops;
        if (auto *t = eventQueue().tracer()) {
            t->instant(curTick(), name(), "ni", "sendOverflowDrop",
                       {trace::arg("dst", static_cast<std::uint64_t>(dst)),
                        trace::arg("bytes", static_cast<std::uint64_t>(
                                                pkt.payload.size()))});
        }
        return;
    }
    // Reliable DATA is NOT stamped with (rseq, srcEpoch) here: the
    // packet can sit in the outgoing FIFO across a channel reset or an
    // incarnation bump, and a pre-assigned stamp would enter the fresh
    // window as an orphan of the previous life -- a sequence the
    // receiver (resynchronized to expect 0) can never ACK. tryInject()
    // stamps and re-seals at the moment the packet actually enters the
    // retransmit window.
    pkt.sealCrc();
    pkt.injectedAt = curTick();
    pkt.seq = _nextSeq++;

    if (auto *t = eventQueue().tracer()) {
        pkt.traceId = t->newFlowId();
        t->flowBegin(
            curTick(), name(), "packet", "lifetime", pkt.traceId,
            {trace::arg("dst", static_cast<std::uint64_t>(dst)),
             trace::arg("paddr", dst_addr),
             trace::arg("bytes",
                        static_cast<std::uint64_t>(pkt.payload.size()))});
        // The packetize engine hands the sealed packet to the
        // Outgoing FIFO once its latency elapses.
        t->flowStep(ready, name(), "packet", "packetized", pkt.traceId,
                    {});
    }

    SHRIMP_DTRACE("Nic", curTick(), name(),
                  "packet -> node ", dst, " paddr ", dst_addr,
                  " bytes ", pkt.payload.size(), " seq ", pkt.seq);
    _bytesSent += pkt.payload.size();
    _outFifo.push(std::move(pkt), ready);

    if (!_injectEvent.scheduled())
        reschedule(_injectEvent, curTick());
}

void
ShrimpNi::tryInject()
{
    if (_crashed)
        return;

    Tick now = curTick();

    // Control traffic (ACK/NACK/retransmissions) jumps the outgoing
    // FIFO: ACKs unblock the remote sender's window and
    // retransmissions close delivery gaps; both are latency-critical.
    if (!_ctrl.empty()) {
        if (_nextInjectOk > now) {
            reschedule(_injectEvent, _nextInjectOk);
            return;
        }
        if (!_router.injectReady())
            return;     // inject waiter will kick us

        NetPacket pkt = std::move(_ctrl.front());
        _ctrl.pop_front();
        Tick ser = _router.serializationTime(pkt);
        _nextInjectOk = now + _params.injectOverhead + ser;
        if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
            // A control-queue packet with a flow id is a
            // retransmission of a traced DATA packet. The original
            // flow may already have ended (lost in the fabric, or a
            // spurious timeout after delivery), so a retransmission
            // re-opens the flow rather than stepping it.
            t->flowBegin(now, name(), "packet", "retransmitInject",
                         pkt.traceId, {trace::arg("rseq", pkt.rseq)});
        }
        _router.inject(std::move(pkt));
        noteProgress();

        if (!_ctrl.empty() || !_outFifo.empty())
            reschedule(_injectEvent, _nextInjectOk);
        return;
    }

    if (_outFifo.empty())
        return;

    const PacketFifo::Item &head = _outFifo.front();
    Tick ready = head.ready > _nextInjectOk ? head.ready : _nextInjectOk;
    if (ready > now) {
        reschedule(_injectEvent, ready);
        return;
    }

    if (!_router.injectReady())
        return;     // inject waiter will kick us

    bool track = _params.reliability.enabled && head.pkt.reliable &&
                 head.pkt.kind == NetPacket::Kind::DATA;
    if (track) {
        NodeId dst = head.pkt.dstNode;
        if (_retx->isFailed(dst)) {
            // The channel died while this packet sat in the FIFO.
            NetPacket dead = _outFifo.pop();
            ++_relDroppedFailed;
            if (auto *t = eventQueue().tracer(); t && dead.traceId) {
                t->flowEnd(now, name(), "packet", "dropped",
                           dead.traceId,
                           {trace::arg("reason", "failedChannel")});
            }
            if (!_outFifo.empty())
                reschedule(_injectEvent, now);
            return;
        }
        if (!_retx->hasRoom(dst))
            return;     // the windowSpace hook will kick us on ACK
    }

    NetPacket pkt = _outFifo.pop();
    Tick ser = _router.serializationTime(pkt);
    _nextInjectOk = now + _params.injectOverhead + ser;
    ++_pktsSent;
    if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
        t->flowStep(now, name(), "packet", "inject", pkt.traceId,
                    {trace::arg("wireBytes", pkt.wireBytes())});
    }
    if (track) {
        // Stamp the reliability header at the instant the packet joins
        // the window, so sequence numbering and the channel epoch are
        // always those of the stream it actually travels in.
        pkt.rseq = _retx->assignSeq(pkt.dstNode);
        pkt.srcEpoch = _chanEpoch;
        pkt.sealCrc();
        _retx->record(pkt);
    }
    if (_corruptNext) {
        // Test hook: corrupt "on the wire", after the retransmit
        // buffer has recorded its (clean) copy.
        _corruptNext = false;
        if (!pkt.payload.empty())
            pkt.payload[0] ^= 0x01;     // CRC now mismatches
        else
            pkt.crc ^= 0x0001;
    }
    _router.inject(std::move(pkt));
    noteProgress();

    if (!_outFifo.empty())
        reschedule(_injectEvent, _nextInjectOk);
}

// ---------------------------------------------------------------------
// Progress watchdog
// ---------------------------------------------------------------------

void
ShrimpNi::noteProgress()
{
    _lastProgressAt = curTick();
    _stalled = false;
}

void
ShrimpNi::watchdogTick()
{
    Tick period = _params.watchdogPeriod;
    if (period == 0)
        return;
    bool pending = !_crashed && (!_ctrl.empty() || !_outFifo.empty() ||
                                 !_inFifo.empty());
    if (!pending) {
        // No queued work means no stall by definition; also refresh
        // the progress clock so a backlog arriving just before the
        // next tick gets a full period before being flagged.
        noteProgress();
    } else if (curTick() - _lastProgressAt >= period) {
        if (!_stalled) {
            _stalled = true;
            ++_watchdogStalls;
            SHRIMP_WARN("watchdog: node ", _node,
                        " made no forward progress for ", period,
                        " ticks with queued work");
            if (auto *t = eventQueue().tracer()) {
                t->instant(curTick(), name(), "ni", "watchdogStall",
                           {trace::arg("idleTicks",
                                       curTick() - _lastProgressAt)});
            }
        }
        // Recovery: kick both engines in case a lost wakeup (rather
        // than genuine backpressure) wedged the pipeline.
        if (!_injectEvent.scheduled())
            reschedule(_injectEvent, curTick());
        if (!_draining && !_inFifo.empty() && !_drainEvent.scheduled())
            reschedule(_drainEvent, curTick());
    }
    schedule(_watchdogEvent, curTick() + period);
}

// ---------------------------------------------------------------------
// Command space (BusTarget)
// ---------------------------------------------------------------------

std::uint64_t
ShrimpNi::busRead(Addr paddr, unsigned size)
{
    (void)size;
    if (_crashed)
        return 0;
    Addr rel = paddr - _params.cmdBase;
    Addr off = pageOffset(rel);
    if (off >= ctrlRegionOffset)
        return 0;
    // A mapping errored by the reliability layer reports the failure
    // to user level through its command page.
    const NiptEntry &e = _nipt.entry(pageOf(rel));
    if (e.outLow.error || e.outHigh.error)
        return statusMapError;
    // Status of the DMA engine, relative to the corresponding source
    // physical address.
    return _dma.statusRead(rel);
}

void
ShrimpNi::busWrite(Addr paddr, const void *buf, Addr len)
{
    if (_crashed)
        return;
    Addr rel = paddr - _params.cmdBase;
    Addr off = pageOffset(rel);
    PageNum page = pageOf(rel);

    std::uint64_t value = 0;
    std::memcpy(&value, buf, len < 8 ? len : 8);

    if (off == ctrlModeOffset) {
        NiptEntry &e = _nipt.entry(page);
        UpdateMode mode;
        switch (static_cast<ModeCommand>(value)) {
          case ModeCommand::AUTO_SINGLE:
            mode = UpdateMode::AUTO_SINGLE;
            break;
          case ModeCommand::AUTO_BLOCK:
            mode = UpdateMode::AUTO_BLOCK;
            break;
          case ModeCommand::DELIBERATE:
            mode = UpdateMode::DELIBERATE;
            break;
          default:
            return;     // unknown command; hardware ignores
        }
        // Mode-switch commands apply to existing mappings only; the
        // mapping itself (destination, protection) is kernel business.
        if (e.outLow.valid())
            e.outLow.mode = mode;
        if (e.outHigh.valid())
            e.outHigh.mode = mode;
        return;
    }

    if (off == ctrlIntrOffset) {
        _nipt.entry(page).interruptOnArrival = value != 0;
        return;
    }

    // Deliberate-update start: value is the word count, the offset is
    // the transfer's base offset within the source page.
    auto nwords = static_cast<std::uint32_t>(value);
    if (nwords == 0 ||
        off + Addr{nwords} * DeliberateDma::wordBytes > PAGE_SIZE) {
        ++_ignoredStarts;
        return;
    }
    if (!_dma.start(rel, nwords))
        ++_ignoredStarts;
}

// ---------------------------------------------------------------------
// Incoming path
// ---------------------------------------------------------------------

void
ShrimpNi::sinkDeliver(NetPacket &&pkt)
{
    if (_crashed) {
        // Consume-and-discard: a dead node must not exert backpressure
        // into the mesh, or one crash wedges every route through it.
        ++_crashDrops;
        if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
            t->flowEnd(curTick(), name(), "packet", "dropped",
                       pkt.traceId, {trace::arg("reason", "crashed")});
        }
        return;
    }

    // Verify the absolute mesh coordinates and the CRC (Section 3.1).
    bool coords_ok = pkt.dstX == _backplane.xOf(_node) &&
                     pkt.dstY == _backplane.yOf(_node);
    if (!coords_ok || !pkt.crcOk()) {
        SHRIMP_DTRACE("Nic", curTick(), name(),
                      "DROP bad crc/coords from node ", pkt.srcNode,
                      " seq ", pkt.seq);
        ++_dropsCrc;
        if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
            t->flowEnd(curTick(), name(), "packet", "dropped",
                       pkt.traceId, {trace::arg("reason", "crc")});
        }
        if (onDropped)
            onDropped(pkt);
        // Reliability: ask for the retransmission immediately instead
        // of waiting out the sender's timeout. The corruption may have
        // hit any field, but our fault model only touches payload/CRC
        // bits, and a NACK toward a node that never sent is harmless
        // (no window state matches).
        if (_params.reliability.enabled && pkt.reliable && coords_ok &&
            pkt.kind == NetPacket::Kind::DATA &&
            pkt.srcNode < _rx.size()) {
            sendNack(pkt.srcNode);
        }
        return;
    }

    // Epoch gate (partition fencing): a reliable packet stamped from
    // an older life of its sender is a relic of a healed partition or
    // a pre-restart stream; fence it before it can touch channel or
    // memory state. A newer stamp means the sender started a new life
    // and its stream restarts from sequence 0, so resynchronize our
    // receive state for that source.
    if (pkt.reliable && pkt.srcEpoch != 0 && pkt.srcNode < _rx.size()) {
        RxState &rx = _rx[pkt.srcNode];
        if (rx.epoch != 0 && pkt.srcEpoch < rx.epoch) {
            ++_staleEpochDrops;
            if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
                t->flowEnd(curTick(), name(), "packet", "dropped",
                           pkt.traceId,
                           {trace::arg("reason", "staleEpoch")});
            }
            SHRIMP_DTRACE("Nic", curTick(), name(),
                          "fenced packet from node ", pkt.srcNode,
                          " epoch ", pkt.srcEpoch, " < ", rx.epoch);
            if (onStaleEpochDrop)
                onStaleEpochDrop(pkt.srcNode);
            return;
        }
        if (pkt.srcEpoch > rx.epoch) {
            rx = RxState{};
            rx.epoch = pkt.srcEpoch;
        }
    }

    // Liveness keepalives feed the health service directly; they are
    // meaningful even when the reliability layer is off.
    if (pkt.reliable && pkt.kind == NetPacket::Kind::HEARTBEAT) {
        ++_heartbeatsForwarded;
        if (onHeartbeat)
            onHeartbeat(pkt.srcNode, pkt.rseq);
        return;
    }

    // Reliability control plane: ACK/NACK packets feed the retransmit
    // buffer and never touch the incoming FIFO or memory.
    if (pkt.reliable && pkt.kind != NetPacket::Kind::DATA) {
        if (!_params.reliability.enabled)
            return;     // mixed configuration; nothing to update
        if (auto *t = eventQueue().tracer()) {
            t->instant(
                curTick(), name(), "rel",
                pkt.kind == NetPacket::Kind::ACK ? "ackRecv"
                                                 : "nackRecv",
                {trace::arg("src",
                            static_cast<std::uint64_t>(pkt.srcNode)),
                 trace::arg("rseq", pkt.rseq)});
        }
        if (pkt.kind == NetPacket::Kind::ACK) {
            ++_relAcksRcvd;
            _retx->onAck(pkt.srcNode, pkt.rseq, pkt.congestion);
        } else {
            ++_relNacksRcvd;
            _retx->onNack(pkt.srcNode, pkt.rseq);
        }
        return;
    }

    if (_params.reliability.enabled && pkt.reliable) {
        receiveReliableData(std::move(pkt));
        return;
    }

    if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
        t->flowStep(curTick(), name(), "packet", "inFifoEnqueue",
                    pkt.traceId, {});
    }
    _inFifo.push(std::move(pkt), curTick());
    if (!_draining && !_drainEvent.scheduled())
        reschedule(_drainEvent, curTick());
}

// ---------------------------------------------------------------------
// Reliability layer: receiver sequencing + ACK/NACK generation
// ---------------------------------------------------------------------

void
ShrimpNi::receiveReliableData(NetPacket &&pkt)
{
    NodeId src = pkt.srcNode;
    SHRIMP_ASSERT(src < _rx.size(), "reliable packet from unknown node ",
                  src);
    RxState &rx = _rx[src];

    if (pkt.rseq < rx.expected) {
        // Already delivered: a duplicated link or a retransmission
        // that crossed our ACK. Suppress, and re-ACK immediately in
        // case the ACK was the casualty.
        ++_relDupsSuppressed;
        if (auto *t = eventQueue().tracer()) {
            t->instant(curTick(), name(), "rel", "dupSuppressed",
                       {trace::arg("src",
                                   static_cast<std::uint64_t>(src)),
                        trace::arg("rseq", pkt.rseq)});
        }
        SHRIMP_DTRACE("Nic", curTick(), name(), "DUP seq ", pkt.rseq,
                      " from node ", src, " (expected ", rx.expected,
                      ")");
        sendAckNow(src);
        return;
    }

    if (pkt.rseq == rx.expected) {
        acceptInOrder(std::move(pkt));
        scheduleAck(src);
        return;
    }

    // Sequence gap: hold the packet for in-order delivery and request
    // the missing one.
    SHRIMP_DTRACE("Nic", curTick(), name(), "GAP got ", pkt.rseq,
                  " expected ", rx.expected, " from node ", src);
    if (rx.ooo.size() < _params.reliability.reorderBufferPackets &&
        rx.ooo.find(pkt.rseq) == rx.ooo.end()) {
        rx.ooo.emplace(pkt.rseq, std::move(pkt));
    } else {
        ++_relOooDrops;     // retransmission will resupply it
    }
    sendNack(src);
}

void
ShrimpNi::acceptInOrder(NetPacket &&pkt)
{
    NodeId src = pkt.srcNode;
    RxState &rx = _rx[src];

    // ECN: latch congestion seen in flight (router queue over its
    // threshold) or right here (our incoming FIFO nearly full); the
    // next ACK toward src echoes it so the sender backs off before
    // packets have to be dropped.
    if (pkt.congestion || !_inFifo.belowHighThreshold()) {
        if (!rx.ecnPending)
            ++_ecnMarksSeen;
        rx.ecnPending = true;
    }

    trace::Tracer *t = eventQueue().tracer();
    if (t && pkt.traceId) {
        t->flowStep(curTick(), name(), "packet", "inFifoEnqueue",
                    pkt.traceId, {});
    }
    _inFifo.push(std::move(pkt), curTick());
    ++rx.expected;
    ++rx.unacked;

    // The gap closed: drain every now-consecutive held packet, FIFO
    // space permitting (leftovers are resupplied by retransmission).
    for (auto it = rx.ooo.find(rx.expected);
         it != rx.ooo.end() && _inFifo.wouldFit(it->second.wireBytes());
         it = rx.ooo.find(rx.expected)) {
        ++_relReorderFixes;
        if (t && it->second.traceId) {
            t->flowStep(curTick(), name(), "packet", "inFifoEnqueue",
                        it->second.traceId, {});
        }
        _inFifo.push(std::move(it->second), curTick());
        rx.ooo.erase(it);
        ++rx.expected;
        ++rx.unacked;
    }

    if (!_draining && !_drainEvent.scheduled())
        reschedule(_drainEvent, curTick());
}

NetPacket
ShrimpNi::makeControl(NetPacket::Kind kind, NodeId dst,
                      std::uint64_t rseq)
{
    NetPacket pkt;
    pkt.srcNode = _node;
    pkt.dstNode = dst;
    pkt.dstX = static_cast<std::uint16_t>(_backplane.xOf(dst));
    pkt.dstY = static_cast<std::uint16_t>(_backplane.yOf(dst));
    pkt.reliable = true;
    pkt.kind = kind;
    pkt.rseq = rseq;
    pkt.srcEpoch = _chanEpoch;
    pkt.sealCrc();
    pkt.injectedAt = curTick();
    pkt.seq = _nextSeq++;
    return pkt;
}

void
ShrimpNi::queueControl(NetPacket &&pkt)
{
    _ctrl.push_back(std::move(pkt));
    if (!_injectEvent.scheduled())
        reschedule(_injectEvent, curTick());
}

void
ShrimpNi::scheduleAck(NodeId src)
{
    RxState &rx = _rx[src];
    if (rx.unacked >= _params.reliability.ackEvery) {
        sendAckNow(src);
        return;
    }
    rx.ackPending = true;
    if (!_ackEvent.scheduled())
        schedule(_ackEvent, curTick() + _params.reliability.ackDelay);
}

void
ShrimpNi::sendAckNow(NodeId src)
{
    RxState &rx = _rx[src];
    rx.ackPending = false;
    rx.unacked = 0;
    ++_relAcksSent;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "rel", "ackSend",
                   {trace::arg("dst", static_cast<std::uint64_t>(src)),
                    trace::arg("rseq", rx.expected)});
    }
    NetPacket ack = makeControl(NetPacket::Kind::ACK, src, rx.expected);
    if (rx.ecnPending) {
        // The congestion bit mutates per hop and is not CRC'd, so
        // setting it after sealCrc is wire-legal.
        ack.congestion = true;
        rx.ecnPending = false;
        ++_ecnEchoesSent;
    }
    queueControl(std::move(ack));
}

void
ShrimpNi::sendNack(NodeId src)
{
    RxState &rx = _rx[src];
    Tick now = curTick();
    // One NACK per gap per delayed-ACK window; every out-of-order
    // arrival would otherwise emit one.
    if (rx.lastNackSeq == rx.expected &&
        now - rx.lastNackAt < _params.reliability.ackDelay) {
        return;
    }
    rx.lastNackSeq = rx.expected;
    rx.lastNackAt = now;
    ++_relNacksSent;
    if (auto *t = eventQueue().tracer()) {
        t->instant(now, name(), "rel", "nackSend",
                   {trace::arg("dst", static_cast<std::uint64_t>(src)),
                    trace::arg("rseq", rx.expected)});
    }
    queueControl(makeControl(NetPacket::Kind::NACK, src, rx.expected));
}

void
ShrimpNi::flushPendingAcks()
{
    for (NodeId src = 0; src < _rx.size(); ++src) {
        if (_rx[src].ackPending)
            sendAckNow(src);
    }
}

unsigned
ShrimpNi::errorMappingsToward(NodeId dst)
{
    unsigned halves = 0;
    for (PageNum page = 0; page < _nipt.numPages(); ++page) {
        NiptEntry &e = _nipt.entry(page);
        if (e.outLow.valid() && !e.outLow.error &&
            e.outLow.dstNode == dst) {
            e.outLow.error = true;
            ++halves;
        }
        if (e.outHigh.valid() && !e.outHigh.error &&
            e.outHigh.dstNode == dst) {
            e.outHigh.error = true;
            ++halves;
        }
    }
    _relMappingsErrored += halves;
    return halves;
}

void
ShrimpNi::handleChannelFailure(NodeId dst)
{
    // Mark every outgoing mapping half toward dst errored: outgoing
    // lookups stop matching (stores fall silent instead of feeding a
    // dead window) and command-page status reads report the failure.
    unsigned halves = errorMappingsToward(dst);
    SHRIMP_WARN("reliability: node ", _node, " -> ", dst,
                " unreachable; ", halves, " mapping halves errored");
    // An in-flight deliberate transfer whose destination just errored
    // would find its mapping gone at the next chunk anyway; fail it
    // now so the command-page status flips without a polling delay.
    if (_dma.busy()) {
        OutLookup cur = _nipt.lookupOut(_dma.currentBase());
        if (!cur.mapped || cur.dstNode == dst)
            _dma.abort("peerDead");
    }
    if (onMappingError)
        onMappingError(dst, halves);
    // Queued FIFO traffic toward dst is discarded lazily in
    // tryInject(); make sure it gets the chance.
    if (!_injectEvent.scheduled())
        reschedule(_injectEvent, curTick());
}

void
ShrimpNi::sendHeartbeat(NodeId dst, std::uint64_t stamp)
{
    if (_crashed)
        return;
    queueControl(makeControl(NetPacket::Kind::HEARTBEAT, dst, stamp));
}

void
ShrimpNi::startNewEpoch(std::uint32_t epoch)
{
    if (epoch == _chanEpoch)
        return;
    _chanEpoch = epoch;
    if (!_params.reliability.enabled)
        return;
    // Restart every outgoing stream at seq 0: receivers resynchronize
    // when they see the higher srcEpoch, so nothing from the previous
    // life can interleave with the new streams.
    for (NodeId peer = 0; peer < _rx.size(); ++peer) {
        if (peer != _node)
            _retx->resetChannel(peer);
    }
}

void
ShrimpNi::declarePeerDead(NodeId dst)
{
    if (_params.reliability.enabled) {
        // Fires handleChannelFailure through the failure hook unless
        // the retry cap got there first.
        _retx->forceFail(dst);
        return;
    }
    unsigned halves = errorMappingsToward(dst);
    if (_dma.busy()) {
        OutLookup cur = _nipt.lookupOut(_dma.currentBase());
        if (!cur.mapped || cur.dstNode == dst)
            _dma.abort("peerDead");
    }
    if (halves && onMappingError)
        onMappingError(dst, halves);
}

void
ShrimpNi::resetChannel(NodeId peer)
{
    if (!_params.reliability.enabled)
        return;
    _retx->resetChannel(peer);
    // Receive state is deliberately left alone: resynchronization is
    // the epoch gate's job (sinkDeliver), driven by the srcEpoch of
    // arriving packets. The data plane often resynchronizes to a
    // peer's new life before the health stamp propagates; zeroing
    // `expected` here would clobber such a stream mid-flight, and the
    // receiver would then NACK for sequences the sender has already
    // retired -- a wedge only a full retry-budget death can clear.
}

unsigned
ShrimpNi::healMappingsToward(NodeId dst)
{
    unsigned healed = 0;
    for (PageNum page = 0; page < _nipt.numPages(); ++page) {
        NiptEntry &e = _nipt.entry(page);
        if (e.outLow.valid() && e.outLow.error &&
            e.outLow.dstNode == dst) {
            e.outLow.error = false;
            ++healed;
        }
        if (e.outHigh.valid() && e.outHigh.error &&
            e.outHigh.dstNode == dst) {
            e.outHigh.error = false;
            ++healed;
        }
    }
    return healed;
}

void
ShrimpNi::setCrashed(bool crashed)
{
    if (_crashed == crashed)
        return;
    _crashed = crashed;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "ni",
                   crashed ? "niCrash" : "niRestart", {});
    }
    if (crashed) {
        // Power-fail: everything inside the chip is lost. The mesh
        // keeps ejecting into us (sinkDeliver discards), so routers
        // never back up behind a dead node.
        ++_epoch;           // orphan any in-flight drain completion
        _draining = false;
        // Drop every retransmit window/deadline: a dead node must not
        // keep its timer alive queueing retransmissions nobody sends.
        // Unlike resetChannel(), a power-fail wipes the receive side
        // too -- the chip's stream state is simply gone. A fresh
        // RxState (epoch 0) is correct: the first packet carrying any
        // srcEpoch > 0 resynchronizes it.
        if (_params.reliability.enabled) {
            for (NodeId peer = 0; peer < _rx.size(); ++peer) {
                _retx->resetChannel(peer);
                _rx.at(peer) = RxState{};
            }
        }
        _ctrl.clear();
        _outFifo.clear();
        _inFifo.clear();
        _merge.valid = false;
        _merge.data.clear();
        _dma.abort("crash");
        _dmaWaitingForFifo = false;
        _outAboveThreshold = false;
        _accepting = true;
        if (_mergeTimerEvent.scheduled())
            deschedule(_mergeTimerEvent);
        if (_ackEvent.scheduled())
            deschedule(_ackEvent);
        if (_injectEvent.scheduled())
            deschedule(_injectEvent);
        if (_drainEvent.scheduled())
            deschedule(_drainEvent);
        return;
    }
    // Restart: a freshly booted NI. All reliability channels restart
    // from sequence 0 in both directions (full two-sided wipe, like
    // the crash path); peers resynchronize when our restarted health
    // service bumps the incarnation and new-epoch packets arrive.
    if (_params.reliability.enabled) {
        for (NodeId peer = 0; peer < _rx.size(); ++peer) {
            _retx->resetChannel(peer);
            _rx.at(peer) = RxState{};
        }
    }
    noteProgress();     // a reboot is a fresh watchdog epoch
    _router.sinkReadyAgain();
}

void
ShrimpNi::drainIncoming()
{
    if (_draining || _inFifo.empty())
        return;

    Tick now = curTick();

    // NIPT check at the head of the FIFO (Section 4): drop packets for
    // pages that are not mapped in.
    {
        const PacketFifo::Item &head = _inFifo.front();
        if (!_nipt.mappedIn(pageOf(head.pkt.dstPaddr))) {
            NetPacket dropped = _inFifo.pop();
            ++_dropsUnmapped;
            if (auto *t = eventQueue().tracer(); t && dropped.traceId) {
                t->flowEnd(now, name(), "packet", "dropped",
                           dropped.traceId,
                           {trace::arg("reason", "unmapped")});
            }
            if (onDropped)
                onDropped(dropped);
            if (!_inFifo.empty())
                reschedule(_drainEvent, now);
            return;
        }
    }

    // Coalesce a run of contiguous, mapped-in packets into one DMA
    // burst so back-to-back page transfers approach the EISA burst
    // bandwidth (33 MB/s) instead of paying setup per packet.
    std::size_t count = 0;
    Addr bytes = 0;
    Addr next_addr = _inFifo.front().pkt.dstPaddr;
    while (count < _inFifo.packets()) {
        const PacketFifo::Item &item = _inFifo.at(count);
        if (item.ready > now)
            break;
        if (item.pkt.dstPaddr != next_addr)
            break;
        if (!_nipt.mappedIn(pageOf(item.pkt.dstPaddr)))
            break;
        if (bytes + item.pkt.payload.size() > _params.maxDrainBurstBytes
            && count > 0) {
            break;
        }
        bytes += item.pkt.payload.size();
        next_addr += item.pkt.payload.size();
        ++count;
    }
    if (count == 0) {
        reschedule(_drainEvent, _inFifo.front().ready);
        return;
    }

    Tick done;
    if (_params.eisaIncoming) {
        EisaBus::Grant g = _eisa.acquire(now, bytes);
        // The EISA bridge's writes also occupy the memory bus.
        _bus.acquire(g.start, bytes);
        done = g.end;
    } else {
        XpressBus::Grant g = _bus.acquire(now, bytes);
        done = g.end + _mem.accessLatency();
    }

    _draining = true;
    if (auto *t = eventQueue().tracer()) {
        t->complete(now, done, name(), "dma", "dmaBurst",
                    {trace::arg("bytes", bytes),
                     trace::arg("packets",
                                static_cast<std::uint64_t>(count)),
                     trace::arg("path", _params.eisaIncoming
                                            ? "eisa"
                                            : "xpress")});
    }
    eventQueue().scheduleFn(
        [this, count, epoch = _epoch]() {
            if (epoch != _epoch)
                return;     // the node crashed mid-burst
            _draining = false;
            for (std::size_t i = 0; i < count; ++i)
                commitArrival(_inFifo.pop());
            if (!_inFifo.empty() && !_drainEvent.scheduled())
                reschedule(_drainEvent, curTick());
        },
        done, EventPriority::DEFAULT, "incoming drain complete");
}

void
ShrimpNi::commitArrival(NetPacket &&pkt)
{
    // Functional write into main memory; snooping caches invalidate.
    _bus.functionalWrite(pkt.dstPaddr, pkt.payload.data(),
                         pkt.payload.size(), BusMaster::EISA_DMA);
    SHRIMP_DTRACE("Nic", curTick(), name(),
                  "delivered from node ", pkt.srcNode, " paddr ",
                  pkt.dstPaddr, " bytes ", pkt.payload.size());
    ++_pktsDelivered;
    _bytesDelivered += pkt.payload.size();
    noteProgress();
    _deliveryLatency.sample(
        static_cast<double>(curTick() - pkt.injectedAt));
    _deliveryLatencyHist.sample(curTick() - pkt.injectedAt);
    if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
        t->flowStep(curTick(), name(), "packet", "commit", pkt.traceId,
                    {trace::arg("paddr", pkt.dstPaddr)});
        t->flowEnd(curTick(), name(), "packet", "lifetime", pkt.traceId,
                   {trace::arg("latency", curTick() - pkt.injectedAt)});
    }

    PageNum page = pageOf(pkt.dstPaddr);
    if (_nipt.entry(page).interruptOnArrival && onArrival) {
        ++_arrivalInterrupts;
        onArrival(page, pkt.dstPaddr);
    }
    if (onDelivered)
        onDelivered(pkt, curTick());
}

} // namespace shrimp
