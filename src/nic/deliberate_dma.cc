#include "nic/deliberate_dma.hh"

#include "net/packet.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

DeliberateDma::DeliberateDma(EventQueue &eq, std::string name,
                             const Params &params, XpressBus &bus,
                             MainMemory &mem, Hooks hooks)
    : SimObject(eq, std::move(name)),
      _params(params),
      _bus(bus),
      _mem(mem),
      _hooks(std::move(hooks)),
      _chunkEvent([this] { transferChunk(); }, "dma chunk"),
      _stats(this->name())
{
    _stats.addStat(&_transfers);
    _stats.addStat(&_bytes);
    _stats.addStat(&_rejectedStarts);
    _stats.addStat(&_fifoStalls);
    _stats.addStat(&_aborts);
}

std::uint64_t
DeliberateDma::statusRead(Addr src_paddr) const
{
    if (_busy)
        return dma_status::encodeBusy(_wordsRemaining,
                                      src_paddr == _base);
    if (_aborted && pageOf(src_paddr) == pageOf(_abortedBase))
        return dma_status::ABORTED;
    return dma_status::FREE;
}

bool
DeliberateDma::start(Addr src_paddr, std::uint32_t nwords)
{
    if (_busy) {
        ++_rejectedStarts;
        return false;
    }
    SHRIMP_ASSERT(nwords > 0, "zero-length deliberate transfer");
    SHRIMP_ASSERT(pageOffset(src_paddr) + nwords * wordBytes <= PAGE_SIZE,
                  "deliberate transfer crosses a page boundary: addr=",
                  src_paddr, " words=", nwords);

    _busy = true;
    _aborted = false;   // the latched abort status is consumed
    _base = src_paddr;
    _cursor = src_paddr;
    _wordsRemaining = nwords;
    ++_transfers;

    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "dma", "dmaClaim",
                   {trace::arg("paddr", src_paddr),
                    trace::arg("words",
                               static_cast<std::uint64_t>(nwords))});
    }

    reschedule(_chunkEvent, curTick() + _params.startLatency);
    return true;
}

void
DeliberateDma::kick()
{
    if (_busy && !_chunkEvent.scheduled())
        reschedule(_chunkEvent, curTick());
}

void
DeliberateDma::abort(const char *reason)
{
    if (!_busy)
        return;
    ++_aborts;
    _aborted = true;
    _abortedBase = _base;
    _busy = false;
    _wordsRemaining = 0;
    ++_gen;
    if (_chunkEvent.scheduled())
        deschedule(_chunkEvent);
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "dma", "dmaAbort",
                   {trace::arg("paddr", _abortedBase),
                    trace::arg("reason", reason)});
    }
    SHRIMP_DTRACE("Nic", curTick(), name(), "transfer from ",
                  _abortedBase, " aborted: ", reason);
}

void
DeliberateDma::transferChunk()
{
    SHRIMP_ASSERT(_busy, "chunk event while idle");

    OutLookup lookup = _hooks.lookupOut(_cursor);
    if (!lookup.mapped || lookup.mode != UpdateMode::DELIBERATE) {
        // The mapping vanished (or errored) mid-transfer -- the peer
        // died or the kernel tore the page down. Not a simulator bug:
        // abort and report it through the command-page status.
        abort("mappingLost");
        return;
    }

    Addr bytes_left = Addr{_wordsRemaining} * wordBytes;
    Addr chunk = bytes_left;
    if (chunk > _params.maxChunkBytes)
        chunk = _params.maxChunkBytes;
    // A chunk must stay within one mapping half (split pages).
    if (chunk > lookup.bytesToMappingEnd)
        chunk = lookup.bytesToMappingEnd;
    SHRIMP_ASSERT(chunk % wordBytes == 0 && chunk > 0,
                  "bad chunk size ", chunk);

    Addr wire = NetPacket::headerBytes + chunk + NetPacket::crcBytes;
    if (!_hooks.outFifoHasSpace(wire)) {
        ++_fifoStalls;
        _hooks.waitForFifoSpace();
        return;     // kick() resumes us
    }

    // The engine reads source data from main memory over the Xpress
    // bus; the snooping datapath captures it (modeled by handing the
    // data straight to the packetizer at the read's completion).
    XpressBus::Grant grant = _bus.acquire(curTick(), chunk);
    Tick data_ready = grant.end + _mem.accessLatency();

    std::vector<std::uint8_t> payload(chunk);
    _mem.read(_cursor, payload.data(), chunk);

    NodeId dst = lookup.dstNode;
    Addr dst_addr = lookup.dstAddr;
    _bytes += chunk;

    if (auto *t = eventQueue().tracer()) {
        t->complete(curTick(), data_ready, name(), "dma",
                    "dmaChunkRead",
                    {trace::arg("paddr", _cursor),
                     trace::arg("bytes", chunk)});
    }

    // Progress state (_cursor, _wordsRemaining, _busy) only advances
    // when the chunk is actually captured by the outgoing datapath, so
    // a command-page status read never reports "free" while data is
    // still in flight. Chunks are strictly sequential: the next
    // transferChunk() is scheduled from inside this completion.
    eventQueue().scheduleFn(
        [this, dst, dst_addr, chunk, gen = _gen,
         payload = std::move(payload)]() mutable {
            if (gen != _gen)
                return;     // aborted while the read was in flight
            _hooks.emitChunk(dst, dst_addr, std::move(payload));
            _cursor += chunk;
            _wordsRemaining -=
                static_cast<std::uint32_t>(chunk / wordBytes);
            if (_wordsRemaining == 0) {
                _busy = false;
                if (onComplete)
                    onComplete(_base);
            } else if (!_chunkEvent.scheduled()) {
                reschedule(_chunkEvent, curTick());
            }
        },
        data_ready, EventPriority::DEFAULT, "dma chunk emit");
}

} // namespace shrimp
