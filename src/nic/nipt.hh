/**
 * @file
 * The Network Interface Page Table (NIPT) -- the key component of the
 * SHRIMP network interface (Section 4). One entry per page of local
 * physical memory describes whether and how that page is mapped:
 *
 *  - outgoing: destination node + physical page and an update mode
 *    (single-write automatic, blocked-write automatic, or deliberate);
 *  - incoming: whether remote senders may deposit data into this page,
 *    and whether arrival should raise an interrupt;
 *  - page split: a page may be divided at a configurable offset
 *    between two independent outgoing mappings (Section 3.2), which is
 *    how non-page-aligned application mappings are accommodated.
 */

#ifndef SHRIMP_NIC_NIPT_HH
#define SHRIMP_NIC_NIPT_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp
{

/** How writes to a mapped-out page are propagated. */
enum class UpdateMode : std::uint8_t
{
    NONE,           //!< not mapped out
    AUTO_SINGLE,    //!< every snooped write becomes a packet immediately
    AUTO_BLOCK,     //!< consecutive snooped writes merge into one packet
    DELIBERATE,     //!< data moves only on an explicit user-level send
};

const char *updateModeName(UpdateMode mode);

/** One half of a (possibly split) outgoing mapping. */
struct OutMapping
{
    UpdateMode mode = UpdateMode::NONE;
    NodeId dstNode = INVALID_NODE;
    PageNum dstPage = INVALID_PAGE;
    /**
     * Byte delta applied to the in-page offset at the destination, so
     * a source range can land at a different alignment in the
     * destination page (non-page-aligned mappings).
     */
    std::int32_t dstOffsetDelta = 0;
    /**
     * Set by the NI's reliability layer when delivery to dstNode
     * exhausted its retry budget: the mapping is errored, outgoing
     * lookups stop matching, and command-page status reads report the
     * failure (graceful degradation instead of silent loss).
     */
    bool error = false;

    bool valid() const { return mode != UpdateMode::NONE; }
};

/** One NIPT entry (per local physical page). */
struct NiptEntry
{
    OutMapping outLow;      //!< covers [0, splitOffset) or whole page
    OutMapping outHigh;     //!< covers [splitOffset, PAGE_SIZE)
    Addr splitOffset = 0;   //!< 0 means outLow covers the whole page

    bool mappedIn = false;          //!< remote senders may write here
    bool interruptOnArrival = false;
    /** Source nodes with mappings into this page (used by the
     *  NIPT-consistency shootdown protocol, Section 4.4). */
    std::vector<NodeId> inSources;

    bool
    anyOut() const
    {
        return outLow.valid() || outHigh.valid();
    }
};

/** Result of an outgoing lookup for one snooped physical address. */
struct OutLookup
{
    bool mapped = false;
    UpdateMode mode = UpdateMode::NONE;
    NodeId dstNode = INVALID_NODE;
    Addr dstAddr = 0;
    /** Bytes from the looked-up address to the end of this mapping's
     *  coverage (used to keep DMA chunks within one mapping half). */
    Addr bytesToMappingEnd = 0;
};

/** The table itself. */
class Nipt
{
  public:
    explicit Nipt(PageNum num_pages) : _entries(num_pages) {}

    PageNum numPages() const { return _entries.size(); }

    NiptEntry &
    entry(PageNum page)
    {
        SHRIMP_ASSERT(page < _entries.size(), "NIPT index ", page,
                      " out of range");
        return _entries[page];
    }

    const NiptEntry &
    entry(PageNum page) const
    {
        SHRIMP_ASSERT(page < _entries.size(), "NIPT index ", page,
                      " out of range");
        return _entries[page];
    }

    /** Outgoing lookup for a snooped write / DMA read address. */
    OutLookup
    lookupOut(Addr paddr) const
    {
        PageNum page = pageOf(paddr);
        if (page >= _entries.size())
            return {};
        const NiptEntry &e = _entries[page];
        Addr off = pageOffset(paddr);

        const OutMapping *m = nullptr;
        Addr end = PAGE_SIZE;
        if (e.splitOffset != 0 && off >= e.splitOffset) {
            m = &e.outHigh;
        } else {
            m = &e.outLow;
            if (e.splitOffset != 0)
                end = e.splitOffset;
        }
        if (!m->valid() || m->error)
            return {};

        OutLookup result;
        result.mapped = true;
        result.mode = m->mode;
        result.dstNode = m->dstNode;
        result.dstAddr = pageBase(m->dstPage) + off +
                         static_cast<std::int64_t>(m->dstOffsetDelta);
        result.bytesToMappingEnd = end - off;
        return result;
    }

    /** Is the page accepting incoming data? */
    bool
    mappedIn(PageNum page) const
    {
        return page < _entries.size() && _entries[page].mappedIn;
    }

  private:
    std::vector<NiptEntry> _entries;
};

} // namespace shrimp

#endif // SHRIMP_NIC_NIPT_HH
