/**
 * @file
 * ShrimpNi: the SHRIMP virtual memory-mapped network interface
 * (Sections 3 and 4 of the paper). It
 *
 *  - snoops CPU write-through stores off the Xpress bus, looks them up
 *    in the NIPT, and packetizes mapped ones (automatic update, in
 *    single-write or blocked-write/merging flavours);
 *  - hosts the single deliberate-update DMA engine, claimed from user
 *    level through VM-mapped command pages with a locked CMPXCHG;
 *  - decodes the command address space (one command page per physical
 *    page, at cmdBase + the page's physical offset);
 *  - injects packets into the mesh through the Outgoing FIFO and
 *    accepts them through the Incoming FIFO, with the programmable
 *    thresholds that implement the paper's flow control;
 *  - drains arrived packets to main memory through the EISA bus on the
 *    prototype datapath, or directly over the Xpress bus on the
 *    next-generation datapath, verifying mesh coordinates, CRC, and
 *    the NIPT mapped-in bit.
 *
 * Command page layout (our encoding of Section 4.2/4.3): a write of n
 * to offset o < PAGE_SIZE-16 starts a deliberate transfer of n words
 * from the corresponding physical page's offset o; a read from such an
 * offset returns the DMA engine status (0 = free). The last 16 bytes
 * are control: a write to ctrlModeOffset switches the page's outgoing
 * update mode, a write to ctrlIntrOffset sets/clears the
 * interrupt-on-arrival bit. Deliberate transfers may therefore not
 * start in a page's last 16 bytes; the user-level send macro splits
 * such transfers (the paper's macro already splits at page
 * boundaries).
 */

#ifndef SHRIMP_NIC_SHRIMP_NI_HH
#define SHRIMP_NIC_SHRIMP_NI_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mem/bus_interfaces.hh"
#include "mem/eisa_bus.hh"
#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"
#include "net/backplane.hh"
#include "nic/deliberate_dma.hh"
#include "nic/nipt.hh"
#include "nic/packet_fifo.hh"
#include "nic/retransmit_buffer.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/** The SHRIMP network interface for one node. */
class ShrimpNi : public SimObject,
                 public BusSnooper,
                 public BusTarget,
                 public NetworkSink
{
  public:
    /** Control offsets in each command page (see file comment). */
    static constexpr Addr ctrlRegionOffset = PAGE_SIZE - 16;
    static constexpr Addr ctrlModeOffset = PAGE_SIZE - 16;
    static constexpr Addr ctrlIntrOffset = PAGE_SIZE - 8;

    /**
     * Command-page status read result for a page whose outgoing
     * mapping was marked errored by the reliability layer (retry cap
     * exhausted). Distinct from every dma_status encoding.
     */
    static constexpr std::uint64_t statusMapError = ~std::uint64_t{0};

    /** Values written to ctrlModeOffset. */
    enum class ModeCommand : std::uint64_t
    {
        AUTO_SINGLE = 0,
        AUTO_BLOCK = 1,
        DELIBERATE = 2,
    };

    struct Params
    {
        /** Base physical address of the command space. */
        Addr cmdBase = 0x4000'0000;
        /** Snoop capture -> packet in Outgoing FIFO. */
        Tick packetizeLatency = 100 * ONE_NS;
        /** Blocked-write merge window ("programmable time limit"). */
        Tick mergeTimeout = 1 * ONE_US;
        /** Max payload per packet (merged or DMA chunk). */
        Addr maxPayloadBytes = 512;
        /** Per-packet NIC chip injection overhead. */
        Tick injectOverhead = 50 * ONE_NS;
        /** Coalescing limit for one incoming drain burst. */
        Addr maxDrainBurstBytes = 4096;
        /** Prototype (EISA) or next-generation (Xpress) receive path. */
        bool eisaIncoming = true;

        PacketFifo::Params outFifo{64 * 1024, 48 * 1024, 16 * 1024};
        PacketFifo::Params inFifo{64 * 1024, 56 * 1024, 32 * 1024};

        DeliberateDma::Params dma{};

        /** End-to-end reliable delivery (off = paper wire format). */
        ReliabilityParams reliability{};

        /**
         * Forward-progress watchdog period; 0 = off. While queued
         * work exists (outgoing FIFO, control queue, or incoming
         * FIFO) and no packet is injected or committed for a full
         * period, the NI flags a stall (progressStalled(), counted in
         * watchdogStalls) and kicks its engines as recovery. The
         * chaos soak treats a stall that survives the settle phase as
         * an invariant violation.
         */
        Tick watchdogPeriod = 0;
    };

    ShrimpNi(EventQueue &eq, std::string name, NodeId node,
             const Params &params, XpressBus &bus, EisaBus &eisa,
             MainMemory &mem, MeshBackplane &backplane);

    NodeId nodeId() const { return _node; }
    Nipt &nipt() { return _nipt; }
    const Nipt &nipt() const { return _nipt; }
    DeliberateDma &dma() { return _dma; }
    PacketFifo &outgoingFifo() { return _outFifo; }
    PacketFifo &incomingFifo() { return _inFifo; }
    const Params &params() const { return _params; }

    // ---- command space geometry ----
    Addr cmdBase() const { return _params.cmdBase; }
    Addr cmdSpaceSize() const { return _mem.size(); }

    /** Command-space address controlling the given DRAM address. */
    Addr
    cmdAddrFor(Addr dram_paddr) const
    {
        return _params.cmdBase + dram_paddr;
    }

    /** Command page number controlling DRAM page @p page. */
    PageNum
    cmdPageFor(PageNum page) const
    {
        return pageOf(_params.cmdBase) + page;
    }

    // ---- kernel / instrumentation hooks ----

    /** Outgoing FIFO crossed above its high threshold: the kernel
     *  stalls the CPU until onOutFifoDrained fires (Section 4). */
    std::function<void()> onOutFifoAboveThreshold;
    std::function<void()> onOutFifoDrained;

    /** Data arrived for a page whose NIPT entry requests interrupts. */
    std::function<void(PageNum page, Addr dst_paddr)> onArrival;

    /** A packet was dropped (bad CRC, wrong coords, not mapped in). */
    std::function<void(const NetPacket &pkt)> onDropped;

    /** A packet's payload reached destination main memory. */
    std::function<void(const NetPacket &pkt, Tick when)> onDelivered;

    /**
     * The reliability layer exhausted its retry budget toward a
     * destination: @p halves outgoing mapping halves were marked
     * errored. The kernel records the failure for processes to see.
     */
    std::function<void(NodeId dst, unsigned halves)> onMappingError;

    /** A HEARTBEAT keepalive arrived carrying the sender's packed
     *  (incarnation, view) stamp (fed to the health service). */
    std::function<void(NodeId src, std::uint64_t stamp)> onHeartbeat;

    /** A reliable packet was fenced: it came from an older life of
     *  its sender (the kernel rolls this into staleEpochRejects). */
    std::function<void(NodeId src)> onStaleEpochDrop;

    // ---- liveness / failure support ----

    /** Emit one HEARTBEAT toward @p dst via the control queue (jumps
     *  the FIFO and the retransmit window; works with reliability
     *  off), carrying @p stamp in the rseq field. */
    void sendHeartbeat(NodeId dst, std::uint64_t stamp);

    /**
     * Enter channel epoch @p epoch (the kernel's incarnation number):
     * outgoing packets are stamped with it, and every outgoing
     * reliability stream restarts from sequence 0 -- receivers see the
     * newer epoch and resynchronize, while anything still in flight
     * from the previous epoch is fenced on arrival.
     */
    void startNewEpoch(std::uint32_t epoch);

    /**
     * Power-fail the chip (or bring it back). Crashed: all queued
     * state is discarded and arriving packets are consumed-and-dropped
     * -- the sink stays ready so the mesh drains instead of wedging.
     * Un-crashing restores a freshly-booted NI (all reliability
     * channels reset to sequence 0).
     */
    void setCrashed(bool crashed);
    bool crashed() const { return _crashed; }

    /**
     * External (health-service) evidence that @p dst is down: fail its
     * channel now instead of waiting out the retry cap. Marks every
     * outgoing mapping half toward @p dst errored and fires
     * onMappingError, exactly like an exhausted retry budget.
     */
    void declarePeerDead(NodeId dst);

    /** Reset both reliability directions with @p peer to sequence 0
     *  (used when a crashed peer rejoins). */
    void resetChannel(NodeId peer);

    /** Clear the error flag on surviving outgoing halves toward
     *  @p dst (kernel-channel/NX wirings healed on peer recovery).
     *  Returns the number of halves healed. */
    unsigned healMappingsToward(NodeId dst);

    // ---- BusSnooper: the outgoing automatic-update datapath ----
    void snoopWrite(Addr paddr, const void *buf, Addr len,
                    BusMaster master) override;

    // ---- BusTarget: the command address space ----
    std::uint64_t busRead(Addr paddr, unsigned size) override;
    void busWrite(Addr paddr, const void *buf, Addr len) override;
    bool effectAtGrant() const override { return true; }

    // ---- NetworkSink: ejection from the mesh ----
    bool sinkReady() const override { return _accepting; }
    void sinkDeliver(NetPacket &&pkt) override;

    /** Force out any pending blocked-write merge buffer. */
    void flushMergeBuffer();

    // ---- statistics accessors used by tests and benches ----
    std::uint64_t packetsSent() const { return _pktsSent.value(); }
    std::uint64_t packetsDelivered() const
    {
        return _pktsDelivered.value();
    }
    std::uint64_t payloadBytesSent() const { return _bytesSent.value(); }
    std::uint64_t payloadBytesDelivered() const
    {
        return _bytesDelivered.value();
    }
    std::uint64_t dropsCrc() const { return _dropsCrc.value(); }
    std::uint64_t dropsUnmapped() const { return _dropsUnmapped.value(); }
    std::uint64_t mergedWrites() const { return _mergedWrites.value(); }
    std::uint64_t ignoredStarts() const
    {
        return _ignoredStarts.value();
    }

    // ---- reliability layer accessors ----
    bool reliabilityEnabled() const { return _params.reliability.enabled; }
    RetransmitBuffer &retransmitBuffer() { return *_retx; }
    std::uint64_t acksSent() const { return _relAcksSent.value(); }
    std::uint64_t acksReceived() const { return _relAcksRcvd.value(); }
    std::uint64_t nacksSent() const { return _relNacksSent.value(); }
    std::uint64_t nacksReceived() const { return _relNacksRcvd.value(); }
    std::uint64_t duplicatesSuppressed() const
    {
        return _relDupsSuppressed.value();
    }
    std::uint64_t reorderFixes() const { return _relReorderFixes.value(); }
    std::uint64_t mappingsErrored() const
    {
        return _relMappingsErrored.value();
    }
    std::uint64_t droppedFailedChannel() const
    {
        return _relDroppedFailed.value();
    }

    // ---- congestion / overload accessors ----

    /** Packets discarded because the outgoing FIFO was full (graceful
     *  send-path degradation instead of an overrun assertion). */
    std::uint64_t sendOverflowDrops() const
    {
        return _sendOverflowDrops.value();
    }
    /** Congestion marks latched off arriving DATA packets. */
    std::uint64_t ecnMarksSeen() const { return _ecnMarksSeen.value(); }
    /** ACKs sent carrying a congestion echo. */
    std::uint64_t ecnEchoesSent() const
    {
        return _ecnEchoesSent.value();
    }
    /** No-forward-progress windows flagged by the watchdog. */
    std::uint64_t watchdogStalls() const
    {
        return _watchdogStalls.value();
    }
    /** Is the NI currently inside a flagged stall? */
    bool progressStalled() const { return _stalled; }

    /** Reliable packets fenced for carrying a stale channel epoch. */
    std::uint64_t staleEpochDrops() const
    {
        return _staleEpochDrops.value();
    }

    /** Control-queue depth (ACKs/NACKs/retransmissions pending). */
    std::size_t controlQueueDepth() const { return _ctrl.size(); }

    /** Receiver-side next expected reliable sequence from @p src. */
    std::uint64_t
    rxExpectedFrom(NodeId src) const
    {
        return _rx.at(src).expected;
    }

    stats::Group &statGroup() { return _stats; }

    /** Inject one bit error into the next outgoing packet (tests). */
    void corruptNextPacket() { _corruptNext = true; }

  private:
    struct MergeBuffer
    {
        bool valid = false;
        NodeId dstNode = INVALID_NODE;
        Addr dstStart = 0;
        Addr srcNext = 0;       //!< next contiguous source address
        std::vector<std::uint8_t> data;
        Tick lastWrite = 0;
    };

    bool isDram(Addr paddr) const { return paddr < _mem.size(); }

    /** Build, seal and queue a packet. */
    void emitPacket(NodeId dst, Addr dst_addr,
                    std::vector<std::uint8_t> &&payload, Tick ready);

    void handleAutoSingle(const OutLookup &lookup, const void *buf,
                          Addr len);
    void handleAutoBlock(const OutLookup &lookup, Addr paddr,
                         const void *buf, Addr len);

    /** Injection engine: Outgoing FIFO head -> mesh router. */
    void tryInject();

    /** Drain engine: Incoming FIFO -> main memory (EISA or Xpress). */
    void drainIncoming();

    /** Deliver one drained packet functionally + notify. */
    void commitArrival(NetPacket &&pkt);

    // ---- reliability layer (active only when params.reliability
    //      .enabled; see DESIGN.md "Reliability layer") ----

    /** Sequence-check an arriving reliable DATA packet. */
    void receiveReliableData(NetPacket &&pkt);

    /** Accept an in-order packet and drain the reorder buffer. */
    void acceptInOrder(NetPacket &&pkt);

    /** Build an ACK/NACK control packet toward @p dst. */
    NetPacket makeControl(NetPacket::Kind kind, NodeId dst,
                          std::uint64_t rseq);

    /** Enqueue a control/retransmission packet for injection. */
    void queueControl(NetPacket &&pkt);

    /** Coalesced cumulative-ACK scheduling for @p src. */
    void scheduleAck(NodeId src);
    void sendAckNow(NodeId src);

    /** Rate-limited NACK for the current gap toward @p src. */
    void sendNack(NodeId src);

    /** Delayed-ACK timer: flush every pending cumulative ACK. */
    void flushPendingAcks();

    /** Retry-cap exhaustion: mark every mapping toward @p dst. */
    void handleChannelFailure(NodeId dst);

    /** Mark every outgoing half toward @p dst errored; returns count. */
    unsigned errorMappingsToward(NodeId dst);

    NodeId _node;
    Params _params;
    XpressBus &_bus;
    EisaBus &_eisa;
    MainMemory &_mem;
    MeshBackplane &_backplane;
    Router &_router;

    Nipt _nipt;
    PacketFifo _outFifo;
    PacketFifo _inFifo;
    DeliberateDma _dma;
    MergeBuffer _merge;

    /** Receiver-side reliability state, one per source node. */
    struct RxState
    {
        std::uint64_t expected = 0;     //!< next in-order sequence
        unsigned unacked = 0;           //!< accepted since last ACK
        bool ackPending = false;
        /** Out-of-order packets held until the gap closes. */
        std::map<std::uint64_t, NetPacket> ooo;
        Tick lastNackAt = 0;
        std::uint64_t lastNackSeq = ~std::uint64_t{0};
        /** Congestion observed (marked packet, or our FIFO nearly
         *  full); echoed and cleared by the next outgoing ACK. */
        bool ecnPending = false;
        /** Channel epoch of the sender life this state belongs to
         *  (0 = epoch fencing unused). Survives channel resets. */
        std::uint32_t epoch = 0;
    };

    bool _accepting = true;     //!< incoming flow-control state
    bool _draining = false;     //!< a drain burst is in flight
    bool _outAboveThreshold = false;
    bool _corruptNext = false;
    bool _dmaWaitingForFifo = false;
    bool _crashed = false;      //!< node power-failed (crashNode)
    /** Bumped on crash: orphans in-flight drain-burst completions. */
    std::uint64_t _epoch = 0;
    /** Channel epoch stamped into outgoing packets (startNewEpoch);
     *  0 until the kernel's health service sets it. */
    std::uint32_t _chanEpoch = 0;
    Tick _nextInjectOk = 0;
    std::uint64_t _nextSeq = 0;

    // ---- progress watchdog (params.watchdogPeriod > 0) ----
    Tick _lastProgressAt = 0;
    bool _stalled = false;

    /** Record forward progress (injection or commit) for the watchdog. */
    void noteProgress();

    /** Periodic watchdog check: queued work + no progress = stall. */
    void watchdogTick();

    /** ACK/NACK + retransmission queue; injected ahead of the FIFO. */
    std::deque<NetPacket> _ctrl;
    std::vector<RxState> _rx;
    std::unique_ptr<RetransmitBuffer> _retx;

    EventFunctionWrapper _injectEvent;
    EventFunctionWrapper _drainEvent;
    EventFunctionWrapper _mergeTimerEvent;
    EventFunctionWrapper _ackEvent;
    EventFunctionWrapper _watchdogEvent;

    stats::Group _stats;
    stats::Counter _pktsSent{"pktsSent", "packets injected"};
    stats::Counter _pktsDelivered{"pktsDelivered",
                                  "packets delivered to memory"};
    stats::Counter _bytesSent{"bytesSent", "payload bytes injected"};
    stats::Counter _bytesDelivered{"bytesDelivered",
                                   "payload bytes delivered"};
    stats::Counter _dropsCrc{"dropsCrc",
                             "packets dropped: bad CRC or coords"};
    stats::Counter _dropsUnmapped{"dropsUnmapped",
                                  "packets dropped: page not mapped in"};
    stats::Counter _mergedWrites{"mergedWrites",
                                 "writes merged into a pending packet"};
    stats::Counter _mergeFlushTimeout{"mergeFlushTimeout",
                                      "merge buffers flushed by timer"};
    stats::Counter _ignoredStarts{"ignoredStarts",
                                  "command writes ignored (engine busy)"};
    stats::Counter _arrivalInterrupts{"arrivalInterrupts",
                                      "arrival interrupts raised"};
    stats::Counter _relAcksSent{"relAcksSent",
                                "cumulative ACK packets sent"};
    stats::Counter _relAcksRcvd{"relAcksRcvd", "ACK packets received"};
    stats::Counter _relNacksSent{"relNacksSent", "NACK packets sent"};
    stats::Counter _relNacksRcvd{"relNacksRcvd", "NACK packets received"};
    stats::Counter _relDupsSuppressed{
        "relDupsSuppressed", "duplicate data packets suppressed"};
    stats::Counter _relReorderFixes{
        "relReorderFixes", "out-of-order packets restored to order"};
    stats::Counter _relOooDrops{
        "relOooDrops", "out-of-order packets dropped (buffer full)"};
    stats::Counter _relMappingsErrored{
        "relMappingsErrored", "mapping halves marked errored"};
    stats::Counter _relDroppedFailed{
        "relDroppedFailed", "packets dropped toward failed destinations"};
    stats::Counter _crashDrops{
        "crashDrops", "packets discarded while the node was crashed"};
    stats::Counter _heartbeatsForwarded{
        "heartbeatsForwarded", "HEARTBEAT packets accepted off the wire"};
    stats::Counter _sendOverflowDrops{
        "sendOverflowDrops",
        "packets dropped at the sender: outgoing FIFO full"};
    stats::Counter _ecnMarksSeen{
        "ecnMarksSeen", "congestion marks latched off arriving data"};
    stats::Counter _ecnEchoesSent{
        "ecnEchoesSent", "ACKs sent carrying a congestion echo"};
    stats::Counter _watchdogStalls{
        "watchdogStalls", "no-forward-progress windows flagged"};
    stats::Counter _staleEpochDrops{
        "staleEpochDrops",
        "reliable packets fenced: stale sender channel epoch"};
    stats::Distribution _deliveryLatency{
        "deliveryLatency", "injection-to-memory latency (ticks)"};
    stats::Histogram _deliveryLatencyHist{
        "deliveryLatencyHist",
        "injection-to-memory latency distribution (ticks, log2 buckets)"};
};

} // namespace shrimp

#endif // SHRIMP_NIC_SHRIMP_NI_HH
