/**
 * @file
 * RetransmitBuffer: the sender half of the NI's end-to-end reliability
 * layer.
 *
 * The paper's SHRIMP backplane is assumed reliable; the NI's CRC only
 * *detects* corruption. To keep mapped pages coherent over lossy links
 * the NI can run a per-destination sliding-window protocol: every DATA
 * packet carries a sequence number, a bounded window of unacknowledged
 * copies is held here, and the receiver returns cumulative ACKs (and
 * immediate NACKs on a CRC failure or sequence gap). This class owns
 * the sender-side state machine:
 *
 *  - per-destination sequence assignment and a bounded window of
 *    unacked packet copies (a full window backpressures injection, so
 *    the outgoing FIFO -- and ultimately the CPU, via the threshold
 *    interrupt -- stalls instead of losing data);
 *  - a retransmission timer with exponential backoff (rto doubles per
 *    consecutive timeout, capped at rtoMax, reset by forward progress);
 *  - NACK fast retransmit, duplicate-NACK suppressed;
 *  - a retry cap: when one packet exhausts maxRetries the destination
 *    channel is declared failed, its window is discarded and the
 *    failure hook fires so the NI can mark the affected mappings
 *    errored (graceful degradation, never an assertion).
 */

#ifndef SHRIMP_NIC_RETRANSMIT_BUFFER_HH
#define SHRIMP_NIC_RETRANSMIT_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/**
 * Congestion-control tunables layered inside the reliability window.
 * Everything here defaults off so the plain sliding-window protocol
 * (and all its timing-exact tests) is unchanged unless a config opts
 * in.
 */
struct CongestionParams
{
    /** AIMD per-destination congestion window inside the reliability
     *  window: clean-ACK progress grows it by one packet per window,
     *  timeouts / NACK losses / ECN echoes halve it. */
    bool enabled = false;
    unsigned initialWindowPackets = 4;  //!< cwnd after (re)boot
    unsigned minWindowPackets = 1;      //!< multiplicative-decrease floor

    /**
     * Retry-storm suppression: a per-NI token bucket paces how many
     * retransmissions may leave in a burst. A timeout that finds the
     * bucket empty is deferred (no backoff growth, no retry charge)
     * until the next token accrues. 0 = pacer off.
     */
    unsigned paceBucketPackets = 0;
    Tick paceRefillInterval = 25 * ONE_US;  //!< one token per interval

    /**
     * Seeded jitter on the backed-off retransmission deadline, in
     * permille of the current rto, drawn from sim/random.hh so runs
     * stay deterministic. Desynchronizes the retransmit bursts every
     * sender would otherwise fire in lockstep after a link flap.
     * 0 = no jitter; currentRto()/peakRto never include jitter.
     */
    unsigned rtoJitterPermille = 0;
    std::uint64_t jitterSeed = 0x5EEDBACCULL;   //!< salted per NI
};

/** Tunables of the NI reliability layer (sender and receiver side). */
struct ReliabilityParams
{
    /** Master switch; off preserves the paper's exact wire format. */
    bool enabled = false;

    // ---- sender (RetransmitBuffer) ----
    unsigned windowPackets = 32;    //!< max unacked packets per dest
    Tick rtoBase = 50 * ONE_US;     //!< initial retransmission timeout
    Tick rtoMax = 5 * ONE_MS;       //!< backoff ceiling
    unsigned maxRetries = 8;        //!< per-packet cap before failure
    /** Ceiling on the backoff exponent itself: consecutive timeouts
     *  stop doubling the rto past this, independent of rtoMax (which
     *  only clips the resulting timeout). Keeps recovery probes coming
     *  at a bounded pace during long outages. */
    unsigned backoffExpCap = 16;

    /** End-to-end congestion control (AIMD + pacer + jitter). */
    CongestionParams congestion{};

    // ---- receiver (ShrimpNi) ----
    unsigned ackEvery = 4;          //!< cumulative-ACK coalescing count
    Tick ackDelay = 5 * ONE_US;     //!< delayed-ACK window
    unsigned reorderBufferPackets = 16; //!< out-of-order hold per source
};

/** Sender-side window/retransmission engine, one per ShrimpNi. */
class RetransmitBuffer : public SimObject
{
  public:
    struct Hooks
    {
        /** Queue a copy of @p pkt for (re)injection into the mesh. */
        std::function<void(NetPacket &&pkt)> retransmit;
        /** Destination @p dst exhausted its retry budget. */
        std::function<void(NodeId dst)> failed;
        /** Window space freed (ACK progress); retry blocked senders. */
        std::function<void()> windowSpace;
    };

    RetransmitBuffer(EventQueue &eq, std::string name,
                     const ReliabilityParams &params, unsigned num_nodes,
                     Hooks hooks, stats::Group *parent_stats);

    /** Next DATA sequence number toward @p dst. */
    std::uint64_t assignSeq(NodeId dst);

    /** May another packet toward @p dst enter the network? */
    bool hasRoom(NodeId dst) const;

    /** Has @p dst been declared unreachable? */
    bool isFailed(NodeId dst) const;

    /**
     * Record an injected DATA packet (a copy is held until its
     * sequence number is cumulatively acknowledged) and arm the
     * retransmission timer.
     */
    void record(const NetPacket &pkt);

    /**
     * Cumulative ACK from @p src: everything below @p next_expected
     * is delivered. @p ecn_echo carries the receiver's latched
     * congestion mark: true halves the AIMD window (rate-limited to
     * once per rtoBase) instead of growing it.
     */
    void onAck(NodeId src, std::uint64_t next_expected,
               bool ecn_echo = false);

    /** NACK from @p src: it still waits for @p missing; everything
     *  below is implicitly acknowledged; fast-retransmit the rest. */
    void onNack(NodeId src, std::uint64_t missing);

    /** Current (backed-off) retransmission timeout toward @p dst. */
    Tick currentRto(NodeId dst) const;

    /** Packets copies currently held for @p dst. */
    std::size_t windowFill(NodeId dst) const;

    /**
     * Declare @p dst failed on external evidence (the health service
     * saw the peer die) without waiting for the retry cap. Drops the
     * window and fires the failure hook, exactly like an exhausted
     * retry budget. No-op if already failed.
     */
    void forceFail(NodeId dst);

    /**
     * Forget everything about @p dst -- window, sequence numbers,
     * backoff, failed flag -- restoring the just-booted state. Used
     * when a crashed peer rejoins (both sides restart from seq 0).
     */
    void resetChannel(NodeId dst);

    /** Effective AIMD window toward @p dst (windowPackets when
     *  congestion control is off). */
    unsigned congestionWindow(NodeId dst) const;

    /**
     * First tick at which @p dst's window became (and stayed) full,
     * or 0 if it currently has room. The kernel's admission control
     * uses a persistently full window as an overload signal.
     */
    Tick windowFullSince(NodeId dst) const;

    /** Armed retransmission deadline toward @p dst (0 = unarmed). */
    Tick armedDeadline(NodeId dst) const
    {
        return _tx.at(dst).deadline;
    }

    /** Retry count of the oldest unacked packet toward @p dst. */
    unsigned
    headRetries(NodeId dst) const
    {
        const TxState &st = _tx.at(dst);
        return st.window.empty() ? 0 : st.window.front().retries;
    }

    /** Sequence of the oldest unacked packet toward @p dst. */
    std::uint64_t
    headSeq(NodeId dst) const
    {
        const TxState &st = _tx.at(dst);
        return st.window.empty() ? 0 : st.window.front().pkt.rseq;
    }

    std::uint64_t timeoutRetransmits() const
    {
        return _retxTimeout.value();
    }
    std::uint64_t nackRetransmits() const { return _retxNack.value(); }
    std::uint64_t pacedRetransmits() const { return _retxPaced.value(); }
    /** Most retransmissions deferred in one timer pass. */
    double peakPacedRetransmits() const { return _peakPacedRetx.value(); }
    std::uint64_t ecnBackoffs() const { return _ecnBackoffs.value(); }
    std::uint64_t lossBackoffs() const { return _lossBackoffs.value(); }
    std::uint64_t channelsFailed() const
    {
        return _channelsFailed.value();
    }
    /** Channels failed fast on a receiver sequence regression. */
    std::uint64_t staleNackFails() const
    {
        return _staleNackFails.value();
    }
    /** Largest backoff exponent observed since the last stats reset. */
    double peakBackoffExp() const { return _maxBackoffExp.value(); }
    /** Largest backed-off rto (ticks) observed since the last reset. */
    double peakRto() const { return _peakRto.value(); }

  private:
    struct Unacked
    {
        NetPacket pkt;
        unsigned retries = 0;
    };

    struct TxState
    {
        std::uint64_t nextSeq = 0;
        std::deque<Unacked> window;
        unsigned backoffExp = 0;
        Tick deadline = 0;      //!< 0 = timer idle
        Tick lastNackRetx = 0;
        std::uint64_t lastNackSeq = ~std::uint64_t{0};
        bool failed = false;

        // ---- receiver-regression detection (stale NACKs) ----
        std::uint64_t staleNackSeq = ~std::uint64_t{0};
        Tick staleNackAt = 0;

        // ---- AIMD congestion window (congestion.enabled only) ----
        unsigned cwnd = 0;      //!< 0 = not yet initialized
        unsigned ackCredits = 0;    //!< clean-ACK progress toward +1
        Tick lastCwndCutAt = 0;     //!< rate-limits halving
        Tick fullSince = 0;     //!< window hit its limit at this tick
    };

    Tick rtoOf(const TxState &st) const;

    /** AIMD limit on st.window (windowPackets when congestion off). */
    unsigned windowLimit(const TxState &st) const;

    /** Multiplicative decrease (rate-limited to once per rtoBase). */
    void cutWindow(TxState &st, bool ecn);

    /** Additive increase on @p acked clean-ACKed packets. */
    void growWindow(TxState &st, unsigned acked);

    /** Track the full/non-full transition for windowFullSince(). */
    void noteFillChange(TxState &st);

    /** Jitter to add to a retransmission deadline (0 if disabled). */
    Tick jitterOf(Tick rto);

    /** Take one pacer token; false = bucket empty, defer the retx. */
    bool takePaceToken(Tick now);

    /** Earliest tick at which the pacer will own a token again. */
    Tick nextPaceTokenAt() const;

    /** Fire the windowSpace hook, flattening re-entrant invocations
     *  so a callback that refills the window cannot recurse. */
    void fireWindowSpace();

    /** (Re)schedule the timer event at the earliest live deadline. */
    void rearm();

    /** Timer fired: retransmit or fail every expired destination. */
    void timeout();

    void failChannel(NodeId dst, TxState &st);

    ReliabilityParams _params;
    Hooks _hooks;
    std::vector<TxState> _tx;
    EventFunctionWrapper _timerEvent;

    // ---- retransmit pacer (shared across destinations) ----
    std::uint64_t _paceTokens = 0;
    Tick _paceLastRefill = 0;

    Rng _jitterRng;
    bool _inWindowSpace = false;
    bool _windowSpaceAgain = false;

    stats::Group _stats;
    stats::Counter _retxTimeout{"retxTimeout",
                                "retransmissions driven by timeout"};
    stats::Counter _retxNack{"retxNack",
                             "fast retransmissions driven by NACK"};
    stats::Counter _acksProcessed{"acksProcessed",
                                  "cumulative ACKs applied"};
    stats::Counter _packetsAcked{"packetsAcked",
                                 "window entries retired by ACKs"};
    stats::Counter _channelsFailed{"channelsFailed",
                                   "destinations declared unreachable"};
    stats::Peak _maxBackoffExp{"maxBackoffExp",
                               "largest backoff exponent reached"};
    stats::Peak _peakRto{"peakRtoTicks",
                         "largest backed-off retransmission timeout"};
    stats::Counter _retxPaced{"retxPaced",
                              "retransmissions deferred by the pacer"};
    stats::Peak _peakPacedRetx{
        "peakPacedRetransmits",
        "most retransmissions deferred in one timer pass"};
    stats::Counter _ecnBackoffs{"ecnBackoffs",
                                "cwnd halvings from ECN echoes"};
    stats::Counter _lossBackoffs{
        "lossBackoffs", "cwnd halvings from timeouts and NACK losses"};
    stats::Peak _peakCwnd{"peakCwnd",
                          "largest AIMD congestion window reached"};
    stats::Counter _staleNackFails{
        "staleNackFails",
        "channels failed fast on receiver sequence regression"};
};

} // namespace shrimp

#endif // SHRIMP_NIC_RETRANSMIT_BUFFER_HH
