/**
 * @file
 * RetransmitBuffer: the sender half of the NI's end-to-end reliability
 * layer.
 *
 * The paper's SHRIMP backplane is assumed reliable; the NI's CRC only
 * *detects* corruption. To keep mapped pages coherent over lossy links
 * the NI can run a per-destination sliding-window protocol: every DATA
 * packet carries a sequence number, a bounded window of unacknowledged
 * copies is held here, and the receiver returns cumulative ACKs (and
 * immediate NACKs on a CRC failure or sequence gap). This class owns
 * the sender-side state machine:
 *
 *  - per-destination sequence assignment and a bounded window of
 *    unacked packet copies (a full window backpressures injection, so
 *    the outgoing FIFO -- and ultimately the CPU, via the threshold
 *    interrupt -- stalls instead of losing data);
 *  - a retransmission timer with exponential backoff (rto doubles per
 *    consecutive timeout, capped at rtoMax, reset by forward progress);
 *  - NACK fast retransmit, duplicate-NACK suppressed;
 *  - a retry cap: when one packet exhausts maxRetries the destination
 *    channel is declared failed, its window is discarded and the
 *    failure hook fires so the NI can mark the affected mappings
 *    errored (graceful degradation, never an assertion).
 */

#ifndef SHRIMP_NIC_RETRANSMIT_BUFFER_HH
#define SHRIMP_NIC_RETRANSMIT_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/** Tunables of the NI reliability layer (sender and receiver side). */
struct ReliabilityParams
{
    /** Master switch; off preserves the paper's exact wire format. */
    bool enabled = false;

    // ---- sender (RetransmitBuffer) ----
    unsigned windowPackets = 32;    //!< max unacked packets per dest
    Tick rtoBase = 50 * ONE_US;     //!< initial retransmission timeout
    Tick rtoMax = 5 * ONE_MS;       //!< backoff ceiling
    unsigned maxRetries = 8;        //!< per-packet cap before failure
    /** Ceiling on the backoff exponent itself: consecutive timeouts
     *  stop doubling the rto past this, independent of rtoMax (which
     *  only clips the resulting timeout). Keeps recovery probes coming
     *  at a bounded pace during long outages. */
    unsigned backoffExpCap = 16;

    // ---- receiver (ShrimpNi) ----
    unsigned ackEvery = 4;          //!< cumulative-ACK coalescing count
    Tick ackDelay = 5 * ONE_US;     //!< delayed-ACK window
    unsigned reorderBufferPackets = 16; //!< out-of-order hold per source
};

/** Sender-side window/retransmission engine, one per ShrimpNi. */
class RetransmitBuffer : public SimObject
{
  public:
    struct Hooks
    {
        /** Queue a copy of @p pkt for (re)injection into the mesh. */
        std::function<void(NetPacket &&pkt)> retransmit;
        /** Destination @p dst exhausted its retry budget. */
        std::function<void(NodeId dst)> failed;
        /** Window space freed (ACK progress); retry blocked senders. */
        std::function<void()> windowSpace;
    };

    RetransmitBuffer(EventQueue &eq, std::string name,
                     const ReliabilityParams &params, unsigned num_nodes,
                     Hooks hooks, stats::Group *parent_stats);

    /** Next DATA sequence number toward @p dst. */
    std::uint64_t assignSeq(NodeId dst);

    /** May another packet toward @p dst enter the network? */
    bool hasRoom(NodeId dst) const;

    /** Has @p dst been declared unreachable? */
    bool isFailed(NodeId dst) const;

    /**
     * Record an injected DATA packet (a copy is held until its
     * sequence number is cumulatively acknowledged) and arm the
     * retransmission timer.
     */
    void record(const NetPacket &pkt);

    /** Cumulative ACK from @p src: everything below @p next_expected
     *  is delivered. */
    void onAck(NodeId src, std::uint64_t next_expected);

    /** NACK from @p src: it still waits for @p missing; everything
     *  below is implicitly acknowledged; fast-retransmit the rest. */
    void onNack(NodeId src, std::uint64_t missing);

    /** Current (backed-off) retransmission timeout toward @p dst. */
    Tick currentRto(NodeId dst) const;

    /** Packets copies currently held for @p dst. */
    std::size_t windowFill(NodeId dst) const;

    /**
     * Declare @p dst failed on external evidence (the health service
     * saw the peer die) without waiting for the retry cap. Drops the
     * window and fires the failure hook, exactly like an exhausted
     * retry budget. No-op if already failed.
     */
    void forceFail(NodeId dst);

    /**
     * Forget everything about @p dst -- window, sequence numbers,
     * backoff, failed flag -- restoring the just-booted state. Used
     * when a crashed peer rejoins (both sides restart from seq 0).
     */
    void resetChannel(NodeId dst);

    std::uint64_t timeoutRetransmits() const
    {
        return _retxTimeout.value();
    }
    std::uint64_t nackRetransmits() const { return _retxNack.value(); }
    std::uint64_t channelsFailed() const
    {
        return _channelsFailed.value();
    }
    /** Largest backoff exponent observed since the last stats reset. */
    double peakBackoffExp() const { return _maxBackoffExp.value(); }
    /** Largest backed-off rto (ticks) observed since the last reset. */
    double peakRto() const { return _peakRto.value(); }

  private:
    struct Unacked
    {
        NetPacket pkt;
        unsigned retries = 0;
    };

    struct TxState
    {
        std::uint64_t nextSeq = 0;
        std::deque<Unacked> window;
        unsigned backoffExp = 0;
        Tick deadline = 0;      //!< 0 = timer idle
        Tick lastNackRetx = 0;
        std::uint64_t lastNackSeq = ~std::uint64_t{0};
        bool failed = false;
    };

    Tick rtoOf(const TxState &st) const;

    /** (Re)schedule the timer event at the earliest live deadline. */
    void rearm();

    /** Timer fired: retransmit or fail every expired destination. */
    void timeout();

    void failChannel(NodeId dst, TxState &st);

    ReliabilityParams _params;
    Hooks _hooks;
    std::vector<TxState> _tx;
    EventFunctionWrapper _timerEvent;

    stats::Group _stats;
    stats::Counter _retxTimeout{"retxTimeout",
                                "retransmissions driven by timeout"};
    stats::Counter _retxNack{"retxNack",
                             "fast retransmissions driven by NACK"};
    stats::Counter _acksProcessed{"acksProcessed",
                                  "cumulative ACKs applied"};
    stats::Counter _packetsAcked{"packetsAcked",
                                 "window entries retired by ACKs"};
    stats::Counter _channelsFailed{"channelsFailed",
                                   "destinations declared unreachable"};
    stats::Peak _maxBackoffExp{"maxBackoffExp",
                               "largest backoff exponent reached"};
    stats::Peak _peakRto{"peakRtoTicks",
                         "largest backed-off retransmission timeout"};
};

} // namespace shrimp

#endif // SHRIMP_NIC_RETRANSMIT_BUFFER_HH
