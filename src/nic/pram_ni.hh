/**
 * @file
 * PramNi: the Pipelined RAM network interface of the paper's
 * experimental environment (Section 5.2, after Lipton & Sandberg's
 * PRAM). Each interface carries 32 KB of dual-ported SRAM; writes to
 * the local SRAM propagate to the peer interface's SRAM, exactly like
 * a complementary SHRIMP single-write automatic-update mapping -- but
 * only for this small on-board memory, with no NIPT, no deliberate
 * update, and no general mapping.
 *
 * The paper measured the Table 1 software overheads on two i486 PCs
 * with PRAM interfaces and argues the environment is "a restricted
 * version of SHRIMP -- application code that works on the
 * implementation environment will run without change on a real SHRIMP
 * system". tests/pram_test.cpp demonstrates precisely that: the same
 * emitted primitives produce the same instruction counts on both.
 */

#ifndef SHRIMP_NIC_PRAM_NI_HH
#define SHRIMP_NIC_PRAM_NI_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "mem/bus_interfaces.hh"
#include "mem/xpress_bus.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/** One PRAM network interface board. */
class PramNi : public SimObject, public BusTarget
{
  public:
    static constexpr Addr sramBytes = 32 * 1024;

    struct Params
    {
        Addr sramBase = 0x5000'0000;    //!< physical window base
        /** Local write to remote SRAM update latency. The PRAM
         *  prototype's point-to-point path, a few microseconds. */
        Tick propagationLatency = 3 * ONE_US;
    };

    PramNi(EventQueue &eq, std::string name, const Params &params,
           XpressBus &bus)
        : SimObject(eq, std::move(name)),
          _params(params),
          _sram(sramBytes, 0),
          _stats(this->name())
    {
        _stats.addStat(&_writesPropagated);
        bus.addTarget(params.sramBase, sramBytes, this);
    }

    /** Connect to the peer interface (symmetric; call on both). */
    void connectPeer(PramNi *peer) { _peer = peer; }

    const Params &params() const { return _params; }
    Addr sramBase() const { return _params.sramBase; }
    PageNum sramBasePage() const { return pageOf(_params.sramBase); }
    std::size_t sramPages() const { return sramBytes / PAGE_SIZE; }

    // ---- BusTarget ----
    std::uint64_t
    busRead(Addr paddr, unsigned size) override
    {
        Addr off = paddr - _params.sramBase;
        std::uint64_t v = 0;
        std::memcpy(&v, _sram.data() + off, size);
        return v;
    }

    void
    busWrite(Addr paddr, const void *buf, Addr len) override
    {
        Addr off = paddr - _params.sramBase;
        std::memcpy(_sram.data() + off, buf, len);

        // Dual-ported SRAM: the write is mirrored into the peer's
        // SRAM after the propagation latency.
        if (_peer) {
            std::vector<std::uint8_t> copy(
                static_cast<const std::uint8_t *>(buf),
                static_cast<const std::uint8_t *>(buf) + len);
            ++_writesPropagated;
            eventQueue().scheduleFn(
                [peer = _peer, off, data = std::move(copy)]() {
                    peer->remoteDeposit(off, data.data(),
                                        data.size());
                },
                curTick() + _params.propagationLatency,
                EventPriority::DEFAULT, "pram propagate");
        }
    }

    /** A peer write landing in our SRAM (not re-propagated). */
    void
    remoteDeposit(Addr off, const void *buf, Addr len)
    {
        std::memcpy(_sram.data() + off, buf, len);
    }

    std::uint64_t writesPropagated() const
    {
        return _writesPropagated.value();
    }
    stats::Group &statGroup() { return _stats; }

  private:
    Params _params;
    std::vector<std::uint8_t> _sram;
    PramNi *_peer = nullptr;

    stats::Group _stats;
    stats::Counter _writesPropagated{"writesPropagated",
                                     "writes mirrored to the peer"};
};

} // namespace shrimp

#endif // SHRIMP_NIC_PRAM_NI_HH
