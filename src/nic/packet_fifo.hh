/**
 * @file
 * PacketFifo: the network interface's Outgoing / Incoming FIFOs, with
 * the programmable thresholds the paper's flow control is built on
 * (Section 4): an incoming FIFO above its stop threshold makes the NIC
 * refuse packets from the network; an outgoing FIFO above its
 * threshold interrupts the CPU until it drains.
 */

#ifndef SHRIMP_NIC_PACKET_FIFO_HH
#define SHRIMP_NIC_PACKET_FIFO_HH

#include <deque>
#include <functional>

#include "net/packet.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp
{

/**
 * A byte-accounted FIFO of packets with hysteresis thresholds.
 *
 * Threshold semantics (pinned by fifo_test's threshold-crossing
 * tests): a fill of exactly highThresholdBytes still counts as
 * "below" -- belowHighThreshold() is true and no callback fires; only
 * a push that moves the fill from <= high to strictly > high fires
 * onAboveThreshold. Symmetrically, draining counts from strictly
 * above lowThresholdBytes to exactly at-or-below it fires onDrained:
 * a pop landing exactly on the low threshold does fire. Both
 * callbacks are edge-triggered -- staying above (or below) never
 * refires them.
 */
class PacketFifo
{
  public:
    struct Params
    {
        Addr capacityBytes = 64 * 1024;
        /** Crossing strictly above this (from <=) fires
         *  onAboveThreshold. */
        Addr highThresholdBytes = 56 * 1024;
        /** Crossing to-or-below this (from above) fires onDrained. */
        Addr lowThresholdBytes = 32 * 1024;
    };

    explicit PacketFifo(std::string name, const Params &params)
        : _params(params), _stats(std::move(name))
    {
        SHRIMP_ASSERT(params.lowThresholdBytes <=
                          params.highThresholdBytes &&
                      params.highThresholdBytes <= params.capacityBytes,
                      "inconsistent FIFO thresholds");
        _stats.addStat(&_pushes);
        _stats.addStat(&_maxFill);
        _stats.addStat(&_depth);
    }

    /** Fired when fill first exceeds the high threshold. */
    std::function<void()> onAboveThreshold;
    /** Fired when fill falls back to/below the low threshold. */
    std::function<void()> onDrained;

    struct Item
    {
        NetPacket pkt;
        Tick ready;     //!< earliest tick the consumer may take it
    };

    bool empty() const { return _items.empty(); }
    std::size_t packets() const { return _items.size(); }
    Addr fillBytes() const { return _fillBytes; }
    const Params &params() const { return _params; }

    /** Would @p bytes more fit without exceeding capacity? */
    bool
    wouldFit(Addr bytes) const
    {
        return _fillBytes + bytes <= _params.capacityBytes;
    }

    /** Is the fill at or below the high threshold (accepting)? */
    bool
    belowHighThreshold() const
    {
        return _fillBytes <= _params.highThresholdBytes;
    }

    void
    push(NetPacket &&pkt, Tick ready)
    {
        Addr bytes = pkt.wireBytes();
        SHRIMP_ASSERT(wouldFit(bytes),
                      "FIFO overflow: fill=", _fillBytes, " +", bytes,
                      " > ", _params.capacityBytes);
        bool was_below = belowHighThreshold();
        _fillBytes += bytes;
        _items.push_back(Item{std::move(pkt), ready});
        ++_pushes;
        _maxFill.observe(static_cast<double>(_fillBytes));
        _depth.sample(_items.size());
        if (was_below && !belowHighThreshold() && onAboveThreshold)
            onAboveThreshold();
    }

    const Item &
    front() const
    {
        SHRIMP_ASSERT(!_items.empty(), "front of empty FIFO");
        return _items.front();
    }

    /** Item @p i positions behind the head (for coalescing scans). */
    const Item &
    at(std::size_t i) const
    {
        SHRIMP_ASSERT(i < _items.size(), "FIFO index out of range");
        return _items[i];
    }

    NetPacket
    pop()
    {
        SHRIMP_ASSERT(!_items.empty(), "pop of empty FIFO");
        bool was_above = _fillBytes > _params.lowThresholdBytes;
        NetPacket pkt = std::move(_items.front().pkt);
        _items.pop_front();
        _fillBytes -= pkt.wireBytes();
        if (was_above && _fillBytes <= _params.lowThresholdBytes &&
            onDrained) {
            onDrained();
        }
        return pkt;
    }

    /**
     * Discard every queued packet (node crash / power fail). No
     * threshold callback fires -- this is not a drain but a reset, and
     * the owner is expected to rebuild its own flow-control state
     * (accepting/stalled flags) alongside.
     */
    void
    clear()
    {
        _items.clear();
        _fillBytes = 0;
    }

    std::uint64_t pushCount() const { return _pushes.value(); }

    /** Peak fill since construction or the last stats reset. */
    Addr
    maxFillBytes() const
    {
        return static_cast<Addr>(_maxFill.value());
    }

    stats::Group &statGroup() { return _stats; }

  private:
    Params _params;
    std::deque<Item> _items;
    Addr _fillBytes = 0;

    stats::Group _stats;
    stats::Counter _pushes{"pushes", "packets pushed"};
    /** Self-tracking peak: a resetAll() genuinely restarts it, so
     *  post-reset peaks below an old high-water mark are not lost. */
    stats::Peak _maxFill{"maxFillBytes", "peak fill level"};
    stats::Histogram _depth{"depthPackets",
                            "queue depth (packets) observed at push"};
};

} // namespace shrimp

#endif // SHRIMP_NIC_PACKET_FIFO_HH
