#include "nic/retransmit_buffer.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

RetransmitBuffer::RetransmitBuffer(EventQueue &eq, std::string name,
                                   const ReliabilityParams &params,
                                   unsigned num_nodes, Hooks hooks,
                                   stats::Group *parent_stats)
    : SimObject(eq, std::move(name)),
      _params(params),
      _hooks(std::move(hooks)),
      _tx(num_nodes),
      _timerEvent([this] { timeout(); }, "retransmit timeout"),
      _paceTokens(params.congestion.paceBucketPackets),
      _jitterRng(params.congestion.jitterSeed),
      _stats("retx", parent_stats)
{
    SHRIMP_ASSERT(params.windowPackets > 0, "empty retransmit window");
    SHRIMP_ASSERT(params.rtoBase > 0, "zero retransmission timeout");
    SHRIMP_ASSERT(params.congestion.paceBucketPackets == 0 ||
                      params.congestion.paceRefillInterval > 0,
                  "pacer enabled with a zero refill interval");
    _stats.addStat(&_retxTimeout);
    _stats.addStat(&_retxNack);
    _stats.addStat(&_acksProcessed);
    _stats.addStat(&_packetsAcked);
    _stats.addStat(&_channelsFailed);
    _stats.addStat(&_maxBackoffExp);
    _stats.addStat(&_peakRto);
    _stats.addStat(&_retxPaced);
    _stats.addStat(&_peakPacedRetx);
    _stats.addStat(&_ecnBackoffs);
    _stats.addStat(&_lossBackoffs);
    _stats.addStat(&_peakCwnd);
    _stats.addStat(&_staleNackFails);
}

std::uint64_t
RetransmitBuffer::assignSeq(NodeId dst)
{
    return _tx.at(dst).nextSeq++;
}

bool
RetransmitBuffer::hasRoom(NodeId dst) const
{
    const TxState &st = _tx.at(dst);
    return !st.failed && st.window.size() < windowLimit(st);
}

unsigned
RetransmitBuffer::windowLimit(const TxState &st) const
{
    const CongestionParams &cc = _params.congestion;
    if (!cc.enabled)
        return _params.windowPackets;
    unsigned floor = cc.minWindowPackets > 0 ? cc.minWindowPackets : 1;
    unsigned w = st.cwnd != 0 ? st.cwnd : cc.initialWindowPackets;
    if (w < floor)
        w = floor;
    if (w > _params.windowPackets)
        w = _params.windowPackets;
    return w;
}

unsigned
RetransmitBuffer::congestionWindow(NodeId dst) const
{
    return windowLimit(_tx.at(dst));
}

Tick
RetransmitBuffer::windowFullSince(NodeId dst) const
{
    return _tx.at(dst).fullSince;
}

void
RetransmitBuffer::noteFillChange(TxState &st)
{
    bool full = st.window.size() >= windowLimit(st);
    if (full && st.fullSince == 0)
        st.fullSince = curTick();
    else if (!full)
        st.fullSince = 0;
}

void
RetransmitBuffer::cutWindow(TxState &st, bool ecn)
{
    const CongestionParams &cc = _params.congestion;
    if (!cc.enabled)
        return;
    // One multiplicative decrease per rtoBase: a burst of echoes or
    // losses within one timeout is a single congestion event.
    Tick now = curTick();
    if (st.lastCwndCutAt != 0 && now - st.lastCwndCutAt < _params.rtoBase)
        return;
    st.lastCwndCutAt = now;
    unsigned before = windowLimit(st);
    unsigned floor = cc.minWindowPackets > 0 ? cc.minWindowPackets : 1;
    st.cwnd = before / 2 > floor ? before / 2 : floor;
    st.ackCredits = 0;
    if (ecn)
        ++_ecnBackoffs;
    else
        ++_lossBackoffs;
    noteFillChange(st);
}

void
RetransmitBuffer::growWindow(TxState &st, unsigned acked)
{
    const CongestionParams &cc = _params.congestion;
    if (!cc.enabled)
        return;
    if (st.cwnd == 0)
        st.cwnd = windowLimit(st);
    st.ackCredits += acked;
    // Additive increase: one packet per congestion window of clean
    // ACKs, never past the reliability window.
    while (st.cwnd < _params.windowPackets && st.ackCredits >= st.cwnd) {
        st.ackCredits -= st.cwnd;
        ++st.cwnd;
    }
    if (st.cwnd >= _params.windowPackets)
        st.ackCredits = 0;
    _peakCwnd.observe(static_cast<double>(st.cwnd));
    noteFillChange(st);
}

Tick
RetransmitBuffer::jitterOf(Tick rto)
{
    unsigned permille = _params.congestion.rtoJitterPermille;
    if (permille == 0)
        return 0;
    return _jitterRng.below(rto * permille / 1000 + 1);
}

bool
RetransmitBuffer::takePaceToken(Tick now)
{
    const CongestionParams &cc = _params.congestion;
    if (cc.paceBucketPackets == 0)
        return true;
    Tick earned = (now - _paceLastRefill) / cc.paceRefillInterval;
    if (earned > 0) {
        std::uint64_t tokens = _paceTokens + earned;
        _paceTokens = tokens < cc.paceBucketPackets
                          ? tokens
                          : cc.paceBucketPackets;
        _paceLastRefill += earned * cc.paceRefillInterval;
    }
    if (_paceTokens == 0)
        return false;
    --_paceTokens;
    return true;
}

Tick
RetransmitBuffer::nextPaceTokenAt() const
{
    return _paceLastRefill + _params.congestion.paceRefillInterval;
}

void
RetransmitBuffer::fireWindowSpace()
{
    if (!_hooks.windowSpace)
        return;
    // A callback may synchronously refill the window and trigger more
    // ACK processing; flatten the recursion so waiters are neither
    // skipped nor serviced from an unbounded call stack.
    if (_inWindowSpace) {
        _windowSpaceAgain = true;
        return;
    }
    _inWindowSpace = true;
    do {
        _windowSpaceAgain = false;
        _hooks.windowSpace();
    } while (_windowSpaceAgain);
    _inWindowSpace = false;
}

bool
RetransmitBuffer::isFailed(NodeId dst) const
{
    return _tx.at(dst).failed;
}

Tick
RetransmitBuffer::rtoOf(const TxState &st) const
{
    // Exponential backoff, saturating at rtoMax.
    Tick rto = _params.rtoBase;
    for (unsigned i = 0; i < st.backoffExp && rto < _params.rtoMax; ++i)
        rto *= 2;
    return rto < _params.rtoMax ? rto : _params.rtoMax;
}

Tick
RetransmitBuffer::currentRto(NodeId dst) const
{
    return rtoOf(_tx.at(dst));
}

std::size_t
RetransmitBuffer::windowFill(NodeId dst) const
{
    return _tx.at(dst).window.size();
}

void
RetransmitBuffer::record(const NetPacket &pkt)
{
    TxState &st = _tx.at(pkt.dstNode);
    SHRIMP_ASSERT(!st.failed, "record toward a failed destination");
    SHRIMP_ASSERT(st.window.size() < windowLimit(st),
                  "retransmit window overrun toward ", pkt.dstNode);
    st.window.push_back(Unacked{pkt, 0});
    noteFillChange(st);
    if (st.deadline == 0) {
        st.deadline = curTick() + rtoOf(st);
        rearm();
    }
}

void
RetransmitBuffer::onAck(NodeId src, std::uint64_t next_expected,
                        bool ecn_echo)
{
    TxState &st = _tx.at(src);
    if (st.failed)
        return;
    ++_acksProcessed;

    unsigned acked = 0;
    while (!st.window.empty() &&
           st.window.front().pkt.rseq < next_expected) {
        st.window.pop_front();
        ++_packetsAcked;
        ++acked;
    }

    // The receiver saw congestion (its FIFO nearly full, or a router
    // queue above threshold): shrink before loss forces it.
    if (ecn_echo)
        cutWindow(st, true);

    if (acked == 0)
        return;

    if (!ecn_echo)
        growWindow(st, acked);
    noteFillChange(st);

    // Forward progress: the path works, restart backoff and the timer.
    st.backoffExp = 0;
    st.deadline = st.window.empty() ? 0 : curTick() + rtoOf(st);
    rearm();
    fireWindowSpace();
}

void
RetransmitBuffer::onNack(NodeId src, std::uint64_t missing)
{
    TxState &st = _tx.at(src);
    if (st.failed)
        return;

    // A NACK carries a cumulative ACK for everything below the
    // missing sequence.
    onAck(src, missing);

    // A NACK for a sequence we already retired can only follow a
    // cumulative ACK that covered it, so the receiver lost its
    // position (e.g. a late crash-recovery reset raced our restarted
    // stream). A NACK that merely crossed an ACK in flight looks the
    // same -- but only once: the receiver cannot ask again for a gap
    // it has since filled. A repeated stale NACK for one sequence
    // proves the stream will never resynchronize; fail the channel
    // now instead of burning the whole retry budget against it.
    if (!st.window.empty() && missing < st.window.front().pkt.rseq) {
        Tick now = curTick();
        if (st.staleNackSeq == missing) {
            // Ignore same-tick duplicates of one NACK packet.
            if (now - st.staleNackAt >= _params.rtoBase / 2) {
                ++_staleNackFails;
                SHRIMP_DTRACE("Retx", now, name(),
                              "receiver ", src,
                              " regressed to seq ", missing,
                              " behind window base ",
                              st.window.front().pkt.rseq,
                              "; failing channel");
                failChannel(src, st);
            }
        } else {
            st.staleNackSeq = missing;
            st.staleNackAt = now;
        }
        return;
    }

    if (st.window.empty() || st.window.front().pkt.rseq != missing)
        return;     // already retired, or not yet transmitted

    // Suppress a burst of NACKs for the same gap: the receiver emits
    // one per out-of-order arrival, one retransmission answers all.
    Tick now = curTick();
    if (st.lastNackSeq == missing &&
        now - st.lastNackRetx < _params.rtoBase) {
        return;
    }
    st.lastNackSeq = missing;
    st.lastNackRetx = now;

    // A NACK implies a drop on the path: multiplicative decrease.
    cutWindow(st, false);

    // Pacer empty: skip the fast retransmit (no retry charged); the
    // timeout path will resend once a token accrues.
    if (!takePaceToken(now)) {
        ++_retxPaced;
        st.deadline = now + rtoOf(st);
        rearm();
        return;
    }

    Unacked &head = st.window.front();
    ++head.retries;
    if (head.retries > _params.maxRetries) {
        failChannel(src, st);
        return;
    }
    ++_retxNack;
    if (auto *t = eventQueue().tracer()) {
        t->instant(now, name(), "rel", "retxNack",
                   {trace::arg("dst", static_cast<std::uint64_t>(src)),
                    trace::arg("rseq", missing),
                    trace::arg("try", head.retries)});
    }
    SHRIMP_DTRACE("Retx", now, name(), "NACK fast retransmit seq ",
                  missing, " -> node ", src);
    if (_hooks.retransmit)
        _hooks.retransmit(NetPacket{head.pkt});

    // Restart the timer; fast retransmit is progress-neutral, so the
    // current backoff level is kept.
    st.deadline = now + rtoOf(st) + jitterOf(rtoOf(st));
    rearm();
}

void
RetransmitBuffer::timeout()
{
    Tick now = curTick();
    std::uint64_t paced_this_pass = 0;
    for (NodeId dst = 0; dst < _tx.size(); ++dst) {
        TxState &st = _tx[dst];
        if (st.failed || st.deadline == 0 || st.deadline > now)
            continue;

        SHRIMP_ASSERT(!st.window.empty(), "armed timer, empty window");

        // Retry-storm suppression: with the pacer bucket empty the
        // retransmit is deferred to the next token, charging neither
        // a retry nor backoff growth -- a synchronized burst after a
        // link flap trickles out instead of slamming the mesh.
        if (!takePaceToken(now)) {
            ++_retxPaced;
            ++paced_this_pass;
            st.deadline = nextPaceTokenAt();
            continue;
        }

        Unacked &head = st.window.front();
        ++head.retries;
        if (head.retries > _params.maxRetries) {
            failChannel(dst, st);
            continue;
        }

        // Go-back-one with cumulative ACKs: retransmitting the oldest
        // unacked packet is enough to restart the pipeline; later
        // losses surface as NACKs or further timeouts.
        ++_retxTimeout;
        if (auto *t = eventQueue().tracer()) {
            t->instant(
                now, name(), "rel", "retxTimeout",
                {trace::arg("dst", static_cast<std::uint64_t>(dst)),
                 trace::arg("rseq", head.pkt.rseq),
                 trace::arg("try", head.retries)});
        }
        if (st.backoffExp < _params.backoffExpCap)
            ++st.backoffExp;
        _maxBackoffExp.observe(static_cast<double>(st.backoffExp));
        _peakRto.observe(static_cast<double>(rtoOf(st)));
        cutWindow(st, false);
        SHRIMP_DTRACE("Retx", now, name(), "timeout retransmit seq ",
                      head.pkt.rseq, " -> node ", dst, " try ",
                      head.retries, " rto ", rtoOf(st));
        if (_hooks.retransmit)
            _hooks.retransmit(NetPacket{head.pkt});
        st.deadline = now + rtoOf(st) + jitterOf(rtoOf(st));
    }
    if (paced_this_pass > 0)
        _peakPacedRetx.observe(static_cast<double>(paced_this_pass));
    rearm();
}

void
RetransmitBuffer::forceFail(NodeId dst)
{
    TxState &st = _tx.at(dst);
    if (!st.failed)
        failChannel(dst, st);
}

void
RetransmitBuffer::resetChannel(NodeId dst)
{
    _tx.at(dst) = TxState{};
    rearm();
    SHRIMP_DTRACE("Retx", curTick(), name(), "channel toward node ", dst,
                  " reset");
}

void
RetransmitBuffer::failChannel(NodeId dst, TxState &st)
{
    // Retry budget exhausted: degrade gracefully. Drop the window,
    // refuse future traffic toward dst, and let the NI mark the
    // affected mappings errored.
    ++_channelsFailed;
    st.failed = true;
    st.window.clear();
    st.deadline = 0;
    st.fullSince = 0;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "rel", "channelFailed",
                   {trace::arg("dst",
                               static_cast<std::uint64_t>(dst))});
    }
    SHRIMP_DTRACE("Retx", curTick(), name(), "destination ", dst,
                  " declared unreachable after ", _params.maxRetries,
                  " retries");
    rearm();
    if (_hooks.failed)
        _hooks.failed(dst);
}

void
RetransmitBuffer::rearm()
{
    Tick next = MAX_TICK;
    for (const TxState &st : _tx) {
        if (!st.failed && st.deadline != 0 && st.deadline < next)
            next = st.deadline;
    }
    if (next == MAX_TICK) {
        if (_timerEvent.scheduled())
            deschedule(_timerEvent);
        return;
    }
    reschedule(_timerEvent, next < curTick() ? curTick() : next);
}

} // namespace shrimp
