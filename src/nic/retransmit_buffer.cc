#include "nic/retransmit_buffer.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

RetransmitBuffer::RetransmitBuffer(EventQueue &eq, std::string name,
                                   const ReliabilityParams &params,
                                   unsigned num_nodes, Hooks hooks,
                                   stats::Group *parent_stats)
    : SimObject(eq, std::move(name)),
      _params(params),
      _hooks(std::move(hooks)),
      _tx(num_nodes),
      _timerEvent([this] { timeout(); }, "retransmit timeout"),
      _stats("retx", parent_stats)
{
    SHRIMP_ASSERT(params.windowPackets > 0, "empty retransmit window");
    SHRIMP_ASSERT(params.rtoBase > 0, "zero retransmission timeout");
    _stats.addStat(&_retxTimeout);
    _stats.addStat(&_retxNack);
    _stats.addStat(&_acksProcessed);
    _stats.addStat(&_packetsAcked);
    _stats.addStat(&_channelsFailed);
    _stats.addStat(&_maxBackoffExp);
    _stats.addStat(&_peakRto);
}

std::uint64_t
RetransmitBuffer::assignSeq(NodeId dst)
{
    return _tx.at(dst).nextSeq++;
}

bool
RetransmitBuffer::hasRoom(NodeId dst) const
{
    const TxState &st = _tx.at(dst);
    return !st.failed && st.window.size() < _params.windowPackets;
}

bool
RetransmitBuffer::isFailed(NodeId dst) const
{
    return _tx.at(dst).failed;
}

Tick
RetransmitBuffer::rtoOf(const TxState &st) const
{
    // Exponential backoff, saturating at rtoMax.
    Tick rto = _params.rtoBase;
    for (unsigned i = 0; i < st.backoffExp && rto < _params.rtoMax; ++i)
        rto *= 2;
    return rto < _params.rtoMax ? rto : _params.rtoMax;
}

Tick
RetransmitBuffer::currentRto(NodeId dst) const
{
    return rtoOf(_tx.at(dst));
}

std::size_t
RetransmitBuffer::windowFill(NodeId dst) const
{
    return _tx.at(dst).window.size();
}

void
RetransmitBuffer::record(const NetPacket &pkt)
{
    TxState &st = _tx.at(pkt.dstNode);
    SHRIMP_ASSERT(!st.failed, "record toward a failed destination");
    SHRIMP_ASSERT(st.window.size() < _params.windowPackets,
                  "retransmit window overrun toward ", pkt.dstNode);
    st.window.push_back(Unacked{pkt, 0});
    if (st.deadline == 0) {
        st.deadline = curTick() + rtoOf(st);
        rearm();
    }
}

void
RetransmitBuffer::onAck(NodeId src, std::uint64_t next_expected)
{
    TxState &st = _tx.at(src);
    if (st.failed)
        return;
    ++_acksProcessed;

    bool progress = false;
    while (!st.window.empty() &&
           st.window.front().pkt.rseq < next_expected) {
        st.window.pop_front();
        ++_packetsAcked;
        progress = true;
    }
    if (!progress)
        return;

    // Forward progress: the path works, restart backoff and the timer.
    st.backoffExp = 0;
    st.deadline = st.window.empty() ? 0 : curTick() + rtoOf(st);
    rearm();
    if (_hooks.windowSpace)
        _hooks.windowSpace();
}

void
RetransmitBuffer::onNack(NodeId src, std::uint64_t missing)
{
    TxState &st = _tx.at(src);
    if (st.failed)
        return;

    // A NACK carries a cumulative ACK for everything below the
    // missing sequence.
    onAck(src, missing);

    if (st.window.empty() || st.window.front().pkt.rseq != missing)
        return;     // already retired, or not yet transmitted

    // Suppress a burst of NACKs for the same gap: the receiver emits
    // one per out-of-order arrival, one retransmission answers all.
    Tick now = curTick();
    if (st.lastNackSeq == missing &&
        now - st.lastNackRetx < _params.rtoBase) {
        return;
    }
    st.lastNackSeq = missing;
    st.lastNackRetx = now;

    Unacked &head = st.window.front();
    ++head.retries;
    if (head.retries > _params.maxRetries) {
        failChannel(src, st);
        return;
    }
    ++_retxNack;
    if (auto *t = eventQueue().tracer()) {
        t->instant(now, name(), "rel", "retxNack",
                   {trace::arg("dst", static_cast<std::uint64_t>(src)),
                    trace::arg("rseq", missing),
                    trace::arg("try", head.retries)});
    }
    SHRIMP_DTRACE("Retx", now, name(), "NACK fast retransmit seq ",
                  missing, " -> node ", src);
    if (_hooks.retransmit)
        _hooks.retransmit(NetPacket{head.pkt});

    // Restart the timer; fast retransmit is progress-neutral, so the
    // current backoff level is kept.
    st.deadline = now + rtoOf(st);
    rearm();
}

void
RetransmitBuffer::timeout()
{
    Tick now = curTick();
    for (NodeId dst = 0; dst < _tx.size(); ++dst) {
        TxState &st = _tx[dst];
        if (st.failed || st.deadline == 0 || st.deadline > now)
            continue;

        SHRIMP_ASSERT(!st.window.empty(), "armed timer, empty window");
        Unacked &head = st.window.front();
        ++head.retries;
        if (head.retries > _params.maxRetries) {
            failChannel(dst, st);
            continue;
        }

        // Go-back-one with cumulative ACKs: retransmitting the oldest
        // unacked packet is enough to restart the pipeline; later
        // losses surface as NACKs or further timeouts.
        ++_retxTimeout;
        if (auto *t = eventQueue().tracer()) {
            t->instant(
                now, name(), "rel", "retxTimeout",
                {trace::arg("dst", static_cast<std::uint64_t>(dst)),
                 trace::arg("rseq", head.pkt.rseq),
                 trace::arg("try", head.retries)});
        }
        if (st.backoffExp < _params.backoffExpCap)
            ++st.backoffExp;
        _maxBackoffExp.observe(static_cast<double>(st.backoffExp));
        _peakRto.observe(static_cast<double>(rtoOf(st)));
        SHRIMP_DTRACE("Retx", now, name(), "timeout retransmit seq ",
                      head.pkt.rseq, " -> node ", dst, " try ",
                      head.retries, " rto ", rtoOf(st));
        if (_hooks.retransmit)
            _hooks.retransmit(NetPacket{head.pkt});
        st.deadline = now + rtoOf(st);
    }
    rearm();
}

void
RetransmitBuffer::forceFail(NodeId dst)
{
    TxState &st = _tx.at(dst);
    if (!st.failed)
        failChannel(dst, st);
}

void
RetransmitBuffer::resetChannel(NodeId dst)
{
    _tx.at(dst) = TxState{};
    rearm();
    SHRIMP_DTRACE("Retx", curTick(), name(), "channel toward node ", dst,
                  " reset");
}

void
RetransmitBuffer::failChannel(NodeId dst, TxState &st)
{
    // Retry budget exhausted: degrade gracefully. Drop the window,
    // refuse future traffic toward dst, and let the NI mark the
    // affected mappings errored.
    ++_channelsFailed;
    st.failed = true;
    st.window.clear();
    st.deadline = 0;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "rel", "channelFailed",
                   {trace::arg("dst",
                               static_cast<std::uint64_t>(dst))});
    }
    SHRIMP_DTRACE("Retx", curTick(), name(), "destination ", dst,
                  " declared unreachable after ", _params.maxRetries,
                  " retries");
    rearm();
    if (_hooks.failed)
        _hooks.failed(dst);
}

void
RetransmitBuffer::rearm()
{
    Tick next = MAX_TICK;
    for (const TxState &st : _tx) {
        if (!st.failed && st.deadline != 0 && st.deadline < next)
            next = st.deadline;
    }
    if (next == MAX_TICK) {
        if (_timerEvent.scheduled())
            deschedule(_timerEvent);
        return;
    }
    reschedule(_timerEvent, next < curTick() ? curTick() : next);
}

} // namespace shrimp
