/**
 * @file
 * DeliberateDma: the network interface's single DMA engine for
 * user-level block transfers (Section 4.3).
 *
 * The engine serves one request at a time. A user process claims it
 * with a locked CMPXCHG to a command page: the read cycle returns 0
 * when the engine is free (causing the CMPXCHG to generate the write
 * cycle, which starts the transfer) or an encoded busy status
 * otherwise. The engine reads source data from main memory over the
 * Xpress bus; the outgoing datapath captures it exactly as it captures
 * automatic-update writes, and packetizes it for the network.
 */

#ifndef SHRIMP_NIC_DELIBERATE_DMA_HH
#define SHRIMP_NIC_DELIBERATE_DMA_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"
#include "nic/nipt.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/** Encoding of the command-page read status (see statusRead()). */
namespace dma_status
{
/** Bit 0: the read address matches the engine's current base. */
constexpr std::uint64_t ADDR_MATCH = 1;
/** Words remaining are reported in bits [31:1]. */
constexpr unsigned REMAINING_SHIFT = 1;

constexpr std::uint64_t FREE = 0;

/**
 * The last transfer from this page was aborted mid-flight (its
 * mapping was torn down -- peer died -- or the node crashed).
 * Distinct from FREE, every encodeBusy() value (those fit in 33
 * bits) and the NI's statusMapError (~0).
 */
constexpr std::uint64_t ABORTED = ~std::uint64_t{0} - 1;

constexpr std::uint64_t
encodeBusy(std::uint32_t words_remaining, bool match)
{
    return (static_cast<std::uint64_t>(words_remaining)
            << REMAINING_SHIFT) |
           (match ? ADDR_MATCH : 0);
}
} // namespace dma_status

/** The single deliberate-update DMA engine. */
class DeliberateDma : public SimObject
{
  public:
    /** Transfer word size (the CMPXCHG count is in 4-byte words). */
    static constexpr Addr wordBytes = 4;

    struct Params
    {
        /** Max bytes per network packet the engine emits. */
        Addr maxChunkBytes = 512;
        /** Engine startup cost per transfer (command decode). */
        Tick startLatency = 200 * ONE_NS;
    };

    /** Services the engine needs from the enclosing NI. */
    struct Hooks
    {
        /** NIPT outgoing lookup for a source physical address. */
        std::function<OutLookup(Addr)> lookupOut;
        /** Does the outgoing FIFO have room for a chunk packet? */
        std::function<bool(Addr wire_bytes)> outFifoHasSpace;
        /** Emit one chunk as a packet into the outgoing datapath. */
        std::function<void(NodeId dst, Addr dst_addr,
                           std::vector<std::uint8_t> &&payload)>
            emitChunk;
        /** Ask to be kick()ed when FIFO space frees. */
        std::function<void()> waitForFifoSpace;
    };

    DeliberateDma(EventQueue &eq, std::string name, const Params &params,
                  XpressBus &bus, MainMemory &mem, Hooks hooks);

    /**
     * Fired when a transfer's last chunk has been handed to the
     * outgoing datapath (the engine becomes free). Carries the
     * transfer's base address. The kernel's NX baseline uses this as
     * its "DMA send interrupt".
     */
    std::function<void(Addr base)> onComplete;

    bool busy() const { return _busy; }
    Addr currentBase() const { return _base; }
    std::uint32_t wordsRemaining() const { return _wordsRemaining; }

    /**
     * Command-page read cycle for source address @p src_paddr:
     * 0 when free, else busy status per dma_status.
     */
    std::uint64_t statusRead(Addr src_paddr) const;

    /**
     * Command-page write cycle: start a transfer of @p nwords 4-byte
     * words from @p src_paddr.
     *
     * @return false if the engine was busy (write ignored, as the
     *         hardware would).
     */
    bool start(Addr src_paddr, std::uint32_t nwords);

    /** The outgoing FIFO freed space; resume a stalled transfer. */
    void kick();

    /**
     * Abort the in-flight transfer (mapping torn down or node crash):
     * the engine frees immediately, no completion fires, and status
     * reads from the source page report dma_status::ABORTED until the
     * engine is claimed again. No-op when idle.
     */
    void abort(const char *reason);

    std::uint64_t transfersStarted() const { return _transfers.value(); }
    std::uint64_t transfersAborted() const { return _aborts.value(); }
    std::uint64_t bytesTransferred() const { return _bytes.value(); }
    stats::Group &statGroup() { return _stats; }

  private:
    void transferChunk();

    Params _params;
    XpressBus &_bus;
    MainMemory &_mem;
    Hooks _hooks;

    bool _busy = false;
    Addr _base = 0;             //!< base address of current transfer
    Addr _cursor = 0;           //!< next byte to read
    std::uint32_t _wordsRemaining = 0;
    bool _aborted = false;      //!< ABORTED status latch
    Addr _abortedBase = 0;
    /** Bumped on abort: orphans the in-flight chunk completion. */
    std::uint64_t _gen = 0;

    EventFunctionWrapper _chunkEvent;

    stats::Group _stats;
    stats::Counter _transfers{"transfers", "transfers started"};
    stats::Counter _bytes{"bytes", "payload bytes transferred"};
    stats::Counter _rejectedStarts{"rejectedStarts",
                                   "start attempts while busy"};
    stats::Counter _fifoStalls{"fifoStalls",
                               "chunks stalled on outgoing FIFO space"};
    stats::Counter _aborts{"aborts",
                           "transfers aborted (mapping lost or crash)"};
};

} // namespace shrimp

#endif // SHRIMP_NIC_DELIBERATE_DMA_HH
