/**
 * @file
 * FaultModel: a per-link fault injector for the routing backplane.
 *
 * The paper assumes a reliable backplane; growing the reproduction
 * toward lossy-fabric operation needs a way to exercise the NI's
 * reliability layer. One FaultModel hangs off each router output link
 * and can independently drop, corrupt, duplicate and reorder packets,
 * and take the whole link down for a configurable tick window. All
 * decisions come from one seeded RNG (salted per link), so runs are
 * fully deterministic.
 *
 * The model is a pure decision engine: the Router asks decide() once
 * per actual transmission and applies the verdict (and owns the stats
 * counters), so blocked/retried forwards never re-roll the dice.
 */

#ifndef SHRIMP_NET_FAULT_MODEL_HH
#define SHRIMP_NET_FAULT_MODEL_HH

#include <cstdint>

#include "net/packet.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace shrimp
{

/** Fault injector for one router output link. */
class FaultModel
{
  public:
    struct Params
    {
        double dropProb = 0.0;      //!< packet silently lost on the wire
        double corruptProb = 0.0;   //!< one payload bit flipped
        double duplicateProb = 0.0; //!< packet delivered twice
        double reorderProb = 0.0;   //!< packet overtaken by successors
        /** Per-packet chance the link fails for linkDownTicks. */
        double linkDownProb = 0.0;
        Tick linkDownTicks = 100 * ONE_US;
        /** Extra arrival delay of a reordered packet; anything larger
         *  than one serialization time lets successors overtake. */
        Tick reorderDelay = 2 * ONE_US;
        std::uint64_t seed = 0x0f00d5eed;
        /**
         * Deterministic outage window [downFrom, downUntil) for THIS
         * direction only. A FaultModel governs one directed link, so
         * attaching a window to just one of a link's two models gives
         * an asymmetric failure -- A's packets to B die while B still
         * reaches A -- a state sampled outages practically never hold
         * long enough to exercise. downUntil == 0 disables the window.
         */
        Tick downFrom = 0;
        Tick downUntil = 0;

        bool
        any() const
        {
            return dropProb > 0.0 || corruptProb > 0.0 ||
                   duplicateProb > 0.0 || reorderProb > 0.0 ||
                   linkDownProb > 0.0 || downUntil > downFrom;
        }
    };

    /**
     * Clamp out-of-range parameters to sane values, warning about each
     * offender: probabilities outside [0,1] and a zero-length outage
     * window with a nonzero linkDownProb (a no-op outage is always a
     * config bug). Every constructor applies this, so a FaultModel can
     * never run with silently meaningless parameters.
     */
    static Params
    validated(Params p)
    {
        auto clampProb = [](double &v, const char *what) {
            if (v < 0.0 || v > 1.0) {
                double fixed = v < 0.0 ? 0.0 : 1.0;
                SHRIMP_WARN("FaultModel: ", what, "=", v,
                            " outside [0,1], clamping to ", fixed);
                v = fixed;
            }
        };
        clampProb(p.dropProb, "dropProb");
        clampProb(p.corruptProb, "corruptProb");
        clampProb(p.duplicateProb, "duplicateProb");
        clampProb(p.reorderProb, "reorderProb");
        clampProb(p.linkDownProb, "linkDownProb");
        if (p.linkDownProb > 0.0 && p.linkDownTicks == 0) {
            SHRIMP_WARN("FaultModel: linkDownTicks=0 with linkDownProb=",
                        p.linkDownProb, " (outage would be a no-op), "
                        "using the default window instead");
            p.linkDownTicks = 100 * ONE_US;
        }
        if (p.downUntil != 0 && p.downUntil < p.downFrom) {
            SHRIMP_WARN("FaultModel: inverted forced-outage window [",
                        p.downFrom, ", ", p.downUntil,
                        "), swapping the bounds");
            Tick lo = p.downUntil;
            p.downUntil = p.downFrom;
            p.downFrom = lo;
        }
        return p;
    }

    /** Verdict for one transmission. */
    enum class Action
    {
        PASS,
        DROP,
        CORRUPT,
        DUPLICATE,
        REORDER,
        LINK_DOWN,  //!< lost because the link is in an outage window
    };

    FaultModel(const Params &params, std::uint64_t link_salt)
        : _params(validated(params)),
          _rng(_params.seed ^ (link_salt * 0x9e3779b97f4a7c15ULL)),
          _forcedSince(_params.downFrom),
          _forcedUntil(_params.downUntil)
    {}

    const Params &params() const { return _params; }

    /** Is the link inside an outage window at @p now? */
    bool
    linkDown(Tick now) const
    {
        return now < _downUntil ||
               (now >= _forcedSince && now < _forcedUntil);
    }

    /**
     * Has the link been continuously down for at least @p age ticks at
     * @p now? Fault-tolerant routers use this to decide when a flap has
     * lasted long enough to justify detouring around the link.
     */
    bool
    downLongerThan(Tick now, Tick age) const
    {
        if (now >= _forcedSince && now < _forcedUntil &&
            now - _forcedSince >= age) {
            return true;
        }
        return now < _downUntil && now - _downSince >= age;
    }

    /** Start of the current outage window (valid while linkDown()). */
    Tick downSince() const { return _downSince; }

    /**
     * Force this direction of the link down from @p now for
     * @p duration ticks (0 = until forceUp()). The reverse direction
     * has its own FaultModel and keeps delivering: this is the runtime
     * primitive behind asymmetric link failures and partition
     * cut-sets. Extends (never shortens) an already-forced outage.
     */
    void
    forceDown(Tick now, Tick duration = 0)
    {
        if (!(now >= _forcedSince && now < _forcedUntil))
            _forcedSince = now;
        _forcedUntil = duration ? now + duration : MAX_TICK;
    }

    /** End a forced outage at @p now (sampled outages are unaffected
     *  and still expire on their own). */
    void
    forceUp(Tick now)
    {
        if (_forcedUntil > now)
            _forcedUntil = now;
    }

    /**
     * Decide the fate of one packet transmitted at @p now. Each fault
     * class is sampled independently in a fixed order; the first hit
     * wins. May start an outage window as a side effect.
     */
    Action
    decide(Tick now)
    {
        if (linkDown(now))
            return Action::LINK_DOWN;
        if (_params.linkDownProb > 0.0 &&
            _rng.chance(_params.linkDownProb)) {
            _downSince = now;
            _downUntil = now + _params.linkDownTicks;
            return Action::LINK_DOWN;   // this packet is the casualty
        }
        if (_params.dropProb > 0.0 && _rng.chance(_params.dropProb))
            return Action::DROP;
        if (_params.corruptProb > 0.0 && _rng.chance(_params.corruptProb))
            return Action::CORRUPT;
        if (_params.duplicateProb > 0.0 &&
            _rng.chance(_params.duplicateProb)) {
            return Action::DUPLICATE;
        }
        if (_params.reorderProb > 0.0 && _rng.chance(_params.reorderProb))
            return Action::REORDER;
        return Action::PASS;
    }

    /**
     * Corrupt @p pkt in place: flip one payload bit, or a CRC bit when
     * there is no payload. Either way the receiver's CRC check must
     * reject the packet.
     */
    void
    corrupt(NetPacket &pkt)
    {
        if (!pkt.payload.empty()) {
            std::size_t byte = _rng.below(pkt.payload.size());
            pkt.payload[byte] ^=
                static_cast<std::uint8_t>(1u << _rng.below(8));
        } else {
            pkt.crc ^= static_cast<std::uint16_t>(
                1u << _rng.below(16));
        }
    }

  private:
    Params _params;
    Rng _rng;
    Tick _downUntil = 0;
    Tick _downSince = 0;
    /** Forced (deterministic) outage window, kept apart from the
     *  sampled one so forceUp() cannot cancel a sampled outage. */
    Tick _forcedSince = 0;
    Tick _forcedUntil = 0;
};

} // namespace shrimp

#endif // SHRIMP_NET_FAULT_MODEL_HH
