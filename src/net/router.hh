/**
 * @file
 * Router: one node of the Paragon-style routing backplane -- an
 * iMRC-like 5-port mesh router with deterministic dimension-order
 * (X then Y) routing, which is oblivious and deadlock-free and, with
 * FIFO links, preserves per-sender/receiver packet order. These are
 * exactly the three properties Section 3 of the paper relies on.
 *
 * Timing is virtual cut-through at packet granularity: a hop charges a
 * fixed routing latency for the header plus wire serialization for the
 * body, and serialization pipelines across hops. Backpressure is
 * credit-based on input buffer slots; a full incoming FIFO at a NIC
 * stalls ejection, filling router buffers backwards exactly as the
 * paper's flow-control description requires.
 */

#ifndef SHRIMP_NET_ROUTER_HH
#define SHRIMP_NET_ROUTER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/fault_model.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/**
 * Where ejected packets go: implemented by the node's network
 * interface chip. A sink that reports not-ready exerts backpressure
 * into the mesh ("the NIC will cease to accept more packets").
 */
class NetworkSink
{
  public:
    virtual ~NetworkSink() = default;

    /** Can the sink take a packet right now? */
    virtual bool sinkReady() const = 0;

    /** Deliver a fully received packet at the current tick. */
    virtual void sinkDeliver(NetPacket &&pkt) = 0;
};

/** Mesh router. */
class Router : public SimObject
{
  public:
    enum Port : unsigned
    {
        LOCAL = 0,
        EAST,
        WEST,
        NORTH,
        SOUTH,
        NUM_PORTS,
    };

    struct Params
    {
        unsigned inputBufferPackets = 4;
        Tick routingLatency = 40 * ONE_NS;  //!< header decision per hop
        Tick linkLatency = 8 * ONE_NS;      //!< wire propagation
        /** 16-bit-flit Paragon-style links; comfortably more than
         *  twice the EISA bottleneck, as the paper requires. */
        std::uint64_t linkBytesPerSec = 80'000'000;

        /**
         * Fault-tolerant routing: detour around links that are
         * externally advertised dead (setLinkDead) or that the fault
         * model has held down for longer than routeAroundAfter. Off by
         * default: plain dimension-order, exactly the paper's fabric.
         */
        bool faultTolerant = false;
        /** Outage age before a flapping link is routed around; shorter
         *  flaps are left to the NI's retransmission layer. */
        Tick routeAroundAfter = 200 * ONE_US;
        /** Detours one packet may take before the router gives up and
         *  drops it (livelock guard under multiple failures). */
        unsigned misrouteBudget = 8;

        /**
         * ECN-style marking: a reliable DATA packet arriving at an
         * input queue already holding at least this many packets gets
         * its congestion bit set; the receiving NI echoes the mark on
         * its next ACK and the sender shrinks its AIMD window.
         * 0 = marking off (paper-exact fabric).
         */
        unsigned ecnThresholdPackets = 0;
    };

    Router(EventQueue &eq, std::string name, unsigned x, unsigned y,
           const Params &params);

    unsigned x() const { return _x; }
    unsigned y() const { return _y; }

    /** Wire our output port @p out to @p nbr's input port @p nbr_in. */
    void connect(Port out, Router *nbr, Port nbr_in);

    /** Attach the local node's ejection sink. */
    void setSink(NetworkSink *sink) { _sink = sink; }

    /**
     * Register a callback invoked whenever the LOCAL input port (the
     * injection queue) frees a slot; the NIC uses it to retry
     * injection after backpressure.
     */
    void
    setInjectWaiter(std::function<void()> fn)
    {
        _injectWaiter = std::move(fn);
    }

    /** Is there an injection buffer slot free? */
    bool injectReady() const { return hasCredit(LOCAL); }

    /**
     * Inject a packet from the local NIC. The caller must have checked
     * injectReady().
     */
    void inject(NetPacket &&pkt);

    /**
     * The local sink became ready again (incoming FIFO drained below
     * its threshold); retry ejection.
     */
    void sinkReadyAgain() { scheduleAdvance(curTick()); }

    /**
     * Attach a fault model to the output link behind @p out (non-LOCAL
     * ports only; the ejection channel into the NIC is fault-free).
     * Passing a Params with no active fault class detaches the model.
     */
    void setFaultModel(Port out, const FaultModel::Params &params);

    /** Fault model of output link @p out, or nullptr. */
    FaultModel *faultModel(Port out) { return _faults[out].get(); }

    /**
     * Externally advertise the output link behind @p out as dead (or
     * alive again) -- the health service / backplane uses this when a
     * peer or cable is known down. Only consulted in fault-tolerant
     * mode. Reviving a link kicks the pipeline so parked traffic
     * immediately retries the preferred route.
     */
    void setLinkDead(Port out, bool dead);

    /** Is @p out externally advertised dead? */
    bool linkDeadExternally(Port out) const { return _linkDeadExt[out]; }

    /**
     * Force the directed link behind @p out into an outage starting
     * now, for @p duration ticks (0 = until forceLinkUp). Unlike
     * setLinkDead -- a routing advertisement only honored in
     * fault-tolerant mode -- this kills the wire itself: transmissions
     * die as linkDownDrops in every routing mode, and only in this
     * direction. Lazily attaches a quiet FaultModel when none is
     * configured.
     */
    void forceLinkDown(Port out, Tick duration = 0);

    /** End a forced outage on @p out and kick parked traffic. */
    void forceLinkUp(Port out);

    std::uint64_t misroutes() const { return _misroutes.value(); }
    std::uint64_t ecnMarks() const { return _ecnMarks.value(); }
    std::uint64_t routeAroundDrops() const
    {
        return _routeAroundDrops.value();
    }

    /** Total packets parked in input queues (quiescence checks). */
    std::size_t
    queuedPackets() const
    {
        std::size_t n = 0;
        for (const auto &in : _inputs)
            n += in.queue.size();
        return n;
    }

    /** Corrupted-packet count (the historical error-injection stat). */
    std::uint64_t errorsInjected() const { return _faultCorrupts.value(); }

    std::uint64_t faultDrops() const { return _faultDrops.value(); }
    std::uint64_t linkDownDrops() const { return _linkDownDrops.value(); }
    std::uint64_t faultDuplicates() const
    {
        return _faultDuplicates.value();
    }
    std::uint64_t faultReorders() const { return _faultReorders.value(); }

    // ---- used by the upstream router ----
    bool hasCredit(Port in) const;
    void reserveCredit(Port in);
    void headerArrive(Port in, NetPacket &&pkt, Tick ready);

    /**
     * Park a wakeup for a credit on input port @p in. Waiters are
     * woken in FIFO registration order, one per released credit, so
     * two upstream routers contending for the same buffer alternate
     * instead of one starving the other. @p key identifies the waiter
     * (upstream router identity): re-registering an already-parked
     * key is a no-op, keeping the queue duplicate-free while blocked
     * senders re-poll.
     */
    void addCreditWaiter(Port in, std::uint64_t key,
                         std::function<void()> fn);

    /** Serialization time of @p pkt on our links. */
    Tick
    serializationTime(const NetPacket &pkt) const
    {
        return (pkt.wireBytes() * ONE_SEC + _params.linkBytesPerSec - 1) /
               _params.linkBytesPerSec;
    }

    std::uint64_t packetsForwarded() const { return _forwarded.value(); }
    std::uint64_t packetsEjected() const { return _ejected.value(); }
    stats::Group &statGroup() { return _stats; }

  private:
    struct Entry
    {
        NetPacket pkt;
        Tick ready;     //!< header decoded; eligible to forward
    };

    struct Waiter
    {
        std::uint64_t key;      //!< upstream identity (dedup only)
        std::function<void()> fn;
    };

    struct InputPort
    {
        std::deque<Entry> queue;
        unsigned reserved = 0;  //!< slots claimed (queued or in flight)
        std::deque<Waiter> waiters;     //!< FIFO wake order
    };

    /**
     * Routing decision for one packet. `out == NUM_PORTS` means no
     * usable route exists (drop). A detour is only *applied* to the
     * packet (yFirst flag, misroute budget) when the forward actually
     * commits, so retries blocked on credit never burn the budget.
     */
    struct RouteDecision
    {
        Port out;
        bool detour;        //!< out deviates from dimension order
        bool yFirstAfter;   //!< yFirst value to stamp when detouring
    };

    /** Plain dimension-order preference (honoring pkt.yFirst). */
    Port preferredPort(const NetPacket &pkt) const;

    /** Can @p out carry traffic at @p now (fault-tolerant mode)? */
    bool linkUsable(Port out, Tick now) const;

    RouteDecision routeOf(const NetPacket &pkt, Tick now) const;

    /** Try to make forwarding progress on every input port. */
    void advance();

    /** Schedule advance() at @p when (keeps the earliest request). */
    void scheduleAdvance(Tick when);

    /** Release one buffer slot of @p in and wake its next waiter. */
    void releaseCredit(Port in);

    /** Wake the head credit waiter of @p in; if more remain, park a
     *  same-tick recheck so an unconsumed credit passes down the line. */
    void wakeOneWaiter(Port in);

    unsigned _x, _y;
    Params _params;
    std::array<InputPort, NUM_PORTS> _inputs;
    std::array<Router *, NUM_PORTS> _neighbor{};
    std::array<Port, NUM_PORTS> _neighborIn{};
    std::array<Tick, NUM_PORTS> _outBusyUntil{};
    NetworkSink *_sink = nullptr;
    std::function<void()> _injectWaiter;
    EventFunctionWrapper _advanceEvent;
    std::array<std::unique_ptr<FaultModel>, NUM_PORTS> _faults;
    std::array<bool, NUM_PORTS> _linkDeadExt{};

    stats::Group _stats;
    stats::Counter _forwarded{"forwarded", "packets forwarded"};
    stats::Counter _ejected{"ejected", "packets ejected to the sink"};
    stats::Counter _injected{"injected", "packets injected locally"};
    stats::Counter _blockedOnCredit{"blockedOnCredit",
                                    "forward attempts blocked on credit"};
    stats::Counter _blockedOnSink{"blockedOnSink",
                                  "ejections blocked by a busy sink"};
    stats::Counter _faultDrops{"faultDrops",
                               "packets dropped by the link fault model"};
    stats::Counter _faultCorrupts{"faultCorrupts",
                                  "packets corrupted on the wire"};
    stats::Counter _faultDuplicates{"faultDuplicates",
                                    "packets duplicated on the wire"};
    stats::Counter _faultReorders{"faultReorders",
                                  "packets delayed past successors"};
    stats::Counter _linkDownDrops{"linkDownDrops",
                                  "packets lost to link outage windows"};
    stats::Counter _misroutes{"misroutes",
                              "detours taken around dead links"};
    stats::Counter _routeAroundDrops{
        "routeAroundDrops",
        "packets dropped with no usable route left"};
    stats::Counter _ecnMarks{
        "ecnMarks", "data packets congestion-marked at arrival"};
    stats::Histogram _queueDepth{
        "inQueueDepth", "input-port queue depth at header arrival"};
};

} // namespace shrimp

#endif // SHRIMP_NET_ROUTER_HH
