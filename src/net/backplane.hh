/**
 * @file
 * MeshBackplane: the Intel Paragon-style routing backplane -- a
 * width x height mesh of Routers with node ids assigned row-major.
 */

#ifndef SHRIMP_NET_BACKPLANE_HH
#define SHRIMP_NET_BACKPLANE_HH

#include <memory>
#include <vector>

#include "net/router.hh"
#include "sim/sim_object.hh"

namespace shrimp
{

/** The 2-D mesh of routers connecting all SHRIMP nodes. */
class MeshBackplane : public SimObject
{
  public:
    MeshBackplane(EventQueue &eq, std::string name, unsigned width,
                  unsigned height, const Router::Params &params);

    unsigned width() const { return _width; }
    unsigned height() const { return _height; }
    unsigned numNodes() const { return _width * _height; }

    /** Mesh coordinates of @p node (row-major ids). */
    unsigned xOf(NodeId node) const { return node % _width; }
    unsigned yOf(NodeId node) const { return node / _width; }

    /** Node id at mesh coordinates. */
    NodeId
    nodeAt(unsigned x, unsigned y) const
    {
        return y * _width + x;
    }

    /** Manhattan hop distance between two nodes. */
    unsigned
    hopDistance(NodeId a, NodeId b) const
    {
        unsigned dx = xOf(a) > xOf(b) ? xOf(a) - xOf(b) : xOf(b) - xOf(a);
        unsigned dy = yOf(a) > yOf(b) ? yOf(a) - yOf(b) : yOf(b) - yOf(a);
        return dx + dy;
    }

    Router &router(NodeId node) { return *_routers.at(node); }
    const Router::Params &routerParams() const { return _params; }

    /**
     * Attach @p faults to every inter-router link in the mesh (each
     * link gets its own seed-salted FaultModel instance, so faults on
     * different links are independent but the run stays deterministic).
     */
    void setLinkFaults(const FaultModel::Params &faults);

    /**
     * Attach @p faults to one directed link only: the output of
     * @p from's router that faces the adjacent node @p to. The reverse
     * direction keeps whatever model it has -- this is how asymmetric
     * (one-way) link failures are configured.
     */
    void setLinkFaults(NodeId from, NodeId to,
                       const FaultModel::Params &faults);

    /** Output port on @p from's router facing adjacent node @p to. */
    Router::Port portToward(NodeId from, NodeId to) const;

  private:
    unsigned _width;
    unsigned _height;
    Router::Params _params;
    std::vector<std::unique_ptr<Router>> _routers;
};

} // namespace shrimp

#endif // SHRIMP_NET_BACKPLANE_HH
