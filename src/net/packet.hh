/**
 * @file
 * NetPacket: the packet format carried by the routing backplane.
 *
 * Per Section 3.1, a packet consists of routing information, the
 * absolute mesh coordinates of the intended receiver, a destination
 * memory address, data, and a CRC checksum. The receiver verifies the
 * coordinates and the CRC to detect misrouting and corruption.
 *
 * Beyond the paper: when the NI's reliability layer is enabled, the
 * header grows by an 8-byte extension carrying a packet kind
 * (DATA/ACK/NACK) and a per source->destination sequence number, and
 * the CRC covers both. Legacy (reliability-off) packets keep the exact
 * paper wire format so baseline timing is unchanged.
 */

#ifndef SHRIMP_NET_PACKET_HH
#define SHRIMP_NET_PACKET_HH

#include <cstdint>
#include <vector>

#include "net/crc.hh"
#include "sim/types.hh"

namespace shrimp
{

/** A backplane packet. */
struct NetPacket
{
    /** Wire overhead: route info + coords + address field. */
    static constexpr Addr headerBytes = 16;
    /** Wire overhead of the trailing checksum. */
    static constexpr Addr crcBytes = 2;
    /** Reliability header extension: kind + sequence number. */
    static constexpr Addr relHeaderBytes = 8;

    /** What the packet carries (reliability layer). */
    enum class Kind : std::uint8_t
    {
        DATA = 0,   //!< payload destined for mapped memory
        ACK,        //!< cumulative acknowledgement (rseq = next expected)
        NACK,       //!< fast-retransmit request (rseq = missing seq)
        HEARTBEAT,  //!< liveness keepalive (health service)
    };

    NodeId srcNode = INVALID_NODE;
    NodeId dstNode = INVALID_NODE;
    std::uint16_t dstX = 0;     //!< absolute mesh coords of receiver
    std::uint16_t dstY = 0;
    Addr dstPaddr = 0;          //!< destination physical memory address
    std::vector<std::uint8_t> payload;
    std::uint16_t crc = 0;

    // ---- reliability header extension (on the wire iff reliable) ----
    bool reliable = false;      //!< carries the extension
    Kind kind = Kind::DATA;
    /** DATA: per src->dst sequence number. ACK: next expected seq
     *  (everything below it is acknowledged). NACK: the missing seq.
     *  HEARTBEAT: the sender's packed (incarnation, view) stamp. */
    std::uint64_t rseq = 0;
    /**
     * Channel epoch: the sender's kernel incarnation number at
     * injection time (0 = epoch fencing off). Receivers drop packets
     * stamped from an older life of the sender and resynchronize the
     * reliability channel when a newer life appears, so a healed
     * partition cannot resurrect a pre-partition stream. Folded into
     * the reliability header's padding, so wireBytes() is unchanged.
     */
    std::uint32_t srcEpoch = 0;

    /**
     * ECN-style congestion signal. On DATA packets a router (queue
     * above threshold) or the receiving NIC (incoming FIFO nearly
     * full) sets it in flight; the receiver latches the mark and
     * echoes it on the next ACK so the sender shrinks its congestion
     * window before loss occurs. Mutates per hop, so not CRC'd.
     */
    bool congestion = false;

    // ---- adaptive-routing state (mutates per hop, so not CRC'd) ----
    /** Set when a router detoured around a dead Y link: downstream
     *  routers finish the Y dimension first so the packet cannot
     *  bounce back over the failed column. Cleared by an X detour. */
    bool yFirst = false;
    /** Detours taken so far; routers drop past a small budget rather
     *  than livelock between multiple failures. */
    std::uint8_t misroutes = 0;

    // ---- simulation bookkeeping (not on the wire) ----
    Tick injectedAt = 0;        //!< when the source NIC injected it
    std::uint64_t seq = 0;      //!< per-source sequence, for order checks
    /** Lifecycle-trace flow id (trace::Tracer); 0 = not traced. */
    std::uint64_t traceId = 0;

    /** Total bytes this packet occupies on a link. */
    Addr
    wireBytes() const
    {
        return headerBytes + (reliable ? relHeaderBytes : 0) +
               payload.size() + crcBytes;
    }

    /** Compute the CRC over header fields and payload. */
    std::uint16_t
    computeCrc() const
    {
        Crc16 c;
        c.updateInt(srcNode, 4);
        c.updateInt(dstX, 2);
        c.updateInt(dstY, 2);
        c.updateInt(dstPaddr, 8);
        if (reliable) {
            c.updateInt(static_cast<std::uint64_t>(kind), 1);
            c.updateInt(rseq, 8);
            c.updateInt(srcEpoch, 4);
        }
        if (!payload.empty())
            c.update(payload.data(), payload.size());
        return c.value();
    }

    /** Seal the packet: stamp the CRC field. */
    void sealCrc() { crc = computeCrc(); }

    /** Verify integrity (as the receiving NIC does). */
    bool crcOk() const { return crc == computeCrc(); }
};

} // namespace shrimp

#endif // SHRIMP_NET_PACKET_HH
