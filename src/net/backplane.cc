#include "net/backplane.hh"

#include "sim/logging.hh"

namespace shrimp
{

MeshBackplane::MeshBackplane(EventQueue &eq, std::string name,
                             unsigned width, unsigned height,
                             const Router::Params &params)
    : SimObject(eq, std::move(name)),
      _width(width),
      _height(height),
      _params(params)
{
    SHRIMP_ASSERT(width > 0 && height > 0, "degenerate mesh");

    _routers.reserve(numNodes());
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            _routers.push_back(std::make_unique<Router>(
                eq,
                this->name() + ".router" + std::to_string(nodeAt(x, y)),
                x, y, params));
        }
    }

    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            Router *r = _routers[nodeAt(x, y)].get();
            if (x + 1 < width) {
                Router *e = _routers[nodeAt(x + 1, y)].get();
                r->connect(Router::EAST, e, Router::WEST);
                e->connect(Router::WEST, r, Router::EAST);
            }
            if (y + 1 < height) {
                Router *s = _routers[nodeAt(x, y + 1)].get();
                r->connect(Router::SOUTH, s, Router::NORTH);
                s->connect(Router::NORTH, r, Router::SOUTH);
            }
        }
    }
}

void
MeshBackplane::setLinkFaults(const FaultModel::Params &faults)
{
    // Attach to every wired output port; edge routers simply have
    // fewer links.
    for (unsigned y = 0; y < _height; ++y) {
        for (unsigned x = 0; x < _width; ++x) {
            Router &r = *_routers[nodeAt(x, y)];
            if (x + 1 < _width)
                r.setFaultModel(Router::EAST, faults);
            if (x > 0)
                r.setFaultModel(Router::WEST, faults);
            if (y + 1 < _height)
                r.setFaultModel(Router::SOUTH, faults);
            if (y > 0)
                r.setFaultModel(Router::NORTH, faults);
        }
    }
}

Router::Port
MeshBackplane::portToward(NodeId from, NodeId to) const
{
    SHRIMP_ASSERT(hopDistance(from, to) == 1,
                  "portToward needs mesh-adjacent nodes, got ", from,
                  " and ", to);
    if (xOf(to) > xOf(from))
        return Router::EAST;
    if (xOf(to) < xOf(from))
        return Router::WEST;
    return yOf(to) > yOf(from) ? Router::SOUTH : Router::NORTH;
}

void
MeshBackplane::setLinkFaults(NodeId from, NodeId to,
                             const FaultModel::Params &faults)
{
    _routers.at(from)->setFaultModel(portToward(from, to), faults);
}

} // namespace shrimp
