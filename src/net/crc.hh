/**
 * @file
 * CRC-16/CCITT-FALSE, the per-packet checksum the SHRIMP network
 * interface appends to detect network errors (Section 3.1).
 */

#ifndef SHRIMP_NET_CRC_HH
#define SHRIMP_NET_CRC_HH

#include <cstddef>
#include <cstdint>

namespace shrimp
{

/** Incremental CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF). */
class Crc16
{
  public:
    /** Feed @p len bytes. */
    void
    update(const void *data, std::size_t len)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            _crc ^= static_cast<std::uint16_t>(bytes[i]) << 8;
            for (int bit = 0; bit < 8; ++bit) {
                if (_crc & 0x8000)
                    _crc = static_cast<std::uint16_t>((_crc << 1) ^ 0x1021);
                else
                    _crc = static_cast<std::uint16_t>(_crc << 1);
            }
        }
    }

    /** Feed one little-endian integer of @p size bytes. */
    void
    updateInt(std::uint64_t v, unsigned size)
    {
        update(&v, size);
    }

    std::uint16_t value() const { return _crc; }

  private:
    std::uint16_t _crc = 0xFFFF;
};

/** One-shot convenience. */
inline std::uint16_t
crc16(const void *data, std::size_t len)
{
    Crc16 crc;
    crc.update(data, len);
    return crc.value();
}

} // namespace shrimp

#endif // SHRIMP_NET_CRC_HH
