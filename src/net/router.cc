#include "net/router.hh"

#include "sim/logging.hh"

namespace shrimp
{

Router::Router(EventQueue &eq, std::string name, unsigned x, unsigned y,
               const Params &params)
    : SimObject(eq, std::move(name)),
      _x(x),
      _y(y),
      _params(params),
      _advanceEvent([this] { advance(); }, "router advance"),
      _stats(this->name())
{
    _stats.addStat(&_forwarded);
    _stats.addStat(&_ejected);
    _stats.addStat(&_injected);
    _stats.addStat(&_blockedOnCredit);
    _stats.addStat(&_blockedOnSink);
}

void
Router::connect(Port out, Router *nbr, Port nbr_in)
{
    SHRIMP_ASSERT(out != LOCAL, "cannot wire the local port");
    _neighbor[out] = nbr;
    _neighborIn[out] = nbr_in;
}

bool
Router::hasCredit(Port in) const
{
    return _inputs[in].reserved < _params.inputBufferPackets;
}

void
Router::reserveCredit(Port in)
{
    InputPort &port = _inputs[in];
    SHRIMP_ASSERT(port.reserved < _params.inputBufferPackets,
                  "credit overrun on port ", in);
    ++port.reserved;
}

void
Router::headerArrive(Port in, NetPacket &&pkt, Tick ready)
{
    _inputs[in].queue.push_back(Entry{std::move(pkt), ready});
    scheduleAdvance(ready > curTick() ? ready : curTick());
}

void
Router::addCreditWaiter(Port in, std::function<void()> fn)
{
    _inputs[in].waiters.push_back(std::move(fn));
}

void
Router::inject(NetPacket &&pkt)
{
    SHRIMP_ASSERT(injectReady(), "inject without credit");
    ++_injected;
    reserveCredit(LOCAL);
    // Local injection still pays the routing decision latency.
    headerArrive(LOCAL, std::move(pkt),
                 curTick() + _params.routingLatency);
}

Router::Port
Router::routeOf(const NetPacket &pkt) const
{
    // Dimension-order: correct X first, then Y (oblivious, deadlock
    // free per Dally & Seitz).
    if (pkt.dstX > _x)
        return EAST;
    if (pkt.dstX < _x)
        return WEST;
    if (pkt.dstY > _y)
        return SOUTH;
    if (pkt.dstY < _y)
        return NORTH;
    return LOCAL;
}

void
Router::releaseCredit(Port in)
{
    InputPort &port = _inputs[in];
    SHRIMP_ASSERT(port.reserved > 0, "credit underflow on port ", in);
    --port.reserved;

    std::vector<std::function<void()>> waiters;
    waiters.swap(port.waiters);
    for (auto &fn : waiters)
        fn();

    if (in == LOCAL && _injectWaiter)
        _injectWaiter();
}

void
Router::advance()
{
    Tick now = curTick();

    for (unsigned p = 0; p < NUM_PORTS; ++p) {
        InputPort &in = _inputs[p];
        if (in.queue.empty())
            continue;

        Entry &head = in.queue.front();
        if (head.ready > now) {
            scheduleAdvance(head.ready);
            continue;
        }

        Port out = routeOf(head.pkt);

        if (_outBusyUntil[out] > now) {
            scheduleAdvance(_outBusyUntil[out]);
            continue;
        }

        Tick ser = serializationTime(head.pkt);

        if (out == LOCAL) {
            SHRIMP_ASSERT(_sink, "ejection with no sink at ", name());
            if (!_sink->sinkReady()) {
                // Backpressure: hold the packet; the NIC kicks us via
                // sinkReadyAgain() when its FIFO drains.
                ++_blockedOnSink;
                continue;
            }
            _outBusyUntil[out] = now + ser;
            NetPacket pkt = std::move(head.pkt);
            in.queue.pop_front();
            ++_ejected;
            // The whole packet has crossed into the NIC when its tail
            // clears the ejection channel.
            eventQueue().scheduleFn(
                [this, p, pkt = std::move(pkt)]() mutable {
                    _sink->sinkDeliver(std::move(pkt));
                    releaseCredit(static_cast<Port>(p));
                    scheduleAdvance(curTick());
                },
                now + ser, EventPriority::DEFAULT, "packet ejection");
            continue;
        }

        Router *nbr = _neighbor[out];
        SHRIMP_ASSERT(nbr, "route off the mesh edge at ", name(),
                      " toward port ", static_cast<unsigned>(out));
        Port nbr_in = _neighborIn[out];

        if (!nbr->hasCredit(nbr_in)) {
            // Register exactly one wakeup; re-registering on every
            // advance() would grow the waiter list unboundedly.
            ++_blockedOnCredit;
            nbr->addCreditWaiter(nbr_in,
                                 [this] { scheduleAdvance(curTick()); });
            continue;
        }

        // Forward: reserve the downstream slot now, occupy our output
        // link for the serialization time, and hand the header to the
        // neighbour after wire latency. Cut-through: the downstream
        // router may begin forwarding after its routing latency; the
        // tail follows the header by the serialization time, which is
        // modeled by keeping the downstream output link busy via the
        // same per-link serialization charge.
        nbr->reserveCredit(nbr_in);
        _outBusyUntil[out] = now + ser;
        ++_forwarded;

        NetPacket pkt = std::move(head.pkt);
        in.queue.pop_front();

        // Fault injection on the outgoing wire (tests/ablations).
        if (_errorProb > 0.0 && _errorRng.chance(_errorProb) &&
            !pkt.payload.empty()) {
            std::size_t byte = _errorRng.below(pkt.payload.size());
            pkt.payload[byte] ^=
                static_cast<std::uint8_t>(1u << _errorRng.below(8));
            ++_errorsInjected;
        }

        Tick header_at = now + _params.linkLatency;
        nbr->headerArrive(nbr_in, std::move(pkt),
                          header_at + _params.routingLatency);

        // Our input buffer slot is held until the tail leaves.
        eventQueue().scheduleFn(
            [this, p]() { releaseCredit(static_cast<Port>(p)); },
            now + ser, EventPriority::DEFAULT, "tail departure");

        scheduleAdvance(now + ser);
    }
}

void
Router::scheduleAdvance(Tick when)
{
    if (when < curTick())
        when = curTick();
    if (_advanceEvent.scheduled()) {
        if (_advanceEvent.when() <= when)
            return;
        deschedule(_advanceEvent);
    }
    schedule(_advanceEvent, when);
}

} // namespace shrimp
