#include "net/router.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

Router::Router(EventQueue &eq, std::string name, unsigned x, unsigned y,
               const Params &params)
    : SimObject(eq, std::move(name)),
      _x(x),
      _y(y),
      _params(params),
      _advanceEvent([this] { advance(); }, "router advance"),
      _stats(this->name())
{
    _stats.addStat(&_forwarded);
    _stats.addStat(&_ejected);
    _stats.addStat(&_injected);
    _stats.addStat(&_blockedOnCredit);
    _stats.addStat(&_blockedOnSink);
    _stats.addStat(&_faultDrops);
    _stats.addStat(&_faultCorrupts);
    _stats.addStat(&_faultDuplicates);
    _stats.addStat(&_faultReorders);
    _stats.addStat(&_linkDownDrops);
    _stats.addStat(&_misroutes);
    _stats.addStat(&_routeAroundDrops);
    _stats.addStat(&_ecnMarks);
    _stats.addStat(&_queueDepth);
}

void
Router::setLinkDead(Port out, bool dead)
{
    SHRIMP_ASSERT(out != LOCAL, "the ejection channel cannot die");
    if (_linkDeadExt[out] == dead)
        return;
    _linkDeadExt[out] = dead;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "net",
                   dead ? "linkDead" : "linkAlive",
                   {trace::arg("port", static_cast<unsigned>(out))});
    }
    if (!dead)
        scheduleAdvance(curTick());
}

void
Router::setFaultModel(Port out, const FaultModel::Params &params)
{
    SHRIMP_ASSERT(out != LOCAL, "fault model on the ejection channel");
    if (!params.any()) {
        _faults[out].reset();
        return;
    }
    // Salt the seed per link so parallel links misbehave independently.
    std::uint64_t salt =
        (static_cast<std::uint64_t>(_y) << 20) |
        (static_cast<std::uint64_t>(_x) << 4) |
        static_cast<std::uint64_t>(out);
    _faults[out] = std::make_unique<FaultModel>(params, salt);
}

void
Router::forceLinkDown(Port out, Tick duration)
{
    SHRIMP_ASSERT(out != LOCAL, "the ejection channel cannot die");
    if (!_faults[out]) {
        // A quiet model: no sampled faults, just the forced window.
        std::uint64_t salt =
            (static_cast<std::uint64_t>(_y) << 20) |
            (static_cast<std::uint64_t>(_x) << 4) |
            static_cast<std::uint64_t>(out);
        _faults[out] =
            std::make_unique<FaultModel>(FaultModel::Params{}, salt);
    }
    _faults[out]->forceDown(curTick(), duration);
}

void
Router::forceLinkUp(Port out)
{
    SHRIMP_ASSERT(out != LOCAL, "the ejection channel cannot die");
    if (_faults[out])
        _faults[out]->forceUp(curTick());
    scheduleAdvance(curTick());
}

void
Router::connect(Port out, Router *nbr, Port nbr_in)
{
    SHRIMP_ASSERT(out != LOCAL, "cannot wire the local port");
    _neighbor[out] = nbr;
    _neighborIn[out] = nbr_in;
}

bool
Router::hasCredit(Port in) const
{
    return _inputs[in].reserved < _params.inputBufferPackets;
}

void
Router::reserveCredit(Port in)
{
    InputPort &port = _inputs[in];
    SHRIMP_ASSERT(port.reserved < _params.inputBufferPackets,
                  "credit overrun on port ", in);
    ++port.reserved;
}

void
Router::headerArrive(Port in, NetPacket &&pkt, Tick ready)
{
    InputPort &port = _inputs[in];
    port.queue.push_back(Entry{std::move(pkt), ready});
    _queueDepth.sample(port.queue.size());

    // ECN: a DATA packet queueing behind ecnThresholdPackets others is
    // experiencing congestion; mark it so the receiver's ACK pushes
    // the sender's window down before buffers overflow into loss.
    NetPacket &queued = port.queue.back().pkt;
    if (_params.ecnThresholdPackets != 0 && queued.reliable &&
        queued.kind == NetPacket::Kind::DATA && !queued.congestion &&
        port.queue.size() >= _params.ecnThresholdPackets) {
        queued.congestion = true;
        ++_ecnMarks;
    }

    scheduleAdvance(ready > curTick() ? ready : curTick());
}

void
Router::addCreditWaiter(Port in, std::uint64_t key,
                        std::function<void()> fn)
{
    InputPort &port = _inputs[in];
    for (const Waiter &w : port.waiters) {
        if (w.key == key)
            return;     // already parked; keep its FIFO position
    }
    port.waiters.push_back(Waiter{key, std::move(fn)});
}

void
Router::inject(NetPacket &&pkt)
{
    SHRIMP_ASSERT(injectReady(), "inject without credit");
    ++_injected;
    reserveCredit(LOCAL);
    // Local injection still pays the routing decision latency.
    headerArrive(LOCAL, std::move(pkt),
                 curTick() + _params.routingLatency);
}

Router::Port
Router::preferredPort(const NetPacket &pkt) const
{
    // Dimension-order: correct X first, then Y (oblivious, deadlock
    // free per Dally & Seitz). A packet that detoured around a dead
    // Y link carries yFirst and finishes Y before resuming X, so it
    // cannot bounce back across the failed column.
    if (pkt.yFirst) {
        if (pkt.dstY > _y)
            return SOUTH;
        if (pkt.dstY < _y)
            return NORTH;
        if (pkt.dstX > _x)
            return EAST;
        if (pkt.dstX < _x)
            return WEST;
        return LOCAL;
    }
    if (pkt.dstX > _x)
        return EAST;
    if (pkt.dstX < _x)
        return WEST;
    if (pkt.dstY > _y)
        return SOUTH;
    if (pkt.dstY < _y)
        return NORTH;
    return LOCAL;
}

bool
Router::linkUsable(Port out, Tick now) const
{
    if (!_neighbor[out] || _linkDeadExt[out])
        return false;
    const FaultModel *fm = _faults[out].get();
    return !(fm && fm->downLongerThan(now, _params.routeAroundAfter));
}

Router::RouteDecision
Router::routeOf(const NetPacket &pkt, Tick now) const
{
    Port pref = preferredPort(pkt);
    if (pref == LOCAL)
        return {LOCAL, false, false};
    if (!_params.faultTolerant || linkUsable(pref, now))
        return {pref, false, false};
    if (pkt.misroutes >= _params.misrouteBudget)
        return {NUM_PORTS, false, false};

    // Misroute one hop perpendicular to the dead dimension, preferring
    // the direction that still makes progress. An X detour clears
    // yFirst (the next router retries X from a different row); a Y
    // detour sets it (finish Y from a different column first). Each
    // detour adds at most one extra turn, and with a single failed
    // link that turn cannot close a cycle with dimension-order's
    // allowed turns -- the turn-model argument for deadlock freedom.
    // Multiple simultaneous failures are instead bounded by the
    // misroute budget: the packet is dropped rather than livelocked,
    // and the reliability layer retransmits.
    bool x_dim = pref == EAST || pref == WEST;
    Port primary;
    if (x_dim) {
        primary = pkt.dstY > _y   ? SOUTH
                  : pkt.dstY < _y ? NORTH
                  : _neighbor[SOUTH] ? SOUTH
                                     : NORTH;
    } else {
        primary = pkt.dstX > _x   ? EAST
                  : pkt.dstX < _x ? WEST
                  : _neighbor[EAST] ? EAST
                                    : WEST;
    }
    Port secondary = primary == EAST    ? WEST
                     : primary == WEST  ? EAST
                     : primary == SOUTH ? NORTH
                                        : SOUTH;
    for (Port cand : {primary, secondary}) {
        if (linkUsable(cand, now))
            return {cand, true, !x_dim};
    }
    return {NUM_PORTS, false, false};
}

void
Router::releaseCredit(Port in)
{
    InputPort &port = _inputs[in];
    SHRIMP_ASSERT(port.reserved > 0, "credit underflow on port ", in);
    --port.reserved;

    wakeOneWaiter(in);

    if (in == LOCAL && _injectWaiter)
        _injectWaiter();
}

void
Router::wakeOneWaiter(Port in)
{
    InputPort &port = _inputs[in];
    if (port.waiters.empty())
        return;

    // FIFO fairness: one credit wakes exactly the oldest waiter, so
    // two senders contending for the same buffer alternate. The woken
    // router re-registers at the back of the queue if it blocks again.
    Waiter w = std::move(port.waiters.front());
    port.waiters.pop_front();
    w.fn();

    if (port.waiters.empty())
        return;
    // Guard against a lost wakeup: the woken waiter may no longer
    // need the credit. Its retry runs first (its advance event was
    // enqueued just now, ahead of this recheck), then the recheck
    // passes a still-free credit to the next waiter in line.
    eventQueue().scheduleFn(
        [this, in]() {
            if (hasCredit(in))
                wakeOneWaiter(in);
        },
        curTick(), EventPriority::DEFAULT, "credit recheck");
}

void
Router::advance()
{
    Tick now = curTick();

    for (unsigned p = 0; p < NUM_PORTS; ++p) {
        InputPort &in = _inputs[p];
        if (in.queue.empty())
            continue;

        Entry &head = in.queue.front();
        if (head.ready > now) {
            scheduleAdvance(head.ready);
            continue;
        }

        RouteDecision rd = routeOf(head.pkt, now);
        Port out = rd.out;

        if (out == NUM_PORTS) {
            // Every output toward the destination is dead (or the
            // misroute budget is spent). Drop here: the reliability
            // layer retransmits, and a later attempt re-probes links
            // that may have recovered.
            ++_routeAroundDrops;
            if (auto *t = eventQueue().tracer(); t && head.pkt.traceId) {
                t->flowEnd(now, name(), "packet", "lost",
                           head.pkt.traceId,
                           {trace::arg("reason", "noRoute")});
            }
            in.queue.pop_front();
            eventQueue().scheduleFn(
                [this, p]() { releaseCredit(static_cast<Port>(p)); },
                now, EventPriority::DEFAULT, "no-route drop");
            // The drop freed the head of this queue; packets behind
            // it must be re-examined now or they stall until some
            // unrelated event happens to re-arm the advance loop.
            scheduleAdvance(now);
            continue;
        }

        if (_outBusyUntil[out] > now) {
            scheduleAdvance(_outBusyUntil[out]);
            continue;
        }

        Tick ser = serializationTime(head.pkt);

        if (out == LOCAL) {
            SHRIMP_ASSERT(_sink, "ejection with no sink at ", name());
            if (!_sink->sinkReady()) {
                // Backpressure: hold the packet; the NIC kicks us via
                // sinkReadyAgain() when its FIFO drains.
                ++_blockedOnSink;
                continue;
            }
            _outBusyUntil[out] = now + ser;
            NetPacket pkt = std::move(head.pkt);
            in.queue.pop_front();
            ++_ejected;
            if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
                t->flowStep(now, name(), "packet", "eject", pkt.traceId,
                            {trace::arg("x", _x), trace::arg("y", _y)});
            }
            // The whole packet has crossed into the NIC when its tail
            // clears the ejection channel.
            eventQueue().scheduleFn(
                [this, p, pkt = std::move(pkt)]() mutable {
                    _sink->sinkDeliver(std::move(pkt));
                    releaseCredit(static_cast<Port>(p));
                    scheduleAdvance(curTick());
                },
                now + ser, EventPriority::DEFAULT, "packet ejection");
            continue;
        }

        Router *nbr = _neighbor[out];
        SHRIMP_ASSERT(nbr, "route off the mesh edge at ", name(),
                      " toward port ", static_cast<unsigned>(out));
        Port nbr_in = _neighborIn[out];

        if (!nbr->hasCredit(nbr_in)) {
            // Park a wakeup keyed by our identity: re-registering on
            // every blocked advance() neither grows the waiter queue
            // nor resets our position in the FIFO wake order.
            ++_blockedOnCredit;
            nbr->addCreditWaiter(
                nbr_in, reinterpret_cast<std::uintptr_t>(this),
                [this] { scheduleAdvance(curTick()); });
            continue;
        }

        // The transmission commits past this point: only now stamp a
        // detour onto the packet, so a forward that was repeatedly
        // blocked on credit never burned the misroute budget.
        if (rd.detour) {
            head.pkt.yFirst = rd.yFirstAfter;
            ++head.pkt.misroutes;
            ++_misroutes;
            if (auto *t = eventQueue().tracer(); t && head.pkt.traceId) {
                t->flowStep(now, name(), "packet", "misroute",
                            head.pkt.traceId,
                            {trace::arg("out",
                                        static_cast<unsigned>(out))});
            }
        }

        // The link fault model rules on this transmission. Decided
        // only here -- after the credit check -- so a blocked forward
        // retried later never re-rolls the dice for the same packet.
        FaultModel *fm = _faults[out].get();
        FaultModel::Action act =
            fm ? fm->decide(now) : FaultModel::Action::PASS;

        if (act == FaultModel::Action::DROP ||
            act == FaultModel::Action::LINK_DOWN) {
            // The wire was occupied, but nothing arrives downstream.
            ++(act == FaultModel::Action::DROP ? _faultDrops
                                               : _linkDownDrops);
            if (auto *t = eventQueue().tracer();
                t && head.pkt.traceId) {
                t->flowEnd(now, name(), "packet", "lost",
                           head.pkt.traceId,
                           {trace::arg("reason",
                                       act == FaultModel::Action::DROP
                                           ? "faultDrop"
                                           : "linkDown")});
            }
            _outBusyUntil[out] = now + ser;
            in.queue.pop_front();
            eventQueue().scheduleFn(
                [this, p]() { releaseCredit(static_cast<Port>(p)); },
                now + ser, EventPriority::DEFAULT, "tail departure");
            scheduleAdvance(now + ser);
            continue;
        }

        // Forward: reserve the downstream slot now, occupy our output
        // link for the serialization time, and hand the header to the
        // neighbour after wire latency. Cut-through: the downstream
        // router may begin forwarding after its routing latency; the
        // tail follows the header by the serialization time, which is
        // modeled by keeping the downstream output link busy via the
        // same per-link serialization charge.
        nbr->reserveCredit(nbr_in);
        _outBusyUntil[out] = now + ser;
        ++_forwarded;

        NetPacket pkt = std::move(head.pkt);
        in.queue.pop_front();

        if (auto *t = eventQueue().tracer(); t && pkt.traceId) {
            t->flowStep(now, name(), "packet", "hop", pkt.traceId,
                        {trace::arg("x", _x), trace::arg("y", _y),
                         trace::arg("out",
                                    static_cast<unsigned>(out))});
        }

        if (act == FaultModel::Action::CORRUPT) {
            fm->corrupt(pkt);
            ++_faultCorrupts;
        }

        Tick header_at = now + _params.linkLatency;
        Tick decoded_at = header_at + _params.routingLatency;

        if (act == FaultModel::Action::REORDER) {
            // Hold the packet past its successors: its header enters
            // the downstream input queue only after reorderDelay, so
            // packets forwarded meanwhile are queued -- and routed --
            // ahead of it. The downstream credit is already reserved,
            // keeping buffer accounting exact.
            ++_faultReorders;
            Tick delay = fm->params().reorderDelay;
            eventQueue().scheduleFn(
                [nbr, nbr_in, decoded_at, delay,
                 pkt = std::move(pkt)]() mutable {
                    nbr->headerArrive(nbr_in, std::move(pkt),
                                      decoded_at + delay);
                },
                now + delay, EventPriority::DEFAULT, "reorder release");
        } else {
            if (act == FaultModel::Action::DUPLICATE) {
                // A ghost copy follows the original one serialization
                // time later, if the downstream buffer can take it.
                ++_faultDuplicates;
                NetPacket copy = pkt;
                eventQueue().scheduleFn(
                    [this, nbr, nbr_in,
                     copy = std::move(copy)]() mutable {
                        if (!nbr->hasCredit(nbr_in))
                            return;     // duplicate conveniently lost
                        nbr->reserveCredit(nbr_in);
                        nbr->headerArrive(nbr_in, std::move(copy),
                                          curTick() +
                                              _params.routingLatency);
                    },
                    now + ser, EventPriority::DEFAULT, "duplicate");
            }
            nbr->headerArrive(nbr_in, std::move(pkt), decoded_at);
        }

        // Our input buffer slot is held until the tail leaves.
        eventQueue().scheduleFn(
            [this, p]() { releaseCredit(static_cast<Port>(p)); },
            now + ser, EventPriority::DEFAULT, "tail departure");

        scheduleAdvance(now + ser);
    }
}

void
Router::scheduleAdvance(Tick when)
{
    if (when < curTick())
        when = curTick();
    if (_advanceEvent.scheduled()) {
        if (_advanceEvent.when() <= when)
            return;
        deschedule(_advanceEvent);
    }
    schedule(_advanceEvent, when);
}

} // namespace shrimp
