/**
 * @file
 * XpressBus: the node's memory bus, connecting CPU, DRAM, the EISA
 * bridge, and the SHRIMP network interface (which both snoops it and
 * responds to command-space addresses on it).
 *
 * Occupancy is modeled analytically: a master asks for a slot no
 * earlier than some tick, and the bus serializes transactions by
 * advancing a busy-until pointer. Cross-component effects (the NIC
 * seeing a snooped write) are delivered via scheduled events at the
 * granted slot time, so observable ordering is exact even though
 * arbitration is analytic.
 */

#ifndef SHRIMP_MEM_XPRESS_BUS_HH
#define SHRIMP_MEM_XPRESS_BUS_HH

#include <cstdint>
#include <vector>

#include "mem/bus_interfaces.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp
{

/** The Xpress memory bus (64-bit, 33.3 MHz by default). */
class XpressBus : public ClockedObject
{
  public:
    /** A granted bus slot: the transaction occupies [start, end). */
    struct Grant
    {
        Tick start;
        Tick end;
    };

    XpressBus(EventQueue &eq, std::string name,
              std::uint64_t freq_hz = 33'333'333, unsigned width_bytes = 8);

    /** Route [base, base+len) to @p target. Ranges must not overlap. */
    void addTarget(Addr base, Addr len, BusTarget *target);

    /** Register a snooper notified of every write transaction. */
    void addSnooper(BusSnooper *snooper);

    /** The target that decodes @p paddr, or null. */
    BusTarget *targetFor(Addr paddr) const;

    /** Bus cycles needed for a transaction moving @p bytes. */
    std::uint64_t
    transactionCycles(Addr bytes) const
    {
        // One address phase plus one data phase per bus-width chunk.
        return 1 + (bytes + _widthBytes - 1) / _widthBytes;
    }

    /**
     * Reserve the bus for a transaction of @p bytes starting no earlier
     * than @p earliest. Serializes against all other traffic.
     */
    Grant acquire(Tick earliest, Addr bytes);

    /** First tick at which the bus is free. */
    Tick busyUntil() const { return _busyUntil; }

    /**
     * Posted write: functionally performed immediately (so the issuing
     * CPU sees its own stores), bus slot reserved, and snoopers notified
     * at the slot's start tick with a copy of the data.
     *
     * @return the granted slot.
     */
    Grant postWrite(Addr paddr, const void *buf, Addr len,
                    BusMaster master, Tick earliest);

    /**
     * Write performed at the current tick (used by DMA models that have
     * already accounted for their device-side timing): functional write
     * and snoop notification happen synchronously; bus occupancy is
     * charged starting now.
     */
    Grant writeNow(Addr paddr, const void *buf, Addr len,
                   BusMaster master);

    /**
     * Functional read through the address decoder (no timing). The
     * caller accounts for timing via acquire() plus target latency.
     */
    std::uint64_t functionalRead(Addr paddr, unsigned size) const;

    /**
     * Functional write with immediate snooper notification but no
     * occupancy charge; used for the write half of a locked CMPXCHG,
     * whose bus time was already reserved via Cache::lockedAccess().
     */
    void functionalWrite(Addr paddr, const void *buf, Addr len,
                         BusMaster master);

    /** Per-master transaction and byte counters, for bandwidth checks. */
    stats::Group &statGroup() { return _stats; }
    std::uint64_t bytesCarried() const { return _bytes.value(); }

  private:
    struct Range
    {
        Addr base;
        Addr limit;     //!< exclusive
        BusTarget *target;
    };

    void notifySnoopers(Addr paddr, const void *buf, Addr len,
                        BusMaster master);

    unsigned _widthBytes;
    Tick _busyUntil = 0;
    std::vector<Range> _ranges;
    std::vector<BusSnooper *> _snoopers;

    stats::Group _stats;
    stats::Counter _transactions{"transactions", "bus transactions"};
    stats::Counter _bytes{"bytes", "bytes carried on the bus"};
    stats::Counter _contentionTicks{"contentionTicks",
                                    "ticks transactions waited for the bus"};
};

} // namespace shrimp

#endif // SHRIMP_MEM_XPRESS_BUS_HH
