#include "mem/xpress_bus.hh"

#include <cstring>

#include "sim/logging.hh"

namespace shrimp
{

XpressBus::XpressBus(EventQueue &eq, std::string name,
                     std::uint64_t freq_hz, unsigned width_bytes)
    : ClockedObject(eq, std::move(name), freq_hz),
      _widthBytes(width_bytes),
      _stats(this->name())
{
    SHRIMP_ASSERT(width_bytes > 0, "zero bus width");
    _stats.addStat(&_transactions);
    _stats.addStat(&_bytes);
    _stats.addStat(&_contentionTicks);
}

void
XpressBus::addTarget(Addr base, Addr len, BusTarget *target)
{
    SHRIMP_ASSERT(target != nullptr, "null bus target");
    Addr limit = base + len;
    for (const Range &r : _ranges) {
        SHRIMP_ASSERT(limit <= r.base || base >= r.limit,
                      "overlapping bus target ranges");
    }
    _ranges.push_back(Range{base, limit, target});
}

void
XpressBus::addSnooper(BusSnooper *snooper)
{
    SHRIMP_ASSERT(snooper != nullptr, "null bus snooper");
    _snoopers.push_back(snooper);
}

BusTarget *
XpressBus::targetFor(Addr paddr) const
{
    for (const Range &r : _ranges) {
        if (paddr >= r.base && paddr < r.limit)
            return r.target;
    }
    return nullptr;
}

XpressBus::Grant
XpressBus::acquire(Tick earliest, Addr bytes)
{
    Tick start = earliest > _busyUntil ? earliest : _busyUntil;
    // Align the start to a bus clock edge.
    Tick period = clockPeriod();
    start = ((start + period - 1) / period) * period;
    Tick duration = cyclesToTicks(transactionCycles(bytes));

    ++_transactions;
    _bytes += bytes;
    _contentionTicks += start - earliest;

    _busyUntil = start + duration;
    return Grant{start, _busyUntil};
}

void
XpressBus::notifySnoopers(Addr paddr, const void *buf, Addr len,
                          BusMaster master)
{
    for (BusSnooper *s : _snoopers)
        s->snoopWrite(paddr, buf, len, master);
}

XpressBus::Grant
XpressBus::postWrite(Addr paddr, const void *buf, Addr len,
                     BusMaster master, Tick earliest)
{
    BusTarget *target = targetFor(paddr);
    SHRIMP_ASSERT(target, "bus write decodes to no target: addr=", paddr);

    bool deferred = target->effectAtGrant();
    if (!deferred) {
        // Functional effect now: the issuing CPU must see its own
        // store in memory.
        target->busWrite(paddr, buf, len);
    }

    Grant grant = acquire(earliest, len);

    // Snoopers observe the write, with the data as driven, at the tick
    // the transaction actually occupies the bus; device targets take
    // their functional effect at the same tick so command writes stay
    // ordered behind earlier snooped data writes.
    std::vector<std::uint8_t> copy(static_cast<std::size_t>(len));
    std::memcpy(copy.data(), buf, copy.size());
    eventQueue().scheduleFn(
        [this, target, deferred, paddr, data = std::move(copy),
         master]() {
            if (deferred)
                target->busWrite(paddr, data.data(), data.size());
            notifySnoopers(paddr, data.data(), data.size(), master);
        },
        grant.start, EventPriority::CLOCK, "bus snoop notify");

    return grant;
}

XpressBus::Grant
XpressBus::writeNow(Addr paddr, const void *buf, Addr len,
                    BusMaster master)
{
    BusTarget *target = targetFor(paddr);
    SHRIMP_ASSERT(target, "bus write decodes to no target: addr=", paddr);

    target->busWrite(paddr, buf, len);
    Grant grant = acquire(curTick(), len);
    notifySnoopers(paddr, buf, len, master);
    return grant;
}

void
XpressBus::functionalWrite(Addr paddr, const void *buf, Addr len,
                           BusMaster master)
{
    BusTarget *target = targetFor(paddr);
    SHRIMP_ASSERT(target, "bus write decodes to no target: addr=", paddr);
    target->busWrite(paddr, buf, len);
    notifySnoopers(paddr, buf, len, master);
}

std::uint64_t
XpressBus::functionalRead(Addr paddr, unsigned size) const
{
    BusTarget *target = targetFor(paddr);
    SHRIMP_ASSERT(target, "bus read decodes to no target: addr=", paddr);
    return target->busRead(paddr, size);
}

} // namespace shrimp
