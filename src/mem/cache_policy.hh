/**
 * @file
 * Per-page cache policy, as configured in process page tables on the
 * Xpress PC. The map() call forces mapped-out pages to write-through so
 * the network interface can snoop every store (Section 2 of the paper).
 */

#ifndef SHRIMP_MEM_CACHE_POLICY_HH
#define SHRIMP_MEM_CACHE_POLICY_HH

#include <cstdint>

namespace shrimp
{

enum class CachePolicy : std::uint8_t
{
    WRITE_BACK,     //!< default for ordinary pages
    WRITE_THROUGH,  //!< required for mapped-out (snooped) pages
    UNCACHEABLE,    //!< command pages and device space
};

/** Human-readable policy name for traces. */
const char *cachePolicyName(CachePolicy policy);

} // namespace shrimp

#endif // SHRIMP_MEM_CACHE_POLICY_HH
