/**
 * @file
 * EisaBus: the node's EISA expansion bus. On the prototype SHRIMP
 * network interface, incoming packets reach main memory through an
 * EISA DMA burst; its 33 MB/s burst bandwidth is the bottleneck that
 * limits the system's receive bandwidth (Section 5.1).
 */

#ifndef SHRIMP_MEM_EISA_BUS_HH
#define SHRIMP_MEM_EISA_BUS_HH

#include <cstdint>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp
{

/**
 * Analytic occupancy model of the EISA bus in burst DMA mode: each
 * burst pays an arbitration/setup cost, then streams at the burst
 * bandwidth. Consecutive bursts serialize.
 */
class EisaBus : public SimObject
{
  public:
    struct Grant
    {
        Tick start;     //!< burst begins (setup included before data)
        Tick end;       //!< last byte transferred
    };

    struct Params
    {
        std::uint64_t burstBytesPerSec = 33'000'000;
        Tick setupTime = 900 * ONE_NS;  //!< arbitration + DMA setup
    };

    EisaBus(EventQueue &eq, std::string name, const Params &params)
        : SimObject(eq, std::move(name)),
          _params(params),
          _stats(this->name())
    {
        _stats.addStat(&_bursts);
        _stats.addStat(&_bytes);
    }

    /**
     * Reserve the bus for a burst of @p bytes starting no earlier than
     * @p earliest.
     */
    Grant
    acquire(Tick earliest, Addr bytes)
    {
        Tick start = earliest > _busyUntil ? earliest : _busyUntil;
        Tick data_time =
            (bytes * ONE_SEC + _params.burstBytesPerSec - 1) /
            _params.burstBytesPerSec;
        Tick end = start + _params.setupTime + data_time;
        _busyUntil = end;
        ++_bursts;
        _bytes += bytes;
        return Grant{start, end};
    }

    Tick busyUntil() const { return _busyUntil; }
    const Params &params() const { return _params; }
    std::uint64_t bytesCarried() const { return _bytes.value(); }
    std::uint64_t burstsCarried() const { return _bursts.value(); }
    stats::Group &statGroup() { return _stats; }

  private:
    Params _params;
    Tick _busyUntil = 0;

    stats::Group _stats;
    stats::Counter _bursts{"bursts", "DMA bursts carried"};
    stats::Counter _bytes{"bytes", "bytes carried"};
};

} // namespace shrimp

#endif // SHRIMP_MEM_EISA_BUS_HH
