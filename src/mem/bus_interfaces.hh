/**
 * @file
 * Interfaces between bus masters, targets and snoopers on the Xpress
 * memory bus.
 */

#ifndef SHRIMP_MEM_BUS_INTERFACES_HH
#define SHRIMP_MEM_BUS_INTERFACES_HH

#include <cstdint>

#include "sim/types.hh"

namespace shrimp
{

/** Who is driving a bus transaction. */
enum class BusMaster : std::uint8_t
{
    CPU,        //!< processor loads/stores (incl. posted write buffer)
    EISA_DMA,   //!< incoming-packet DMA through the EISA bridge
    NIC_DMA,    //!< deliberate-update DMA engine reading main memory
};

/**
 * Something addressable on the bus: main memory, or the network
 * interface's command space.
 */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** Read @p size bytes (<= 8) at @p paddr, returned little-endian. */
    virtual std::uint64_t busRead(Addr paddr, unsigned size) = 0;

    /** Write @p len bytes at @p paddr. */
    virtual void busWrite(Addr paddr, const void *buf, Addr len) = 0;

    /**
     * If true, posted writes to this target take functional effect at
     * the bus-grant tick rather than at issue. Memory wants
     * issue-time effect (the CPU must see its own stores); device
     * command space wants grant-time effect so control writes stay
     * ordered with the snooped data writes preceding them.
     */
    virtual bool effectAtGrant() const { return false; }
};

/**
 * A device observing bus traffic. The SHRIMP network interface snoops
 * CPU write-through stores; caches snoop DMA writes to invalidate.
 */
class BusSnooper
{
  public:
    virtual ~BusSnooper() = default;

    /**
     * Called at the tick a write transaction occupies the bus.
     *
     * @param paddr physical address of the write
     * @param buf the written bytes
     * @param len number of bytes written
     * @param master which device drove the write
     */
    virtual void snoopWrite(Addr paddr, const void *buf, Addr len,
                            BusMaster master) = 0;
};

} // namespace shrimp

#endif // SHRIMP_MEM_BUS_INTERFACES_HH
