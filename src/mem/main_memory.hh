/**
 * @file
 * MainMemory: a node's DRAM. Functional backing store plus a fixed
 * access latency used by the timing models that reference it.
 */

#ifndef SHRIMP_MEM_MAIN_MEMORY_HH
#define SHRIMP_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "mem/bus_interfaces.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace shrimp
{

/**
 * A node's main memory. All functional data lives here; caches are
 * timing-only (tags and dirty bits, no data arrays), so DMA and CPU
 * always observe current values. This matches the Xpress PC property
 * the paper relies on: snooping caches stay consistent with all main
 * memory updates.
 */
class MainMemory : public SimObject, public BusTarget
{
  public:
    MainMemory(EventQueue &eq, std::string name, Addr bytes,
               Tick access_latency = 60 * ONE_NS)
        : SimObject(eq, std::move(name)),
          _data(bytes, 0),
          _accessLatency(access_latency)
    {
        SHRIMP_ASSERT(bytes % PAGE_SIZE == 0,
                      "memory size must be page aligned");
    }

    /** Memory capacity in bytes. */
    Addr size() const { return _data.size(); }

    /** Number of physical page frames. */
    PageNum numPages() const { return _data.size() / PAGE_SIZE; }

    /** DRAM access latency (row access, simplified). */
    Tick accessLatency() const { return _accessLatency; }

    /** Functional read of @p len bytes at @p paddr. */
    void
    read(Addr paddr, void *buf, Addr len) const
    {
        checkRange(paddr, len);
        std::memcpy(buf, _data.data() + paddr, len);
    }

    /** Functional write of @p len bytes at @p paddr. */
    void
    write(Addr paddr, const void *buf, Addr len)
    {
        checkRange(paddr, len);
        std::memcpy(_data.data() + paddr, buf, len);
    }

    /** Read a little-endian integer of @p size bytes (1/2/4/8). */
    std::uint64_t
    readInt(Addr paddr, unsigned size) const
    {
        SHRIMP_ASSERT(size <= 8, "bad integer size ", size);
        std::uint64_t v = 0;
        read(paddr, &v, size);
        return v;
    }

    /** Write a little-endian integer of @p size bytes (1/2/4/8). */
    void
    writeInt(Addr paddr, std::uint64_t v, unsigned size)
    {
        SHRIMP_ASSERT(size <= 8, "bad integer size ", size);
        write(paddr, &v, size);
    }

    // BusTarget interface
    std::uint64_t
    busRead(Addr paddr, unsigned size) override
    {
        return readInt(paddr, size);
    }

    void
    busWrite(Addr paddr, const void *buf, Addr len) override
    {
        write(paddr, buf, len);
    }

  private:
    void
    checkRange(Addr paddr, Addr len) const
    {
        SHRIMP_ASSERT(paddr + len <= _data.size() && paddr + len >= paddr,
                      "memory access out of range: addr=", paddr,
                      " len=", len, " size=", _data.size());
    }

    std::vector<std::uint8_t> _data;
    Tick _accessLatency;
};

} // namespace shrimp

#endif // SHRIMP_MEM_MAIN_MEMORY_HH
