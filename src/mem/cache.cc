#include "mem/cache.hh"

#include "sim/logging.hh"

namespace shrimp
{

const char *
cachePolicyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::WRITE_BACK: return "write-back";
      case CachePolicy::WRITE_THROUGH: return "write-through";
      case CachePolicy::UNCACHEABLE: return "uncacheable";
    }
    return "unknown";
}

Tick
WriteBuffer::post(XpressBus &bus, Addr paddr, const void *buf, Addr len,
                  Tick now)
{
    retire(now);

    Tick proceed = now;
    if (_pending.size() >= _capacity) {
        // Buffer full: the CPU stalls until the oldest write reaches
        // the bus and frees a slot.
        proceed = _pending.front();
        retire(proceed);
    }

    Tick earliest = proceed > _lastGrantEnd ? proceed : _lastGrantEnd;
    XpressBus::Grant grant =
        bus.postWrite(paddr, buf, len, BusMaster::CPU, earliest);
    _pending.push_back(grant.end);
    _lastGrantEnd = grant.end;
    return proceed;
}

Tick
WriteBuffer::drainedAt(Tick now)
{
    retire(now);
    return _pending.empty() ? now : _pending.back();
}

void
WriteBuffer::retire(Tick now)
{
    while (!_pending.empty() && _pending.front() <= now)
        _pending.pop_front();
}

Cache::Cache(EventQueue &eq, std::string name, std::uint64_t freq_hz,
             XpressBus &bus, MainMemory &mem, const Params &params)
    : ClockedObject(eq, std::move(name), freq_hz),
      _bus(bus),
      _mem(mem),
      _params(params),
      _writeBuffer(params.writeBufferEntries),
      _stats(this->name())
{
    SHRIMP_ASSERT(params.sizeBytes % params.lineBytes == 0,
                  "cache size not a multiple of line size");
    _lines.resize(params.sizeBytes / params.lineBytes);

    _stats.addStat(&_hits);
    _stats.addStat(&_misses);
    _stats.addStat(&_writebacks);
    _stats.addStat(&_snoopInvalidations);

    bus.addSnooper(this);
}

std::size_t
Cache::indexOf(Addr paddr) const
{
    return (paddr / _params.lineBytes) % _lines.size();
}

Addr
Cache::tagOf(Addr paddr) const
{
    return paddr / _params.sizeBytes;
}

Addr
Cache::lineBase(Addr paddr) const
{
    return paddr - paddr % _params.lineBytes;
}

Tick
Cache::fill(Addr paddr, Tick now)
{
    Line &line = _lines[indexOf(paddr)];

    if (line.valid && line.dirty) {
        // Victim writeback. Memory already holds current data (the
        // cache is timing-only), so this charges occupancy without a
        // functional write -- and without snooper noise, which is
        // faithful: only mapped pages matter to the NIC and mapped-out
        // pages are forced write-through, never dirty.
        _bus.acquire(now, _params.lineBytes);
        ++_writebacks;
    }

    XpressBus::Grant grant = _bus.acquire(now, _params.lineBytes);
    Tick avail = grant.end + _mem.accessLatency();

    line.valid = true;
    line.dirty = false;
    line.tag = tagOf(paddr);
    return avail;
}

Tick
Cache::load(Addr paddr, unsigned size, CachePolicy policy, Tick now)
{
    if (policy == CachePolicy::UNCACHEABLE) {
        XpressBus::Grant grant = _bus.acquire(now, size);
        // DRAM adds its access latency; device space (the NIC command
        // pages) answers within the bus transaction.
        bool is_dram = paddr < _mem.size();
        return grant.end + (is_dram ? _mem.accessLatency() : 0);
    }

    const Line &line = _lines[indexOf(paddr)];
    if (line.valid && line.tag == tagOf(paddr)) {
        ++_hits;
        return now + cyclesToTicks(_params.hitCycles);
    }

    ++_misses;
    return fill(paddr, now) + cyclesToTicks(_params.hitCycles);
}

Tick
Cache::store(Addr paddr, const void *buf, Addr len, CachePolicy policy,
             Tick now)
{
    if (policy == CachePolicy::WRITE_BACK) {
        Line &line = _lines[indexOf(paddr)];
        Tick ready = now;
        if (!(line.valid && line.tag == tagOf(paddr))) {
            ++_misses;
            ready = fill(paddr, now);   // write-allocate
        } else {
            ++_hits;
        }
        line.dirty = true;
        _mem.write(paddr, buf, len);    // functional data is in memory
        return ready + cyclesToTicks(_params.hitCycles);
    }

    // Write-through and uncacheable stores go to the bus via the posted
    // write buffer; the NIC snoops them there. Write-through updates
    // the line on a hit but does not allocate on a miss.
    if (policy == CachePolicy::WRITE_THROUGH) {
        const Line &line = _lines[indexOf(paddr)];
        if (line.valid && line.tag == tagOf(paddr))
            ++_hits;
        else
            ++_misses;
    }

    Tick proceed = _writeBuffer.post(_bus, paddr, buf, len, now);
    return proceed + cyclesToTicks(_params.hitCycles);
}

XpressBus::Grant
Cache::lockedAccess(Addr paddr, Addr bytes, Tick now)
{
    // x86 locked operations drain the store buffer, then hold the bus
    // for the read and the (possible) write together.
    Tick drained = _writeBuffer.drainedAt(now);
    (void)paddr;
    return _bus.acquire(drained, 2 * bytes);
}

void
Cache::invalidateAll()
{
    for (Line &line : _lines)
        line = Line{};
}

bool
Cache::isCached(Addr paddr) const
{
    const Line &line = _lines[indexOf(paddr)];
    return line.valid && line.tag == tagOf(paddr);
}

bool
Cache::isDirty(Addr paddr) const
{
    const Line &line = _lines[indexOf(paddr)];
    return line.valid && line.tag == tagOf(paddr) && line.dirty;
}

void
Cache::snoopWrite(Addr paddr, const void *buf, Addr len, BusMaster master)
{
    (void)buf;
    if (master == BusMaster::CPU)
        return;     // our own traffic

    for (Addr a = lineBase(paddr); a < paddr + len;
         a += _params.lineBytes) {
        Line &line = _lines[indexOf(a)];
        if (line.valid && line.tag == tagOf(a)) {
            line.valid = false;
            line.dirty = false;
            ++_snoopInvalidations;
        }
    }
}

} // namespace shrimp
