/**
 * @file
 * The node's second-level cache and the CPU's posted write buffer.
 *
 * The cache is a timing model only: tags, valid and dirty bits, with
 * all functional data living in MainMemory. This mirrors the property
 * the paper depends on -- the Xpress PC's snooping caches are always
 * consistent with main memory -- while keeping DMA/CPU interleavings
 * trivially correct.
 */

#ifndef SHRIMP_MEM_CACHE_HH
#define SHRIMP_MEM_CACHE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/bus_interfaces.hh"
#include "mem/cache_policy.hh"
#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

/**
 * The CPU's posted write buffer. Stores retire to the Xpress bus in
 * FIFO order; the CPU only stalls when the buffer is full. This is the
 * mechanism behind the paper's claim that a single-write automatic
 * update costs the CPU "only the local write-through cache latency".
 */
class WriteBuffer
{
  public:
    explicit WriteBuffer(unsigned capacity) : _capacity(capacity) {}

    /**
     * Post a write. Performs the functional write and schedules the bus
     * transaction (preserving store order on the bus).
     *
     * @return the tick at which the CPU may proceed (now, unless the
     *         buffer was full).
     */
    Tick post(XpressBus &bus, Addr paddr, const void *buf, Addr len,
              Tick now);

    /** Tick by which every currently posted write has reached the bus. */
    Tick drainedAt(Tick now);

    unsigned capacity() const { return _capacity; }

  private:
    void retire(Tick now);

    unsigned _capacity;
    std::deque<Tick> _pending;  //!< bus-grant end per outstanding write
    Tick _lastGrantEnd = 0;     //!< FIFO ordering on the bus
};

/**
 * Direct-mapped L2 cache with per-access policy (supplied by the MMU
 * from the page table), write-allocate for write-back pages, and
 * no-allocate write-through. Snoops DMA writes and invalidates.
 */
class Cache : public ClockedObject, public BusSnooper
{
  public:
    struct Params
    {
        Addr sizeBytes = 256 * 1024;
        Addr lineBytes = 32;
        unsigned hitCycles = 1;         //!< at the cache clock
        unsigned writeBufferEntries = 4;
    };

    Cache(EventQueue &eq, std::string name, std::uint64_t freq_hz,
          XpressBus &bus, MainMemory &mem, const Params &params);

    /**
     * Timing for a load. The functional value is read by the caller
     * (memory is always current).
     *
     * @return the tick at which the loaded value is available.
     */
    Tick load(Addr paddr, unsigned size, CachePolicy policy, Tick now);

    /**
     * A store: functional write plus timing. Write-through and
     * uncacheable stores go through the posted write buffer onto the
     * bus (where the network interface snoops them).
     *
     * @return the tick at which the CPU may proceed.
     */
    Tick store(Addr paddr, const void *buf, Addr len, CachePolicy policy,
               Tick now);

    /**
     * Serialize a locked (atomic) operation: drains the posted write
     * buffer, then reserves the bus for a read-modify-write of @p bytes.
     * x86 locked operations have exactly this bus behaviour.
     *
     * @return the granted bus slot (functional work is done by the
     *         caller; see Cpu's CMPXCHG handling).
     */
    XpressBus::Grant lockedAccess(Addr paddr, Addr bytes, Tick now);

    /** Tick by which all posted writes have reached the bus. */
    Tick drainedAt(Tick now) { return _writeBuffer.drainedAt(now); }

    /** Invalidate every line (used at context switch tests, etc.). */
    void invalidateAll();

    /** True if the line containing @p paddr is present. */
    bool isCached(Addr paddr) const;

    /** True if the line containing @p paddr is present and dirty. */
    bool isDirty(Addr paddr) const;

    // BusSnooper: invalidate on DMA writes so timing state matches the
    // hardware's snoop-invalidate behaviour.
    void snoopWrite(Addr paddr, const void *buf, Addr len,
                    BusMaster master) override;

    stats::Group &statGroup() { return _stats; }
    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t snoopInvalidations() const
    {
        return _snoopInvalidations.value();
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
    };

    std::size_t indexOf(Addr paddr) const;
    Addr tagOf(Addr paddr) const;
    Addr lineBase(Addr paddr) const;

    /** Fill the line for @p paddr; returns data-available tick. */
    Tick fill(Addr paddr, Tick now);

    XpressBus &_bus;
    MainMemory &_mem;
    Params _params;
    std::vector<Line> _lines;
    WriteBuffer _writeBuffer;

    stats::Group _stats;
    stats::Counter _hits{"hits", "cache hits"};
    stats::Counter _misses{"misses", "cache misses"};
    stats::Counter _writebacks{"writebacks", "dirty line writebacks"};
    stats::Counter _snoopInvalidations{"snoopInvalidations",
                                       "lines invalidated by DMA snoops"};
};

} // namespace shrimp

#endif // SHRIMP_MEM_CACHE_HH
