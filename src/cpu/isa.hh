/**
 * @file
 * The mini-ISA executed by simulated node CPUs.
 *
 * An i386-flavoured register machine: 8 general registers, ZF/LF
 * flags, byte-addressed little-endian memory, and the locked CMPXCHG
 * instruction the SHRIMP deliberate-update protocol is built on
 * (Section 4.3). The paper measures software overhead in instructions,
 * so the message-passing primitives in src/msg are written in this ISA
 * and executed on the Cpu model, which counts them.
 */

#ifndef SHRIMP_CPU_ISA_HH
#define SHRIMP_CPU_ISA_HH

#include <cstdint>

namespace shrimp
{

/** General-purpose register names. R0 is the accumulator (EAX analog,
 *  compared by CMPXCHG); R7 is the stack pointer by convention. */
enum Reg : std::uint8_t
{
    R0 = 0, R1, R2, R3, R4, R5, R6, R7,
    NUM_REGS,
    SP = R7,
};

enum class Opcode : std::uint8_t
{
    NOP,
    HALT,       //!< process finished

    MOVI,       //!< rd <- imm
    MOV,        //!< rd <- rs1
    ADD,        //!< rd <- rd + rs1
    ADDI,       //!< rd <- rd + imm
    SUB,        //!< rd <- rd - rs1
    SUBI,       //!< rd <- rd - imm
    AND_,       //!< rd <- rd & rs1
    ANDI,       //!< rd <- rd & imm
    OR_,        //!< rd <- rd | rs1
    XOR_,       //!< rd <- rd ^ rs1
    SHLI,       //!< rd <- rd << imm
    SHRI,       //!< rd <- rd >> imm (logical)
    MUL,        //!< rd <- rd * rs1

    LD,         //!< rd <- mem[rs1 + imm] (size bytes, zero-extended)
    ST,         //!< mem[rd + imm] <- rs1 (size bytes)
    STI,        //!< mem[rd + imm] <- imm2 (size bytes)

    CMP,        //!< flags <- compare(rs1, rs2)
    CMPI,       //!< flags <- compare(rs1, imm)
    JMP,        //!< pc <- imm
    JZ,         //!< if ZF
    JNZ,        //!< if !ZF
    JL,         //!< if LF (rs1 < rhs, unsigned)
    JGE,        //!< if !LF

    CALL,       //!< push pc+1; pc <- imm
    RET,        //!< pc <- pop
    PUSH,       //!< mem[--sp] <- rs1
    POP,        //!< rd <- mem[sp++]

    /**
     * Locked compare-and-exchange, the x86 CMPXCHG: one atomic bus
     * read(+write). If mem[rs1+imm] == R0 then mem <- rs2 and ZF=1,
     * else R0 <- mem and ZF=0.
     */
    CMPXCHG,

    SYSCALL,    //!< trap to kernel; number in imm, args in R1..R3,
                //!< result in R0

    /**
     * Instrumentation: set the current measurement region to imm.
     * Free (zero time, not counted); exists so harnesses can attribute
     * executed instructions to "send overhead", "receive overhead",
     * "per-byte data movement", etc., exactly as the paper's Table 1
     * separates them.
     */
    MARK,
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t size = 4;          //!< memory access size in bytes
    std::int64_t imm = 0;           //!< immediate / branch target
    std::int64_t imm2 = 0;          //!< second immediate (STI value)
};

/** Mnemonic for traces. */
const char *opcodeName(Opcode op);

} // namespace shrimp

#endif // SHRIMP_CPU_ISA_HH
