#include "cpu/program.hh"

#include "sim/logging.hh"

namespace shrimp
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::HALT: return "halt";
      case Opcode::MOVI: return "movi";
      case Opcode::MOV: return "mov";
      case Opcode::ADD: return "add";
      case Opcode::ADDI: return "addi";
      case Opcode::SUB: return "sub";
      case Opcode::SUBI: return "subi";
      case Opcode::AND_: return "and";
      case Opcode::ANDI: return "andi";
      case Opcode::OR_: return "or";
      case Opcode::XOR_: return "xor";
      case Opcode::SHLI: return "shli";
      case Opcode::SHRI: return "shri";
      case Opcode::MUL: return "mul";
      case Opcode::LD: return "ld";
      case Opcode::ST: return "st";
      case Opcode::STI: return "sti";
      case Opcode::CMP: return "cmp";
      case Opcode::CMPI: return "cmpi";
      case Opcode::JMP: return "jmp";
      case Opcode::JZ: return "jz";
      case Opcode::JNZ: return "jnz";
      case Opcode::JL: return "jl";
      case Opcode::JGE: return "jge";
      case Opcode::CALL: return "call";
      case Opcode::RET: return "ret";
      case Opcode::PUSH: return "push";
      case Opcode::POP: return "pop";
      case Opcode::CMPXCHG: return "cmpxchg";
      case Opcode::SYSCALL: return "syscall";
      case Opcode::MARK: return "mark";
    }
    return "???";
}

int
Program::emit(Instruction instr)
{
    SHRIMP_ASSERT(!_finalized, "emit into finalized program '", _name, "'");
    _instrs.push_back(instr);
    return static_cast<int>(_instrs.size()) - 1;
}

int
Program::branch(Opcode op, const std::string &label)
{
    int idx = emit({op});
    _fixups.emplace_back(static_cast<std::uint32_t>(idx), label);
    return idx;
}

void
Program::label(const std::string &name)
{
    SHRIMP_ASSERT(!_finalized, "label in finalized program");
    SHRIMP_ASSERT(!_labels.count(name),
                  "duplicate label '", name, "' in '", _name, "'");
    _labels[name] = static_cast<std::uint32_t>(_instrs.size());
}

void
Program::finalize()
{
    SHRIMP_ASSERT(!_finalized, "double finalize of '", _name, "'");
    for (const auto &[idx, label] : _fixups) {
        auto it = _labels.find(label);
        SHRIMP_ASSERT(it != _labels.end(),
                      "undefined label '", label, "' in '", _name, "'");
        _instrs[idx].imm = it->second;
    }
    _fixups.clear();
    _finalized = true;
}

const Instruction &
Program::at(std::uint32_t pc) const
{
    SHRIMP_ASSERT(_finalized, "execution of non-finalized program");
    SHRIMP_ASSERT(pc < _instrs.size(),
                  "pc out of range: ", pc, " in '", _name, "'");
    return _instrs[pc];
}

std::uint32_t
Program::labelAddress(const std::string &name) const
{
    auto it = _labels.find(name);
    SHRIMP_ASSERT(it != _labels.end(), "unknown label '", name, "'");
    return it->second;
}

} // namespace shrimp
