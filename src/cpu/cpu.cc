#include "cpu/cpu.hh"

#include "sim/logging.hh"

namespace shrimp
{

Cpu::Cpu(EventQueue &eq, std::string name, const Params &params,
         Cache &cache, XpressBus &bus, MainMemory &mem)
    : ClockedObject(eq, std::move(name), params.freqHz),
      _params(params),
      _cache(cache),
      _bus(bus),
      _mem(mem),
      _execEvent([this] { executeNext(); }, "cpu execute"),
      _stats(this->name())
{
    _stats.addStat(&_instructions);
    _stats.addStat(&_kernelInstructions);
    _stats.addStat(&_interrupts);
    _stats.addStat(&_faults);
    _stats.addStat(&_lockedOps);
}

void
Cpu::resumeAt(Tick when)
{
    reschedule(_execEvent, when, EventPriority::CPU);
}

void
Cpu::suspend()
{
    if (_execEvent.scheduled())
        deschedule(_execEvent);
}

void
Cpu::postInterrupt(InterruptHandler handler)
{
    _pendingInterrupts.push_back(std::move(handler));
    // If no execution event is pending (idle CPU, or one blocked in the
    // kernel), deliver at the next opportunity.
    if (!_execEvent.scheduled())
        resumeAt(clockEdge());
}

Tick
Cpu::chargeKernel(ExecContext *ctx, std::uint64_t instructions)
{
    _kernelInstructions += instructions;
    if (ctx)
        ctx->kernelInstrs += instructions;
    return cyclesToTicks(instructions);
}

void
Cpu::executeNext()
{
    Tick now = curTick();

    // Interrupts are delivered at instruction boundaries and occupy
    // the CPU for their handler's duration.
    if (!_pendingInterrupts.empty()) {
        InterruptHandler handler = std::move(_pendingInterrupts.front());
        _pendingInterrupts.pop_front();
        ++_interrupts;
        Tick done = handler(now);
        SHRIMP_ASSERT(done >= now, "interrupt handler went back in time");
        // Re-enter; remaining interrupts and user code continue then.
        resumeAt(done > now ? done : clockEdge(1));
        return;
    }

    if (!_context || _context->halted || !_context->program)
        return;     // idle; kernel will resume us

    ExecContext &ctx = *_context;
    const Instruction &instr = ctx.program->at(ctx.pc);
    Tick next = executeOne(ctx, instr, now);
    if (next != MAX_TICK)
        resumeAt(next);
}

Tick
Cpu::executeOne(ExecContext &ctx, const Instruction &instr, Tick now)
{
    auto &r = ctx.regs;
    const Tick one_cycle = clockPeriod();
    Tick next = now + one_cycle;
    std::uint32_t next_pc = ctx.pc + 1;
    bool counted = true;

    switch (instr.op) {
      case Opcode::NOP:
        break;

      case Opcode::MARK:
        ctx.currentRegion =
            static_cast<std::uint8_t>(instr.imm) % region::NUM;
        counted = false;
        next = now;     // instrumentation is free
        break;

      case Opcode::HALT:
        ctx.halted = true;
        ++_instructions;
        ctx.totalInstrs++;
        ctx.regionInstrs[ctx.currentRegion]++;
        if (_trapHandler)
            _trapHandler->halted(ctx, now);
        return MAX_TICK;

      case Opcode::MOVI:
        r[instr.rd] = static_cast<std::uint64_t>(instr.imm);
        break;
      case Opcode::MOV:
        r[instr.rd] = r[instr.rs1];
        break;
      case Opcode::ADD:
        r[instr.rd] += r[instr.rs1];
        break;
      case Opcode::ADDI:
        r[instr.rd] += static_cast<std::uint64_t>(instr.imm);
        break;
      case Opcode::SUB:
        r[instr.rd] -= r[instr.rs1];
        break;
      case Opcode::SUBI:
        r[instr.rd] -= static_cast<std::uint64_t>(instr.imm);
        break;
      case Opcode::AND_:
        r[instr.rd] &= r[instr.rs1];
        break;
      case Opcode::ANDI:
        r[instr.rd] &= static_cast<std::uint64_t>(instr.imm);
        break;
      case Opcode::OR_:
        r[instr.rd] |= r[instr.rs1];
        break;
      case Opcode::XOR_:
        r[instr.rd] ^= r[instr.rs1];
        break;
      case Opcode::SHLI:
        r[instr.rd] <<= instr.imm;
        break;
      case Opcode::SHRI:
        r[instr.rd] >>= instr.imm;
        break;
      case Opcode::MUL:
        r[instr.rd] *= r[instr.rs1];
        next = now + cyclesToTicks(3);
        break;

      case Opcode::LD: {
        auto done = doLoad(ctx, instr, now);
        if (!done)
            return MAX_TICK;    // fault path took over
        next = *done;
        break;
      }

      case Opcode::ST:
      case Opcode::STI: {
        auto done = doStore(ctx, instr, now);
        if (!done)
            return MAX_TICK;
        next = *done;
        break;
      }

      case Opcode::CMP: {
        std::uint64_t a = r[instr.rs1], b = r[instr.rs2];
        ctx.zf = a == b;
        ctx.lf = a < b;
        break;
      }
      case Opcode::CMPI: {
        std::uint64_t a = r[instr.rs1];
        std::uint64_t b = static_cast<std::uint64_t>(instr.imm);
        ctx.zf = a == b;
        ctx.lf = a < b;
        break;
      }

      case Opcode::JMP:
        next_pc = static_cast<std::uint32_t>(instr.imm);
        break;
      case Opcode::JZ:
        if (ctx.zf)
            next_pc = static_cast<std::uint32_t>(instr.imm);
        break;
      case Opcode::JNZ:
        if (!ctx.zf)
            next_pc = static_cast<std::uint32_t>(instr.imm);
        break;
      case Opcode::JL:
        if (ctx.lf)
            next_pc = static_cast<std::uint32_t>(instr.imm);
        break;
      case Opcode::JGE:
        if (!ctx.lf)
            next_pc = static_cast<std::uint32_t>(instr.imm);
        break;

      case Opcode::CALL: {
        // Push the return pc onto the stack (4-byte slots).
        r[SP] -= 4;
        Instruction st_ret{Opcode::STI, SP, 0, 0, 4, 0,
                           static_cast<std::int64_t>(ctx.pc + 1)};
        auto done = doStore(ctx, st_ret, now);
        if (!done) {
            r[SP] += 4;     // undo; fault handler retries CALL
            return MAX_TICK;
        }
        next = *done;
        next_pc = static_cast<std::uint32_t>(instr.imm);
        break;
      }

      case Opcode::RET: {
        Instruction ld_ret{Opcode::LD, R6, SP, 0, 4, 0, 0};
        // Read the return address functionally; charge load timing.
        Translation t = ctx.space->translate(r[SP], false);
        if (!t.ok()) {
            takeFault(ctx, t.fault, r[SP], false, now);
            return MAX_TICK;
        }
        (void)ld_ret;
        std::uint64_t ret_pc = _bus.functionalRead(t.paddr, 4);
        next = _cache.load(t.paddr, 4, t.policy, now);
        r[SP] += 4;
        next_pc = static_cast<std::uint32_t>(ret_pc);
        break;
      }

      case Opcode::PUSH: {
        r[SP] -= 4;
        Instruction st{Opcode::ST, SP, instr.rs1, 0, 4, 0, 0};
        auto done = doStore(ctx, st, now);
        if (!done) {
            r[SP] += 4;
            return MAX_TICK;
        }
        next = *done;
        break;
      }

      case Opcode::POP: {
        Translation t = ctx.space->translate(r[SP], false);
        if (!t.ok()) {
            takeFault(ctx, t.fault, r[SP], false, now);
            return MAX_TICK;
        }
        r[instr.rd] = _bus.functionalRead(t.paddr, 4);
        next = _cache.load(t.paddr, 4, t.policy, now);
        r[SP] += 4;
        break;
      }

      case Opcode::CMPXCHG: {
        auto done = doCmpxchg(ctx, instr, now);
        if (!done)
            return MAX_TICK;
        next = *done;
        break;
      }

      case Opcode::SYSCALL: {
        ++_instructions;
        ctx.totalInstrs++;
        ctx.regionInstrs[ctx.currentRegion]++;
        ctx.syscalls++;
        ctx.pc = next_pc;
        SHRIMP_ASSERT(_trapHandler, "SYSCALL with no trap handler");
        Tick entered = now + cyclesToTicks(_params.trapEntryCycles);
        auto resume = _trapHandler->syscall(
            ctx, static_cast<std::uint64_t>(instr.imm), entered);
        if (!resume)
            return MAX_TICK;
        return *resume + cyclesToTicks(_params.trapExitCycles);
      }
    }

    if (counted) {
        ++_instructions;
        ctx.totalInstrs++;
        ctx.regionInstrs[ctx.currentRegion]++;
    }
    ctx.pc = next_pc;
    return next;
}

std::optional<Tick>
Cpu::doLoad(ExecContext &ctx, const Instruction &instr, Tick now)
{
    Addr vaddr = ctx.regs[instr.rs1] +
                 static_cast<std::uint64_t>(instr.imm);
    Translation t = ctx.space->translate(vaddr, false);
    if (!t.ok()) {
        takeFault(ctx, t.fault, vaddr, false, now);
        return std::nullopt;
    }
    ctx.regs[instr.rd] = _bus.functionalRead(t.paddr, instr.size);
    return _cache.load(t.paddr, instr.size, t.policy, now);
}

std::optional<Tick>
Cpu::doStore(ExecContext &ctx, const Instruction &instr, Tick now)
{
    // ST: base in rd, value in rs1. STI: base in rd, value in imm2.
    Addr vaddr = ctx.regs[instr.rd] +
                 static_cast<std::uint64_t>(instr.imm);
    Translation t = ctx.space->translate(vaddr, true);
    if (!t.ok()) {
        takeFault(ctx, t.fault, vaddr, true, now);
        return std::nullopt;
    }
    std::uint64_t value = instr.op == Opcode::STI
                              ? static_cast<std::uint64_t>(instr.imm2)
                              : ctx.regs[instr.rs1];
    return _cache.store(t.paddr, &value, instr.size, t.policy, now);
}

std::optional<Tick>
Cpu::doCmpxchg(ExecContext &ctx, const Instruction &instr, Tick now)
{
    Addr vaddr = ctx.regs[instr.rd] +
                 static_cast<std::uint64_t>(instr.imm);
    Translation t = ctx.space->translate(vaddr, true);
    if (!t.ok()) {
        takeFault(ctx, t.fault, vaddr, true, now);
        return std::nullopt;
    }

    // One atomic bus tenure for read + (conditional) write.
    ++_lockedOps;
    XpressBus::Grant grant = _cache.lockedAccess(t.paddr, instr.size, now);
    std::uint64_t current = _bus.functionalRead(t.paddr, instr.size);
    if (current == ctx.regs[R0]) {
        std::uint64_t value = ctx.regs[instr.rs1];
        _bus.functionalWrite(t.paddr, &value, instr.size,
                             BusMaster::CPU);
        ctx.zf = true;
    } else {
        ctx.regs[R0] = current;
        ctx.zf = false;
    }
    return grant.end + clockPeriod();
}

void
Cpu::takeFault(ExecContext &ctx, FaultKind kind, Addr vaddr, bool write,
               Tick now)
{
    ++_faults;
    ctx.faults++;
    SHRIMP_ASSERT(_trapHandler, "memory fault with no trap handler: va=",
                  vaddr, " write=", write);
    Tick entered = now + cyclesToTicks(_params.trapEntryCycles);
    auto resume = _trapHandler->fault(ctx, kind, vaddr, write, entered);
    if (resume)
        resumeAt(*resume + cyclesToTicks(_params.trapExitCycles));
}

} // namespace shrimp
