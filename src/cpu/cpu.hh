/**
 * @file
 * Cpu: an in-order processor executing the mini-ISA against the node's
 * memory hierarchy. One instruction per event; instruction effects are
 * functional-immediate while timing (cache, posted write buffer, bus
 * occupancy, locked-operation serialization) is modeled exactly where
 * the paper's mechanisms depend on it.
 *
 * The kernel hooks in through TrapHandler (syscalls, faults, halt) and
 * postInterrupt() (device interrupts run between instructions). A
 * context switch is just the kernel swapping the ExecContext pointer.
 */

#ifndef SHRIMP_CPU_CPU_HH
#define SHRIMP_CPU_CPU_HH

#include <deque>
#include <functional>
#include <optional>

#include "cpu/exec_context.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "mem/xpress_bus.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace shrimp
{

class Cpu;

/** The kernel's view of CPU traps. */
class TrapHandler
{
  public:
    virtual ~TrapHandler() = default;

    /**
     * A SYSCALL instruction trapped. pc has been advanced past it.
     *
     * @return the tick at which the CPU should continue executing the
     *         (possibly switched) current context, or nullopt if the
     *         kernel suspended execution and will call Cpu::resumeAt()
     *         itself later.
     */
    virtual std::optional<Tick> syscall(ExecContext &ctx,
                                        std::uint64_t num, Tick now) = 0;

    /**
     * A memory access faulted. pc still points at the faulting
     * instruction, so returning a tick retries it (e.g. after the
     * kernel re-established an invalidated mapping, Section 4.4).
     */
    virtual std::optional<Tick> fault(ExecContext &ctx, FaultKind kind,
                                      Addr vaddr, bool write,
                                      Tick now) = 0;

    /** The context executed HALT. */
    virtual void halted(ExecContext &ctx, Tick now) = 0;
};

/**
 * An interrupt handler body: runs on the CPU between instructions at
 * its delivery tick; returns the tick at which the CPU is free again.
 */
using InterruptHandler = std::function<Tick(Tick now)>;

/** In-order mini-ISA processor. */
class Cpu : public ClockedObject
{
  public:
    struct Params
    {
        std::uint64_t freqHz = 60'000'000;
        unsigned trapEntryCycles = 60;  //!< user->kernel crossing
        unsigned trapExitCycles = 40;   //!< kernel->user crossing
    };

    Cpu(EventQueue &eq, std::string name, const Params &params,
        Cache &cache, XpressBus &bus, MainMemory &mem);

    void setTrapHandler(TrapHandler *handler) { _trapHandler = handler; }

    /**
     * Install @p ctx as the running context (null idles the CPU).
     * Does not schedule execution; call resumeAt().
     */
    void setContext(ExecContext *ctx) { _context = ctx; }
    ExecContext *context() const { return _context; }

    /** Schedule instruction execution to (re)start at @p when. */
    void resumeAt(Tick when);

    /** Cancel any scheduled execution (kernel suspended the CPU). */
    void suspend();

    /** True if an execution event is pending. */
    bool running() const { return _execEvent.scheduled(); }

    /**
     * Queue an interrupt. Handlers run on the CPU at the next
     * instruction boundary (immediately if the CPU is idle).
     */
    void postInterrupt(InterruptHandler handler);

    /**
     * Charge kernel work: @p instructions of kernel code on behalf of
     * @p ctx (may be null for pure interrupt work).
     *
     * @return the busy time in ticks.
     */
    Tick chargeKernel(ExecContext *ctx, std::uint64_t instructions);

    const Params &params() const { return _params; }
    Cache &cache() { return _cache; }

    std::uint64_t instructionsExecuted() const
    {
        return _instructions.value();
    }
    std::uint64_t interruptsTaken() const { return _interrupts.value(); }

    /** Locked (CMPXCHG) bus operations executed -- each one costs an
     *  exclusive bus tenure, which DMA backoff strategies minimize. */
    std::uint64_t lockedOps() const { return _lockedOps.value(); }
    stats::Group &statGroup() { return _stats; }

  private:
    void executeNext();

    /** Execute one instruction; returns tick of next issue slot. */
    Tick executeOne(ExecContext &ctx, const Instruction &instr, Tick now);

    /** Memory helpers; return completion tick or nullopt on fault. */
    std::optional<Tick> doLoad(ExecContext &ctx, const Instruction &instr,
                               Tick now);
    std::optional<Tick> doStore(ExecContext &ctx,
                                const Instruction &instr, Tick now);
    std::optional<Tick> doCmpxchg(ExecContext &ctx,
                                  const Instruction &instr, Tick now);

    /** Route a fault to the kernel; reschedules or suspends. */
    void takeFault(ExecContext &ctx, FaultKind kind, Addr vaddr,
                   bool write, Tick now);

    Params _params;
    Cache &_cache;
    XpressBus &_bus;
    MainMemory &_mem;
    TrapHandler *_trapHandler = nullptr;
    ExecContext *_context = nullptr;
    std::deque<InterruptHandler> _pendingInterrupts;
    EventFunctionWrapper _execEvent;

    stats::Group _stats;
    stats::Counter _instructions{"instructions",
                                 "user instructions executed"};
    stats::Counter _kernelInstructions{"kernelInstructions",
                                       "kernel instructions charged"};
    stats::Counter _interrupts{"interrupts", "interrupts taken"};
    stats::Counter _faults{"faults", "memory faults taken"};
    stats::Counter _lockedOps{"lockedOps",
                              "locked bus operations (CMPXCHG)"};
};

} // namespace shrimp

#endif // SHRIMP_CPU_CPU_HH
