/**
 * @file
 * ExecContext: the architectural state of one software process --
 * registers, flags, pc, its program, its address space -- plus the
 * instruction-count instrumentation used to reproduce the paper's
 * Table 1 (software overhead measured in instructions).
 */

#ifndef SHRIMP_CPU_EXEC_CONTEXT_HH
#define SHRIMP_CPU_EXEC_CONTEXT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "cpu/program.hh"
#include "sim/types.hh"
#include "vm/address_space.hh"

namespace shrimp
{

/**
 * Measurement regions. MARK instructions switch the active region;
 * every subsequently executed instruction is attributed to it. The
 * Table 1 harness uses SEND/RECV for fast-path overhead and DATA for
 * the per-byte costs the paper explicitly excludes.
 */
namespace region
{
constexpr std::uint8_t NONE = 0;    //!< untracked (setup, loop control)
constexpr std::uint8_t SEND = 1;    //!< sender-side overhead
constexpr std::uint8_t RECV = 2;    //!< receiver-side overhead
constexpr std::uint8_t DATA = 3;    //!< per-byte data movement
constexpr std::uint8_t APP = 4;     //!< application compute
constexpr std::uint8_t NUM = 16;
} // namespace region

/** Architectural and instrumentation state of one process. */
struct ExecContext
{
    std::string name;
    Pid pid = 0;

    std::array<std::uint64_t, NUM_REGS> regs{};
    bool zf = false;            //!< zero/equal flag
    bool lf = false;            //!< less-than (unsigned) flag
    std::uint32_t pc = 0;
    bool halted = false;

    std::shared_ptr<const Program> program;
    AddressSpace *space = nullptr;

    // ---- instrumentation ----
    std::uint8_t currentRegion = region::NONE;
    std::array<std::uint64_t, region::NUM> regionInstrs{};
    std::uint64_t totalInstrs = 0;
    std::uint64_t kernelInstrs = 0;     //!< charged by kernel services
    std::uint64_t faults = 0;
    std::uint64_t syscalls = 0;

    /** Reset instrumentation (not architectural state). */
    void
    resetCounters()
    {
        regionInstrs.fill(0);
        totalInstrs = 0;
        kernelInstrs = 0;
        faults = 0;
        syscalls = 0;
    }

    std::uint64_t
    regionCount(std::uint8_t r) const
    {
        return regionInstrs[r];
    }
};

} // namespace shrimp

#endif // SHRIMP_CPU_EXEC_CONTEXT_HH
