/**
 * @file
 * Program: an assembled instruction sequence, built through an
 * assembler-style fluent API with named labels.
 *
 * The message-passing library (src/msg) consists of macro emitters
 * that append code to a Program, mirroring how the paper's primitives
 * were "embedded in a macro or a run-time library routine".
 */

#ifndef SHRIMP_CPU_PROGRAM_HH
#define SHRIMP_CPU_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cpu/isa.hh"

namespace shrimp
{

/** An assembled program. Append instructions, then finalize(). */
class Program
{
  public:
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    // ---- emitters; each returns the emitted instruction's index ----

    int nop() { return emit({Opcode::NOP}); }
    int halt() { return emit({Opcode::HALT}); }

    int
    movi(Reg rd, std::uint64_t imm)
    {
        return emit({Opcode::MOVI, rd, 0, 0, 4,
                     static_cast<std::int64_t>(imm)});
    }

    int mov(Reg rd, Reg rs) { return emit({Opcode::MOV, rd, rs}); }
    int add(Reg rd, Reg rs) { return emit({Opcode::ADD, rd, rs}); }
    int sub(Reg rd, Reg rs) { return emit({Opcode::SUB, rd, rs}); }
    int and_(Reg rd, Reg rs) { return emit({Opcode::AND_, rd, rs}); }
    int or_(Reg rd, Reg rs) { return emit({Opcode::OR_, rd, rs}); }
    int xor_(Reg rd, Reg rs) { return emit({Opcode::XOR_, rd, rs}); }
    int mul(Reg rd, Reg rs) { return emit({Opcode::MUL, rd, rs}); }

    int
    addi(Reg rd, std::int64_t imm)
    {
        return emit({Opcode::ADDI, rd, 0, 0, 4, imm});
    }

    int
    subi(Reg rd, std::int64_t imm)
    {
        return emit({Opcode::SUBI, rd, 0, 0, 4, imm});
    }

    int
    andi(Reg rd, std::int64_t imm)
    {
        return emit({Opcode::ANDI, rd, 0, 0, 4, imm});
    }

    int
    shli(Reg rd, unsigned amount)
    {
        return emit({Opcode::SHLI, rd, 0, 0, 4,
                     static_cast<std::int64_t>(amount)});
    }

    int
    shri(Reg rd, unsigned amount)
    {
        return emit({Opcode::SHRI, rd, 0, 0, 4,
                     static_cast<std::int64_t>(amount)});
    }

    int
    ld(Reg rd, Reg base, std::int64_t off, unsigned size = 4)
    {
        return emit({Opcode::LD, rd, base, 0,
                     static_cast<std::uint8_t>(size), off});
    }

    int
    st(Reg base, std::int64_t off, Reg rs, unsigned size = 4)
    {
        return emit({Opcode::ST, base, rs, 0,
                     static_cast<std::uint8_t>(size), off});
    }

    int
    sti(Reg base, std::int64_t off, std::int64_t value, unsigned size = 4)
    {
        return emit({Opcode::STI, base, 0, 0,
                     static_cast<std::uint8_t>(size), off, value});
    }

    int cmp(Reg a, Reg b) { return emit({Opcode::CMP, 0, a, b}); }

    int
    cmpi(Reg a, std::int64_t imm)
    {
        return emit({Opcode::CMPI, 0, a, 0, 4, imm});
    }

    int jmp(const std::string &l) { return branch(Opcode::JMP, l); }
    int jz(const std::string &l) { return branch(Opcode::JZ, l); }
    int jnz(const std::string &l) { return branch(Opcode::JNZ, l); }
    int jl(const std::string &l) { return branch(Opcode::JL, l); }
    int jge(const std::string &l) { return branch(Opcode::JGE, l); }
    int call(const std::string &l) { return branch(Opcode::CALL, l); }

    int ret() { return emit({Opcode::RET}); }
    int push(Reg rs) { return emit({Opcode::PUSH, 0, rs}); }
    int pop(Reg rd) { return emit({Opcode::POP, rd}); }

    int
    cmpxchg(Reg base, std::int64_t off, Reg src, unsigned size = 4)
    {
        return emit({Opcode::CMPXCHG, base, src, 0,
                     static_cast<std::uint8_t>(size), off});
    }

    int
    syscall(std::uint64_t num)
    {
        return emit({Opcode::SYSCALL, 0, 0, 0, 4,
                     static_cast<std::int64_t>(num)});
    }

    int
    mark(std::uint8_t region)
    {
        return emit({Opcode::MARK, 0, 0, 0, 4, region});
    }

    /** Define @p name at the next emitted instruction. */
    void label(const std::string &name);

    /** Resolve all label references; the program becomes executable. */
    void finalize();

    bool finalized() const { return _finalized; }
    std::size_t size() const { return _instrs.size(); }
    const Instruction &at(std::uint32_t pc) const;

    /** Address of a label in a finalized program. */
    std::uint32_t labelAddress(const std::string &name) const;

  private:
    int emit(Instruction instr);
    int branch(Opcode op, const std::string &label);

    std::string _name;
    std::vector<Instruction> _instrs;
    std::map<std::string, std::uint32_t> _labels;
    std::vector<std::pair<std::uint32_t, std::string>> _fixups;
    bool _finalized = false;
};

} // namespace shrimp

#endif // SHRIMP_CPU_PROGRAM_HH
