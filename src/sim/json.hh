/**
 * @file
 * Minimal JSON support: string escaping for the writers (trace export,
 * stats dumps, bench artifacts) and a small DOM parser used by tests
 * and the artifact validator. No external dependencies; the subset is
 * full JSON minus \u surrogate pairs (escapes decode to '?').
 */

#ifndef SHRIMP_SIM_JSON_HH
#define SHRIMP_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace shrimp
{
namespace json
{

/** Escape @p s for embedding inside a JSON string literal. */
std::string escape(const std::string &s);

/** A parsed JSON value (object keys keep their input order). */
struct Value
{
    enum class Type
    {
        NUL,
        BOOLEAN,
        NUMBER,
        STRING,
        ARRAY,
        OBJECT,
    };

    Type type = Type::NUL;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;

    bool isNull() const { return type == Type::NUL; }
    bool isBool() const { return type == Type::BOOLEAN; }
    bool isNumber() const { return type == Type::NUMBER; }
    bool isString() const { return type == Type::STRING; }
    bool isArray() const { return type == Type::ARRAY; }
    bool isObject() const { return type == Type::OBJECT; }

    /** Member lookup on an object; nullptr if absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document.
 *
 * @throws std::runtime_error on malformed input (with an offset).
 */
Value parse(const std::string &text);

} // namespace json
} // namespace shrimp

#endif // SHRIMP_SIM_JSON_HH
