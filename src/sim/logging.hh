/**
 * @file
 * Error reporting and debug tracing.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (aborts), fatal() for user/configuration errors (exits), warn() and
 * inform() for status. Debug tracing is gated on named flags so tests
 * and tools can enable per-subsystem traces.
 */

#ifndef SHRIMP_SIM_LOGGING_HH
#define SHRIMP_SIM_LOGGING_HH

#include <sstream>
#include <string>

#include "sim/types.hh"

namespace shrimp
{

namespace logging_detail
{

/** Fold arbitrary arguments into a string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Enable a named debug-trace flag (e.g. "Nic", "Router"). */
void setDebugFlag(const std::string &flag);

/** Disable a named debug-trace flag. */
void clearDebugFlag(const std::string &flag);

/** Query whether a debug-trace flag is enabled. */
bool debugFlagEnabled(const std::string &flag);

/** Emit one debug-trace line (already gated by the caller). */
void debugTraceLine(const std::string &flag, Tick when,
                    const std::string &who, const std::string &msg);

} // namespace shrimp

/** Internal simulator invariant violated: print and abort. */
#define SHRIMP_PANIC(...)                                                   \
    ::shrimp::logging_detail::panicImpl(                                    \
        __FILE__, __LINE__, ::shrimp::logging_detail::format(__VA_ARGS__))

/** Unrecoverable user/configuration error: print and exit(1). */
#define SHRIMP_FATAL(...)                                                   \
    ::shrimp::logging_detail::fatalImpl(                                    \
        __FILE__, __LINE__, ::shrimp::logging_detail::format(__VA_ARGS__))

/** Something suspicious but survivable. */
#define SHRIMP_WARN(...)                                                    \
    ::shrimp::logging_detail::warnImpl(                                     \
        ::shrimp::logging_detail::format(__VA_ARGS__))

/** Normal operational status message. */
#define SHRIMP_INFORM(...)                                                  \
    ::shrimp::logging_detail::informImpl(                                   \
        ::shrimp::logging_detail::format(__VA_ARGS__))

/**
 * Debug trace gated on a named flag. `when` is the current tick and
 * `who` the emitting component's name.
 */
#define SHRIMP_DTRACE(flag, when, who, ...)                                 \
    do {                                                                    \
        if (::shrimp::debugFlagEnabled(flag)) {                             \
            ::shrimp::debugTraceLine(                                       \
                flag, when, who,                                            \
                ::shrimp::logging_detail::format(__VA_ARGS__));             \
        }                                                                   \
    } while (0)

/** Assert an internal invariant with a formatted message. */
#define SHRIMP_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SHRIMP_PANIC("assertion failed: " #cond " ", __VA_ARGS__);      \
        }                                                                   \
    } while (0)

#endif // SHRIMP_SIM_LOGGING_HH
