#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <unordered_set>

namespace shrimp
{

namespace
{

std::unordered_set<std::string> &
debugFlags()
{
    static std::unordered_set<std::string> flags;
    return flags;
}

} // namespace

namespace logging_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    // Throwing (rather than abort()) lets death-style unit tests observe
    // panics; nothing in the simulator catches this type.
    throw std::logic_error("shrimp panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    throw std::runtime_error("shrimp fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace logging_detail

void
setDebugFlag(const std::string &flag)
{
    debugFlags().insert(flag);
}

void
clearDebugFlag(const std::string &flag)
{
    debugFlags().erase(flag);
}

bool
debugFlagEnabled(const std::string &flag)
{
    return debugFlags().count(flag) != 0;
}

void
debugTraceLine(const std::string &flag, Tick when, const std::string &who,
               const std::string &msg)
{
    std::cout << when << ": " << who << " [" << flag << "] " << msg
              << std::endl;
}

} // namespace shrimp
