/**
 * @file
 * SimObject: named base class for every modeled hardware/software
 * component, and ClockedObject for components with their own clock.
 */

#ifndef SHRIMP_SIM_SIM_OBJECT_HH
#define SHRIMP_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace shrimp
{

/**
 * Base class for simulated components. Carries a hierarchical dotted
 * name (e.g. "node3.nic.outFifo") and a reference to the global event
 * queue.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &eventQueue() const { return _eq; }
    Tick curTick() const { return _eq.curTick(); }

  protected:
    void
    schedule(Event &ev, Tick when, int priority = EventPriority::DEFAULT)
    {
        _eq.schedule(&ev, when, priority);
    }

    void
    reschedule(Event &ev, Tick when,
               int priority = EventPriority::DEFAULT)
    {
        _eq.reschedule(&ev, when, priority);
    }

    void deschedule(Event &ev) { _eq.deschedule(&ev); }

  private:
    EventQueue &_eq;
    std::string _name;
};

/**
 * A SimObject driven by a clock. Provides edge-alignment helpers so all
 * activity of the component happens on its own clock edges.
 */
class ClockedObject : public SimObject
{
  public:
    ClockedObject(EventQueue &eq, std::string name, std::uint64_t freq_hz)
        : SimObject(eq, std::move(name)),
          _period(freqToPeriod(freq_hz))
    {}

    /** Clock period in ticks. */
    Tick clockPeriod() const { return _period; }

    /** Duration of @p cycles clock cycles in ticks. */
    Tick cyclesToTicks(std::uint64_t cycles) const
    {
        return cycles * _period;
    }

    /**
     * The next clock edge at or after the current tick, plus @p cycles
     * additional cycles.
     */
    Tick
    clockEdge(std::uint64_t cycles = 0) const
    {
        Tick now = curTick();
        Tick aligned = ((now + _period - 1) / _period) * _period;
        return aligned + cycles * _period;
    }

  private:
    Tick _period;
};

} // namespace shrimp

#endif // SHRIMP_SIM_SIM_OBJECT_HH
