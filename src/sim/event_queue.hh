/**
 * @file
 * Discrete-event simulation core: Event and EventQueue.
 *
 * Every node, bus, router and NIC in the machine shares one global event
 * queue, so there is a single global notion of simulated time. Events at
 * the same tick are ordered by priority (lower value runs first), then by
 * insertion order, which makes simulations fully deterministic.
 */

#ifndef SHRIMP_SIM_EVENT_QUEUE_HH
#define SHRIMP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace shrimp
{

class EventQueue;

namespace trace
{
class Tracer;
} // namespace trace

/**
 * Base class for schedulable events. Components typically embed Event
 * subclasses (or EventFunctionWrapper) as members and reschedule them,
 * avoiding per-occurrence allocation.
 */
class Event
{
  public:
    virtual ~Event();

    /** Invoked by the event queue when the event's time arrives. */
    virtual void process() = 0;

    /** Human-readable description for traces. */
    virtual const char *description() const { return "generic event"; }

    /**
     * Whether the event queue should delete this event after it fires or
     * is descheduled. Used by one-shot heap-allocated events.
     */
    virtual bool autoDelete() const { return false; }

    bool scheduled() const { return _scheduled; }
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    int _priority = 0;
    std::uint64_t _stamp = 0;   //!< matches queue entry; bumped to cancel
    bool _scheduled = false;
    EventQueue *_queue = nullptr;   //!< queue holding us while scheduled
};

/**
 * An Event that invokes a bound std::function. The workhorse event type:
 * components declare members like
 * `EventFunctionWrapper drainEvent{[this]{ drain(); }, "drain"};`
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn, const char *desc)
        : _fn(std::move(fn)), _desc(desc)
    {}

    void process() override { _fn(); }
    const char *description() const override { return _desc; }

  private:
    std::function<void()> _fn;
    const char *_desc;
};

/** Scheduling priorities; lower runs first within a tick. */
struct EventPriority
{
    static constexpr int CLOCK = -10;    //!< clock-edge bookkeeping
    static constexpr int DEFAULT = 0;
    static constexpr int CPU = 10;       //!< CPU after devices at same tick
    static constexpr int STAT = 100;     //!< stat dumps after everything
};

/**
 * The global event queue. Deschedule is lazy: entries whose stamp no
 * longer matches the event's are skipped on pop.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * The structured tracer shared by every component on this queue,
     * or nullptr when tracing is off (the common, zero-overhead case).
     * Instrumentation sites test the pointer before recording.
     */
    trace::Tracer *tracer() const { return _tracer; }
    void setTracer(trace::Tracer *t) { _tracer = t; }

    /** Schedule @p ev at absolute time @p when (>= curTick). */
    void schedule(Event *ev, Tick when,
                  int priority = EventPriority::DEFAULT);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Move an already (or not) scheduled event to a new time. */
    void reschedule(Event *ev, Tick when,
                    int priority = EventPriority::DEFAULT);

    /**
     * Schedule a one-shot callback; the wrapper event is heap-allocated
     * and deleted after it fires.
     */
    void scheduleFn(std::function<void()> fn, Tick when,
                    int priority = EventPriority::DEFAULT,
                    const char *desc = "one-shot");

    /** True if no live events remain. */
    bool empty() const { return _liveCount == 0; }

    /** Number of live (scheduled, not cancelled) events. */
    std::size_t size() const { return _liveCount; }

    /** Process a single event. Returns false if the queue was empty. */
    bool runOne();

    /**
     * Run until the queue empties or @p max_events have been processed.
     * Returns the number of events processed; hitting the cap usually
     * indicates a runaway simulation in a test.
     */
    std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0});

    /**
     * Process all events scheduled at or before @p when, then advance
     * the clock to @p when even if the queue drained earlier.
     */
    void runUntil(Tick when);

    /** Total events processed since construction. */
    std::uint64_t numProcessed() const { return _numProcessed; }

  private:
    struct QueueEntry
    {
        Tick when;
        int priority;
        std::uint64_t seq;      //!< global insertion order (FIFO tiebreak)
        std::uint64_t stamp;    //!< must match ev->_stamp to be live
        Event *ev;
    };

    struct EntryCompare
    {
        bool
        operator()(const QueueEntry &a, const QueueEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    friend class Event;

    /** Pop dead (cancelled/rescheduled) entries off the heap top. */
    void skipDead();

    /** An embedded event died while scheduled (component teardown). */
    void noteDead() { --_liveCount; }

    /** Remove @p ev from the live one-shot registry. */
    void forgetOneShot(Event *ev);

    std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryCompare>
        _queue;
    std::vector<Event *> _liveOneShots;  //!< auto-delete events pending
    trace::Tracer *_tracer = nullptr;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _nextStamp = 1;
    std::uint64_t _numProcessed = 0;
    std::size_t _liveCount = 0;
};

} // namespace shrimp

#endif // SHRIMP_SIM_EVENT_QUEUE_HH
