#include "sim/trace.hh"

#include <cstdio>
#include <ctime>
#include <fstream>

#include "sim/json.hh"

namespace shrimp
{
namespace trace
{

int
Tracer::tidFor(const std::string &who)
{
    auto it = _tidOf.find(who);
    if (it != _tidOf.end())
        return it->second;
    int tid = static_cast<int>(_tidName.size());
    _tidOf.emplace(who, tid);
    _tidName.push_back(who);
    return tid;
}

void
Tracer::record(char ph, Tick ts, Tick dur, std::uint64_t id,
               const std::string &who, const char *cat,
               const char *name, std::vector<Arg> &&args)
{
    _events.push_back(
        Event{ph, ts, dur, id, tidFor(who), cat, name, std::move(args)});
}

namespace
{

/** Ticks (ps) as fractional microseconds, full precision. */
void
putTicksUs(std::ostream &os, Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1'000'000),
                  static_cast<unsigned long long>(t % 1'000'000));
    os << buf;
}

void
putArgs(std::ostream &os, const std::vector<Arg> &args)
{
    os << "\"args\":{";
    bool first = true;
    for (const Arg &a : args) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << json::escape(a.key) << "\":";
        if (a.numeric)
            os << a.value;
        else
            os << "\"" << json::escape(a.value) << "\"";
    }
    os << "}";
}

} // namespace

void
Tracer::exportJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;

    // Metadata: name the process and each component "thread".
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"shrimp\"}}";
    first = false;
    for (std::size_t tid = 0; tid < _tidName.size(); ++tid) {
        os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << json::escape(_tidName[tid]) << "\"}}";
    }

    for (const Event &e : _events) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"" << e.ph << "\",\"pid\":0,\"tid\":" << e.tid
           << ",\"ts\":";
        putTicksUs(os, e.ts);
        os << ",\"cat\":\"" << json::escape(e.cat) << "\",\"name\":\""
           << json::escape(e.name) << "\"";
        if (e.ph == 'X') {
            os << ",\"dur\":";
            putTicksUs(os, e.dur);
        }
        if (e.ph == 'b' || e.ph == 'n' || e.ph == 'e') {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(e.id));
            os << ",\"id\":\"" << buf << "\"";
        }
        if (e.ph == 'i')
            os << ",\"s\":\"t\"";   // instant scope: thread
        if (!e.args.empty()) {
            os << ",";
            putArgs(os, e.args);
        }
        os << "}";
    }
    os << "\n]";

    // Capture wall-time stamp, so a directory of trace files can be
    // told apart. This is the one sanctioned wall-clock read in src/
    // (shrimp_lint allowlist): it is viewer metadata appended after
    // the event stream and can never feed back into simulation state
    // or the stats fingerprints.
    std::time_t now = std::time(nullptr);
    char stamp[32] = "unknown";
    if (std::tm *utc = std::gmtime(&now))
        std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", utc);
    os << ",\"otherData\":{\"capturedAt\":\"" << stamp << "\"}";
    os << "}\n";
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    exportJson(os);
    return static_cast<bool>(os);
}

} // namespace trace
} // namespace shrimp
