#include "sim/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace shrimp
{
namespace json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

const Value *
Value::find(const std::string &key) const
{
    if (type != Type::OBJECT)
        return nullptr;
    for (const auto &kv : obj) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    Value
    run()
    {
        Value v = parseValue();
        skipWs();
        if (_pos != _text.size())
            fail("trailing data");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(_pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++_pos;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (_text.compare(_pos, n, word) != 0)
            return false;
        _pos += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u':
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                _pos += 4;
                out += '?';     // codepoints flattened; fine for tests
                break;
              default:
                fail("bad escape character");
            }
        }
    }

    Value
    parseValue()
    {
        skipWs();
        char c = peek();
        Value v;
        if (c == '{') {
            ++_pos;
            v.type = Value::Type::OBJECT;
            skipWs();
            if (peek() == '}') {
                ++_pos;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.obj.emplace_back(std::move(key), parseValue());
                skipWs();
                if (peek() == ',') {
                    ++_pos;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++_pos;
            v.type = Value::Type::ARRAY;
            skipWs();
            if (peek() == ']') {
                ++_pos;
                return v;
            }
            while (true) {
                v.arr.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    ++_pos;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.type = Value::Type::STRING;
            v.str = parseString();
            return v;
        }
        if (consumeWord("true")) {
            v.type = Value::Type::BOOLEAN;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            v.type = Value::Type::BOOLEAN;
            v.boolean = false;
            return v;
        }
        if (consumeWord("null"))
            return v;

        // Number: delegate validation to strtod on a bounded slice.
        std::size_t start = _pos;
        if (c == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-')) {
            ++_pos;
        }
        if (_pos == start)
            fail("unexpected character");
        std::string num = _text.substr(start, _pos - start);
        char *end = nullptr;
        v.type = Value::Type::NUMBER;
        v.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            fail("malformed number");
        return v;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace json
} // namespace shrimp
