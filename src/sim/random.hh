/**
 * @file
 * Deterministic pseudo-random number generation for workload generators
 * and property tests. A seeded xoshiro256** generator; every simulation
 * that needs randomness takes an explicit Rng so runs are reproducible.
 */

#ifndef SHRIMP_SIM_RANDOM_HH
#define SHRIMP_SIM_RANDOM_HH

#include <cstdint>

namespace shrimp
{

/** xoshiro256** by Blackman & Vigna (public domain reference algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        // SplitMix64 seeding to decorrelate nearby seeds.
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Debiased multiply-shift (Lemire).
        for (;;) {
            std::uint64_t x = next();
            __uint128_t m = static_cast<__uint128_t>(x) * bound;
            std::uint64_t lo = static_cast<std::uint64_t>(m);
            if (lo >= bound || lo >= (-bound) % bound)
                return static_cast<std::uint64_t>(m >> 64);
        }
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace shrimp

#endif // SHRIMP_SIM_RANDOM_HH
