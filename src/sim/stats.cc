#include "sim/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

#include "sim/json.hh"

namespace shrimp
{
namespace stats
{

namespace
{

void
printLine(std::ostream &os, const std::string &prefix,
          const std::string &name, double value, const std::string &desc)
{
    os << std::left << std::setw(44) << (prefix + name) << " "
       << std::right << std::setw(16) << value << "  # " << desc << "\n";
}

/** Start one member of the enclosing JSON object: `"key": `. */
void
jsonKey(std::ostream &os, bool &first, const std::string &key)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "  \"" << json::escape(key) << "\": ";
}

/** A double as a JSON number (JSON has no inf/nan; clamp to 0). */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), static_cast<double>(_value), desc());
}

void
Counter::dumpJson(std::ostream &os, const std::string &prefix,
                  bool &first) const
{
    jsonKey(os, first, prefix + name());
    os << _value;
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), _value, desc());
}

void
Scalar::dumpJson(std::ostream &os, const std::string &prefix,
                 bool &first) const
{
    jsonKey(os, first, prefix + name());
    jsonNumber(os, _value);
}

void
Peak::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), _value, desc());
}

void
Peak::dumpJson(std::ostream &os, const std::string &prefix,
               bool &first) const
{
    jsonKey(os, first, prefix + name());
    jsonNumber(os, _value);
}

double
Distribution::stddev() const
{
    if (_count < 2)
        return 0.0;
    // Population variance; _m2 is non-negative by construction, so no
    // cancellation guard is needed (the sum-of-squares formula needed
    // one, and still lost every significant digit for mean >> stddev).
    return std::sqrt(_m2 / static_cast<double>(_count));
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".count",
              static_cast<double>(_count), desc());
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".min", minValue(), desc());
    printLine(os, prefix, name() + ".max", maxValue(), desc());
    printLine(os, prefix, name() + ".stddev", stddev(), desc());
}

void
Distribution::dumpJson(std::ostream &os, const std::string &prefix,
                       bool &first) const
{
    jsonKey(os, first, prefix + name());
    os << "{\"count\": " << _count << ", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"min\": ";
    jsonNumber(os, minValue());
    os << ", \"max\": ";
    jsonNumber(os, maxValue());
    os << ", \"stddev\": ";
    jsonNumber(os, stddev());
    os << "}";
}

void
Distribution::reset()
{
    _count = 0;
    _mean = 0.0;
    _m2 = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".count",
              static_cast<double>(_count), desc());
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".min",
              static_cast<double>(minValue()), desc());
    printLine(os, prefix, name() + ".max",
              static_cast<double>(maxValue()), desc());
    for (unsigned b = 0; b < _buckets.size(); ++b) {
        if (!_buckets[b])
            continue;
        printLine(os, prefix,
                  name() + ".ge_" + std::to_string(bucketLow(b)),
                  static_cast<double>(_buckets[b]),
                  "samples in log2 bucket");
    }
}

void
Histogram::dumpJson(std::ostream &os, const std::string &prefix,
                    bool &first) const
{
    jsonKey(os, first, prefix + name());
    os << "{\"count\": " << _count << ", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"min\": " << minValue() << ", \"max\": " << maxValue()
       << ", \"buckets\": [";
    bool bfirst = true;
    for (unsigned b = 0; b < _buckets.size(); ++b) {
        if (!_buckets[b])
            continue;
        if (!bfirst)
            os << ", ";
        bfirst = false;
        os << "{\"ge\": " << bucketLow(b) << ", \"count\": "
           << _buckets[b] << "}";
    }
    os << "]}";
}

void
Histogram::reset()
{
    _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<std::uint64_t>::max();
    _max = 0;
    _buckets.clear();
}

Group::Group(std::string name, Group *parent)
    : _name(std::move(name))
{
    if (parent)
        parent->_children.push_back(this);
}

void
Group::dump(std::ostream &os) const
{
    dumpWithPrefix(os, "");
}

void
Group::dumpWithPrefix(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const Stat *s : _stats)
        s->dump(os, path);
    for (const Group *g : _children)
        g->dumpWithPrefix(os, path);
}

void
Group::dumpJson(std::ostream &os) const
{
    bool first = true;
    os << "{\n";
    dumpJsonInto(os, first);
    os << "\n}\n";
}

void
Group::dumpJsonInto(std::ostream &os, bool &first) const
{
    dumpJsonWithPrefix(os, "", first);
}

void
Group::dumpJsonWithPrefix(std::ostream &os, const std::string &prefix,
                          bool &first) const
{
    std::string path = prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const Stat *s : _stats)
        s->dumpJson(os, path, first);
    for (const Group *g : _children)
        g->dumpJsonWithPrefix(os, path, first);
}

void
Group::resetAll()
{
    for (Stat *s : _stats)
        s->reset();
    for (Group *g : _children)
        g->resetAll();
}

} // namespace stats
} // namespace shrimp
