#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

namespace shrimp
{
namespace stats
{

namespace
{

void
printLine(std::ostream &os, const std::string &prefix,
          const std::string &name, double value, const std::string &desc)
{
    os << std::left << std::setw(44) << (prefix + name) << " "
       << std::right << std::setw(16) << value << "  # " << desc << "\n";
}

} // namespace

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), static_cast<double>(_value), desc());
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), _value, desc());
}

double
Distribution::stddev() const
{
    if (_count < 2)
        return 0.0;
    double m = mean();
    double var = _sumSq / _count - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".count",
              static_cast<double>(_count), desc());
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".min", minValue(), desc());
    printLine(os, prefix, name() + ".max", maxValue(), desc());
    printLine(os, prefix, name() + ".stddev", stddev(), desc());
}

void
Distribution::reset()
{
    _count = 0;
    _sum = 0.0;
    _sumSq = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

Group::Group(std::string name, Group *parent)
    : _name(std::move(name))
{
    if (parent)
        parent->_children.push_back(this);
}

void
Group::dump(std::ostream &os) const
{
    dumpWithPrefix(os, "");
}

void
Group::dumpWithPrefix(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const Stat *s : _stats)
        s->dump(os, path);
    for (const Group *g : _children)
        g->dumpWithPrefix(os, path);
}

void
Group::resetAll()
{
    for (Stat *s : _stats)
        s->reset();
    for (Group *g : _children)
        g->resetAll();
}

} // namespace stats
} // namespace shrimp
