/**
 * @file
 * Structured simulation tracing.
 *
 * A Tracer records timestamped events -- synchronous spans (begin/end
 * or complete), instants, and async "flow" spans keyed by an id that
 * travels with a packet -- and exports them as Chrome trace-event JSON
 * (the format Perfetto and chrome://tracing load directly).
 *
 * Overhead policy: tracing is off unless a Tracer is installed on the
 * event queue (SystemConfig::traceEnabled). Instrumentation sites pay
 * one pointer load + branch when tracing is off; the simulation's
 * timing is never affected either way, because recording only copies
 * data -- it schedules nothing and charges no simulated cost.
 *
 * Mapping to the trace-event format:
 *  - each distinct component path becomes one "thread" (tid) inside a
 *    single "process" (pid 0), named via metadata events;
 *  - ticks (1 ps) are exported as fractional microseconds, so one tick
 *    equals 1e-6 us and no precision is lost at %.6f;
 *  - flow spans use the async-nestable phases b/n/e with the packet's
 *    trace id, so a packet's whole lifecycle lines up in one track.
 */

#ifndef SHRIMP_SIM_TRACE_HH
#define SHRIMP_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace shrimp
{
namespace trace
{

/** One key/value argument attached to an event. */
struct Arg
{
    std::string key;
    std::string value;  //!< pre-rendered; quoted iff !numeric
    bool numeric = false;
};

inline Arg
arg(std::string key, std::uint64_t v)
{
    return Arg{std::move(key), std::to_string(v), true};
}

inline Arg
arg(std::string key, std::int64_t v)
{
    return Arg{std::move(key), std::to_string(v), true};
}

inline Arg
arg(std::string key, unsigned v)
{
    return arg(std::move(key), static_cast<std::uint64_t>(v));
}

inline Arg
arg(std::string key, std::string v)
{
    return Arg{std::move(key), std::move(v), false};
}

inline Arg
arg(std::string key, const char *v)
{
    return Arg{std::move(key), std::string(v), false};
}

/** Records events and exports Chrome trace-event JSON. */
class Tracer
{
  public:
    Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Fresh id for a flow (packet lifecycle); never returns 0. */
    std::uint64_t newFlowId() { return _nextFlow++; }

    /** Point event on @p who's track. */
    void
    instant(Tick when, const std::string &who, const char *cat,
            const char *name, std::vector<Arg> args = {})
    {
        record('i', when, 0, 0, who, cat, name, std::move(args));
    }

    /** Open a synchronous span on @p who's track (stack discipline). */
    void
    begin(Tick when, const std::string &who, const char *cat,
          const char *name, std::vector<Arg> args = {})
    {
        record('B', when, 0, 0, who, cat, name, std::move(args));
    }

    /** Close the innermost open span on @p who's track. */
    void
    end(Tick when, const std::string &who, const char *cat,
        const char *name, std::vector<Arg> args = {})
    {
        record('E', when, 0, 0, who, cat, name, std::move(args));
    }

    /** A span known only once finished (e.g. a scheduled completion). */
    void
    complete(Tick start, Tick finish, const std::string &who,
             const char *cat, const char *name,
             std::vector<Arg> args = {})
    {
        record('X', start, finish - start, 0, who, cat, name,
               std::move(args));
    }

    /** Open an async flow span keyed by @p id (a newFlowId() value). */
    void
    flowBegin(Tick when, const std::string &who, const char *cat,
              const char *name, std::uint64_t id,
              std::vector<Arg> args = {})
    {
        record('b', when, 0, id, who, cat, name, std::move(args));
    }

    /** Mark a stage of flow @p id. */
    void
    flowStep(Tick when, const std::string &who, const char *cat,
             const char *name, std::uint64_t id,
             std::vector<Arg> args = {})
    {
        record('n', when, 0, id, who, cat, name, std::move(args));
    }

    /** Close flow @p id. */
    void
    flowEnd(Tick when, const std::string &who, const char *cat,
            const char *name, std::uint64_t id,
            std::vector<Arg> args = {})
    {
        record('e', when, 0, id, who, cat, name, std::move(args));
    }

    std::size_t numEvents() const { return _events.size(); }

    /** Write the whole trace as Chrome trace-event JSON. */
    void exportJson(std::ostream &os) const;

    /** exportJson() to a file; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char ph;
        Tick ts;
        Tick dur;           //!< X events only
        std::uint64_t id;   //!< b/n/e events only
        int tid;
        const char *cat;
        const char *name;
        std::vector<Arg> args;
    };

    void record(char ph, Tick ts, Tick dur, std::uint64_t id,
                const std::string &who, const char *cat,
                const char *name, std::vector<Arg> &&args);

    int tidFor(const std::string &who);

    std::vector<Event> _events;
    std::unordered_map<std::string, int> _tidOf;
    std::vector<std::string> _tidName;
    std::uint64_t _nextFlow = 1;
};

} // namespace trace
} // namespace shrimp

#endif // SHRIMP_SIM_TRACE_HH
