#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace shrimp
{

Event::~Event()
{
    // Components are routinely destroyed with events still pending
    // (system teardown): invalidate our queue entry without touching
    // the heap. The queue must outlive all embedded events; in this
    // simulator the EventQueue is always the first member of the
    // top-level system and therefore destroyed last.
    if (_scheduled && _queue) {
        _stamp = 0;
        _scheduled = false;
        _queue->noteDead();
    }
}

EventQueue::~EventQueue()
{
    // Reclaim one-shot events that never fired. Embedded events have
    // either fired or cancelled themselves via ~Event(); their heap
    // entries may dangle, so the heap itself is not walked.
    for (Event *ev : _liveOneShots) {
        ev->_scheduled = false;     // bypass the dtor's queue access
        ev->_queue = nullptr;
        // The queue owns unfired one-shots (autoDelete() contract).
        // NOLINTNEXTLINE(shrimp-ownership-raw-new): queue-owned event
        delete ev;
    }
}

void
EventQueue::schedule(Event *ev, Tick when, int priority)
{
    SHRIMP_ASSERT(ev != nullptr, "null event");
    SHRIMP_ASSERT(!ev->_scheduled,
                  "double-schedule of '", ev->description(), "'");
    SHRIMP_ASSERT(when >= _curTick, "schedule in the past: ", when,
                  " < ", _curTick, " for '", ev->description(), "'");

    ev->_when = when;
    ev->_priority = priority;
    ev->_stamp = _nextStamp++;
    ev->_scheduled = true;
    ev->_queue = this;
    _queue.push(QueueEntry{when, priority, _nextSeq++, ev->_stamp, ev});
    ++_liveCount;
    if (ev->autoDelete())
        _liveOneShots.push_back(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    SHRIMP_ASSERT(ev != nullptr, "null event");
    SHRIMP_ASSERT(ev->_scheduled,
                  "deschedule of unscheduled '", ev->description(), "'");

    // Lazy removal: invalidate the stamp; the heap entry is skipped when
    // it reaches the top.
    ev->_stamp = 0;
    ev->_scheduled = false;
    --_liveCount;
    if (ev->autoDelete()) {
        forgetOneShot(ev);
        // autoDelete() hands cancelled one-shots to the queue.
        // NOLINTNEXTLINE(shrimp-ownership-raw-new): queue-owned event
        delete ev;
    }
}

void
EventQueue::reschedule(Event *ev, Tick when, int priority)
{
    if (ev->_scheduled)
        deschedule(ev);
    schedule(ev, when, priority);
}

void
EventQueue::scheduleFn(std::function<void()> fn, Tick when, int priority,
                       const char *desc)
{
    // Wrapper that deletes itself after firing.
    class OneShot : public EventFunctionWrapper
    {
      public:
        using EventFunctionWrapper::EventFunctionWrapper;
        bool autoDelete() const override { return true; }
    };

    // Ownership passes to the queue, which reclaims the event when
    // it fires (autoDelete() contract).
    // NOLINTNEXTLINE(shrimp-ownership-raw-new): queue-owned event
    schedule(new OneShot(std::move(fn), desc), when, priority);
}

void
EventQueue::skipDead()
{
    while (!_queue.empty()) {
        const QueueEntry &top = _queue.top();
        if (top.stamp == top.ev->_stamp && top.ev->_scheduled)
            return;
        _queue.pop();
    }
}

bool
EventQueue::runOne()
{
    skipDead();
    if (_queue.empty())
        return false;

    QueueEntry entry = _queue.top();
    _queue.pop();

    Event *ev = entry.ev;
    SHRIMP_ASSERT(entry.when >= _curTick, "time went backwards");
    _curTick = entry.when;

    ev->_scheduled = false;
    --_liveCount;
    ++_numProcessed;

    bool auto_delete = ev->autoDelete();
    ev->process();
    // `ev` may have rescheduled itself inside process(); only reclaim
    // one-shot events, which by contract never reschedule.
    if (auto_delete) {
        forgetOneShot(ev);
        // Fired one-shots are queue-owned (autoDelete() contract).
        // NOLINTNEXTLINE(shrimp-ownership-raw-new): queue-owned event
        delete ev;
    }
    return true;
}

void
EventQueue::forgetOneShot(Event *ev)
{
    for (auto it = _liveOneShots.begin(); it != _liveOneShots.end();
         ++it) {
        if (*it == ev) {
            *it = _liveOneShots.back();
            _liveOneShots.pop_back();
            return;
        }
    }
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

void
EventQueue::runUntil(Tick when)
{
    for (;;) {
        skipDead();
        if (_queue.empty() || _queue.top().when > when)
            break;
        runOne();
    }
    if (when > _curTick)
        _curTick = when;
}

} // namespace shrimp
