/**
 * @file
 * A small statistics package: scalar counters, gauges, distributions,
 * log-2 histograms, and hierarchical stat groups with text and JSON
 * dumping. Modeled loosely on the gem5 stats package, sized for this
 * simulator.
 */

#ifndef SHRIMP_SIM_STATS_HH
#define SHRIMP_SIM_STATS_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp
{
namespace stats
{

/** Base class for all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /**
     * Emit one JSON member `"prefix.name": <value>` (a bare number for
     * scalars, an object for distributions/histograms). @p first is
     * the enclosing object's comma state, updated in place.
     */
    virtual void dumpJson(std::ostream &os, const std::string &prefix,
                          bool &first) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonically increasing 64-bit event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os, const std::string &prefix,
                  bool &first) const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** A scalar that can be set to arbitrary values (gauges, ratios). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator=(double v) { _value = v; return *this; }
    double value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os, const std::string &prefix,
                  bool &first) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * A self-tracking high-water mark: observe() keeps the maximum seen
 * since construction or the last reset(). Unlike a plain Scalar fed
 * from shadow state, the peak honestly restarts after a stats reset.
 */
class Peak : public Stat
{
  public:
    using Stat::Stat;

    void
    observe(double v)
    {
        if (v > _value)
            _value = v;
    }

    double value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os, const std::string &prefix,
                  bool &first) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * A sampled distribution tracking count, min, max, mean and standard
 * deviation. Uses Welford's online algorithm: the naive sum-of-squares
 * formula cancels catastrophically when mean >> stddev (tick-valued
 * latencies are ~1e6 and worse), which this package once got wrong.
 */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        ++_count;
        double delta = v - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (v - _mean);
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _mean * static_cast<double>(_count); }
    double mean() const { return _count ? _mean : 0.0; }
    double minValue() const { return _count ? _min : 0.0; }
    double maxValue() const { return _count ? _max : 0.0; }
    double stddev() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os, const std::string &prefix,
                  bool &first) const override;
    void reset() override;

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;   //!< sum of squared deviations from the mean
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A log-2 bucketed histogram of non-negative integer samples (ticks,
 * queue depths). Bucket 0 holds zeros; bucket b >= 1 holds samples in
 * [2^(b-1), 2^b). Also tracks count/min/max/mean so a histogram can
 * stand in for a Distribution in machine-readable output.
 */
class Histogram : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(std::uint64_t v)
    {
        ++_count;
        _sum += static_cast<double>(v);
        _min = std::min(_min, v);
        _max = std::max(_max, v);
        unsigned b = bucketOf(v);
        if (b >= _buckets.size())
            _buckets.resize(b + 1, 0);
        ++_buckets[b];
    }

    /** Bucket index for @p v: 0 for 0, else 1 + floor(log2 v). */
    static unsigned
    bucketOf(std::uint64_t v)
    {
        return static_cast<unsigned>(std::bit_width(v));
    }

    /** Smallest sample value landing in bucket @p b. */
    static std::uint64_t
    bucketLow(unsigned b)
    {
        return b ? std::uint64_t{1} << (b - 1) : 0;
    }

    std::uint64_t count() const { return _count; }
    double mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }
    std::uint64_t minValue() const { return _count ? _min : 0; }
    std::uint64_t maxValue() const { return _count ? _max : 0; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os, const std::string &prefix,
                  bool &first) const override;
    void reset() override;

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t _max = 0;
    std::vector<std::uint64_t> _buckets;
};

/**
 * A group of statistics belonging to one component. Groups form a tree
 * mirroring the SimObject hierarchy; dump() walks the tree.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return _name; }

    /** Register a stat owned by the component (not by the group). */
    void addStat(Stat *s) { _stats.push_back(s); }

    /** Dump this group's stats and all children, prefixed by path. */
    void dump(std::ostream &os) const;

    /** Dump this tree as one flat JSON object keyed by stat path. */
    void dumpJson(std::ostream &os) const;

    /**
     * Emit this tree's members into an enclosing JSON object (shared
     * comma state @p first); lets a caller merge many groups into one
     * document. Keys are full dotted stat paths.
     */
    void dumpJsonInto(std::ostream &os, bool &first) const;

    /** Reset this group's stats and all children. */
    void resetAll();

  private:
    void dumpWithPrefix(std::ostream &os, const std::string &prefix) const;
    void dumpJsonWithPrefix(std::ostream &os, const std::string &prefix,
                            bool &first) const;

    std::string _name;
    std::vector<Stat *> _stats;
    std::vector<Group *> _children;
};

} // namespace stats
} // namespace shrimp

#endif // SHRIMP_SIM_STATS_HH
