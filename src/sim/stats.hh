/**
 * @file
 * A small statistics package: scalar counters, distributions, and
 * hierarchical stat groups with text dumping. Modeled loosely on the
 * gem5 stats package, sized for this simulator.
 */

#ifndef SHRIMP_SIM_STATS_HH
#define SHRIMP_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp
{
namespace stats
{

/** Base class for all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonically increasing 64-bit event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** A scalar that can be set to arbitrary values (gauges, ratios). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator=(double v) { _value = v; return *this; }
    double value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * A sampled distribution tracking count, min, max, mean and standard
 * deviation (via sum and sum-of-squares).
 */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        _sumSq += v * v;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minValue() const { return _count ? _min : 0.0; }
    double maxValue() const { return _count ? _max : 0.0; }
    double stddev() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A group of statistics belonging to one component. Groups form a tree
 * mirroring the SimObject hierarchy; dump() walks the tree.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return _name; }

    /** Register a stat owned by the component (not by the group). */
    void addStat(Stat *s) { _stats.push_back(s); }

    /** Dump this group's stats and all children, prefixed by path. */
    void dump(std::ostream &os) const;

    /** Reset this group's stats and all children. */
    void resetAll();

  private:
    void dumpWithPrefix(std::ostream &os, const std::string &prefix) const;

    std::string _name;
    std::vector<Stat *> _stats;
    std::vector<Group *> _children;
};

} // namespace stats
} // namespace shrimp

#endif // SHRIMP_SIM_STATS_HH
