/**
 * @file
 * Fundamental simulator-wide types and time constants.
 *
 * The simulator measures time in Ticks, where one tick is one picosecond.
 * This gives exact integer periods for every clock in the modeled system
 * (60 MHz CPU, 33.3 MHz Xpress bus, 8.33 MHz EISA BCLK, mesh links).
 */

#ifndef SHRIMP_SIM_TYPES_HH
#define SHRIMP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace shrimp
{

/** Simulated time. 1 tick == 1 picosecond. */
using Tick = std::uint64_t;

/** Time unit constants, in ticks. */
constexpr Tick ONE_PS = 1;
constexpr Tick ONE_NS = 1000;
constexpr Tick ONE_US = 1000 * ONE_NS;
constexpr Tick ONE_MS = 1000 * ONE_US;
constexpr Tick ONE_SEC = 1000 * ONE_MS;

/** A tick value that compares greater than every real schedule time. */
constexpr Tick MAX_TICK = std::numeric_limits<Tick>::max();

/** Physical or virtual byte address within a node. */
using Addr = std::uint64_t;

/** Identifies a node (a PC plus its network interface) in the machine. */
using NodeId = std::uint32_t;

/** Identifies a process within one node's kernel. */
using Pid = std::uint32_t;

/** Page frame / virtual page numbers. */
using PageNum = std::uint64_t;

/**
 * Page geometry. Fixed at the x86 architectural 4 KB page size used by
 * the i486/Pentium nodes the paper targets.
 */
constexpr unsigned PAGE_SHIFT = 12;
constexpr Addr PAGE_SIZE = Addr{1} << PAGE_SHIFT;
constexpr Addr PAGE_OFFSET_MASK = PAGE_SIZE - 1;

constexpr PageNum pageOf(Addr a) { return a >> PAGE_SHIFT; }
constexpr Addr pageBase(PageNum p) { return Addr{p} << PAGE_SHIFT; }
constexpr Addr pageOffset(Addr a) { return a & PAGE_OFFSET_MASK; }

/** An invalid / "no node" marker. */
constexpr NodeId INVALID_NODE = ~NodeId{0};

/** An invalid page number marker. */
constexpr PageNum INVALID_PAGE = ~PageNum{0};

/**
 * Convert a frequency in Hz to a clock period in ticks, rounding to the
 * nearest picosecond.
 */
constexpr Tick
freqToPeriod(std::uint64_t freq_hz)
{
    return (ONE_SEC + freq_hz / 2) / freq_hz;
}

} // namespace shrimp

#endif // SHRIMP_SIM_TYPES_HH
