/**
 * @file
 * Per-process page tables: virtual page -> physical frame, protection
 * bits, and the per-page cache policy the Xpress PC exposes (the map()
 * call forces mapped-out pages to write-through).
 *
 * A "frame" here is a page number in the node's full physical address
 * space, so a PTE can name either a DRAM frame or a page of network
 * interface command space; the bus address decoder does the rest.
 */

#ifndef SHRIMP_VM_PAGE_TABLE_HH
#define SHRIMP_VM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mem/cache_policy.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp
{

/** Why a translation failed. */
enum class FaultKind : std::uint8_t
{
    NONE,
    NOT_PRESENT,    //!< no valid translation for the page
    PROTECTION,     //!< write to a read-only page (NIPT invalidation
                    //!< marks source pages read-only; see Section 4.4)
};

/** One page table entry. */
struct Pte
{
    PageNum frame = INVALID_PAGE;
    bool writable = false;
    bool user = true;
    CachePolicy policy = CachePolicy::WRITE_BACK;
};

/** Result of a translation attempt. */
struct Translation
{
    FaultKind fault = FaultKind::NONE;
    Addr paddr = 0;
    CachePolicy policy = CachePolicy::WRITE_BACK;

    bool ok() const { return fault == FaultKind::NONE; }
};

/**
 * A sparse page table. The simulator does not model the x86 two-level
 * radix structure; translation cost is charged by the CPU model as part
 * of cache-hit latency, as on the real machine's TLB hit path.
 */
class PageTable
{
  public:
    /** Install or replace the translation for @p vpage. */
    void
    map(PageNum vpage, const Pte &pte)
    {
        SHRIMP_ASSERT(pte.frame != INVALID_PAGE,
                      "mapping vpage ", vpage, " to an invalid frame");
        _entries[vpage] = pte;
    }

    /** Remove the translation for @p vpage (no-op if absent). */
    void unmap(PageNum vpage) { _entries.erase(vpage); }

    /** Look up the entry for @p vpage, or null. */
    Pte *
    find(PageNum vpage)
    {
        auto it = _entries.find(vpage);
        return it == _entries.end() ? nullptr : &it->second;
    }

    const Pte *
    find(PageNum vpage) const
    {
        auto it = _entries.find(vpage);
        return it == _entries.end() ? nullptr : &it->second;
    }

    /**
     * Translate a virtual address for a read (@p write false) or write
     * (@p write true) access.
     */
    Translation
    translate(Addr vaddr, bool write) const
    {
        const Pte *pte = find(pageOf(vaddr));
        if (!pte)
            return Translation{FaultKind::NOT_PRESENT, 0,
                               CachePolicy::WRITE_BACK};
        if (write && !pte->writable)
            return Translation{FaultKind::PROTECTION, 0, pte->policy};
        return Translation{FaultKind::NONE,
                           pageBase(pte->frame) + pageOffset(vaddr),
                           pte->policy};
    }

    /** Change the cache policy of an existing mapping. */
    bool
    setPolicy(PageNum vpage, CachePolicy policy)
    {
        Pte *pte = find(vpage);
        if (!pte)
            return false;
        pte->policy = policy;
        return true;
    }

    /** Change writability of an existing mapping. */
    bool
    setWritable(PageNum vpage, bool writable)
    {
        Pte *pte = find(vpage);
        if (!pte)
            return false;
        pte->writable = writable;
        return true;
    }

    std::size_t size() const { return _entries.size(); }

    const std::unordered_map<PageNum, Pte> &entries() const
    {
        return _entries;
    }

  private:
    std::unordered_map<PageNum, Pte> _entries;
};

} // namespace shrimp

#endif // SHRIMP_VM_PAGE_TABLE_HH
