/**
 * @file
 * Physical page frame allocator with pin counts. Pinning is the
 * paper's simple NIPT-consistency policy: a frame with incoming
 * communication mappings is pinned so remote NIPT entries never dangle
 * (Section 4.4).
 */

#ifndef SHRIMP_VM_FRAME_ALLOCATOR_HH
#define SHRIMP_VM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp
{

/** Allocates DRAM page frames for one node. */
class FrameAllocator
{
  public:
    /**
     * @param first_frame first allocatable frame (frames below it are
     *        reserved for the kernel)
     * @param num_frames total DRAM frames on the node
     */
    FrameAllocator(PageNum first_frame, PageNum num_frames)
        : _firstFrame(first_frame), _numFrames(num_frames)
    {
        SHRIMP_ASSERT(first_frame <= num_frames, "bad frame range");
        _pinCount.resize(num_frames, 0);
        _allocated.resize(num_frames, false);
        for (PageNum f = num_frames; f-- > first_frame;)
            _freeList.push_back(f);
    }

    /** Allocate one frame, or nullopt if DRAM is exhausted. */
    std::optional<PageNum>
    alloc()
    {
        if (_freeList.empty())
            return std::nullopt;
        PageNum f = _freeList.back();
        _freeList.pop_back();
        _allocated[f] = true;
        return f;
    }

    /** Release a frame. Must be unpinned. */
    void
    free(PageNum frame)
    {
        SHRIMP_ASSERT(frame >= _firstFrame,
                      "free of reserved kernel frame ", frame);
        SHRIMP_ASSERT(frame < _numFrames && _allocated[frame],
                      "free of unallocated frame ", frame);
        SHRIMP_ASSERT(_pinCount[frame] == 0,
                      "free of pinned frame ", frame);
        _allocated[frame] = false;
        _freeList.push_back(frame);
    }

    /** Pin a frame (one count per incoming mapping). */
    void
    pin(PageNum frame)
    {
        SHRIMP_ASSERT(frame < _numFrames && _allocated[frame],
                      "pin of unallocated frame ", frame);
        ++_pinCount[frame];
    }

    /** Drop one pin count. */
    void
    unpin(PageNum frame)
    {
        SHRIMP_ASSERT(frame < _numFrames && _pinCount[frame] > 0,
                      "unpin of unpinned frame ", frame);
        --_pinCount[frame];
    }

    bool
    isPinned(PageNum frame) const
    {
        SHRIMP_ASSERT(frame < _numFrames, "frame ", frame,
                      " out of range");
        return _pinCount[frame] > 0;
    }

    bool
    isAllocated(PageNum frame) const
    {
        SHRIMP_ASSERT(frame < _numFrames, "frame ", frame,
                      " out of range");
        return _allocated[frame];
    }
    std::size_t freeFrames() const { return _freeList.size(); }
    PageNum numFrames() const { return _numFrames; }

  private:
    PageNum _firstFrame;
    PageNum _numFrames;
    std::vector<PageNum> _freeList;
    std::vector<std::uint32_t> _pinCount;
    std::vector<bool> _allocated;
};

} // namespace shrimp

#endif // SHRIMP_VM_FRAME_ALLOCATOR_HH
