/**
 * @file
 * AddressSpace: a process's virtual address space -- a page table plus
 * a simple region allocator for user memory.
 */

#ifndef SHRIMP_VM_ADDRESS_SPACE_HH
#define SHRIMP_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <unordered_set>

#include "sim/logging.hh"
#include "vm/frame_allocator.hh"
#include "vm/page_table.hh"

namespace shrimp
{

/**
 * One process's address space. User regions are carved monotonically
 * from a bump allocator starting at userBase; backing frames come from
 * the node's FrameAllocator.
 */
class AddressSpace
{
  public:
    /** Start of the user heap region. */
    static constexpr Addr userBase = 0x1000'0000;

    explicit AddressSpace(FrameAllocator &frames) : _frames(frames) {}

    ~AddressSpace()
    {
        // Return DRAM frames this space allocated. Pins must have been
        // released by the kernel (unmap) first.
        for (const auto &[vpage, pte] : _pageTable.entries()) {
            (void)vpage;
            if (_ownedFrames.count(pte.frame))
                _frames.free(pte.frame);
        }
    }

    PageTable &pageTable() { return _pageTable; }
    const PageTable &pageTable() const { return _pageTable; }

    /**
     * Allocate @p npages of zeroed user memory.
     *
     * @return base virtual address of the region.
     */
    Addr
    allocate(std::size_t npages,
             CachePolicy policy = CachePolicy::WRITE_BACK,
             bool writable = true)
    {
        Addr base = _nextVaddr;
        for (std::size_t i = 0; i < npages; ++i) {
            auto frame = _frames.alloc();
            SHRIMP_ASSERT(frame.has_value(), "node out of DRAM frames");
            _ownedFrames.insert(*frame);
            _pageTable.map(pageOf(base) + i,
                           Pte{*frame, writable, true, policy});
        }
        _nextVaddr += npages * PAGE_SIZE;
        return base;
    }

    /**
     * Map a region of non-DRAM physical space (e.g. NIC command pages)
     * into this address space. Frames are not owned.
     */
    Addr
    mapPhysical(PageNum first_frame, std::size_t npages,
                CachePolicy policy, bool writable)
    {
        Addr base = _nextVaddr;
        for (std::size_t i = 0; i < npages; ++i) {
            _pageTable.map(pageOf(base) + i,
                           Pte{first_frame + i, writable, true, policy});
        }
        _nextVaddr += npages * PAGE_SIZE;
        return base;
    }

    /**
     * Map a scatter list of physical pages (e.g. the command pages of
     * non-contiguous frames) at consecutive virtual pages.
     */
    Addr
    mapPhysicalScatter(const std::vector<PageNum> &frames,
                       CachePolicy policy, bool writable)
    {
        Addr base = _nextVaddr;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            _pageTable.map(pageOf(base) + i,
                           Pte{frames[i], writable, true, policy});
        }
        _nextVaddr += frames.size() * PAGE_SIZE;
        return base;
    }

    /**
     * Stop tracking ownership of @p frame (the kernel is paging it
     * out and will free or reassign it).
     */
    void forgetFrame(PageNum frame) { _ownedFrames.erase(frame); }

    /** Begin tracking ownership of @p frame (page-in). */
    void adoptFrame(PageNum frame) { _ownedFrames.insert(frame); }

    /** Translate; convenience forwarding. */
    Translation
    translate(Addr vaddr, bool write) const
    {
        return _pageTable.translate(vaddr, write);
    }

    /** Whether this space owns (allocated) the given DRAM frame. */
    bool
    ownsFrame(PageNum frame) const
    {
        return _ownedFrames.count(frame) != 0;
    }

  private:
    FrameAllocator &_frames;
    PageTable _pageTable;
    Addr _nextVaddr = userBase;
    std::unordered_set<PageNum> _ownedFrames;
};

} // namespace shrimp

#endif // SHRIMP_VM_ADDRESS_SPACE_HH
