#include "os/dsm.hh"

#include <algorithm>

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace shrimp
{

namespace
{

/** Errno constants are 64-bit; RPC response words are 32-bit. */
constexpr std::uint32_t
rc(std::uint64_t e)
{
    return static_cast<std::uint32_t>(e);
}

bool
contains(const std::vector<NodeId> &v, NodeId n)
{
    return std::find(v.begin(), v.end(), n) != v.end();
}

} // namespace

const char *
dsmPageStateName(DsmPageState s)
{
    switch (s) {
      case DsmPageState::INVALID: return "INVALID";
      case DsmPageState::READ_SHARED: return "READ_SHARED";
      case DsmPageState::WRITE_EXCLUSIVE: return "WRITE_EXCLUSIVE";
    }
    return "?";
}

Dsm::Dsm(Kernel &kernel, const DsmConfig &cfg)
    : _kernel(kernel),
      _cfg(cfg),
      _local(cfg.numPages),
      _dir(cfg.numPages),
      _links(kernel.numNodes()),
      _stats("dsm", &kernel.statGroup())
{
    SHRIMP_ASSERT(_cfg.numPages > 0, "DSM window is empty");
    SHRIMP_ASSERT(pageOffset(_cfg.baseVaddr) == 0,
                  "DSM base address not page aligned");
    _stats.addStat(&_faults);
    _stats.addStat(&_fetches);
    _stats.addStat(&_invalidations);
    _stats.addStat(&_rehomes);
    _stats.addStat(&_hostdown);
    _stats.addStat(&_pagesSent);
    _stats.addStat(&_fencedWritebacks);
    _stats.addStat(&_faultLatency);

    // The deliberate-DMA engine reports completion through a single
    // callback that the NX service claimed at kernel construction;
    // chain it rather than replace it.
    auto prev = _kernel.ni().dma().onComplete;
    _kernel.ni().dma().onComplete = [this, prev](Addr base) {
        if (prev)
            prev(base);
        dmaCompleted(base);
    };
}

// ---------------------------------------------------------------------
// Boot wiring
// ---------------------------------------------------------------------

void
Dsm::allocatePages()
{
    for (std::uint32_t page = 0; page < _cfg.numPages; ++page) {
        if (homeNode(page) != _kernel.nodeId())
            continue;
        DirEntry &d = _dir[page];
        d.homedHere = true;
        d.homeFrame = allocPinned("DSM home frame");
    }
    for (NodeId peer = 0; peer < _links.size(); ++peer) {
        if (peer == _kernel.nodeId())
            continue;
        PeerLink &l = _links[peer];
        // Page data arrives silently; the control RPC that follows it
        // on the (interrupting, in-order) kernel channel announces it.
        l.bounceIn = allocPinned("DSM bounce frame");
        NiptEntry &e = _kernel.ni().nipt().entry(l.bounceIn);
        e.mappedIn = true;
        e.inSources.push_back(peer);
        l.stagingOut = allocPinned("DSM staging frame");
    }
}

PageNum
Dsm::bounceInFrame(NodeId peer) const
{
    return _links.at(peer).bounceIn;
}

void
Dsm::wireTo(NodeId peer, PageNum peer_bounce_frame)
{
    PeerLink &l = _links.at(peer);
    OutMapping m;
    m.mode = UpdateMode::DELIBERATE;
    m.dstNode = peer;
    m.dstPage = peer_bounce_frame;
    _kernel.ni().nipt().entry(l.stagingOut).outLow = m;
}

void
Dsm::attach(Process &proc)
{
    SHRIMP_ASSERT(!_proc, "DSM window already attached to a process");
    _proc = &proc;
}

// ---------------------------------------------------------------------
// The fault path (requester side)
// ---------------------------------------------------------------------

bool
Dsm::managesFault(const Process &proc, Addr vaddr) const
{
    return _proc == &proc && vaddr >= _cfg.baseVaddr &&
           vaddr < _cfg.baseVaddr + Addr{_cfg.numPages} * PAGE_SIZE;
}

void
Dsm::faultOn(Process &proc, Addr vaddr, bool write,
             std::function<void(std::uint64_t)> done)
{
    SHRIMP_ASSERT(managesFault(proc, vaddr),
                  "fault outside the DSM window");
    acquire(static_cast<std::uint32_t>(pageOf(vaddr - _cfg.baseVaddr)),
            write, std::move(done));
}

bool
Dsm::satisfied(const LocalPage &lp, bool write)
{
    return lp.state == DsmPageState::WRITE_EXCLUSIVE ||
           (!write && lp.state == DsmPageState::READ_SHARED);
}

void
Dsm::acquire(std::uint32_t page, bool write,
             std::function<void(std::uint64_t)> done)
{
    SHRIMP_ASSERT(page < _cfg.numPages, "DSM page out of range ", page);
    if (satisfied(_local[page], write)) {
        if (done)
            done(err::OK);
        return;
    }
    auto &q = _reqs[page];
    LocalReq req;
    req.id = _nextReqId++;
    req.write = write;
    req.done = std::move(done);
    req.start = _kernel.curTick();
    q.push_back(std::move(req));
    if (q.size() == 1)
        issueHead(page);
}

void
Dsm::issueHead(std::uint32_t page)
{
    auto &q = _reqs[page];
    SHRIMP_ASSERT(!q.empty() && !q.front().issued,
                  "DSM issue with no fresh head request");
    LocalReq &head = q.front();
    head.issued = true;
    ++_faults;
    _kernel.charge(nullptr, _kernel.costs().faultHandler);

    NodeId home = homeNode(page);
    if (home == _kernel.nodeId()) {
        dirEnqueue(page, home, head.write,
                   _local[page].state == DsmPageState::READ_SHARED);
        return;
    }
    if (_kernel.peerFailed(home)) {
        // Fail fast, but never re-entrantly: the caller of acquire()
        // sees its callback run from an event, as in the remote case.
        std::uint64_t id = head.id;
        _kernel.eventQueue().scheduleFn(
            [this, page, id] {
                completeLocalIf(page, id, err::HOSTDOWN);
            },
            _kernel.curTick(), EventPriority::DEFAULT,
            "dsm home down");
        return;
    }
    DsmMsg m;
    m.type = channel::DSM_GET;
    m.payload[0] = page;
    m.payload[1] = head.write ? 1 : 0;
    m.payload[2] = _local[page].state != DsmPageState::INVALID ? 1 : 0;
    std::uint64_t id = head.id;
    m.onResponse = [this, page, id](const std::uint32_t *resp) {
        // err::OK only acknowledges queueing at the home; the grant
        // (or failure) arrives later as a DSM_PUT.
        if (resp[0] != rc(err::OK))
            completeLocalIf(page, id, resp[0]);
    };
    sendMsg(home, std::move(m));
}

void
Dsm::completeLocal(std::uint32_t page, std::uint64_t status)
{
    auto it = _reqs.find(page);
    if (it == _reqs.end() || it->second.empty())
        return;
    auto &q = it->second;
    LocalReq head = std::move(q.front());
    q.pop_front();
    if (status == err::OK)
        _faultLatency.sample(_kernel.curTick() - head.start);
    else if (status == err::HOSTDOWN)
        ++_hostdown;
    if (head.done)
        head.done(status);
    // Serve queued requests the new local state already satisfies and
    // issue the first one it does not.
    while (!q.empty() && !q.front().issued) {
        if (satisfied(_local[page], q.front().write)) {
            LocalReq r = std::move(q.front());
            q.pop_front();
            if (r.done)
                r.done(err::OK);
        } else {
            issueHead(page);
        }
    }
}

void
Dsm::completeLocalIf(std::uint32_t page, std::uint64_t id,
                     std::uint64_t status)
{
    auto it = _reqs.find(page);
    if (it == _reqs.end() || it->second.empty() ||
        it->second.front().id != id)
        return;
    completeLocal(page, status);
}

void
Dsm::installLocal(std::uint32_t page, PageNum frame, bool write)
{
    SHRIMP_ASSERT(frame != INVALID_PAGE, "DSM install without a frame");
    LocalPage &lp = _local[page];
    lp.frame = frame;
    lp.state = write ? DsmPageState::WRITE_EXCLUSIVE
                     : DsmPageState::READ_SHARED;
    if (_proc) {
        _proc->space().pageTable().map(
            pageOf(windowVaddr(page)),
            Pte{frame, write, true, CachePolicy::WRITE_BACK});
    }
    _kernel.charge(nullptr, _kernel.costs().mapInstallPerPage);
}

void
Dsm::dropLocal(std::uint32_t page)
{
    LocalPage &lp = _local[page];
    if (_proc && lp.state != DsmPageState::INVALID)
        _proc->space().pageTable().unmap(pageOf(windowVaddr(page)));
    if (lp.frame != INVALID_PAGE &&
        !(isHome(page) && lp.frame == _dir[page].homeFrame)) {
        _kernel.frames().unpin(lp.frame);
        _kernel.frames().free(lp.frame);
    }
    lp.frame = INVALID_PAGE;
    lp.state = DsmPageState::INVALID;
}

// ---------------------------------------------------------------------
// Home-side directory
// ---------------------------------------------------------------------

void
Dsm::dirEnqueue(std::uint32_t page, NodeId requester, bool write,
                bool haveCopy)
{
    DirEntry &d = _dir[page];
    SHRIMP_ASSERT(d.homedHere, "directory request for a foreign page");
    HomeReq h;
    h.requester = requester;
    h.write = write;
    h.haveCopy = haveCopy;
    d.waiters.push_back(h);
    pump(page);
}

void
Dsm::pump(std::uint32_t page)
{
    DirEntry &d = _dir[page];
    if (d.busy || d.waiters.empty())
        return;
    // Post-grant hold: give the previous grantee time to re-execute
    // its faulting instruction before the next waiter can recall or
    // invalidate the page out from under it (anti-livelock).
    const Tick earliest = d.lastGrant + _cfg.grantHold;
    if (_kernel.curTick() < earliest) {
        if (d.pumpDeferred)
            return;
        d.pumpDeferred = true;
        _kernel.eventQueue().scheduleFn(
            [this, page] {
                _dir[page].pumpDeferred = false;
                pump(page);
            },
            earliest, EventPriority::DEFAULT, "dsm grant hold");
        return;
    }
    d.busy = true;
    runHead(page);
}

void
Dsm::runHead(std::uint32_t page)
{
    DirEntry &d = _dir[page];
    SHRIMP_ASSERT(d.busy && !d.waiters.empty(), "runHead without head");
    if (d.awaitingWb || d.pendingAcks > 0)
        return;     // a recall or shootdown step is still in flight

    const NodeId self = _kernel.nodeId();
    HomeReq h = d.waiters.front();

    if (d.errored ||
        (h.requester != self && _kernel.peerFailed(h.requester))) {
        finishHead(page, err::HOSTDOWN);
        return;
    }

    // Recall the page from an exclusive owner.
    if (d.owner != INVALID_NODE && d.owner != h.requester) {
        if (d.owner == self) {
            // We are the owner; the home frame holds the live data
            // (data writes are functional), so no copy is needed.
            if (h.write) {
                dropLocal(page);
                ++_invalidations;
            } else {
                _local[page].state = DsmPageState::READ_SHARED;
                if (_proc)
                    _proc->space().pageTable().setWritable(
                        pageOf(windowVaddr(page)), false);
                if (!contains(d.sharers, self))
                    d.sharers.push_back(self);
            }
            d.owner = INVALID_NODE;
        } else if (_kernel.peerFailed(d.owner)) {
            ownerLost(page);
            return;
        } else {
            d.awaitingWb = true;
            ++_fetches;
            DsmMsg m;
            m.type = channel::DSM_FETCH;
            m.payload[0] = page;
            m.payload[1] = h.write ? 1 : 0;
            std::uint64_t gen = d.gen;
            m.onResponse = [this, page, gen](const std::uint32_t *resp) {
                DirEntry &e = _dir[page];
                if (e.gen != gen || !e.awaitingWb)
                    return;
                if (resp[0] == rc(err::OK))
                    return;     // the DSM_WB is on its way
                e.awaitingWb = false;
                if (resp[0] == rc(err::AGAIN)) {
                    // The owner is alive but holds no copy (stale
                    // record across a failure flap): release the
                    // ownership and serve the last written-back copy.
                    e.owner = INVALID_NODE;
                    if (e.busy)
                        runHead(page);
                } else {
                    ownerLost(page);
                }
            };
            sendMsg(d.owner, std::move(m));
            return;
        }
    } else if (d.owner == h.requester && d.owner != INVALID_NODE) {
        // The recorded owner is re-faulting: it lost its copy (a
        // restart or failure flap we never observed). Release the
        // ownership; the home copy is the freshest surviving version.
        d.owner = INVALID_NODE;
    }

    if (!h.write) {
        grantRead(page);
        return;
    }

    // Write: shoot down every other sharer first (the Section 4.4
    // invalidation shape, carried over the kernel RPC channel).
    for (std::size_t i = d.sharers.size(); i-- > 0;) {
        NodeId s = d.sharers[i];
        if (s == h.requester)
            continue;
        d.sharers.erase(d.sharers.begin() +
                        static_cast<std::ptrdiff_t>(i));
        if (s == self) {
            if (_local[page].state != DsmPageState::INVALID) {
                dropLocal(page);
                ++_invalidations;
            }
        } else if (!_kernel.peerFailed(s)) {
            ++d.pendingAcks;
            DsmMsg m;
            m.type = channel::DSM_INVAL;
            m.payload[0] = page;
            std::uint64_t gen = d.gen;
            m.onResponse = [this, page, gen](const std::uint32_t *) {
                // Any response counts: a synthesized HOSTDOWN means
                // the sharer died, which invalidates just as well.
                ackInval(page, gen);
            };
            sendMsg(s, std::move(m));
        }
    }
    if (d.pendingAcks > 0)
        return;
    grantWrite(page);
}

void
Dsm::grantRead(std::uint32_t page)
{
    DirEntry &d = _dir[page];
    HomeReq h = d.waiters.front();
    const NodeId self = _kernel.nodeId();
    if (h.requester != self && _kernel.peerFailed(h.requester)) {
        finishHead(page, err::HOSTDOWN);
        return;
    }
    if (!contains(d.sharers, h.requester))
        d.sharers.push_back(h.requester);
    if (h.requester == self) {
        installLocal(page, d.homeFrame, false);
        finishHead(page, err::OK);
        return;
    }
    DsmMsg m;
    m.type = channel::DSM_PUT;
    m.payload[0] = page;
    m.payload[1] = 0;
    m.payload[2] = 1;
    m.payload[3] = rc(err::OK);
    m.withData = true;
    m.data = readFrame(d.homeFrame);
    sendMsg(h.requester, std::move(m));
    finishHead(page, err::OK);
}

void
Dsm::grantWrite(std::uint32_t page)
{
    DirEntry &d = _dir[page];
    HomeReq h = d.waiters.front();
    const NodeId self = _kernel.nodeId();
    if (h.requester != self && _kernel.peerFailed(h.requester)) {
        finishHead(page, err::HOSTDOWN);
        return;
    }
    // Skip the data transfer only when both sides agree the requester
    // still holds a READ_SHARED copy to upgrade in place.
    bool upgrade = h.haveCopy && contains(d.sharers, h.requester);
    d.sharers.clear();
    d.owner = h.requester;
    // Bind the grant to the requester's current life: only that
    // life's writeback may land in the home frame.
    d.granteeIncarnation = h.requester == self
                               ? _kernel.selfIncarnation()
                               : _kernel.peerIncarnation(h.requester);
    if (h.requester == self) {
        installLocal(page, d.homeFrame, true);
        finishHead(page, err::OK);
        return;
    }
    DsmMsg m;
    m.type = channel::DSM_PUT;
    m.payload[0] = page;
    m.payload[1] = 1;
    m.payload[2] = upgrade ? 0 : 1;
    m.payload[3] = rc(err::OK);
    if (!upgrade) {
        m.withData = true;
        m.data = readFrame(d.homeFrame);
    }
    sendMsg(h.requester, std::move(m));
    finishHead(page, err::OK);
}

void
Dsm::finishHead(std::uint32_t page, std::uint64_t status)
{
    DirEntry &d = _dir[page];
    SHRIMP_ASSERT(d.busy && !d.waiters.empty(), "finish without head");
    HomeReq h = d.waiters.front();
    d.waiters.pop_front();
    d.busy = false;
    d.awaitingWb = false;
    d.pendingAcks = 0;
    ++d.gen;    // orphan stale FETCH/INVAL callbacks of this sequence
    if (status == err::OK)
        d.lastGrant = _kernel.curTick();
    if (h.requester == _kernel.nodeId()) {
        completeLocal(page, status);
    } else if (status != err::OK && !_kernel.peerFailed(h.requester)) {
        DsmMsg m;
        m.type = channel::DSM_PUT;
        m.payload[0] = page;
        m.payload[1] = h.write ? 1 : 0;
        m.payload[2] = 0;
        m.payload[3] = rc(status);
        sendMsg(h.requester, std::move(m));
    }
    pump(page);
}

void
Dsm::ackInval(std::uint32_t page, std::uint64_t gen)
{
    DirEntry &d = _dir[page];
    if (d.gen != gen || d.pendingAcks == 0)
        return;
    if (--d.pendingAcks == 0 && d.busy)
        runHead(page);
}

void
Dsm::ownerLost(std::uint32_t page)
{
    DirEntry &d = _dir[page];
    if (!d.errored) {
        d.errored = true;
        d.lostOwner = d.owner;
    }
    d.owner = INVALID_NODE;
    d.granteeIncarnation = 0;
    d.sharers.clear();
    d.awaitingWb = false;
    d.pendingAcks = 0;
    ++d.gen;
    if (d.busy && !d.waiters.empty())
        finishHead(page, err::HOSTDOWN);
}

// ---------------------------------------------------------------------
// Ordered per-peer message queue (control + page data)
// ---------------------------------------------------------------------

void
Dsm::sendMsg(NodeId dst, DsmMsg msg)
{
    SHRIMP_ASSERT(dst < _links.size() && dst != _kernel.nodeId(),
                  "bad DSM message destination ", dst);
    if (_kernel.peerFailed(dst)) {
        if (msg.onResponse) {
            _kernel.eventQueue().scheduleFn(
                [cb = std::move(msg.onResponse)] {
                    std::uint32_t resp[channel::payloadWords] = {};
                    resp[0] = rc(err::HOSTDOWN);
                    cb(resp);
                },
                _kernel.curTick(), EventPriority::DEFAULT,
                "dsm msg hostdown");
        }
        return;
    }
    PeerLink &l = _links[dst];
    l.queue.push_back(std::move(msg));
    if (!l.active)
        startNext(dst);
}

void
Dsm::startNext(NodeId dst)
{
    PeerLink &l = _links[dst];
    if (l.active || l.queue.empty())
        return;
    if (_kernel.peerFailed(dst)) {
        failAllMsgs(dst);
        return;
    }
    l.active = true;
    DsmMsg &m = l.queue.front();
    if (m.withData) {
        SHRIMP_ASSERT(m.data.size() == PAGE_SIZE, "bad DSM page image");
        _kernel.mem().write(pageBase(l.stagingOut), m.data.data(),
                            PAGE_SIZE);
        startDma(dst, l.gen);
    } else {
        postMsgRpc(dst);
    }
}

void
Dsm::startDma(NodeId dst, std::uint64_t gen)
{
    PeerLink &l = _links[dst];
    if (l.gen != gen || !l.active)
        return;
    if (!_kernel.ni().dma().start(pageBase(l.stagingOut),
                                  PAGE_SIZE / 4)) {
        // Engine claimed by a user deliberate transfer or NX; retry.
        _kernel.eventQueue().scheduleFn(
            [this, dst, gen] { startDma(dst, gen); },
            _kernel.curTick() + 2 * ONE_US, EventPriority::DEFAULT,
            "dsm dma retry");
        return;
    }
    l.dmaPending = true;
}

void
Dsm::postMsgRpc(NodeId dst)
{
    PeerLink &l = _links[dst];
    SHRIMP_ASSERT(l.active && !l.queue.empty(),
                  "DSM rpc post with no message");
    DsmMsg &m = l.queue.front();
    if (m.withData)
        ++_pagesSent;
    KernelRpc rpc;
    rpc.type = m.type;
    rpc.payload = m.payload;
    std::uint64_t gen = l.gen;
    rpc.onResponse = [this, dst, gen](const std::uint32_t *resp) {
        msgAcked(dst, gen, resp);
    };
    _kernel.mapManager().postRpc(dst, std::move(rpc));
}

void
Dsm::msgAcked(NodeId dst, std::uint64_t gen, const std::uint32_t *resp)
{
    PeerLink &l = _links[dst];
    if (l.gen != gen || !l.active || l.queue.empty())
        return;
    DsmMsg m = std::move(l.queue.front());
    l.queue.pop_front();
    l.active = false;
    if (m.onResponse)
        m.onResponse(resp);
    startNext(dst);
}

void
Dsm::failAllMsgs(NodeId dst)
{
    PeerLink &l = _links[dst];
    ++l.gen;    // orphan in-flight acks and DMA retries
    l.active = false;
    l.dmaPending = false;
    while (!l.queue.empty()) {
        DsmMsg m = std::move(l.queue.front());
        l.queue.pop_front();
        if (m.onResponse) {
            _kernel.eventQueue().scheduleFn(
                [cb = std::move(m.onResponse)] {
                    std::uint32_t resp[channel::payloadWords] = {};
                    resp[0] = rc(err::HOSTDOWN);
                    cb(resp);
                },
                _kernel.curTick(), EventPriority::DEFAULT,
                "dsm msg hostdown");
        }
    }
}

void
Dsm::dmaCompleted(Addr base)
{
    for (NodeId dst = 0; dst < _links.size(); ++dst) {
        PeerLink &l = _links[dst];
        if (l.active && l.dmaPending &&
            pageBase(l.stagingOut) == base) {
            l.dmaPending = false;
            postMsgRpc(dst);
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Request handlers (run inside the kernel channel arrival dispatch;
// everything a handler copies out of a bounce frame is copied before
// the acknowledgement is written)
// ---------------------------------------------------------------------

bool
Dsm::handlesRpc(std::uint32_t type)
{
    return type >= channel::DSM_GET && type <= channel::DSM_INVAL;
}

std::uint32_t
Dsm::handleRpc(NodeId peer, std::uint32_t type,
               const std::uint32_t *payload, std::uint32_t *resp)
{
    (void)resp;
    switch (type) {
      case channel::DSM_GET:
        return handleGet(peer, payload);
      case channel::DSM_PUT:
        return handlePut(peer, payload);
      case channel::DSM_FETCH:
        return handleFetch(peer, payload);
      case channel::DSM_WB:
        return handleWb(peer, payload);
      case channel::DSM_INVAL:
        return handleInval(peer, payload);
      default:
        return rc(err::INVAL);
    }
}

std::uint32_t
Dsm::handleGet(NodeId peer, const std::uint32_t *p)
{
    std::uint32_t page = p[0];
    if (page >= _cfg.numPages || !isHome(page))
        return rc(err::INVAL);
    if (_dir[page].errored)
        return rc(err::HOSTDOWN);
    _kernel.mapManager().addWork(_kernel.costs().mapRemotePerPage);
    dirEnqueue(page, peer, p[1] != 0, p[2] != 0);
    return rc(err::OK);
}

std::uint32_t
Dsm::handlePut(NodeId peer, const std::uint32_t *p)
{
    std::uint32_t page = p[0];
    if (page >= _cfg.numPages || homeNode(page) != peer)
        return rc(err::INVAL);
    bool write = p[1] != 0;
    bool with_data = p[2] != 0;
    std::uint32_t status = p[3];
    if (status != rc(err::OK)) {
        completeLocal(page, status);
        return rc(err::OK);
    }
    LocalPage &lp = _local[page];
    if (with_data) {
        if (lp.frame == INVALID_PAGE)
            lp.frame = allocPinned("DSM cache frame");
        copyFrame(_links[peer].bounceIn, lp.frame);
        _kernel.mapManager().addWork(_kernel.costs().pageSwap);
    } else if (lp.frame == INVALID_PAGE) {
        // The home granted an in-place upgrade but our copy is gone (a
        // stale sharer record): fail the fault rather than map garbage.
        completeLocal(page, err::AGAIN);
        return rc(err::OK);
    }
    installLocal(page, lp.frame, write);
    completeLocal(page, err::OK);
    return rc(err::OK);
}

std::uint32_t
Dsm::handleFetch(NodeId peer, const std::uint32_t *p)
{
    std::uint32_t page = p[0];
    if (page >= _cfg.numPages || homeNode(page) != peer)
        return rc(err::INVAL);
    bool invalidate = p[1] != 0;
    LocalPage &lp = _local[page];
    if (lp.state == DsmPageState::INVALID || lp.frame == INVALID_PAGE)
        return rc(err::AGAIN);  // no copy to write back (stale recall)

    DsmMsg wb;
    wb.type = channel::DSM_WB;
    wb.payload[0] = page;
    wb.payload[1] = invalidate ? 0 : 1;     // we keep a read copy
    wb.withData = true;
    wb.data = readFrame(lp.frame);  // capture before the frame dies
    if (invalidate) {
        dropLocal(page);
        ++_invalidations;
    } else {
        lp.state = DsmPageState::READ_SHARED;
        if (_proc)
            _proc->space().pageTable().setWritable(
                pageOf(windowVaddr(page)), false);
    }
    _kernel.mapManager().addWork(_kernel.costs().pageSwap);
    sendMsg(peer, std::move(wb));
    return rc(err::OK);
}

std::uint32_t
Dsm::handleWb(NodeId peer, const std::uint32_t *p)
{
    std::uint32_t page = p[0];
    if (page >= _cfg.numPages || !isHome(page))
        return rc(err::INVAL);
    bool downgraded = p[1] != 0;
    DirEntry &d = _dir[page];
    // Split-brain fence: only a writeback from the life the write
    // grant was made to may land in the home frame. Anything else --
    // a node the directory no longer records as owner (the page was
    // re-homed behind its back), or a different life of the grantee
    // (p[4] is the sender's incarnation stamp) -- is a relic that
    // must not clobber the authoritative copy.
    std::uint32_t inc = p[4];
    if (d.owner != peer ||
        (Incarnation::observed(inc) &&
         Incarnation::observed(d.granteeIncarnation) &&
         !Incarnation::sameLife(inc, d.granteeIncarnation))) {
        ++_fencedWritebacks;
        _kernel.noteFencedDrop();
        SHRIMP_DTRACE("Dsm", _kernel.curTick(), "dsm",
                      "fenced writeback of page ", page, " from node ",
                      peer, " inc ", inc, " (owner ", d.owner,
                      " grantee inc ", d.granteeIncarnation, ")");
        return rc(err::STALE_EPOCH);
    }
    // Land the data in the home frame before acknowledging: once the
    // ack is written the writer may reuse its bounce path.
    copyFrame(_links[peer].bounceIn, d.homeFrame);
    _kernel.mapManager().addWork(_kernel.costs().pageSwap);
    d.owner = INVALID_NODE;
    d.granteeIncarnation = 0;
    if (downgraded && !contains(d.sharers, peer))
        d.sharers.push_back(peer);
    if (d.awaitingWb) {
        d.awaitingWb = false;
        if (d.busy)
            runHead(page);
    }
    return rc(err::OK);
}

std::uint32_t
Dsm::handleInval(NodeId peer, const std::uint32_t *p)
{
    std::uint32_t page = p[0];
    if (page >= _cfg.numPages || homeNode(page) != peer)
        return rc(err::INVAL);
    if (_local[page].state != DsmPageState::INVALID) {
        dropLocal(page);
        ++_invalidations;
    }
    _kernel.mapManager().addWork(_kernel.costs().mapInstallPerPage);
    return rc(err::OK);     // a stale shootdown acks OK as well
}

// ---------------------------------------------------------------------
// Node-failure integration
// ---------------------------------------------------------------------

void
Dsm::peerDied(NodeId peer)
{
    if (peer >= _links.size() || peer == _kernel.nodeId())
        return;

    failAllMsgs(peer);

    for (std::uint32_t page = 0; page < _cfg.numPages; ++page) {
        if (isHome(page)) {
            DirEntry &d = _dir[page];
            for (std::size_t i = d.sharers.size(); i-- > 0;)
                if (d.sharers[i] == peer)
                    d.sharers.erase(d.sharers.begin() +
                                    static_cast<std::ptrdiff_t>(i));
            // Drop the dead node's queued requests (the in-service
            // head, if it is one, fails through the grant-time check).
            auto &w = d.waiters;
            std::size_t keep = d.busy ? 1 : 0;
            for (std::size_t i = w.size(); i-- > keep;)
                if (w[i].requester == peer)
                    w.erase(w.begin() +
                            static_cast<std::ptrdiff_t>(i));
            if (d.owner == peer)
                ownerLost(page);
            else
                pump(page);
        } else if (homeNode(page) == peer) {
            // Our copy of a page homed there is orphaned; pending
            // faults can only fail.
            dropLocal(page);
            auto it = _reqs.find(page);
            if (it == _reqs.end())
                continue;
            auto &q = it->second;
            while (!q.empty()) {
                LocalReq r = std::move(q.front());
                q.pop_front();
                ++_hostdown;
                if (r.done)
                    r.done(err::HOSTDOWN);
            }
        }
    }
}

void
Dsm::peerRecovered(NodeId peer)
{
    for (std::uint32_t page = 0; page < _cfg.numPages; ++page) {
        if (!isHome(page))
            continue;
        DirEntry &d = _dir[page];
        if (d.errored && d.lostOwner == peer) {
            // Re-home: the page becomes servable again with the last
            // written-back contents in the home frame.
            d.errored = false;
            d.lostOwner = INVALID_NODE;
            ++_rehomes;
            pump(page);
        }
    }
}

void
Dsm::peerEpochChanged(NodeId peer, std::uint32_t inc)
{
    (void)inc;
    if (peer >= _links.size() || peer == _kernel.nodeId())
        return;

    // Messages addressed to the old life can never be acknowledged by
    // the new one (its RPC engine restarted from scratch).
    failAllMsgs(peer);

    for (std::uint32_t page = 0; page < _cfg.numPages; ++page) {
        if (isHome(page)) {
            DirEntry &d = _dir[page];
            for (std::size_t i = d.sharers.size(); i-- > 0;)
                if (d.sharers[i] == peer)
                    d.sharers.erase(d.sharers.begin() +
                                    static_cast<std::ptrdiff_t>(i));
            // Old-life requests are void; the new life re-requests.
            auto &w = d.waiters;
            std::size_t keep = d.busy ? 1 : 0;
            for (std::size_t i = w.size(); i-- > keep;)
                if (w[i].requester == peer)
                    w.erase(w.begin() +
                            static_cast<std::ptrdiff_t>(i));
            if (d.errored && d.lostOwner == peer) {
                // The peer's new life is proof its old one is gone --
                // the same evidence peerRecovered() acts on. Re-home
                // here too: a restart can outrun the failure detector
                // (never DEAD, so never "recovered"), and the doomed
                // recall RPC has already routed through ownerLost().
                // Exactly once either way: ownerLost() cleared the
                // owner field, so the revoke branch below cannot also
                // fire for this grant.
                d.errored = false;
                d.lostOwner = INVALID_NODE;
                ++_rehomes;
            }
            if (d.owner == peer) {
                // Revoke the old life's grant: the last written-back
                // copy in the home frame becomes authoritative again.
                // Exactly once per grant -- the owner field is cleared
                // here, so a second epoch change cannot re-home.
                d.owner = INVALID_NODE;
                d.granteeIncarnation = 0;
                d.awaitingWb = false;
                d.pendingAcks = 0;
                ++d.gen;
                ++_rehomes;
                if (d.busy && !d.waiters.empty()) {
                    if (d.waiters.front().requester == peer)
                        finishHead(page, err::STALE_EPOCH);
                    else
                        runHead(page);
                } else {
                    pump(page);
                }
            } else {
                pump(page);
            }
        } else if (homeNode(page) == peer) {
            // The home's directory restarted without us: our copy and
            // pending faults refer to state it no longer tracks.
            dropLocal(page);
            auto it = _reqs.find(page);
            if (it == _reqs.end())
                continue;
            auto &q = it->second;
            while (!q.empty()) {
                LocalReq r = std::move(q.front());
                q.pop_front();
                if (r.done)
                    r.done(err::STALE_EPOCH);
            }
        }
    }
}

void
Dsm::fenceSelf()
{
    // Our new life must not keep copies granted to the old one: the
    // home may have re-homed them while we were partitioned away, and
    // a surviving WRITE_EXCLUSIVE copy here would be a second owner.
    for (std::uint32_t page = 0; page < _cfg.numPages; ++page) {
        if (!isHome(page) &&
            _local[page].state != DsmPageState::INVALID) {
            dropLocal(page);
        }
    }
}

void
Dsm::reset()
{
    for (NodeId peer = 0; peer < _links.size(); ++peer) {
        if (peer == _kernel.nodeId())
            continue;
        PeerLink &l = _links[peer];
        ++l.gen;
        l.active = false;
        l.dmaPending = false;
        l.queue.clear();
    }
    for (std::uint32_t page = 0; page < _cfg.numPages; ++page) {
        dropLocal(page);
        auto it = _reqs.find(page);
        if (it != _reqs.end()) {
            auto &q = it->second;
            while (!q.empty()) {
                LocalReq r = std::move(q.front());
                q.pop_front();
                ++_hostdown;
                if (r.done)
                    r.done(err::HOSTDOWN);
            }
        }
        DirEntry &d = _dir[page];
        if (!d.homedHere)
            continue;
        // The directory restarts empty; peers that held copies saw us
        // die and dropped them symmetrically. Home frames (and their
        // last written-back contents) persist across the restart.
        d.sharers.clear();
        d.owner = INVALID_NODE;
        d.granteeIncarnation = 0;
        d.lostOwner = INVALID_NODE;
        d.errored = false;
        d.busy = false;
        d.pendingAcks = 0;
        d.awaitingWb = false;
        ++d.gen;
        d.waiters.clear();
    }
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

NodeId
Dsm::homeNode(std::uint32_t page) const
{
    SHRIMP_ASSERT(page < _cfg.numPages, "DSM page out of range ", page);
    return page % _kernel.numNodes();
}

bool
Dsm::isHome(std::uint32_t page) const
{
    return homeNode(page) == _kernel.nodeId();
}

DsmPageState
Dsm::localState(std::uint32_t page) const
{
    return _local.at(page).state;
}

PageNum
Dsm::localFrame(std::uint32_t page) const
{
    return _local.at(page).frame;
}

NodeId
Dsm::ownerOf(std::uint32_t page) const
{
    SHRIMP_ASSERT(_dir.at(page).homedHere, "not the home of ", page);
    return _dir[page].owner;
}

const std::vector<NodeId> &
Dsm::sharersOf(std::uint32_t page) const
{
    SHRIMP_ASSERT(_dir.at(page).homedHere, "not the home of ", page);
    return _dir[page].sharers;
}

bool
Dsm::errored(std::uint32_t page) const
{
    SHRIMP_ASSERT(_dir.at(page).homedHere, "not the home of ", page);
    return _dir[page].errored;
}

PageNum
Dsm::homeFrameOf(std::uint32_t page) const
{
    SHRIMP_ASSERT(_dir.at(page).homedHere, "not the home of ", page);
    return _dir[page].homeFrame;
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

void
Dsm::copyFrame(PageNum src, PageNum dst)
{
    std::vector<std::uint8_t> buf(PAGE_SIZE);
    _kernel.mem().read(pageBase(src), buf.data(), PAGE_SIZE);
    _kernel.mem().write(pageBase(dst), buf.data(), PAGE_SIZE);
}

std::vector<std::uint8_t>
Dsm::readFrame(PageNum frame) const
{
    std::vector<std::uint8_t> buf(PAGE_SIZE);
    _kernel.mem().read(pageBase(frame), buf.data(), PAGE_SIZE);
    return buf;
}

PageNum
Dsm::allocPinned(const char *what)
{
    auto f = _kernel.frames().alloc();
    SHRIMP_ASSERT(f, "out of frames for ", what);
    _kernel.frames().pin(*f);
    return *f;
}

Addr
Dsm::windowVaddr(std::uint32_t page) const
{
    return _cfg.baseVaddr + Addr{page} * PAGE_SIZE;
}

} // namespace shrimp
