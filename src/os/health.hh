/**
 * @file
 * HealthMonitor: a kernel-level liveness/failure detector.
 *
 * The paper assumes live peers; the only failure signal the
 * reproduction had was the NI's retry cap erroring mappings one by
 * one. This service generalizes that into a real failure detector:
 * every node periodically sends HEARTBEAT packets (NI control-queue
 * traffic, bypassing the FIFO and retransmit window) to every peer,
 * records a per-peer last-seen tick, and drives a three-state machine
 *
 *     ALIVE --silence >= suspectTimeout--> SUSPECT
 *     SUSPECT --silence >= deadTimeout--> DEAD (peerDead hook fires)
 *     DEAD --heartbeat arrives--> ALIVE (peerRecovered hook fires)
 *
 * External evidence (the retransmit layer exhausting its retry budget
 * toward a peer) can short-circuit straight to DEAD. The kernel hooks
 * peerDead/peerRecovered into mapping teardown and recovery.
 */

#ifndef SHRIMP_OS_HEALTH_HH
#define SHRIMP_OS_HEALTH_HH

#include <functional>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp
{

/** Tunables of the liveness service. */
struct HealthParams
{
    bool enabled = false;
    /** Keepalive send (and timeout evaluation) period. */
    Tick heartbeatPeriod = 100 * ONE_US;
    /** Silence before a peer turns SUSPECT. */
    Tick suspectTimeout = 400 * ONE_US;
    /** Silence before a SUSPECT peer is declared DEAD. */
    Tick deadTimeout = 1200 * ONE_US;
};

/** Liveness state of one peer as seen by this node. */
enum class PeerHealth : std::uint8_t
{
    ALIVE = 0,
    SUSPECT,
    DEAD,
};

const char *peerHealthName(PeerHealth s);

/** Per-node failure detector; one instance lives inside each Kernel. */
class HealthMonitor : public SimObject
{
  public:
    struct Hooks
    {
        /** Emit one HEARTBEAT packet toward @p peer. */
        std::function<void(NodeId peer)> sendHeartbeat;
        /** @p peer crossed into DEAD. */
        std::function<void(NodeId peer)> peerDead;
        /** A DEAD @p peer spoke again. */
        std::function<void(NodeId peer)> peerRecovered;
    };

    HealthMonitor(EventQueue &eq, std::string name, NodeId self,
                  unsigned num_nodes, const HealthParams &params,
                  Hooks hooks, stats::Group *parent_stats);

    /** Begin heartbeating; peers start with a full grace period. */
    void start();

    /** Local node crashed: stop sending and evaluating. */
    void pause();

    /** Local node restarted: resume with a fresh grace period. DEAD
     *  peers stay DEAD until their next heartbeat actually arrives. */
    void resume();

    /** NI hook: a HEARTBEAT from @p src arrived. */
    void heartbeatFrom(NodeId src);

    /**
     * External failure evidence (retry cap exhausted toward @p peer):
     * declare it DEAD immediately instead of waiting out the silence.
     */
    void reportPeerFailure(NodeId peer);

    PeerHealth peerState(NodeId peer) const;
    bool peerDead(NodeId peer) const
    {
        return peerState(peer) == PeerHealth::DEAD;
    }
    bool running() const { return _running; }

    std::uint64_t heartbeatsSent() const
    {
        return _heartbeatsSent.value();
    }
    std::uint64_t heartbeatsReceived() const
    {
        return _heartbeatsReceived.value();
    }
    std::uint64_t peersDeclaredDead() const
    {
        return _peersDeclaredDead.value();
    }
    std::uint64_t peersRecovered() const
    {
        return _peersRecovered.value();
    }

  private:
    struct PeerState
    {
        Tick lastSeen = 0;
        PeerHealth state = PeerHealth::ALIVE;
    };

    /** Periodic: send keepalives, then evaluate every peer's silence. */
    void tick();

    void transition(NodeId peer, PeerHealth to);

    HealthParams _params;
    NodeId _self;
    std::vector<PeerState> _peers;
    bool _running = false;
    EventFunctionWrapper _tickEvent;
    Hooks _hooks;

    stats::Group _stats;
    stats::Counter _heartbeatsSent{"heartbeatsSent",
                                   "keepalive packets emitted"};
    stats::Counter _heartbeatsReceived{"heartbeatsReceived",
                                       "keepalive packets accepted"};
    stats::Counter _suspects{"suspects",
                             "peer transitions into SUSPECT"};
    stats::Counter _peersDeclaredDead{"peersDeclaredDead",
                                      "peer transitions into DEAD"};
    stats::Counter _peersRecovered{"peersRecovered",
                                   "DEAD peers that spoke again"};
};

} // namespace shrimp

#endif // SHRIMP_OS_HEALTH_HH
