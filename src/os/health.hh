/**
 * @file
 * HealthMonitor: a kernel-level liveness/failure detector with
 * epoch-fenced membership.
 *
 * The paper assumes live peers; the only failure signal the
 * reproduction had was the NI's retry cap erroring mappings one by
 * one. This service generalizes that into a real failure detector:
 * every node periodically sends HEARTBEAT packets (NI control-queue
 * traffic, bypassing the FIFO and retransmit window) to every peer,
 * records a per-peer last-seen tick, and drives a three-state machine
 *
 *     ALIVE --silence >= suspectTimeout--> SUSPECT
 *     SUSPECT --silence >= deadTimeout--> DEAD (peerDead hook fires)
 *     DEAD --heartbeat arrives--> ALIVE (peerRecovered hook fires)
 *
 * External evidence (the retransmit layer exhausting its retry budget
 * toward a peer) can short-circuit straight to DEAD. The kernel hooks
 * peerDead/peerRecovered into mapping teardown and recovery.
 *
 * Partition tolerance (DESIGN.md section 14) adds two mechanisms:
 *
 *  - Incarnations. Every node carries a monotonic incarnation number,
 *    bumped when it restarts and when it recovers from the far side of
 *    a partition (a DEAD peer speaks again, or a quorum-stalled
 *    SUSPECT peer does). Heartbeats and kernel RPC records carry the
 *    sender's (incarnation, view-of-receiver) stamp; admitStamp()
 *    fences every message stamped with a stale incarnation of either
 *    endpoint, so a healed link cannot replay traffic from a peer's
 *    previous life (staleEpochRejects counts every fenced drop).
 *
 *  - Quorum-gated death. Silence alone only declares a peer DEAD when
 *    this node can still reach a strict majority of the machine
 *    (ALIVE peers + itself). A minority fragment of a partition
 *    therefore stalls its suspects instead of declaring the majority
 *    dead (partitionsDeclared counts the stalls); two-node machines
 *    have no possible majority and keep the pre-partition behavior.
 *    Hard external evidence (reportPeerFailure) still short-circuits.
 */

#ifndef SHRIMP_OS_HEALTH_HH
#define SHRIMP_OS_HEALTH_HH

#include <functional>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp
{

/**
 * Helpers over incarnation (life) numbers. A raw == on incarnation
 * fields outside health.* is a bug (the shrimp-epoch-compare lint rule
 * enforces it): 0 means "never observed" and must never fence, so
 * every consumer goes through these predicates instead.
 */
struct Incarnation
{
    /** Are @p a and @p b the same life of a node? */
    static bool
    sameLife(std::uint32_t a, std::uint32_t b)
    {
        return a == b;
    }

    /** Is @p a a strictly newer life than @p b? */
    static bool
    newerLife(std::uint32_t a, std::uint32_t b)
    {
        return a > b;
    }

    /** Has this life number actually been observed? (0 = never,
     *  and never-observed must not fence anything.) */
    static bool
    observed(std::uint32_t a)
    {
        return a != 0;
    }
};

/** Tunables of the liveness service. */
struct HealthParams
{
    bool enabled = false;
    /** Keepalive send (and timeout evaluation) period. */
    Tick heartbeatPeriod = 100 * ONE_US;
    /** Silence before a peer turns SUSPECT. */
    Tick suspectTimeout = 400 * ONE_US;
    /** Silence before a SUSPECT peer is declared DEAD. */
    Tick deadTimeout = 1200 * ONE_US;
};

/** Liveness state of one peer as seen by this node. */
enum class PeerHealth : std::uint8_t
{
    ALIVE = 0,
    SUSPECT,
    DEAD,
};

const char *peerHealthName(PeerHealth s);

/** Per-node failure detector; one instance lives inside each Kernel. */
class HealthMonitor : public SimObject
{
  public:
    struct Hooks
    {
        /** Emit one HEARTBEAT packet toward @p peer. */
        std::function<void(NodeId peer)> sendHeartbeat;
        /** @p peer crossed into DEAD. */
        std::function<void(NodeId peer)> peerDead;
        /** A DEAD @p peer spoke again. */
        std::function<void(NodeId peer)> peerRecovered;
        /** @p peer's known incarnation advanced: its previous life's
         *  channel/ownership state is stale and must be fenced. */
        std::function<void(NodeId peer, std::uint32_t inc)>
            peerEpochChanged;
        /** Our own incarnation was bumped to @p inc: the kernel
         *  fences this node's previous-life streams and grants. */
        std::function<void(std::uint32_t inc)> selfEpochBumped;
    };

    HealthMonitor(EventQueue &eq, std::string name, NodeId self,
                  unsigned num_nodes, const HealthParams &params,
                  Hooks hooks, stats::Group *parent_stats);

    /** Begin heartbeating; peers start with a full grace period. */
    void start();

    /** Local node crashed: stop sending and evaluating. */
    void pause();

    /** Local node restarted: resume with a fresh grace period and a
     *  new incarnation. DEAD peers stay DEAD until their next
     *  heartbeat actually arrives. */
    void resume();

    /** NI hook: a HEARTBEAT from @p src arrived carrying @p stamp. */
    void heartbeatFrom(NodeId src, std::uint64_t stamp);

    /**
     * External failure evidence (retry cap exhausted toward @p peer):
     * declare it DEAD immediately instead of waiting out the silence.
     */
    void reportPeerFailure(NodeId peer);

    PeerHealth peerState(NodeId peer) const;
    bool peerDead(NodeId peer) const
    {
        return peerState(peer) == PeerHealth::DEAD;
    }
    bool running() const { return _running; }

    // ---- epoch-fenced membership ----

    /** This node's current life number (starts at 1, never reused). */
    std::uint32_t selfIncarnation() const { return _selfInc; }

    /** Last incarnation observed from @p peer; 0 = never heard. */
    std::uint32_t peerIncarnation(NodeId peer) const;

    /** Start a new life: every receiver fences our old streams. */
    void bumpIncarnation(const char *why);

    /** Pack (selfIncarnation, view-of-@p peer) into one wire stamp. */
    std::uint64_t stampFor(NodeId peer) const;

    static std::uint32_t
    stampIncarnation(std::uint64_t stamp)
    {
        return static_cast<std::uint32_t>(stamp >> 32);
    }

    static std::uint32_t
    stampView(std::uint64_t stamp)
    {
        return static_cast<std::uint32_t>(stamp);
    }

    /**
     * The fence: admit or reject a message from @p src carrying
     * @p stamp. Rejects (counting staleEpochRejects) when the sender's
     * incarnation is older than the one we know, or when the message
     * is addressed to a previous life of this node. Admitting a newer
     * sender incarnation records it and fires peerEpochChanged.
     */
    bool admitStamp(NodeId src, std::uint64_t stamp);

    /** How checkStamp() judged a message's epoch stamp. */
    enum class StampVerdict
    {
        ADMIT,          //!< current life, current view
        STALE_SENDER,   //!< relic of an older life of the sender
        STALE_VIEW,     //!< live sender, but it has not seen our bump
    };

    /** A layer above fenced a message itself (e.g. the DSM writeback
     *  fence): account for it in the global stale-epoch counter. */
    void noteFencedDrop();

    /** Can this node still reach a strict majority of the machine? */
    bool quorumReachable() const;

    std::uint64_t heartbeatsSent() const
    {
        return _heartbeatsSent.value();
    }
    std::uint64_t heartbeatsReceived() const
    {
        return _heartbeatsReceived.value();
    }
    std::uint64_t peersDeclaredDead() const
    {
        return _peersDeclaredDead.value();
    }
    std::uint64_t peersRecovered() const
    {
        return _peersRecovered.value();
    }
    std::uint64_t partitionsDeclared() const
    {
        return _partitionsDeclared.value();
    }
    std::uint64_t staleEpochRejects() const
    {
        return _staleEpochRejects.value();
    }

  private:
    struct PeerState
    {
        Tick lastSeen = 0;
        PeerHealth state = PeerHealth::ALIVE;
        /** Last incarnation this peer was observed at (0 = never). */
        std::uint32_t incarnation = 0;
        /** Dead timeout expired but no quorum: stalled at SUSPECT. */
        bool quorumStalled = false;
    };

    /** Classify @p stamp, recording newer sender incarnations and
     *  counting/tracing rejects for both stale verdicts. */
    StampVerdict checkStamp(NodeId src, std::uint64_t stamp);

    /** Periodic: send keepalives, then evaluate every peer's silence. */
    void tick();

    void transition(NodeId peer, PeerHealth to);

    HealthParams _params;
    NodeId _self;
    std::vector<PeerState> _peers;
    bool _running = false;
    std::uint32_t _selfInc = 1;
    EventFunctionWrapper _tickEvent;
    Hooks _hooks;

    stats::Group _stats;
    stats::Counter _heartbeatsSent{"heartbeatsSent",
                                   "keepalive packets emitted"};
    stats::Counter _heartbeatsReceived{"heartbeatsReceived",
                                       "keepalive packets accepted"};
    stats::Counter _suspects{"suspects",
                             "peer transitions into SUSPECT"};
    stats::Counter _peersDeclaredDead{"peersDeclaredDead",
                                      "peer transitions into DEAD"};
    stats::Counter _peersRecovered{"peersRecovered",
                                   "DEAD peers that spoke again"};
    stats::Counter _partitionsDeclared{
        "partitionsDeclared",
        "dead timeouts stalled at SUSPECT for lack of a quorum"};
    stats::Counter _staleEpochRejects{
        "staleEpochRejects",
        "messages fenced: stale incarnation of either endpoint"};
};

} // namespace shrimp

#endif // SHRIMP_OS_HEALTH_HH
