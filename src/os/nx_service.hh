/**
 * @file
 * NxService: the kernel-level NX/2-style message-passing baseline the
 * paper compares against (Section 5.2, "NX/2 Primitives").
 *
 * This models the traditional software architecture of the iPSC/2's
 * NX/2: csend/crecv are system calls; messages pass through
 * kernel-managed buffers (one copy on each side); the kernel's fast
 * paths cost 222 / 261 instructions; and each message involves DMA
 * send/receive interrupts. It runs over the same simulated hardware,
 * so the comparison against the user-level SHRIMP primitives isolates
 * exactly the software-architecture difference the paper highlights:
 * user/kernel crossings, kernel buffering, and per-message interrupts.
 *
 * Messages are typed (16-bit), matched FIFO per type, with the paper's
 * restriction that each type has a single sender. One message may be
 * in flight per ordered node pair; a sender blocks until the
 * receiver's kernel returns the slot credit.
 */

#ifndef SHRIMP_OS_NX_SERVICE_HH
#define SHRIMP_OS_NX_SERVICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "os/syscalls.hh"
#include "sim/types.hh"

namespace shrimp
{

class Kernel;
class Process;
class ExecContext;

/** Kernel-level buffered message passing (the NX/2 baseline). */
class NxService
{
  public:
    /** Kernel buffer pages per ordered node pair (max message size). */
    static constexpr std::size_t slotPages = 2;
    static constexpr Addr maxMessageBytes = slotPages * PAGE_SIZE;

    /** Control page layout (one per ordered pair direction). */
    static constexpr Addr ctlDoorbellSeq = 0;
    static constexpr Addr ctlType = 4;
    static constexpr Addr ctlNbytes = 8;
    static constexpr Addr ctlCreditSeq = 16;

    explicit NxService(Kernel &kernel);

    // ---- boot wiring (mirrors the kernel map channel wiring) ----
    void allocatePages();
    PageNum dataInFrame(NodeId peer, std::size_t page) const;
    PageNum ctlInFrame(NodeId peer) const;
    void wireTo(NodeId peer, const std::vector<PageNum> &data_frames,
                PageNum ctl_frame);

    /** Does @p frame belong to this service (for arrival routing)? */
    bool ownsFrame(PageNum frame) const;

    /** Arrival interrupt on one of our frames; returns instructions
     *  of kernel work performed. */
    std::uint64_t handleArrival(NodeId unused_hint, PageNum frame);

    /** SYS_NX_CSEND implementation. Returns the resume tick, or
     *  nullopt if the process blocked. */
    std::optional<Tick> csend(ExecContext &ctx, const NxArgs &args,
                              Tick now);

    /** SYS_NX_CRECV implementation. */
    std::optional<Tick> crecv(ExecContext &ctx, const NxArgs &args,
                              Tick now);

    std::uint64_t messagesSent() const { return _sent; }
    std::uint64_t messagesDelivered() const { return _delivered; }

  private:
    struct PendingMessage
    {
        NodeId from = INVALID_NODE;
        std::uint32_t type = 0;
        std::uint32_t nbytes = 0;
    };

    struct BlockedReceiver
    {
        Process *proc = nullptr;
        std::uint32_t type = 0;
        Addr buf = 0;
    };

    struct BlockedSender
    {
        Process *proc = nullptr;
        NxArgs args;
    };

    /** State of one in-progress outgoing message (copy + DMA phase). */
    struct TransferState
    {
        bool active = false;
        Process *proc = nullptr;
        NodeId node = INVALID_NODE;
        std::uint32_t type = 0;
        std::uint32_t nbytes = 0;
        std::uint32_t page = 0;         //!< slot page being DMA-ed
        Addr pendingBase = 0;           //!< DMA base we are waiting on
    };

    struct PeerState
    {
        std::vector<PageNum> dataOut;   //!< local frames, mapped out
        std::vector<PageNum> dataIn;    //!< local frames, mapped in
        PageNum ctlOut = INVALID_PAGE;
        PageNum ctlIn = INVALID_PAGE;

        std::uint32_t sendSeq = 0;      //!< doorbells we have rung
        std::uint32_t creditSeen = 0;   //!< credits returned to us
        std::uint32_t recvSeqSeen = 0;  //!< doorbells we have consumed
        bool sendInProgress = false;    //!< copy/DMA phase active
        TransferState xfer;
        std::deque<BlockedSender> sendWaiters;
        std::optional<PendingMessage> pending;  //!< undelivered arrival
    };

    /** Slot is free when every doorbell we rang has been credited. */
    bool
    slotFree(const PeerState &peer) const
    {
        return !peer.sendInProgress && peer.sendSeq == peer.creditSeen;
    }

    /** Copy + DMA + doorbell for one message (slot already free). */
    void beginTransfer(Process &proc, const NxArgs &args);

    /** Claim the (shared) DMA engine for the next slot page. */
    void startNextDmaPage(NodeId node);

    /** DeliberateDma completion hook; matches against our transfers. */
    void dmaCompleted(Addr base);

    /** Doorbell + sender wakeup once all pages are on the wire. */
    void finishSend(NodeId node);

    /** Try to deliver a pending message to a blocked receiver. */
    std::uint64_t tryDeliver(NodeId from);

    /** Copy a delivered message into a receiver's buffer + credit. */
    std::uint64_t deliverTo(NodeId from, Process &proc, Addr buf);

    void writeCtlWord(NodeId peer, Addr offset, std::uint32_t value);
    std::uint32_t readCtlWord(NodeId peer, Addr offset) const;

    Kernel &_kernel;
    std::vector<PeerState> _peers;
    std::unordered_map<PageNum, NodeId> _frameOwner;
    std::unordered_map<PageNum, NodeId> _ctlFrameOwner;
    std::vector<BlockedReceiver> _blockedReceivers;

    std::uint64_t _sent = 0;
    std::uint64_t _delivered = 0;
};

} // namespace shrimp

#endif // SHRIMP_OS_NX_SERVICE_HH
