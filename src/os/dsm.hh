/**
 * @file
 * Dsm: distributed shared memory over virtual memory-mapped
 * communication -- the natural proof of the paper's thesis that the
 * network is an extension of the memory system.
 *
 * A fixed window of pages is interleaved across the machine by home
 * node (page % nodes). Each home node keeps the ownership directory
 * for its pages: the set of read sharers, the single write-exclusive
 * owner, and a pinned home frame holding the last written-back copy.
 * A page fault becomes a VMMC transaction: the faulting kernel sends a
 * DSM_GET to the home over the kernel RPC channel; the home serializes
 * requests per page, recalls the page from an exclusive owner
 * (DSM_FETCH + deliberate-DMA writeback) or shoots down read sharers
 * (DSM_INVAL, the Section 4.4 invalidation path) as needed, and then
 * grants the page with a deliberate-DMA page transfer followed by a
 * DSM_PUT; the requester maps the frame and resumes the faulting
 * instruction.
 *
 * All control traffic rides the kernel RPC channel, so retransmission,
 * congestion control and admission control apply unchanged. Page data
 * travels through one pinned bounce frame per ordered node pair; the
 * receiver copies the bounce frame out inside the RPC request handler,
 * before writing the acknowledgement, and the sender starts its next
 * message to that peer only after the ack -- so with in-order delivery
 * the bounce frame is never overwritten while still holding live data,
 * and control messages never overtake the page data they describe.
 *
 * Failure semantics: when the failure detector declares a node DEAD,
 * pages it owned exclusively become errored at their home (faults
 * answer err::HOSTDOWN, nothing hangs) until the owner recovers, at
 * which point the page is re-homed with the last written-back
 * contents. Requesters symmetrically drop cached copies of pages
 * homed on a dead node and fail pending faults with HOSTDOWN.
 */

#ifndef SHRIMP_OS_DSM_HH
#define SHRIMP_OS_DSM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "os/map_manager.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp
{

class Kernel;
class Process;

/** Configuration of the DSM service (SystemConfig::dsm). */
struct DsmConfig
{
    bool enabled = false;
    /** Pages in the shared window, interleaved home = page % nodes. */
    std::uint32_t numPages = 16;
    /** Base virtual address of the shared window in attached
     *  processes (well above the user heap's bump allocator). */
    Addr baseVaddr = 0x4000'0000;
    /**
     * Minimum time the home waits after granting a page before
     * serving the next waiter for it. Without this, a recall or
     * shootdown can reach the grantee before its CPU re-executes the
     * faulting instruction, and under contention (spin-waiters
     * against a writer) the page ping-pongs forever with nobody
     * making progress. The window must cover the page-data DMA plus
     * the trap-exit and re-execution time; it only costs anything on
     * contended pages (an empty waiter queue never waits).
     */
    Tick grantHold = 200 * ONE_US;
};

/** Local state of one DSM page on one node. */
enum class DsmPageState : std::uint8_t
{
    INVALID,            //!< no local copy
    READ_SHARED,        //!< read-only copy; home tracks us as a sharer
    WRITE_EXCLUSIVE,    //!< sole writable copy machine-wide
};

const char *dsmPageStateName(DsmPageState s);

/** The per-node DSM service (owned by the Kernel). */
class Dsm
{
  public:
    Dsm(Kernel &kernel, const DsmConfig &cfg);

    // ---- boot wiring (mirrors the kernel channel / NX wiring) ----

    /** Allocate pinned home frames and per-peer bounce/staging
     *  frames; install the incoming NIPT state. */
    void allocatePages();

    /** Local bounce frame that receives page data from @p peer. */
    PageNum bounceInFrame(NodeId peer) const;

    /** Wire our outgoing staging frame at @p peer's bounce frame. */
    void wireTo(NodeId peer, PageNum peer_bounce_frame);

    /** Attach one process: the DSM window appears at baseVaddr and
     *  pages fault in on demand. One process per node. */
    void attach(Process &proc);

    // ---- the fault path ----

    /** Does a fault at (@p proc, @p vaddr) fall in the DSM window? */
    bool managesFault(const Process &proc, Addr vaddr) const;

    /** Service a DSM fault: @p done fires with err::OK once the page
     *  is mapped (or an errno, e.g. err::HOSTDOWN). */
    void faultOn(Process &proc, Addr vaddr, bool write,
                 std::function<void(std::uint64_t)> done);

    /**
     * Host/test driven acquire: bring @p page to READ_SHARED
     * (@p write false) or WRITE_EXCLUSIVE (@p write true) locally.
     * Also installs the window PTE when a process is attached.
     * Requests to one page are served FIFO per node and serialized
     * machine-wide by the page's home.
     */
    void acquire(std::uint32_t page, bool write,
                 std::function<void(std::uint64_t)> done);

    // ---- RPC plumbing (called from MapManager dispatch) ----

    /** Is @p type one of ours (DSM_GET .. DSM_INVAL)? */
    static bool handlesRpc(std::uint32_t type);

    /** Handle an incoming DSM request; returns resp[0] (an errno). */
    std::uint32_t handleRpc(NodeId peer, std::uint32_t type,
                            const std::uint32_t *payload,
                            std::uint32_t *resp);

    // ---- node-failure integration (driven by the Kernel) ----

    /** Peer declared DEAD: error pages it owned, drop it from sharer
     *  sets and waiter queues, drop our copies of pages it homes, and
     *  fail everything queued toward it with HOSTDOWN. Idempotent. */
    void peerDied(NodeId peer);

    /** A DEAD peer recovered: re-home pages errored on its account
     *  (contents = last home writeback). */
    void peerRecovered(NodeId peer);

    /**
     * Peer @p peer started a new life (incarnation @p inc) without
     * necessarily ever being declared DEAD here (partition heal).
     * Everything bound to its old life is void: grants it held are
     * revoked (the page re-homes to the last written-back copy,
     * exactly once, since the owner field is cleared), its sharer and
     * waiter records are dropped, and our copies of pages it homes are
     * discarded (its directory no longer knows about them).
     */
    void peerEpochChanged(NodeId peer, std::uint32_t inc);

    /**
     * This node started a new life (partition heal or restart) while
     * its memory survived: copies of remotely-homed pages may have
     * been re-homed behind our back, so holding on to them could
     * create a second WRITE_EXCLUSIVE owner. Drop them all.
     */
    void fenceSelf();

    /** This node restarted: all local copies and pending requests are
     *  gone; the directory restarts empty (home frames persist). */
    void reset();

    // ---- introspection (tests, chaos invariants) ----

    std::uint32_t numPages() const { return _cfg.numPages; }
    Addr baseVaddr() const { return _cfg.baseVaddr; }
    NodeId homeNode(std::uint32_t page) const;
    bool isHome(std::uint32_t page) const;

    DsmPageState localState(std::uint32_t page) const;
    PageNum localFrame(std::uint32_t page) const;

    /** Home-side directory views (page must be homed here). */
    NodeId ownerOf(std::uint32_t page) const;
    const std::vector<NodeId> &sharersOf(std::uint32_t page) const;
    bool errored(std::uint32_t page) const;
    PageNum homeFrameOf(std::uint32_t page) const;

    std::uint64_t faults() const { return _faults.value(); }
    std::uint64_t fetches() const { return _fetches.value(); }
    std::uint64_t invalidations() const
    {
        return _invalidations.value();
    }
    std::uint64_t rehomes() const { return _rehomes.value(); }
    std::uint64_t hostdownFaults() const { return _hostdown.value(); }
    std::uint64_t fencedWritebacks() const
    {
        return _fencedWritebacks.value();
    }
    const stats::Histogram &faultLatency() const
    {
        return _faultLatency;
    }

  private:
    // ---- requester side ----

    struct LocalPage
    {
        DsmPageState state = DsmPageState::INVALID;
        PageNum frame = INVALID_PAGE;
    };

    struct LocalReq
    {
        std::uint64_t id = 0;
        bool write = false;
        bool issued = false;    //!< head request sent to the home
        std::function<void(std::uint64_t)> done;
        Tick start = 0;
    };

    static bool satisfied(const LocalPage &lp, bool write);

    /** Issue the head request of @p page's local queue. */
    void issueHead(std::uint32_t page);

    /** Complete the head request with @p status (OK samples the fault
     *  latency histogram), then drain/issue the rest of the queue. */
    void completeLocal(std::uint32_t page, std::uint64_t status);

    /** Like completeLocal but only if the head is still request
     *  @p id (deferred synthetic failures may arrive stale). */
    void completeLocalIf(std::uint32_t page, std::uint64_t id,
                         std::uint64_t status);

    /** Map @p frame at the page's window vaddr (if attached) and set
     *  the local state. */
    void installLocal(std::uint32_t page, PageNum frame, bool write);

    /** Drop the local copy: unmap the PTE and free a cache frame. */
    void dropLocal(std::uint32_t page);

    // ---- home-side directory ----

    struct HomeReq
    {
        NodeId requester = INVALID_NODE;
        bool write = false;
        /** Requester claimed a READ_SHARED copy in its DSM_GET; a
         *  write grant can skip the data transfer only when this and
         *  the directory's sharer set agree (an asymmetric failure
         *  flap can make either side stale). */
        bool haveCopy = false;
    };

    struct DirEntry
    {
        bool homedHere = false;
        PageNum homeFrame = INVALID_PAGE;
        std::vector<NodeId> sharers;
        NodeId owner = INVALID_NODE;
        /** Incarnation of the owner's life the write grant was made
         *  to (0 = health off). A DSM_WB stamped from any other life
         *  of the grantee is fenced (split-brain protection). */
        std::uint32_t granteeIncarnation = 0;
        /** Owner whose death errored the page (for re-homing). */
        NodeId lostOwner = INVALID_NODE;
        bool errored = false;
        bool busy = false;          //!< head waiter being served
        unsigned pendingAcks = 0;   //!< DSM_INVAL acks outstanding
        bool awaitingWb = false;    //!< DSM_FETCH sent, writeback due
        /** Bumped whenever the in-progress sequence dies (finish,
         *  owner loss, reset); orphans stale FETCH/INVAL callbacks. */
        std::uint64_t gen = 0;
        /** Tick of the last successful grant; the pump will not take
         *  up the next waiter before lastGrant + cfg.grantHold. */
        Tick lastGrant = 0;
        bool pumpDeferred = false;  //!< hold-expiry pump scheduled
        std::deque<HomeReq> waiters;
    };

    void dirEnqueue(std::uint32_t page, NodeId requester, bool write,
                    bool haveCopy);
    void pump(std::uint32_t page);

    /** Drive the head waiter one step; re-entrant -- called again
     *  after each writeback / invalidation ack until it grants. */
    void runHead(std::uint32_t page);

    void grantRead(std::uint32_t page);
    void grantWrite(std::uint32_t page);

    /** Pop the head waiter with @p status (error PUT to remote
     *  requesters), then pump the next. */
    void finishHead(std::uint32_t page, std::uint64_t status);

    void ackInval(std::uint32_t page, std::uint64_t gen);

    /** The exclusive owner's copy is unrecoverable: error the page
     *  and fail the head waiter. Idempotent. */
    void ownerLost(std::uint32_t page);

    // ---- ordered per-peer message queue (control + page data) ----

    struct DsmMsg
    {
        std::uint32_t type = 0;
        std::array<std::uint32_t, channel::payloadWords> payload{};
        bool withData = false;
        /** Page image captured at enqueue time (the source frame may
         *  be freed or rewritten before the transfer starts). */
        std::vector<std::uint8_t> data;
        std::function<void(const std::uint32_t *resp)> onResponse;
    };

    struct PeerLink
    {
        PageNum bounceIn = INVALID_PAGE;    //!< peer's data lands here
        PageNum stagingOut = INVALID_PAGE;  //!< DMA source toward peer
        std::deque<DsmMsg> queue;
        bool active = false;        //!< head sent, awaiting its ack
        bool dmaPending = false;
        /** Bumped on queue teardown; orphans DMA retries and acks. */
        std::uint64_t gen = 0;
    };

    void sendMsg(NodeId dst, DsmMsg msg);
    void startNext(NodeId dst);
    void startDma(NodeId dst, std::uint64_t gen);
    void postMsgRpc(NodeId dst);
    void msgAcked(NodeId dst, std::uint64_t gen,
                  const std::uint32_t *resp);
    /** Fail every queued message toward @p dst with HOSTDOWN
     *  (responses run as deferred events, never re-entrantly). */
    void failAllMsgs(NodeId dst);
    void dmaCompleted(Addr base);

    // ---- request handlers (home / owner / sharer side) ----

    std::uint32_t handleGet(NodeId peer, const std::uint32_t *p);
    std::uint32_t handlePut(NodeId peer, const std::uint32_t *p);
    std::uint32_t handleFetch(NodeId peer, const std::uint32_t *p);
    std::uint32_t handleWb(NodeId peer, const std::uint32_t *p);
    std::uint32_t handleInval(NodeId peer, const std::uint32_t *p);

    // ---- helpers ----

    void copyFrame(PageNum src, PageNum dst);
    std::vector<std::uint8_t> readFrame(PageNum frame) const;
    PageNum allocPinned(const char *what);
    Addr windowVaddr(std::uint32_t page) const;

    Kernel &_kernel;
    DsmConfig _cfg;
    Process *_proc = nullptr;

    std::vector<LocalPage> _local;
    std::map<std::uint32_t, std::deque<LocalReq>> _reqs;
    std::uint64_t _nextReqId = 1;

    std::vector<DirEntry> _dir;
    std::vector<PeerLink> _links;

    stats::Group _stats;
    stats::Counter _faults{"dsmFaults",
                           "DSM faults not satisfied locally"};
    stats::Counter _fetches{"dsmFetches",
                            "fetch-page recalls sent to owners"};
    stats::Counter _invalidations{
        "dsmInvalidations", "sharer shootdowns applied locally"};
    stats::Counter _rehomes{
        "dsmRehomes", "errored pages re-homed after owner recovery"};
    stats::Counter _hostdown{
        "dsmHostdownFaults", "DSM faults failed with err::HOSTDOWN"};
    stats::Counter _pagesSent{
        "dsmPagesSent", "page images DMA-ed to peers"};
    stats::Counter _fencedWritebacks{
        "dsmFencedWritebacks",
        "writebacks fenced: not from the granted owner's life"};
    stats::Histogram _faultLatency{
        "dsmFaultLatency",
        "fault-to-resume latency of DSM faults, in ticks"};
};

} // namespace shrimp

#endif // SHRIMP_OS_DSM_HH
