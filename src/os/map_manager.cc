#include "os/map_manager.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace shrimp
{

MapManager::MapManager(Kernel &kernel)
    : _kernel(kernel), _peers(kernel.numNodes())
{
}

// ---------------------------------------------------------------------
// RPC engine
// ---------------------------------------------------------------------

void
MapManager::sendRpc(NodeId peer, KernelRpc rpc)
{
    SHRIMP_ASSERT(peer < _peers.size() && peer != _kernel.nodeId(),
                  "bad RPC peer ", peer);
    PeerState &state = _peers[peer];
    state.queue.push_back(std::move(rpc));
    if (!state.inFlight)
        transmit(peer, state);
}

void
MapManager::transmit(NodeId peer, PeerState &state)
{
    SHRIMP_ASSERT(!state.inFlight && !state.queue.empty(),
                  "bad transmit state");
    state.current = std::move(state.queue.front());
    state.queue.pop_front();
    state.inFlight = true;
    ++_rpcsSent;
    stampPayload(peer, state.current.payload.data());
    writeRecord(peer, channel::reqOffset, state.nextSeq++,
                state.current.type, state.current.payload.data());
}

void
MapManager::stampPayload(NodeId peer, std::uint32_t *words) const
{
    if (auto *h = _kernel.health()) {
        std::uint64_t stamp = h->stampFor(peer);
        words[4] = HealthMonitor::stampIncarnation(stamp);
        words[5] = HealthMonitor::stampView(stamp);
    }
}

void
MapManager::writeRecord(NodeId peer, Addr rec_offset, std::uint32_t seq,
                        std::uint32_t type, const std::uint32_t *payload)
{
    // Payload first, then type, then the seq doorbell: with in-order
    // delivery, a visible seq implies a complete record.
    for (unsigned i = 0; i < channel::payloadWords; ++i) {
        _kernel.writeChannelWord(peer,
                                 rec_offset + channel::payloadWord + 4 * i,
                                 payload[i]);
    }
    _kernel.writeChannelWord(peer, rec_offset + channel::typeWord, type);
    _kernel.writeChannelWord(peer, rec_offset + channel::seqWord, seq);
}

std::uint64_t
MapManager::handleChannelArrival(NodeId peer)
{
    _workAccum = 0;
    PeerState &state = _peers[peer];

    // Incoming request?
    std::uint32_t req_seq =
        _kernel.readChannelWord(peer, channel::reqOffset +
                                          channel::seqWord);
    if (req_seq != state.lastReqSeen && req_seq != 0) {
        state.lastReqSeen = req_seq;
        std::uint32_t type = _kernel.readChannelWord(
            peer, channel::reqOffset + channel::typeWord);
        std::uint32_t payload[channel::payloadWords];
        for (unsigned i = 0; i < channel::payloadWords; ++i) {
            payload[i] = _kernel.readChannelWord(
                peer, channel::reqOffset + channel::payloadWord + 4 * i);
        }

        // Epoch fence: a request stamped from a stale life of either
        // endpoint is refused without dispatching. Admitting a newer
        // life fires peerEpochChanged, which resets this engine
        // re-entrantly; re-record the doorbell afterwards so the
        // request is not dispatched a second time.
        bool admitted = true;
        if (auto *h = _kernel.health()) {
            admitted = h->admitStamp(
                peer, (static_cast<std::uint64_t>(payload[4]) << 32) |
                          payload[5]);
        }
        state.lastReqSeen = req_seq;

        addWork(_kernel.costs().rpcDispatch);
        std::uint32_t resp[channel::payloadWords] = {};
        if (!admitted) {
            resp[0] = static_cast<std::uint32_t>(err::STALE_EPOCH);
        } else {
            switch (type) {
              case channel::MAP_PAGE:
                resp[0] = handleMapPage(peer, payload, resp);
                break;
              case channel::UNMAP_PAGE:
                resp[0] = handleUnmapPage(peer, payload);
                break;
              case channel::INVALIDATE:
                resp[0] = handleInvalidate(peer, payload);
                break;
              default:
                // DSM protocol types (or garbage -> err::INVAL).
                resp[0] = _kernel.dsmRpc(peer, type, payload, resp);
                break;
            }
        }
        stampPayload(peer, resp);
        writeRecord(peer, channel::respOffset, req_seq, type, resp);
    }

    // Incoming response to our in-flight request?
    std::uint32_t resp_seq =
        _kernel.readChannelWord(peer, channel::respOffset +
                                          channel::seqWord);
    if (state.inFlight && resp_seq == state.nextSeq - 1 &&
        resp_seq != state.lastRespSeen) {
        std::uint32_t resp[channel::payloadWords];
        for (unsigned i = 0; i < channel::payloadWords; ++i) {
            resp[i] = _kernel.readChannelWord(
                peer, channel::respOffset + channel::payloadWord + 4 * i);
        }
        // Epoch fence. Admitting a newer life fires peerEpochChanged,
        // which resets this engine re-entrantly and dooms the
        // in-flight RPC with err::STALE_EPOCH — hence the re-check of
        // inFlight below.
        bool admitted = true;
        if (auto *h = _kernel.health()) {
            admitted = h->admitStamp(
                peer,
                (static_cast<std::uint64_t>(resp[4]) << 32) | resp[5]);
        }
        if (state.inFlight) {
            state.lastRespSeen = resp_seq;
            state.inFlight = false;
            KernelRpc completed = std::move(state.current);
            if (!admitted) {
                // A stale-life response must not complete the RPC as
                // a success, but dropping it silently would wedge the
                // engine; doom the RPC instead.
                resp[0] = static_cast<std::uint32_t>(err::STALE_EPOCH);
                for (unsigned i = 1; i < channel::payloadWords; ++i)
                    resp[i] = 0;
            }
            if (!state.queue.empty())
                transmit(peer, state);
            if (completed.onResponse)
                completed.onResponse(resp);
        }
    }

    return _workAccum;
}

// ---------------------------------------------------------------------
// Request handlers (receiver side)
// ---------------------------------------------------------------------

std::uint32_t
MapManager::handleMapPage(NodeId peer, const std::uint32_t *p,
                          std::uint32_t *resp)
{
    Pid dst_pid = p[0];
    PageNum dst_vpage = p[1];
    auto mode = static_cast<UpdateMode>(p[2]);
    std::uint32_t flags = p[3];
    (void)mode;

    addWork(_kernel.costs().mapRemotePerPage);

    Process *proc = _kernel.findProcess(dst_pid);
    if (!proc || proc->reaped)
        return err::NOPROC;

    Pte *pte = proc->space().pageTable().find(dst_vpage);
    if (!pte) {
        // Paged out? Bring it back so the frame can receive data.
        if (_kernel.inSwap(dst_pid, dst_vpage)) {
            addWork(_kernel.costs().pageSwap);
            std::uint64_t e = _kernel.pageIn(*proc, dst_vpage);
            if (e != err::OK)
                return static_cast<std::uint32_t>(e);
            pte = proc->space().pageTable().find(dst_vpage);
        }
        if (!pte)
            return err::INVAL;
    }
    if (!pte->writable || !pte->user)
        return err::PERM;   // protection check, once, at map time

    PageNum frame = pte->frame;
    InRecord rec;
    rec.pid = dst_pid;
    rec.vpage = dst_vpage;
    rec.srcNode = peer;
    rec.flags = flags;
    rec.pinned = _kernel.consistencyPolicy() == ConsistencyPolicy::PIN;
    recordInDirect(rec, frame,
                   (flags & map_flags::ARRIVAL_INTERRUPT) != 0);

    resp[1] = static_cast<std::uint32_t>(frame);
    return err::OK;
}

std::uint32_t
MapManager::handleUnmapPage(NodeId peer, const std::uint32_t *p)
{
    Pid dst_pid = p[0];
    PageNum dst_vpage = p[1];

    addWork(_kernel.costs().mapRemotePerPage);

    PageNum frame = frameOf(dst_pid, dst_vpage);

    for (auto &[f, recs] : _inByFrame) {
        if (frame != INVALID_PAGE && f != frame)
            continue;
        for (auto it = recs.begin(); it != recs.end(); ++it) {
            if (it->pid == dst_pid && it->vpage == dst_vpage &&
                it->srcNode == peer) {
                if (it->pinned)
                    _kernel.frames().unpin(f);
                recs.erase(it);
                // Last incoming mapping gone: close the page.
                if (recs.empty()) {
                    NiptEntry &e = _kernel.ni().nipt().entry(f);
                    e.mappedIn = false;
                    e.interruptOnArrival = false;
                    e.inSources.clear();
                } else {
                    NiptEntry &e = _kernel.ni().nipt().entry(f);
                    e.inSources.clear();
                    for (const InRecord &r : recs)
                        e.inSources.push_back(r.srcNode);
                }
                return err::OK;
            }
        }
    }
    return err::INVAL;
}

std::uint32_t
MapManager::handleInvalidate(NodeId peer, const std::uint32_t *p)
{
    PageNum remote_frame = p[0];
    ++_invalidationsReceived;
    addWork(_kernel.costs().mapRemotePerPage);

    // Invalidate every active mapping half we have toward that frame:
    // clear the NIPT entry and make the source virtual page read-only
    // so the next store faults and triggers a REMAP (Section 4.4).
    for (OutRecord &rec : _out) {
        if (rec.dstNode != peer || rec.dstFrame != remote_frame ||
            rec.invalidated) {
            continue;
        }
        rec.invalidated = true;
        PageNum frame = frameOf(rec.pid, rec.vpage);
        if (frame != INVALID_PAGE)
            clearOutHalf(frame, rec);
        Process *proc = _kernel.findProcess(rec.pid);
        if (proc)
            proc->space().pageTable().setWritable(rec.vpage, false);
    }
    return err::OK;
}

// ---------------------------------------------------------------------
// NIPT installation helpers
// ---------------------------------------------------------------------

std::optional<bool>
MapManager::slotForHalf(const NiptEntry &e, Addr begin, Addr end) const
{
    bool whole = begin == 0 && end == PAGE_SIZE;
    bool low_valid = e.outLow.valid();
    bool high_valid = e.outHigh.valid();

    if (whole)
        return (low_valid || high_valid)
                   ? std::nullopt
                   : std::optional<bool>(false);
    if (low_valid && high_valid)
        return std::nullopt;    // both hardware slots taken
    if (!low_valid && !high_valid) {
        // First half on the page: a half reaching the page end sits
        // in the high slot, anything else in the low slot.
        return end == PAGE_SIZE;
    }
    if (low_valid) {
        // The low slot covers [0, split); the new half must lie
        // entirely at or above the split to take the high slot.
        return begin >= e.splitOffset ? std::optional<bool>(true)
                                      : std::nullopt;
    }
    // The high slot covers [split, PAGE_SIZE).
    return end <= e.splitOffset ? std::optional<bool>(false)
                                : std::nullopt;
}

bool
MapManager::canInstallHalf(PageNum frame, Addr begin, Addr end) const
{
    return slotForHalf(_kernel.ni().nipt().entry(frame), begin, end)
        .has_value();
}

void
MapManager::installOutHalf(PageNum frame, OutRecord &rec)
{
    NiptEntry &e = _kernel.ni().nipt().entry(frame);
    OutMapping m;
    m.mode = rec.mode;
    m.dstNode = rec.dstNode;
    m.dstPage = rec.dstFrame;
    m.dstOffsetDelta = rec.dstDelta;

    auto slot = slotForHalf(e, rec.halfBegin, rec.halfEnd);
    SHRIMP_ASSERT(slot.has_value(),
                  "no free NIPT mapping slot on frame ", frame,
                  " for [", rec.halfBegin, ",", rec.halfEnd, ")");
    rec.highSlot = *slot;

    bool first = !e.outLow.valid() && !e.outHigh.valid();
    if (rec.halfBegin == 0 && rec.halfEnd == PAGE_SIZE) {
        e.splitOffset = 0;              // whole page
    } else if (first) {
        // The split point is fixed by the first half installed; a
        // later complementary half must fit the other side of it.
        e.splitOffset = *slot ? rec.halfBegin : rec.halfEnd;
    }
    if (*slot)
        e.outHigh = m;
    else
        e.outLow = m;
}

void
MapManager::clearOutHalf(PageNum frame, const OutRecord &rec)
{
    NiptEntry &e = _kernel.ni().nipt().entry(frame);
    if (rec.highSlot)
        e.outHigh = OutMapping{};
    else
        e.outLow = OutMapping{};
    if (!e.outLow.valid() && !e.outHigh.valid())
        e.splitOffset = 0;
}

PageNum
MapManager::frameOf(Pid pid, PageNum vpage) const
{
    Process *proc = _kernel.findProcess(pid);
    if (!proc)
        return INVALID_PAGE;
    const Pte *pte = proc->space().pageTable().find(vpage);
    return pte ? pte->frame : INVALID_PAGE;
}

void
MapManager::recordOutDirect(OutRecord rec, PageNum local_frame)
{
    installOutHalf(local_frame, rec);   // sets rec.highSlot
    _out.push_back(rec);
}

void
MapManager::recordInDirect(const InRecord &rec, PageNum frame,
                           bool arrival_interrupt)
{
    if (rec.pinned)
        _kernel.frames().pin(frame);
    NiptEntry &e = _kernel.ni().nipt().entry(frame);
    e.mappedIn = true;
    if (arrival_interrupt)
        e.interruptOnArrival = true;
    bool have_src = false;
    for (NodeId n : e.inSources)
        have_src = have_src || n == rec.srcNode;
    if (!have_src)
        e.inSources.push_back(rec.srcNode);
    _inByFrame[frame].push_back(rec);
}

// ---------------------------------------------------------------------
// map()/unmap() protocol (source side)
// ---------------------------------------------------------------------

namespace
{

/** Per-syscall protocol state, heap-held across RPC round trips. */
struct MapOp
{
    Process *proc;
    MapArgs args;
    std::size_t page = 0;
    std::function<void(std::uint64_t)> done;
};

/**
 * The per-page chains below are closures that own themselves through
 * next_fn (they must outlive the start call's frame to serve RPC
 * responses). When an op completes, that reference cycle must be
 * broken or the op state leaks -- deferred one event, because the
 * closure being cleared may still be on the call stack here.
 */
void
breakChain(EventQueue &eq,
           std::shared_ptr<std::function<void()>> next_fn)
{
    eq.scheduleFn([next_fn] { *next_fn = nullptr; }, eq.curTick(),
                  EventPriority::DEFAULT, "map-op cleanup");
}

/** Break the op's chain cycle and report its result. */
void
finishOp(EventQueue &eq, const std::shared_ptr<MapOp> &op,
         const std::shared_ptr<std::function<void()>> &next_fn,
         std::uint64_t code)
{
    breakChain(eq, next_fn);
    op->done(code);
}

} // namespace

void
MapManager::startMap(Process &proc, const MapArgs &args,
                     std::function<void(std::uint64_t)> done)
{
    // Validate the source range once up front.
    for (std::uint32_t i = 0; i < args.npages; ++i) {
        PageNum vpage = pageOf(args.localVaddr) + i;
        const Pte *pte = proc.space().pageTable().find(vpage);
        if (!pte || !pte->writable || !pte->user) {
            done(err::PERM);
            return;
        }
        // One outgoing mapping per page on the syscall path (the
        // hardware's split mechanism is driven by mapDirectRange).
        if (_kernel.ni().nipt().entry(pte->frame).anyOut()) {
            done(err::AGAIN);
            return;
        }
    }
    auto mode = static_cast<UpdateMode>(args.mode);
    if (mode != UpdateMode::AUTO_SINGLE && mode != UpdateMode::AUTO_BLOCK
        && mode != UpdateMode::DELIBERATE) {
        done(err::INVAL);
        return;
    }
    if (args.dstNode >= _kernel.numNodes() ||
        args.dstNode == _kernel.nodeId()) {
        // Same-node mappings would bypass the network; the paper's
        // design targets cross-node communication only.
        done(err::INVAL);
        return;
    }
    if (_kernel.peerFailed(args.dstNode)) {
        // The failure detector declared the destination dead; fail
        // fast instead of letting the RPC time out silently.
        done(err::HOSTDOWN);
        return;
    }
    if (!_kernel.sendAdmissible(args.dstNode)) {
        // Admission control: the peer is SUSPECT or persistently
        // backed up; a map RPC toward it would only join the queue.
        _kernel.countSendRejected();
        done(err::WOULDBLOCK);
        return;
    }

    auto op = std::make_shared<MapOp>();
    op->proc = &proc;
    op->args = args;
    op->done = std::move(done);

    // Per-page RPC chain.
    auto next_fn = std::make_shared<std::function<void()>>();
    *next_fn = [this, op, next_fn]() {
        if (op->page == op->args.npages) {
            finishOp(_kernel.eventQueue(), op, next_fn, err::OK);
            return;
        }
        std::uint32_t i = static_cast<std::uint32_t>(op->page);
        KernelRpc rpc;
        rpc.type = channel::MAP_PAGE;
        rpc.payload = {op->args.dstPid,
                       static_cast<std::uint32_t>(
                           pageOf(op->args.dstVaddr) + i),
                       op->args.mode, op->args.flags, 0, 0};
        rpc.onResponse = [this, op, next_fn, i](const std::uint32_t *r) {
            if (r[0] != err::OK) {
                finishOp(_kernel.eventQueue(), op, next_fn, r[0]);
                return;
            }
            addWork(_kernel.costs().mapInstallPerPage);

            PageNum vpage = pageOf(op->args.localVaddr) + i;
            Pte *pte = op->proc->space().pageTable().find(vpage);
            if (!pte) {
                finishOp(_kernel.eventQueue(), op, next_fn, err::INVAL);
                return;
            }
            OutRecord rec;
            rec.pid = op->proc->pid();
            rec.vpage = vpage;
            rec.dstNode = op->args.dstNode;
            rec.dstPid = op->args.dstPid;
            rec.dstVpage = pageOf(op->args.dstVaddr) + i;
            rec.dstFrame = r[1];
            rec.mode = static_cast<UpdateMode>(op->args.mode);
            rec.flags = op->args.flags;
            recordOutDirect(rec, pte->frame);
            // Mapped-out pages are snooped: force write-through.
            pte->policy = CachePolicy::WRITE_THROUGH;

            op->page++;
            (*next_fn)();
        };
        sendRpc(op->args.dstNode, std::move(rpc));
    };
    (*next_fn)();
}

void
MapManager::startUnmap(Process &proc, const MapArgs &args,
                       std::function<void(std::uint64_t)> done)
{
    if (args.dstNode < _kernel.numNodes() &&
        _kernel.peerFailed(args.dstNode)) {
        done(err::HOSTDOWN);
        return;
    }

    auto op = std::make_shared<MapOp>();
    op->proc = &proc;
    op->args = args;
    op->done = std::move(done);

    auto next_fn = std::make_shared<std::function<void()>>();
    *next_fn = [this, op, next_fn]() {
        if (op->page == op->args.npages) {
            finishOp(_kernel.eventQueue(), op, next_fn, err::OK);
            return;
        }
        std::uint32_t i = static_cast<std::uint32_t>(op->page);
        PageNum vpage = pageOf(op->args.localVaddr) + i;
        PageNum dst_vpage = pageOf(op->args.dstVaddr) + i;

        // Find and remove our record first.
        bool found = false;
        OutRecord removed;
        for (auto it = _out.begin(); it != _out.end(); ++it) {
            if (it->pid == op->proc->pid() && it->vpage == vpage &&
                it->dstNode == op->args.dstNode &&
                it->dstPid == op->args.dstPid &&
                it->dstVpage == dst_vpage) {
                removed = *it;
                _out.erase(it);
                found = true;
                break;
            }
        }
        if (!found) {
            finishOp(_kernel.eventQueue(), op, next_fn, err::INVAL);
            return;
        }
        PageNum frame = frameOf(op->proc->pid(), vpage);
        if (frame != INVALID_PAGE && !removed.invalidated)
            clearOutHalf(frame, removed);
        addWork(_kernel.costs().mapInstallPerPage);

        KernelRpc rpc;
        rpc.type = channel::UNMAP_PAGE;
        rpc.payload = {op->args.dstPid,
                       static_cast<std::uint32_t>(dst_vpage), 0, 0, 0, 0};
        rpc.onResponse = [this, op, next_fn](const std::uint32_t *r) {
            if (r[0] != err::OK) {
                finishOp(_kernel.eventQueue(), op, next_fn, r[0]);
                return;
            }
            op->page++;
            (*next_fn)();
        };
        sendRpc(op->args.dstNode, std::move(rpc));
    };
    (*next_fn)();
}

// ---------------------------------------------------------------------
// Consistency: shootdown and remap
// ---------------------------------------------------------------------

void
MapManager::shootdown(PageNum frame, std::function<void()> done)
{
    auto it = _inByFrame.find(frame);
    if (it == _inByFrame.end() || it->second.empty()) {
        done();
        return;
    }

    // Distinct source nodes.
    std::vector<NodeId> sources;
    for (const InRecord &rec : it->second) {
        bool seen = false;
        for (NodeId n : sources)
            seen = seen || n == rec.srcNode;
        if (!seen)
            sources.push_back(rec.srcNode);
    }

    auto remaining = std::make_shared<std::size_t>(sources.size());
    auto done_fn =
        std::make_shared<std::function<void()>>(std::move(done));
    for (NodeId src : sources) {
        KernelRpc rpc;
        rpc.type = channel::INVALIDATE;
        rpc.payload = {static_cast<std::uint32_t>(frame), 0, 0, 0, 0, 0};
        rpc.onResponse = [remaining, done_fn](const std::uint32_t *) {
            if (--*remaining == 0)
                (*done_fn)();
        };
        sendRpc(src, std::move(rpc));
    }
}

bool
MapManager::needsRemap(Pid pid, PageNum vpage) const
{
    for (const OutRecord &rec : _out) {
        if (rec.pid == pid && rec.vpage == vpage && rec.invalidated)
            return true;
    }
    return false;
}

void
MapManager::startRemap(Process &proc, PageNum vpage,
                       std::function<void(std::uint64_t)> done)
{
    // Collect indexes of invalidated records for this page.
    auto targets = std::make_shared<std::vector<std::size_t>>();
    for (std::size_t i = 0; i < _out.size(); ++i) {
        if (_out[i].pid == proc.pid() && _out[i].vpage == vpage &&
            _out[i].invalidated) {
            targets->push_back(i);
        }
    }
    SHRIMP_ASSERT(!targets->empty(), "remap with nothing to do");

    if (_kernel.peerFailed(_out[targets->front()].dstNode)) {
        done(err::HOSTDOWN);
        return;
    }

    auto pos = std::make_shared<std::size_t>(0);
    auto done_fn = std::make_shared<std::function<void(std::uint64_t)>>(
        std::move(done));
    auto proc_ptr = &proc;

    auto next_fn = std::make_shared<std::function<void()>>();
    *next_fn = [this, targets, pos, done_fn, next_fn, proc_ptr,
                vpage]() {
        if (*pos == targets->size()) {
            // All halves re-established: restore write permission.
            proc_ptr->space().pageTable().setWritable(vpage, true);
            ++_remaps;
            breakChain(_kernel.eventQueue(), next_fn);
            (*done_fn)(err::OK);
            return;
        }
        std::size_t idx = (*targets)[*pos];
        const OutRecord &rec = _out[idx];
        KernelRpc rpc;
        rpc.type = channel::MAP_PAGE;
        rpc.payload = {rec.dstPid,
                       static_cast<std::uint32_t>(rec.dstVpage),
                       static_cast<std::uint32_t>(rec.mode), rec.flags,
                       0, 0};
        NodeId peer = rec.dstNode;
        rpc.onResponse = [this, idx, pos, done_fn, next_fn, proc_ptr,
                          vpage](const std::uint32_t *r) {
            if (r[0] != err::OK) {
                breakChain(_kernel.eventQueue(), next_fn);
                (*done_fn)(r[0]);
                return;
            }
            OutRecord &rec2 = _out[idx];
            rec2.dstFrame = r[1];
            rec2.invalidated = false;
            PageNum frame = frameOf(rec2.pid, rec2.vpage);
            SHRIMP_ASSERT(frame != INVALID_PAGE,
                          "remap of a non-resident source page");
            installOutHalf(frame, rec2);
            addWork(_kernel.costs().mapInstallPerPage);
            ++*pos;
            (*next_fn)();
        };
        sendRpc(peer, std::move(rpc));
    };
    (*next_fn)();
}

// ---------------------------------------------------------------------
// Frame lifecycle
// ---------------------------------------------------------------------

void
MapManager::frameMoved(Pid pid, PageNum vpage, PageNum new_frame)
{
    // Records were created in ascending halfBegin order, so
    // reinstalling in record order reconstructs the split correctly.
    for (OutRecord &rec : _out) {
        if (rec.pid == pid && rec.vpage == vpage && !rec.invalidated)
            installOutHalf(new_frame, rec);
    }
}

void
MapManager::frameDropped(PageNum frame)
{
    NiptEntry &e = _kernel.ni().nipt().entry(frame);
    e = NiptEntry{};
    _inByFrame.erase(frame);
}

void
MapManager::releaseAllPins()
{
    for (auto &[frame, recs] : _inByFrame) {
        for (InRecord &rec : recs) {
            if (rec.pinned) {
                rec.pinned = false;
                _kernel.frames().unpin(frame);
            }
        }
    }
}

std::vector<PageNum>
MapManager::cleanupProcess(Pid pid)
{
    // Outgoing side: stop forwarding this process's stores (it will
    // never store again, but the NIPT entries must not dangle into
    // other processes if the frames are reused).
    for (auto it = _out.begin(); it != _out.end();) {
        if (it->pid != pid) {
            ++it;
            continue;
        }
        PageNum frame = frameOf(pid, it->vpage);
        if (frame != INVALID_PAGE && !it->invalidated)
            clearOutHalf(frame, *it);
        it = _out.erase(it);
    }

    // Incoming side: frames remote senders still target.
    std::vector<PageNum> victims;
    for (const auto &[frame, recs] : _inByFrame) {
        for (const InRecord &rec : recs) {
            if (rec.pid == pid) {
                victims.push_back(frame);
                break;
            }
        }
    }
    return victims;
}

void
MapManager::releaseInMappings(PageNum frame)
{
    auto it = _inByFrame.find(frame);
    if (it == _inByFrame.end())
        return;
    for (const InRecord &rec : it->second) {
        if (rec.pinned)
            _kernel.frames().unpin(frame);
    }
    _inByFrame.erase(it);

    NiptEntry &e = _kernel.ni().nipt().entry(frame);
    e.mappedIn = false;
    e.interruptOnArrival = false;
    e.inSources.clear();
}

// ---------------------------------------------------------------------
// Node-failure recovery
// ---------------------------------------------------------------------

unsigned
MapManager::purgeDeadPeerIn(NodeId peer)
{
    unsigned purged = 0;
    for (auto it = _inByFrame.begin(); it != _inByFrame.end();) {
        PageNum frame = it->first;
        auto &recs = it->second;
        for (auto rit = recs.begin(); rit != recs.end();) {
            if (rit->srcNode != peer) {
                ++rit;
                continue;
            }
            if (rit->pinned)
                _kernel.frames().unpin(frame);
            rit = recs.erase(rit);
            ++purged;
        }
        NiptEntry &e = _kernel.ni().nipt().entry(frame);
        if (recs.empty()) {
            e.mappedIn = false;
            e.interruptOnArrival = false;
            e.inSources.clear();
            it = _inByFrame.erase(it);
        } else {
            e.inSources.clear();
            for (const InRecord &r : recs)
                e.inSources.push_back(r.srcNode);
            ++it;
        }
    }
    return purged;
}

unsigned
MapManager::purgeOutTo(NodeId peer)
{
    unsigned dropped = 0;
    for (auto it = _out.begin(); it != _out.end();) {
        if (it->dstNode != peer) {
            ++it;
            continue;
        }
        PageNum frame = frameOf(it->pid, it->vpage);
        if (frame != INVALID_PAGE && !it->invalidated)
            clearOutHalf(frame, *it);
        it = _out.erase(it);
        ++dropped;
    }
    return dropped;
}

void
MapManager::resetPeer(NodeId peer, std::uint64_t errno_)
{
    PeerState &state = _peers.at(peer);
    std::vector<KernelRpc> doomed;
    if (state.inFlight)
        doomed.push_back(std::move(state.current));
    for (KernelRpc &rpc : state.queue)
        doomed.push_back(std::move(rpc));
    state = PeerState{};

    std::uint32_t resp[channel::payloadWords] = {};
    resp[0] = static_cast<std::uint32_t>(errno_);
    for (KernelRpc &rpc : doomed) {
        if (rpc.onResponse)
            rpc.onResponse(resp);
    }
}

bool
MapManager::hasInMappings(PageNum frame) const
{
    auto it = _inByFrame.find(frame);
    return it != _inByFrame.end() && !it->second.empty();
}

const std::vector<MapManager::InRecord> *
MapManager::inRecords(PageNum frame) const
{
    auto it = _inByFrame.find(frame);
    return it == _inByFrame.end() ? nullptr : &it->second;
}

} // namespace shrimp
