/**
 * @file
 * Syscall numbers and user/kernel argument layouts.
 *
 * The map() call is the paper's central kernel service: it performs
 * protection checking once and installs NIPT state, after which all
 * communication proceeds at user level (Section 2).
 */

#ifndef SHRIMP_OS_SYSCALLS_HH
#define SHRIMP_OS_SYSCALLS_HH

#include <cstdint>

#include "sim/types.hh"

namespace shrimp
{

namespace sys
{

constexpr std::uint64_t EXIT = 1;
constexpr std::uint64_t YIELD = 2;
constexpr std::uint64_t GETPID = 3;
constexpr std::uint64_t NODE_ID = 4;

/** map(args @ R1): establish an outgoing mapping. Returns 0 or errno. */
constexpr std::uint64_t MAP = 5;
/** unmap(args @ R1): tear down a mapping established with MAP. */
constexpr std::uint64_t UNMAP = 6;
/** Block until data arrives for the page containing vaddr (R1). The
 *  page must have its NIPT interrupt-on-arrival bit set. */
constexpr std::uint64_t WAIT_ARRIVAL = 7;

/** Kernel-level NX/2 baseline (iPSC/2-style buffered send/receive). */
constexpr std::uint64_t NX_CSEND = 8;
constexpr std::uint64_t NX_CRECV = 9;

} // namespace sys

namespace err
{
constexpr std::uint64_t OK = 0;
constexpr std::uint64_t INVAL = 1;      //!< bad arguments
constexpr std::uint64_t NOPROC = 2;     //!< no such process
constexpr std::uint64_t NOMEM = 3;      //!< out of frames
constexpr std::uint64_t PERM = 4;       //!< protection check failed
constexpr std::uint64_t AGAIN = 5;      //!< resource busy
constexpr std::uint64_t HOSTDOWN = 6;   //!< peer declared dead
/** Admission control refused the operation: the peer is SUSPECT, its
 *  send window is persistently full, or the per-destination send
 *  queue is at its bound. Retry later (EAGAIN-style fail-fast). */
constexpr std::uint64_t WOULDBLOCK = 7;
/** Message fenced by epoch-based membership: it was stamped with a
 *  stale incarnation of either endpoint (a relic of a healed
 *  partition or a pre-restart stream) and was not applied. */
constexpr std::uint64_t STALE_EPOCH = 8;
} // namespace err

/**
 * Argument block for MAP/UNMAP, read by the kernel from user memory at
 * the address in R1. All fields are 32-bit words, matching the 32-bit
 * target machine.
 */
struct MapArgs
{
    std::uint32_t localVaddr = 0;   //!< page-aligned send-buffer base
    std::uint32_t npages = 0;
    std::uint32_t dstNode = 0;
    std::uint32_t dstPid = 0;
    std::uint32_t dstVaddr = 0;     //!< page-aligned receive-buffer base
    std::uint32_t mode = 0;         //!< UpdateMode numeric value
    std::uint32_t flags = 0;        //!< MapFlags bits

    static constexpr Addr sizeBytes = 28;
};

namespace map_flags
{
/** Set the destination pages' interrupt-on-arrival NIPT bit. */
constexpr std::uint32_t ARRIVAL_INTERRUPT = 1;
} // namespace map_flags

/** Argument block for NX_CSEND / NX_CRECV. */
struct NxArgs
{
    std::uint32_t type = 0;         //!< 16-bit message type
    std::uint32_t buf = 0;          //!< user buffer vaddr
    std::uint32_t nbytes = 0;
    std::uint32_t node = 0;         //!< destination (csend) / any (crecv)
    std::uint32_t pid = 0;

    static constexpr Addr sizeBytes = 20;
};

} // namespace shrimp

#endif // SHRIMP_OS_SYSCALLS_HH
